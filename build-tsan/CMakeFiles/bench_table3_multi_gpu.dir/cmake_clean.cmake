file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_multi_gpu.dir/bench/table3_multi_gpu.cc.o"
  "CMakeFiles/bench_table3_multi_gpu.dir/bench/table3_multi_gpu.cc.o.d"
  "bench_table3_multi_gpu"
  "bench_table3_multi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
