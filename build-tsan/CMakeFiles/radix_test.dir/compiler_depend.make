# Empty compiler generated dependencies file for radix_test.
# This may be replaced when dependencies are built.
