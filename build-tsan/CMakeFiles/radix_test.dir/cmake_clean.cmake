file(REMOVE_RECURSE
  "CMakeFiles/radix_test.dir/tests/radix_test.cc.o"
  "CMakeFiles/radix_test.dir/tests/radix_test.cc.o.d"
  "radix_test"
  "radix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
