file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_gwronce.dir/bench/ablate_gwronce.cc.o"
  "CMakeFiles/bench_ablate_gwronce.dir/bench/ablate_gwronce.cc.o.d"
  "bench_ablate_gwronce"
  "bench_ablate_gwronce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_gwronce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
