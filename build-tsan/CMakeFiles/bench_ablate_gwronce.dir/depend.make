# Empty dependencies file for bench_ablate_gwronce.
# This may be replaced when dependencies are built.
