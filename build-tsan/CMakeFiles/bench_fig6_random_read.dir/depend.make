# Empty dependencies file for bench_fig6_random_read.
# This may be replaced when dependencies are built.
