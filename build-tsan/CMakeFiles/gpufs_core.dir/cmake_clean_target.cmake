file(REMOVE_RECURSE
  "libgpufs_core.a"
)
