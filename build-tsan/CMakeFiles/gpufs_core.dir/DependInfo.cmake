
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "CMakeFiles/gpufs_core.dir/src/base/logging.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/base/logging.cc.o.d"
  "/root/repo/src/base/stats.cc" "CMakeFiles/gpufs_core.dir/src/base/stats.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/base/stats.cc.o.d"
  "/root/repo/src/base/status.cc" "CMakeFiles/gpufs_core.dir/src/base/status.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/base/status.cc.o.d"
  "/root/repo/src/consistency/consistency.cc" "CMakeFiles/gpufs_core.dir/src/consistency/consistency.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/consistency/consistency.cc.o.d"
  "/root/repo/src/consistency/wrapfs.cc" "CMakeFiles/gpufs_core.dir/src/consistency/wrapfs.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/consistency/wrapfs.cc.o.d"
  "/root/repo/src/cuda/cudasim.cc" "CMakeFiles/gpufs_core.dir/src/cuda/cudasim.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/cuda/cudasim.cc.o.d"
  "/root/repo/src/gpu/device.cc" "CMakeFiles/gpufs_core.dir/src/gpu/device.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpu/device.cc.o.d"
  "/root/repo/src/gpu/launch.cc" "CMakeFiles/gpufs_core.dir/src/gpu/launch.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpu/launch.cc.o.d"
  "/root/repo/src/gpufs/buffer_cache.cc" "CMakeFiles/gpufs_core.dir/src/gpufs/buffer_cache.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpufs/buffer_cache.cc.o.d"
  "/root/repo/src/gpufs/file_table.cc" "CMakeFiles/gpufs_core.dir/src/gpufs/file_table.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpufs/file_table.cc.o.d"
  "/root/repo/src/gpufs/frame.cc" "CMakeFiles/gpufs_core.dir/src/gpufs/frame.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpufs/frame.cc.o.d"
  "/root/repo/src/gpufs/gpufs.cc" "CMakeFiles/gpufs_core.dir/src/gpufs/gpufs.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpufs/gpufs.cc.o.d"
  "/root/repo/src/gpufs/radix.cc" "CMakeFiles/gpufs_core.dir/src/gpufs/radix.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpufs/radix.cc.o.d"
  "/root/repo/src/gpuutil/gstring.cc" "CMakeFiles/gpufs_core.dir/src/gpuutil/gstring.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/gpuutil/gstring.cc.o.d"
  "/root/repo/src/hostfs/content.cc" "CMakeFiles/gpufs_core.dir/src/hostfs/content.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/hostfs/content.cc.o.d"
  "/root/repo/src/hostfs/hostfs.cc" "CMakeFiles/gpufs_core.dir/src/hostfs/hostfs.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/hostfs/hostfs.cc.o.d"
  "/root/repo/src/hostfs/page_cache.cc" "CMakeFiles/gpufs_core.dir/src/hostfs/page_cache.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/hostfs/page_cache.cc.o.d"
  "/root/repo/src/rpc/daemon.cc" "CMakeFiles/gpufs_core.dir/src/rpc/daemon.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/rpc/daemon.cc.o.d"
  "/root/repo/src/sim/resource.cc" "CMakeFiles/gpufs_core.dir/src/sim/resource.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/sim/resource.cc.o.d"
  "/root/repo/src/workloads/imagedb.cc" "CMakeFiles/gpufs_core.dir/src/workloads/imagedb.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/workloads/imagedb.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "CMakeFiles/gpufs_core.dir/src/workloads/kernels.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/matrix.cc" "CMakeFiles/gpufs_core.dir/src/workloads/matrix.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/workloads/matrix.cc.o.d"
  "/root/repo/src/workloads/textcorpus.cc" "CMakeFiles/gpufs_core.dir/src/workloads/textcorpus.cc.o" "gcc" "CMakeFiles/gpufs_core.dir/src/workloads/textcorpus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
