# Empty dependencies file for gpufs_core.
# This may be replaced when dependencies are built.
