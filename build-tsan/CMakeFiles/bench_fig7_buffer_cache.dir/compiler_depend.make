# Empty compiler generated dependencies file for bench_fig7_buffer_cache.
# This may be replaced when dependencies are built.
