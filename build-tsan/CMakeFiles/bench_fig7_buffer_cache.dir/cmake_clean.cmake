file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_buffer_cache.dir/bench/fig7_buffer_cache.cc.o"
  "CMakeFiles/bench_fig7_buffer_cache.dir/bench/fig7_buffer_cache.cc.o.d"
  "bench_fig7_buffer_cache"
  "bench_fig7_buffer_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_buffer_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
