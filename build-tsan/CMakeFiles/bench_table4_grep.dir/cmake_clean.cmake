file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_grep.dir/bench/table4_grep.cc.o"
  "CMakeFiles/bench_table4_grep.dir/bench/table4_grep.cc.o.d"
  "bench_table4_grep"
  "bench_table4_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
