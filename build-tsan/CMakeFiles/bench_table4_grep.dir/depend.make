# Empty dependencies file for bench_table4_grep.
# This may be replaced when dependencies are built.
