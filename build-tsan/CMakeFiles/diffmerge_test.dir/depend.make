# Empty dependencies file for diffmerge_test.
# This may be replaced when dependencies are built.
