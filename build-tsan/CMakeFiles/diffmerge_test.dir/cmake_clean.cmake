file(REMOVE_RECURSE
  "CMakeFiles/diffmerge_test.dir/tests/diffmerge_test.cc.o"
  "CMakeFiles/diffmerge_test.dir/tests/diffmerge_test.cc.o.d"
  "diffmerge_test"
  "diffmerge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffmerge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
