# Empty compiler generated dependencies file for api_matrix_test.
# This may be replaced when dependencies are built.
