file(REMOVE_RECURSE
  "CMakeFiles/api_matrix_test.dir/tests/api_matrix_test.cc.o"
  "CMakeFiles/api_matrix_test.dir/tests/api_matrix_test.cc.o.d"
  "api_matrix_test"
  "api_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
