# Empty compiler generated dependencies file for bench_fig4_seq_read.
# This may be replaced when dependencies are built.
