file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_seq_read.dir/bench/fig4_seq_read.cc.o"
  "CMakeFiles/bench_fig4_seq_read.dir/bench/fig4_seq_read.cc.o.d"
  "bench_fig4_seq_read"
  "bench_fig4_seq_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_seq_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
