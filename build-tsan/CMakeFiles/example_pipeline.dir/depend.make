# Empty dependencies file for example_pipeline.
# This may be replaced when dependencies are built.
