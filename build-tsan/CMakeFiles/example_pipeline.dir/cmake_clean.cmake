file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline.dir/examples/pipeline.cpp.o"
  "CMakeFiles/example_pipeline.dir/examples/pipeline.cpp.o.d"
  "example_pipeline"
  "example_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
