file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_rpc_channels.dir/bench/ablate_rpc_channels.cc.o"
  "CMakeFiles/bench_ablate_rpc_channels.dir/bench/ablate_rpc_channels.cc.o.d"
  "bench_ablate_rpc_channels"
  "bench_ablate_rpc_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_rpc_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
