# Empty dependencies file for bench_ablate_rpc_channels.
# This may be replaced when dependencies are built.
