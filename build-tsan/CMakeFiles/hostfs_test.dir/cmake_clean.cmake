file(REMOVE_RECURSE
  "CMakeFiles/hostfs_test.dir/tests/hostfs_test.cc.o"
  "CMakeFiles/hostfs_test.dir/tests/hostfs_test.cc.o.d"
  "hostfs_test"
  "hostfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
