# Empty dependencies file for hostfs_test.
# This may be replaced when dependencies are built.
