file(REMOVE_RECURSE
  "CMakeFiles/eviction_test.dir/tests/eviction_test.cc.o"
  "CMakeFiles/eviction_test.dir/tests/eviction_test.cc.o.d"
  "eviction_test"
  "eviction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
