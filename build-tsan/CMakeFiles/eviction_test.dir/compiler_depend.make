# Empty compiler generated dependencies file for eviction_test.
# This may be replaced when dependencies are built.
