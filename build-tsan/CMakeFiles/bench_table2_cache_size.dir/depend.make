# Empty dependencies file for bench_table2_cache_size.
# This may be replaced when dependencies are built.
