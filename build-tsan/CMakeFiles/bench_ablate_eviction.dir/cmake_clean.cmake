file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_eviction.dir/bench/ablate_eviction.cc.o"
  "CMakeFiles/bench_ablate_eviction.dir/bench/ablate_eviction.cc.o.d"
  "bench_ablate_eviction"
  "bench_ablate_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
