# Empty compiler generated dependencies file for bench_ablate_eviction.
# This may be replaced when dependencies are built.
