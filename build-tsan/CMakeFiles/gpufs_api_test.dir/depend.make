# Empty dependencies file for gpufs_api_test.
# This may be replaced when dependencies are built.
