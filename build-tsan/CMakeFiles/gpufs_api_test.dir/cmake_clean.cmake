file(REMOVE_RECURSE
  "CMakeFiles/gpufs_api_test.dir/tests/gpufs_api_test.cc.o"
  "CMakeFiles/gpufs_api_test.dir/tests/gpufs_api_test.cc.o.d"
  "gpufs_api_test"
  "gpufs_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufs_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
