# Empty dependencies file for writeback_batch_test.
# This may be replaced when dependencies are built.
