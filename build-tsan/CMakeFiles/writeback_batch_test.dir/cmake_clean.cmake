file(REMOVE_RECURSE
  "CMakeFiles/writeback_batch_test.dir/tests/writeback_batch_test.cc.o"
  "CMakeFiles/writeback_batch_test.dir/tests/writeback_batch_test.cc.o.d"
  "writeback_batch_test"
  "writeback_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writeback_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
