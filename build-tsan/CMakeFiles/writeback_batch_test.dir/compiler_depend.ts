# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for writeback_batch_test.
