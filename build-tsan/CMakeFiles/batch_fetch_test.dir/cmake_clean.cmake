file(REMOVE_RECURSE
  "CMakeFiles/batch_fetch_test.dir/tests/batch_fetch_test.cc.o"
  "CMakeFiles/batch_fetch_test.dir/tests/batch_fetch_test.cc.o.d"
  "batch_fetch_test"
  "batch_fetch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_fetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
