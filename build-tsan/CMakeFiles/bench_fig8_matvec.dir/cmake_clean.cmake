file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_matvec.dir/bench/fig8_matvec.cc.o"
  "CMakeFiles/bench_fig8_matvec.dir/bench/fig8_matvec.cc.o.d"
  "bench_fig8_matvec"
  "bench_fig8_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
