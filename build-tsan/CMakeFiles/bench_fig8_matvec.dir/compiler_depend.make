# Empty compiler generated dependencies file for bench_fig8_matvec.
# This may be replaced when dependencies are built.
