# Empty dependencies file for example_grep.
# This may be replaced when dependencies are built.
