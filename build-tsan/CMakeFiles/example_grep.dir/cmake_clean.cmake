file(REMOVE_RECURSE
  "CMakeFiles/example_grep.dir/examples/grep.cpp.o"
  "CMakeFiles/example_grep.dir/examples/grep.cpp.o.d"
  "example_grep"
  "example_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
