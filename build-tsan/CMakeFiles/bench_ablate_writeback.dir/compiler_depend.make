# Empty compiler generated dependencies file for bench_ablate_writeback.
# This may be replaced when dependencies are built.
