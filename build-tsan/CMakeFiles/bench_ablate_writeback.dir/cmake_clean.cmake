file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_writeback.dir/bench/ablate_writeback.cc.o"
  "CMakeFiles/bench_ablate_writeback.dir/bench/ablate_writeback.cc.o.d"
  "bench_ablate_writeback"
  "bench_ablate_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
