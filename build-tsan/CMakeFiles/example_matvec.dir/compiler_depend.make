# Empty compiler generated dependencies file for example_matvec.
# This may be replaced when dependencies are built.
