file(REMOVE_RECURSE
  "CMakeFiles/example_matvec.dir/examples/matvec.cpp.o"
  "CMakeFiles/example_matvec.dir/examples/matvec.cpp.o.d"
  "example_matvec"
  "example_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
