# Empty dependencies file for gpuutil_test.
# This may be replaced when dependencies are built.
