file(REMOVE_RECURSE
  "CMakeFiles/gpuutil_test.dir/tests/gpuutil_test.cc.o"
  "CMakeFiles/gpuutil_test.dir/tests/gpuutil_test.cc.o.d"
  "gpuutil_test"
  "gpuutil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
