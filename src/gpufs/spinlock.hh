/**
 * @file
 * The spinlock used inside buffer-cache data structures.
 *
 * On a real GPU, spinning between threadblocks is safe only because
 * every lock holder runs to completion (no preemption, §2); the same
 * argument holds here because lock holders never block on anything but
 * bounded work or RPC completion. Note the GPU caveat the paper raises
 * — spinlocks between threads of the *same* warp deadlock — does not
 * arise at block-granular invocation.
 */

#ifndef GPUFS_GPUFS_SPINLOCK_HH
#define GPUFS_GPUFS_SPINLOCK_HH

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace gpufs {
namespace core {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
}

class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock()
    {
        while (flag.test_and_set(std::memory_order_acquire))
            cpuRelax();
    }

    bool
    tryLock()
    {
        return !flag.test_and_set(std::memory_order_acquire);
    }

    void
    unlock()
    {
        flag.clear(std::memory_order_release);
    }

  private:
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
};

/** RAII guard. */
class SpinGuard
{
  public:
    explicit SpinGuard(SpinLock &l) : lock(l) { lock.lock(); }
    ~SpinGuard() { lock.unlock(); }
    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SpinLock &lock;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_SPINLOCK_HH
