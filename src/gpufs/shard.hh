/**
 * @file
 * ShardMap: the machine-wide page-range -> owner-GPU map behind the
 * sharded multi-GPU buffer cache.
 *
 * One instance per GpufsSystem, shared read-only by every GpuFs /
 * BufferCache after construction. The map is pure arithmetic (no
 * state, no locks): ownership of a page is a hash of (inode, page
 * group), so every GPU computes the same owner without communication —
 * the property that lets a non-owner miss turn directly into a
 * PeerReadPages RPC naming the owner.
 *
 * Ownership is constant within a shard group (HashPageGroup) or a
 * whole file (FileAffinity), so batched fetches clipped at group
 * boundaries always have a single owner.
 *
 * Serving tier: the map additionally accumulates per-(tenant, group)
 * read heat (recordHeat, called on the fetch paths) and can migrate a
 * hot group toward its heaviest reader (rebalance). Overrides are
 * stored in a small map consulted before the hash; ownerOf stays
 * lock-free until the first migration exists (hasOverrides_ gate), so
 * the pure-arithmetic fast path is preserved for the default
 * configuration.
 */

#ifndef GPUFS_GPUFS_SHARD_HH
#define GPUFS_GPUFS_SHARD_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "base/logging.hh"
#include "gpufs/params.hh"

namespace gpufs {
namespace core {

class ShardMap
{
  public:
    /**
     * @param policy    partitioning policy (Private disables sharding)
     * @param num_gpus  GPUs in the system; 1 forces Private behavior
     * @param pages_per_group HashPageGroup ownership granularity
     */
    ShardMap(ShardPolicy policy, unsigned num_gpus,
             unsigned pages_per_group)
        : policy_(policy), numGpus_(num_gpus),
          pagesPerGroup_(pages_per_group ? pages_per_group : 1)
    {
    }

    ShardPolicy policy() const { return policy_; }
    unsigned numGpus() const { return numGpus_; }
    unsigned pagesPerGroup() const { return pagesPerGroup_; }

    /** True when lookups can name a non-self owner: sharding is
     *  meaningless for one GPU, and Private is the ablation baseline. */
    bool
    active() const
    {
        return policy_ != ShardPolicy::Private && numGpus_ > 1;
    }

    /** Owner GPU of (file @p ino, page @p page_idx). Valid only while
     *  active(); callers treat an inactive map as owner == self. The
     *  hash answer can be superseded by a rebalance override; the
     *  atomic gate keeps the no-override case lock-free. */
    unsigned
    ownerOf(uint64_t ino, uint64_t page_idx) const
    {
        gpufs_assert(numGpus_ > 0, "shard map with no GPUs");
        const uint64_t key = groupKey(ino, page_idx);
        if (hasOverrides_.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(heatMtx_);
            auto it = overrides_.find(key);
            if (it != overrides_.end())
                return it->second;
        }
        return static_cast<unsigned>(mix(key) % numGpus_);
    }

    /**
     * Record @p pages of read heat on (tenant, group of @p page_idx)
     * from @p reader_gpu. Called on the miss-fetch paths (demand and
     * batch), so heat measures real traffic, not cache hits. Const
     * with mutable state: BufferCache holds the map const, but heat is
     * bookkeeping, not ownership semantics.
     */
    void
    recordHeat(uint8_t tenant, uint64_t ino, uint64_t page_idx,
               unsigned reader_gpu, unsigned pages) const
    {
        if (!active())
            return;
        const uint64_t key = groupKey(ino, page_idx);
        std::lock_guard<std::mutex> lock(heatMtx_);
        HeatEntry &h = heat_[key];
        if (reader_gpu < kMaxHeatGpus)
            h.byGpu[reader_gpu] += pages;
        h.byTenant[tenant % kMaxTenants] += pages;
        h.total += pages;
    }

    /**
     * Migrate every group whose accumulated heat reaches @p min_heat
     * toward its heaviest reader (no-op for already-local groups).
     * Heat is cleared afterwards so each window votes fresh. Callers
     * (GpufsSystem::rebalanceShards) run this from quiesced control
     * code — concurrent faults simply see the old or new owner, either
     * of which serves correctly (non-owners fall back to the host
     * path, owners adopt on demand).
     * @return groups whose ownership changed.
     */
    unsigned
    rebalance(uint32_t min_heat)
    {
        std::lock_guard<std::mutex> lock(heatMtx_);
        unsigned migrated = 0;
        for (const auto &kv : heat_) {
            const HeatEntry &h = kv.second;
            if (h.total < min_heat)
                continue;
            unsigned best = 0;
            for (unsigned g = 1; g < kMaxHeatGpus && g < numGpus_; ++g) {
                if (h.byGpu[g] > h.byGpu[best])
                    best = g;
            }
            auto ov = overrides_.find(kv.first);
            unsigned cur = ov != overrides_.end()
                ? ov->second
                : static_cast<unsigned>(mix(kv.first) % numGpus_);
            if (best == cur)
                continue;
            overrides_[kv.first] = best;
            ++migrated;
        }
        heat_.clear();
        if (!overrides_.empty())
            hasOverrides_.store(true, std::memory_order_release);
        return migrated;
    }

    /** Groups currently owned away from their hash home. */
    size_t
    overrideCount() const
    {
        std::lock_guard<std::mutex> lock(heatMtx_);
        return overrides_.size();
    }

    /** Total read heat accumulated by @p tenant since the last
     *  rebalance window (serving-tier reports and tests). */
    uint64_t
    tenantHeat(uint8_t tenant) const
    {
        std::lock_guard<std::mutex> lock(heatMtx_);
        uint64_t sum = 0;
        for (const auto &kv : heat_)
            sum += kv.second.byTenant[tenant % kMaxTenants];
        return sum;
    }

    /**
     * First page index past the ownership group containing
     * @p page_idx: batched fetches clip their runs here so one batch
     * never spans two owners. FileAffinity (and Private) groups are
     * unbounded.
     */
    uint64_t
    groupEnd(uint64_t page_idx) const
    {
        if (policy_ != ShardPolicy::HashPageGroup)
            return UINT64_MAX;
        return (page_idx / pagesPerGroup_ + 1) * pagesPerGroup_;
    }

  private:
    /** GPUs the heat histogram distinguishes (the simulated systems
     *  top out well below this). */
    static constexpr unsigned kMaxHeatGpus = 8;

    struct HeatEntry {
        uint64_t byGpu[kMaxHeatGpus] = {};
        uint64_t byTenant[kMaxTenants] = {};
        uint64_t total = 0;
    };

    /** Pre-mix group identity: the unit both ownership and heat key
     *  on (a whole file under FileAffinity, a page group under
     *  HashPageGroup). */
    uint64_t
    groupKey(uint64_t ino, uint64_t page_idx) const
    {
        return policy_ == ShardPolicy::FileAffinity
            ? ino
            : ino * 0x9E3779B97F4A7C15ull + page_idx / pagesPerGroup_;
    }

    /** SplitMix64 finalizer: full-avalanche mix so consecutive groups
     *  land on de-correlated owners. */
    static uint64_t
    mix(uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return x;
    }

    ShardPolicy policy_;
    unsigned numGpus_;
    unsigned pagesPerGroup_;

    /** Rebalance state: heat histograms and ownership overrides, both
     *  behind one mutex; the atomic flag spares ownerOf the lock while
     *  no override exists (the default). */
    mutable std::mutex heatMtx_;
    mutable std::unordered_map<uint64_t, HeatEntry> heat_;
    std::unordered_map<uint64_t, unsigned> overrides_;
    std::atomic<bool> hasOverrides_{false};
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_SHARD_HH
