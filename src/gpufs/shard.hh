/**
 * @file
 * ShardMap: the machine-wide page-range -> owner-GPU map behind the
 * sharded multi-GPU buffer cache.
 *
 * One instance per GpufsSystem, shared read-only by every GpuFs /
 * BufferCache after construction. The map is pure arithmetic (no
 * state, no locks): ownership of a page is a hash of (inode, page
 * group), so every GPU computes the same owner without communication —
 * the property that lets a non-owner miss turn directly into a
 * PeerReadPages RPC naming the owner.
 *
 * Ownership is constant within a shard group (HashPageGroup) or a
 * whole file (FileAffinity), so batched fetches clipped at group
 * boundaries always have a single owner.
 */

#ifndef GPUFS_GPUFS_SHARD_HH
#define GPUFS_GPUFS_SHARD_HH

#include <cstdint>

#include "base/logging.hh"
#include "gpufs/params.hh"

namespace gpufs {
namespace core {

class ShardMap
{
  public:
    /**
     * @param policy    partitioning policy (Private disables sharding)
     * @param num_gpus  GPUs in the system; 1 forces Private behavior
     * @param pages_per_group HashPageGroup ownership granularity
     */
    ShardMap(ShardPolicy policy, unsigned num_gpus,
             unsigned pages_per_group)
        : policy_(policy), numGpus_(num_gpus),
          pagesPerGroup_(pages_per_group ? pages_per_group : 1)
    {
    }

    ShardPolicy policy() const { return policy_; }
    unsigned numGpus() const { return numGpus_; }
    unsigned pagesPerGroup() const { return pagesPerGroup_; }

    /** True when lookups can name a non-self owner: sharding is
     *  meaningless for one GPU, and Private is the ablation baseline. */
    bool
    active() const
    {
        return policy_ != ShardPolicy::Private && numGpus_ > 1;
    }

    /** Owner GPU of (file @p ino, page @p page_idx). Valid only while
     *  active(); callers treat an inactive map as owner == self. */
    unsigned
    ownerOf(uint64_t ino, uint64_t page_idx) const
    {
        gpufs_assert(numGpus_ > 0, "shard map with no GPUs");
        uint64_t key;
        switch (policy_) {
          case ShardPolicy::FileAffinity:
            key = mix(ino);
            break;
          case ShardPolicy::HashPageGroup:
          default:
            key = mix(ino * 0x9E3779B97F4A7C15ull +
                      page_idx / pagesPerGroup_);
            break;
        }
        return static_cast<unsigned>(key % numGpus_);
    }

    /**
     * First page index past the ownership group containing
     * @p page_idx: batched fetches clip their runs here so one batch
     * never spans two owners. FileAffinity (and Private) groups are
     * unbounded.
     */
    uint64_t
    groupEnd(uint64_t page_idx) const
    {
        if (policy_ != ShardPolicy::HashPageGroup)
            return UINT64_MAX;
        return (page_idx / pagesPerGroup_ + 1) * pagesPerGroup_;
    }

  private:
    /** SplitMix64 finalizer: full-avalanche mix so consecutive groups
     *  land on de-correlated owners. */
    static uint64_t
    mix(uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return x;
    }

    ShardPolicy policy_;
    unsigned numGpus_;
    unsigned pagesPerGroup_;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_SHARD_HH
