#include "gpufs/buffer_cache.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "base/logging.hh"
#include "base/rng.hh"
#include "gpufs/victim.hh"
#include "sim/context.hh"

namespace gpufs {
namespace core {

// ---------------------------------------------------------------------
// Eviction policies
// ---------------------------------------------------------------------

namespace {

/**
 * The paper's policy (§4.2): three constant-work passes over the file
 * table — closed clean files (evictable with no GPU-CPU communication),
 * then open read-only files, then writable files as a last resort.
 * Within a file, frames go in the FIFO order of their leaf nodes.
 */
class PaperTieredPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "paper_tiered"; }

    unsigned
    reclaim(const std::vector<CacheFile *> &files, FrameArena &,
            unsigned want, const EvictFn &evict) override
    {
        unsigned freed = 0;
        for (int pass = 0; pass < 3 && freed < want; ++pass) {
            for (CacheFile *f : files) {
                if (freed >= want)
                    break;
                if (!f->cache)
                    continue;
                bool open_ro = !f->closed && !f->write;
                bool clean = f->cache->dirtyCount() == 0;
                bool eligible = false;
                bool allow_dirty = false;
                switch (pass) {
                  case 0:
                    eligible = f->closed && clean;
                    break;
                  case 1:
                    eligible = open_ro;
                    break;
                  case 2:
                    eligible = true;    // last resort: writable files
                    allow_dirty = true;
                    break;
                }
                if (!eligible)
                    continue;
                freed += evict(*f, allow_dirty, want - freed, kNoFrame);
            }
        }
        return freed;
    }
};

/**
 * Ablation: global LRU. Every round scans the whole arena for the
 * unpinned frame with the oldest access stamp and evicts it — exactly
 * the variable-work shape §4.2 rejects, since the scan runs on the
 * faulting application block's thread.
 */
class GlobalLruPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "global_lru"; }

    unsigned
    reclaim(const std::vector<CacheFile *> &files, FrameArena &arena,
            unsigned want, const EvictFn &evict) override
    {
        std::unordered_map<uint64_t, CacheFile *> by_uid;
        for (CacheFile *f : files) {
            if (f->cache)
                by_uid.emplace(f->cache->uid(), f);
        }
        // Snapshot every evictable frame ordered by access stamp, then
        // walk the order evicting those exact frames, skipping victims
        // that race away (pinned between the scan and the eviction
        // attempt) instead of aborting the pass — giving up while
        // evictable frames remain would surface as spurious NoSpace
        // failures in the caller.
        struct Candidate {
            uint64_t stamp;
            uint32_t frame;
            CacheFile *file;
        };
        std::vector<Candidate> order;
        for (uint32_t fr = 0; fr < arena.numFrames(); ++fr) {
            PFrame &pf = arena.frame(fr);
            uint64_t uid = pf.fileUid.load(std::memory_order_acquire);
            if (uid == 0)
                continue;
            auto *p = static_cast<FPage *>(
                pf.owner.load(std::memory_order_acquire));
            if (!p || p->refs.load(std::memory_order_relaxed) != 0)
                continue;
            auto it = by_uid.find(uid);
            if (it == by_uid.end())
                continue;
            order.push_back(
                {pf.lastAccess.load(std::memory_order_relaxed), fr,
                 it->second});
        }
        std::sort(order.begin(), order.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.stamp < b.stamp;
                  });
        unsigned freed = 0;
        for (const Candidate &c : order) {
            if (freed >= want)
                break;
            freed += evict(*c.file, true, 1, c.frame);
        }
        return freed;
    }
};

/**
 * Ablation: 2Q-style scan resistance. Same whole-arena snapshot shape
 * as GlobalLruPolicy (the variable-work cost is the point of the
 * ablation), but frames pinned at most once since they were claimed
 * (probationary — a scan touches each page exactly once) are evicted
 * before frames pinned again (protected — proven reuse), each set in
 * access-stamp order. Under a victim tier this is the interesting
 * contender: it demotes scan pollution first, keeping the reused set
 * in GPU memory.
 */
class TwoQPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "two_q"; }

    unsigned
    reclaim(const std::vector<CacheFile *> &files, FrameArena &arena,
            unsigned want, const EvictFn &evict) override
    {
        std::unordered_map<uint64_t, CacheFile *> by_uid;
        for (CacheFile *f : files) {
            if (f->cache)
                by_uid.emplace(f->cache->uid(), f);
        }
        struct Candidate {
            uint64_t stamp;
            uint32_t pins;
            uint32_t frame;
            CacheFile *file;
        };
        std::vector<Candidate> order;
        for (uint32_t fr = 0; fr < arena.numFrames(); ++fr) {
            PFrame &pf = arena.frame(fr);
            uint64_t uid = pf.fileUid.load(std::memory_order_acquire);
            if (uid == 0)
                continue;
            auto *p = static_cast<FPage *>(
                pf.owner.load(std::memory_order_acquire));
            if (!p || p->refs.load(std::memory_order_relaxed) != 0)
                continue;
            auto it = by_uid.find(uid);
            if (it == by_uid.end())
                continue;
            order.push_back(
                {pf.lastAccess.load(std::memory_order_relaxed),
                 pf.pinCount.load(std::memory_order_relaxed), fr,
                 it->second});
        }
        std::sort(order.begin(), order.end(),
                  [](const Candidate &a, const Candidate &b) {
                      bool ap = a.pins <= 1, bp = b.pins <= 1;
                      if (ap != bp)
                          return ap;     // probationary first
                      return a.stamp < b.stamp;
                  });
        unsigned freed = 0;
        for (const Candidate &c : order) {
            if (freed >= want)
                break;
            freed += evict(*c.file, true, 1, c.frame);
        }
        return freed;
    }
};

/**
 * Ablation: uniform-random victim files, FIFO within the file. A
 * deterministic sweep backstop guarantees exhaustion still frees
 * frames (and writes dirty pages home) when the dice keep missing.
 */
class RandomPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "random"; }

    unsigned
    reclaim(const std::vector<CacheFile *> &files, FrameArena &,
            unsigned want, const EvictFn &evict) override
    {
        unsigned freed = 0;
        if (files.empty())
            return freed;
        unsigned attempts = static_cast<unsigned>(files.size()) * 2 + 8;
        for (unsigned a = 0; a < attempts && freed < want; ++a) {
            CacheFile *f = files[rng_.nextBelow(files.size())];
            if (!f->cache)
                continue;
            freed += evict(*f, true, want - freed, kNoFrame);
        }
        for (CacheFile *f : files) {
            if (freed >= want)
                break;
            if (f->cache)
                freed += evict(*f, true, want - freed, kNoFrame);
        }
        return freed;
    }

  private:
    SplitMix64 rng_{0xE71C7E0Dull};
};

} // namespace

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionPolicyKind kind)
{
    switch (kind) {
      case EvictionPolicyKind::PaperTiered:
        return std::make_unique<PaperTieredPolicy>();
      case EvictionPolicyKind::GlobalLru:
        return std::make_unique<GlobalLruPolicy>();
      case EvictionPolicyKind::TwoQ:
        return std::make_unique<TwoQPolicy>();
      case EvictionPolicyKind::Random:
        return std::make_unique<RandomPolicy>();
    }
    gpufs_fatal("unknown eviction policy kind");
    return nullptr;
}

// ---------------------------------------------------------------------
// BufferCache
// ---------------------------------------------------------------------

BufferCache::BufferCache(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
                         const GpuFsParams &fs_params, StatSet &stat_set)
    : dev(device), queue(rpc_queue), params_(fs_params),
      arena_(fs_params.cacheBytes, fs_params.pageSize),
      policy_(makeEvictionPolicy(fs_params.evictPolicy)),
      cntCacheHits(stat_set.counter("cache_hits")),
      cntCacheMisses(stat_set.counter("cache_misses")),
      // Table 2 semantics: a "lock-free access" is a page access whose
      // fast-path pin succeeds; a "locked access" is one that had to
      // take the fpage lock (initialization, eviction collisions).
      cntLockfree(stat_set.counter("lockfree_accesses")),
      cntLocked(stat_set.counter("locked_accesses")),
      cntReadRpcs(stat_set.counter("read_rpcs")),
      cntBatchReadRpcs(stat_set.counter("batch_read_rpcs")),
      cntBatchPages(stat_set.counter("batch_read_pages")),
      cntWriteRpcs(stat_set.counter("writeback_rpcs")),
      cntBatchWriteRpcs(stat_set.counter("batch_write_rpcs")),
      cntBatchWritePages(stat_set.counter("batch_write_pages")),
      // Sharded multi-GPU: non-owner misses that went to a peer, split
      // into pages the owner served (P2P forward) vs host fallback —
      // together these count every non-owner miss.
      cntPeerReadRpcs(stat_set.counter("peer_read_rpcs")),
      cntPeerPagesForwarded(stat_set.counter("peer_pages_forwarded")),
      cntPeerPagesFallback(stat_set.counter("peer_pages_fallback")),
      cntPeerWriteRpcs(stat_set.counter("peer_write_rpcs")),
      cntPeerExtentsMirrored(stat_set.counter("peer_extents_mirrored")),
      // Adaptive read-ahead feedback: every ra_issued page is counted
      // exactly once more as ra_hit (first pin promoted it) or
      // ra_wasted (evicted/dropped never pinned).
      cntRaIssued(stat_set.counter("ra_issued")),
      cntRaGhostHits(stat_set.counter("ra_ghost_hits")),
      // Per-stream read-ahead: stream-table occupancy high-water and
      // live-slot recycles (cross-block scan health signals).
      cntRaStreamsActive(stat_set.counter("ra_streams_active")),
      cntRaStreamRecycles(stat_set.counter("ra_stream_recycles")),
      cacheCounters_(cacheCounters(stat_set))
{
    dev.allocDeviceMem(params_.cacheBytes);
    // Serving tier: arm the per-tenant frame quotas before any fault
    // can allocate (configuration-time write, see setTenantQuota).
    for (unsigned t = 0; t < kMaxTenants; ++t)
        arena_.setTenantQuota(static_cast<TenantId>(t),
                              params_.tenantFrameQuota[t]);
    // GPUDirect registration constraint: storage DMAs land in BAR
    // windows mapped at gdsAlignBytes granularity, so a frame whose
    // byte offset in the raw data array misses that boundary cannot be
    // a direct-DMA target. Counted once at construction — the arena
    // geometry is fixed — and asserted zero for the default shapes
    // (pageSize is a multiple of the alignment).
    const uint64_t align = dev.simContext().params.gdsAlignBytes;
    uint64_t unaligned = 0;
    if (align > 0) {
        for (uint32_t i = 0; i < arena_.numFrames(); ++i) {
            if ((uint64_t(i) * params_.pageSize) % align != 0)
                ++unaligned;
        }
    }
    stat_set.counter("gds_unaligned_frames").set(unaligned);
}

BufferCache::~BufferCache()
{
    dev.freeDeviceMem(params_.cacheBytes);
}

CacheCounters
BufferCache::cacheCounters(StatSet &stat_set)   // static
{
    // Radix-tree *walk* counters are tracked separately from the
    // page-access counters above (walks hardly ever lock because
    // nodes are never deleted; page pins do lock under paging).
    return CacheCounters{stat_set.counter("radix_lockfree_walks"),
                         stat_set.counter("radix_locked_walks"),
                         stat_set.counter("pages_reclaimed"),
                         stat_set.counter("ra_hit"),
                         stat_set.counter("ra_wasted")};
}

void
BufferCache::attach(CacheFile &f)
{
    PagingGuard lock(*this);
    attached_.push_back(&f);
}

void
BufferCache::setupFile(CacheFile &f)
{
    PagingGuard lock(*this);
    f.cache = std::make_unique<FileCache>(arena_, cacheCounters_,
                                          params_.forceLockedTraversal);
    // Eviction-side prefetch feedback (noteWasted) reaches the file's
    // tracker through the cache; wired before any page can publish.
    f.cache->setTracker(&f.ra);
    // Serving tier: frame claims made through this cache bill the
    // opener's tenant (quota checked in FrameArena::allocFor).
    f.cache->setTenantTag(&f.tenant);
}

int
BufferCache::parkFile(CacheFile &f, uint64_t close_seq)
{
    PagingGuard lock(*this);
    f.closeSeq = close_seq;
    f.closed = true;
    if (f.cache && (f.cache->dirtyCount() != 0 ||
                    f.wbInFlight.load() != 0 ||
                    f.fetchInFlight.load() != 0 ||
                    f.opInFlight.load() != 0)) {
        // Keep the fd: eviction may still write back, an in-flight
        // drain (async flusher) still needs it — its take made the
        // count 0 before its RPC landed — a split-phase fetch
        // (wait-after-close) reads through it until collected, and an
        // unretired async op may need it to refetch evicted pages at
        // resolution. maybeReleaseClosedFd picks the fd up once they
        // complete.
        return -1;
    }
    int old_fd = f.hostFd;
    f.hostFd = -1;
    return old_fd;
}

int
BufferCache::reopenFile(CacheFile &f, int new_host_fd)
{
    PagingGuard lock(*this);
    int old_fd = f.hostFd;
    f.hostFd = new_host_fd;
    f.closed = false;
    return old_fd;
}

bool
BufferCache::dropPages(CacheFile &f)
{
    PagingGuard lock(*this);
    if (f.fetchInFlight.load(std::memory_order_acquire) != 0)
        return false;   // split-phase fetch targets these frames
    return f.cache ? f.cache->dropAll() : true;
}

void
BufferCache::destroyFile(CacheFile &f)
{
    PagingGuard lock(*this);
    if (!f.cache)
        return;
    bool clean = f.cache->dropAll();
    gpufs_assert(clean, "destroying file cache with pinned pages");
    f.cache.reset();
}

Status
BufferCache::fetchPage(gpu::BlockCtx &ctx, CacheFile &f, uint64_t page_idx,
                       uint8_t *data, uint32_t *valid, Time *done)
{
    const uint64_t page_size = params_.pageSize;
    if (f.wronce) {
        // The pristine copy is implicitly all zeros (§3.1): no fetch,
        // no DMA — the page is "ready" from the beginning of time for
        // any block's virtual clock (see pinPage's skip_fetch note).
        std::memset(data, 0, page_size);
        *valid = 0;
        *done = 0;
        return Status::Ok;
    }
    rpc::RpcRequest req;
    req.hostFd = f.hostFd;
    req.offset = page_idx * page_size;
    req.len = page_size;
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    req.tenant = f.tenant.load(std::memory_order_relaxed);
    unsigned owner = pageOwner(f, page_idx);
    if (shardedFile(f))
        shards_->recordHeat(req.tenant, f.ino, page_idx, dev.id(), 1);
    if (owner != dev.id()) {
        // Non-owner miss: route the demand fetch to the owner GPU's
        // cache (PeerReadPages, pageCount=1); the daemon falls back to
        // the host for pages the owner does not hold.
        req.op = rpc::RpcOp::PeerReadPages;
        req.peerGpu = owner;
        req.ino = f.ino;
        req.version = f.version.load(std::memory_order_relaxed);
        req.pageLen = page_size;
        req.pageCount = 1;
        req.batch[0] = data;
    } else {
        req.op = rpc::RpcOp::ReadPage;
        req.data = data;
    }
    rpc::RpcResponse resp = queue.call(req);
    if (owner != dev.id())
        cntPeerReadRpcs.inc();
    else
        cntReadRpcs.inc();
    if (!ok(resp.status))
        return resp.status;
    if (owner != dev.id()) {
        cntPeerPagesForwarded.inc(resp.peerPages);
        cntPeerPagesFallback.inc(resp.peerPages ? 0 : 1);
    }
    if (resp.bytes < page_size)
        std::memset(data + resp.bytes, 0, page_size - resp.bytes);
    *valid = static_cast<uint32_t>(resp.bytes);
    *done = resp.done;
    return Status::Ok;
}

Time
BufferCache::writebackExtent(CacheFile &f, uint64_t page_idx,
                             const uint8_t *data, uint32_t lo, uint32_t hi,
                             Time issue, Status *st)
{
    gpufs_assert(f.hostFd >= 0, "write-back without host fd");

    // Diff-and-merge (extension, §3.1): the GPU "diffs the working and
    // the pristine copies at the next synchronization point". Each
    // byte is read from the working copy exactly once, folded into the
    // pristine, and exactly that value is propagated — so a concurrent
    // writer racing this scan either lands before the single read
    // (propagated now) or after it (differs from the refreshed
    // pristine, propagated by the next sync). Only changed runs are
    // written, preserving other processors' updates to falsely shared
    // pages.
    uint32_t working = arena_.frameOf(data);
    uint8_t *pristine_base = nullptr;
    if (params_.enableDiffMerge && !f.wronce && working != kNoFrame) {
        uint32_t pr = arena_.frame(working).pristineFrame.load(
            std::memory_order_acquire);
        if (pr != kNoFrame)
            pristine_base = arena_.data(pr);
    }
    if (pristine_base) {
        // Charge the GPU-side diff scan (read both copies).
        Time t = issue + transferTime(2 * (hi - lo),
                                      dev.simContext().params.gpuMemBwMBps);
        Time max_done = t;
        Status agg = Status::Ok;
        // Changed runs batch into WritePages requests (up to
        // kMaxBatchPages runs each) instead of one WriteBack RPC per
        // run: a heavily fragmented page pays one request charge per
        // batch, not per run.
        WriteExtent runs[rpc::kMaxBatchPages];
        unsigned nruns = 0;
        auto flush_runs = [&]() {
            if (nruns == 0)
                return;
            Time done = t;
            Status run_st = writeExtentsRpc(f, runs, nruns,
                                            /*zero_diff=*/false, t, &done);
            if (!ok(run_st))
                agg = run_st;
            max_done = std::max(max_done, done);
            nruns = 0;
        };
        uint32_t i = lo;
        while (i < hi) {
            while (i < hi && data[i] == pristine_base[i])
                ++i;
            uint32_t run = i;
            while (run < hi) {
                uint8_t v = data[run];      // single racy read, folded
                if (v == pristine_base[run])
                    break;
                pristine_base[run] = v;
                ++run;
            }
            if (run > i) {
                if (params_.batchWriteback) {
                    if (nruns == rpc::kMaxBatchPages)
                        flush_runs();
                    runs[nruns++] = {page_idx * params_.pageSize + i,
                                     run - i,
                                     pristine_base + i};  // stable snapshot
                } else {
                    rpc::RpcRequest req;
                    req.op = rpc::RpcOp::WriteBack;
                    req.hostFd = f.hostFd;
                    req.offset = page_idx * params_.pageSize + i;
                    req.len = run - i;
                    req.data = pristine_base + i;   // stable snapshot
                    req.gpuId = dev.id();
                    req.issueTime = t;
                    req.tenant = f.tenant.load(std::memory_order_relaxed);
                    rpc::RpcResponse r = queue.call(req);
                    cntWriteRpcs.inc();
                    if (!ok(r.status)) {
                        agg = r.status;
                    } else {
                        if (r.version != 0)
                            f.version.store(r.version,
                                            std::memory_order_relaxed);
                        f.needsFsync.store(true,
                                           std::memory_order_release);
                    }
                    max_done = std::max(max_done, r.done);
                }
            }
            i = run;
        }
        flush_runs();
        if (st)
            *st = agg;
        return max_done;
    }

    rpc::RpcRequest req;
    req.op = rpc::RpcOp::WriteBack;
    req.hostFd = f.hostFd;
    req.offset = page_idx * params_.pageSize + lo;
    req.len = hi - lo;
    req.data = const_cast<uint8_t *>(data) + lo;
    req.diffAgainstZeros = f.wronce;
    req.gpuId = dev.id();
    req.issueTime = issue;
    req.tenant = f.tenant.load(std::memory_order_relaxed);
    rpc::RpcResponse resp = queue.call(req);
    cntWriteRpcs.inc();
    if (st)
        *st = resp.status;
    if (ok(resp.status)) {
        if (resp.version != 0) {
            // Track the version our own write produced so reopen does
            // not mistake it for a remote modification.
            f.version.store(resp.version, std::memory_order_relaxed);
        }
        f.needsFsync.store(true, std::memory_order_release);
    }
    return resp.done;
}

Status
BufferCache::writeExtentsRpc(CacheFile &f, const WriteExtent *ext,
                             unsigned n, bool zero_diff, Time issue,
                             Time *done_out)
{
    gpufs_assert(f.hostFd >= 0, "write-back without host fd");
    gpufs_assert(n >= 1 && n <= rpc::kMaxBatchPages,
                 "write batch size out of range");
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::WritePages;
    req.hostFd = f.hostFd;
    req.diffAgainstZeros = zero_diff;
    req.gpuId = dev.id();
    req.issueTime = issue;
    req.tenant = f.tenant.load(std::memory_order_relaxed);
    req.pageCount = n;
    uint64_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
        req.batch[i] = const_cast<uint8_t *>(ext[i].data);
        req.batchOff[i] = ext[i].off;
        req.batchLen[i] = ext[i].len;
        total += ext[i].len;
    }
    req.len = total;
    rpc::RpcResponse resp = queue.call(req);
    cntBatchWriteRpcs.inc();
    cntBatchWritePages.inc(n);
    if (done_out)
        *done_out = resp.done;
    if (!ok(resp.status))
        return resp.status;
    if (resp.version != 0) {
        // Track the version our own write produced so reopen does not
        // mistake it for a remote modification.
        f.version.store(resp.version, std::memory_order_relaxed);
    }
    f.needsFsync.store(true, std::memory_order_release);
    return Status::Ok;
}

Status
BufferCache::peerWriteExtentsRpc(CacheFile &f, unsigned owner_gpu,
                                 const WriteExtent *ext, unsigned n,
                                 uint64_t base_version, bool publish,
                                 Time issue, Time *done_out)
{
    gpufs_assert(f.hostFd >= 0, "write-back without host fd");
    gpufs_assert(n >= 1 && n <= rpc::kMaxBatchPages,
                 "peer write batch size out of range");
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::PeerWritePages;
    req.hostFd = f.hostFd;
    req.peerGpu = owner_gpu;
    req.ino = f.ino;
    // The version the OWNER is expected to sit at: the one from
    // before this flush's first partition — a sibling partition's
    // host write must not fail every later partition's mirror gate.
    req.version = base_version;
    req.peerPublish = publish;
    req.pageLen = params_.pageSize;
    req.gpuId = dev.id();
    req.issueTime = issue;
    req.tenant = f.tenant.load(std::memory_order_relaxed);
    req.pageCount = n;
    uint64_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
        req.batch[i] = const_cast<uint8_t *>(ext[i].data);
        req.batchOff[i] = ext[i].off;
        req.batchLen[i] = ext[i].len;
        total += ext[i].len;
    }
    req.len = total;
    rpc::RpcResponse resp = queue.call(req);
    cntPeerWriteRpcs.inc();
    if (done_out)
        *done_out = std::max(*done_out, resp.done);
    if (!ok(resp.status))
        return resp.status;
    cntPeerExtentsMirrored.inc(resp.peerPages);
    if (resp.version != 0) {
        // The host write-through bumped the version; track it so
        // reopen does not mistake our own write for a remote one.
        f.version.store(resp.version, std::memory_order_relaxed);
    }
    f.needsFsync.store(true, std::memory_order_release);
    return Status::Ok;
}

Status
BufferCache::writeBatchSharded(CacheFile &f, const DirtyExtent *ext,
                               unsigned n, Time issue, Time *done_out,
                               bool *ext_failed)
{
    if (ext_failed)
        std::fill(ext_failed, ext_failed + n, false);
    WriteExtent w[rpc::kMaxBatchPages];
    for (unsigned i = 0; i < n; ++i) {
        w[i] = {ext[i].pageIdx * params_.pageSize + ext[i].lo,
                ext[i].hi - ext[i].lo,
                arena_.data(ext[i].frame) + ext[i].lo};
    }
    if (!shardedFile(f)) {
        Time done = issue;
        Status st = writeExtentsRpc(f, w, n, f.wronce, issue, &done);
        if (done_out)
            *done_out = std::max(*done_out, done);
        if (!ok(st) && ext_failed)
            std::fill(ext_failed, ext_failed + n, true);
        return st;
    }

    // Partition the taken batch by page owner: self-owned extents ride
    // one plain WritePages; each peer owner's extents ride one
    // PeerWritePages. Write-back thus stays owner-local without the
    // PR-2 take/finish machinery above this call changing at all.
    unsigned owner_of[rpc::kMaxBatchPages];
    unsigned partitions = 0;
    for (unsigned i = 0; i < n; ++i) {
        owner_of[i] = pageOwner(f, ext[i].pageIdx);
        bool seen = false;
        for (unsigned j = 0; j < i; ++j)
            seen = seen || owner_of[j] == owner_of[i];
        partitions += seen ? 0 : 1;
    }
    // Version the whole flush gates on (see peerWriteExtentsRpc); the
    // owner may have its post-write version published only when this
    // flush has a single partition — with siblings, other pages of the
    // file change in the same flush and a publish would validate the
    // owner's possibly-stale copies of them.
    const uint64_t base_version =
        f.version.load(std::memory_order_relaxed);
    const bool publish = partitions == 1;

    Status agg = Status::Ok;
    bool used[rpc::kMaxBatchPages] = {};
    for (unsigned i = 0; i < n; ++i) {
        if (used[i])
            continue;
        unsigned owner = owner_of[i];
        WriteExtent grp[rpc::kMaxBatchPages];
        unsigned members[rpc::kMaxBatchPages];
        unsigned g = 0;
        for (unsigned j = i; j < n; ++j) {
            if (!used[j] && owner_of[j] == owner) {
                members[g] = j;
                grp[g++] = w[j];
                used[j] = true;
            }
        }
        Time done = issue;
        Status one = owner == dev.id()
            ? writeExtentsRpc(f, grp, g, /*zero_diff=*/false, issue,
                              &done)
            : peerWriteExtentsRpc(f, owner, grp, g, base_version,
                                  publish, issue, &done);
        if (done_out)
            *done_out = std::max(*done_out, done);
        if (!ok(one)) {
            if (ext_failed) {
                for (unsigned k = 0; k < g; ++k)
                    ext_failed[members[k]] = true;
            }
            if (ok(agg))
                agg = one;
        }
    }
    return agg;
}

Status
BufferCache::flushDirty(gpu::BlockCtx &ctx, CacheFile &f,
                        uint64_t first_page, uint64_t last_page,
                        unsigned *pages_out, uint64_t max_pages)
{
    if (pages_out)
        *pages_out = 0;
    if (!f.cache)
        return Status::Ok;
    // Mark the drain in flight for its whole duration: once a take
    // drops dirtyCount() to 0, this is the only signal telling fd
    // release (parkFile, the closed-fd sweep) that the host fd is
    // still needed by our not-yet-landed RPCs.
    struct WbGuard {
        CacheFile &cf;
        explicit WbGuard(CacheFile &file) : cf(file)
        {
            cf.wbInFlight.fetch_add(1);
        }
        ~WbGuard() { cf.wbInFlight.fetch_sub(1); }
    } wb_guard(f);
    // Callers draining for durability (gfsync, truncate, recycle — no
    // page bound) must also wait out extents a CONCURRENT collector
    // (e.g. the async flusher) took and still has in flight; bounded
    // callers (eviction, the flusher itself) don't make that promise.
    const bool durability = max_pages == UINT64_MAX;

    // Diff-and-merge pages must diff against their GPU-side pristine
    // copies, so they go through writebackExtent per page (each page's
    // changed runs still batch into WritePages there).
    if (!params_.batchWriteback || diffMergeActive(f)) {
        Status st = flushDirtyPerPage(ctx, f, first_page, last_page,
                                      pages_out, max_pages);
        if (ok(st) && durability)
            f.cache->awaitWritebacks(first_page, last_page);
        return st;
    }

    Time max_done = ctx.now();
    Status agg = Status::Ok;
    // Bound the drain to the pages dirty at entry (gfsync's contract:
    // pages dirtied after the sync started belong to a later sync), so
    // a concurrent writer cannot keep this loop alive forever; callers
    // may bound it further via max_pages.
    uint64_t budget = std::min(f.cache->dirtyCount(), max_pages);
    while (budget > 0) {
        DirtyExtent ext[rpc::kMaxBatchPages];
        unsigned n = f.cache->takeDirtyBatch(
            first_page, last_page, ext,
            static_cast<unsigned>(
                std::min<uint64_t>(budget, rpc::kMaxBatchPages)));
        if (n == 0)
            break;
        budget -= std::min<uint64_t>(budget, n);
        if (f.hostFd < 0) {
            if (f.noSync) {
                // NOSYNC temp whose fd is gone: never written back
                // anyway; discard.
                f.cache->finishDirtyBatch(ext, n, /*restore=*/false);
                continue;
            }
            // A host-synced file without an fd must not silently eat
            // dirty data — restore and report (should be unreachable:
            // fd release defers while pages are dirty or in flight).
            f.cache->finishDirtyBatch(ext, n, /*restore=*/true);
            gpufs_warn("dirty pages on fd-less host-synced file");
            agg = Status::BadFd;
            break;
        }
        // All write-backs are issued at the current clock so their DMA
        // and host I/O pipeline on the resource timelines. Sharded
        // files partition the batch by page owner (peer extents ride
        // PeerWritePages, mirroring the owner's resident copy on the
        // way to the host); private files take one WritePages.
        Time done = ctx.now();
        bool failed[rpc::kMaxBatchPages] = {};
        Status one = writeBatchSharded(f, ext, n, ctx.now(), &done,
                                       failed);
        if (!ok(one)) {
            // Restore ONLY the failed partitions' extents so a later
            // sync retries exactly them (a sharded batch may have
            // landed sibling partitions on the host already); stop
            // rather than re-take the same failing pages.
            DirtyExtent good[rpc::kMaxBatchPages];
            DirtyExtent bad[rpc::kMaxBatchPages];
            unsigned ng = 0, nb = 0;
            for (unsigned i = 0; i < n; ++i)
                (failed[i] ? bad[nb++] : good[ng++]) = ext[i];
            if (ng > 0) {
                f.cache->finishDirtyBatch(good, ng, /*restore=*/false);
                if (pages_out)
                    *pages_out += ng;
            }
            f.cache->finishDirtyBatch(bad, nb, /*restore=*/true);
            agg = one;
            break;
        }
        f.cache->finishDirtyBatch(ext, n, /*restore=*/false);
        if (pages_out)
            *pages_out += n;
        max_done = std::max(max_done, done);
    }
    if (ok(agg) && durability)
        f.cache->awaitWritebacks(first_page, last_page);
    ctx.waitUntil(max_done);
    return agg;
}

Status
BufferCache::flushDirtyPerPage(gpu::BlockCtx &ctx, CacheFile &f,
                               uint64_t first_page, uint64_t last_page,
                               unsigned *pages_out, uint64_t max_pages)
{
    Time max_done = ctx.now();
    Status agg = Status::Ok;
    uint64_t left = max_pages;
    unsigned flushed = f.cache->forEachDirty(
        [&](uint64_t idx, uint8_t *data, uint32_t lo,
            uint32_t hi) -> bool {
            if (left == 0)
                return false;    // page cap hit: keep the rest dirty
            if (idx < first_page || idx >= last_page)
                return false;    // outside the range: keep it dirty
            Status one;
            // All write-backs are issued at the current clock so their
            // DMA and host I/O pipeline on the resource timelines.
            Time done = writebackExtent(f, idx, data, lo, hi, ctx.now(),
                                        &one);
            max_done = std::max(max_done, done);
            if (!ok(one)) {
                agg = one;
                return false;   // restore the extent: a later sync retries
            }
            --left;
            return true;
        });
    if (pages_out)
        *pages_out = flushed;
    ctx.waitUntil(max_done);
    return agg;
}

unsigned
BufferCache::submitFlush(gpu::BlockCtx &ctx, CacheFile &f,
                         uint64_t first_page, uint64_t last_page,
                         PendingFlush *out, unsigned max_batches)
{
    if (!f.cache || f.noSync || f.hostFd < 0 || !params_.batchWriteback)
        return 0;
    // Diff-and-merge extents must diff against GPU-side pristine
    // copies page by page — they stay on the synchronous path.
    if (diffMergeActive(f))
        return 0;
    const uint64_t page_size = params_.pageSize;
    const bool sharded = shardedFile(f);
    unsigned nb = 0;
    uint64_t budget = f.cache->dirtyCount();
    bool stop = false;
    while (!stop && nb < max_batches && budget > 0) {
        DirtyExtent take[rpc::kMaxBatchPages];
        unsigned n = f.cache->takeDirtyBatch(
            first_page, last_page, take,
            static_cast<unsigned>(
                std::min<uint64_t>(budget, rpc::kMaxBatchPages)));
        if (n == 0)
            break;
        budget -= std::min<uint64_t>(budget, n);

        // Partition the take by page owner, exactly like the wait-time
        // writeBatchSharded: self-owned extents ride one WritePages,
        // each peer owner's one PeerWritePages (private files are one
        // self partition). One output slot per partition.
        unsigned owner_of[rpc::kMaxBatchPages];
        unsigned partitions = 0;
        for (unsigned i = 0; i < n; ++i) {
            owner_of[i] = sharded ? pageOwner(f, take[i].pageIdx)
                                  : dev.id();
            bool seen = false;
            for (unsigned j = 0; j < i; ++j)
                seen = seen || owner_of[j] == owner_of[i];
            partitions += seen ? 0 : 1;
        }
        if (nb + partitions > max_batches) {
            // Not enough output slots for every partition of this
            // take: restore it whole — a partial submit would need
            // wait-time code to know which partitions went out.
            f.cache->finishDirtyBatch(take, n, /*restore=*/true);
            break;
        }
        // Peer mirrors gate on the pre-flush version; publish of the
        // post-write version is safe only when the whole take is one
        // partition (see writeBatchSharded).
        const uint64_t base_version =
            f.version.load(std::memory_order_relaxed);
        const bool publish = partitions == 1;

        bool used[rpc::kMaxBatchPages] = {};
        for (unsigned i = 0; i < n; ++i) {
            if (used[i])
                continue;
            const unsigned owner = owner_of[i];
            PendingFlush &pf = out[nb];
            pf.n = 0;
            for (unsigned j = i; j < n; ++j) {
                if (!used[j] && owner_of[j] == owner) {
                    pf.ext[pf.n++] = take[j];
                    used[j] = true;
                }
            }
            pf.zeroDiff = f.wronce;
            pf.peer = owner != dev.id();
            pf.peerGpu = owner;
            rpc::RpcRequest req;
            req.hostFd = f.hostFd;
            req.diffAgainstZeros = pf.zeroDiff;
            req.gpuId = dev.id();
            req.issueTime = ctx.now();
            req.tenant = f.tenant.load(std::memory_order_relaxed);
            req.pageCount = pf.n;
            if (pf.peer) {
                req.op = rpc::RpcOp::PeerWritePages;
                req.peerGpu = owner;
                req.ino = f.ino;
                req.version = base_version;
                req.peerPublish = publish;
                req.pageLen = page_size;
            } else {
                req.op = rpc::RpcOp::WritePages;
            }
            uint64_t total = 0;
            for (unsigned k = 0; k < pf.n; ++k) {
                req.batch[k] =
                    arena_.data(pf.ext[k].frame) + pf.ext[k].lo;
                req.batchOff[k] =
                    pf.ext[k].pageIdx * page_size + pf.ext[k].lo;
                req.batchLen[k] = pf.ext[k].hi - pf.ext[k].lo;
                total += req.batchLen[k];
            }
            req.len = total;
            // The in-flight mark spans submission→wait: the take above
            // made these pages read clean, and fd release must not
            // slip in before the RPC lands. Submission must not block
            // on a full queue (the submitter may hold uncollected
            // slots) — restore the extents and leave them to the
            // wait-time drain.
            f.wbInFlight.fetch_add(1);
            pf.rpcSlot = queue.trySubmit(req);
            if (!pf.rpcSlot) {
                f.cache->finishDirtyBatch(pf.ext, pf.n,
                                          /*restore=*/true);
                f.wbInFlight.fetch_sub(1);
                // Restore the take's remaining partitions too — they
                // were taken but will never be submitted.
                DirtyExtent rest[rpc::kMaxBatchPages];
                unsigned nr = 0;
                for (unsigned j = 0; j < n; ++j) {
                    if (!used[j])
                        rest[nr++] = take[j];
                }
                if (nr > 0)
                    f.cache->finishDirtyBatch(rest, nr,
                                              /*restore=*/true);
                stop = true;
                break;
            }
            ++nb;
        }
    }
    return nb;
}

Status
BufferCache::completeFlush(CacheFile &f, PendingFlush &pf,
                           Time *done_out)
{
    if (!pf.rpcSlot)
        return Status::Ok;
    rpc::RpcResponse resp = queue.collect(*pf.rpcSlot);
    pf.rpcSlot = nullptr;
    if (pf.peer) {
        cntPeerWriteRpcs.inc();
        if (ok(resp.status))
            cntPeerExtentsMirrored.inc(resp.peerPages);
    } else {
        cntBatchWriteRpcs.inc();
        cntBatchWritePages.inc(pf.n);
    }
    if (done_out)
        *done_out = std::max(*done_out, resp.done);
    // Restore failed extents BEFORE dropping the in-flight mark so the
    // file never reads clean while its dirty data is in limbo.
    f.cache->finishDirtyBatch(pf.ext, pf.n, /*restore=*/!ok(resp.status));
    if (ok(resp.status)) {
        if (resp.version != 0)
            f.version.store(resp.version, std::memory_order_relaxed);
        f.needsFsync.store(true, std::memory_order_release);
    }
    f.wbInFlight.fetch_sub(1);
    return resp.status;
}

Status
BufferCache::syncFrame(gpu::BlockCtx &ctx, CacheFile &f, uint32_t frame)
{
    // Same in-flight marking as flushDirty: the take below makes the
    // page read clean before the RPC lands, and fd release must not
    // slip into that window.
    f.wbInFlight.fetch_add(1);
    struct WbGuard {
        CacheFile &cf;
        ~WbGuard() { cf.wbInFlight.fetch_sub(1); }
    } wb_guard{f};
    PFrame &pf = arena_.frame(frame);
    uint64_t extent = f.cache->takeDirtyCounted(pf);
    uint32_t lo = PFrame::extentLo(extent);
    uint32_t hi = PFrame::extentHi(extent);
    if (lo >= hi)
        return Status::Ok;
    Status st;
    Time done = writebackExtent(
        f, pf.pageIdx.load(std::memory_order_relaxed), arena_.data(frame),
        lo, hi, ctx.now(), &st);
    ctx.waitUntil(done);
    if (!ok(st)) {
        // Restore so a later sync can retry.
        f.cache->noteDirty(pf, lo, hi);
    }
    return st;
}

unsigned
BufferCache::reclaimFrames(gpu::BlockCtx &ctx, unsigned want, uint8_t tenant)
{
    // Paging runs on the calling block's thread — "pay-as-you-go"
    // (§3.4): no daemon threadblock exists to do it asynchronously.
    PagingGuard lock(*this);

    auto evict = [&](CacheFile &f, bool allow_dirty, unsigned n,
                     uint32_t frame_hint) -> unsigned {
        // The demote hook below must not stage bytes the host never
        // got: tryEvictPage runs the write-back (if any) first, and
        // this flag carries its outcome across the two callbacks.
        bool last_wb_failed = false;
        auto wb = [&](uint64_t idx, uint8_t *data, uint32_t lo,
                      uint32_t hi) {
            if (f.hostFd < 0) {
                last_wb_failed = true;
                return;     // NOSYNC temp whose fd is gone: discard
            }
            Status st;
            Time done = writebackExtent(f, idx, data, lo, hi, ctx.now(),
                                        &st);
            ctx.waitUntil(done);
            if (!ok(st)) {
                last_wb_failed = true;
                gpufs_warn("eviction write-back failed: %s",
                           statusName(st));
            }
        };
        // Demotion: instead of dropping an evicted frame's bytes,
        // stage them in the host-RAM victim tier so a re-miss costs
        // one H2D DMA instead of a storage round-trip. Runs under the
        // fpage lock (bytes stable), after any dirty write-back — a
        // dirty page demotes its POST-write content tagged with the
        // post-write version writebackExtent stored. Files whose GPU
        // copy legitimately diverges from the host (NOSYNC temps,
        // zero-pristine wronce, diff-merge) never demote: the daemon
        // would serve their bytes as host content. The D2H rides the
        // dedicated host-staging timeline fire-and-forget; the
        // evicting block's clock does not advance (pay-as-you-go only
        // for work the block needs).
        auto demote = [&](uint64_t idx, const uint8_t *data,
                          uint32_t valid) {
            bool failed = last_wb_failed;
            last_wb_failed = false;
            if (!victim_ || failed || valid == 0)
                return;
            if (f.noSync || f.wronce || diffMergeActive(f) || f.ino == 0)
                return;
            auto &sim = dev.simContext();
            const auto &hp = sim.params;
            Time ready = ctx.now();
            if (hp.chargeDma) {
                ready = sim.hostStage(dev.id())
                            .reserve(ctx.now(),
                                     hp.dmaSetup +
                                         transferTime(valid,
                                                      hp.pcieBwD2HMBps))
                            .end;
            }
            // Victim occupancy is charged to the tenant stamped on the
            // FRAME (the one whose fault claimed it), not the evictor:
            // eviction must not let tenant A launder its footprint into
            // tenant B's victim quota.
            uint32_t fr = arena_.frameOf(data);
            uint8_t owner_tenant = fr != kNoFrame
                ? arena_.frame(fr).tenant.load(std::memory_order_relaxed)
                : 0;
            victim_->insert(f.ino, idx,
                            f.version.load(std::memory_order_relaxed),
                            data, valid, ready, owner_tenant);
        };
        if (frame_hint != kNoFrame)
            return f.cache->evictFrame(frame_hint, allow_dirty, wb,
                                       demote);
        if (allow_dirty && params_.batchWriteback && f.hostFd >= 0 &&
            !f.noSync && f.cache->dirtyCount() != 0) {
            // Dirty eviction routes through the batched path: push
            // about as many of the file's oldest dirty extents home as
            // frames are wanted (takeDirtyBatch walks the same FIFO
            // order reclaim evicts in), as WritePages batches, so the
            // reclaim below finds clean pages. Bounded: draining the
            // whole file under the paging lock would stall every other
            // block needing a frame. The per-page wb above stays as
            // the backstop for dirty pages the bound left behind.
            Status st = flushDirty(ctx, f, 0, UINT64_MAX, nullptr,
                                   std::max<uint64_t>(
                                       n, rpc::kMaxBatchPages));
            if (!ok(st))
                gpufs_warn("eviction batch write-back failed: %s",
                           statusName(st));
        }
        return f.cache->reclaim(n, allow_dirty, wb, demote);
    };

    unsigned freed;
    if (tenant != kAnyTenant && arena_.tenantAtQuota(tenant)) {
        // The faulting tenant is at its frame quota: the arena may
        // still hold free frames (other tenants' headroom), so a
        // whole-cache reclaim would evict someone else's working set
        // to make room this tenant is not entitled to. Run the policy
        // over only this tenant's files — eviction within quota.
        std::vector<CacheFile *> own;
        own.reserve(attached_.size());
        for (CacheFile *f : attached_) {
            if (f->tenant.load(std::memory_order_relaxed) == tenant)
                own.push_back(f);
        }
        freed = policy_->reclaim(own, arena_, want, evict);
    } else {
        freed = policy_->reclaim(attached_, arena_, want, evict);
    }

    // Closed files whose last dirty page just went home can release
    // their host fd (and with it the host-side write claim).
    for (CacheFile *f : attached_) {
        if (f->closed && f->cache)
            maybeReleaseClosedFdLocked(ctx, *f);
    }
    return freed;
}

void
BufferCache::maybeReleaseClosedFd(gpu::BlockCtx &ctx, CacheFile &f)
{
    PagingGuard lock(*this);
    maybeReleaseClosedFdLocked(ctx, f);
}

void
BufferCache::maybeReleaseClosedFdLocked(gpu::BlockCtx &ctx, CacheFile &f)
{
    if (f.closed && f.hostFd >= 0 && f.cache &&
        f.cache->dirtyCount() == 0 && f.wbInFlight.load() == 0 &&
        f.fetchInFlight.load() == 0 && f.opInFlight.load() == 0) {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = f.hostFd;
        req.gpuId = dev.id();
        req.issueTime = ctx.now();
        req.tenant = f.tenant.load(std::memory_order_relaxed);
        rpc::RpcResponse resp = queue.call(req);
        ctx.waitUntil(resp.done);
        f.hostFd = -1;
    }
}

namespace {

/**
 * Prefetch-feedback promotion: the first APPLICATION pin of a
 * speculatively-fetched page proves the prefetch right. Runs on every
 * successful pinPage (the one place all application access paths —
 * sync gread resolution, async resolution, gmmap, RMW writes —
 * converge); daemon-side peer probes and read-ahead's own step-over
 * pins deliberately do not promote.
 */
void
promoteIfSpeculative(FrameArena &arena, CacheCounters &counters,
                     CacheFile &f, uint32_t frame)
{
    PFrame &pf = arena.frame(frame);
    if (pf.speculative.load(std::memory_order_relaxed) &&
        pf.speculative.exchange(false, std::memory_order_acq_rel)) {
        counters.raHits.inc();
        // The stream tag is stable once the exchange is won (stored
        // with the tag under the publish-time fpage lock): the hit
        // credits the stream whose window fetched the page.
        f.ra.noteHit(pf.raStream.load(std::memory_order_relaxed));
    }
}

/**
 * The prefetch stepping rule, shared by every read-ahead loop (sync
 * and split-phase, contiguous and strided): a page that is resident
 * or in flight (another block's fetch holds its lock) is hopped over
 * — under concurrent sequential readers most windows start on a
 * neighbour's in-flight page. @return false for anything else
 * (contended Empty page, arena exhausted), which ends the window —
 * prefetch must never page out on its own behalf.
 */
bool
prefetchStepOver(FileCache &c, uint64_t idx)
{
    FPage *p = c.getPage(idx);
    uint32_t fr;
    if (c.tryPinReady(*p, idx, &fr)) {
        c.unpin(*p);
        return true;
    }
    uint32_t s = p->state.load(std::memory_order_acquire);
    return s == kPageInit || s == kPageReady;
}

} // namespace

Status
BufferCache::pinPage(gpu::BlockCtx &ctx, CacheFile &f, uint64_t page_idx,
                     uint32_t *frame_out, FPage **fpage_out,
                     bool skip_fetch)
{
    if (page_idx > FileCache::maxPageIndex())
        return Status::Inval;
    // Diff-and-merge pages must snapshot the true host content as
    // their pristine copy, so the whole-page-overwrite fetch skip does
    // not apply to them.
    const bool diff_merge = diffMergeActive(f);
    if (diff_merge)
        skip_fetch = false;
    FileCache &c = *f.cache;
    FPage *p = c.getPage(page_idx);

    uint32_t frame;
    if (c.tryPinReady(*p, page_idx, &frame)) {
        cntCacheHits.inc();
        cntLockfree.inc();
        arena_.frame(frame).pinCount.fetch_add(
            1, std::memory_order_relaxed);
        promoteIfSpeculative(arena_, cacheCounters_, f, frame);
        ctx.charge(dev.simContext().params.cacheHitOverhead);
        ctx.waitUntil(arena_.frame(frame).readyTime.load(
            std::memory_order_acquire));
        *frame_out = frame;
        *fpage_out = p;
        return Status::Ok;
    }

    for (;;) {
        bool did_init = false;
        Status st = c.initAndPin(
            *p, page_idx, &frame, &did_init,
            [&](uint8_t *data, uint32_t *valid) -> Status {
                if (skip_fetch) {
                    // Whole-page overwrite: no reason to fetch content
                    // that is about to be clobbered. Zero-init needs
                    // no DMA, so readyTime stays 0: another block
                    // whose virtual clock is earlier than ours must
                    // not be stalled by OUR clock (it could equally
                    // have done the memset itself).
                    std::memset(data, 0, params_.pageSize);
                    *valid = 0;
                    return Status::Ok;
                }
                Time done = 0;
                Status fst = fetchPage(ctx, f, page_idx, data, valid,
                                       &done);
                if (!ok(fst))
                    return fst;
                PFrame &pf = arena_.frame(arena_.frameOf(data));
                pf.readyTime.store(done, std::memory_order_release);
                if (diff_merge) {
                    // §3.1: "a working copy to which local writes are
                    // performed, and a pristine copy preserved when
                    // the page is first read". One alloc attempt only:
                    // reclaim must not run while the fpage lock is
                    // held, so exhaustion rolls back to the NoSpace
                    // retry path below.
                    uint32_t pr = arena_.allocFor(
                        f.tenant.load(std::memory_order_relaxed));
                    if (pr == kNoFrame)
                        return Status::NoSpace;
                    std::memcpy(arena_.data(pr), data, params_.pageSize);
                    ctx.chargeGpuMem(params_.pageSize);
                    pf.pristineFrame.store(pr, std::memory_order_release);
                }
                return fst;
            });
        if (st == Status::NoSpace) {
            unsigned freed = reclaimFrames(
                ctx, params_.reclaimBatch,
                f.tenant.load(std::memory_order_relaxed));
            if (freed == 0)
                return Status::NoSpace;
            continue;
        }
        if (!ok(st))
            return st;
        cntLocked.inc();    // slow path held the fpage lock
        PFrame &pf = arena_.frame(frame);
        pf.pinCount.fetch_add(1, std::memory_order_relaxed);
        if (did_init) {
            cntCacheMisses.inc();
            ctx.charge(dev.simContext().params.pageMapOverhead);
        } else {
            cntCacheHits.inc();
            ctx.charge(dev.simContext().params.cacheHitOverhead);
            promoteIfSpeculative(arena_, cacheCounters_, f, frame);
        }
        ctx.waitUntil(pf.readyTime.load(std::memory_order_acquire));
        *frame_out = frame;
        *fpage_out = p;
        if (did_init && readAheadEnabled() && !skip_fetch && !f.wronce) {
            readAheadFrom(ctx, f, page_idx);
        }
        return Status::Ok;
    }
}

bool
BufferCache::submitClaimedFetch(gpu::BlockCtx &ctx, CacheFile &f,
                                PendingFetch &pf, bool blocking)
{
    gpufs_assert(pf.n >= 1 && pf.n <= rpc::kMaxBatchPages,
                 "fetch batch size out of range");
    const uint64_t page_size = params_.pageSize;
    rpc::RpcRequest req;
    req.hostFd = f.hostFd;
    req.offset = pf.startIdx * page_size;
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    req.tenant = f.tenant.load(std::memory_order_relaxed);
    req.speculative = pf.spec;
    if (shardedFile(f))
        shards_->recordHeat(req.tenant, f.ino, pf.startIdx, dev.id(),
                            pf.n);
    // Shard-group clipping upstream guarantees one owner per batch, so
    // the whole run routes to that owner (or to the host when self).
    unsigned owner = pageOwner(f, pf.startIdx);
    pf.peer = owner != dev.id();
    if (pf.peer) {
        req.op = rpc::RpcOp::PeerReadPages;
        req.peerGpu = owner;
        req.ino = f.ino;
        req.version = f.version.load(std::memory_order_relaxed);
        req.len = uint64_t(pf.n) * page_size;
        req.pageLen = page_size;
        req.pageCount = pf.n;
        for (unsigned i = 0; i < pf.n; ++i)
            req.batch[i] = arena_.data(pf.slots[i].frame);
    } else if (pf.single) {
        req.op = rpc::RpcOp::ReadPage;
        req.len = page_size;
        req.data = arena_.data(pf.slots[0].frame);
    } else {
        req.op = rpc::RpcOp::ReadPages;
        req.len = uint64_t(pf.n) * page_size;
        req.pageLen = page_size;
        req.pageCount = pf.n;
        for (unsigned i = 0; i < pf.n; ++i)
            req.batch[i] = arena_.data(pf.slots[i].frame);
    }
    // Elevated BEFORE the request is visible to the daemon: a racing
    // fd release must never observe the RPC without the mark.
    f.fetchInFlight.fetch_add(1);
    pf.rpcSlot = blocking ? queue.submit(req) : queue.trySubmit(req);
    if (!pf.rpcSlot) {
        // Queue full: roll the claim back — the pages resolve through
        // the synchronous pin path at wait time instead.
        f.fetchInFlight.fetch_sub(1);
        f.cache->abortInitBatch(pf.slots, pf.n);
        return false;
    }
    return true;
}

Status
BufferCache::completeFetch(CacheFile &f, PendingFetch &pf)
{
    if (!pf.rpcSlot)
        return Status::Ok;
    rpc::RpcResponse resp = queue.collect(*pf.rpcSlot);
    pf.rpcSlot = nullptr;
    if (pf.peer)
        cntPeerReadRpcs.inc();
    else if (pf.single)
        cntReadRpcs.inc();
    else
        cntBatchReadRpcs.inc();
    if (ok(resp.status) && pf.peer) {
        cntPeerPagesForwarded.inc(resp.peerPages);
        cntPeerPagesFallback.inc(pf.n - std::min<uint32_t>(pf.n,
                                                           resp.peerPages));
    }
    if (!ok(resp.status)) {
        f.cache->abortInitBatch(pf.slots, pf.n);
        f.fetchInFlight.fetch_sub(1);
        return resp.status;
    }
    const uint64_t page_size = params_.pageSize;
    uint32_t valid[rpc::kMaxBatchPages];
    for (unsigned i = 0; i < pf.n; ++i) {
        uint64_t base = uint64_t(i) * page_size;
        uint64_t got = resp.bytes > base
            ? std::min<uint64_t>(page_size, resp.bytes - base) : 0;
        valid[i] = static_cast<uint32_t>(got);
        if (got < page_size) {
            std::memset(arena_.data(pf.slots[i].frame) + got, 0,
                        page_size - got);
        }
    }
    f.cache->finishInitBatch(pf.slots, pf.n, valid, resp.done, pf.spec,
                             pf.specStream);
    cntCacheMisses.inc(pf.n);
    if (pf.spec) {
        // Prefetch feedback: the pages are published and tagged — each
        // will retire as exactly one ra_hit or ra_wasted, credited to
        // the stream that planned the batch.
        cntRaIssued.inc(pf.n);
        f.ra.notePublished(pf.specStream, pf.n);
    }
    if (pf.single) {
        // Demand fetch: a page access that held the fpage lock, like
        // the slow path it replaces (Table 2 accounting parity).
        cntLocked.inc();
    } else if (!pf.peer) {
        cntBatchPages.inc(pf.n);
    }
    f.fetchInFlight.fetch_sub(1);
    return Status::Ok;
}

bool
BufferCache::fetchBatch(gpu::BlockCtx &ctx, CacheFile &f,
                        uint64_t start_idx, const BatchSlot *slots,
                        unsigned n, bool spec, uint8_t stream)
{
    PendingFetch pf;
    pf.startIdx = start_idx;
    pf.n = n;
    pf.single = false;
    pf.spec = spec;
    pf.specStream = stream;
    std::copy(slots, slots + n, pf.slots);
    // The synchronous path holds no uncollected slots, so blocking for
    // a queue slot is safe here (and is the pre-async behavior).
    submitClaimedFetch(ctx, f, pf, /*blocking=*/true);
    return ok(completeFetch(f, pf));
}

bool
BufferCache::submitPageFetch(gpu::BlockCtx &ctx, CacheFile &f,
                             uint64_t page_idx, PendingFetch *out)
{
    if (!f.cache || f.wronce || f.hostFd < 0 ||
        page_idx > FileCache::maxPageIndex()) {
        return false;   // no host-fetch path: resolve pins handle it
    }
    // Diff-and-merge pages must snapshot a pristine copy under the
    // fetching pin (pinPage's slow path does that); a split-phase
    // publish without one would turn merges into clobbering writes.
    if (diffMergeActive(f))
        return false;
    // Claim reserve: split-phase claims are unreclaimable until their
    // collector runs, so a wave of submitters must not eat the arena's
    // last frames — synchronous pins (and other blocks' resolutions)
    // need reclaimable headroom. Under pressure the page simply
    // resolves synchronously at wait.
    if (arena_.freeCount() <= claimReserve())
        return false;
    // No reclaim attempt here (the sync miss path's retry loop): a
    // reclaim can write back dirty pages through a BLOCKING RPC, and
    // a split-phase submitter may already hold uncollected queue
    // slots — the deadlock cycle trySubmit exists to prevent. An
    // unclaimable page simply resolves synchronously at wait, where
    // the block holds nothing.
    if (f.cache->beginInitBatch(page_idx, 1, out->slots) == 1) {
        out->startIdx = page_idx;
        out->n = 1;
        out->single = true;
        out->spec = false;
        return submitClaimedFetch(ctx, f, *out, /*blocking=*/false);
    }
    return false;
}

unsigned
BufferCache::submitBatchFetch(gpu::BlockCtx &ctx, CacheFile &f,
                              uint64_t start_idx, unsigned max_n,
                              PendingFetch *out)
{
    if (!f.cache || f.wronce || f.hostFd < 0 ||
        start_idx > FileCache::maxPageIndex()) {
        return 0;
    }
    if (diffMergeActive(f))
        return 0;   // pristine snapshot needed: stay on the sync path
    max_n = std::min(max_n, rpc::kMaxBatchPages);
    // One owner per batch: clip the run at its shard-group boundary.
    max_n = shardRunCap(f, start_idx, max_n);
    // Claim reserve (see submitPageFetch): shrink the run to what the
    // arena can give without starving synchronous pins. As there, no
    // reclaim attempt — submission must never block on an RPC.
    uint32_t free_frames = arena_.freeCount();
    uint32_t reserve = claimReserve();
    if (free_frames <= reserve)
        return 0;
    max_n = std::min(max_n, free_frames - reserve);
    unsigned n = f.cache->beginInitBatch(start_idx, max_n, out->slots);
    if (n == 0)
        return 0;
    out->startIdx = start_idx;
    out->n = n;
    out->single = false;
    out->spec = false;
    return submitClaimedFetch(ctx, f, *out, /*blocking=*/false) ? n : 0;
}

ReadAheadStreams::Decision
BufferCache::planReadAhead(CacheFile &f, uint64_t stream_key,
                           uint64_t run_first, uint64_t run_last)
{
    ReadAheadStreams::Decision d;
    if (params_.readAheadPages > 0) {
        // Static override: the fixed window on every miss, no tracker
        // involvement (existing sweeps keep their exact RPC patterns).
        // The batch publishes with kNoStream — feedback then updates
        // the file's aggregates only, so conservation holds for the
        // static policy too.
        d.window = params_.readAheadPages;
        d.stride = 1;
        return d;
    }
    if (!adaptiveReadAhead())
        return d;       // read-ahead off: window 0
    d = f.ra.onMiss(stream_key, run_first, run_last,
                    params_.maxReadAheadPages);
    if (d.ghost)
        cntRaGhostHits.inc();
    if (d.recycled)
        cntRaStreamRecycles.inc();
    cntRaStreamsActive.maxWith(f.ra.streamsActive());
    return d;
}

unsigned
BufferCache::submitReadAhead(gpu::BlockCtx &ctx, CacheFile &f,
                             uint64_t run_first, uint64_t run_last,
                             PendingFetch *out, unsigned max_fetches)
{
    FileCache &c = *f.cache;
    const uint64_t page_size = params_.pageSize;
    const uint64_t fsize = f.size.load(std::memory_order_relaxed);
    if (fsize == 0 || f.hostFd < 0 || f.wronce || max_fetches == 0)
        return 0;
    // Diff-and-merge pages must snapshot their pristine copy under the
    // fetching pin (pinPage's slow path does that); a batch-published
    // page has none, and its write-back would clobber other writers'
    // merges — same exclusion as the split-phase demand paths.
    if (diffMergeActive(f))
        return 0;
    // One policy decision per demand miss — the requesting block's
    // stream records the miss even when the granted window is 0 (that
    // is how it detects the run that re-opens the window).
    ReadAheadStreams::Decision plan = planReadAhead(
        f, ctx.blockId(), run_first, run_last);
    if (plan.window == 0)
        return 0;
    const uint64_t eof_page = (fsize + page_size - 1) / page_size;
    unsigned fetches = 0;

    if (plan.stride != 1) {
        // Strided pattern: prefetch the pages the stride predicts, one
        // page per RPC — fetching the gaps is exactly the waste
        // adaptive read-ahead exists to avoid.
        uint64_t covered = run_last;
        for (unsigned k = 1;
             k <= plan.window && fetches < max_fetches; ++k) {
            int64_t sidx = static_cast<int64_t>(run_last) +
                static_cast<int64_t>(k) * plan.stride;
            if (sidx < 0)
                break;      // backward scan reached the file head
            uint64_t idx = static_cast<uint64_t>(sidx);
            if (idx >= eof_page || idx > FileCache::maxPageIndex())
                break;
            if (arena_.freeCount() <= claimReserve())
                break;
            PendingFetch &pf = out[fetches];
            if (c.beginInitBatch(idx, 1, pf.slots) == 0) {
                if (prefetchStepOver(c, idx)) {
                    covered = idx;
                    continue;
                }
                break;
            }
            pf.startIdx = idx;
            pf.n = 1;
            pf.single = false;
            pf.spec = true;
            pf.specStream = plan.stream;
            if (!submitClaimedFetch(ctx, f, pf, /*blocking=*/false))
                break;
            ++fetches;
            covered = idx;
        }
        if (adaptiveReadAhead() && covered != run_last)
            f.ra.advance(plan.stream, covered);
        return fetches;
    }

    // Clamp at radix capacity as well as EOF: getPage asserts on
    // indices past maxPageIndex, and a huge file's tail window could
    // otherwise step beyond it.
    const uint64_t end = std::min<uint64_t>(
        std::min<uint64_t>(run_last + 1 + plan.window, eof_page),
        FileCache::maxPageIndex() + 1);
    uint64_t idx = run_last + 1;
    while (idx < end && fetches < max_fetches) {
        unsigned max_n = static_cast<unsigned>(
            std::min<uint64_t>(end - idx, rpc::kMaxBatchPages));
        // One owner per batch: clip the run at its shard-group
        // boundary (the next iteration re-evaluates the next group).
        max_n = shardRunCap(f, idx, max_n);
        // Claim reserve (see submitPageFetch): prefetch never takes
        // the frames synchronous pins would need to reclaim.
        uint32_t free_frames = arena_.freeCount();
        uint32_t reserve = claimReserve();
        if (free_frames <= reserve)
            break;
        max_n = std::min(max_n, free_frames - reserve);
        PendingFetch &pf = out[fetches];
        unsigned n = c.beginInitBatch(idx, max_n, pf.slots);
        if (n == 0) {
            if (prefetchStepOver(c, idx)) {
                ++idx;
                continue;
            }
            break;
        }
        pf.startIdx = idx;
        pf.n = n;
        pf.single = false;
        pf.spec = true;
        pf.specStream = plan.stream;
        if (!submitClaimedFetch(ctx, f, pf, /*blocking=*/false))
            break;      // queue full: claim rolled back, stop prefetch
        ++fetches;
        idx += n;
    }
    // Advance the stream past the covered span (prefetched or already
    // resident): the next sequential miss lands one past the window
    // and must read as a continuation, not a jump.
    if (adaptiveReadAhead() && idx > run_last + 1)
        f.ra.advance(plan.stream, idx - 1);
    return fetches;
}

bool
BufferCache::peerCopyResident(CacheFile &f, uint64_t page_idx,
                              uint8_t *dst, uint32_t *valid_out,
                              Time *ready_out)
{
    if (!f.cache)
        return false;
    FileCache &c = *f.cache;
    FPage *p = c.findPage(page_idx);
    if (!p)
        return false;
    uint32_t frame;
    if (!c.tryPinReady(*p, page_idx, &frame))
        return false;
    PFrame &pf = arena_.frame(frame);
    // Serve only pages whose bytes provably match the host copy:
    // clean, and holding exactly the valid count the file size
    // implies. Locally-written pages track their content through the
    // dirty extent, not validBytes — for those the host copy is the
    // authoritative one and the requester falls back to it.
    const uint64_t page_size = params_.pageSize;
    const uint64_t fsize = f.size.load(std::memory_order_relaxed);
    const uint64_t off = page_idx * page_size;
    const uint32_t expect = off >= fsize
        ? 0
        : static_cast<uint32_t>(
              std::min<uint64_t>(page_size, fsize - off));
    const uint32_t valid = pf.validBytes.load(std::memory_order_acquire);
    if (expect == 0 || valid != expect || pf.isDirty()) {
        c.unpin(*p);
        return false;
    }
    // The pin (refs > 0) keeps owner-side eviction off the frame for
    // the duration of the copy — the owner-side analogue of the
    // requester's fetchInFlight claim on the destination frames.
    std::memcpy(dst, arena_.data(frame), page_size);
    *valid_out = valid;
    if (ready_out) {
        *ready_out = std::max<Time>(
            *ready_out, pf.readyTime.load(std::memory_order_acquire));
    }
    c.unpin(*p);
    return true;
}

bool
BufferCache::peerMirrorResident(CacheFile &f, uint64_t page_idx,
                                uint32_t in_page, const uint8_t *src,
                                uint32_t len)
{
    if (!f.cache || uint64_t(in_page) + len > params_.pageSize)
        return false;
    FileCache &c = *f.cache;
    FPage *p = c.findPage(page_idx);
    if (!p)
        return false;
    uint32_t frame;
    if (!c.tryPinReady(*p, page_idx, &frame))
        return false;
    PFrame &pf = arena_.frame(frame);
    if (pf.isDirty()) {
        // The owner holds its own uncommitted bytes for this page:
        // never clobber them — the requester's extent still reaches
        // the host, and the version gate keeps stale serves out.
        // (This check cannot race a concurrent owner WRITER into a
        // lost update: a mirror implies a remote plain writer, and the
        // consistency layer admits only ONE plain writer per file
        // across GPUs — mergeable multi-writer files, GWRONCE and
        // diff-merge, are excluded from sharding altogether.)
        c.unpin(*p);
        return false;
    }
    if (uint64_t(in_page) + len > pf.validBytes.load(
            std::memory_order_acquire)) {
        // File-extending write: mirroring the bytes would not extend
        // validBytes (or the owner's notion of the file size), so a
        // later peer read would serve a TRUNCATED page as
        // authoritative. Decline — the batch then isn't fully
        // mirrored, no version is published, and the gate routes
        // readers of the grown file to the host.
        c.unpin(*p);
        return false;
    }
    std::memcpy(arena_.data(frame) + in_page, src, len);
    c.unpin(*p);
    return true;
}

bool
BufferCache::peerAdoptResident(CacheFile &f, uint64_t page_idx,
                               const uint8_t *src, uint32_t valid,
                               Time ready, uint8_t tenant)
{
    if (!f.cache || valid == 0 || valid > params_.pageSize)
        return false;
    // Adoption must never eat the frames synchronous pins (and
    // split-phase claims) depend on: free headroom only, same reserve
    // rule as the prefetch paths. The quota gate for @p tenant lives
    // in FrameArena::allocFor, reached through tryAdoptPage.
    if (arena_.freeCount() <= claimReserve())
        return false;
    return f.cache->tryAdoptPage(page_idx, src, valid, ready, tenant);
}

void
BufferCache::readAheadFrom(gpu::BlockCtx &ctx, CacheFile &f,
                           uint64_t page_idx)
{
    FileCache &c = *f.cache;
    const uint64_t page_size = params_.pageSize;
    const uint64_t fsize = f.size.load(std::memory_order_relaxed);
    if (fsize == 0 || f.hostFd < 0)
        return;
    // Diff-and-merge exclusion (see submitReadAhead): batch-published
    // pages carry no pristine snapshot, which merges depend on.
    if (diffMergeActive(f))
        return;
    // One policy decision per miss (stream-fed even at window 0).
    ReadAheadStreams::Decision plan = planReadAhead(
        f, ctx.blockId(), page_idx, page_idx);
    if (plan.window == 0)
        return;
    const uint64_t eof_page = (fsize + page_size - 1) / page_size;

    if (plan.stride != 1) {
        // Strided pattern (adaptive only): one page per RPC along the
        // stride — never the gaps (see submitReadAhead).
        uint64_t covered = page_idx;
        for (unsigned k = 1; k <= plan.window; ++k) {
            int64_t sidx = static_cast<int64_t>(page_idx) +
                static_cast<int64_t>(k) * plan.stride;
            if (sidx < 0)
                break;
            uint64_t idx = static_cast<uint64_t>(sidx);
            if (idx >= eof_page || idx > FileCache::maxPageIndex())
                break;
            if (arena_.freeCount() <= claimReserve())
                break;
            BatchSlot slot;
            if (c.beginInitBatch(idx, 1, &slot) == 0) {
                if (prefetchStepOver(c, idx)) {
                    covered = idx;
                    continue;
                }
                break;
            }
            if (!fetchBatch(ctx, f, idx, &slot, 1, /*spec=*/true,
                            plan.stream))
                break;
            covered = idx;
        }
        if (adaptiveReadAhead() && covered != page_idx)
            f.ra.advance(plan.stream, covered);
        return;
    }

    // Clamp at radix capacity as well as EOF (see submitReadAhead).
    const uint64_t end = std::min<uint64_t>(
        std::min<uint64_t>(page_idx + 1 + plan.window, eof_page),
        FileCache::maxPageIndex() + 1);
    uint64_t idx = page_idx + 1;
    while (idx < end) {
        unsigned max_n = static_cast<unsigned>(
            std::min<uint64_t>(end - idx, rpc::kMaxBatchPages));
        // One owner per batch (shard-group clipping, no-op private).
        max_n = shardRunCap(f, idx, max_n);
        // Claim reserve: prefetch never takes the frames synchronous
        // pins would need to reclaim (it must never page out on its
        // own behalf, and it must not starve demand pins either).
        uint32_t free_frames = arena_.freeCount();
        uint32_t reserve = claimReserve();
        if (free_frames <= reserve)
            break;
        max_n = std::min(max_n, free_frames - reserve);
        BatchSlot slots[rpc::kMaxBatchPages];
        unsigned n = c.beginInitBatch(idx, max_n, slots);
        if (n == 0) {
            if (prefetchStepOver(c, idx)) {
                ++idx;
                continue;
            }
            break;
        }
        if (!fetchBatch(ctx, f, idx, slots, n, /*spec=*/true,
                        plan.stream))
            break;
        idx += n;
    }
    // Next sequential miss lands one past the covered span; advance so
    // the stream reads it as a continuation.
    if (adaptiveReadAhead() && idx > page_idx + 1)
        f.ra.advance(plan.stream, idx - 1);
}

} // namespace core
} // namespace gpufs
