/**
 * @file
 * GpufsSystem: one-call wiring of a whole simulated machine.
 *
 * Owns the pieces in dependency order — cost model, host FS,
 * consistency layer, CPU daemon, N GPU devices with their RPC queues
 * and GpuFs library instances — and manages daemon lifetime. This is
 * the entry point examples and benchmarks use; tests that need odd
 * topologies wire components manually.
 */

#ifndef GPUFS_GPUFS_SYSTEM_HH
#define GPUFS_GPUFS_SYSTEM_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "consistency/consistency.hh"
#include "consistency/wrapfs.hh"
#include "gpu/device.hh"
#include "gpufs/gpufs.hh"
#include "gpufs/shard.hh"
#include "gpufs/victim.hh"
#include "hostfs/hostfs.hh"
#include "rpc/daemon.hh"

namespace gpufs {
namespace core {

class GpufsSystem
{
  public:
    /**
     * @param num_gpus  number of GPU devices (the paper's box has 4)
     * @param fs_params GpuFs configuration applied to every GPU
     * @param hw        cost-model parameters
     */
    explicit GpufsSystem(unsigned num_gpus = 1,
                         const GpuFsParams &fs_params = GpuFsParams{},
                         const sim::HwParams &hw = sim::HwParams{})
        : sim_(hw), hostFs_(sim_), wrapFs_(hostFs_, consistency_),
          daemon_(hostFs_, consistency_),
          shardMap_(fs_params.shardPolicy, num_gpus,
                    fs_params.shardPagesPerGroup)
    {
        for (unsigned i = 0; i < num_gpus; ++i)
            devices_.push_back(std::make_unique<gpu::GpuDevice>(sim_, i));
        for (auto &dev : devices_)
            queues_.push_back(&daemon_.attachGpu(*dev));
        if (fs_params.journalWriteback)
            daemon_.enableJournal();
        daemon_.setStorageBackend(fs_params.storageBackend);
        // Host-RAM victim tier (one per machine, all GPUs demote into
        // it and the daemon probes it). Wired before start(): the
        // daemon forbids installation while running.
        if (fs_params.victimCachePages > 0) {
            victim_ = std::make_unique<VictimCache>(
                fs_params.victimCachePages, fs_params.pageSize,
                daemon_.stats());
            for (unsigned t = 0; t < kMaxTenants; ++t) {
                if (fs_params.tenantVictimQuota[t] != 0) {
                    victim_->setTenantQuota(
                        static_cast<TenantId>(t),
                        fs_params.tenantVictimQuota[t]);
                }
            }
            daemon_.setVictimCache(victim_.get());
        }
        // Serving tier: any nonzero weight switches the daemon's sweep
        // to weighted DRR emission (all-zero keeps issue-time FIFO).
        bool weighted = false;
        for (unsigned t = 0; t < kMaxTenants; ++t)
            weighted = weighted || fs_params.tenantWeight[t] != 0;
        if (weighted)
            daemon_.setTenantWeights(fs_params.tenantWeight, kMaxTenants);
        daemon_.start();
        for (unsigned i = 0; i < num_gpus; ++i) {
            gpufs_.push_back(std::make_unique<GpuFs>(*devices_[i],
                                                     *queues_[i],
                                                     fs_params));
            if (victim_)
                gpufs_.back()->bufferCache().setVictimCache(victim_.get());
        }
        // Sharded multi-GPU topology: every GpuFs consults the shared
        // shard map on a miss, and the daemon reaches each GPU's cache
        // through its peer source to service PeerReadPages /
        // PeerWritePages. Private policy (or one GPU) wires the same
        // way but the map never names a non-self owner.
        for (unsigned i = 0; i < num_gpus; ++i) {
            gpufs_[i]->setShardMap(&shardMap_);
            daemon_.setPeerSource(i, gpufs_[i].get());
        }
        if (fs_params.asyncWriteback)
            startFlusher(fs_params.flusherIntervalUs);
    }

    ~GpufsSystem()
    {
        stopFlusher();      // flusher references gpufs_ and the daemon
        // Quiesce the WHOLE topology before destroying any instance:
        // one GPU's uncollected split-phase RPC may target another
        // GPU's frames (peer forwarding), so per-instance teardown
        // alone would let the daemon DMA into freed memory.
        for (auto &fs : gpufs_)
            fs->quiesce();
        for (unsigned i = 0; i < gpufs_.size(); ++i)
            daemon_.setPeerSource(i, nullptr);
        gpufs_.clear();     // GpuFs teardown precedes daemon shutdown
        daemon_.stop();
    }

    GpufsSystem(const GpufsSystem &) = delete;
    GpufsSystem &operator=(const GpufsSystem &) = delete;

    sim::SimContext &sim() { return sim_; }
    hostfs::HostFs &hostFs() { return hostFs_; }
    consistency::WrapFs &wrapFs() { return wrapFs_; }
    consistency::ConsistencyMgr &consistencyMgr() { return consistency_; }
    rpc::CpuDaemon &daemon() { return daemon_; }
    /** The host-RAM victim tier, or null when victimCachePages == 0. */
    VictimCache *victimCache() { return victim_.get(); }

    unsigned numGpus() const { return static_cast<unsigned>(devices_.size()); }
    gpu::GpuDevice &device(unsigned i) { return *devices_.at(i); }
    GpuFs &fs(unsigned i = 0) { return *gpufs_.at(i); }
    rpc::RpcQueue &rpcQueue(unsigned i = 0) { return *queues_.at(i); }
    const ShardMap &shardMap() const { return shardMap_; }

    /**
     * Serving tier: migrate every page group whose accumulated read
     * heat reaches @p min_heat toward its heaviest reader (heat-based
     * shard rebalancing; see ShardMap::rebalance). Call from quiesced
     * control code between workload phases. @return groups migrated.
     */
    unsigned
    rebalanceShards(uint32_t min_heat = 64)
    {
        return shardMap_.rebalance(min_heat);
    }

    /** True while the async write-back flusher thread is running. */
    bool flusherRunning() const { return flusher_.joinable(); }

    /**
     * Crash-recovery restart: stop the daemon thread (as a crash or
     * power loss would), clear the fault plan's crashed latch, and
     * start a fresh daemon — which replays the write-ahead journal
     * before accepting RPCs (CpuDaemon::start). The host FS contents
     * at this point are exactly what the crash left durable; GPU-side
     * caches are NOT touched (tests reopen files, which revalidates
     * against the host version numbers).
     */
    void
    restartDaemon()
    {
        daemon_.stop();
        sim_.faults.reboot();
        daemon_.start();
    }

    /** Reset all virtual-time state (between benchmark phases). */
    void
    resetTime()
    {
        sim_.reset();
        for (auto &dev : devices_)
            dev->resetTime();
        // The flusher's persisted clocks are virtual-time state too:
        // left alone they would place its next drains far beyond the
        // fresh phase's clocks. The generation bump makes an in-flight
        // pass discard its (now stale) end time instead of writing it
        // back over the reset.
        std::lock_guard<std::mutex> lock(flusherMtx_);
        std::fill(flusherClocks_.begin(), flusherClocks_.end(), Time{0});
        ++flusherGen_;
    }

  private:
    /**
     * The async write-back daemon (GpuFsParams::asyncWriteback): a
     * host thread that periodically runs every GpuFs instance's
     * backgroundFlushPass, persisting a per-GPU virtual clock across
     * passes so successive drains pipeline on the resource timelines.
     * Clean-edge host fsyncs are deduplicated per file through
     * CacheFile::needsFsync, which is also what lets a later gfsync
     * burst skip its Fsync RPCs when the flusher already made the
     * file durable. Stopped (and joined) before GpuFs/daemon teardown.
     */
    void
    startFlusher(unsigned interval_us)
    {
        flusherRunning_.store(true, std::memory_order_release);
        flusherClocks_.assign(gpufs_.size(), 0);
        flusher_ = std::thread([this, interval_us] {
            std::unique_lock<std::mutex> lock(flusherMtx_);
            while (flusherRunning_.load(std::memory_order_acquire)) {
                for (size_t i = 0; i < gpufs_.size(); ++i) {
                    // Clocks are read and written only under
                    // flusherMtx_ (resetTime zeroes them concurrently);
                    // the pass itself runs unlocked, and its end time
                    // is discarded if a reset happened meanwhile.
                    Time start = flusherClocks_[i];
                    uint64_t gen = flusherGen_;
                    lock.unlock();
                    Time end = gpufs_[i]->backgroundFlushPass(start);
                    lock.lock();
                    if (flusherGen_ == gen)
                        flusherClocks_[i] = end;
                }
                flusherCv_.wait_for(
                    lock, std::chrono::microseconds(interval_us),
                    [this] {
                        return !flusherRunning_.load(
                            std::memory_order_acquire);
                    });
            }
        });
    }

    void
    stopFlusher()
    {
        if (!flusher_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(flusherMtx_);
            flusherRunning_.store(false, std::memory_order_release);
        }
        flusherCv_.notify_all();
        flusher_.join();
    }

    sim::SimContext sim_;
    hostfs::HostFs hostFs_;
    consistency::ConsistencyMgr consistency_;
    consistency::WrapFs wrapFs_;
    rpc::CpuDaemon daemon_;
    /** Host-RAM victim tier; null when off. Declared after daemon_ so
     *  it outlives nothing that probes it: the dtor body stops the
     *  daemon thread before members destruct. */
    std::unique_ptr<VictimCache> victim_;
    /** Machine-wide page -> owner-GPU map (sharded multi-GPU cache). */
    ShardMap shardMap_;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devices_;
    std::vector<rpc::RpcQueue *> queues_;
    std::vector<std::unique_ptr<GpuFs>> gpufs_;

    std::thread flusher_;
    std::atomic<bool> flusherRunning_{false};
    std::mutex flusherMtx_;
    std::condition_variable flusherCv_;
    /** Per-GPU flusher virtual clocks; guarded by flusherMtx_. */
    std::vector<Time> flusherClocks_;
    /** Bumped by resetTime(); stale passes drop their end time. */
    uint64_t flusherGen_ = 0;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_SYSTEM_HH
