/**
 * @file
 * GpufsSystem: one-call wiring of a whole simulated machine.
 *
 * Owns the pieces in dependency order — cost model, host FS,
 * consistency layer, CPU daemon, N GPU devices with their RPC queues
 * and GpuFs library instances — and manages daemon lifetime. This is
 * the entry point examples and benchmarks use; tests that need odd
 * topologies wire components manually.
 */

#ifndef GPUFS_GPUFS_SYSTEM_HH
#define GPUFS_GPUFS_SYSTEM_HH

#include <memory>
#include <vector>

#include "consistency/consistency.hh"
#include "consistency/wrapfs.hh"
#include "gpu/device.hh"
#include "gpufs/gpufs.hh"
#include "hostfs/hostfs.hh"
#include "rpc/daemon.hh"

namespace gpufs {
namespace core {

class GpufsSystem
{
  public:
    /**
     * @param num_gpus  number of GPU devices (the paper's box has 4)
     * @param fs_params GpuFs configuration applied to every GPU
     * @param hw        cost-model parameters
     */
    explicit GpufsSystem(unsigned num_gpus = 1,
                         const GpuFsParams &fs_params = GpuFsParams{},
                         const sim::HwParams &hw = sim::HwParams{})
        : sim_(hw), hostFs_(sim_), wrapFs_(hostFs_, consistency_),
          daemon_(hostFs_, consistency_)
    {
        for (unsigned i = 0; i < num_gpus; ++i)
            devices_.push_back(std::make_unique<gpu::GpuDevice>(sim_, i));
        for (auto &dev : devices_)
            queues_.push_back(&daemon_.attachGpu(*dev));
        daemon_.start();
        for (unsigned i = 0; i < num_gpus; ++i) {
            gpufs_.push_back(std::make_unique<GpuFs>(*devices_[i],
                                                     *queues_[i],
                                                     fs_params));
        }
    }

    ~GpufsSystem()
    {
        gpufs_.clear();     // GpuFs teardown precedes daemon shutdown
        daemon_.stop();
    }

    GpufsSystem(const GpufsSystem &) = delete;
    GpufsSystem &operator=(const GpufsSystem &) = delete;

    sim::SimContext &sim() { return sim_; }
    hostfs::HostFs &hostFs() { return hostFs_; }
    consistency::WrapFs &wrapFs() { return wrapFs_; }
    consistency::ConsistencyMgr &consistencyMgr() { return consistency_; }
    rpc::CpuDaemon &daemon() { return daemon_; }

    unsigned numGpus() const { return static_cast<unsigned>(devices_.size()); }
    gpu::GpuDevice &device(unsigned i) { return *devices_.at(i); }
    GpuFs &fs(unsigned i = 0) { return *gpufs_.at(i); }

    /** Reset all virtual-time state (between benchmark phases). */
    void
    resetTime()
    {
        sim_.reset();
        for (auto &dev : devices_)
            dev->resetTime();
    }

  private:
    sim::SimContext sim_;
    hostfs::HostFs hostFs_;
    consistency::ConsistencyMgr consistency_;
    consistency::WrapFs wrapFs_;
    rpc::CpuDaemon daemon_;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devices_;
    std::vector<rpc::RpcQueue *> queues_;
    std::vector<std::unique_ptr<GpuFs>> gpufs_;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_SYSTEM_HH
