#include "gpufs/radix.hh"

#include <cstring>

#include "base/logging.hh"

namespace gpufs {
namespace core {

std::atomic<uint64_t> FileCache::nextUid{1};

RadixNode::RadixNode(uint32_t lvl, uint64_t base)
    : level(lvl), baseIdx(base)
{
    for (auto &c : children)
        c.store(nullptr, std::memory_order_relaxed);
    if (level == 0)
        pages = std::make_unique<FPage[]>(kRadixFanout);
}

FileCache::FileCache(FrameArena &frame_arena, const CacheCounters &cnt,
                     bool force_locked)
    : arena(frame_arena), counters(cnt), forceLocked(force_locked),
      uid_(nextUid.fetch_add(1)), root(kRadixLevels - 1, 0)
{
}

FileCache::~FileCache()
{
    bool clean = dropAll();
    gpufs_assert(clean, "FileCache destroyed with pinned pages");
}

RadixNode *
FileCache::newNode(uint32_t level, uint64_t base)
{
    std::lock_guard<std::mutex> lock(allocMtx);
    nodePool.emplace_back(level, base);
    return &nodePool.back();
}

void
FileCache::pushFifo(RadixNode *leaf)
{
    std::lock_guard<std::mutex> lock(listMtx);
    RadixNode *old_head = fifoHead.load(std::memory_order_relaxed);
    leaf->fifoNext.store(old_head, std::memory_order_relaxed);
    if (old_head)
        old_head->fifoPrev.store(leaf, std::memory_order_release);
    else
        fifoTail.store(leaf, std::memory_order_release);
    fifoHead.store(leaf, std::memory_order_release);
}

RadixNode *
FileCache::insertChild(RadixNode &node, unsigned slot, uint64_t idx)
{
    SpinGuard guard(node.lock);
    RadixNode *child = node.children[slot].load(std::memory_order_acquire);
    if (child)
        return child;   // lost the race; fine
    uint32_t child_level = node.level - 1;
    // The child at this slot covers 64^(child_level+1) pages; aligning
    // idx down to that coverage IS its base index (adding a slot term
    // on top would double-count the slot bits and skew every
    // baseIdx-derived page index — i.e. every write-back offset — for
    // files larger than one leaf).
    uint64_t span = 1ull << (kRadixBits * node.level);
    uint64_t base = (idx / span) * span;
    child = newNode(child_level, base);
    // Seqlock write protocol: readers snapshotting around the child
    // load observe either the old null or the fully constructed node.
    node.seq.fetch_add(1, std::memory_order_release);      // odd
    node.children[slot].store(child, std::memory_order_release);
    node.seq.fetch_add(1, std::memory_order_release);      // even
    if (child_level == 0)
        pushFifo(child);
    return child;
}

FPage *
FileCache::walk(uint64_t idx, bool locked)
{
    RadixNode *node = &root;
    while (node->level > 0) {
        unsigned slot = slotOf(idx, node->level);
        RadixNode *child;
        if (locked) {
            node->lock.lock();
            child = node->children[slot].load(std::memory_order_acquire);
            node->lock.unlock();
        } else {
            uint32_t s1 = node->seq.load(std::memory_order_acquire);
            if (s1 & 1)
                return nullptr;     // writer active: retry
            child = node->children[slot].load(std::memory_order_acquire);
            if (node->seq.load(std::memory_order_acquire) != s1)
                return nullptr;     // raced a writer: retry
        }
        if (!child)
            child = insertChild(*node, slot, idx);
        node = child;
    }
    return &node->pages[slotOf(idx, 0)];
}

FPage *
FileCache::getPage(uint64_t page_idx)
{
    gpufs_assert(page_idx <= maxPageIndex(),
                 "page index %llu beyond radix capacity",
                 static_cast<unsigned long long>(page_idx));
    if (forceLocked) {
        counters.lockedAccesses.inc();
        FPage *p = walk(page_idx, true);
        gpufs_assert(p, "locked walk cannot fail");
        return p;
    }
    // "GPUfs retries once without locking, then locks on its third
    // attempt" (§4.2).
    for (int attempt = 0; attempt < 2; ++attempt) {
        FPage *p = walk(page_idx, false);
        if (p) {
            counters.lockfreeAccesses.inc();
            return p;
        }
    }
    counters.lockedAccesses.inc();
    FPage *p = walk(page_idx, true);
    gpufs_assert(p, "locked walk cannot fail");
    return p;
}

FPage *
FileCache::findPage(uint64_t page_idx)
{
    if (page_idx > maxPageIndex())
        return nullptr;
    RadixNode *node = &root;
    while (node->level > 0) {
        RadixNode *child =
            node->children[slotOf(page_idx, node->level)].load(
                std::memory_order_acquire);
        if (!child)
            return nullptr;
        node = child;
    }
    return &node->pages[slotOf(page_idx, 0)];
}

bool
FileCache::tryPinReady(FPage &p, uint64_t page_idx, uint32_t *frame_out)
{
    p.refs.fetch_add(1, std::memory_order_seq_cst);
    if (p.state.load(std::memory_order_seq_cst) == kPageReady) {
        uint32_t f = p.frame.load(std::memory_order_acquire);
        if (f != kNoFrame) {
            PFrame &pf = arena.frame(f);
            // Identity check: frames recycle, so verify this frame
            // still belongs to (this tree, this page index).
            if (pf.fileUid.load(std::memory_order_acquire) == uid_ &&
                pf.pageIdx.load(std::memory_order_relaxed) == page_idx) {
                pf.lastAccess.store(arena.nextTick(),
                                    std::memory_order_relaxed);
                *frame_out = f;
                return true;
            }
        }
    }
    p.refs.fetch_sub(1, std::memory_order_seq_cst);
    return false;
}

unsigned
FileCache::beginInitBatch(uint64_t start_idx, unsigned max_n,
                          BatchSlot *out)
{
    unsigned n = 0;
    while (n < max_n) {
        uint64_t idx = start_idx + n;
        if (idx > maxPageIndex())
            break;
        FPage *p = getPage(idx);
        if (!p->lock.tryLock())
            break;
        if (p->state.load(std::memory_order_acquire) != kPageEmpty) {
            p->lock.unlock();
            break;
        }
        uint32_t f = arena.allocFor(tenantOf());
        if (f == kNoFrame) {
            p->lock.unlock();
            break;
        }
        PFrame &pf = arena.frame(f);
        pf.fileUid.store(uid_, std::memory_order_relaxed);
        pf.pageIdx.store(idx, std::memory_order_relaxed);
        pf.owner.store(p, std::memory_order_relaxed);
        pf.lastAccess.store(arena.nextTick(), std::memory_order_relaxed);
        p->frame.store(f, std::memory_order_release);
        p->state.store(kPageInit, std::memory_order_release);
        out[n++] = BatchSlot{p, f};
    }
    return n;
}

void
FileCache::finishInitBatch(const BatchSlot *slots, unsigned n,
                           const uint32_t *valid, Time ready,
                           bool speculative, uint8_t stream)
{
    for (unsigned i = 0; i < n; ++i) {
        PFrame &pf = arena.frame(slots[i].frame);
        pf.validBytes.store(valid[i], std::memory_order_relaxed);
        // Tagged before the state flips to Ready (still under the
        // fpage lock): the first pinner must either see the tag and
        // promote, or not see the page at all. The stream slot rides
        // along (stored first: whoever wins the speculative exchange
        // reads it afterwards) so feedback routes to the issuer.
        pf.raStream.store(speculative ? stream
                                      : ReadAheadStreams::kNoStream,
                          std::memory_order_relaxed);
        if (speculative)
            pf.speculative.store(true, std::memory_order_release);
        // The prefetching block does not wait: readyTime gates whoever
        // pins the page first.
        pf.readyTime.store(ready, std::memory_order_release);
        slots[i].page->state.store(kPageReady, std::memory_order_release);
        slots[i].page->lock.unlock();
    }
}

void
FileCache::abortInitBatch(const BatchSlot *slots, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        slots[i].page->frame.store(kNoFrame, std::memory_order_relaxed);
        slots[i].page->state.store(kPageEmpty, std::memory_order_release);
        arena.free(slots[i].frame);
        slots[i].page->lock.unlock();
    }
}

bool
FileCache::tryAdoptPage(uint64_t page_idx, const uint8_t *src,
                        uint32_t valid, Time ready, uint8_t tenant)
{
    if (page_idx > maxPageIndex() || valid == 0)
        return false;
    FPage *p = getPage(page_idx);
    if (!p->lock.tryLock())
        return false;
    if (p->state.load(std::memory_order_acquire) != kPageEmpty) {
        p->lock.unlock();
        return false;
    }
    uint32_t f = arena.allocFor(tenant);
    if (f == kNoFrame) {
        p->lock.unlock();
        return false;
    }
    PFrame &pf = arena.frame(f);
    pf.fileUid.store(uid_, std::memory_order_relaxed);
    pf.pageIdx.store(page_idx, std::memory_order_relaxed);
    pf.owner.store(p, std::memory_order_relaxed);
    pf.lastAccess.store(arena.nextTick(), std::memory_order_relaxed);
    std::memcpy(arena.data(f), src, valid);
    pf.validBytes.store(valid, std::memory_order_relaxed);
    pf.readyTime.store(ready, std::memory_order_release);
    p->frame.store(f, std::memory_order_release);
    p->state.store(kPageReady, std::memory_order_release);
    p->lock.unlock();
    return true;
}

unsigned
FileCache::takeDirtyBatch(uint64_t first_page, uint64_t last_page,
                          DirtyExtent *out, unsigned max_n)
{
    unsigned n = 0;
    for (RadixNode *nd = fifoTail.load(std::memory_order_acquire);
         nd != nullptr && n < max_n;
         nd = nd->fifoPrev.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < kRadixFanout && n < max_n; ++i) {
            uint64_t idx = nd->baseIdx + i;
            if (idx < first_page || idx >= last_page)
                continue;
            FPage &p = nd->pages[i];
            if (p.state.load(std::memory_order_acquire) != kPageReady)
                continue;
            uint32_t f = p.frame.load(std::memory_order_acquire);
            if (f == kNoFrame || !arena.frame(f).isDirty())
                continue;   // clean (awaitWritebacks barriers in-flight)
            if (p.refs.load(std::memory_order_relaxed) != 0)
                continue;   // concurrently accessed: skip (API: gfsync)
            // Lock and KEEP the lock until finishDirtyBatch: the frame
            // cannot be reclaimed under the batched RPC, and a
            // concurrent sync of this page waits here instead of
            // skipping an in-flight write-back (acquisition follows
            // the leaf-FIFO walk order, so collectors cannot
            // deadlock).
            p.lock.lock();
            if (p.state.load(std::memory_order_acquire) != kPageReady) {
                p.lock.unlock();
                continue;
            }
            f = p.frame.load(std::memory_order_acquire);
            PFrame &pf = arena.frame(f);
            // Atomically TAKE the extent: ranges merged by concurrent
            // (lock-free) writers after this point form a fresh extent
            // synced by a later pass, so no dirty byte is ever lost.
            uint64_t e = takeDirtyCounted(pf);
            uint32_t lo = PFrame::extentLo(e);
            uint32_t hi = PFrame::extentHi(e);
            if (lo >= hi) {
                p.lock.unlock();
                continue;
            }
            out[n++] = {&p, idx, f, lo, hi};
        }
    }
    return n;
}

void
FileCache::finishDirtyBatch(const DirtyExtent *ext, unsigned n,
                            bool restore)
{
    for (unsigned i = 0; i < n; ++i) {
        if (restore)
            noteDirty(arena.frame(ext[i].frame), ext[i].lo, ext[i].hi);
        ext[i].page->lock.unlock();
    }
}

void
FileCache::awaitWritebacks(uint64_t first_page, uint64_t last_page)
{
    for (RadixNode *nd = fifoTail.load(std::memory_order_acquire);
         nd != nullptr;
         nd = nd->fifoPrev.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < kRadixFanout; ++i) {
            uint64_t idx = nd->baseIdx + i;
            if (idx < first_page || idx >= last_page)
                continue;
            FPage &p = nd->pages[i];
            if (p.state.load(std::memory_order_acquire) != kPageReady)
                continue;
            // A collector holds the fpage lock from before it takes
            // the extent until its write-back RPC completes, so a
            // brief acquire is the completion barrier. One atomic RMW
            // pair per resident page, once per sync — not per batch.
            p.lock.lock();
            p.lock.unlock();
        }
    }
}

bool
FileCache::dropAll()
{
    bool all_clean = true;
    for (RadixNode *n = fifoTail.load(std::memory_order_acquire);
         n != nullptr; n = n->fifoPrev.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < kRadixFanout; ++i) {
            FPage &p = n->pages[i];
            if (p.state.load(std::memory_order_acquire) == kPageEmpty)
                continue;
            if (p.refs.load(std::memory_order_relaxed) != 0) {
                all_clean = false;
                continue;
            }
            SpinGuard guard(p.lock);
            if (p.state.load(std::memory_order_acquire) != kPageReady)
                continue;
            if (p.refs.load(std::memory_order_seq_cst) != 0) {
                all_clean = false;
                continue;
            }
            uint32_t f = p.frame.load(std::memory_order_acquire);
            PFrame &pf = arena.frame(f);
            if (pf.isDirty())
                dirtyPages_.fetch_sub(1, std::memory_order_relaxed);
            uint32_t pristine = pf.pristineFrame.exchange(
                kNoFrame, std::memory_order_acq_rel);
            if (pristine != kNoFrame)
                arena.free(pristine);
            // A dropped never-pinned prefetch is as wasted as an
            // evicted one (invalidation/truncate/unlink paths).
            retireSpeculative(pf, n->baseIdx + i);
            p.frame.store(kNoFrame, std::memory_order_relaxed);
            arena.free(f);
            p.state.store(kPageEmpty, std::memory_order_release);
        }
    }
    return all_clean;
}

void
FileCache::noteDirty(PFrame &pf, uint32_t lo, uint32_t hi)
{
    if (lo >= hi)
        return;
    // mergeDirty reports the clean->dirty transition exactly once
    // (the CAS winner), which owns the dirty-count increment.
    if (pf.mergeDirty(lo, hi))
        dirtyPages_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
FileCache::residentPages() const
{
    uint64_t n = 0;
    for (const RadixNode *node = fifoTail.load(std::memory_order_acquire);
         node != nullptr;
         node = node->fifoPrev.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < kRadixFanout; ++i) {
            if (node->pages[i].state.load(std::memory_order_acquire)
                == kPageReady) {
                ++n;
            }
        }
    }
    return n;
}

} // namespace core
} // namespace gpufs
