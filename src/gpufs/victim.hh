/**
 * @file
 * Host-RAM victim cache: the second tier the frame arena demotes into.
 *
 * "GPUs as Storage System Accelerators" stages GPU working sets in
 * pinned host memory; GPUfs's arena eviction today just drops clean
 * pages, so the next miss pays a full storage round-trip. This tier
 * turns eviction into demotion: BufferCache copies an evicted frame's
 * bytes here (one D2H charge on the per-GPU host-staging timeline,
 * SimContext::hostStage), and the daemon probes the tier before the
 * storage backend on every miss read, so a re-miss costs one H2D DMA.
 *
 * One instance per machine (owned by GpufsSystem, shared by all GPUs
 * and the daemon; a single mutex serializes insert/probe — both are
 * memcpy-bounded and off the lock-free GPU data plane). Entries are
 * keyed (ino, pageIdx) and tagged with the demoting GPU's file
 * version; a probe compares the tag against the host's CURRENT
 * version (from fstat), so any host mutation — write-through mirrors,
 * journal replay, truncate — invalidates stale bytes implicitly: the
 * host bumps the version on every mutation, and a mismatched entry is
 * dropped, never served. Capacity eviction is plain LRU.
 */

#ifndef GPUFS_GPUFS_VICTIM_HH
#define GPUFS_GPUFS_VICTIM_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "gpufs/params.hh"

namespace gpufs {
namespace core {

class VictimCache
{
  public:
    /** Counters register into @p stats (the daemon's StatSet, so one
     *  `vc_` block covers all GPUs' demotions and the daemon's probes). */
    VictimCache(uint64_t capacity_pages, uint64_t page_size,
                StatSet &stats);

    VictimCache(const VictimCache &) = delete;
    VictimCache &operator=(const VictimCache &) = delete;

    uint64_t pageSize() const { return pageSize_; }
    uint64_t capacityPages() const { return capacity_; }

    /**
     * Demote one page's bytes into the tier (BufferCache eviction
     * path, called under the fpage lock so @p data is stable).
     * @p version  the demoting GPU's view of the file version — the
     *             probe-time gate against the host's current version.
     * @p ready    virtual time the staging D2H completes; probes serve
     *             no earlier (the page is not in host RAM before it).
     * @p tenant   the tenant stamped on the demoted frame; victim
     *             occupancy bills it, and at its quota the insert
     *             recycles that tenant's own LRU entry rather than the
     *             global tail (no cross-tenant displacement).
     * Re-demotion of a resident key overwrites in place.
     */
    void insert(uint64_t ino, uint64_t page_idx, uint64_t version,
                const uint8_t *data, uint32_t valid, Time ready,
                uint8_t tenant = 0);

    /** Cap @p tenant's victim occupancy at @p quota_pages (0 =
     *  unlimited). Configuration-time only (GpufsSystem wiring). */
    void setTenantQuota(TenantId tenant, uint64_t quota_pages);

    /** Pages currently held for @p tenant (serving-tier reports). */
    uint64_t tenantPages(TenantId tenant) const;

    /**
     * Probe for a page on the miss path. Hits (version tag ==
     * @p cur_version and at least @p expect valid bytes) copy
     * @p expect bytes into @p dst, refresh LRU, and raise *ready_out
     * to the entry's staging-completion time. A version mismatch drops
     * the entry (vc_version_stale); absent or short entries count
     * vc_misses.
     */
    bool probe(uint64_t ino, uint64_t page_idx, uint64_t cur_version,
               uint8_t *dst, uint64_t expect, Time *ready_out);

    /**
     * Count-free peek: would pages [first_idx, first_idx + n) ALL hit
     * at @p cur_version with at least expect[i] bytes each? Used by
     * the daemon's aggregation sweep to route fully-covered requests
     * to the victim path without perturbing hit/miss accounting or
     * LRU order for requests that ride the gathered storage read.
     */
    bool coversRun(uint64_t ino, uint64_t first_idx, unsigned n,
                   uint64_t cur_version, const uint64_t *expect) const;

    /** Drop entries overlapping [off, off+len) of @p ino (write-path
     *  hygiene; the version gate is the correctness backstop). */
    void invalidateRange(uint64_t ino, uint64_t off, uint64_t len);

    /** Drop every entry of @p ino (unlink). */
    void dropFile(uint64_t ino);

    uint64_t residentPages() const;

  private:
    struct Entry {
        uint64_t version;
        uint32_t slot;
        uint32_t valid;
        Time ready;
        uint8_t tenant;
        std::list<uint64_t>::iterator lruPos;
    };

    /** (ino, pageIdx) packed to one key: inos are small sequential
     *  host-FS ids and a radix tree caps page indices well below 2^32,
     *  so the halves cannot collide. */
    static uint64_t
    keyOf(uint64_t ino, uint64_t page_idx)
    {
        return (ino << 32) | (page_idx & 0xFFFFFFFFull);
    }

    /** Drop one entry and recycle its slot (mtx_ held). */
    void eraseLocked(std::unordered_map<uint64_t, Entry>::iterator it);

    const uint64_t pageSize_;
    const uint64_t capacity_;

    mutable std::mutex mtx_;
    std::unordered_map<uint64_t, Entry> map_;
    /** LRU order, front = most recent; values are map keys. */
    std::list<uint64_t> lru_;
    std::vector<uint32_t> freeSlots_;
    /** The pinned host staging pool itself. */
    std::vector<uint8_t> pool_;
    /** Serving tier: per-tenant occupancy and caps (mtx_ held). */
    uint64_t tenantUsed_[kMaxTenants] = {};
    uint64_t tenantQuota_[kMaxTenants] = {};

    Counter &cntInserts_;
    Counter &cntHits_;
    Counter &cntMisses_;
    Counter &cntStale_;
    Counter &cntEvictions_;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_VICTIM_HH
