/**
 * @file
 * GPUfs instance configuration.
 */

#ifndef GPUFS_GPUFS_PARAMS_HH
#define GPUFS_GPUFS_PARAMS_HH

#include <cstdint>

#include "base/units.hh"
#include "storage/kind.hh"

namespace gpufs {
namespace core {

/**
 * Serving-tier tenants. A TenantId rides the gopen flag word (see
 * GOpenFlags) into the CacheFile, is stamped into every frame the
 * tenant faults, and travels in each RPC so the daemon can schedule
 * slots fairly. Tenant 0 is the default — single-tenant workloads
 * never see any of the machinery.
 */
using TenantId = uint8_t;
constexpr unsigned kMaxTenants = 4;

/**
 * Frame-reclamation policies (BufferCache::EvictionPolicy variants).
 *
 * PaperTiered is §4.2's constant-work order: closed clean files first
 * (no GPU-CPU communication), then open read-only files, then writable
 * files as a last resort. GlobalLru and Random are ablation policies
 * wired into bench/ablate_eviction: LRU scans every frame for the
 * globally oldest access stamp (the variable-work shape the paper
 * rejects because paging hijacks application threads), Random picks
 * victim files uniformly.
 */
enum class EvictionPolicyKind : uint8_t {
    PaperTiered,
    GlobalLru,
    Random,
    /** 2Q-style: frames pinned once (probationary — a scan touches a
     *  page exactly once) are evicted before frames pinned repeatedly
     *  (protected), each set in global LRU order. Same full-scan work
     *  shape as GlobalLru; the ablation case for scan pollution under
     *  a victim tier, where protecting the reused set decides which
     *  pages re-miss cheaply. */
    TwoQ,
};

/**
 * Multi-GPU cache-sharding policies (core::ShardMap variants).
 *
 * The paper's multi-GPU runs (§5.2.1, Table 3) keep a private buffer
 * cache per GPU, so every GPU re-fetches shared data through the host
 * and the single CPU I/O path becomes the bottleneck exactly when the
 * working set is shared. Sharding assigns every (file, page-group) an
 * owner GPU; a non-owner miss becomes a PeerReadPages RPC the daemon
 * resolves from the owner's resident frames over a simulated P2P DMA
 * channel, falling back to the normal host path when the owner does
 * not hold the page.
 */
/**
 * Read-ahead policies (the window BufferCache prefetches past a miss).
 *
 * Static is the paper's shape: a fixed `readAheadPages` window on
 * every miss (0 = off, the prototype's behavior). Adaptive scales the
 * window per file from the observed access pattern: a per-CacheFile
 * tracker (readahead.hh) ramps the window multiplicatively on
 * confirmed sequential (or small-stride) runs up to maxReadAheadPages,
 * collapses it to zero on random access, and throttles files whose
 * prefetched pages keep getting evicted unused (with ghost-hit
 * detection so a wrongly-throttled window re-grows). Sequential scans
 * keep Figure 4's batched-RPC win; random workloads (Figure 6) pay
 * nothing — bench/ablate_readahead sweeps both against the static
 * windows and fails if Adaptive ever loses by more than 5%.
 */
enum class ReadAheadPolicy : uint8_t {
    Static,
    Adaptive,
};

enum class ShardPolicy : uint8_t {
    /** Paper baseline: every GPU caches privately, no peer traffic.
     *  Also the effective policy whenever the system has one GPU. */
    Private,
    /** Page groups of GpuFsParams::shardPagesPerGroup pages hash to
     *  owners, spreading each file across all GPUs (the default for
     *  striped shared working sets). */
    HashPageGroup,
    /** Whole files hash to owners (cheap map, good when the working
     *  set is many files of similar heat). */
    FileAffinity,
};

struct GpuFsParams {
    /**
     * Buffer-cache page size. "Performance considerations typically
     * dictate page sizes larger than OS-managed pages — e.g. 256 KB"
     * (§4.2); Figures 4-6 sweep 16 KB .. 16 MB. Must be a power of two.
     */
    uint64_t pageSize = 256 * KiB;

    /** Total buffer-cache capacity (the raw data array size, §4.2). */
    uint64_t cacheBytes = 1 * GiB;

    /** Open + closed file table capacity. */
    unsigned maxOpenFiles = 128;

    /**
     * Ablation (Figure 7): when true, every radix-tree traversal takes
     * node locks instead of the lock-free seqlock-validated path.
     */
    bool forceLockedTraversal = false;

    /** Frame-reclamation policy (see EvictionPolicyKind). */
    EvictionPolicyKind evictPolicy = EvictionPolicyKind::PaperTiered;

    /**
     * STATIC read-ahead window: pages prefetched past every
     * buffer-cache miss. Runs of missing pages are coalesced into
     * batched ReadPages RPCs of up to rpc::kMaxBatchPages each, so the
     * per-request CPU and DMA-setup overheads are paid once per run
     * instead of per page. Setting this nonzero pins the policy to
     * Static regardless of readAheadPolicy (existing sweeps and tests
     * keep their exact RPC patterns); 0 defers to readAheadPolicy.
     */
    unsigned readAheadPages = 0;

    /** Window policy when readAheadPages is 0 (see ReadAheadPolicy).
     *  Adaptive is the default: off for random access, ramping to
     *  maxReadAheadPages on confirmed sequential runs. Static + 0
     *  disables read-ahead entirely (the seed behavior). */
    ReadAheadPolicy readAheadPolicy = ReadAheadPolicy::Adaptive;

    /** Ceiling of the Adaptive ramp, pages (2 ReadPages batches). */
    unsigned maxReadAheadPages = 32;

    /**
     * Extension (off by default): the diff-and-merge protocol of §3.1
     * that the paper's prototype left unimplemented ("does not yet
     * implement the diff-and-merge protocol required to support
     * general write-sharing, and thus currently supports only one
     * writer at a time"). When enabled, write-opened pages keep a
     * pristine copy (a second frame); synchronization diffs working
     * vs pristine and propagates only locally-modified bytes, so
     * multiple writers to disjoint regions — even of the same page
     * (false sharing) — merge correctly, and the consistency layer
     * admits concurrent diff-merge writers.
     */
    bool enableDiffMerge = false;

    /** Frames reclaimed per paging pass (batching amortizes policy work). */
    unsigned reclaimBatch = 16;

    /**
     * Batched write-back (the ReadPages symmetry, on by default):
     * gfsync, dirty eviction and gftruncate coalesce up to
     * rpc::kMaxBatchPages dirty page extents into one WritePages RPC —
     * one request slot, one per-request CPU charge, one gathered
     * HostFs::pwritev, one D2H DMA reservation — instead of one
     * WriteBack round-trip per dirty page. Off reverts to the per-page
     * path (bench/ablate_writeback quantifies the gap).
     */
    bool batchWriteback = true;

    /**
     * Async write-back daemon (§3.3: dirty pages are "written back ...
     * asynchronously" so GPU threads never stall on host I/O; off by
     * default, matching the prototype's sync-on-gfsync behavior). A
     * host-side flusher thread owned by GpufsSystem periodically
     * drains dirty pages through BufferCache::flushDirty, so gfsync
     * usually finds few dirty pages — its latency stops growing with
     * the dirty count — and eviction rarely meets a dirty page. The
     * flusher also owns eager drained-cache collection: closed-file
     * caches whose pages eviction has fully reclaimed are destroyed
     * between passes instead of waiting for the next gopen slow path.
     */
    bool asyncWriteback = false;

    /** Wall-clock period between flusher drain passes, microseconds. */
    unsigned flusherIntervalUs = 200;

    /**
     * Multi-GPU cache sharding (see ShardPolicy). Applied by
     * GpufsSystem, which owns the machine-wide ShardMap; a GpuFs
     * constructed standalone (tests) stays private regardless.
     */
    ShardPolicy shardPolicy = ShardPolicy::Private;

    /** HashPageGroup granularity: pages per ownership group. Larger
     *  groups keep batched fetches whole; smaller groups spread a
     *  single hot file more evenly. */
    unsigned shardPagesPerGroup = 16;

    /**
     * Write-ahead journal in the daemon (crash consistency). When on,
     * write-backs of files opened G_GDURABLE append checksummed extent
     * records plus a commit record to the journal and fsync it BEFORE
     * the in-place write; daemon restart replays committed-but-
     * unapplied records and discards torn tails, so multi-page updates
     * are never torn and gmsync-acknowledged bytes always survive.
     * Off (the default) leaves every existing path byte-identical.
     */
    bool journalWriteback = false;

    /**
     * Storage backend the daemon routes every miss read and write-back
     * through (see storage::BackendKind). Buffered is the paper's
     * buffered-pread shape and stays byte-identical; the others model
     * O_DIRECT, GPUDirect zero-copy, and an NVMe-oF remote flash tier
     * (bench/ablate_backend maps the crossovers).
     */
    storage::BackendKind storageBackend = storage::BackendKind::Buffered;

    /**
     * Non-blocking I/O core: maximum async requests a single block may
     * have outstanding (gread_async/gwrite_async/gfsync_async tokens
     * not yet collected by gwait). Submissions beyond the cap fail
     * with Status::Busy — a block that double-buffers needs 2; the
     * default leaves generous headroom without letting a runaway block
     * monopolize the request-table slots or the RPC queue.
     */
    unsigned maxInflightIo = 64;

    /**
     * Host-RAM victim cache (second tier, off at 0): pinned host
     * memory, in pages of `pageSize`, that the machine's GpufsSystem
     * sizes and every GPU's arena demotes evicted pages into (one D2H
     * copy on the per-GPU host-staging timeline, off the critical
     * path). The daemon probes the tier before the storage backend on
     * every miss read, version-gated against the host file version, so
     * a re-miss of a demoted page costs one H2D DMA instead of a
     * storage read. Counters: vc_inserts / vc_hits / vc_misses /
     * vc_version_stale / vc_evictions in the daemon StatSet.
     */
    uint64_t victimCachePages = 0;

    /**
     * Multi-tenant serving tier (all zero = off, every path identical
     * to the single-tenant behavior). Quotas are enforced at claim /
     * demote time: a tenant at its frame quota evicts within its own
     * resident set (or gets NoSpace) instead of trampling other
     * tenants, and a tenant over its victim-tier quota displaces its
     * own demoted pages first. 0 = unlimited for that tenant.
     */
    uint32_t tenantFrameQuota[kMaxTenants] = {0, 0, 0, 0};

    /** Victim-tier quota per tenant, in pages (0 = unlimited). */
    uint64_t tenantVictimQuota[kMaxTenants] = {0, 0, 0, 0};

    /**
     * Weighted deficit-round-robin slot scheduling in the daemon's
     * service sweep (all zero = issue-time FIFO, the seed behavior).
     * A sweep holding requests of more than one tenant is served in
     * DRR order — batch requests cost their page count — so a scan
     * tenant's 16-page batches cannot starve a point-lookup tenant's
     * single-page reads queued in the same sweep.
     */
    unsigned tenantWeight[kMaxTenants] = {0, 0, 0, 0};
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_PARAMS_HH
