/**
 * @file
 * Adaptive per-file read-ahead: the access-pattern tracker behind
 * GpuFsParams::ReadAheadPolicy::Adaptive.
 *
 * The paper hand-tunes a single static `readAheadPages` constant — the
 * window that makes Figure 4's sequential scan fast is exactly the one
 * that wastes arena frames and PCIe bandwidth on Figure 6's random
 * workload. Production readahead (Linux's on-demand readahead, the
 * prefetch-feedback literature) instead scales the window per file
 * from the observed pattern. This tracker does the same for GPUfs:
 *
 *  - a last-offset / run-length sequential detector with stride
 *    recognition (any stride in [-8, 8] except 0, page units) feeds
 *    a window that ramps multiplicatively on confirmed runs (2, 4,
 *    8, ... up to GpuFsParams::maxReadAheadPages) and collapses to
 *    zero the moment the pattern breaks;
 *  - prefetch-feedback accounting closes the loop: every page a
 *    read-ahead batch publishes is tagged speculative
 *    (PFrame::speculative); the first application pin promotes it
 *    (ra_hit), eviction of a never-pinned speculative frame counts it
 *    wasted (ra_wasted). A streak of cold deaths with no promotion
 *    throttles the file's window to zero;
 *  - ghost-hit detection lets a throttled (or too-small) window
 *    re-grow: the indices of recently wasted pages sit in a small
 *    ring, and a later miss on one of them is proof the prefetch was
 *    right and only died early — the throttle lifts and the ramp
 *    restarts.
 *
 * One tracker per CacheFile, embedded next to the radix cache it
 * describes. All pattern state lives under a private spinlock: the
 * decision points (BufferCache::readAheadFrom / submitReadAhead) run
 * on application block threads, promotion runs on whichever block pins
 * first, and waste accounting runs under the paging lock — the lock
 * here is always innermost and never held across a call out.
 *
 * A bare ReadAheadTracker keys on whatever its owner keys it on. Keyed
 * per FILE (the PR-5 design), N blocks scanning one file sequentially
 * interleave into a pattern the detector reads as random, which
 * degrades to no prefetch. ReadAheadStreams below fixes that: a
 * bounded (file, stream) table of trackers keyed on the requesting
 * block id — Linux keys readahead per `struct file`; one open per
 * reader gives it per-stream state for free, and this table is the
 * GPU-side equivalent for thousands of blocks sharing one CacheFile.
 * Each block's sequential run then ramps 2->32 independently, and one
 * block's waste throttles only its own stream.
 */

#ifndef GPUFS_GPUFS_READAHEAD_HH
#define GPUFS_GPUFS_READAHEAD_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "gpufs/spinlock.hh"

namespace gpufs {
namespace core {

class ReadAheadTracker
{
  public:
    /** Misses needed at a constant stride before the window opens. */
    static constexpr unsigned kSeqRunThreshold = 2;
    /** First window granted when a run confirms; doubles per miss. */
    static constexpr unsigned kInitWindow = 2;
    /** Largest |stride| (pages) recognized as a pattern; larger jumps
     *  read as random and collapse the window. */
    static constexpr int64_t kMaxStrideMag = 8;
    /** Non-unit strides prefetch one page per RPC (the gaps must not
     *  be fetched), so their window is capped lower. */
    static constexpr unsigned kStridedWindowCap = 8;
    /** Speculative pages dying cold (evicted unpinned) with no
     *  intervening promotion before the file is throttled. */
    static constexpr unsigned kThrottleStreak = 8;
    /** Recently-wasted page indices kept for ghost-hit detection. */
    static constexpr unsigned kGhostSlots = 16;
    /** A fresh run this long un-throttles even without a ghost hit
     *  (the old waste may predate a phase change). */
    static constexpr unsigned kRethrottleRun = 16;

    static constexpr uint64_t kNoIdx = UINT64_MAX;

    /** What the decision point should do about one miss. */
    struct Decision {
        unsigned window = 0;    ///< pages to prefetch (0 = none)
        int64_t stride = 1;     ///< page step of the prefetch
        bool ghost = false;     ///< this miss hit the ghost ring
    };

    /**
     * Record a demand miss covering pages [first_idx, last_idx] (a
     * single page for the per-page path, the whole run for vectored
     * demand batches) and decide the prefetch window to issue from
     * @p last_idx. @p max_window is GpuFsParams::maxReadAheadPages.
     */
    Decision
    onMiss(uint64_t first_idx, uint64_t last_idx, unsigned max_window)
    {
        SpinGuard guard(lock_);
        Decision d;
        // Ghost check first: a miss on a page we prefetched and then
        // evicted unused is evidence the window was RIGHT (it died
        // early, or the throttle was too hard) — lift the throttle and
        // resume ramping instead of reading the jump as random.
        for (unsigned i = 0; i < kGhostSlots; ++i) {
            if (ghosts_[i] == first_idx) {
                ghosts_[i] = kNoIdx;
                ghostHits_.fetch_add(1, std::memory_order_relaxed);
                throttled_ = false;
                wastedStreak_ = 0;
                runLen_ = kSeqRunThreshold;
                if (stride_ == 0)
                    stride_ = 1;
                d.ghost = true;
                break;
            }
        }
        if (!d.ghost && lastIdx_ != kNoIdx) {
            int64_t delta = static_cast<int64_t>(first_idx) -
                static_cast<int64_t>(lastIdx_);
            if (delta != 0 && delta == stride_) {
                ++runLen_;
            } else if (delta != 0 && std::llabs(delta) <= kMaxStrideMag) {
                // New candidate pattern: remember the stride, but the
                // old window is dead until the run re-confirms.
                stride_ = delta;
                runLen_ = 1;
                window_ = 0;
            } else {
                // Random jump (or a re-read of the same page racing
                // another block): collapse.
                stride_ = 0;
                runLen_ = 0;
                window_ = 0;
            }
        }
        lastIdx_ = last_idx;
        if (throttled_ && runLen_ >= kRethrottleRun) {
            throttled_ = false;
            wastedStreak_ = 0;
        }
        if (runLen_ >= kSeqRunThreshold && !throttled_) {
            window_ = window_ == 0
                ? kInitWindow
                : std::min<uint32_t>(window_ * 2, max_window);
            if (window_ > max_window)
                window_ = max_window;
        }
        d.window = throttled_ ? 0 : window_;
        d.stride = stride_ == 0 ? 1 : stride_;
        if (d.stride != 1 && d.window > kStridedWindowCap)
            d.window = kStridedWindowCap;
        return d;
    }

    /**
     * Advance the last-seen cursor past a span the decision point just
     * covered (prefetched, or stepped over because resident): the next
     * sequential miss lands one stride past the window's end, and
     * without this advance the detector would read it as a jump.
     */
    void
    advance(uint64_t covered_to)
    {
        SpinGuard guard(lock_);
        lastIdx_ = covered_to;
    }

    /** A read-ahead batch published @p n speculative pages. */
    void
    notePublished(unsigned n)
    {
        issued_.fetch_add(n, std::memory_order_relaxed);
        int32_t now = specResident_.fetch_add(
                          static_cast<int32_t>(n),
                          std::memory_order_relaxed) +
            static_cast<int32_t>(n);
        int32_t peak = specPeak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !specPeak_.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
    }

    /** A speculative page was pinned by the application (promotion). */
    void
    noteHit()
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        SpinGuard guard(lock_);
        wastedStreak_ = 0;      // prefetch proved useful
    }

    /** A speculative page was evicted (or dropped) never pinned. */
    void
    noteWasted(uint64_t page_idx)
    {
        wasted_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        SpinGuard guard(lock_);
        ghosts_[ghostPos_] = page_idx;
        ghostPos_ = (ghostPos_ + 1) % kGhostSlots;
        if (++wastedStreak_ >= kThrottleStreak && !throttled_) {
            throttled_ = true;
            window_ = 0;
        }
    }

    /** Forget everything (file-table slot recycled for a new file). */
    void
    reset()
    {
        SpinGuard guard(lock_);
        lastIdx_ = kNoIdx;
        stride_ = 0;
        runLen_ = 0;
        window_ = 0;
        throttled_ = false;
        wastedStreak_ = 0;
        ghostPos_ = 0;
        for (auto &g : ghosts_)
            g = kNoIdx;
        issued_.store(0, std::memory_order_relaxed);
        hits_.store(0, std::memory_order_relaxed);
        wasted_.store(0, std::memory_order_relaxed);
        ghostHits_.store(0, std::memory_order_relaxed);
        specResident_.store(0, std::memory_order_relaxed);
        specPeak_.store(0, std::memory_order_relaxed);
    }

    // ---- introspection (tests, benches) ----

    unsigned
    window() const
    {
        SpinGuard guard(lock_);
        return throttled_ ? 0 : window_;
    }

    int64_t
    stride() const
    {
        SpinGuard guard(lock_);
        return stride_;
    }

    bool
    throttled() const
    {
        SpinGuard guard(lock_);
        return throttled_;
    }

    uint64_t issued() const
    {
        return issued_.load(std::memory_order_relaxed);
    }
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t wasted() const
    {
        return wasted_.load(std::memory_order_relaxed);
    }
    uint64_t ghostHits() const
    {
        return ghostHits_.load(std::memory_order_relaxed);
    }
    /** Published speculative pages currently resident (not yet
     *  promoted or evicted), and the high-water mark. */
    int32_t specResident() const
    {
        return specResident_.load(std::memory_order_relaxed);
    }
    int32_t specPeak() const
    {
        return specPeak_.load(std::memory_order_relaxed);
    }

  private:
    mutable SpinLock lock_;
    uint64_t lastIdx_ = kNoIdx;
    int64_t stride_ = 0;
    uint32_t runLen_ = 0;
    uint32_t window_ = 0;
    bool throttled_ = false;
    uint32_t wastedStreak_ = 0;
    uint64_t ghosts_[kGhostSlots] = {
        kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx,
        kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx};
    unsigned ghostPos_ = 0;

    // Feedback counters (atomic: promotion and eviction run on other
    // threads than the decision point).
    std::atomic<uint64_t> issued_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> wasted_{0};
    std::atomic<uint64_t> ghostHits_{0};
    std::atomic<int32_t> specResident_{0};
    std::atomic<int32_t> specPeak_{0};
};

/**
 * Per-stream read-ahead: a bounded table of ReadAheadTrackers keyed on
 * a caller-chosen stream id (the requesting block id), LRU-recycled,
 * embedded one per CacheFile where the single tracker used to live.
 *
 * Pattern state (stride detector, window, throttle, ghost ring) is
 * per-stream: slot resolution happens once per demand miss at the
 * decision point, and the granted Decision carries the slot index so
 * the whole prefetch batch — publication, promotion, waste — routes
 * its feedback back to the stream that issued it (the slot index rides
 * each published frame in PFrame::raStream).
 *
 * The prefetch-feedback AGGREGATES (issued / hits / wasted / resident
 * speculative pages and their peak) are kept here, NOT summed over the
 * slots: slot recycling resets per-slot counters mid-flight, while the
 * conservation invariant (ra_issued == ra_hit + ra_wasted + resident)
 * must hold for the file regardless of how many streams came and went.
 * Feedback tagged kNoStream (static-policy batches, which never
 * resolve a stream; or frames whose stream slot was recycled) updates
 * the aggregates only — exact accounting, heuristic routing.
 *
 * Thread safety: the slot table is guarded by its own spinlock (taken
 * on resolution and introspection only, never across a call out); the
 * per-slot trackers and the aggregates carry their own synchronization
 * exactly as before.
 */
class ReadAheadStreams
{
  public:
    /** Stream slots per file: enough for every concurrently-RESIDENT
     *  scanning block (a full wave is mpCount x blocksPerMp = 28 on
     *  the modelled C2075 — below that, same-wave streams recycle
     *  each other on every miss and no window ever ramps), small
     *  enough that resolution stays a linear scan. Grids larger than
     *  a wave are fine: blocks past the wave only start when earlier
     *  ones retire, and their quiet slots are the LRU victims. */
    static constexpr unsigned kStreamSlots = 32;
    /** Feedback tag for "no stream resolved": static-policy batches,
     *  or a frame outliving its stream's recycling. */
    static constexpr uint8_t kNoStream = 0xFF;
    static constexpr uint64_t kNoKey = UINT64_MAX;

    /** A per-stream onMiss decision plus its routing: the resolved
     *  slot (tagged into every frame the batch publishes) and whether
     *  resolving it recycled a live stream (LRU victim). */
    struct Decision {
        unsigned window = 0;
        int64_t stride = 1;
        bool ghost = false;
        uint8_t stream = kNoStream;
        bool recycled = false;
    };

    /**
     * Resolve @p stream_key (the requesting block id) to a slot —
     * reusing its live slot, claiming a free one, or recycling the
     * LRU victim — and feed the miss to that stream's tracker.
     */
    Decision
    onMiss(uint64_t stream_key, uint64_t first_idx, uint64_t last_idx,
           unsigned max_window)
    {
        Decision d;
        uint8_t s = resolve(stream_key, &d.recycled);
        ReadAheadTracker::Decision td =
            slots_[s].tracker.onMiss(first_idx, last_idx, max_window);
        d.window = td.window;
        d.stride = td.stride;
        d.ghost = td.ghost;
        d.stream = s;
        if (td.ghost)
            ghostHits_.fetch_add(1, std::memory_order_relaxed);
        return d;
    }

    /** Advance @p stream's cursor past a covered span (see
     *  ReadAheadTracker::advance). No-op for kNoStream. */
    void
    advance(uint8_t stream, uint64_t covered_to)
    {
        if (stream < kStreamSlots)
            slots_[stream].tracker.advance(covered_to);
    }

    /** A read-ahead batch attributed to @p stream published @p n
     *  speculative pages. Aggregates always update; the stream's own
     *  tracker only when one was resolved. */
    void
    notePublished(uint8_t stream, unsigned n)
    {
        issued_.fetch_add(n, std::memory_order_relaxed);
        int32_t now = specResident_.fetch_add(
                          static_cast<int32_t>(n),
                          std::memory_order_relaxed) +
            static_cast<int32_t>(n);
        int32_t peak = specPeak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !specPeak_.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
        if (stream < kStreamSlots)
            slots_[stream].tracker.notePublished(n);
    }

    /** A speculative page tagged @p stream was promoted by a pin.
     *  Promotion also refreshes the slot's LRU stamp: a block riding a
     *  full window misses only once per window, and without this an
     *  ACTIVE stream looks idle between misses and gets recycled by
     *  newly arriving blocks — losing its ramp mid-scan. */
    void
    noteHit(uint8_t stream)
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        if (stream < kStreamSlots) {
            slots_[stream].tracker.noteHit();
            // Advance the clock, don't just read it: misses are rare
            // once windows are open, and same-stamp ties would make
            // the LRU scan's victim pick arbitrary among every live
            // stream instead of the genuinely stale one.
            slots_[stream].lastUse.store(
                clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        }
    }

    /** A speculative page tagged @p stream died unpinned. The waste
     *  streak and ghost ring are the tagged stream's own — one block's
     *  cold deaths throttle only its window. */
    void
    noteWasted(uint8_t stream, uint64_t page_idx)
    {
        wasted_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        if (stream < kStreamSlots)
            slots_[stream].tracker.noteWasted(page_idx);
    }

    /**
     * The stream's owner is done with the file (gclose): free its slot
     * NOW instead of waiting for LRU pressure. Recency alone cannot
     * tell a retired stream from a live one stalled on its next window
     * fetch — a retiring block hits (promotes) until its very last
     * page, so under block churn the LRU victim would often be a live
     * stream mid-stall, costing it its ramp. With an explicit release
     * at close, arriving blocks find a free slot and live streams are
     * never victimized while the table is at or under capacity.
     * Frames still tagged with the slot keep updating the aggregates
     * exactly; their per-stream routing hits a reset tracker (same
     * bounded heuristic error as LRU recycling).
     */
    void
    release(uint64_t stream_key)
    {
        SpinGuard guard(lock_);
        for (auto &s : slots_) {
            if (s.key == stream_key) {
                s.key = kNoKey;
                s.lastUse.store(0, std::memory_order_relaxed);
                s.tracker.reset();
                active_.fetch_sub(1, std::memory_order_relaxed);
                return;
            }
        }
    }

    /** Forget everything (file-table slot recycled for a new file). */
    void
    reset()
    {
        SpinGuard guard(lock_);
        for (auto &s : slots_) {
            s.key = kNoKey;
            s.lastUse.store(0, std::memory_order_relaxed);
            s.tracker.reset();
        }
        clock_.store(0, std::memory_order_relaxed);
        mru_ = 0;
        active_.store(0, std::memory_order_relaxed);
        recycles_.store(0, std::memory_order_relaxed);
        issued_.store(0, std::memory_order_relaxed);
        hits_.store(0, std::memory_order_relaxed);
        wasted_.store(0, std::memory_order_relaxed);
        ghostHits_.store(0, std::memory_order_relaxed);
        specResident_.store(0, std::memory_order_relaxed);
        specPeak_.store(0, std::memory_order_relaxed);
    }

    // ---- introspection (tests, benches) ----
    //
    // window/stride/throttled report the MOST RECENTLY USED stream —
    // with a single scanning block that is the one stream there is,
    // which keeps the single-stream e2e assertions meaningful.

    unsigned
    window() const
    {
        return mruTracker().window();
    }

    int64_t
    stride() const
    {
        return mruTracker().stride();
    }

    bool
    throttled() const
    {
        return mruTracker().throttled();
    }

    /** The live tracker of @p stream_key, or nullptr when the key
     *  holds no slot (never resolved, or recycled away). */
    const ReadAheadTracker *
    stream(uint64_t stream_key) const
    {
        SpinGuard guard(lock_);
        for (const auto &s : slots_) {
            if (s.key == stream_key)
                return &s.tracker;
        }
        return nullptr;
    }

    /** Streams currently holding a slot / live-slot LRU recycles. */
    unsigned
    streamsActive() const
    {
        return active_.load(std::memory_order_relaxed);
    }
    uint64_t
    streamRecycles() const
    {
        return recycles_.load(std::memory_order_relaxed);
    }

    // Aggregate prefetch feedback (conservation-authoritative).
    uint64_t issued() const
    {
        return issued_.load(std::memory_order_relaxed);
    }
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t wasted() const
    {
        return wasted_.load(std::memory_order_relaxed);
    }
    uint64_t ghostHits() const
    {
        return ghostHits_.load(std::memory_order_relaxed);
    }
    int32_t specResident() const
    {
        return specResident_.load(std::memory_order_relaxed);
    }
    int32_t specPeak() const
    {
        return specPeak_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot {
        uint64_t key = kNoKey;
        /** Atomic: refreshed by noteHit from promoter threads without
         *  the table lock; resolve()'s LRU scan tolerates the race (a
         *  stale read only mis-ranks one victim candidate). */
        std::atomic<uint64_t> lastUse{0};
        ReadAheadTracker tracker;
    };

    /** Find @p key's slot, claiming/recycling as needed. */
    uint8_t
    resolve(uint64_t key, bool *recycled)
    {
        SpinGuard guard(lock_);
        uint64_t now =
            clock_.fetch_add(1, std::memory_order_relaxed) + 1;
        unsigned free_slot = kStreamSlots;
        unsigned lru = 0;
        uint64_t lru_use = UINT64_MAX;
        for (unsigned i = 0; i < kStreamSlots; ++i) {
            if (slots_[i].key == key) {
                slots_[i].lastUse.store(now, std::memory_order_relaxed);
                mru_ = i;
                return static_cast<uint8_t>(i);
            }
            if (slots_[i].key == kNoKey) {
                if (free_slot == kStreamSlots)
                    free_slot = i;
            } else {
                uint64_t use =
                    slots_[i].lastUse.load(std::memory_order_relaxed);
                if (use < lru_use) {
                    lru_use = use;
                    lru = i;
                }
            }
        }
        unsigned s;
        if (free_slot != kStreamSlots) {
            s = free_slot;
            active_.fetch_add(1, std::memory_order_relaxed);
        } else {
            // Recycle the LRU victim: its pattern state describes a
            // stream that went quiet. Frames still tagged with this
            // slot keep updating the aggregates exactly; their
            // per-stream routing goes to the new tenant — a bounded
            // heuristic error, not an accounting one.
            s = lru;
            recycles_.fetch_add(1, std::memory_order_relaxed);
            *recycled = true;
        }
        slots_[s].key = key;
        slots_[s].lastUse.store(now, std::memory_order_relaxed);
        slots_[s].tracker.reset();
        mru_ = s;
        return static_cast<uint8_t>(s);
    }

    const ReadAheadTracker &
    mruTracker() const
    {
        SpinGuard guard(lock_);
        return slots_[mru_].tracker;
    }

    mutable SpinLock lock_;
    Slot slots_[kStreamSlots];
    std::atomic<uint64_t> clock_{0};
    unsigned mru_ = 0;
    std::atomic<unsigned> active_{0};
    std::atomic<uint64_t> recycles_{0};

    // Aggregate feedback counters (see class comment: authoritative
    // for conservation; never reset by slot recycling).
    std::atomic<uint64_t> issued_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> wasted_{0};
    std::atomic<uint64_t> ghostHits_{0};
    std::atomic<int32_t> specResident_{0};
    std::atomic<int32_t> specPeak_{0};
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_READAHEAD_HH
