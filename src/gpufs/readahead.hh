/**
 * @file
 * Adaptive per-file read-ahead: the access-pattern tracker behind
 * GpuFsParams::ReadAheadPolicy::Adaptive.
 *
 * The paper hand-tunes a single static `readAheadPages` constant — the
 * window that makes Figure 4's sequential scan fast is exactly the one
 * that wastes arena frames and PCIe bandwidth on Figure 6's random
 * workload. Production readahead (Linux's on-demand readahead, the
 * prefetch-feedback literature) instead scales the window per file
 * from the observed pattern. This tracker does the same for GPUfs:
 *
 *  - a last-offset / run-length sequential detector with stride
 *    recognition (any stride in [-8, 8] except 0, page units) feeds
 *    a window that ramps multiplicatively on confirmed runs (2, 4,
 *    8, ... up to GpuFsParams::maxReadAheadPages) and collapses to
 *    zero the moment the pattern breaks;
 *  - prefetch-feedback accounting closes the loop: every page a
 *    read-ahead batch publishes is tagged speculative
 *    (PFrame::speculative); the first application pin promotes it
 *    (ra_hit), eviction of a never-pinned speculative frame counts it
 *    wasted (ra_wasted). A streak of cold deaths with no promotion
 *    throttles the file's window to zero;
 *  - ghost-hit detection lets a throttled (or too-small) window
 *    re-grow: the indices of recently wasted pages sit in a small
 *    ring, and a later miss on one of them is proof the prefetch was
 *    right and only died early — the throttle lifts and the ramp
 *    restarts.
 *
 * One tracker per CacheFile, embedded next to the radix cache it
 * describes. All pattern state lives under a private spinlock: the
 * decision points (BufferCache::readAheadFrom / submitReadAhead) run
 * on application block threads, promotion runs on whichever block pins
 * first, and waste accounting runs under the paging lock — the lock
 * here is always innermost and never held across a call out.
 *
 * The tracker keys on the FILE, not on a (file, block) stream: N
 * blocks scanning one file sequentially interleave into a pattern the
 * detector reads as random, which degrades to no prefetch — the
 * "never hurts" floor, not a regression (per-stream tracking is the
 * ROADMAP follow-on).
 */

#ifndef GPUFS_GPUFS_READAHEAD_HH
#define GPUFS_GPUFS_READAHEAD_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "gpufs/spinlock.hh"

namespace gpufs {
namespace core {

class ReadAheadTracker
{
  public:
    /** Misses needed at a constant stride before the window opens. */
    static constexpr unsigned kSeqRunThreshold = 2;
    /** First window granted when a run confirms; doubles per miss. */
    static constexpr unsigned kInitWindow = 2;
    /** Largest |stride| (pages) recognized as a pattern; larger jumps
     *  read as random and collapse the window. */
    static constexpr int64_t kMaxStrideMag = 8;
    /** Non-unit strides prefetch one page per RPC (the gaps must not
     *  be fetched), so their window is capped lower. */
    static constexpr unsigned kStridedWindowCap = 8;
    /** Speculative pages dying cold (evicted unpinned) with no
     *  intervening promotion before the file is throttled. */
    static constexpr unsigned kThrottleStreak = 8;
    /** Recently-wasted page indices kept for ghost-hit detection. */
    static constexpr unsigned kGhostSlots = 16;
    /** A fresh run this long un-throttles even without a ghost hit
     *  (the old waste may predate a phase change). */
    static constexpr unsigned kRethrottleRun = 16;

    static constexpr uint64_t kNoIdx = UINT64_MAX;

    /** What the decision point should do about one miss. */
    struct Decision {
        unsigned window = 0;    ///< pages to prefetch (0 = none)
        int64_t stride = 1;     ///< page step of the prefetch
        bool ghost = false;     ///< this miss hit the ghost ring
    };

    /**
     * Record a demand miss covering pages [first_idx, last_idx] (a
     * single page for the per-page path, the whole run for vectored
     * demand batches) and decide the prefetch window to issue from
     * @p last_idx. @p max_window is GpuFsParams::maxReadAheadPages.
     */
    Decision
    onMiss(uint64_t first_idx, uint64_t last_idx, unsigned max_window)
    {
        SpinGuard guard(lock_);
        Decision d;
        // Ghost check first: a miss on a page we prefetched and then
        // evicted unused is evidence the window was RIGHT (it died
        // early, or the throttle was too hard) — lift the throttle and
        // resume ramping instead of reading the jump as random.
        for (unsigned i = 0; i < kGhostSlots; ++i) {
            if (ghosts_[i] == first_idx) {
                ghosts_[i] = kNoIdx;
                ghostHits_.fetch_add(1, std::memory_order_relaxed);
                throttled_ = false;
                wastedStreak_ = 0;
                runLen_ = kSeqRunThreshold;
                if (stride_ == 0)
                    stride_ = 1;
                d.ghost = true;
                break;
            }
        }
        if (!d.ghost && lastIdx_ != kNoIdx) {
            int64_t delta = static_cast<int64_t>(first_idx) -
                static_cast<int64_t>(lastIdx_);
            if (delta != 0 && delta == stride_) {
                ++runLen_;
            } else if (delta != 0 && std::llabs(delta) <= kMaxStrideMag) {
                // New candidate pattern: remember the stride, but the
                // old window is dead until the run re-confirms.
                stride_ = delta;
                runLen_ = 1;
                window_ = 0;
            } else {
                // Random jump (or a re-read of the same page racing
                // another block): collapse.
                stride_ = 0;
                runLen_ = 0;
                window_ = 0;
            }
        }
        lastIdx_ = last_idx;
        if (throttled_ && runLen_ >= kRethrottleRun) {
            throttled_ = false;
            wastedStreak_ = 0;
        }
        if (runLen_ >= kSeqRunThreshold && !throttled_) {
            window_ = window_ == 0
                ? kInitWindow
                : std::min<uint32_t>(window_ * 2, max_window);
            if (window_ > max_window)
                window_ = max_window;
        }
        d.window = throttled_ ? 0 : window_;
        d.stride = stride_ == 0 ? 1 : stride_;
        if (d.stride != 1 && d.window > kStridedWindowCap)
            d.window = kStridedWindowCap;
        return d;
    }

    /**
     * Advance the last-seen cursor past a span the decision point just
     * covered (prefetched, or stepped over because resident): the next
     * sequential miss lands one stride past the window's end, and
     * without this advance the detector would read it as a jump.
     */
    void
    advance(uint64_t covered_to)
    {
        SpinGuard guard(lock_);
        lastIdx_ = covered_to;
    }

    /** A read-ahead batch published @p n speculative pages. */
    void
    notePublished(unsigned n)
    {
        issued_.fetch_add(n, std::memory_order_relaxed);
        int32_t now = specResident_.fetch_add(
                          static_cast<int32_t>(n),
                          std::memory_order_relaxed) +
            static_cast<int32_t>(n);
        int32_t peak = specPeak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !specPeak_.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
    }

    /** A speculative page was pinned by the application (promotion). */
    void
    noteHit()
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        SpinGuard guard(lock_);
        wastedStreak_ = 0;      // prefetch proved useful
    }

    /** A speculative page was evicted (or dropped) never pinned. */
    void
    noteWasted(uint64_t page_idx)
    {
        wasted_.fetch_add(1, std::memory_order_relaxed);
        specResident_.fetch_sub(1, std::memory_order_relaxed);
        SpinGuard guard(lock_);
        ghosts_[ghostPos_] = page_idx;
        ghostPos_ = (ghostPos_ + 1) % kGhostSlots;
        if (++wastedStreak_ >= kThrottleStreak && !throttled_) {
            throttled_ = true;
            window_ = 0;
        }
    }

    /** Forget everything (file-table slot recycled for a new file). */
    void
    reset()
    {
        SpinGuard guard(lock_);
        lastIdx_ = kNoIdx;
        stride_ = 0;
        runLen_ = 0;
        window_ = 0;
        throttled_ = false;
        wastedStreak_ = 0;
        ghostPos_ = 0;
        for (auto &g : ghosts_)
            g = kNoIdx;
        issued_.store(0, std::memory_order_relaxed);
        hits_.store(0, std::memory_order_relaxed);
        wasted_.store(0, std::memory_order_relaxed);
        ghostHits_.store(0, std::memory_order_relaxed);
        specResident_.store(0, std::memory_order_relaxed);
        specPeak_.store(0, std::memory_order_relaxed);
    }

    // ---- introspection (tests, benches) ----

    unsigned
    window() const
    {
        SpinGuard guard(lock_);
        return throttled_ ? 0 : window_;
    }

    int64_t
    stride() const
    {
        SpinGuard guard(lock_);
        return stride_;
    }

    bool
    throttled() const
    {
        SpinGuard guard(lock_);
        return throttled_;
    }

    uint64_t issued() const
    {
        return issued_.load(std::memory_order_relaxed);
    }
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t wasted() const
    {
        return wasted_.load(std::memory_order_relaxed);
    }
    uint64_t ghostHits() const
    {
        return ghostHits_.load(std::memory_order_relaxed);
    }
    /** Published speculative pages currently resident (not yet
     *  promoted or evicted), and the high-water mark. */
    int32_t specResident() const
    {
        return specResident_.load(std::memory_order_relaxed);
    }
    int32_t specPeak() const
    {
        return specPeak_.load(std::memory_order_relaxed);
    }

  private:
    mutable SpinLock lock_;
    uint64_t lastIdx_ = kNoIdx;
    int64_t stride_ = 0;
    uint32_t runLen_ = 0;
    uint32_t window_ = 0;
    bool throttled_ = false;
    uint32_t wastedStreak_ = 0;
    uint64_t ghosts_[kGhostSlots] = {
        kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx,
        kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx, kNoIdx};
    unsigned ghostPos_ = 0;

    // Feedback counters (atomic: promotion and eviction run on other
    // threads than the decision point).
    std::atomic<uint64_t> issued_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> wasted_{0};
    std::atomic<uint64_t> ghostHits_{0};
    std::atomic<int32_t> specResident_{0};
    std::atomic<int32_t> specPeak_{0};
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_READAHEAD_HH
