/**
 * @file
 * GPUfs open and closed file tables (§4.1).
 *
 * "File descriptors" do not represent individual opens — they
 * correspond directly to files, so all GPU threadblocks opening the
 * same file share one reference-counted entry; a gopen of an
 * already-open file just bumps the count without CPU communication.
 *
 * When the count drops to zero the entry moves to the Closed state but
 * its page cache is *retained* until reclaimed: the nondeterministic
 * block scheduler routinely drives a file's count to zero between
 * block waves, and gopen checks closed entries first to recover the
 * cache (validated against the host's version number — the lazy
 * invalidation of §4.4).
 *
 * Footnote 2 of the paper omits "technical details on handling dirty
 * files on close"; this implementation resolves them as follows: a
 * file closed with dirty pages keeps its host fd (and consistency
 * write claim) alive so that later eviction can still write the pages
 * back; the fd is released when the pages are synced, invalidated, or
 * the entry is recycled.
 *
 * FileTable owns the entry array and the lookup/recycling scans; all
 * calls must run under the owning GpuFs's table lock.
 */

#ifndef GPUFS_GPUFS_FILE_TABLE_HH
#define GPUFS_GPUFS_FILE_TABLE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpufs/buffer_cache.hh"

namespace gpufs {
namespace core {

/** GPUfs open flags. G_GWRONCE / G_NOSYNC are the new modes of §3.2. */
enum GOpenFlags : uint32_t {
    G_RDONLY = 0x0,
    G_WRONLY = 0x1,
    G_RDWR = 0x2,
    G_ACCMODE = 0x3,
    G_CREAT = 0x40,
    G_TRUNC = 0x200,
    /** Write-once file: no fetch-before-write, diff-against-zeros
     *  write-back; partial updates possible if bytes are overwritten. */
    G_GWRONCE = 0x10000,
    /** GPU-local temporary: never synchronized to the host. */
    G_NOSYNC = 0x20000,
    /** Durable file (crash consistency): write-backs are journaled by
     *  the daemon when GpuFsParams::journalWriteback is on, and
     *  gfsync/gmsync completion means the journal commit record — not
     *  merely the host page cache — holds the data. Per-file, after
     *  the cuda-durable-allocator design. */
    G_GDURABLE = 0x40000,
    /** Tenant id field (serving tier): bits [20, 22) carry the opener's
     *  TenantId, composed with g_tenant_flags(). The bits never reach
     *  the host open (hostOpenFlags copies named bits only); they ride
     *  the entry's flag word into CacheFile::tenant, where frame and
     *  victim quotas and the daemon's DRR scheduler read them. */
    G_TENANT_SHIFT = 20,
    G_TENANT_MASK = 0x3 << G_TENANT_SHIFT,
};

/** Compose the flag bits carrying @p tenant (OR into gopen flags). */
constexpr uint32_t
g_tenant_flags(TenantId tenant)
{
    return (static_cast<uint32_t>(tenant) << G_TENANT_SHIFT) &
        G_TENANT_MASK;
}

/** Extract the TenantId a gopen flag word carries. */
constexpr TenantId
g_tenant_of(uint32_t flags)
{
    return static_cast<TenantId>((flags & G_TENANT_MASK) >>
                                 G_TENANT_SHIFT);
}

/** Result of gfstat. */
struct GStat {
    uint64_t ino;
    /** File size as of the first gopen on the host, extended by local
     *  writes (§3.2: "file size reflects size at the time of the first
     *  gopen"). */
    uint64_t size;
};

/** One file-table entry. State transitions happen under the GpuFs
 *  table lock; data-plane fields are read lock-free. The cache-layer
 *  view of the file (page cache, host fd, size/version, write-back
 *  semantics) lives in the embedded CacheFile, which the API layer
 *  keeps current as flags and open state change. */
struct OpenFile {
    enum class EState { Free, Open, Closed };

    EState state = EState::Free;
    std::string path;
    uint64_t ino = 0;
    uint32_t flags = 0;
    std::atomic<int> refs{0};

    /** Cache-layer state; registered with the BufferCache. */
    CacheFile cf;

    bool
    wantsWrite() const
    {
        // O_GWRONCE "creates a new write-only file" (§3.2): it implies
        // write access even without an explicit access-mode bit.
        return (flags & G_ACCMODE) != G_RDONLY || (flags & G_GWRONCE);
    }
    bool gwronce() const { return flags & G_GWRONCE; }
    bool nosync() const { return flags & G_NOSYNC; }
    bool gdurable() const { return flags & G_GDURABLE; }
    TenantId tenant() const { return g_tenant_of(flags); }

    /** True when the background flusher should drain this entry: a
     *  live cache holding dirty pages whose contents are host-synced
     *  (NOSYNC temps are never written back, §3.2). */
    bool
    flushEligible() const
    {
        return state != EState::Free && !nosync() && cf.cache &&
            cf.cache->dirtyCount() != 0;
    }

    /** Project the flag word into the cache layer's policy booleans. */
    void
    syncCacheFlags()
    {
        cf.write = wantsWrite();
        cf.wronce = gwronce();
        cf.noSync = nosync();
        cf.durable.store(gdurable(), std::memory_order_relaxed);
        cf.tenant.store(tenant(), std::memory_order_relaxed);
    }

    /** Return the entry to the Free state (cache already destroyed and
     *  host fd released by the caller). */
    void
    resetEntry()
    {
        state = EState::Free;
        path.clear();
        ino = 0;
        flags = 0;
        refs.store(0, std::memory_order_relaxed);
        cf.ino = 0;
        cf.version.store(0, std::memory_order_relaxed);
        cf.size.store(0, std::memory_order_relaxed);
        cf.closed = false;
        // Recycled slots must not inherit the fsync-dedup arming from
        // the previous tenant (a spurious host fsync per reuse).
        cf.needsFsync.store(false, std::memory_order_relaxed);
        // Nor the previous tenant's access pattern: a recycled slot's
        // read-ahead window, throttle and ghost ring describe a file
        // that is gone.
        cf.ra.reset();
        syncCacheFlags();
    }
};

/** The fixed-capacity entry array plus its lookup and recycling scans.
 *  Thread-compatible: the owning GpuFs serializes access. */
class FileTable
{
  public:
    explicit FileTable(unsigned capacity);

    size_t size() const { return entries_.size(); }
    OpenFile &at(int fd) { return *entries_[fd]; }

    /** Validate @p fd and return its entry iff it is Open. */
    OpenFile *openEntry(int fd);

    /** Index of the Open entry for @p path, or -1. */
    int findOpenByPath(const std::string &path);

    /** Index of the Closed entry caching inode @p ino, or -1. */
    int findClosedByIno(uint64_t ino);

    /** The Open OR Closed entry for inode @p ino with a live cache, or
     *  null. The daemon's peer-cache probes use this: a parked entry's
     *  retained cache serves peer reads exactly like an open one
     *  (wait-after-close across GPUs). */
    OpenFile *findAnyByIno(uint64_t ino);

    /** Index of the first Free entry, or -1. */
    int findFree();

    /**
     * Pick the Closed entry to recycle when the table is full: oldest
     * close stamp first, preferring clean entries (their caches drop
     * without write-back). @return index, or -1 if nothing is Closed.
     */
    int pickRecyclable();

    /**
     * Index of a Closed entry whose cache eviction has fully drained
     * (no resident and no dirty pages), or -1. The owner destroys
     * such entries on the open slow path — retaining their empty
     * radix trees would hold memory proportional to every file ever
     * streamed through the cache.
     */
    int findDrainedClosed();

    /** Entry whose page-cache uid is @p uid (gmsync path), or null. */
    OpenFile *findByCacheUid(uint64_t uid);

    /** Entries (any state) currently holding a host fd. */
    unsigned countHostFds() const;

    std::vector<std::unique_ptr<OpenFile>> &entries() { return entries_; }

  private:
    std::vector<std::unique_ptr<OpenFile>> entries_;
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_FILE_TABLE_HH
