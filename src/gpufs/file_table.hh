/**
 * @file
 * GPUfs open and closed file tables (§4.1).
 *
 * "File descriptors" do not represent individual opens — they
 * correspond directly to files, so all GPU threadblocks opening the
 * same file share one reference-counted entry; a gopen of an
 * already-open file just bumps the count without CPU communication.
 *
 * When the count drops to zero the entry moves to the Closed state but
 * its page cache is *retained* until reclaimed: the nondeterministic
 * block scheduler routinely drives a file's count to zero between
 * block waves, and gopen checks closed entries first to recover the
 * cache (validated against the host's version number — the lazy
 * invalidation of §4.4).
 *
 * Footnote 2 of the paper omits "technical details on handling dirty
 * files on close"; this implementation resolves them as follows: a
 * file closed with dirty pages keeps its host fd (and consistency
 * write claim) alive so that later eviction can still write the pages
 * back; the fd is released when the pages are synced, invalidated, or
 * the entry is recycled.
 */

#ifndef GPUFS_GPUFS_FILE_TABLE_HH
#define GPUFS_GPUFS_FILE_TABLE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "gpufs/radix.hh"

namespace gpufs {
namespace core {

/** GPUfs open flags. G_GWRONCE / G_NOSYNC are the new modes of §3.2. */
enum GOpenFlags : uint32_t {
    G_RDONLY = 0x0,
    G_WRONLY = 0x1,
    G_RDWR = 0x2,
    G_ACCMODE = 0x3,
    G_CREAT = 0x40,
    G_TRUNC = 0x200,
    /** Write-once file: no fetch-before-write, diff-against-zeros
     *  write-back; partial updates possible if bytes are overwritten. */
    G_GWRONCE = 0x10000,
    /** GPU-local temporary: never synchronized to the host. */
    G_NOSYNC = 0x20000,
};

/** Result of gfstat. */
struct GStat {
    uint64_t ino;
    /** File size as of the first gopen on the host, extended by local
     *  writes (§3.2: "file size reflects size at the time of the first
     *  gopen"). */
    uint64_t size;
};

/** One file-table entry. State transitions happen under the GpuFs
 *  table lock; data-plane fields are read lock-free. */
struct OpenFile {
    enum class EState { Free, Open, Closed };

    EState state = EState::Free;
    std::string path;
    int hostFd = -1;
    uint64_t ino = 0;
    /** Host version this GPU's cache reflects. Atomic because the
     *  GPU's own write-backs advance it from data-plane paths: a GPU
     *  must not treat its own writes as a remote modification. */
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> size{0};
    uint32_t flags = 0;
    std::atomic<int> refs{0};
    std::unique_ptr<FileCache> cache;
    /** Monotonic stamp of the close that parked this entry (the closed
     *  table is recycled oldest-first). */
    uint64_t closeSeq = 0;

    bool
    wantsWrite() const
    {
        // O_GWRONCE "creates a new write-only file" (§3.2): it implies
        // write access even without an explicit access-mode bit.
        return (flags & G_ACCMODE) != G_RDONLY || (flags & G_GWRONCE);
    }
    bool gwronce() const { return flags & G_GWRONCE; }
    bool nosync() const { return flags & G_NOSYNC; }
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_FILE_TABLE_HH
