#include "gpufs/file_table.hh"

namespace gpufs {
namespace core {

FileTable::FileTable(unsigned capacity)
{
    entries_.resize(capacity);
    for (auto &e : entries_)
        e = std::make_unique<OpenFile>();
}

OpenFile *
FileTable::openEntry(int fd)
{
    if (fd < 0 || static_cast<size_t>(fd) >= entries_.size())
        return nullptr;
    OpenFile *e = entries_[fd].get();
    return e->state == OpenFile::EState::Open ? e : nullptr;
}

int
FileTable::findOpenByPath(const std::string &path)
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i]->state == OpenFile::EState::Open &&
            entries_[i]->path == path) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
FileTable::findClosedByIno(uint64_t ino)
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i]->state == OpenFile::EState::Closed &&
            entries_[i]->ino == ino) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

OpenFile *
FileTable::findAnyByIno(uint64_t ino)
{
    for (auto &e : entries_) {
        if (e->state != OpenFile::EState::Free && e->ino == ino &&
            e->cf.cache) {
            return e.get();
        }
    }
    return nullptr;
}

int
FileTable::findFree()
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i]->state == OpenFile::EState::Free)
            return static_cast<int>(i);
    }
    return -1;
}

int
FileTable::pickRecyclable()
{
    for (int pass = 0; pass < 2; ++pass) {
        int best = -1;
        uint64_t best_seq = UINT64_MAX;
        for (size_t i = 0; i < entries_.size(); ++i) {
            OpenFile &e = *entries_[i];
            if (e.state != OpenFile::EState::Closed)
                continue;
            if (e.cf.fetchInFlight.load(std::memory_order_acquire) != 0 ||
                e.cf.opInFlight.load(std::memory_order_acquire) != 0) {
                // A split-phase fetch targets its frames / an
                // unretired token still resolves through this cache.
                continue;
            }
            bool clean = !e.cf.cache || e.cf.cache->dirtyCount() == 0;
            if (pass == 0 && !clean)
                continue;
            if (e.cf.closeSeq < best_seq) {
                best_seq = e.cf.closeSeq;
                best = static_cast<int>(i);
            }
        }
        if (best >= 0)
            return best;
    }
    return -1;
}

int
FileTable::findDrainedClosed()
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        OpenFile &e = *entries_[i];
        if (e.state == OpenFile::EState::Closed && e.cf.cache &&
            e.cf.cache->dirtyCount() == 0 &&
            e.cf.cache->residentPages() == 0 &&
            e.cf.fetchInFlight.load(std::memory_order_acquire) == 0 &&
            e.cf.opInFlight.load(std::memory_order_acquire) == 0) {
            // Split-phase fetches sit in Init (invisible to
            // residentPages) with the daemon's DMA still inbound, and
            // unretired tokens still resolve through this cache —
            // neither is "drained".
            return static_cast<int>(i);
        }
    }
    return -1;
}

OpenFile *
FileTable::findByCacheUid(uint64_t uid)
{
    for (auto &e : entries_) {
        if (e->cf.cache && e->cf.cache->uid() == uid)
            return e.get();
    }
    return nullptr;
}

unsigned
FileTable::countHostFds() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e->cf.hostFd >= 0 ? 1 : 0;
    return n;
}

} // namespace core
} // namespace gpufs
