#include "gpufs/gpufs.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "base/logging.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace core {

namespace {

/**
 * Pin with a bounded retry on transient arena exhaustion. Split-phase
 * claims are unreclaimable until their owning block collects them, so
 * under heavy multi-block pressure a reclaim pass can momentarily find
 * nothing evictable even though frames are seconds (of real time) from
 * coming back — every in-flight claim has a collector that needs no
 * frames to run. Persistent exhaustion (frames leaked under pins)
 * still surfaces as NoSpace.
 */
Status
pinPageRetry(BufferCache &bc, gpu::BlockCtx &ctx, CacheFile &cf,
             uint64_t page_idx, uint32_t *frame_out, FPage **fpage_out,
             bool skip_fetch)
{
    constexpr int kNoSpaceRetries = 4096;
    Status st;
    for (int tries = 0;; ++tries) {
        st = bc.pinPage(ctx, cf, page_idx, frame_out, fpage_out,
                        skip_fetch);
        if (st != Status::NoSpace || tries >= kNoSpaceRetries)
            return st;
        std::this_thread::yield();
    }
}

/** Map GPUfs open flags to the host-visible flag set. */
uint32_t
hostOpenFlags(uint32_t gflags)
{
    uint32_t access = gflags & G_ACCMODE;
    if (gflags & G_GWRONCE)
        access = G_WRONLY;      // O_GWRONCE creates a write-only file
    uint32_t host = access;     // access-mode values match hostfs's
    if (gflags & (G_CREAT | G_GWRONCE | G_NOSYNC))
        host |= hostfs::O_CREAT_F;
    if (gflags & G_TRUNC)
        host |= hostfs::O_TRUNC_F;
    if (gflags & G_GDURABLE)
        host |= hostfs::O_GDURABLE_F;
    return host;
}

} // namespace

GpuFs::GpuFs(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
             const GpuFsParams &fs_params)
    : dev(device), queue(rpc_queue), params_(fs_params),
      stats_("gpufs.gpu" + std::to_string(device.id())),
      bc_(device, rpc_queue, fs_params, stats_),
      table_(fs_params.maxOpenFiles),
      cntOpens(stats_.counter("opens")),
      cntOpenRpcs(stats_.counter("open_rpcs")),
      cntCloses(stats_.counter("closes")),
      cntInvalidations(stats_.counter("cache_invalidations")),
      cntBytesRead(stats_.counter("bytes_read")),
      cntBytesWritten(stats_.counter("bytes_written")),
      cntFlusherPages(stats_.counter("flusher_pages")),
      cntFlusherAdoptedPages(stats_.counter("flusher_adopted_pages")),
      cntFlusherDrains(stats_.counter("flusher_drains")),
      cntDrainedCollected(stats_.counter("drained_caches_collected")),
      cntAsyncReads(stats_.counter("async_reads")),
      cntAsyncWrites(stats_.counter("async_writes")),
      cntAsyncSyncs(stats_.counter("async_syncs")),
      cntAsyncPeak(stats_.counter("async_peak_inflight")),
      cntFsyncsDeduped(stats_.counter("fsyncs_deduped"))
{
    for (auto &e : table_.entries())
        bc_.attach(e->cf);
}

void
GpuFs::quiesce()
{
    // Collect never-waited async submissions: their RPCs may still be
    // in the queue, and the daemon's DMA targets frames cache teardown
    // is about to free. With sharding those RPCs may also target a
    // PEER's cache, which is why GpufsSystem quiesces every instance
    // before destroying any.
    for (auto &op : asyncOps_) {
        if (op && op->active)
            completePending(*op);
    }
}

GpuFs::~GpuFs()
{
    quiesce();
    // Tear down caches; entries with host fds cannot RPC here (the
    // daemon may already be gone), so host fds are abandoned — tests
    // that care close everything first.
    for (auto &e : table_.entries())
        e->cf.cache.reset();
}

rpc::RpcResponse
GpuFs::rpcCall(gpu::BlockCtx &ctx, rpc::RpcRequest &req)
{
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    rpc::RpcResponse resp = queue.call(req);
    ctx.waitUntil(resp.done);
    return resp;
}

void
GpuFs::destroyEntryLocked(gpu::BlockCtx &ctx, OpenFile &entry)
{
    bc_.destroyFile(entry.cf);
    if (entry.cf.hostFd >= 0) {
        closeHostFd(ctx, entry.cf.hostFd);
        entry.cf.hostFd = -1;
    }
    entry.resetEntry();
}

int
GpuFs::allocEntryLocked(gpu::BlockCtx &ctx)
{
    int idx = table_.findFree();
    if (idx >= 0)
        return idx;
    // Recycle the oldest closed entry, preferring clean ones (their
    // caches are droppable without write-back).
    idx = table_.pickRecyclable();
    if (idx < 0)
        return -1;
    OpenFile &victim = table_.at(idx);
    if (victim.cf.cache && victim.cf.cache->dirtyCount() > 0 &&
        !victim.nosync()) {
        // Push dirty data home before discarding the cache.
        Status wb_st = bc_.flushDirty(ctx, victim.cf);
        if (!ok(wb_st))
            gpufs_warn("write-back failed recycling entry: %s",
                       statusName(wb_st));
    }
    destroyEntryLocked(ctx, victim);
    return idx;
}

int
GpuFs::gopen(gpu::BlockCtx &ctx, const std::string &path, uint32_t flags)
{
    // Structural calls collect the block's pending async claims first
    // (see harvestBlock): the destroy/recycle paths below take fpage
    // locks a pending claim of OURS may hold.
    harvestBlock(ctx.blockId());
    cntOpens.inc();
    ctx.charge(1 * kMicrosecond);   // table search cost
    if (path.size() >= rpc::kMaxPath)
        return -static_cast<int>(Status::Inval);

    auto lock = lockTable();

    // Fast path: the file is already open — bump the reference count
    // without CPU communication (§4.1).
    int idx = table_.findOpenByPath(path);
    if (idx >= 0) {
        OpenFile &e = table_.at(idx);
        bool want_write = (flags & G_ACCMODE) != G_RDONLY
            || (flags & G_GWRONCE);
        if (want_write && !e.wantsWrite()) {
            // Mode upgrade of a shared descriptor is outside the
            // prototype's supported set.
            return -static_cast<int>(Status::NotSupported);
        }
        e.refs.fetch_add(1, std::memory_order_relaxed);
        return idx;
    }

    // Slow path. First collect closed entries eviction has fully
    // drained — their empty radix trees hold memory for nothing.
    for (int di; (di = table_.findDrainedClosed()) >= 0;)
        destroyEntryLocked(ctx, table_.at(di));

    // Open on the host.
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Open;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    req.flags = hostOpenFlags(flags);
    req.wantsWrite = (flags & G_ACCMODE) != G_RDONLY || (flags & G_GWRONCE);
    // Mergeable writers may coexist: O_GWRONCE merges by
    // diff-against-zeros; diff-and-merge (extension) by diffing
    // against the pristine copy.
    req.mergeableWriter = (flags & G_GWRONCE) ||
        (params_.enableDiffMerge && req.wantsWrite);
    req.nosync = flags & G_NOSYNC;
    // Serving tier: the tenant rides the RPC (per-tenant accounting)
    // and, via syncCacheFlags below, every later I/O of this entry.
    req.tenant = g_tenant_of(flags);
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return -static_cast<int>(resp.status);
    cntOpenRpcs.inc();

    // Closed-table check: reuse the retained page cache if the host's
    // version proves it is still current (lazy invalidation, §4.4).
    int cidx = table_.findClosedByIno(resp.ino);
    if (cidx >= 0) {
        OpenFile &e = table_.at(cidx);
        if (e.cf.version.load(std::memory_order_relaxed) == resp.version &&
            e.cf.cache) {
            int old_fd = bc_.reopenFile(e.cf, resp.hostFd);
            e.state = OpenFile::EState::Open;
            e.path = path;
            e.flags = flags;
            e.refs.store(1, std::memory_order_relaxed);
            e.cf.ino = resp.ino;
            e.cf.size.store(resp.size, std::memory_order_relaxed);
            e.syncCacheFlags();
            if (old_fd >= 0) {
                // The entry had kept its fd for dirty pages; the new
                // claim is established, release the old one.
                closeHostFd(ctx, old_fd);
            }
            return cidx;
        }
        // Stale cache: drop it; the now-Free slot is reused below. If
        // unretired async tokens still resolve through this cache,
        // leave the entry parked instead — the drained-collection
        // sweeps destroy it once they retire (its opInFlight guard).
        cntInvalidations.inc();
        if (e.cf.opInFlight.load(std::memory_order_acquire) == 0)
            destroyEntryLocked(ctx, e);
        else
            cidx = -1;
    }

    int nidx = cidx >= 0 ? cidx : allocEntryLocked(ctx);
    if (nidx < 0) {
        closeHostFd(ctx, resp.hostFd);
        return -static_cast<int>(Status::TooManyFiles);
    }
    OpenFile &e = table_.at(nidx);
    e.state = OpenFile::EState::Open;
    e.path = path;
    e.ino = resp.ino;
    e.flags = flags;
    e.refs.store(1, std::memory_order_relaxed);
    e.cf.hostFd = resp.hostFd;
    e.cf.ino = resp.ino;
    e.cf.version.store(resp.version, std::memory_order_relaxed);
    e.cf.size.store(resp.size, std::memory_order_relaxed);
    e.cf.closed = false;
    e.syncCacheFlags();
    bc_.setupFile(e.cf);
    return nidx;
}

Status
GpuFs::gclose(gpu::BlockCtx &ctx, int fd)
{
    harvestBlock(ctx.blockId());
    auto lock = lockTable();
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    cntCloses.inc();
    ctx.charge(1 * kMicrosecond);
    // This block is done with the file: hand its read-ahead stream
    // slot back (see ReadAheadStreams::release) so blocks launching
    // behind it claim a free slot instead of LRU-evicting a live
    // stream mid-scan. Every closer releases its own stream — the
    // entry itself parks only on the last reference.
    e->cf.ra.release(ctx.blockId());
    if (e->refs.fetch_sub(1, std::memory_order_relaxed) > 1)
        return Status::Ok;

    // Last close: park the entry (cache retained for reuse). Dirty data
    // is NOT written back — close and sync are decoupled (§3.2); a
    // clean cache releases the host fd (and consistency claim) now,
    // a dirty one keeps it for future eviction write-back.
    e->state = OpenFile::EState::Closed;
    int release_fd = bc_.parkFile(e->cf, ++closeCounter);
    if (release_fd >= 0)
        closeHostFd(ctx, release_fd);
    return Status::Ok;
}

int64_t
GpuFs::gread(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             void *dst)
{
    // Thin submit+wait wrapper over the async core. coalesce=false
    // keeps the paper's demand-paging RPC pattern (per-page ReadPage
    // plus read-ahead ReadPages batches) byte-for-byte.
    GIoVec iov{offset, len, dst};
    return gwait(ctx, submitRead(ctx, fd, &iov, 1, /*coalesce=*/false));
}

int64_t
GpuFs::gwrite(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
              const void *src)
{
    GIoVec iov{offset, len, const_cast<void *>(src)};
    return gwait(ctx, submitWrite(ctx, fd, &iov, 1));
}

int64_t
GpuFs::greadv(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
              unsigned iovcnt)
{
    return gwait(ctx, submitRead(ctx, fd, iov, iovcnt, /*coalesce=*/true));
}

int64_t
GpuFs::gwritev(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
               unsigned iovcnt)
{
    return gwait(ctx, submitWrite(ctx, fd, iov, iovcnt));
}

IoToken
GpuFs::gread_async(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                   uint64_t len, void *dst)
{
    GIoVec iov{offset, len, dst};
    return submitRead(ctx, fd, &iov, 1, /*coalesce=*/true);
}

IoToken
GpuFs::gwrite_async(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                    uint64_t len, const void *src)
{
    GIoVec iov{offset, len, const_cast<void *>(src)};
    return submitWrite(ctx, fd, &iov, 1);
}

IoToken
GpuFs::greadv_async(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                    unsigned iovcnt)
{
    return submitRead(ctx, fd, iov, iovcnt, /*coalesce=*/true);
}

IoToken
GpuFs::gwritev_async(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                     unsigned iovcnt)
{
    return submitWrite(ctx, fd, iov, iovcnt);
}

IoToken
GpuFs::gfsync_async(gpu::BlockCtx &ctx, int fd)
{
    return submitFsync(ctx, fd, 0, UINT64_MAX);
}

IoToken
GpuFs::gmsync_async(gpu::BlockCtx &ctx, int fd)
{
    // The durability barrier shares the fsync machinery: flush the
    // whole dirty range, then persist. What makes it a BARRIER is the
    // resolve path — for G_GDURABLE files the final Fsync RPC is never
    // deduped and completes only once the journal commit record (or,
    // without a journal, a real host fsync) is durable.
    return submitFsync(ctx, fd, 0, UINT64_MAX);
}

Status
GpuFs::gfsyncRange(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                   uint64_t len)
{
    const uint64_t page_size = params_.pageSize;
    const uint64_t first_page = offset / page_size;
    const uint64_t last_page = len >= UINT64_MAX - offset
        ? UINT64_MAX : (offset + len + page_size - 1) / page_size;
    return gstatus_of(
        gwait(ctx, submitFsync(ctx, fd, first_page, last_page)));
}

// ---------------------------------------------------------------------
// Non-blocking I/O core: the in-flight request table
// ---------------------------------------------------------------------

uint64_t
GpuFs::buildSegs(AsyncIoOp &op, const GIoVec *iov, unsigned iovcnt,
                 uint64_t page_size, bool clamp_to, uint64_t fsize)
{
    uint64_t total = 0;
    uint64_t end_max = 0;
    for (unsigned v = 0; v < iovcnt; ++v) {
        uint64_t off = iov[v].offset;
        uint64_t len = iov[v].len;
        if (clamp_to) {
            // Reads never cross the (first-gopen + local writes) size.
            if (off >= fsize)
                continue;
            len = std::min(len, fsize - off);
        }
        end_max = std::max(end_max, off + len);
        auto *buf = static_cast<uint8_t *>(iov[v].buf);
        uint64_t pos = off;
        const uint64_t end = off + len;
        while (pos < end) {
            uint64_t page_idx = pos / page_size;
            uint32_t in_page = static_cast<uint32_t>(pos % page_size);
            uint32_t n = static_cast<uint32_t>(
                std::min<uint64_t>(page_size - in_page, end - pos));
            op.segs.push_back({page_idx, in_page, n, buf});
            buf += n;
            pos += n;
        }
        total += len;
    }
    // Writes grow the local size to the furthest extent end, exactly
    // as the pre-async gwrite did (even for zero-length writes).
    if (!clamp_to && iovcnt > 0)
        op.endOff = end_max;
    return total;
}

IoToken
GpuFs::allocOp(gpu::BlockCtx &ctx, AsyncIoOp **out)
{
    std::lock_guard<std::mutex> lock(asyncMtx);
    unsigned mine = 0;
    int free_i = -1;
    for (size_t i = 0; i < asyncOps_.size(); ++i) {
        AsyncIoOp *op = asyncOps_[i].get();
        if (op && op->active) {
            if (op->blockId == ctx.blockId())
                ++mine;
        } else if (free_i < 0) {
            free_i = static_cast<int>(i);
        }
    }
    if (free_i < 0) {
        free_i = static_cast<int>(asyncOps_.size());
        asyncOps_.push_back(nullptr);
    }
    auto &slot = asyncOps_[free_i];
    if (!slot)
        slot = std::make_unique<AsyncIoOp>();
    AsyncIoOp &op = *slot;
    op.active = true;
    op.blockId = ctx.blockId();
    op.kind = AsyncIoOp::Kind::None;
    op.fd = -1;
    op.entry = nullptr;
    // The cap fails the OPERATION, never the table: the token stays
    // valid and redeemable so the error surfaces through gwait.
    op.immediate =
        mine >= params_.maxInflightIo ? Status::Busy : Status::Ok;
    op.result = 0;
    op.endOff = 0;
    op.demandPages = 0;
    op.fsyncAdopt = false;
    op.flushStatus = Status::Ok;
    op.flushDone = 0;
    unsigned active = asyncActive_.fetch_add(1,
                                             std::memory_order_relaxed) + 1;
    cntAsyncPeak.maxWith(active);
    *out = &op;
    return IoToken{static_cast<uint32_t>(free_i), op.gen};
}

AsyncIoOp *
GpuFs::claimOp(gpu::BlockCtx &ctx, IoToken token)
{
    std::lock_guard<std::mutex> lock(asyncMtx);
    if (token.id >= asyncOps_.size())
        return nullptr;
    AsyncIoOp *op = asyncOps_[token.id].get();
    if (!op || !op->active || op->gen != token.gen ||
        op->blockId != ctx.blockId()) {
        return nullptr;     // stale, reused, or foreign token
    }
    return op;
}

void
GpuFs::releaseOp(AsyncIoOp &op)
{
    std::lock_guard<std::mutex> lock(asyncMtx);
    op.active = false;
    ++op.gen;       // invalidates the redeemed token (reuse errors)
    op.segs.clear();
    op.fetches.clear();
    op.flushes.clear();
    if (op.fsyncAdopt && op.entry)
        op.entry->cf.fsyncPending.fetch_sub(1, std::memory_order_acq_rel);
    op.fsyncAdopt = false;
    if (op.entry)
        op.entry->cf.opInFlight.fetch_sub(1);
    op.entry = nullptr;
    asyncActive_.fetch_sub(1, std::memory_order_relaxed);
}

void
GpuFs::completePending(AsyncIoOp &op)
{
    if (!op.entry)
        return;
    CacheFile &cf = op.entry->cf;
    for (auto &pf : op.fetches) {
        // A failed fetch rolls its claim back to Empty; resolution
        // refetches synchronously and reports errors through the
        // normal pin path.
        bc_.completeFetch(cf, pf);
    }
    op.fetches.clear();
    for (auto &fl : op.flushes) {
        Status st = bc_.completeFlush(cf, fl, &op.flushDone);
        if (!ok(st) && ok(op.flushStatus))
            op.flushStatus = st;
    }
    op.flushes.clear();
}

void
GpuFs::harvestBlock(unsigned block_id)
{
    if (asyncActive_.load(std::memory_order_acquire) == 0)
        return;
    // Ops are owned by their submitting block's thread between submit
    // and wait, so collecting this block's set needs the mutex only
    // for the scan. The set must be COMPLETE — a missed op would leave
    // its claims' fpage locks held under the resolution that follows.
    std::vector<AsyncIoOp *> mine;
    {
        std::lock_guard<std::mutex> lock(asyncMtx);
        for (auto &slot : asyncOps_) {
            AsyncIoOp *op = slot.get();
            if (op && op->active && op->blockId == block_id &&
                (!op->fetches.empty() || !op->flushes.empty())) {
                mine.push_back(op);
            }
        }
    }
    for (AsyncIoOp *op : mine)
        completePending(*op);
}

IoToken
GpuFs::submitRead(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                  unsigned iovcnt, bool coalesce)
{
    AsyncIoOp *op = nullptr;
    IoToken tok = allocOp(ctx, &op);
    op->kind = AsyncIoOp::Kind::Read;
    op->fd = fd;
    cntAsyncReads.inc();
    if (!ok(op->immediate))
        return tok;
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        op->immediate = st;
        return tok;
    }
    if ((e->flags & G_ACCMODE) == G_WRONLY || e->gwronce()) {
        op->immediate = Status::Inval;
        return tok;
    }
    op->entry = e;
    e->cf.opInFlight.fetch_add(1);
    ctx.charge(500);    // submit bookkeeping (0.5 us)
    const uint64_t fsize = e->cf.size.load(std::memory_order_relaxed);
    op->result = static_cast<int64_t>(
        buildSegs(*op, iov, iovcnt, params_.pageSize,
                  /*clamp_to=*/true, fsize));
    CacheFile &cf = e->cf;
    if (op->segs.empty() || !cf.cache)
        return tok;

    // Demand fetches go to the daemon split-phase; everything not
    // claimable here (resident pages, contended pages, wronce and
    // diff-merge files) resolves through the normal pin path at wait.
    constexpr unsigned kMaxFetchesPerOp = 16;
    auto budget = [&]() {
        return kMaxFetchesPerOp -
            static_cast<unsigned>(op->fetches.size());
    };
    auto submit_ra = [&](uint64_t run_first, uint64_t run_last) {
        if (!bc_.readAheadEnabled() || budget() == 0)
            return;
        PendingFetch ra[kMaxFetchesPerOp];
        unsigned m = bc_.submitReadAhead(ctx, cf, run_first, run_last,
                                         ra, budget());
        for (unsigned i = 0; i < m; ++i)
            op->fetches.push_back(ra[i]);
    };
    if (!coalesce) {
        // Sync-wrapper pattern: one ReadPage per missing page, with
        // the read-ahead window riding each miss — the pre-async RPC
        // shape, just submitted without waiting.
        uint64_t last_tried = UINT64_MAX;
        for (const auto &seg : op->segs) {
            if (budget() == 0)
                break;
            if (seg.pageIdx == last_tried)
                continue;
            last_tried = seg.pageIdx;
            PendingFetch pf;
            if (bc_.submitPageFetch(ctx, cf, seg.pageIdx, &pf)) {
                op->fetches.push_back(pf);
                ++op->demandPages;
                submit_ra(seg.pageIdx, seg.pageIdx);
            }
        }
    } else {
        // Vectored/async pattern: runs of missing pages coalesce into
        // ReadPages batches per extent.
        const uint64_t page_size = params_.pageSize;
        uint64_t first_demand = UINT64_MAX;
        uint64_t last_demand = 0;
        for (unsigned v = 0; v < iovcnt && budget() > 0; ++v) {
            if (iov[v].len == 0 || iov[v].offset >= fsize)
                continue;
            uint64_t idx = iov[v].offset / page_size;
            uint64_t end_off =
                std::min(iov[v].offset + iov[v].len, fsize);
            const uint64_t last = (end_off + page_size - 1) / page_size;
            while (idx < last && budget() > 0) {
                unsigned want = static_cast<unsigned>(
                    std::min<uint64_t>(last - idx, rpc::kMaxBatchPages));
                PendingFetch pf;
                unsigned n = bc_.submitBatchFetch(ctx, cf, idx, want, &pf);
                if (n == 0) {
                    ++idx;      // resident/in-flight head: step over
                    continue;
                }
                op->fetches.push_back(pf);
                op->demandPages += n;
                first_demand = std::min(first_demand, pf.startIdx);
                last_demand = std::max(last_demand,
                                       pf.startIdx + n - 1);
                idx += n;
            }
        }
        if (op->demandPages > 0) {
            // The whole demand run feeds the tracker as one miss (its
            // head judges sequential continuation, prefetch extends
            // from its tail).
            submit_ra(first_demand, last_demand);
        }
    }
    return tok;
}

IoToken
GpuFs::submitWrite(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                   unsigned iovcnt)
{
    AsyncIoOp *op = nullptr;
    IoToken tok = allocOp(ctx, &op);
    op->kind = AsyncIoOp::Kind::Write;
    op->fd = fd;
    cntAsyncWrites.inc();
    if (!ok(op->immediate))
        return tok;
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        op->immediate = st;
        return tok;
    }
    if (!e->wantsWrite()) {
        op->immediate = Status::ReadOnlyFile;
        return tok;
    }
    op->entry = e;
    e->cf.opInFlight.fetch_add(1);
    ctx.charge(500);
    op->result = static_cast<int64_t>(
        buildSegs(*op, iov, iovcnt, params_.pageSize,
                  /*clamp_to=*/false, 0));
    CacheFile &cf = e->cf;
    if (!cf.cache)
        return tok;

    // Only partially-overwritten pages need a read-modify-write fetch
    // (whole pages are zero-initialized without I/O at wait time), so
    // only those start split-phase; the read-ahead window rides each
    // miss exactly as the sync write path's pin did.
    const uint64_t page_size = params_.pageSize;
    constexpr unsigned kMaxFetchesPerOp = 16;
    uint64_t last_tried = UINT64_MAX;
    for (const auto &seg : op->segs) {
        if (op->fetches.size() >= kMaxFetchesPerOp)
            break;
        if (seg.inPage == 0 && seg.n == page_size)
            continue;       // whole-page overwrite: no fetch
        if (seg.pageIdx == last_tried)
            continue;
        last_tried = seg.pageIdx;
        PendingFetch pf;
        if (bc_.submitPageFetch(ctx, cf, seg.pageIdx, &pf)) {
            op->fetches.push_back(pf);
            ++op->demandPages;
            if (bc_.readAheadEnabled() &&
                op->fetches.size() < kMaxFetchesPerOp) {
                PendingFetch ra[kMaxFetchesPerOp];
                unsigned m = bc_.submitReadAhead(
                    ctx, cf, seg.pageIdx, seg.pageIdx, ra,
                    kMaxFetchesPerOp -
                        static_cast<unsigned>(op->fetches.size()));
                for (unsigned i = 0; i < m; ++i)
                    op->fetches.push_back(ra[i]);
            }
        }
    }
    return tok;
}

IoToken
GpuFs::submitFsync(gpu::BlockCtx &ctx, int fd, uint64_t first_page,
                   uint64_t last_page)
{
    AsyncIoOp *op = nullptr;
    IoToken tok = allocOp(ctx, &op);
    op->kind = AsyncIoOp::Kind::Fsync;
    op->fd = fd;
    op->syncFirstPage = first_page;
    op->syncLastPage = last_page;
    cntAsyncSyncs.inc();
    if (!ok(op->immediate))
        return tok;
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        op->immediate = st;
        return tok;
    }
    op->entry = e;
    e->cf.opInFlight.fetch_add(1);
    if (e->nosync())
        return tok;     // never synchronized to the host (§3.2)
    ctx.charge(500);
    // First rounds of WritePages batches go split-phase; the residual
    // drain (and the durability barrier) runs at wait time.
    PendingFlush pending[4];
    unsigned n = bc_.submitFlush(ctx, e->cf, first_page, last_page,
                                 pending, 4);
    for (unsigned i = 0; i < n; ++i)
        op->flushes.push_back(pending[i]);
    // Residual adoption: when the submit-time rounds did not cover the
    // whole dirty set, raise the file's fsyncPending so the background
    // flusher lifts its per-pass drain cap and takes over the residual
    // range — by gwait time there is usually little left to drain
    // synchronously (ROADMAP "async write-back through the request
    // table"). Cleared when the token retires (releaseOp).
    if (e->cf.cache && e->cf.cache->dirtyCount() > 0) {
        op->fsyncAdopt = true;
        e->cf.fsyncPending.fetch_add(1, std::memory_order_acq_rel);
    }
    return tok;
}

int64_t
GpuFs::resolveRead(gpu::BlockCtx &ctx, AsyncIoOp &op)
{
    CacheFile &cf = op.entry->cf;
    // Demand-fetched pages pay the per-page map cost here — the sync
    // path charged it inside pinPage's miss branch; the split-phase
    // path pins them as hits, so the charge moves to collection.
    if (op.demandPages > 0) {
        ctx.charge(op.demandPages *
                   dev.simContext().params.pageMapOverhead);
    }
    for (const auto &seg : op.segs) {
        uint32_t frame;
        FPage *fp;
        Status st = pinPageRetry(bc_, ctx, cf, seg.pageIdx, &frame, &fp,
                                 false);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(seg.buf, bc_.arena().data(frame) + seg.inPage, seg.n);
        ctx.chargeGpuMem(seg.n);
        cf.cache->unpin(*fp);
    }
    cntBytesRead.inc(static_cast<uint64_t>(op.result));
    return op.result;
}

int64_t
GpuFs::resolveWrite(gpu::BlockCtx &ctx, AsyncIoOp &op)
{
    CacheFile &cf = op.entry->cf;
    const uint64_t page_size = params_.pageSize;
    if (op.demandPages > 0) {
        ctx.charge(op.demandPages *
                   dev.simContext().params.pageMapOverhead);
    }
    for (const auto &seg : op.segs) {
        bool whole_page = seg.inPage == 0 && seg.n == page_size;
        uint32_t frame;
        FPage *fp;
        Status st = pinPageRetry(bc_, ctx, cf, seg.pageIdx, &frame, &fp,
                                 whole_page);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(bc_.arena().data(frame) + seg.inPage, seg.buf, seg.n);
        ctx.chargeGpuMem(seg.n);
        cf.cache->noteDirty(bc_.arena().frame(frame), seg.inPage,
                            seg.inPage + seg.n);
        cf.cache->unpin(*fp);
    }
    // Local size grows with writes (visible to this GPU's greads).
    uint64_t cur = cf.size.load(std::memory_order_relaxed);
    while (op.endOff > cur &&
           !cf.size.compare_exchange_weak(cur, op.endOff,
                                          std::memory_order_relaxed)) {
    }
    // "When gwrite completes, each thread issues a memory fence" (§4.1)
    // so a later page-out DMA observes the data.
    ctx.threadFence();
    cntBytesWritten.inc(static_cast<uint64_t>(op.result));
    return op.result;
}

int64_t
GpuFs::resolveFsync(gpu::BlockCtx &ctx, AsyncIoOp &op)
{
    OpenFile *e = op.entry;
    if (e->nosync())
        return 0;       // never synchronized to the host (§3.2)
    CacheFile &cf = e->cf;
    ctx.waitUntil(op.flushDone);
    if (!ok(op.flushStatus))
        return -static_cast<int64_t>(op.flushStatus);
    // Residual drain + durability barrier (waits out extents that
    // concurrent collectors, e.g. the async flusher, have in flight).
    Status wb_st = bc_.flushDirty(ctx, cf, op.syncFirstPage,
                                  op.syncLastPage);
    if (!ok(wb_st))
        return -static_cast<int64_t>(wb_st);
    // Persist: flush the host page cache's dirty granules — but only
    // when one of our write-backs dirtied them since the last host
    // fsync. Skipping otherwise is what coalesces per-block gfsync
    // bursts on a shared file (and gfsync-after-flusher-drain) into
    // one Fsync RPC instead of one per block.
    //
    // G_GDURABLE files never dedup: their durability point is the
    // journal commit record (or a real host fsync when journaling is
    // off), and needsFsync only says the HOST PAGE CACHE is clean — a
    // crash between write-back and host fsync would still lose the
    // data, so a skipped barrier here would acknowledge bytes that do
    // not survive. With the journal on, the barrier RPC is answered
    // from the last commit record's completion time (no extra disk
    // work), so the non-dedup is cheap exactly when it fires most.
    const bool durable = cf.durable.load(std::memory_order_relaxed);
    if (cf.hostFd >= 0 &&
        (durable ||
         cf.needsFsync.exchange(false, std::memory_order_acq_rel))) {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Fsync;
        req.hostFd = cf.hostFd;
        req.durableBarrier = durable;
        rpc::RpcResponse resp = rpcCall(ctx, req);
        if (!ok(resp.status)) {
            if (!durable)
                cf.needsFsync.store(true, std::memory_order_release);
            return -static_cast<int64_t>(resp.status);
        }
    } else {
        cntFsyncsDeduped.inc();
    }
    return 0;
}

int64_t
GpuFs::resolveOp(gpu::BlockCtx &ctx, AsyncIoOp &op)
{
    if (!ok(op.immediate))
        return -static_cast<int64_t>(op.immediate);
    switch (op.kind) {
      case AsyncIoOp::Kind::Read:
        return resolveRead(ctx, op);
      case AsyncIoOp::Kind::Write:
        return resolveWrite(ctx, op);
      case AsyncIoOp::Kind::Fsync:
        return resolveFsync(ctx, op);
      case AsyncIoOp::Kind::None:
        break;
    }
    return -static_cast<int64_t>(Status::Inval);
}

int64_t
GpuFs::gwait(gpu::BlockCtx &ctx, IoToken token)
{
    AsyncIoOp *op = claimOp(ctx, token);
    if (!op)
        return -static_cast<int64_t>(Status::Inval);
    // Collect the block's ENTIRE in-flight set before resolving:
    // resolution takes fpage locks, and any of the block's own pending
    // claims — this op's or a sibling token's — would self-deadlock.
    harvestBlock(op->blockId);
    int64_t r = resolveOp(ctx, *op);
    ctx.charge(200);    // token retire bookkeeping
    releaseOp(*op);
    return r;
}

Status
GpuFs::gwait_all(gpu::BlockCtx &ctx, int fd)
{
    std::vector<IoToken> toks;
    {
        std::lock_guard<std::mutex> lock(asyncMtx);
        for (size_t i = 0; i < asyncOps_.size(); ++i) {
            AsyncIoOp *op = asyncOps_[i].get();
            if (op && op->active && op->blockId == ctx.blockId() &&
                (fd < 0 || op->fd == fd)) {
                toks.push_back(
                    IoToken{static_cast<uint32_t>(i), op->gen});
            }
        }
    }
    Status agg = Status::Ok;
    for (IoToken t : toks) {
        int64_t r = gwait(ctx, t);
        if (r < 0 && ok(agg))
            agg = static_cast<Status>(-r);
    }
    return agg;
}

void *
GpuFs::gmmap(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             uint64_t *mapped_len, Status *st_out)
{
    harvestBlock(ctx.blockId());
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    uint64_t fsize = e->cf.size.load(std::memory_order_relaxed);
    if (len == 0 || (!e->wantsWrite() && offset >= fsize)) {
        if (st_out)
            *st_out = Status::Inval;
        return nullptr;
    }
    const uint64_t page_size = params_.pageSize;
    uint64_t page_idx = offset / page_size;
    uint64_t in_page = offset % page_size;

    uint32_t frame;
    FPage *fp;
    st = bc_.pinPage(ctx, e->cf, page_idx, &frame, &fp, false);
    if (!ok(st)) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    // Map at most the prefix within this buffer-cache page (§3.2: gmmap
    // "may map only a prefix of the requested region").
    uint64_t max_len = page_size - in_page;
    if (!e->wantsWrite())
        max_len = std::min(max_len, fsize - offset);
    *mapped_len = std::min(len, max_len);
    if (st_out)
        *st_out = Status::Ok;
    // The page stays pinned until gmunmap; eviction skips pinned pages,
    // which also keeps gfsync away from mapped pages (Table 1).
    return bc_.arena().data(frame) + in_page;
}

Status
GpuFs::gmunmap(gpu::BlockCtx &ctx, void *ptr)
{
    ctx.charge(500);    // trivial translation cost (0.5 us)
    uint32_t frame = bc_.arena().frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    PFrame &pf = bc_.arena().frame(frame);
    auto *fp = static_cast<FPage *>(pf.owner.load(std::memory_order_acquire));
    if (!fp || fp->refs.load(std::memory_order_relaxed) <= 0)
        return Status::Inval;
    fp->refs.fetch_sub(1, std::memory_order_seq_cst);
    return Status::Ok;
}

Status
GpuFs::gmsync(gpu::BlockCtx &ctx, void *ptr)
{
    harvestBlock(ctx.blockId());
    uint32_t frame = bc_.arena().frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    uint64_t uid =
        bc_.arena().frame(frame).fileUid.load(std::memory_order_acquire);
    OpenFile *e;
    {
        auto lock = lockTable();
        e = table_.findByCacheUid(uid);
    }
    if (!e || e->cf.hostFd < 0)
        return Status::Inval;
    if (e->nosync())
        return Status::Ok;
    return bc_.syncFrame(ctx, e->cf, frame);
}

Status
GpuFs::gunlink(gpu::BlockCtx &ctx, const std::string &path)
{
    if (path.size() >= rpc::kMaxPath)
        return Status::Inval;
    harvestBlock(ctx.blockId());
    {
        auto lock = lockTable();
        // "Files unlinked on the GPU have their local buffer space
        // reclaimed immediately" (Table 1).
        for (auto &eptr : table_.entries()) {
            OpenFile &e = *eptr;
            if (e.state == OpenFile::EState::Free || e.path != path)
                continue;
            if (e.state == OpenFile::EState::Closed) {
                destroyEntryLocked(ctx, e);
            } else if (e.cf.cache) {
                if (!bc_.dropPages(e.cf))
                    return Status::Busy;
            }
        }
    }
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Unlink;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    rpc::RpcResponse resp = rpcCall(ctx, req);
    return resp.status;
}

Status
GpuFs::gfstat(gpu::BlockCtx &ctx, int fd, GStat *out)
{
    ctx.charge(500);
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    out->ino = e->ino;
    out->size = e->cf.size.load(std::memory_order_relaxed);
    return Status::Ok;
}

Status
GpuFs::gftruncate(gpu::BlockCtx &ctx, int fd, uint64_t new_size)
{
    harvestBlock(ctx.blockId());
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    if (!e->wantsWrite())
        return Status::ReadOnlyFile;

    auto lock = lockTable();
    // Reclaim cached pages ("reclaim any relevant pages", Table 1);
    // unsynced dirty data below the cut is pushed home first so a
    // truncate-to-larger does not lose writes. Pages entirely beyond
    // the cut are dropped without write-back.
    const uint64_t keep_pages =
        (new_size + params_.pageSize - 1) / params_.pageSize;
    Status wb_st = bc_.flushDirty(ctx, e->cf, 0, keep_pages);
    if (!ok(wb_st))
        return wb_st;   // do NOT drop pages whose write-back failed
    if (!bc_.dropPages(e->cf))
        return Status::Busy;

    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Truncate;
    req.hostFd = e->cf.hostFd;
    req.offset = new_size;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return resp.status;
    e->cf.size.store(new_size, std::memory_order_relaxed);
    e->cf.version.store(resp.version, std::memory_order_relaxed);
    // The host-side length change is durability-relevant state a later
    // gfsync must not dedup away.
    e->cf.needsFsync.store(true, std::memory_order_release);
    return Status::Ok;
}

Time
GpuFs::backgroundFlushPass(Time start_time)
{
    // The flusher is a host-side thread, not a threadblock: it carries
    // its own virtual clock (persisted across passes by the caller) so
    // its write-backs land on the resource timelines without advancing
    // any application block.
    gpu::BlockCtx ctx(dev, /*block_id=*/0, /*num_blocks=*/1,
                      /*threads=*/1, start_time, /*shared_bytes=*/0);
    bool drained_any = false;
    // One entry per table-lock hold: a drain is a string of blocking
    // RPC round-trips, and holding tableMtx across the whole pass
    // would stall every gopen/gclose for its duration — the opposite
    // of what a background flusher is for. Entry objects are stable
    // (the table never deallocates them), so only eligibility must be
    // re-judged under the lock.
    for (size_t i = 0; i < table_.size(); ++i) {
        auto lock = lockTable();
        OpenFile &e = table_.at(static_cast<int>(i));
        if (!e.flushEligible())
            continue;
        // Cap the drain per lock hold: each batch is a blocking RPC
        // round-trip, and an entry with a huge dirty set must not turn
        // this hold into a long gopen/gclose stall — the remainder is
        // picked up by the next pass (the interval is short).
        // EXCEPTION: an outstanding gfsync_async token has adopted
        // this file (fsyncPending): the flusher owns its residual
        // dirty range now, so drain it whole — every page it takes
        // here is one less page the token's gwait drains on the
        // application block. (UINT64_MAX - 1 keeps the bounded-drain
        // semantics: the durability barrier stays with gwait.)
        constexpr uint64_t kDrainChunkPages = 4 * rpc::kMaxBatchPages;
        const bool adopted =
            e.cf.fsyncPending.load(std::memory_order_acquire) > 0;
        unsigned pages = 0;
        Status st = bc_.flushDirty(ctx, e.cf, 0, UINT64_MAX, &pages,
                                   adopted ? UINT64_MAX - 1
                                           : kDrainChunkPages);
        if (adopted && pages > 0)
            cntFlusherAdoptedPages.inc(pages);
        if (!ok(st)) {
            // The failed pages' extents were restored; leave them for
            // a later pass or an explicit gfsync, which reports the
            // error to the application.
            gpufs_warn("background flush failed: %s", statusName(st));
        }
        if (pages > 0) {
            cntFlusherPages.inc(pages);
            drained_any = true;
            // Write-behind reaches the disk too: once a file drains
            // fully clean, fsync it on the host so the durability work
            // (flushing the host page cache's dirty granules) happens
            // HERE, overlapped with GPU compute, instead of inflating
            // the application's later gfsync. Only on the clean edge —
            // fsyncing every pass while a writer is still active would
            // burn the shared CPU/disk timelines re-flushing the same
            // file — and only when needsFsync says our write-backs
            // actually dirtied the host since the last fsync: the
            // exchange is the per-file dedup that keeps one drain pass
            // (and a racing gfsync burst) down to ONE Fsync RPC per
            // file. Fire-and-forget: the flusher does not advance its
            // clock to the (slow) disk completion — queuing its next
            // pass behind the disk would let its virtual clock run
            // ahead of the GPUs and manufacture contention the real
            // write-behind thread would never cause.
            // G_GDURABLE + journal: every write-back above already
            // carried a durable commit record, so the clean-edge data
            // fsync would re-flush bytes the journal made safe — skip
            // it (the gmsync/gfsync barrier answers from the commit
            // record, not needsFsync).
            const bool journaled_durable =
                e.cf.durable.load(std::memory_order_relaxed) &&
                params_.journalWriteback;
            if (e.cf.hostFd >= 0 && !journaled_durable &&
                e.cf.cache->dirtyCount() == 0 &&
                e.cf.needsFsync.exchange(false,
                                         std::memory_order_acq_rel)) {
                rpc::RpcRequest req;
                req.op = rpc::RpcOp::Fsync;
                req.hostFd = e.cf.hostFd;
                req.gpuId = dev.id();
                req.issueTime = ctx.now();
                rpc::RpcResponse resp = queue.call(req);
                if (!ok(resp.status)) {
                    // Leave durability to a later pass or an explicit
                    // gfsync, which reports the error.
                    e.cf.needsFsync.store(true,
                                          std::memory_order_release);
                }
            }
        }
        // A closed file whose last dirty page just went home can
        // release its host fd (and host-side write claim) now instead
        // of waiting for the next reclaim pass.
        if (e.state == OpenFile::EState::Closed)
            bc_.maybeReleaseClosedFd(ctx, e.cf);
    }
    if (drained_any)
        cntFlusherDrains.inc();

    // Eager drained-cache collection: the flusher owns the deferred
    // destroy the API/BufferCache split left to the gopen slow path —
    // closed entries whose pages eviction has fully reclaimed keep an
    // empty radix tree (and possibly a host fd) for nothing.
    {
        auto lock = lockTable();
        for (int di; (di = table_.findDrainedClosed()) >= 0;) {
            destroyEntryLocked(ctx, table_.at(di));
            cntDrainedCollected.inc();
        }
    }
    return ctx.now();
}

unsigned
GpuFs::hostFdsHeld() const
{
    auto lock = lockTable();
    return table_.countHostFds();
}

const ReadAheadStreams *
GpuFs::readAheadTracker(int fd)
{
    auto lock = lockTable();
    OpenFile *e = table_.openEntry(fd);
    return e ? &e->cf.ra : nullptr;
}

// ---------------------------------------------------------------------
// rpc::PeerPageSource: the daemon's view of this GPU's cache
// ---------------------------------------------------------------------
//
// All three run on the DAEMON thread while this GPU's blocks keep
// running. The table lock is TRY-taken only: a block of this GPU may
// hold tableMtx across a synchronous RPC the daemon is queued to
// service (gopen does exactly that), so blocking here is a deadlock
// cycle — on contention the daemon simply falls back to the host path.
// Holding tableMtx across the cache access pins the entry/cache object
// (destroyEntryLocked runs under it); frame-level safety is the pin
// peerCopyResident/peerMirrorResident take.

bool
GpuFs::peerCopyPage(uint64_t ino, uint64_t page_idx, uint64_t version,
                    uint8_t *dst, uint32_t *valid_out, Time *ready_out)
{
    std::unique_lock<std::mutex> lock(tableMtx, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    OpenFile *e = table_.findAnyByIno(ino);
    if (!e)
        return false;
    // Version gate: serve only when this cache reflects exactly the
    // host content the requester expects — the peer path then provides
    // the same close-to-open consistency as the host path.
    if (e->cf.version.load(std::memory_order_acquire) != version)
        return false;
    return bc_.peerCopyResident(e->cf, page_idx, dst, valid_out,
                                ready_out);
}

bool
GpuFs::peerMirrorExtent(uint64_t ino, uint64_t page_idx, uint64_t version,
                        uint32_t in_page, const uint8_t *src, uint32_t len)
{
    std::unique_lock<std::mutex> lock(tableMtx, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    OpenFile *e = table_.findAnyByIno(ino);
    if (!e)
        return false;
    if (e->cf.version.load(std::memory_order_acquire) != version)
        return false;
    return bc_.peerMirrorResident(e->cf, page_idx, in_page, src, len);
}

bool
GpuFs::peerAdoptPage(uint64_t ino, uint64_t page_idx, uint64_t version,
                     const uint8_t *data, uint32_t valid, Time ready,
                     uint8_t tenant)
{
    std::unique_lock<std::mutex> lock(tableMtx, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    OpenFile *e = table_.findAnyByIno(ino);
    if (!e)
        return false;
    // Same version gate as the serve path: adopt only bytes this cache
    // would have been allowed to serve.
    if (e->cf.version.load(std::memory_order_acquire) != version)
        return false;
    return bc_.peerAdoptResident(e->cf, page_idx, data, valid, ready,
                                 tenant);
}

void
GpuFs::peerPublishVersion(uint64_t ino, uint64_t old_version,
                          uint64_t new_version)
{
    std::unique_lock<std::mutex> lock(tableMtx, std::try_to_lock);
    if (!lock.owns_lock())
        return;     // next peer read just falls back (conservative)
    OpenFile *e = table_.findAnyByIno(ino);
    if (!e)
        return;
    // CAS from the pre-write version: if anything else moved the
    // version meanwhile, the mirrored bytes' provenance is unclear and
    // staying stale (-> host fallback) is the safe outcome.
    uint64_t expect = old_version;
    e->cf.version.compare_exchange_strong(expect, new_version,
                                          std::memory_order_acq_rel);
}

} // namespace core
} // namespace gpufs
