#include "gpufs/gpufs.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace core {

namespace {

/** Map GPUfs open flags to the host-visible flag set. */
uint32_t
hostOpenFlags(uint32_t gflags)
{
    uint32_t access = gflags & G_ACCMODE;
    if (gflags & G_GWRONCE)
        access = G_WRONLY;      // O_GWRONCE creates a write-only file
    uint32_t host = access;     // access-mode values match hostfs's
    if (gflags & (G_CREAT | G_GWRONCE | G_NOSYNC))
        host |= hostfs::O_CREAT_F;
    if (gflags & G_TRUNC)
        host |= hostfs::O_TRUNC_F;
    return host;
}

} // namespace

GpuFs::GpuFs(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
             const GpuFsParams &fs_params)
    : dev(device), queue(rpc_queue), params_(fs_params),
      stats_("gpufs.gpu" + std::to_string(device.id())),
      arena_(fs_params.cacheBytes, fs_params.pageSize),
      cntOpens(stats_.counter("opens")),
      cntOpenRpcs(stats_.counter("open_rpcs")),
      cntCloses(stats_.counter("closes")),
      cntCacheHits(stats_.counter("cache_hits")),
      cntCacheMisses(stats_.counter("cache_misses")),
      // Table 2 semantics: a "lock-free access" is a page access whose
      // fast-path pin succeeds; a "locked access" is one that had to
      // take the fpage lock (initialization, eviction collisions).
      cntLockfree(stats_.counter("lockfree_accesses")),
      cntLocked(stats_.counter("locked_accesses")),
      cntReclaimed(stats_.counter("pages_reclaimed")),
      cntInvalidations(stats_.counter("cache_invalidations")),
      cntBytesRead(stats_.counter("bytes_read")),
      cntBytesWritten(stats_.counter("bytes_written"))
{
    files.resize(params_.maxOpenFiles);
    for (auto &f : files)
        f = std::make_unique<OpenFile>();
    dev.allocDeviceMem(params_.cacheBytes);
}

GpuFs::~GpuFs()
{
    // Tear down caches; entries with host fds cannot RPC here (the
    // daemon may already be gone), so host fds are abandoned — tests
    // that care close everything first.
    for (auto &f : files)
        f->cache.reset();
    dev.freeDeviceMem(params_.cacheBytes);
}

CacheCounters
GpuFs::cacheCounters()
{
    // Radix-tree *walk* counters are tracked separately from the
    // page-access counters above (walks hardly ever lock because
    // nodes are never deleted; page pins do lock under paging).
    return CacheCounters{stats_.counter("radix_lockfree_walks"),
                         stats_.counter("radix_locked_walks"),
                         cntReclaimed};
}

OpenFile *
GpuFs::entryOf(int fd, Status *st)
{
    if (fd < 0 || static_cast<size_t>(fd) >= files.size()) {
        if (st)
            *st = Status::BadFd;
        return nullptr;
    }
    OpenFile *e = files[fd].get();
    if (e->state != OpenFile::EState::Open) {
        if (st)
            *st = Status::BadFd;
        return nullptr;
    }
    return e;
}

rpc::RpcResponse
GpuFs::rpcCall(gpu::BlockCtx &ctx, rpc::RpcRequest &req)
{
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    rpc::RpcResponse resp = queue.call(req);
    ctx.waitUntil(resp.done);
    return resp;
}

int
GpuFs::findOpenByPathLocked(const std::string &path)
{
    for (size_t i = 0; i < files.size(); ++i) {
        if (files[i]->state == OpenFile::EState::Open &&
            files[i]->path == path) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
GpuFs::findClosedByInoLocked(uint64_t ino)
{
    for (size_t i = 0; i < files.size(); ++i) {
        if (files[i]->state == OpenFile::EState::Closed &&
            files[i]->ino == ino) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
GpuFs::destroyEntryLocked(gpu::BlockCtx &ctx, OpenFile &entry)
{
    if (entry.cache) {
        bool clean = entry.cache->dropAll();
        gpufs_assert(clean, "destroying entry with pinned pages");
        entry.cache.reset();
    }
    if (entry.hostFd >= 0) {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = entry.hostFd;
        rpcCall(ctx, req);
        entry.hostFd = -1;
    }
    entry.state = OpenFile::EState::Free;
    entry.path.clear();
    entry.ino = 0;
    entry.version.store(0, std::memory_order_relaxed);
    entry.size.store(0, std::memory_order_relaxed);
    entry.flags = 0;
    entry.refs.store(0, std::memory_order_relaxed);
}

int
GpuFs::allocEntryLocked(gpu::BlockCtx &ctx)
{
    for (size_t i = 0; i < files.size(); ++i) {
        if (files[i]->state == OpenFile::EState::Free)
            return static_cast<int>(i);
    }
    // Recycle the oldest closed entry, preferring clean ones (their
    // caches are droppable without write-back).
    for (int pass = 0; pass < 2; ++pass) {
        int best = -1;
        uint64_t best_seq = UINT64_MAX;
        for (size_t i = 0; i < files.size(); ++i) {
            OpenFile &e = *files[i];
            if (e.state != OpenFile::EState::Closed)
                continue;
            bool clean = !e.cache || e.cache->dirtyCount() == 0;
            if (pass == 0 && !clean)
                continue;
            if (e.closeSeq < best_seq) {
                best_seq = e.closeSeq;
                best = static_cast<int>(i);
            }
        }
        if (best >= 0) {
            OpenFile &victim = *files[best];
            if (victim.cache && victim.cache->dirtyCount() > 0 &&
                !victim.nosync()) {
                // Push dirty data home before discarding the cache.
                Time max_done = ctx.now();
                Status wb_st = Status::Ok;
                victim.cache->forEachDirty(
                    [&](uint64_t idx, uint8_t *data, uint32_t lo,
                        uint32_t hi) {
                        Status st;
                        Time done = writebackExtent(victim, idx, data, lo,
                                                    hi, ctx.now(), &st);
                        max_done = std::max(max_done, done);
                        if (!ok(st))
                            wb_st = st;
                    });
                ctx.waitUntil(max_done);
                if (!ok(wb_st))
                    gpufs_warn("write-back failed recycling entry: %s",
                               statusName(wb_st));
            }
            destroyEntryLocked(ctx, victim);
            return best;
        }
    }
    return -1;
}

int
GpuFs::gopen(gpu::BlockCtx &ctx, const std::string &path, uint32_t flags)
{
    cntOpens.inc();
    ctx.charge(1 * kMicrosecond);   // table search cost
    if (path.size() >= rpc::kMaxPath)
        return -static_cast<int>(Status::Inval);

    std::lock_guard<std::mutex> lock(tableMtx);

    // Fast path: the file is already open — bump the reference count
    // without CPU communication (§4.1).
    int idx = findOpenByPathLocked(path);
    if (idx >= 0) {
        OpenFile &e = *files[idx];
        bool want_write = (flags & G_ACCMODE) != G_RDONLY
            || (flags & G_GWRONCE);
        if (want_write && !e.wantsWrite()) {
            // Mode upgrade of a shared descriptor is outside the
            // prototype's supported set.
            return -static_cast<int>(Status::NotSupported);
        }
        e.refs.fetch_add(1, std::memory_order_relaxed);
        return idx;
    }

    // Slow path: open on the host.
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Open;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    req.flags = hostOpenFlags(flags);
    req.wantsWrite = (flags & G_ACCMODE) != G_RDONLY || (flags & G_GWRONCE);
    // Mergeable writers may coexist: O_GWRONCE merges by
    // diff-against-zeros; diff-and-merge (extension) by diffing
    // against the pristine copy.
    req.mergeableWriter = (flags & G_GWRONCE) ||
        (params_.enableDiffMerge && req.wantsWrite);
    req.nosync = flags & G_NOSYNC;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return -static_cast<int>(resp.status);
    cntOpenRpcs.inc();

    // Closed-table check: reuse the retained page cache if the host's
    // version proves it is still current (lazy invalidation, §4.4).
    int cidx = findClosedByInoLocked(resp.ino);
    if (cidx >= 0) {
        OpenFile &e = *files[cidx];
        if (e.version.load(std::memory_order_relaxed) == resp.version &&
            e.cache) {
            int old_fd = e.hostFd;
            e.hostFd = resp.hostFd;
            e.state = OpenFile::EState::Open;
            e.path = path;
            e.flags = flags;
            e.refs.store(1, std::memory_order_relaxed);
            e.size.store(resp.size, std::memory_order_relaxed);
            if (old_fd >= 0) {
                // The entry had kept its fd for dirty pages; the new
                // claim is established, release the old one.
                rpc::RpcRequest creq;
                creq.op = rpc::RpcOp::Close;
                creq.hostFd = old_fd;
                rpcCall(ctx, creq);
            }
            return cidx;
        }
        // Stale cache: drop it and fall through to a fresh entry.
        cntInvalidations.inc();
        destroyEntryLocked(ctx, e);
        // (destroyEntryLocked leaves the slot Free; reuse it.)
    }

    int nidx = cidx >= 0 ? cidx : allocEntryLocked(ctx);
    if (nidx < 0) {
        rpc::RpcRequest creq;
        creq.op = rpc::RpcOp::Close;
        creq.hostFd = resp.hostFd;
        rpcCall(ctx, creq);
        return -static_cast<int>(Status::TooManyFiles);
    }
    OpenFile &e = *files[nidx];
    e.state = OpenFile::EState::Open;
    e.path = path;
    e.hostFd = resp.hostFd;
    e.ino = resp.ino;
    e.version.store(resp.version, std::memory_order_relaxed);
    e.size.store(resp.size, std::memory_order_relaxed);
    e.flags = flags;
    e.refs.store(1, std::memory_order_relaxed);
    e.cache = std::make_unique<FileCache>(arena_, cacheCounters(),
                                          params_.forceLockedTraversal);
    return nidx;
}

Status
GpuFs::gclose(gpu::BlockCtx &ctx, int fd)
{
    std::lock_guard<std::mutex> lock(tableMtx);
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    cntCloses.inc();
    ctx.charge(1 * kMicrosecond);
    if (e->refs.fetch_sub(1, std::memory_order_relaxed) > 1)
        return Status::Ok;

    // Last close: park the entry (cache retained for reuse). Dirty data
    // is NOT written back — close and sync are decoupled (§3.2).
    e->closeSeq = ++closeCounter;
    e->state = OpenFile::EState::Closed;
    if (!e->cache || e->cache->dirtyCount() == 0) {
        // Clean: the host fd (and the consistency claim) can go now.
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = e->hostFd;
        rpcCall(ctx, req);
        e->hostFd = -1;
    }
    // Dirty: keep the fd so future eviction can write back (footnote 2
    // resolution, see file_table.hh).
    return Status::Ok;
}

Status
GpuFs::fetchPage(gpu::BlockCtx &ctx, OpenFile &entry, uint64_t page_idx,
                 uint8_t *data, uint32_t *valid, Time *done)
{
    const uint64_t page_size = params_.pageSize;
    if (entry.gwronce()) {
        // The pristine copy is implicitly all zeros (§3.1): no fetch,
        // no DMA — the page is "ready" from the beginning of time for
        // any block's virtual clock (see pinPage's skip_fetch note).
        std::memset(data, 0, page_size);
        *valid = 0;
        *done = 0;
        return Status::Ok;
    }
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::ReadPage;
    req.hostFd = entry.hostFd;
    req.offset = page_idx * page_size;
    req.len = page_size;
    req.data = data;
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    rpc::RpcResponse resp = queue.call(req);
    if (!ok(resp.status))
        return resp.status;
    if (resp.bytes < page_size)
        std::memset(data + resp.bytes, 0, page_size - resp.bytes);
    *valid = static_cast<uint32_t>(resp.bytes);
    *done = resp.done;
    return Status::Ok;
}

Time
GpuFs::writebackExtent(OpenFile &entry, uint64_t page_idx,
                       const uint8_t *data, uint32_t lo, uint32_t hi,
                       Time issue, Status *st)
{
    gpufs_assert(entry.hostFd >= 0, "write-back without host fd");

    // Diff-and-merge (extension, §3.1): the GPU "diffs the working and
    // the pristine copies at the next synchronization point". Each
    // byte is read from the working copy exactly once, folded into the
    // pristine, and exactly that value is propagated — so a concurrent
    // writer racing this scan either lands before the single read
    // (propagated now) or after it (differs from the refreshed
    // pristine, propagated by the next sync). Only changed runs are
    // written, preserving other processors' updates to falsely shared
    // pages.
    uint32_t working = arena_.frameOf(data);
    uint8_t *pristine_base = nullptr;
    if (params_.enableDiffMerge && !entry.gwronce() &&
        working != kNoFrame) {
        uint32_t pr = arena_.frame(working).pristineFrame.load(
            std::memory_order_acquire);
        if (pr != kNoFrame)
            pristine_base = arena_.data(pr);
    }
    if (pristine_base) {
        // Charge the GPU-side diff scan (read both copies).
        Time t = issue + transferTime(2 * (hi - lo),
                                      dev.simContext().params.gpuMemBwMBps);
        Time max_done = t;
        Status agg = Status::Ok;
        uint32_t i = lo;
        while (i < hi) {
            while (i < hi && data[i] == pristine_base[i])
                ++i;
            uint32_t run = i;
            while (run < hi) {
                uint8_t v = data[run];      // single racy read, folded
                if (v == pristine_base[run])
                    break;
                pristine_base[run] = v;
                ++run;
            }
            if (run > i) {
                rpc::RpcRequest req;
                req.op = rpc::RpcOp::WriteBack;
                req.hostFd = entry.hostFd;
                req.offset = page_idx * params_.pageSize + i;
                req.len = run - i;
                req.data = pristine_base + i;   // stable snapshot
                req.gpuId = dev.id();
                req.issueTime = t;
                rpc::RpcResponse r = queue.call(req);
                if (!ok(r.status))
                    agg = r.status;
                else if (r.version != 0)
                    entry.version.store(r.version,
                                        std::memory_order_relaxed);
                max_done = std::max(max_done, r.done);
            }
            i = run;
        }
        if (st)
            *st = agg;
        return max_done;
    }

    rpc::RpcRequest req;
    req.op = rpc::RpcOp::WriteBack;
    req.hostFd = entry.hostFd;
    req.offset = page_idx * params_.pageSize + lo;
    req.len = hi - lo;
    req.data = const_cast<uint8_t *>(data) + lo;
    req.diffAgainstZeros = entry.gwronce();
    req.gpuId = dev.id();
    req.issueTime = issue;
    rpc::RpcResponse resp = queue.call(req);
    if (st)
        *st = resp.status;
    if (ok(resp.status) && resp.version != 0) {
        // Track the version our own write produced so reopen does not
        // mistake it for a remote modification.
        entry.version.store(resp.version, std::memory_order_relaxed);
    }
    return resp.done;
}

unsigned
GpuFs::reclaimFrames(gpu::BlockCtx &ctx, unsigned want)
{
    // Paging runs on the calling block's thread — "pay-as-you-go"
    // (§3.4): no daemon threadblock exists to do it asynchronously.
    std::lock_guard<std::mutex> lock(tableMtx);
    unsigned freed = 0;

    auto reclaim_from = [&](OpenFile &e, bool allow_dirty, unsigned n) {
        auto wb = [&](uint64_t idx, uint8_t *data, uint32_t lo,
                      uint32_t hi) {
            if (e.hostFd < 0)
                return;     // NOSYNC temp whose fd is gone: discard
            Status st;
            Time done = writebackExtent(e, idx, data, lo, hi, ctx.now(),
                                        &st);
            ctx.waitUntil(done);
            if (!ok(st))
                gpufs_warn("eviction write-back failed: %s",
                           statusName(st));
        };
        if (params_.evictLru)
            return e.cache->reclaimLru(n, allow_dirty, wb);
        return e.cache->reclaim(n, allow_dirty, wb);
    };

    // Pass 1: closed, clean files — evictable without any GPU-CPU
    // communication. Oldest-closed first.
    for (int pass = 0; pass < 3 && freed < want; ++pass) {
        for (auto &fptr : files) {
            if (freed >= want)
                break;
            OpenFile &e = *fptr;
            if (!e.cache)
                continue;
            bool closed = e.state == OpenFile::EState::Closed;
            bool open_ro =
                e.state == OpenFile::EState::Open && !e.wantsWrite();
            bool clean = e.cache->dirtyCount() == 0;
            bool eligible = false;
            bool allow_dirty = false;
            switch (pass) {
              case 0:
                eligible = closed && clean;
                break;
              case 1:
                eligible = open_ro;
                break;
              case 2:
                eligible = true;      // last resort: writable files
                allow_dirty = true;
                break;
            }
            if (!eligible)
                continue;
            freed += reclaim_from(e, allow_dirty, want - freed);
            if (closed && e.cache->residentPages() == 0)
                destroyEntryLocked(ctx, e);
            else if (closed)
                maybeReleaseClosedFd(ctx, e);
        }
    }
    return freed;
}

void
GpuFs::maybeReleaseClosedFd(gpu::BlockCtx &ctx, OpenFile &entry)
{
    if (entry.state == OpenFile::EState::Closed && entry.hostFd >= 0 &&
        entry.cache && entry.cache->dirtyCount() == 0) {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = entry.hostFd;
        rpcCall(ctx, req);
        entry.hostFd = -1;
    }
}

Status
GpuFs::pinPage(gpu::BlockCtx &ctx, OpenFile &entry, uint64_t page_idx,
               uint32_t *frame_out, FPage **fpage_out, bool skip_fetch)
{
    if (page_idx > FileCache::maxPageIndex())
        return Status::Inval;
    // Diff-and-merge pages must snapshot the true host content as
    // their pristine copy, so the whole-page-overwrite fetch skip does
    // not apply to them.
    const bool diff_merge = params_.enableDiffMerge &&
        entry.wantsWrite() && !entry.gwronce() && !entry.nosync();
    if (diff_merge)
        skip_fetch = false;
    FileCache &c = *entry.cache;
    FPage *p = c.getPage(page_idx);

    uint32_t frame;
    if (c.tryPinReady(*p, page_idx, &frame)) {
        cntCacheHits.inc();
        cntLockfree.inc();
        ctx.charge(dev.simContext().params.cacheHitOverhead);
        ctx.waitUntil(arena_.frame(frame).readyTime.load(
            std::memory_order_acquire));
        *frame_out = frame;
        *fpage_out = p;
        return Status::Ok;
    }

    for (;;) {
        bool did_init = false;
        Status st = c.initAndPin(
            *p, page_idx, &frame, &did_init,
            [&](uint8_t *data, uint32_t *valid) -> Status {
                if (skip_fetch) {
                    // Whole-page overwrite: no reason to fetch content
                    // that is about to be clobbered. Zero-init needs
                    // no DMA, so readyTime stays 0: another block
                    // whose virtual clock is earlier than ours must
                    // not be stalled by OUR clock (it could equally
                    // have done the memset itself).
                    std::memset(data, 0, params_.pageSize);
                    *valid = 0;
                    return Status::Ok;
                }
                Time done = 0;
                Status fst = fetchPage(ctx, entry, page_idx, data, valid,
                                       &done);
                if (!ok(fst))
                    return fst;
                PFrame &pf = arena_.frame(arena_.frameOf(data));
                pf.readyTime.store(done, std::memory_order_release);
                if (diff_merge) {
                    // §3.1: "a working copy to which local writes are
                    // performed, and a pristine copy preserved when
                    // the page is first read". One alloc attempt only:
                    // reclaim must not run while the fpage lock is
                    // held, so exhaustion rolls back to the NoSpace
                    // retry path below.
                    uint32_t pr = arena_.alloc();
                    if (pr == kNoFrame)
                        return Status::NoSpace;
                    std::memcpy(arena_.data(pr), data, params_.pageSize);
                    ctx.chargeGpuMem(params_.pageSize);
                    pf.pristineFrame.store(pr, std::memory_order_release);
                }
                return fst;
            });
        if (st == Status::NoSpace) {
            unsigned freed = reclaimFrames(ctx, params_.reclaimBatch);
            if (freed == 0)
                return Status::NoSpace;
            continue;
        }
        if (!ok(st))
            return st;
        cntLocked.inc();    // slow path held the fpage lock
        PFrame &pf = arena_.frame(frame);
        if (did_init) {
            cntCacheMisses.inc();
            ctx.charge(dev.simContext().params.pageMapOverhead);
        } else {
            cntCacheHits.inc();
            ctx.charge(dev.simContext().params.cacheHitOverhead);
        }
        ctx.waitUntil(pf.readyTime.load(std::memory_order_acquire));
        *frame_out = frame;
        *fpage_out = p;
        if (did_init && params_.readAheadPages > 0 && !skip_fetch &&
            !entry.gwronce()) {
            readAheadFrom(ctx, entry, page_idx);
        }
        return Status::Ok;
    }
}

void
GpuFs::readAheadFrom(gpu::BlockCtx &ctx, OpenFile &entry, uint64_t page_idx)
{
    FileCache &c = *entry.cache;
    uint64_t fsize = entry.size.load(std::memory_order_relaxed);
    for (unsigned k = 1; k <= params_.readAheadPages; ++k) {
        uint64_t idx = page_idx + k;
        if (idx * params_.pageSize >= fsize)
            break;
        FPage *p = c.getPage(idx);
        uint32_t frame;
        if (c.tryPinReady(*p, idx, &frame)) {
            c.unpin(*p);
            continue;       // already resident
        }
        bool did_init = false;
        Status st = c.initAndPin(
            *p, idx, &frame, &did_init,
            [&](uint8_t *data, uint32_t *valid) -> Status {
                Time done = 0;
                Status fst = fetchPage(ctx, entry, idx, data, valid, &done);
                if (ok(fst)) {
                    // The prefetching block does NOT wait: the page's
                    // readyTime gates whoever touches it first.
                    arena_.frame(arena_.frameOf(data))
                        .readyTime.store(done, std::memory_order_release);
                }
                return fst;
            });
        if (st == Status::NoSpace)
            break;          // never page out on behalf of read-ahead
        if (ok(st)) {
            if (did_init)
                cntCacheMisses.inc();
            c.unpin(*p);
        }
    }
}

int64_t
GpuFs::gread(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             void *dst)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return -static_cast<int64_t>(st);
    if ((e->flags & G_ACCMODE) == G_WRONLY || e->gwronce())
        return -static_cast<int64_t>(Status::Inval);

    uint64_t fsize = e->size.load(std::memory_order_relaxed);
    if (offset >= fsize)
        return 0;
    len = std::min(len, fsize - offset);

    auto *out = static_cast<uint8_t *>(dst);
    uint64_t pos = offset;
    const uint64_t end = offset + len;
    const uint64_t page_size = params_.pageSize;
    while (pos < end) {
        uint64_t page_idx = pos / page_size;
        uint64_t in_page = pos % page_size;
        uint64_t n = std::min(page_size - in_page, end - pos);
        uint32_t frame;
        FPage *fp;
        st = pinPage(ctx, *e, page_idx, &frame, &fp, false);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(out, arena_.data(frame) + in_page, n);
        ctx.chargeGpuMem(n);
        e->cache->unpin(*fp);
        pos += n;
        out += n;
    }
    cntBytesRead.inc(len);
    return static_cast<int64_t>(len);
}

int64_t
GpuFs::gwrite(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
              const void *src)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return -static_cast<int64_t>(st);
    if (!e->wantsWrite())
        return -static_cast<int64_t>(Status::ReadOnlyFile);

    const auto *in = static_cast<const uint8_t *>(src);
    uint64_t pos = offset;
    const uint64_t end = offset + len;
    const uint64_t page_size = params_.pageSize;
    while (pos < end) {
        uint64_t page_idx = pos / page_size;
        uint64_t in_page = pos % page_size;
        uint64_t n = std::min(page_size - in_page, end - pos);
        bool whole_page = (in_page == 0 && n == page_size);
        uint32_t frame;
        FPage *fp;
        st = pinPage(ctx, *e, page_idx, &frame, &fp, whole_page);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(arena_.data(frame) + in_page, in, n);
        ctx.chargeGpuMem(n);
        e->cache->noteDirty(arena_.frame(frame),
                            static_cast<uint32_t>(in_page),
                            static_cast<uint32_t>(in_page + n));
        e->cache->unpin(*fp);
        pos += n;
        in += n;
    }
    // Local size grows with writes (visible to this GPU's greads).
    uint64_t cur = e->size.load(std::memory_order_relaxed);
    while (end > cur &&
           !e->size.compare_exchange_weak(cur, end,
                                          std::memory_order_relaxed)) {
    }
    // "When gwrite completes, each thread issues a memory fence" (§4.1)
    // so a later page-out DMA observes the data.
    ctx.threadFence();
    cntBytesWritten.inc(len);
    return static_cast<int64_t>(len);
}

Status
GpuFs::gfsync(gpu::BlockCtx &ctx, int fd)
{
    return gfsyncRange(ctx, fd, 0, UINT64_MAX);
}

Status
GpuFs::gfsyncRange(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                   uint64_t len)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    if (e->nosync())
        return Status::Ok;   // never synchronized to the host (§3.2)

    const uint64_t page_size = params_.pageSize;
    const uint64_t first_page = offset / page_size;
    const uint64_t last_page = len >= UINT64_MAX - offset
        ? UINT64_MAX : (offset + len + page_size - 1) / page_size;

    Time max_done = ctx.now();
    Status wb_st = Status::Ok;
    e->cache->forEachDirty([&](uint64_t idx, uint8_t *data, uint32_t lo,
                               uint32_t hi) {
        if (idx < first_page || idx >= last_page)
            return false;    // outside the range: keep it dirty
        Status one;
        // All write-backs are issued at the current clock so their DMA
        // and host I/O pipeline on the resource timelines.
        Time done = writebackExtent(*e, idx, data, lo, hi, ctx.now(), &one);
        max_done = std::max(max_done, done);
        if (!ok(one))
            wb_st = one;
        return true;
    });
    if (!ok(wb_st))
        return wb_st;

    // Persist: flush the host page cache's dirty granules (gfsync
    // "synchronously writes back to the host"; host-side fsync makes
    // it durable like CPU fsync).
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Fsync;
    req.hostFd = e->hostFd;
    req.gpuId = dev.id();
    req.issueTime = max_done;
    rpc::RpcResponse resp = queue.call(req);
    ctx.waitUntil(resp.done);
    return resp.status;
}

void *
GpuFs::gmmap(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             uint64_t *mapped_len, Status *st_out)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    uint64_t fsize = e->size.load(std::memory_order_relaxed);
    if (len == 0 || (!e->wantsWrite() && offset >= fsize)) {
        if (st_out)
            *st_out = Status::Inval;
        return nullptr;
    }
    const uint64_t page_size = params_.pageSize;
    uint64_t page_idx = offset / page_size;
    uint64_t in_page = offset % page_size;

    uint32_t frame;
    FPage *fp;
    st = pinPage(ctx, *e, page_idx, &frame, &fp, false);
    if (!ok(st)) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    // Map at most the prefix within this buffer-cache page (§3.2: gmmap
    // "may map only a prefix of the requested region").
    uint64_t max_len = page_size - in_page;
    if (!e->wantsWrite())
        max_len = std::min(max_len, fsize - offset);
    *mapped_len = std::min(len, max_len);
    if (st_out)
        *st_out = Status::Ok;
    // The page stays pinned until gmunmap; eviction skips pinned pages,
    // which also keeps gfsync away from mapped pages (Table 1).
    return arena_.data(frame) + in_page;
}

Status
GpuFs::gmunmap(gpu::BlockCtx &ctx, void *ptr)
{
    ctx.charge(500);    // trivial translation cost (0.5 us)
    uint32_t frame = arena_.frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    PFrame &pf = arena_.frame(frame);
    auto *fp = static_cast<FPage *>(pf.owner.load(std::memory_order_acquire));
    if (!fp || fp->refs.load(std::memory_order_relaxed) <= 0)
        return Status::Inval;
    fp->refs.fetch_sub(1, std::memory_order_seq_cst);
    return Status::Ok;
}

OpenFile *
GpuFs::entryByCacheUid(uint64_t uid)
{
    for (auto &fptr : files) {
        if (fptr->cache && fptr->cache->uid() == uid)
            return fptr.get();
    }
    return nullptr;
}

Status
GpuFs::gmsync(gpu::BlockCtx &ctx, void *ptr)
{
    uint32_t frame = arena_.frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    PFrame &pf = arena_.frame(frame);
    uint64_t uid = pf.fileUid.load(std::memory_order_acquire);
    OpenFile *e;
    {
        std::lock_guard<std::mutex> lock(tableMtx);
        e = entryByCacheUid(uid);
    }
    if (!e || e->hostFd < 0)
        return Status::Inval;
    if (e->nosync())
        return Status::Ok;
    uint64_t extent = e->cache->takeDirtyCounted(pf);
    uint32_t lo = PFrame::extentLo(extent);
    uint32_t hi = PFrame::extentHi(extent);
    if (lo >= hi)
        return Status::Ok;
    Status st;
    Time done = writebackExtent(
        *e, pf.pageIdx.load(std::memory_order_relaxed), arena_.data(frame),
        lo, hi, ctx.now(), &st);
    ctx.waitUntil(done);
    if (!ok(st)) {
        // Restore so a later sync can retry.
        e->cache->noteDirty(pf, lo, hi);
    }
    return st;
}

Status
GpuFs::gunlink(gpu::BlockCtx &ctx, const std::string &path)
{
    if (path.size() >= rpc::kMaxPath)
        return Status::Inval;
    {
        std::lock_guard<std::mutex> lock(tableMtx);
        // "Files unlinked on the GPU have their local buffer space
        // reclaimed immediately" (Table 1).
        for (auto &fptr : files) {
            OpenFile &e = *fptr;
            if (e.state == OpenFile::EState::Free || e.path != path)
                continue;
            if (e.state == OpenFile::EState::Closed) {
                destroyEntryLocked(ctx, e);
            } else if (e.cache) {
                if (!e.cache->dropAll())
                    return Status::Busy;
            }
        }
    }
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Unlink;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    rpc::RpcResponse resp = rpcCall(ctx, req);
    return resp.status;
}

Status
GpuFs::gfstat(gpu::BlockCtx &ctx, int fd, GStat *out)
{
    ctx.charge(500);
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    out->ino = e->ino;
    out->size = e->size.load(std::memory_order_relaxed);
    return Status::Ok;
}

Status
GpuFs::gftruncate(gpu::BlockCtx &ctx, int fd, uint64_t new_size)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    if (!e->wantsWrite())
        return Status::ReadOnlyFile;

    std::lock_guard<std::mutex> lock(tableMtx);
    // Reclaim cached pages ("reclaim any relevant pages", Table 1);
    // unsynced dirty data below the cut is pushed home first so a
    // truncate-to-larger does not lose writes.
    Time max_done = ctx.now();
    e->cache->forEachDirty([&](uint64_t idx, uint8_t *data, uint32_t lo,
                               uint32_t hi) -> bool {
        uint64_t base = idx * params_.pageSize;
        if (base + lo >= new_size)
            return false;   // truncated away; nothing to preserve
        Status one;
        Time done = writebackExtent(*e, idx, data, lo, hi, ctx.now(), &one);
        max_done = std::max(max_done, done);
        return true;
    });
    ctx.waitUntil(max_done);
    if (!e->cache->dropAll())
        return Status::Busy;

    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Truncate;
    req.hostFd = e->hostFd;
    req.offset = new_size;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return resp.status;
    e->size.store(new_size, std::memory_order_relaxed);
    e->version.store(resp.version, std::memory_order_relaxed);
    return Status::Ok;
}

unsigned
GpuFs::hostFdsHeld() const
{
    std::lock_guard<std::mutex> lock(tableMtx);
    unsigned n = 0;
    for (const auto &fptr : files)
        n += fptr->hostFd >= 0 ? 1 : 0;
    return n;
}

} // namespace core
} // namespace gpufs
