#include "gpufs/gpufs.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace core {

namespace {

/** Map GPUfs open flags to the host-visible flag set. */
uint32_t
hostOpenFlags(uint32_t gflags)
{
    uint32_t access = gflags & G_ACCMODE;
    if (gflags & G_GWRONCE)
        access = G_WRONLY;      // O_GWRONCE creates a write-only file
    uint32_t host = access;     // access-mode values match hostfs's
    if (gflags & (G_CREAT | G_GWRONCE | G_NOSYNC))
        host |= hostfs::O_CREAT_F;
    if (gflags & G_TRUNC)
        host |= hostfs::O_TRUNC_F;
    return host;
}

} // namespace

GpuFs::GpuFs(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
             const GpuFsParams &fs_params)
    : dev(device), queue(rpc_queue), params_(fs_params),
      stats_("gpufs.gpu" + std::to_string(device.id())),
      bc_(device, rpc_queue, fs_params, stats_),
      table_(fs_params.maxOpenFiles),
      cntOpens(stats_.counter("opens")),
      cntOpenRpcs(stats_.counter("open_rpcs")),
      cntCloses(stats_.counter("closes")),
      cntInvalidations(stats_.counter("cache_invalidations")),
      cntBytesRead(stats_.counter("bytes_read")),
      cntBytesWritten(stats_.counter("bytes_written")),
      cntFlusherPages(stats_.counter("flusher_pages")),
      cntFlusherDrains(stats_.counter("flusher_drains")),
      cntDrainedCollected(stats_.counter("drained_caches_collected"))
{
    for (auto &e : table_.entries())
        bc_.attach(e->cf);
}

GpuFs::~GpuFs()
{
    // Tear down caches; entries with host fds cannot RPC here (the
    // daemon may already be gone), so host fds are abandoned — tests
    // that care close everything first.
    for (auto &e : table_.entries())
        e->cf.cache.reset();
}

rpc::RpcResponse
GpuFs::rpcCall(gpu::BlockCtx &ctx, rpc::RpcRequest &req)
{
    req.gpuId = dev.id();
    req.issueTime = ctx.now();
    rpc::RpcResponse resp = queue.call(req);
    ctx.waitUntil(resp.done);
    return resp;
}

void
GpuFs::destroyEntryLocked(gpu::BlockCtx &ctx, OpenFile &entry)
{
    bc_.destroyFile(entry.cf);
    if (entry.cf.hostFd >= 0) {
        closeHostFd(ctx, entry.cf.hostFd);
        entry.cf.hostFd = -1;
    }
    entry.resetEntry();
}

int
GpuFs::allocEntryLocked(gpu::BlockCtx &ctx)
{
    int idx = table_.findFree();
    if (idx >= 0)
        return idx;
    // Recycle the oldest closed entry, preferring clean ones (their
    // caches are droppable without write-back).
    idx = table_.pickRecyclable();
    if (idx < 0)
        return -1;
    OpenFile &victim = table_.at(idx);
    if (victim.cf.cache && victim.cf.cache->dirtyCount() > 0 &&
        !victim.nosync()) {
        // Push dirty data home before discarding the cache.
        Status wb_st = bc_.flushDirty(ctx, victim.cf);
        if (!ok(wb_st))
            gpufs_warn("write-back failed recycling entry: %s",
                       statusName(wb_st));
    }
    destroyEntryLocked(ctx, victim);
    return idx;
}

int
GpuFs::gopen(gpu::BlockCtx &ctx, const std::string &path, uint32_t flags)
{
    cntOpens.inc();
    ctx.charge(1 * kMicrosecond);   // table search cost
    if (path.size() >= rpc::kMaxPath)
        return -static_cast<int>(Status::Inval);

    auto lock = lockTable();

    // Fast path: the file is already open — bump the reference count
    // without CPU communication (§4.1).
    int idx = table_.findOpenByPath(path);
    if (idx >= 0) {
        OpenFile &e = table_.at(idx);
        bool want_write = (flags & G_ACCMODE) != G_RDONLY
            || (flags & G_GWRONCE);
        if (want_write && !e.wantsWrite()) {
            // Mode upgrade of a shared descriptor is outside the
            // prototype's supported set.
            return -static_cast<int>(Status::NotSupported);
        }
        e.refs.fetch_add(1, std::memory_order_relaxed);
        return idx;
    }

    // Slow path. First collect closed entries eviction has fully
    // drained — their empty radix trees hold memory for nothing.
    for (int di; (di = table_.findDrainedClosed()) >= 0;)
        destroyEntryLocked(ctx, table_.at(di));

    // Open on the host.
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Open;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    req.flags = hostOpenFlags(flags);
    req.wantsWrite = (flags & G_ACCMODE) != G_RDONLY || (flags & G_GWRONCE);
    // Mergeable writers may coexist: O_GWRONCE merges by
    // diff-against-zeros; diff-and-merge (extension) by diffing
    // against the pristine copy.
    req.mergeableWriter = (flags & G_GWRONCE) ||
        (params_.enableDiffMerge && req.wantsWrite);
    req.nosync = flags & G_NOSYNC;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return -static_cast<int>(resp.status);
    cntOpenRpcs.inc();

    // Closed-table check: reuse the retained page cache if the host's
    // version proves it is still current (lazy invalidation, §4.4).
    int cidx = table_.findClosedByIno(resp.ino);
    if (cidx >= 0) {
        OpenFile &e = table_.at(cidx);
        if (e.cf.version.load(std::memory_order_relaxed) == resp.version &&
            e.cf.cache) {
            int old_fd = bc_.reopenFile(e.cf, resp.hostFd);
            e.state = OpenFile::EState::Open;
            e.path = path;
            e.flags = flags;
            e.refs.store(1, std::memory_order_relaxed);
            e.cf.size.store(resp.size, std::memory_order_relaxed);
            e.syncCacheFlags();
            if (old_fd >= 0) {
                // The entry had kept its fd for dirty pages; the new
                // claim is established, release the old one.
                closeHostFd(ctx, old_fd);
            }
            return cidx;
        }
        // Stale cache: drop it; the now-Free slot is reused below.
        cntInvalidations.inc();
        destroyEntryLocked(ctx, e);
    }

    int nidx = cidx >= 0 ? cidx : allocEntryLocked(ctx);
    if (nidx < 0) {
        closeHostFd(ctx, resp.hostFd);
        return -static_cast<int>(Status::TooManyFiles);
    }
    OpenFile &e = table_.at(nidx);
    e.state = OpenFile::EState::Open;
    e.path = path;
    e.ino = resp.ino;
    e.flags = flags;
    e.refs.store(1, std::memory_order_relaxed);
    e.cf.hostFd = resp.hostFd;
    e.cf.version.store(resp.version, std::memory_order_relaxed);
    e.cf.size.store(resp.size, std::memory_order_relaxed);
    e.cf.closed = false;
    e.syncCacheFlags();
    bc_.setupFile(e.cf);
    return nidx;
}

Status
GpuFs::gclose(gpu::BlockCtx &ctx, int fd)
{
    auto lock = lockTable();
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    cntCloses.inc();
    ctx.charge(1 * kMicrosecond);
    if (e->refs.fetch_sub(1, std::memory_order_relaxed) > 1)
        return Status::Ok;

    // Last close: park the entry (cache retained for reuse). Dirty data
    // is NOT written back — close and sync are decoupled (§3.2); a
    // clean cache releases the host fd (and consistency claim) now,
    // a dirty one keeps it for future eviction write-back.
    e->state = OpenFile::EState::Closed;
    int release_fd = bc_.parkFile(e->cf, ++closeCounter);
    if (release_fd >= 0)
        closeHostFd(ctx, release_fd);
    return Status::Ok;
}

int64_t
GpuFs::gread(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             void *dst)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return -static_cast<int64_t>(st);
    if ((e->flags & G_ACCMODE) == G_WRONLY || e->gwronce())
        return -static_cast<int64_t>(Status::Inval);

    uint64_t fsize = e->cf.size.load(std::memory_order_relaxed);
    if (offset >= fsize)
        return 0;
    len = std::min(len, fsize - offset);

    auto *out = static_cast<uint8_t *>(dst);
    uint64_t pos = offset;
    const uint64_t end = offset + len;
    const uint64_t page_size = params_.pageSize;
    while (pos < end) {
        uint64_t page_idx = pos / page_size;
        uint64_t in_page = pos % page_size;
        uint64_t n = std::min(page_size - in_page, end - pos);
        uint32_t frame;
        FPage *fp;
        st = bc_.pinPage(ctx, e->cf, page_idx, &frame, &fp, false);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(out, bc_.arena().data(frame) + in_page, n);
        ctx.chargeGpuMem(n);
        e->cf.cache->unpin(*fp);
        pos += n;
        out += n;
    }
    cntBytesRead.inc(len);
    return static_cast<int64_t>(len);
}

int64_t
GpuFs::gwrite(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
              const void *src)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return -static_cast<int64_t>(st);
    if (!e->wantsWrite())
        return -static_cast<int64_t>(Status::ReadOnlyFile);

    const auto *in = static_cast<const uint8_t *>(src);
    uint64_t pos = offset;
    const uint64_t end = offset + len;
    const uint64_t page_size = params_.pageSize;
    while (pos < end) {
        uint64_t page_idx = pos / page_size;
        uint64_t in_page = pos % page_size;
        uint64_t n = std::min(page_size - in_page, end - pos);
        bool whole_page = (in_page == 0 && n == page_size);
        uint32_t frame;
        FPage *fp;
        st = bc_.pinPage(ctx, e->cf, page_idx, &frame, &fp, whole_page);
        if (!ok(st))
            return -static_cast<int64_t>(st);
        std::memcpy(bc_.arena().data(frame) + in_page, in, n);
        ctx.chargeGpuMem(n);
        e->cf.cache->noteDirty(bc_.arena().frame(frame),
                               static_cast<uint32_t>(in_page),
                               static_cast<uint32_t>(in_page + n));
        e->cf.cache->unpin(*fp);
        pos += n;
        in += n;
    }
    // Local size grows with writes (visible to this GPU's greads).
    uint64_t cur = e->cf.size.load(std::memory_order_relaxed);
    while (end > cur &&
           !e->cf.size.compare_exchange_weak(cur, end,
                                             std::memory_order_relaxed)) {
    }
    // "When gwrite completes, each thread issues a memory fence" (§4.1)
    // so a later page-out DMA observes the data.
    ctx.threadFence();
    cntBytesWritten.inc(len);
    return static_cast<int64_t>(len);
}

Status
GpuFs::gfsyncRange(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                   uint64_t len)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    if (e->nosync())
        return Status::Ok;   // never synchronized to the host (§3.2)

    const uint64_t page_size = params_.pageSize;
    const uint64_t first_page = offset / page_size;
    const uint64_t last_page = len >= UINT64_MAX - offset
        ? UINT64_MAX : (offset + len + page_size - 1) / page_size;

    Status wb_st = bc_.flushDirty(ctx, e->cf, first_page, last_page);
    if (!ok(wb_st))
        return wb_st;

    // Persist: flush the host page cache's dirty granules (gfsync
    // "synchronously writes back to the host"; host-side fsync makes
    // it durable like CPU fsync).
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Fsync;
    req.hostFd = e->cf.hostFd;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    return resp.status;
}

void *
GpuFs::gmmap(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
             uint64_t *mapped_len, Status *st_out)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    uint64_t fsize = e->cf.size.load(std::memory_order_relaxed);
    if (len == 0 || (!e->wantsWrite() && offset >= fsize)) {
        if (st_out)
            *st_out = Status::Inval;
        return nullptr;
    }
    const uint64_t page_size = params_.pageSize;
    uint64_t page_idx = offset / page_size;
    uint64_t in_page = offset % page_size;

    uint32_t frame;
    FPage *fp;
    st = bc_.pinPage(ctx, e->cf, page_idx, &frame, &fp, false);
    if (!ok(st)) {
        if (st_out)
            *st_out = st;
        return nullptr;
    }
    // Map at most the prefix within this buffer-cache page (§3.2: gmmap
    // "may map only a prefix of the requested region").
    uint64_t max_len = page_size - in_page;
    if (!e->wantsWrite())
        max_len = std::min(max_len, fsize - offset);
    *mapped_len = std::min(len, max_len);
    if (st_out)
        *st_out = Status::Ok;
    // The page stays pinned until gmunmap; eviction skips pinned pages,
    // which also keeps gfsync away from mapped pages (Table 1).
    return bc_.arena().data(frame) + in_page;
}

Status
GpuFs::gmunmap(gpu::BlockCtx &ctx, void *ptr)
{
    ctx.charge(500);    // trivial translation cost (0.5 us)
    uint32_t frame = bc_.arena().frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    PFrame &pf = bc_.arena().frame(frame);
    auto *fp = static_cast<FPage *>(pf.owner.load(std::memory_order_acquire));
    if (!fp || fp->refs.load(std::memory_order_relaxed) <= 0)
        return Status::Inval;
    fp->refs.fetch_sub(1, std::memory_order_seq_cst);
    return Status::Ok;
}

Status
GpuFs::gmsync(gpu::BlockCtx &ctx, void *ptr)
{
    uint32_t frame = bc_.arena().frameOf(ptr);
    if (frame == kNoFrame)
        return Status::Inval;
    uint64_t uid =
        bc_.arena().frame(frame).fileUid.load(std::memory_order_acquire);
    OpenFile *e;
    {
        auto lock = lockTable();
        e = table_.findByCacheUid(uid);
    }
    if (!e || e->cf.hostFd < 0)
        return Status::Inval;
    if (e->nosync())
        return Status::Ok;
    return bc_.syncFrame(ctx, e->cf, frame);
}

Status
GpuFs::gunlink(gpu::BlockCtx &ctx, const std::string &path)
{
    if (path.size() >= rpc::kMaxPath)
        return Status::Inval;
    {
        auto lock = lockTable();
        // "Files unlinked on the GPU have their local buffer space
        // reclaimed immediately" (Table 1).
        for (auto &eptr : table_.entries()) {
            OpenFile &e = *eptr;
            if (e.state == OpenFile::EState::Free || e.path != path)
                continue;
            if (e.state == OpenFile::EState::Closed) {
                destroyEntryLocked(ctx, e);
            } else if (e.cf.cache) {
                if (!bc_.dropPages(e.cf))
                    return Status::Busy;
            }
        }
    }
    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Unlink;
    std::strncpy(req.path, path.c_str(), rpc::kMaxPath - 1);
    rpc::RpcResponse resp = rpcCall(ctx, req);
    return resp.status;
}

Status
GpuFs::gfstat(gpu::BlockCtx &ctx, int fd, GStat *out)
{
    ctx.charge(500);
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    out->ino = e->ino;
    out->size = e->cf.size.load(std::memory_order_relaxed);
    return Status::Ok;
}

Status
GpuFs::gftruncate(gpu::BlockCtx &ctx, int fd, uint64_t new_size)
{
    Status st;
    OpenFile *e = entryOf(fd, &st);
    if (!e)
        return st;
    if (!e->wantsWrite())
        return Status::ReadOnlyFile;

    auto lock = lockTable();
    // Reclaim cached pages ("reclaim any relevant pages", Table 1);
    // unsynced dirty data below the cut is pushed home first so a
    // truncate-to-larger does not lose writes. Pages entirely beyond
    // the cut are dropped without write-back.
    const uint64_t keep_pages =
        (new_size + params_.pageSize - 1) / params_.pageSize;
    Status wb_st = bc_.flushDirty(ctx, e->cf, 0, keep_pages);
    if (!ok(wb_st))
        return wb_st;   // do NOT drop pages whose write-back failed
    if (!bc_.dropPages(e->cf))
        return Status::Busy;

    rpc::RpcRequest req;
    req.op = rpc::RpcOp::Truncate;
    req.hostFd = e->cf.hostFd;
    req.offset = new_size;
    rpc::RpcResponse resp = rpcCall(ctx, req);
    if (!ok(resp.status))
        return resp.status;
    e->cf.size.store(new_size, std::memory_order_relaxed);
    e->cf.version.store(resp.version, std::memory_order_relaxed);
    return Status::Ok;
}

Time
GpuFs::backgroundFlushPass(Time start_time)
{
    // The flusher is a host-side thread, not a threadblock: it carries
    // its own virtual clock (persisted across passes by the caller) so
    // its write-backs land on the resource timelines without advancing
    // any application block.
    gpu::BlockCtx ctx(dev, /*block_id=*/0, /*num_blocks=*/1,
                      /*threads=*/1, start_time, /*shared_bytes=*/0);
    bool drained_any = false;
    // One entry per table-lock hold: a drain is a string of blocking
    // RPC round-trips, and holding tableMtx across the whole pass
    // would stall every gopen/gclose for its duration — the opposite
    // of what a background flusher is for. Entry objects are stable
    // (the table never deallocates them), so only eligibility must be
    // re-judged under the lock.
    for (size_t i = 0; i < table_.size(); ++i) {
        auto lock = lockTable();
        OpenFile &e = table_.at(static_cast<int>(i));
        if (!e.flushEligible())
            continue;
        // Cap the drain per lock hold: each batch is a blocking RPC
        // round-trip, and an entry with a huge dirty set must not turn
        // this hold into a long gopen/gclose stall — the remainder is
        // picked up by the next pass (the interval is short).
        constexpr uint64_t kDrainChunkPages = 4 * rpc::kMaxBatchPages;
        unsigned pages = 0;
        Status st = bc_.flushDirty(ctx, e.cf, 0, UINT64_MAX, &pages,
                                   kDrainChunkPages);
        if (!ok(st)) {
            // The failed pages' extents were restored; leave them for
            // a later pass or an explicit gfsync, which reports the
            // error to the application.
            gpufs_warn("background flush failed: %s", statusName(st));
        }
        if (pages > 0) {
            cntFlusherPages.inc(pages);
            drained_any = true;
            // Write-behind reaches the disk too: once a file drains
            // fully clean, fsync it on the host so the durability work
            // (flushing the host page cache's dirty granules) happens
            // HERE, overlapped with GPU compute, instead of inflating
            // the application's later gfsync. Only on the clean edge —
            // fsyncing every pass while a writer is still active would
            // burn the shared CPU/disk timelines re-flushing the same
            // file. Fire-and-forget: the flusher does not advance its
            // clock to the (slow) disk completion — queuing its next
            // pass behind the disk would let its virtual clock run
            // ahead of the GPUs and manufacture contention the real
            // write-behind thread would never cause.
            if (e.cf.hostFd >= 0 && e.cf.cache->dirtyCount() == 0) {
                rpc::RpcRequest req;
                req.op = rpc::RpcOp::Fsync;
                req.hostFd = e.cf.hostFd;
                req.gpuId = dev.id();
                req.issueTime = ctx.now();
                queue.call(req);
            }
        }
        // A closed file whose last dirty page just went home can
        // release its host fd (and host-side write claim) now instead
        // of waiting for the next reclaim pass.
        if (e.state == OpenFile::EState::Closed)
            bc_.maybeReleaseClosedFd(ctx, e.cf);
    }
    if (drained_any)
        cntFlusherDrains.inc();

    // Eager drained-cache collection: the flusher owns the deferred
    // destroy the API/BufferCache split left to the gopen slow path —
    // closed entries whose pages eviction has fully reclaimed keep an
    // empty radix tree (and possibly a host fd) for nothing.
    {
        auto lock = lockTable();
        for (int di; (di = table_.findDrainedClosed()) >= 0;) {
            destroyEntryLocked(ctx, table_.at(di));
            cntDrainedCollected.inc();
        }
    }
    return ctx.now();
}

unsigned
GpuFs::hostFdsHeld() const
{
    auto lock = lockTable();
    return table_.countHostFds();
}

} // namespace core
} // namespace gpufs
