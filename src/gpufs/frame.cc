#include "gpufs/frame.hh"

#include "base/logging.hh"

namespace gpufs {
namespace core {

FrameArena::FrameArena(uint64_t cache_bytes, uint64_t page_size)
    : pageSize_(page_size)
{
    gpufs_assert(page_size > 0 && (page_size & (page_size - 1)) == 0,
                 "page size must be a power of two");
    uint64_t n = cache_bytes / page_size;
    if (n == 0)
        gpufs_fatal("buffer cache smaller than one page");
    if (n > kNoFrame)
        gpufs_fatal("too many frames for 32-bit frame indices");
    raw.resize(n * page_size);
    frames = std::vector<PFrame>(n);
    freeList.reserve(n);
    // LIFO free list: push in reverse so frame 0 is handed out first,
    // which keeps early allocations contiguous (nicer for debugging).
    for (uint64_t i = n; i-- > 0;)
        freeList.push_back(static_cast<uint32_t>(i));
}

uint32_t
FrameArena::allocFor(TenantId tenant)
{
    TenantId t = tenant % kMaxTenants;
    if (tenantAtQuota(t))
        return kNoFrame;
    uint32_t f;
    {
        std::lock_guard<std::mutex> lock(freeMtx);
        if (freeList.empty())
            return kNoFrame;
        f = freeList.back();
        freeList.pop_back();
    }
    frames[f].tenant.store(t, std::memory_order_relaxed);
    tenantUsed_[t].fetch_add(1, std::memory_order_relaxed);
    return f;
}

void
FrameArena::setTenantQuota(TenantId tenant, uint32_t quota_frames)
{
    // Configuration-time only (BufferCache construction): allocFor
    // reads the quota word unsynchronized on the fault path.
    tenantQuota_[tenant % kMaxTenants] = quota_frames;
}

void
FrameArena::free(uint32_t f)
{
    gpufs_assert(f < frames.size(), "free of bad frame %u", f);
    PFrame &pf = frames[f];
    gpufs_assert(pf.pristineFrame.load(std::memory_order_relaxed)
                     == kNoFrame,
                 "frame freed while still holding a pristine copy");
    gpufs_assert(!pf.speculative.load(std::memory_order_relaxed),
                 "frame freed with its speculative tag unaccounted");
    TenantId t = pf.tenant.load(std::memory_order_relaxed) % kMaxTenants;
    tenantUsed_[t].fetch_sub(1, std::memory_order_relaxed);
    pf.tenant.store(0, std::memory_order_relaxed);
    pf.fileUid.store(0, std::memory_order_release);
    pf.validBytes.store(0, std::memory_order_relaxed);
    pf.clearDirty();
    pf.owner.store(nullptr, std::memory_order_relaxed);
    pf.pinCount.store(0, std::memory_order_relaxed);
    // A recycled frame must not carry the previous owner's DMA stamp:
    // init paths that skip the fetch (whole-page overwrite) rely on
    // readyTime being 0 so no block stalls on a dead transfer.
    pf.readyTime.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(freeMtx);
    freeList.push_back(f);
}

uint32_t
FrameArena::frameOf(const void *ptr) const
{
    auto *p = static_cast<const uint8_t *>(ptr);
    if (p < raw.data() || p >= raw.data() + raw.size())
        return kNoFrame;
    return static_cast<uint32_t>((p - raw.data()) / pageSize_);
}

uint32_t
FrameArena::freeCount() const
{
    std::lock_guard<std::mutex> lock(freeMtx);
    return static_cast<uint32_t>(freeList.size());
}

} // namespace core
} // namespace gpufs
