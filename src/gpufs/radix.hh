/**
 * @file
 * Per-file buffer cache: a radix tree with lock-free traversal (§4.2).
 *
 * Each open file owns a radix tree indexed by page number. Last-level
 * (leaf) nodes hold an array of fpage structures *by value* — in-place
 * to avoid pointer chasing and dynamic allocation on the lookup path —
 * each managing one cached page: a read/write reference count and a
 * spinlock together exclude mutually incompatible operations
 * (initialization, read/write access, page-out).
 *
 * Traversal is lock-free in the style of Linux seqlocks: writers bump a
 * per-node sequence counter to odd, mutate, bump back to even; readers
 * snapshot the counter around the child load and retry on a mismatch.
 * GPUfs "retries once without locking, then locks on its third
 * attempt". Because a page frame may be reclaimed and recycled between
 * lookup and use, every tree carries a unique id that is stamped into
 * the pframe of every page it owns; after pinning, the reader verifies
 * (tree uid, page index) against the pframe and backs off on mismatch.
 *
 * Leaf nodes are threaded onto a doubly linked FIFO list at allocation
 * time; paging walks it lock-free from the tail (oldest) — the paper's
 * constant-work alternative to clock/LRU, since paging hijacks an
 * application thread (§4.2). Nodes are never freed while the tree is
 * alive, so list and tree traversals need no hazard tracking.
 */

#ifndef GPUFS_GPUFS_RADIX_HH
#define GPUFS_GPUFS_RADIX_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/status.hh"
#include "gpufs/frame.hh"
#include "gpufs/readahead.hh"
#include "gpufs/spinlock.hh"

namespace gpufs {
namespace core {

constexpr unsigned kRadixBits = 6;
constexpr unsigned kRadixFanout = 1u << kRadixBits;      // 64
constexpr unsigned kRadixLevels = 4;                     // 16M pages/file

/** fpage lifecycle. Transitions under the fpage spinlock. */
enum PageState : uint32_t {
    kPageEmpty = 0,      ///< no frame attached
    kPageInit = 1,       ///< frame being filled (RPC in flight)
    kPageReady = 2,      ///< frame valid; pinnable
    kPageEvicting = 3,   ///< paging out; pinners must back off
};

/** Per-page bookkeeping, stored by value inside leaf nodes. */
struct FPage {
    std::atomic<uint32_t> state{kPageEmpty};
    /** Read/write pin count; >0 blocks eviction. */
    std::atomic<int32_t> refs{0};
    std::atomic<uint32_t> frame{kNoFrame};
    SpinLock lock;
};

struct RadixNode {
    RadixNode(uint32_t lvl, uint64_t base);

    /** Seqlock counter: odd while a writer mutates children. */
    std::atomic<uint32_t> seq{0};
    SpinLock lock;
    const uint32_t level;        ///< 0 = leaf
    const uint64_t baseIdx;      ///< first page index this node covers

    /** Inner nodes: child pointers, set once (null -> node). */
    std::atomic<RadixNode *> children[kRadixFanout];
    /** Leaf nodes only. */
    std::unique_ptr<FPage[]> pages;

    /** FIFO list threading (leaf nodes): next = older, prev = newer. */
    std::atomic<RadixNode *> fifoNext{nullptr};
    std::atomic<RadixNode *> fifoPrev{nullptr};

    uint64_t pageIndexOf(const FPage *p) const
    {
        return baseIdx + static_cast<uint64_t>(p - pages.get());
    }
};

/** Counters shared with the owning subsystem's StatSet. */
struct CacheCounters {
    Counter &lockfreeAccesses;
    Counter &lockedAccesses;
    Counter &pagesReclaimed;
    /** Prefetch feedback: speculative pages promoted by a first pin
     *  vs evicted/dropped never pinned (every published read-ahead
     *  page ends up in exactly one of the two). */
    Counter &raHits;
    Counter &raWasted;
};

/** One page claimed by beginInitBatch: the fpage (held locked) and the
 *  frame allocated for it. */
struct BatchSlot {
    FPage *page;
    uint32_t frame;
};

/** One dirty page extent taken by takeDirtyBatch (fpage held LOCKED
 *  until finishDirtyBatch): the page's dirty byte range [lo, hi)
 *  backed by @p frame. */
struct DirtyExtent {
    FPage *page;
    uint64_t pageIdx;
    uint32_t frame;
    uint32_t lo;
    uint32_t hi;
};

/**
 * One file's page cache. Thread safe; all synchronization is internal
 * and follows the protocols described above.
 */
class FileCache
{
  public:
    /**
     * @param frame_arena  the device-wide raw data array
     * @param counters     GpuFs-level stat counters
     * @param force_locked take node locks on every traversal (Fig. 7)
     */
    FileCache(FrameArena &frame_arena, const CacheCounters &counters,
              bool force_locked);
    ~FileCache();

    FileCache(const FileCache &) = delete;
    FileCache &operator=(const FileCache &) = delete;

    /** Unique tree id stamped into owned pframes. Never reused. */
    uint64_t uid() const { return uid_; }

    /** Wire the owning CacheFile's read-ahead stream table so
     *  eviction-side feedback (noteWasted) reaches the policy. Set
     *  once at setupFile, before any page is published; null
     *  (standalone FileCache tests) skips per-file feedback but never
     *  the StatSet counters. */
    void setTracker(ReadAheadStreams *t) { tracker_ = t; }

    /** Wire the owning CacheFile's tenant word so every frame this
     *  cache claims is charged to the tenant currently holding the
     *  file open (reopen under a different tenant re-points the charge
     *  for NEW faults; resident frames keep their original stamp).
     *  Null (standalone tests) charges the default tenant. */
    void setTenantTag(const std::atomic<uint8_t> *t) { tenantTag_ = t; }

    /** Tenant new frame claims are charged to. */
    uint8_t
    tenantOf() const
    {
        return tenantTag_ ? tenantTag_->load(std::memory_order_relaxed)
                          : 0;
    }

    /** Largest page index addressable by the fixed-height tree. */
    static constexpr uint64_t
    maxPageIndex()
    {
        return (1ull << (kRadixBits * kRadixLevels)) - 1;
    }

    /**
     * Find (creating the path if needed) the fpage for @p page_idx.
     * Lock-free with two retries, then locked — or always locked in
     * force_locked mode. Never fails for idx <= maxPageIndex().
     */
    FPage *getPage(uint64_t page_idx);

    /**
     * Lookup-only probe: the fpage for @p page_idx if its radix path
     * already exists, nullptr otherwise — never allocates nodes. Used
     * by the daemon's peer-cache probes, which must not grow the
     * OWNER's tree for pages it may never cache (and must never
     * block: child pointers are set-once null -> node, so plain
     * acquire loads suffice without the seqlock dance).
     */
    FPage *findPage(uint64_t page_idx);

    /**
     * Fast-path pin: succeeds iff the page is Ready and identity-
     * verified. On success the page is pinned and *frame_out is valid.
     */
    bool tryPinReady(FPage &p, uint64_t page_idx, uint32_t *frame_out);

    /**
     * Slow path: lock the fpage; if someone initialized it meanwhile,
     * pin it; otherwise allocate a frame and run @p fetch to fill it.
     * @param fetch  Status(uint8_t *data, uint32_t *valid_bytes); runs
     *               with the fpage lock held (concurrent openers of the
     *               same page serialize here, as in the paper).
     * @return Ok and pin (*frame_out, *was_init=true if this call did
     *         the fill), NoSpace if the arena is exhausted (caller
     *         pages out and retries), or the fetch's error.
     */
    template <typename FetchFn>
    Status
    initAndPin(FPage &p, uint64_t page_idx, uint32_t *frame_out,
               bool *did_init, FetchFn &&fetch)
    {
        p.lock.lock();
        uint32_t s = p.state.load(std::memory_order_acquire);
        if (s == kPageReady) {
            p.refs.fetch_add(1, std::memory_order_seq_cst);
            *frame_out = p.frame.load(std::memory_order_acquire);
            *did_init = false;
            p.lock.unlock();
            return Status::Ok;
        }
        // Holding the lock, state can only be Empty here: Init/Evicting
        // are only set by the lock holder.
        uint32_t f = arena.allocFor(tenantOf());
        if (f == kNoFrame) {
            p.lock.unlock();
            return Status::NoSpace;
        }
        PFrame &pf = arena.frame(f);
        pf.fileUid.store(uid_, std::memory_order_relaxed);
        pf.pageIdx.store(page_idx, std::memory_order_relaxed);
        pf.owner.store(&p, std::memory_order_relaxed);
        pf.lastAccess.store(arena.nextTick(), std::memory_order_relaxed);
        p.frame.store(f, std::memory_order_release);
        p.state.store(kPageInit, std::memory_order_release);

        uint32_t valid = 0;
        Status st = fetch(arena.data(f), &valid);
        if (!ok(st)) {
            p.frame.store(kNoFrame, std::memory_order_relaxed);
            p.state.store(kPageEmpty, std::memory_order_release);
            arena.free(f);
            p.lock.unlock();
            return st;
        }
        pf.validBytes.store(valid, std::memory_order_relaxed);
        p.refs.fetch_add(1, std::memory_order_seq_cst);
        p.state.store(kPageReady, std::memory_order_release);
        p.lock.unlock();
        *frame_out = f;
        *did_init = true;
        return Status::Ok;
    }

    /** Drop a pin taken by tryPinReady/initAndPin. */
    void
    unpin(FPage &p)
    {
        int32_t prev = p.refs.fetch_sub(1, std::memory_order_seq_cst);
        gpufs_assert(prev > 0, "unpin underflow");
    }

    /**
     * Claim up to @p max_n contiguous Empty pages starting at
     * @p start_idx for a batched fill (read-ahead coalescing): each
     * claimed page is locked, given a frame, and moved to Init so
     * concurrent pinners serialize on it exactly as they do against a
     * single-page fill. The run stops at the first page that is
     * resident, in flight, contended, or unallocatable — a batch always
     * covers one contiguous file extent. Claimed pages stay locked
     * until finishInitBatch/abortInitBatch. Never blocks on a page
     * lock (tryLock only): read-ahead must not stall behind another
     * block's fetch.
     * @return the number of slots claimed (may be 0).
     */
    unsigned beginInitBatch(uint64_t start_idx, unsigned max_n,
                            BatchSlot *out);

    /** Publish a filled batch: per-page valid byte counts, a shared
     *  DMA-completion time gating first use, pages become Ready and
     *  unlocked. Batch pages are NOT pinned (prefetch semantics).
     *  @p speculative tags each page's frame for prefetch-feedback
     *  accounting (read-ahead batches; demand batches pass false) —
     *  set under the fpage lock so a racing first pin always observes
     *  it. @p stream is the ReadAheadStreams slot the batch resolved
     *  (kNoStream for demand and static-policy batches), stamped into
     *  each frame so promotion/waste route to the issuing stream. */
    void finishInitBatch(const BatchSlot *slots, unsigned n,
                         const uint32_t *valid, Time ready,
                         bool speculative,
                         uint8_t stream = ReadAheadStreams::kNoStream);

    /** Roll a failed batch back to Empty, freeing the frames. */
    void abortInitBatch(const BatchSlot *slots, unsigned n);

    /**
     * Owner-warming adoption (daemon-thread context, sharded cache):
     * install @p src's bytes as this cache's Ready copy of
     * @p page_idx. Never blocks — the fpage is try-locked only and the
     * attempt is abandoned on contention, on a non-Empty page, or when
     * the arena declines the claim (exhausted, or @p tenant at quota);
     * the radix path is created if absent (node creation takes only
     * short internal allocation locks no RPC ever spans). The page
     * publishes Ready and UNPINNED with @p ready as its DMA-completion
     * stamp, exactly like a read-ahead publish without the speculative
     * tag. @return true iff adopted.
     */
    bool tryAdoptPage(uint64_t page_idx, const uint8_t *src,
                      uint32_t valid, Time ready, uint8_t tenant);

    /** No-demotion default for reclaim/evictFrame callers without a
     *  victim tier: evicted bytes just die with the frame. */
    static void
    noDemote(uint64_t, const uint8_t *, uint32_t)
    {
    }

    /**
     * Reclaim up to @p want unpinned Ready pages, FIFO order (oldest
     * leaf nodes first). Dirty pages are skipped unless @p allow_dirty,
     * in which case @p writeback is invoked (under the fpage lock) with
     * (page_idx, data, dirty_lo, dirty_hi) before the frame is freed.
     * @p demote is invoked (still under the fpage lock, after any
     * writeback, before the frame is recycled) with (page_idx, data,
     * valid_bytes) — the victim-tier demotion hook; the default drops
     * the bytes. @return pages actually freed.
     */
    template <typename WbFn, typename DemoteFn>
    unsigned
    reclaim(unsigned want, bool allow_dirty, WbFn &&writeback,
            DemoteFn &&demote)
    {
        unsigned freed = 0;
        for (RadixNode *n = fifoTail.load(std::memory_order_acquire);
             n != nullptr && freed < want;
             n = n->fifoPrev.load(std::memory_order_acquire)) {
            for (unsigned i = 0; i < kRadixFanout && freed < want; ++i) {
                freed += tryEvictPage(n->pages[i], n->baseIdx + i,
                                      allow_dirty, writeback, demote);
            }
        }
        return freed;
    }

    template <typename WbFn>
    unsigned
    reclaim(unsigned want, bool allow_dirty, WbFn &&writeback)
    {
        return reclaim(want, allow_dirty, writeback, noDemote);
    }

    /**
     * Try to evict the page currently backed by @p frame_idx (global-
     * LRU policy: the caller snapshotted evictable frames in access
     * order). Identity is verified — a frame recycled since the
     * snapshot is left alone. @p demote as in reclaim. @return 1 if
     * the frame was freed.
     */
    template <typename WbFn, typename DemoteFn>
    unsigned
    evictFrame(uint32_t frame_idx, bool allow_dirty, WbFn &&writeback,
               DemoteFn &&demote)
    {
        PFrame &pf = arena.frame(frame_idx);
        if (pf.fileUid.load(std::memory_order_acquire) != uid_)
            return 0;   // recycled since the caller's snapshot
        auto *p = static_cast<FPage *>(
            pf.owner.load(std::memory_order_acquire));
        if (!p || p->frame.load(std::memory_order_acquire) != frame_idx ||
            pf.fileUid.load(std::memory_order_acquire) != uid_) {
            return 0;
        }
        // An FPage maps to a fixed page index for the life of the
        // tree, so pageIdx cannot be stale once identity holds;
        // tryEvictPage re-verifies state/refs under the fpage lock.
        return tryEvictPage(*p, pf.pageIdx.load(std::memory_order_relaxed),
                            allow_dirty, writeback, demote);
    }

    template <typename WbFn>
    unsigned
    evictFrame(uint32_t frame_idx, bool allow_dirty, WbFn &&writeback)
    {
        return evictFrame(frame_idx, allow_dirty, writeback, noDemote);
    }

    /**
     * Visit every dirty, unpinned page: lock it, call @p visit with
     * (page_idx, data, dirty_lo, dirty_hi); if visit returns true the
     * page was written back and its dirty extent is cleared, false
     * leaves it dirty (range-filtered gfsync). Visitors returning
     * void are treated as always-true. @return pages cleaned.
     */
    template <typename VisitFn>
    unsigned
    forEachDirty(VisitFn &&visit)
    {
        unsigned visited = 0;
        for (RadixNode *n = fifoTail.load(std::memory_order_acquire);
             n != nullptr;
             n = n->fifoPrev.load(std::memory_order_acquire)) {
            for (unsigned i = 0; i < kRadixFanout; ++i) {
                FPage &p = n->pages[i];
                if (p.state.load(std::memory_order_acquire) != kPageReady)
                    continue;
                uint32_t f = p.frame.load(std::memory_order_acquire);
                if (f == kNoFrame || !arena.frame(f).isDirty())
                    continue;
                if (p.refs.load(std::memory_order_relaxed) != 0)
                    continue;   // concurrently accessed: skip (API: gfsync)
                SpinGuard guard(p.lock);
                if (p.state.load(std::memory_order_acquire) != kPageReady)
                    continue;
                f = p.frame.load(std::memory_order_acquire);
                PFrame &pf = arena.frame(f);
                // Atomically TAKE the extent before writing back:
                // ranges merged by concurrent writers after this point
                // form a fresh extent synced by a later pass, so no
                // dirty byte is ever lost.
                uint64_t e = pf.takeDirtyExtent();
                uint32_t lo = PFrame::extentLo(e);
                uint32_t hi = PFrame::extentHi(e);
                if (lo >= hi)
                    continue;
                bool wrote;
                if constexpr (std::is_void_v<decltype(visit(
                                  n->baseIdx + i, arena.data(f), lo,
                                  hi))>) {
                    visit(n->baseIdx + i, arena.data(f), lo, hi);
                    wrote = true;
                } else {
                    wrote = visit(n->baseIdx + i, arena.data(f), lo, hi);
                }
                dirtyPages_.fetch_sub(1, std::memory_order_relaxed);
                if (!wrote) {
                    // Declined (range filter): put the extent back.
                    if (pf.mergeDirty(lo, hi))
                        dirtyPages_.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                ++visited;
            }
        }
        return visited;
    }

    /**
     * Collect up to @p max_n dirty pages with index in [first_page,
     * last_page) for a batched write-back: each page's dirty extent is
     * atomically taken (leaving the page clean) and its fpage stays
     * LOCKED until finishDirtyBatch — the write twin of
     * beginInitBatch's lock-held-across-RPC protocol. The held lock
     * keeps eviction off the frame while the WritePages RPC reads it,
     * and makes a concurrent sync of the same page wait (then find
     * only bytes written after our take), exactly as the per-page path
     * serialized through writebackExtent under the fpage lock — it
     * must never *report* an in-flight page as synced — pages whose
     * extent an in-flight collector already took read as clean and
     * are skipped here; durability callers run awaitWritebacks once
     * after their take loop to wait those RPCs out. App-pinned pages
     * (refs != 0) are skipped, gfsync's "not concurrently accessed"
     * contract; lock-free readers/writers of Ready pages are NOT
     * blocked by the held lock (writes landing mid-RPC form a fresh
     * extent a later sync picks up).
     *
     * Locks are acquired in leaf-FIFO walk order, the one total order
     * every batching caller uses, so concurrent collectors cannot
     * deadlock. Callers loop until it returns 0 (restarts are cheap:
     * taken pages are no longer dirty) and MUST pair every call with
     * finishDirtyBatch. @return extents collected (may be 0).
     */
    unsigned takeDirtyBatch(uint64_t first_page, uint64_t last_page,
                            DirtyExtent *out, unsigned max_n);

    /**
     * Release a takeDirtyBatch batch. When @p restore, each extent is
     * merged back into its page (failed write-back: a later sync
     * retries; ranges dirtied meanwhile are preserved by the merge).
     * Always drops the fpage locks.
     */
    void finishDirtyBatch(const DirtyExtent *ext, unsigned n,
                          bool restore);

    /**
     * Completion barrier for in-flight batched write-backs of pages in
     * [first_page, last_page): collectors hold each taken page's fpage
     * lock until their RPC completes, so briefly acquiring every
     * in-range Ready page's lock guarantees that extents taken before
     * this call have reached the host. flushDirty runs it once after
     * its take loop, so sync callers never report bytes as synced that
     * a concurrent collector (e.g. the async flusher) still has in
     * flight.
     */
    void awaitWritebacks(uint64_t first_page, uint64_t last_page);

    /**
     * Drop every cached page without write-back (stale-cache
     * invalidation, truncate, unlink). @return false if any page was
     * pinned (caller decides how to surface the conflict).
     */
    bool dropAll();

    /** Mark a page's dirty-extent growth; maintains the dirty count. */
    void noteDirty(PFrame &pf, uint32_t lo, uint32_t hi);

    /** Atomically take a page's dirty extent, maintaining the dirty
     *  count (gmsync path). @return the packed extent taken. */
    uint64_t
    takeDirtyCounted(PFrame &pf)
    {
        uint64_t e = pf.takeDirtyExtent();
        if (PFrame::extentLo(e) < PFrame::extentHi(e))
            dirtyPages_.fetch_sub(1, std::memory_order_relaxed);
        return e;
    }

    uint64_t dirtyCount() const
    {
        return dirtyPages_.load(std::memory_order_relaxed);
    }

    /** Number of Ready pages (tests/benchmarks). */
    uint64_t residentPages() const;

    FrameArena &frameArena() { return arena; }

  private:
    static std::atomic<uint64_t> nextUid;

    FrameArena &arena;
    CacheCounters counters;
    const bool forceLocked;
    const uint64_t uid_;
    /** Owning CacheFile's read-ahead stream table (may be null). */
    ReadAheadStreams *tracker_ = nullptr;
    /** Owning CacheFile's tenant word (may be null: default tenant). */
    const std::atomic<uint8_t> *tenantTag_ = nullptr;

    RadixNode root;
    std::mutex allocMtx;
    std::deque<RadixNode> nodePool;   // deque: stable addresses

    std::mutex listMtx;
    std::atomic<RadixNode *> fifoHead{nullptr};   // newest
    std::atomic<RadixNode *> fifoTail{nullptr};   // oldest

    std::atomic<uint64_t> dirtyPages_{0};

    static unsigned
    slotOf(uint64_t idx, unsigned level)
    {
        return (idx >> (kRadixBits * level)) & (kRadixFanout - 1);
    }

    /** One traversal attempt. @return the fpage, or nullptr if a
     *  seqlock validation failed (lock-free mode only). */
    FPage *walk(uint64_t idx, bool locked);

    /** Insert a child at @p node / @p slot (idempotent under races). */
    RadixNode *insertChild(RadixNode &node, unsigned slot, uint64_t idx);

    RadixNode *newNode(uint32_t level, uint64_t base);
    void pushFifo(RadixNode *leaf);

    template <typename WbFn, typename DemoteFn>
    unsigned
    tryEvictPage(FPage &p, uint64_t page_idx, bool allow_dirty,
                 WbFn &&writeback, DemoteFn &&demote)
    {
        if (p.state.load(std::memory_order_acquire) != kPageReady ||
            p.refs.load(std::memory_order_relaxed) != 0) {
            return 0;
        }
        if (!p.lock.tryLock())
            return 0;
        if (p.state.load(std::memory_order_acquire) != kPageReady) {
            p.lock.unlock();
            return 0;
        }
        p.state.store(kPageEvicting, std::memory_order_seq_cst);
        if (p.refs.load(std::memory_order_seq_cst) != 0) {
            // A pinner raced past the state check; page is in use.
            p.state.store(kPageReady, std::memory_order_release);
            p.lock.unlock();
            return 0;
        }
        uint32_t f = p.frame.load(std::memory_order_acquire);
        PFrame &pf = arena.frame(f);
        if (pf.isDirty()) {
            if (!allow_dirty) {
                p.state.store(kPageReady, std::memory_order_release);
                p.lock.unlock();
                return 0;
            }
            uint64_t e = pf.takeDirtyExtent();
            if (PFrame::extentLo(e) < PFrame::extentHi(e)) {
                writeback(page_idx, arena.data(f), PFrame::extentLo(e),
                          PFrame::extentHi(e));
                dirtyPages_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        uint32_t pristine = pf.pristineFrame.exchange(
            kNoFrame, std::memory_order_acq_rel);
        if (pristine != kNoFrame)
            arena.free(pristine);
        // Demotion hook: the frame's bytes are about to be recycled —
        // the fpage lock (still held) keeps them stable for the copy.
        // Runs after any dirty writeback, so a victim tier only ever
        // stages bytes the host has (or will never need back dirty).
        demote(page_idx, arena.data(f),
               pf.validBytes.load(std::memory_order_relaxed));
        retireSpeculative(pf, page_idx);
        p.frame.store(kNoFrame, std::memory_order_relaxed);
        arena.free(f);
        p.state.store(kPageEmpty, std::memory_order_release);
        p.lock.unlock();
        counters.pagesReclaimed.inc();
        return 1;
    }

    /** Prefetch feedback on the frame-free path: a still-speculative
     *  frame is dying without ever being pinned — count it wasted and
     *  feed the page index to the issuing stream's ghost ring (the
     *  slot tag is stable once the exchange is won: it was stored
     *  together with the tag under the publish-time fpage lock). */
    void
    retireSpeculative(PFrame &pf, uint64_t page_idx)
    {
        if (pf.speculative.exchange(false, std::memory_order_acq_rel)) {
            counters.raWasted.inc();
            if (tracker_) {
                tracker_->noteWasted(
                    pf.raStream.load(std::memory_order_relaxed),
                    page_idx);
            }
        }
    }
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_RADIX_HH
