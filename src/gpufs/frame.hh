/**
 * @file
 * Page frames and the raw data array (§4.2).
 *
 * GPUfs pre-allocates all buffer-cache pages in one large contiguous
 * array in GPU memory (the "raw data array"). A pframe holds the
 * metadata of the i-th page: the i-th pframe describes the i-th page,
 * so frame index <-> data pointer translation is trivial in both
 * directions — which gmunmap/gmsync rely on to map a user pointer back
 * to its page. Unlike Linux pframes, these carry file identity (the
 * owning radix tree's unique id and the page's file offset) because
 * every GPUfs page is file-backed and the lock-free traversal verifies
 * identity after pinning.
 */

#ifndef GPUFS_GPUFS_FRAME_HH
#define GPUFS_GPUFS_FRAME_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "gpufs/params.hh"

namespace gpufs {
namespace core {

constexpr uint32_t kNoFrame = 0xFFFFFFFFu;

/** Metadata for one buffer-cache page. */
struct PFrame {
    /** Unique id of the radix tree (file cache) owning this frame;
     *  0 while free. Part of the post-pin identity check. */
    std::atomic<uint64_t> fileUid{0};
    /** Page index within the file (offset / pageSize). */
    std::atomic<uint64_t> pageIdx{0};
    /** Bytes of real file content in the page (may be < pageSize at EOF). */
    std::atomic<uint32_t> validBytes{0};

    /**
     * Dirty byte extent within the page, packed (hi << 32 | lo) into
     * ONE atomic word. Packing matters for correctness: a syncing
     * thread must atomically *take* the extent (exchange to clean)
     * while concurrent writers merge their ranges in — with two
     * separate atomics, a merge landing between the sync's read and
     * its clear would be lost, and those bytes would never reach the
     * host. Empty when lo >= hi.
     */
    static constexpr uint64_t kCleanExtent = 0x00000000FFFFFFFFull;
    std::atomic<uint64_t> dirtyExtent{kCleanExtent};

    static uint32_t extentLo(uint64_t e) { return uint32_t(e); }
    static uint32_t extentHi(uint64_t e) { return uint32_t(e >> 32); }
    static uint64_t
    packExtent(uint32_t lo, uint32_t hi)
    {
        return (uint64_t(hi) << 32) | lo;
    }
    /** Virtual timestamp of the last pin (LRU-ablation policy input). */
    std::atomic<uint64_t> lastAccess{0};
    /** Application pins since the frame was claimed (2Q-ablation
     *  policy input: 1 = probationary, >1 = protected). Bumped by
     *  BufferCache::pinPage only — peer-copy and prefetch-step-over
     *  pins are not application reuse. */
    std::atomic<uint32_t> pinCount{0};
    /** Virtual time at which the page content became available (DMA
     *  completion). Pinners of a page fetched asynchronously (read-
     *  ahead) wait until this time before using the data. */
    std::atomic<uint64_t> readyTime{0};
    /** Back pointer to the fpage currently referencing this frame
     *  (set under the fpage lock during init; used by gmunmap). */
    std::atomic<void *> owner{nullptr};
    /** Diff-and-merge (§3.1): frame holding this page's pristine copy,
     *  or kNoFrame. Pristine frames have no fpage owner of their own
     *  and are freed together with the working frame. */
    std::atomic<uint32_t> pristineFrame{kNoFrame};
    /** Prefetch-feedback tag (adaptive read-ahead): set when a
     *  read-ahead batch publishes this page, cleared by the first
     *  application pin (promotion -> ra_hit) or by eviction/drop of
     *  the never-pinned frame (-> ra_wasted). Set under the fpage lock
     *  at publish so a racing pinner always sees it. */
    std::atomic<bool> speculative{false};
    /** Tenant whose fault claimed this frame (quota accounting: the
     *  arena charges allocFor's tenant here and credits it back at
     *  free, so eviction refunds exactly the tenant who faulted the
     *  page). 0 — the default tenant — for every single-tenant path. */
    std::atomic<uint8_t> tenant{0};
    /** Stream slot (ReadAheadStreams index) the publishing read-ahead
     *  batch resolved, or ReadAheadStreams::kNoStream — routes the
     *  frame's promotion/waste feedback back to the stream that
     *  prefetched it. Written under the fpage lock at publish,
     *  together with (and read only after winning) the speculative
     *  tag, so it is stable for whoever clears that tag. */
    std::atomic<uint8_t> raStream{0xFF};

    bool
    isDirty() const
    {
        uint64_t e = dirtyExtent.load(std::memory_order_acquire);
        return extentLo(e) < extentHi(e);
    }

    /**
     * Grow the dirty extent to cover [lo, hi).
     * @return true iff this merge transitioned the page clean->dirty
     *         (exactly one concurrent merger observes it).
     */
    bool
    mergeDirty(uint32_t lo, uint32_t hi)
    {
        uint64_t cur = dirtyExtent.load(std::memory_order_relaxed);
        for (;;) {
            uint32_t nlo = std::min(lo, extentLo(cur));
            uint32_t nhi = std::max(hi, extentHi(cur));
            uint64_t next = packExtent(nlo, nhi);
            if (next == cur)
                return false;   // already covered
            if (dirtyExtent.compare_exchange_weak(
                    cur, next, std::memory_order_acq_rel)) {
                return extentLo(cur) >= extentHi(cur);
            }
        }
    }

    /** Atomically take the dirty extent, leaving the page clean. */
    uint64_t
    takeDirtyExtent()
    {
        return dirtyExtent.exchange(kCleanExtent,
                                    std::memory_order_acq_rel);
    }

    void
    clearDirty()
    {
        dirtyExtent.store(kCleanExtent, std::memory_order_release);
    }
};

/**
 * The raw data array plus its frame metadata and free list.
 * alloc() does NOT page out on exhaustion — paging is policy and lives
 * in GpuFs (it must pick a victim *file*); the arena only hands out and
 * takes back frames.
 */
class FrameArena
{
  public:
    FrameArena(uint64_t cache_bytes, uint64_t page_size);

    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;

    /** @return a free frame index, or kNoFrame if exhausted. */
    uint32_t alloc() { return allocFor(0); }

    /**
     * Tenant-charged allocation: like alloc(), but fails with kNoFrame
     * when @p tenant sits at its frame quota even if free frames
     * remain — the caller's NoSpace path then reclaims within the
     * tenant's own resident set. The granted frame is stamped with the
     * tenant and counted against it until free().
     */
    uint32_t allocFor(TenantId tenant);

    /** Return a frame to the free list, clearing its identity. */
    void free(uint32_t frame);

    /** Frame quota of @p tenant (0 = unlimited, the default). */
    void setTenantQuota(TenantId tenant, uint32_t frames);

    /** Frames currently charged to @p tenant. */
    uint32_t
    tenantPages(TenantId tenant) const
    {
        return tenantUsed_[tenant % kMaxTenants].load(
            std::memory_order_relaxed);
    }

    /** True when @p tenant has a quota and sits at (or above) it. */
    bool
    tenantAtQuota(TenantId tenant) const
    {
        uint32_t q = tenantQuota_[tenant % kMaxTenants];
        return q != 0 && tenantPages(tenant) >= q;
    }

    uint8_t *data(uint32_t frame)
    {
        return raw.data() + static_cast<uint64_t>(frame) * pageSize_;
    }

    PFrame &frame(uint32_t idx) { return frames[idx]; }

    /** Map a pointer into the raw array back to its frame index, or
     *  kNoFrame if the pointer is outside the array. */
    uint32_t frameOf(const void *ptr) const;

    uint64_t pageSize() const { return pageSize_; }
    uint32_t numFrames() const { return static_cast<uint32_t>(frames.size()); }
    uint32_t freeCount() const;

    /** Global access tick: stamps pframe recency for the LRU ablation. */
    uint64_t nextTick() { return tick.fetch_add(1, std::memory_order_relaxed); }

  private:
    uint64_t pageSize_;
    std::vector<uint8_t> raw;
    std::vector<PFrame> frames;
    mutable std::mutex freeMtx;
    std::vector<uint32_t> freeList;
    std::atomic<uint64_t> tick{0};

    /** Per-tenant frame accounting (quota checked at allocFor, charge
     *  refunded at free via the frame's tenant stamp). */
    std::atomic<uint32_t> tenantUsed_[kMaxTenants] = {};
    uint32_t tenantQuota_[kMaxTenants] = {};
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_FRAME_HH
