#include "gpufs/victim.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace gpufs {
namespace core {

VictimCache::VictimCache(uint64_t capacity_pages, uint64_t page_size,
                         StatSet &stats)
    : pageSize_(page_size), capacity_(capacity_pages),
      cntInserts_(stats.counter("vc_inserts")),
      cntHits_(stats.counter("vc_hits")),
      cntMisses_(stats.counter("vc_misses")),
      cntStale_(stats.counter("vc_version_stale")),
      cntEvictions_(stats.counter("vc_evictions"))
{
    gpufs_assert(capacity_pages > 0, "victim cache sized at zero pages");
    pool_.resize(capacity_pages * page_size);
    freeSlots_.reserve(capacity_pages);
    for (uint64_t i = capacity_pages; i-- > 0;)
        freeSlots_.push_back(static_cast<uint32_t>(i));
}

void
VictimCache::eraseLocked(std::unordered_map<uint64_t, Entry>::iterator it)
{
    tenantUsed_[it->second.tenant % kMaxTenants] -= 1;
    freeSlots_.push_back(it->second.slot);
    lru_.erase(it->second.lruPos);
    map_.erase(it);
}

void
VictimCache::setTenantQuota(TenantId tenant, uint64_t quota_pages)
{
    std::lock_guard<std::mutex> lock(mtx_);
    tenantQuota_[tenant % kMaxTenants] = quota_pages;
}

uint64_t
VictimCache::tenantPages(TenantId tenant) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return tenantUsed_[tenant % kMaxTenants];
}

void
VictimCache::insert(uint64_t ino, uint64_t page_idx, uint64_t version,
                    const uint8_t *data, uint32_t valid, Time ready,
                    uint8_t tenant)
{
    if (valid == 0 || valid > pageSize_)
        return;
    const uint8_t t = tenant % kMaxTenants;
    const uint64_t key = keyOf(ino, page_idx);
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        const uint64_t quota = tenantQuota_[t];
        if (quota != 0 && tenantUsed_[t] >= quota) {
            // The demoting tenant is at its victim quota: recycle its
            // OWN least-recent entry — displacing another tenant's
            // pages would let a scan tenant flush the whole tier.
            for (auto lit = lru_.rbegin(); lit != lru_.rend(); ++lit) {
                auto own = map_.find(*lit);
                gpufs_assert(own != map_.end(), "LRU key without entry");
                if (own->second.tenant == t) {
                    eraseLocked(own);
                    cntEvictions_.inc();
                    break;
                }
            }
        }
        if (freeSlots_.empty()) {
            // Capacity: demote the tier's own LRU tail to nothing.
            auto victim = map_.find(lru_.back());
            gpufs_assert(victim != map_.end(), "LRU key without entry");
            eraseLocked(victim);
            cntEvictions_.inc();
        }
        uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        lru_.push_front(key);
        it = map_.emplace(key, Entry{version, slot, valid, ready, t,
                                     lru_.begin()}).first;
        tenantUsed_[t] += 1;
    } else {
        // Re-demotion: newer bytes replace the resident copy (and the
        // occupancy charge moves to the demoting frame's tenant).
        tenantUsed_[it->second.tenant % kMaxTenants] -= 1;
        tenantUsed_[t] += 1;
        it->second.tenant = t;
        it->second.version = version;
        it->second.valid = valid;
        it->second.ready = ready;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    }
    std::memcpy(pool_.data() + uint64_t(it->second.slot) * pageSize_,
                data, valid);
    cntInserts_.inc();
}

bool
VictimCache::probe(uint64_t ino, uint64_t page_idx, uint64_t cur_version,
                   uint8_t *dst, uint64_t expect, Time *ready_out)
{
    if (expect == 0 || expect > pageSize_)
        return false;
    const uint64_t key = keyOf(ino, page_idx);
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        cntMisses_.inc();
        return false;
    }
    if (it->second.version != cur_version) {
        // The host mutated the file since demotion (write-through
        // mirror, journal replay, truncate — every mutation bumps the
        // version): the bytes are unservable at any future version,
        // so reclaim the slot now.
        eraseLocked(it);
        cntStale_.inc();
        return false;
    }
    if (it->second.valid < expect) {
        // Same version but fewer bytes than the current size implies
        // (EOF-tail demotion of a file grown without this page being
        // touched cannot happen — growth bumps the version — so this
        // is a conservative guard, not a hot path).
        cntMisses_.inc();
        return false;
    }
    std::memcpy(dst,
                pool_.data() + uint64_t(it->second.slot) * pageSize_,
                expect);
    if (ready_out)
        *ready_out = std::max(*ready_out, it->second.ready);
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    cntHits_.inc();
    return true;
}

bool
VictimCache::coversRun(uint64_t ino, uint64_t first_idx, unsigned n,
                       uint64_t cur_version, const uint64_t *expect) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (unsigned i = 0; i < n; ++i) {
        if (expect[i] == 0 || expect[i] > pageSize_)
            return false;
        auto it = map_.find(keyOf(ino, first_idx + i));
        if (it == map_.end() || it->second.version != cur_version ||
            it->second.valid < expect[i]) {
            return false;
        }
    }
    return true;
}

void
VictimCache::invalidateRange(uint64_t ino, uint64_t off, uint64_t len)
{
    if (len == 0)
        return;
    const uint64_t first = off / pageSize_;
    const uint64_t last = (off + len - 1) / pageSize_;
    std::lock_guard<std::mutex> lock(mtx_);
    for (uint64_t idx = first; idx <= last; ++idx) {
        auto it = map_.find(keyOf(ino, idx));
        if (it != map_.end())
            eraseLocked(it);
    }
}

void
VictimCache::dropFile(uint64_t ino)
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto it = map_.begin(); it != map_.end();) {
        auto cur = it++;
        if ((cur->first >> 32) == ino)
            eraseLocked(cur);
    }
}

uint64_t
VictimCache::residentPages() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return map_.size();
}

} // namespace core
} // namespace gpufs
