/**
 * @file
 * The GPU-side buffer cache and paging subsystem (§3.4, §4.2).
 *
 * This layer owns everything between the POSIX-like API (GpuFs) and
 * the RPC transport: the raw data array (FrameArena), the per-file
 * radix-tree caches, page pinning and miss handling, sequential
 * read-ahead with batched multi-page fetch, batched dirty write-back
 * (plain, diff-against-zeros, diff-and-merge — coalesced into
 * WritePages RPCs), and frame reclamation under a pluggable
 * EvictionPolicy.
 *
 * The API layer registers one CacheFile per file-table entry and keeps
 * its bookkeeping fields (host fd, size, open/closed state) current;
 * BufferCache never looks at file descriptors, paths, or flag words —
 * which is what makes it constructible and testable without a GpuFs
 * instance. The async write-back flusher (GpufsSystem's thread,
 * GpuFs::backgroundFlushPass) is one client of this seam; the sharded
 * multi-GPU cache is another — an installed ShardMap turns non-owner
 * misses into PeerReadPages RPCs (and batched write-back of non-owner
 * pages into PeerWritePages) through the same claim protocols, while
 * peerCopyResident/peerMirrorResident are the daemon-side window into
 * THIS cache when this GPU is the owner (see ARCHITECTURE.md
 * "Sharded multi-GPU cache").
 */

#ifndef GPUFS_GPUFS_BUFFER_CACHE_HH
#define GPUFS_GPUFS_BUFFER_CACHE_HH

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/stats.hh"
#include "base/status.hh"
#include "gpu/launch.hh"
#include "gpufs/frame.hh"
#include "gpufs/params.hh"
#include "gpufs/radix.hh"
#include "gpufs/readahead.hh"
#include "gpufs/shard.hh"
#include "rpc/queue.hh"

namespace gpufs {
namespace core {

class VictimCache;

/**
 * Per-file state the cache layer operates on. The API layer embeds one
 * in every file-table entry and keeps the bookkeeping fields current;
 * tests may construct them standalone. The policy booleans are derived
 * from the GPUfs open flags by the API layer so this header does not
 * depend on API-level flag encodings.
 */
struct CacheFile {
    /** Adaptive read-ahead: this file's per-stream access-pattern
     *  table and prefetch-feedback state (see readahead.hh). Consulted
     *  at the decision points (readAheadFrom / submitReadAhead) under
     *  no other lock — each consult resolves the requesting block's
     *  stream slot; fed back from promotion (pinPage) and eviction
     *  (FileCache::retireSpeculative) through the stream tag published
     *  frames carry. Reset when the table slot is recycled for a
     *  different file. Declared BEFORE the cache: the FileCache holds
     *  a pointer to this table and its destructor (dropAll of
     *  never-pinned speculative frames) may call back into it, so the
     *  table must outlive the cache under member destruction order. */
    ReadAheadStreams ra;

    /** The radix-tree page cache; null until setupFile(). */
    std::unique_ptr<FileCache> cache;

    /** Host fd write-back RPCs target; -1 when released. Atomic for
     *  the same reason as the policy booleans below: the API layer
     *  rewrites it on (re)open/park under its locks while lock-free
     *  miss paths (read-ahead decision points, split-phase submission)
     *  only probe "is there an fd at all" — a momentarily stale value
     *  is tolerated there (the RPC layer validates fds), but the
     *  access must not be a data race. */
    std::atomic<int> hostFd{-1};

    /** Host inode; 0 until the first open. Shard-map lookups key on it
     *  (host fds are per-GPU, inodes are machine-wide), and peer RPCs
     *  carry it so the daemon can find the file in the OWNER's table. */
    uint64_t ino = 0;

    /** File size as the cache layer may read it (first-open size plus
     *  local writes; read-ahead stops at this bound). */
    std::atomic<uint64_t> size{0};

    /** Host version this cache reflects. The cache's own write-backs
     *  advance it so the GPU never mistakes its writes for remote
     *  modifications (§4.4). */
    std::atomic<uint64_t> version{0};

    // Policy booleans. Atomic because the API layer rewrites them on
    // (re)open under its table lock while reclamation reads them under
    // the paging lock only — eviction tolerates a momentarily stale
    // value (the tiers are heuristics), but the access must not be a
    // data race.
    std::atomic<bool> write{false};   ///< opened with write intent
    std::atomic<bool> wronce{false};  ///< O_GWRONCE: zero pristine (§3.1)
    std::atomic<bool> noSync{false};  ///< O_NOSYNC: never written back
    /** G_GDURABLE: durability means the journal commit record, so
     *  fsync never dedups away the barrier (gmsync contract). */
    std::atomic<bool> durable{false};

    /** Tenant currently holding the file open (from the gopen flag
     *  word; 0 until a tenant-tagged open). New frame claims are
     *  charged to it, RPCs carry it for DRR scheduling, and demotions
     *  charge the FRAME's stamped tenant — the one who faulted the
     *  page — not necessarily this word (a reopen under a different
     *  tenant re-points only future faults). */
    std::atomic<uint8_t> tenant{0};

    /** Parked (closed-table) entry: first eviction tier when clean. */
    std::atomic<bool> closed{false};
    /** Stamp of the close that parked this entry (oldest goes first). */
    uint64_t closeSeq = 0;

    /** Drains of this file currently in flight (flushDirty holds it
     *  across its whole take-RPC-finish loop). A collector makes
     *  dirtyCount() drop to 0 BEFORE its WritePages RPC lands, so fd
     *  release (parkFile, the closed-fd sweep) must treat
     *  "clean but wbInFlight" as still-dirty — closing the host fd
     *  under an in-flight write-back would send the write to a dead
     *  (or worse, recycled) descriptor. */
    std::atomic<uint32_t> wbInFlight{0};

    /** Split-phase fetches (submitPageFetch/submitBatchFetch) whose
     *  RPC has not been collected yet. The claimed pages sit in Init
     *  with their fpage locks held across submission→wait, so they are
     *  invisible to residentPages() — drained-cache collection, entry
     *  recycling and dropPages must treat "fetchInFlight" as resident,
     *  or the daemon's DMA would land in freed frames. */
    std::atomic<uint32_t> fetchInFlight{0};

    /** Host page cache dirtied by our write-backs since the last host
     *  fsync of this file. gfsync and the async flusher's clean-edge
     *  fsync both clear it; both skip the Fsync RPC when it is clear —
     *  which is what coalesces the per-block gfsync bursts (and the
     *  flusher's repeat passes) on a shared file into one host fsync. */
    std::atomic<bool> needsFsync{false};

    /** Async gfsync tokens whose submit-time WritePages rounds did NOT
     *  cover the whole dirty set (gfsync_async submits at most 4
     *  batches split-phase). While nonzero, the background flusher
     *  lifts its per-pass drain cap for this file — adopting the
     *  token's residual dirty range so a huge dirty set drains in the
     *  background instead of synchronously at gwait. */
    std::atomic<uint32_t> fsyncPending{0};

    /** Async request-table ops submitted against this file and not yet
     *  retired by gwait. Wait-after-close is legal, and resolution may
     *  have to REFETCH a page eviction took between submit and wait —
     *  so fd release (parkFile, the closed-fd sweeps) and cache
     *  destruction (drained collection, entry recycling) must treat a
     *  nonzero count like dirty data: keep the fd, keep the cache. */
    std::atomic<uint32_t> opInFlight{0};

};

/**
 * Victim-selection strategy for frame reclamation. reclaim() runs with
 * the paging lock held, on the faulting application block's thread
 * ("pay-as-you-go", §3.4) — policies therefore trade victim quality
 * against the work they burn on that hijacked thread, the trade
 * bench/ablate_eviction quantifies.
 *
 * @p evict(file, allow_dirty, want, frame_hint) reclaims up to
 * @p want frames from one file (handling dirty write-back when
 * @p allow_dirty) and returns the number actually freed. A
 * @p frame_hint other than kNoFrame targets exactly that frame (at
 * most one page, identity-verified); kNoFrame takes the file's pages
 * in FIFO order.
 */
using EvictFn =
    std::function<unsigned(CacheFile &, bool allow_dirty, unsigned want,
                           uint32_t frame_hint)>;

class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Free up to @p want frames from @p files (the attached set, stable
     * while the paging lock is held). @return frames freed.
     */
    virtual unsigned reclaim(const std::vector<CacheFile *> &files,
                             FrameArena &arena, unsigned want,
                             const EvictFn &evict) = 0;
};

/** Instantiate the policy selected by GpuFsParams::evictPolicy. */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(EvictionPolicyKind kind);

/** One gathered write-back extent: @p len bytes at GPU pointer @p data
 *  landing at absolute file offset @p off. Up to rpc::kMaxBatchPages
 *  of these ride one WritePages RPC. */
struct WriteExtent {
    uint64_t off;
    uint32_t len;
    const uint8_t *data;
};

/**
 * One split-phase page fetch in flight (non-blocking I/O core): the
 * pages were claimed under their fpage locks (beginInitBatch protocol,
 * locks HELD until completeFetch publishes or aborts) and the RPC —
 * a single ReadPage or a batched ReadPages — is outstanding in the
 * queue. The init-batch lifetime spans submission→wait instead of one
 * call, which is exactly what lets the submitting block compute while
 * the daemon fills the frames.
 */
struct PendingFetch {
    rpc::RpcSlot *rpcSlot = nullptr;
    uint64_t startIdx = 0;
    unsigned n = 0;                          ///< claimed pages
    bool single = false;                     ///< ReadPage vs ReadPages
    /** Sharded multi-GPU: the RPC went out as PeerReadPages naming a
     *  non-self owner (counter attribution at collection). */
    bool peer = false;
    /** Read-ahead batch: pages publish with the speculative tag and
     *  count into ra_issued at collection (prefetch feedback). */
    bool spec = false;
    /** Stream slot the read-ahead plan resolved (kNoStream for demand
     *  and static-policy batches): stamped into the published frames
     *  and fed to notePublished at collection, so the whole feedback
     *  loop stays per-stream across the split-phase gap. */
    uint8_t specStream = ReadAheadStreams::kNoStream;
    BatchSlot slots[rpc::kMaxBatchPages];
};

/**
 * One split-phase dirty-extent write-back in flight: the extents were
 * atomically taken (takeDirtyBatch protocol, fpage locks HELD until
 * completeFlush) and the WritePages RPC is outstanding. The owning
 * CacheFile's wbInFlight stays elevated until completion so fd release
 * cannot slip under the RPC.
 */
struct PendingFlush {
    rpc::RpcSlot *rpcSlot = nullptr;
    unsigned n = 0;                          ///< extents taken
    bool zeroDiff = false;
    /** Sharded multi-GPU: this batch went out as PeerWritePages toward
     *  @p peerGpu (counter attribution at collection). Split-phase
     *  flushes of sharded files partition each take by page owner into
     *  one PendingFlush per owner, mirroring writeBatchSharded. */
    bool peer = false;
    unsigned peerGpu = 0;
    DirtyExtent ext[rpc::kMaxBatchPages];
};

class BufferCache
{
  public:
    /**
     * @param device    the GPU whose memory backs the frame arena
     * @param rpc_queue transport for page fetch / write-back RPCs
     * @param fs_params cache geometry and policy switches
     * @param stat_set  counter registry (shared with the API layer so
     *                  benchmarks see one namespace)
     */
    BufferCache(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
                const GpuFsParams &fs_params, StatSet &stat_set);
    ~BufferCache();

    BufferCache(const BufferCache &) = delete;
    BufferCache &operator=(const BufferCache &) = delete;

    // ---- file lifecycle ----

    /** Register @p f as a paging candidate. Entries without a live
     *  FileCache are skipped by reclamation, so attaching the whole
     *  file table up front is cheap. */
    void attach(CacheFile &f);

    /** Allocate @p f's FileCache (on open of a fresh entry). */
    void setupFile(CacheFile &f);

    /**
     * Park @p f as closed (cache retained for reuse, §4.1). When the
     * cache holds no dirty data the host fd is surrendered for the
     * caller to release; a dirty cache keeps it so later eviction can
     * still write back (footnote-2 handling). Runs under the paging
     * lock so reclamation's own fd-release sweep cannot interleave.
     * @return the host fd to close, or -1 to keep it.
     */
    int parkFile(CacheFile &f, uint64_t close_seq);

    /**
     * Reopen a parked file: install the fresh host fd and clear the
     * closed mark, atomically with respect to reclamation. @return the
     * fd the entry had kept for dirty pages (-1 if none), which the
     * caller releases once the new claim is established.
     */
    int reopenFile(CacheFile &f, int new_host_fd);

    /**
     * Drop every cached page of @p f without write-back (stale-cache
     * invalidation, truncate, unlink). The FileCache object survives.
     * @return false if any page was pinned (nothing destroyed).
     */
    bool dropPages(CacheFile &f);

    /** dropPages + destroy the FileCache. Asserts nothing is pinned. */
    void destroyFile(CacheFile &f);

    // ---- data plane ----

    /**
     * Pin the page of (f, page_idx), fetching it on a miss and running
     * the paging policy when the arena is exhausted. On success
     * *frame_out is pinned (drop with f.cache->unpin). @p skip_fetch
     * suppresses the host read for pages about to be fully overwritten.
     */
    Status pinPage(gpu::BlockCtx &ctx, CacheFile &f, uint64_t page_idx,
                   uint32_t *frame_out, FPage **fpage_out, bool skip_fetch);

    // ---- write-back ----

    /** Write one page extent back to the host, honouring the file's
     *  merge semantics (zero-diff, diff-and-merge). @return completion
     *  time of the last write. */
    Time writebackExtent(CacheFile &f, uint64_t page_idx,
                         const uint8_t *data, uint32_t lo, uint32_t hi,
                         Time issue, Status *st);

    /**
     * Write back every dirty, unpinned page of @p f whose page index
     * lies in [first_page, last_page). With batchWriteback (default)
     * the dirty extents are coalesced into WritePages RPCs of up to
     * rpc::kMaxBatchPages pages each; extents of pages that fail are
     * restored so a later sync can retry. Advances @p ctx past the
     * last completion. @p pages_out, when non-null, receives the
     * number of pages written back (gfsync, eviction, gftruncate and
     * the async flusher all route through here). @p max_pages caps the
     * drain (dirty eviction flushes only about as many pages as it
     * wants to reclaim, not the whole file).
     * @return first failure status, Ok otherwise.
     */
    Status flushDirty(gpu::BlockCtx &ctx, CacheFile &f,
                      uint64_t first_page = 0,
                      uint64_t last_page = UINT64_MAX,
                      unsigned *pages_out = nullptr,
                      uint64_t max_pages = UINT64_MAX);

    /** gmsync back end: atomically take @p frame's dirty extent and
     *  write it back, restoring the extent on failure so a later sync
     *  can retry. */
    Status syncFrame(gpu::BlockCtx &ctx, CacheFile &f, uint32_t frame);

    // ---- split-phase I/O (non-blocking core) ----

    /**
     * Claim the single missing page @p page_idx and submit its
     * ReadPage RPC without waiting (the demand twin of read-ahead's
     * batches, kept per-page so the sync wrappers preserve the paper's
     * demand-paging RPC pattern). On arena exhaustion runs one
     * reclaim pass and retries once. @return true iff a fetch is now
     * pending in *out; false when the page is resident, in flight,
     * contended, or unallocatable (the caller resolves it with a
     * normal pinPage at wait time).
     */
    bool submitPageFetch(gpu::BlockCtx &ctx, CacheFile &f,
                         uint64_t page_idx, PendingFetch *out);

    /**
     * Claim up to @p max_n contiguous missing pages from @p start_idx
     * and submit ONE ReadPages RPC for the run without waiting
     * (vectored reads feed their multi-extent spans through here).
     * @return pages claimed (0 if the head of the run is not
     * claimable).
     */
    unsigned submitBatchFetch(gpu::BlockCtx &ctx, CacheFile &f,
                              uint64_t start_idx, unsigned max_n,
                              PendingFetch *out);

    /**
     * Split-phase read-ahead from a demand miss covering pages
     * [run_first, run_last] (one page for the per-page path, the whole
     * run for vectored demand batches — the tracker needs the run head
     * to judge sequential continuation): consults the read-ahead
     * policy (static window, or the file's adaptive tracker), claims
     * runs of missing pages in the granted window and submits their
     * ReadPages RPCs, appending up to @p max_fetches entries to
     * @p out. Unlike readAheadFrom the RPCs stay in flight — the async
     * request table collects them at gwait. Non-unit strides prefetch
     * one page per RPC (the gaps must not be fetched). @return fetches
     * submitted.
     */
    unsigned submitReadAhead(gpu::BlockCtx &ctx, CacheFile &f,
                             uint64_t run_first, uint64_t run_last,
                             PendingFetch *out, unsigned max_fetches);

    /**
     * Collect one split-phase fetch: wait out the RPC, publish the
     * pages (valid byte counts + shared DMA-completion readyTime,
     * locks released, pages Ready but NOT pinned) or roll the claim
     * back to Empty on failure. Safe from any thread; charges no
     * block clock — pinners pay via readyTime, as with read-ahead.
     * @return the RPC's status.
     */
    Status completeFetch(CacheFile &f, PendingFetch &pf);

    /**
     * Split-phase gfsync front half: take up to @p max_batches batches
     * of dirty extents of @p f in [first_page, last_page) and submit
     * their WritePages RPCs without waiting. Only on the batched,
     * non-diff-merge path (callers fall back to a synchronous
     * flushDirty at wait time otherwise — completeFlush + a residual
     * flushDirty is always correct). Sharded files partition each take
     * by page owner — self-owned extents ride WritePages, each peer
     * owner's one PeerWritePages — consuming one output slot per
     * partition, so the async rounds drain through the same
     * owner-partitioned routing as the wait-time flushDirty. Each
     * pending batch elevates f.wbInFlight until its completeFlush.
     * @return batches submitted.
     */
    unsigned submitFlush(gpu::BlockCtx &ctx, CacheFile &f,
                         uint64_t first_page, uint64_t last_page,
                         PendingFlush *out, unsigned max_batches);

    /** Collect one split-phase write-back: wait out the RPC, release
     *  the extents (restored for retry on failure), update the file
     *  version. *done_out maxes with the RPC's virtual completion so
     *  the syncing block can advance its clock past the write.
     *  @return the RPC's status. */
    Status completeFlush(CacheFile &f, PendingFlush &pf,
                         Time *done_out = nullptr);

    // ---- paging ----

    /** "No tenant" sentinel for reclaimFrames: global reclaim. */
    static constexpr uint8_t kAnyTenant = 0xFF;

    /**
     * Free at least @p want frames by running the eviction policy over
     * the attached files. Runs on the calling block's thread. When
     * @p tenant names a tenant sitting at its frame quota, the policy
     * runs over only that tenant's files — eviction WITHIN the quota,
     * so a capped tenant's fault pressure never displaces other
     * tenants' resident pages. @return frames freed.
     */
    unsigned reclaimFrames(gpu::BlockCtx &ctx, unsigned want,
                           uint8_t tenant = kAnyTenant);

    /** Release a closed file's host fd (and with it the host-side
     *  consistency claim) once its cache holds no dirty data. */
    void maybeReleaseClosedFd(gpu::BlockCtx &ctx, CacheFile &f);

    // ---- sharded multi-GPU cache ----

    /**
     * Install the machine-wide shard map (GpufsSystem wiring; null =
     * private caching, the default for standalone instances). After
     * this, a miss on a page another GPU owns goes out as a
     * PeerReadPages RPC and batched write-back of such pages as
     * PeerWritePages — both through the SAME claim protocols
     * (beginInitBatch / takeDirtyBatch spanning submission→wait) as
     * the host ops they shadow.
     */
    void setShardMap(const ShardMap *map) { shards_ = map; }
    const ShardMap *shardMap() const { return shards_; }

    /**
     * Install the machine-wide host-RAM victim tier (GpufsSystem
     * wiring; null = demotion off, the default). After this, eviction
     * of clean pages — and of dirty pages once their write-back has
     * landed — copies the frame's bytes into the tier (one D2H charge
     * on SimContext::hostStage) instead of just dropping them; the
     * daemon probes the same tier before the storage backend.
     */
    void setVictimCache(VictimCache *v) { victim_ = v; }
    VictimCache *victimCache() const { return victim_; }

    /** True when @p f's pages carry diff-and-merge semantics: they
     *  must snapshot a pristine copy under the fetching pin, which
     *  excludes them from every batch-published path (split-phase
     *  demand, read-ahead) and from the batched write-back. */
    bool
    diffMergeActive(const CacheFile &f) const
    {
        return params_.enableDiffMerge && f.write && !f.wronce &&
            !f.noSync;
    }

    /** True when @p f participates in sharding: an active map and a
     *  plainly host-backed file (wronce pages are zero-pristine and
     *  never fetched, NOSYNC temps are GPU-local, diff-merge pages
     *  must diff against GPU-side pristine copies). */
    bool
    shardedFile(const CacheFile &f) const
    {
        return shards_ && shards_->active() && !f.wronce && !f.noSync &&
            !(params_.enableDiffMerge && f.write);
    }

    /** Owner GPU of (f, page_idx); self when not sharded. */
    unsigned
    pageOwner(const CacheFile &f, uint64_t page_idx) const
    {
        return shardedFile(f) ? shards_->ownerOf(f.ino, page_idx)
                              : selfGpu();
    }

    /**
     * Daemon-side peer probe: copy page @p page_idx of @p f into
     * @p dst iff it is resident, Ready and CLEAN (dirty pages differ
     * from the host; declining is the baseline behavior). The frame is
     * pinned across the copy so owner-side eviction cannot recycle it
     * mid-transfer; *ready_out maxes with the frame's DMA-ready time.
     * Declines pages whose valid byte count does not match the file
     * size (locally-written pages track content through the dirty
     * extent, not validBytes — the host copy is authoritative).
     */
    bool peerCopyResident(CacheFile &f, uint64_t page_idx, uint8_t *dst,
                          uint32_t *valid_out, Time *ready_out);

    /** Daemon-side mirror of a written extent into a resident, Ready
     *  page (see RpcOp::PeerWritePages). Does NOT mark the page dirty:
     *  the same bytes land on the host through the enclosing RPC, so
     *  the mirrored copy matches the post-write host content. */
    bool peerMirrorResident(CacheFile &f, uint64_t page_idx,
                            uint32_t in_page, const uint8_t *src,
                            uint32_t len);

    /**
     * Daemon-side owner warming: adopt the bytes a PeerReadPages host
     * fallback just read for a page THIS GPU owns, so the next peer
     * miss on it forwards from these frames instead of re-paying the
     * storage round trip. Declines rather than perturb anything: no
     * reclaim is run (free frames above the claim reserve only), the
     * page must be Empty and uncontended, and @p tenant — the faulting
     * requester's tenant — must be under its frame quota here too.
     */
    bool peerAdoptResident(CacheFile &f, uint64_t page_idx,
                           const uint8_t *src, uint32_t valid,
                           Time ready, uint8_t tenant);

    // ---- read-ahead policy ----

    /** True when the adaptive tracker drives the window: Adaptive
     *  policy with no static override (readAheadPages == 0). */
    bool
    adaptiveReadAhead() const
    {
        return params_.readAheadPages == 0 &&
            params_.readAheadPolicy == ReadAheadPolicy::Adaptive;
    }

    /** True when any read-ahead can be issued at all (miss paths gate
     *  their readAheadFrom / submitReadAhead calls on this). */
    bool
    readAheadEnabled() const
    {
        return params_.readAheadPages > 0 || adaptiveReadAhead();
    }

    /** Frames split-phase submission (and read-ahead) must leave free
     *  or reclaimable for synchronous pins: claims are unreclaimable
     *  until collected, so a claim storm must not exhaust the arena.
     *  Scales down for small arenas where reclaimBatch would forbid
     *  claiming at all. Public: benches/tests assert the speculative
     *  occupancy cap against it. */
    uint32_t
    claimReserve() const
    {
        return std::max<uint32_t>(
            1, std::min<uint32_t>(params_.reclaimBatch,
                                  arena_.numFrames() / 4));
    }

    // ---- introspection ----
    FrameArena &arena() { return arena_; }
    EvictionPolicy &policy() { return *policy_; }
    const GpuFsParams &params() const { return params_; }
    unsigned selfGpu() const { return dev.id(); }

    /** True iff the calling thread holds the paging lock. The API
     *  layer asserts this is false before taking its table lock, which
     *  is how the tableMtx -> pagingMtx lock order stays enforced
     *  rather than documented. */
    bool
    pagingLockHeldByCaller() const
    {
        return pagingOwner_.load(std::memory_order_relaxed) ==
            std::this_thread::get_id();
    }

  private:
    gpu::GpuDevice &dev;
    rpc::RpcQueue &queue;
    GpuFsParams params_;
    FrameArena arena_;
    std::unique_ptr<EvictionPolicy> policy_;
    /** Machine-wide page -> owner-GPU map; null = private caching. */
    const ShardMap *shards_ = nullptr;
    /** Machine-wide host-RAM victim tier; null = demotion off. */
    VictimCache *victim_ = nullptr;

    /** Guards the attached set and serializes reclamation passes; also
     *  excludes FileCache creation/destruction against a concurrent
     *  reclaim walking the same entries. Callers holding the API
     *  layer's table lock may take this after it, never the reverse
     *  (see pagingLockHeldByCaller). */
    std::mutex pagingMtx;
    /** Thread currently inside pagingMtx (lock-order assertions). */
    std::atomic<std::thread::id> pagingOwner_{};
    std::vector<CacheFile *> attached_;

    /** pagingMtx RAII that also publishes the owner thread. */
    struct PagingGuard {
        explicit PagingGuard(BufferCache &bc) : bc_(bc)
        {
            bc_.pagingMtx.lock();
            bc_.pagingOwner_.store(std::this_thread::get_id(),
                                   std::memory_order_relaxed);
        }
        ~PagingGuard()
        {
            bc_.pagingOwner_.store(std::thread::id{},
                                   std::memory_order_relaxed);
            bc_.pagingMtx.unlock();
        }
        PagingGuard(const PagingGuard &) = delete;
        PagingGuard &operator=(const PagingGuard &) = delete;
        BufferCache &bc_;
    };

    Counter &cntCacheHits;
    Counter &cntCacheMisses;
    Counter &cntLockfree;
    Counter &cntLocked;
    Counter &cntReadRpcs;
    Counter &cntBatchReadRpcs;
    Counter &cntBatchPages;
    Counter &cntWriteRpcs;
    Counter &cntBatchWriteRpcs;
    Counter &cntBatchWritePages;
    Counter &cntPeerReadRpcs;
    Counter &cntPeerPagesForwarded;
    Counter &cntPeerPagesFallback;
    Counter &cntPeerWriteRpcs;
    Counter &cntPeerExtentsMirrored;
    // Adaptive read-ahead feedback: pages published speculatively,
    // ghost-ring hits (ra_hit / ra_wasted live in cacheCounters_ —
    // promotion and eviction run inside the radix layer).
    Counter &cntRaIssued;
    Counter &cntRaGhostHits;
    /** Per-stream read-ahead signals: high-water of any one file's
     *  concurrently-active streams, and live-slot LRU recycles summed
     *  across files (both updated at the decision points). */
    Counter &cntRaStreamsActive;
    Counter &cntRaStreamRecycles;
    CacheCounters cacheCounters_;

    static CacheCounters cacheCounters(StatSet &stat_set);

    /** Fetch one page's content from the host (or zero-fill). */
    Status fetchPage(gpu::BlockCtx &ctx, CacheFile &f, uint64_t page_idx,
                     uint8_t *data, uint32_t *valid, Time *done);

    /**
     * Resolve the read-ahead window for a demand miss on pages
     * [run_first, run_last] of @p f: the static window when
     * readAheadPages is set, the requesting block's stream in the
     * file's adaptive table otherwise (which this call advances —
     * exactly one plan per miss; @p stream_key is the block id the
     * stream resolution keys on). A window of 0 means no prefetch.
     * The returned Decision carries the resolved stream slot for the
     * batch's feedback tags.
     */
    ReadAheadStreams::Decision planReadAhead(CacheFile &f,
                                             uint64_t stream_key,
                                             uint64_t run_first,
                                             uint64_t run_last);

    /** Clip a batch run starting at @p start_idx to its shard group so
     *  one batched RPC never spans two owners (no-op when private). */
    unsigned
    shardRunCap(const CacheFile &f, uint64_t start_idx,
                unsigned max_n) const
    {
        if (!shardedFile(f))
            return max_n;
        uint64_t end = shards_->groupEnd(start_idx);
        return static_cast<unsigned>(
            std::min<uint64_t>(max_n, end - start_idx));
    }

    /** Issue one PeerWritePages RPC carrying @p n gathered extents of
     *  @p f toward @p owner_gpu (host write-through + owner mirror;
     *  see the op's contract). @p base_version gates the owner-side
     *  mirror; @p publish permits the post-write version publish
     *  (single-partition flushes only). Updates f.version /
     *  needsFsync like writeExtentsRpc. */
    Status peerWriteExtentsRpc(CacheFile &f, unsigned owner_gpu,
                               const WriteExtent *ext, unsigned n,
                               uint64_t base_version, bool publish,
                               Time issue, Time *done_out);

    /** Batched write-back dispatch: partition @p n taken extents by
     *  page owner and issue one WritePages (self/host) or
     *  PeerWritePages (each peer owner) RPC per partition.
     *  @p ext_failed (size n, may be null) marks the extents of
     *  partitions whose RPC failed, so the caller restores exactly
     *  those — already-durable siblings must not be re-marked dirty.
     *  @return first failure. */
    Status writeBatchSharded(CacheFile &f, const DirtyExtent *ext,
                             unsigned n, Time issue, Time *done_out,
                             bool *ext_failed = nullptr);

    /** Read-ahead from a miss at @p page_idx (policy-decided window,
     *  see planReadAhead): coalesces runs of missing pages into
     *  batched ReadPages RPCs, published speculative. */
    void readAheadFrom(gpu::BlockCtx &ctx, CacheFile &f, uint64_t page_idx);

    /** Issue one batched fetch for @p n already-claimed slots starting
     *  at @p start_idx and wait it out; @p spec marks a read-ahead
     *  batch (speculative publish, tagged with @p stream). @return
     *  false on RPC failure (slots aborted). */
    bool fetchBatch(gpu::BlockCtx &ctx, CacheFile &f, uint64_t start_idx,
                    const BatchSlot *slots, unsigned n, bool spec,
                    uint8_t stream = ReadAheadStreams::kNoStream);

    /**
     * Build and submit the RPC for a PendingFetch whose slots are
     * already claimed (shared by the sync and split-phase paths);
     * elevates f.fetchInFlight until completeFetch. @p blocking
     * callers (the synchronous fetch path — they hold no uncollected
     * slots) may wait for a queue slot; split-phase callers must not
     * (deadlock cycle, see RpcQueue::trySubmit) — for them a full
     * queue aborts the claim. @return false iff aborted.
     */
    bool submitClaimedFetch(gpu::BlockCtx &ctx, CacheFile &f,
                            PendingFetch &pf, bool blocking);

    /** Issue one WritePages RPC carrying @p n gathered extents of @p f
     *  (one CPU-slot charge, one D2H DMA reservation, one pwritev on
     *  the host). Updates f.version on success. *done_out receives the
     *  completion time. */
    Status writeExtentsRpc(CacheFile &f, const WriteExtent *ext,
                           unsigned n, bool zero_diff, Time issue,
                           Time *done_out);

    /** Legacy per-page flush (batchWriteback off, or diff-and-merge
     *  files, whose extents must diff against GPU-side pristine
     *  copies). Honors the same @p max_pages cap as the batched
     *  path. */
    Status flushDirtyPerPage(gpu::BlockCtx &ctx, CacheFile &f,
                             uint64_t first_page, uint64_t last_page,
                             unsigned *pages_out, uint64_t max_pages);

    void maybeReleaseClosedFdLocked(gpu::BlockCtx &ctx, CacheFile &f);
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_BUFFER_CACHE_HH
