/**
 * @file
 * GpuFs: the GPU-side file system library (§3, §4).
 *
 * One instance per GPU device, linked into the "kernel" the way the
 * paper's library is linked into application GPU code. All API calls
 * are invoked at threadblock granularity: every thread of a block
 * calls with the same arguments at the same point, which the block-
 * level BlockCtx makes structural.
 *
 * This class is the POSIX-like API layer only: the open/closed file
 * table, flag semantics, and stat bookkeeping. All paging machinery —
 * the frame arena, per-file page caches, miss handling, read-ahead,
 * write-back, and eviction policy — lives one layer down in
 * core::BufferCache (buffer_cache.hh).
 *
 * Deviations from POSIX follow the paper exactly (Table 1):
 *  - gread/gwrite take explicit offsets (pread/pwrite semantics; file
 *    descriptors have no seek pointer);
 *  - gclose does not synchronize: dirty data reaches the host only via
 *    gfsync/gmsync, or when the buffer cache evicts dirty pages;
 *  - gmmap may map only a prefix of the request, never guarantees a
 *    fixed address, and may return writable memory for a read-only
 *    mapping (improper updates are never propagated back);
 *  - O_GWRONCE write-once semantics: pages are implicitly
 *    zero-pristine, write-back diffs against zeros;
 *  - O_NOSYNC temp files are never written back to the host.
 */

#ifndef GPUFS_GPUFS_GPUFS_HH
#define GPUFS_GPUFS_GPUFS_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/status.hh"
#include "gpu/launch.hh"
#include "gpufs/buffer_cache.hh"
#include "gpufs/file_table.hh"
#include "gpufs/params.hh"
#include "rpc/queue.hh"

namespace gpufs {
namespace core {

class GpuFs
{
  public:
    /**
     * @param device  the GPU this library instance runs on
     * @param rpc_queue this GPU's request queue to the host daemon
     * @param fs_params cache geometry and policy switches
     */
    GpuFs(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
          const GpuFsParams &fs_params = GpuFsParams{});
    ~GpuFs();

    GpuFs(const GpuFs &) = delete;
    GpuFs &operator=(const GpuFs &) = delete;

    // ---- API (Table 1) ----

    /** Open @p path. @return fd >= 0, or -(int)Status on error. */
    int gopen(gpu::BlockCtx &ctx, const std::string &path, uint32_t flags);

    /** Close. Does NOT synchronize dirty data (decoupled, §3.2). */
    Status gclose(gpu::BlockCtx &ctx, int fd);

    /** pread-style read. @return bytes read, or -(int)Status. */
    int64_t gread(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                  void *dst);

    /** pwrite-style write. @return bytes written, or -(int)Status. */
    int64_t gwrite(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                   const void *src);

    /** Synchronously write back all dirty pages of @p fd that are not
     *  mapped or concurrently accessed. */
    Status
    gfsync(gpu::BlockCtx &ctx, int fd)
    {
        return gfsyncRange(ctx, fd, 0, UINT64_MAX);
    }

    /** Range variant (§3.2: applications may "synchronize either an
     *  entire file or a specific offset range"). Pages intersecting
     *  [offset, offset+len) are written back. */
    Status gfsyncRange(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                       uint64_t len);

    /**
     * Map a file region into GPU memory. May map only a prefix: the
     * returned pointer covers *mapped_len <= len bytes, never crossing
     * a buffer-cache page. @return pointer or nullptr on error.
     */
    void *gmmap(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                uint64_t *mapped_len, Status *st = nullptr);

    /** Unmap a pointer obtained from gmmap. */
    Status gmunmap(gpu::BlockCtx &ctx, void *ptr);

    /** Write back the (dirty part of the) page backing @p ptr. The
     *  application must coordinate with updates by other blocks. */
    Status gmsync(gpu::BlockCtx &ctx, void *ptr);

    /** Remove a file; local buffer space is reclaimed immediately. */
    Status gunlink(gpu::BlockCtx &ctx, const std::string &path);

    /** File metadata; size is the first-gopen size (+local writes). */
    Status gfstat(gpu::BlockCtx &ctx, int fd, GStat *out);

    /** Truncate and reclaim affected cached pages. */
    Status gftruncate(gpu::BlockCtx &ctx, int fd, uint64_t new_size);

    // ---- background write-back (async flusher) ----

    /**
     * One drain pass of the async write-back daemon (§3.3), called
     * periodically from the host-side flusher thread GpufsSystem owns:
     * write back every entry's dirty pages through the batched
     * BufferCache::flushDirty, release host fds of closed files whose
     * last dirty page just went home, and eagerly destroy closed-file
     * caches eviction has fully drained (instead of waiting for the
     * next gopen slow path). Runs under tableMtx -> pagingMtx, the
     * same lock discipline as the API calls it races with.
     *
     * @param start_time  the flusher's virtual clock (persisted across
     *                    passes by the caller)
     * @return the clock after the pass (max write-back completion)
     */
    Time backgroundFlushPass(Time start_time);

    // ---- introspection ----
    const GpuFsParams &params() const { return params_; }
    StatSet &stats() { return stats_; }
    gpu::GpuDevice &device() { return dev; }
    BufferCache &bufferCache() { return bc_; }
    FrameArena &arena() { return bc_.arena(); }

    /** Open + closed entries currently holding a host fd (tests). */
    unsigned hostFdsHeld() const;

  private:
    gpu::GpuDevice &dev;
    rpc::RpcQueue &queue;
    GpuFsParams params_;
    StatSet stats_;
    BufferCache bc_;

    mutable std::mutex tableMtx;
    FileTable table_;
    uint64_t closeCounter = 0;

    // Counters (registered once; fast paths use references).
    Counter &cntOpens;
    Counter &cntOpenRpcs;
    Counter &cntCloses;
    Counter &cntInvalidations;
    Counter &cntBytesRead;
    Counter &cntBytesWritten;
    Counter &cntFlusherPages;
    Counter &cntFlusherDrains;
    Counter &cntDrainedCollected;

    /**
     * Take the table lock, asserting the paging lock is not already
     * held by this thread — the tableMtx -> pagingMtx order is
     * enforced here rather than documented (a reclaim or flush path
     * re-entering the API layer would deadlock against a gopen).
     */
    std::unique_lock<std::mutex>
    lockTable() const
    {
        gpufs_assert(!bc_.pagingLockHeldByCaller(),
                     "lock-order inversion: pagingMtx held before "
                     "tableMtx");
        return std::unique_lock<std::mutex>(tableMtx);
    }

    /** Validate fd and return its entry (nullptr + status otherwise). */
    OpenFile *
    entryOf(int fd, Status *st)
    {
        OpenFile *e = table_.openEntry(fd);
        if (!e && st)
            *st = Status::BadFd;
        return e;
    }

    /** Synchronous RPC from this block (submit, wait, advance clock). */
    rpc::RpcResponse rpcCall(gpu::BlockCtx &ctx, rpc::RpcRequest &req);

    /** Close @p host_fd on the host (gopen/gclose bookkeeping). */
    void
    closeHostFd(gpu::BlockCtx &ctx, int host_fd)
    {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = host_fd;
        rpcCall(ctx, req);
    }

    /** Destroy an entry's cache and release its fd (table lock held). */
    void destroyEntryLocked(gpu::BlockCtx &ctx, OpenFile &entry);

    /** Free slot, recycling the oldest closed entry if needed. */
    int allocEntryLocked(gpu::BlockCtx &ctx);
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_GPUFS_HH
