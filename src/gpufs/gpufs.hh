/**
 * @file
 * GpuFs: the GPU-side file system library (§3, §4).
 *
 * One instance per GPU device, linked into the "kernel" the way the
 * paper's library is linked into application GPU code. All API calls
 * are invoked at threadblock granularity: every thread of a block
 * calls with the same arguments at the same point, which the block-
 * level BlockCtx makes structural.
 *
 * This class is the POSIX-like API layer only: the open/closed file
 * table, flag semantics, and stat bookkeeping. All paging machinery —
 * the frame arena, per-file page caches, miss handling, read-ahead,
 * write-back, and eviction policy — lives one layer down in
 * core::BufferCache (buffer_cache.hh).
 *
 * Deviations from POSIX follow the paper exactly (Table 1):
 *  - gread/gwrite take explicit offsets (pread/pwrite semantics; file
 *    descriptors have no seek pointer);
 *  - gclose does not synchronize: dirty data reaches the host only via
 *    gfsync/gmsync, or when the buffer cache evicts dirty pages;
 *  - gmmap may map only a prefix of the request, never guarantees a
 *    fixed address, and may return writable memory for a read-only
 *    mapping (improper updates are never propagated back);
 *  - O_GWRONCE write-once semantics: pages are implicitly
 *    zero-pristine, write-back diffs against zeros;
 *  - O_NOSYNC temp files are never written back to the host.
 *
 * Non-blocking I/O core. The Table-1 calls are thin submit+wait
 * wrappers over an asynchronous request layer: gread_async /
 * gwrite_async / gfsync_async submit work and return an IoToken
 * immediately; gwait collects one token (and with it the operation's
 * result), gwait_all drains every token the calling block holds. A
 * block may therefore overlap its OWN compute with its OWN I/O —
 * double-buffering a streaming scan (examples/double_buffer.cpp,
 * bench/fig_async_overlap.cc) instead of relying on other blocks to
 * hide host round-trips. Completions are delivered out of order:
 * tokens may be waited in any order, but every token MUST eventually
 * be waited by the block that submitted it (an unwaited token keeps
 * its pages claimed, which stalls other blocks touching them).
 * Vectored greadv/gwritev feed multi-extent requests straight into
 * the batched ReadPages/WritePages RPCs.
 *
 * Error-return convention: calls that return a count (gopen, gread,
 * gwrite, greadv, gwritev, gwait) encode failure as -(int)Status —
 * decode with gstatus_of()/gok() below. Calls that return Status
 * report it directly; gmmap, whose success value is a pointer, is the
 * one exception and reports through a Status out-parameter.
 */

#ifndef GPUFS_GPUFS_GPUFS_HH
#define GPUFS_GPUFS_GPUFS_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/status.hh"
#include "gpu/launch.hh"
#include "gpufs/buffer_cache.hh"
#include "gpufs/file_table.hh"
#include "gpufs/params.hh"
#include "rpc/peer.hh"
#include "rpc/queue.hh"

namespace gpufs {
namespace core {

/** Decode the negative-errno convention of count-returning calls:
 *  Status::Ok for rc >= 0, the encoded Status otherwise. */
constexpr Status
gstatus_of(int64_t rc)
{
    return rc < 0 ? static_cast<Status>(-rc) : Status::Ok;
}

/** True iff a count-returning call (gopen/gread/gwrite/gwait/...)
 *  succeeded. */
constexpr bool
gok(int64_t rc)
{
    return rc >= 0;
}

/**
 * Opaque handle to one in-flight asynchronous request. Obtained from
 * gread_async/gwrite_async/gfsync_async (and their vectored forms),
 * redeemed exactly once by gwait — a second wait, a stale token, or a
 * wait from a different block returns -Status::Inval. Submission-time
 * failures (bad fd, wrong access mode, in-flight cap) still yield a
 * valid token whose gwait reports the error, so the sync wrappers
 * return exactly what the pre-async API did.
 */
struct IoToken {
    static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;
    uint32_t id = kInvalidId;
    uint32_t gen = 0;

    bool valid() const { return id != kInvalidId; }
};

/** One extent of a vectored greadv/gwritev request: @p len bytes at
 *  absolute file offset @p offset, read into / written from @p buf. */
struct GIoVec {
    uint64_t offset;
    uint64_t len;
    void *buf;
};

/**
 * One slot of the in-flight request table (see gread_async). Owned by
 * the submitting block between submit and wait: it records the
 * request's segments (page-granular pieces of the user buffer), the
 * split-phase fetches/flushes whose claims span submission→wait, and
 * the clock charges (demand-fetched page count) the block pays when
 * it collects.
 */
struct AsyncIoOp {
    enum class Kind : uint8_t { None, Read, Write, Fsync };

    Kind kind = Kind::None;
    bool active = false;
    uint32_t gen = 1;           ///< must match the redeeming token
    unsigned blockId = 0;
    int fd = -1;
    OpenFile *entry = nullptr;  ///< stable: the table never deallocates
    Status immediate = Status::Ok;  ///< submission-time failure
    int64_t result = 0;             ///< bytes (precomputed for no-ops)

    /** One page-granular piece of the request. */
    struct Seg {
        uint64_t pageIdx;
        uint32_t inPage;    ///< first byte within the page
        uint32_t n;         ///< bytes
        uint8_t *buf;       ///< user-buffer cursor for this piece
    };
    std::vector<Seg> segs;
    uint64_t endOff = 0;        ///< max extent end (write size growth)

    /** Pages this op demand-fetched split-phase: the per-page map
     *  overhead (charged by the sync path inside pinPage) is paid for
     *  them at wait time. */
    unsigned demandPages = 0;

    uint64_t syncFirstPage = 0;     ///< Fsync range
    uint64_t syncLastPage = 0;
    /** Fsync whose submit-time batches left a residual dirty range:
     *  the file's fsyncPending stays elevated (flusher adoption) until
     *  this op retires. */
    bool fsyncAdopt = false;

    std::vector<PendingFetch> fetches;
    std::vector<PendingFlush> flushes;
    Status flushStatus = Status::Ok;
    Time flushDone = 0;
};

class GpuFs : public rpc::PeerPageSource
{
  public:
    /**
     * @param device  the GPU this library instance runs on
     * @param rpc_queue this GPU's request queue to the host daemon
     * @param fs_params cache geometry and policy switches
     */
    GpuFs(gpu::GpuDevice &device, rpc::RpcQueue &rpc_queue,
          const GpuFsParams &fs_params = GpuFsParams{});
    ~GpuFs();

    GpuFs(const GpuFs &) = delete;
    GpuFs &operator=(const GpuFs &) = delete;

    // ---- sharded multi-GPU cache ----

    /** Install the machine-wide shard map (GpufsSystem wiring). */
    void setShardMap(const ShardMap *map) { bc_.setShardMap(map); }

    /**
     * Collect every never-waited async submission's in-flight RPCs.
     * GpufsSystem runs this on EVERY instance before destroying ANY of
     * them: an uncollected PeerReadPages of one GPU targets frames (and
     * a peer source) of another, so teardown must quiesce the whole
     * topology first. Callers guarantee no GPU blocks are running.
     */
    void quiesce();

    /**
     * rpc::PeerPageSource — the daemon's window into this GPU's cache
     * for servicing peer ops named at this GPU. Daemon-thread context:
     * all three use try-locks only and decline on any contention or
     * version mismatch (the host path is the always-correct fallback).
     */
    bool peerCopyPage(uint64_t ino, uint64_t page_idx, uint64_t version,
                      uint8_t *dst, uint32_t *valid_out,
                      Time *ready_out) override;
    bool peerMirrorExtent(uint64_t ino, uint64_t page_idx,
                          uint64_t version, uint32_t in_page,
                          const uint8_t *src, uint32_t len) override;
    void peerPublishVersion(uint64_t ino, uint64_t old_version,
                            uint64_t new_version) override;
    bool peerAdoptPage(uint64_t ino, uint64_t page_idx, uint64_t version,
                       const uint8_t *data, uint32_t valid, Time ready,
                       uint8_t tenant) override;

    // ---- API (Table 1) ----

    /** Open @p path. @return fd >= 0, or -(int)Status on error. */
    int gopen(gpu::BlockCtx &ctx, const std::string &path, uint32_t flags);

    /** Close. Does NOT synchronize dirty data (decoupled, §3.2). */
    Status gclose(gpu::BlockCtx &ctx, int fd);

    /** pread-style read. @return bytes read, or -(int)Status.
     *  (Submit+wait wrapper over the async core; preserves the
     *  demand-paging RPC pattern page for page.) */
    int64_t gread(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                  void *dst);

    /** pwrite-style write. @return bytes written, or -(int)Status.
     *  (Submit+wait wrapper over the async core.) */
    int64_t gwrite(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                   const void *src);

    // ---- non-blocking I/O core ----

    /**
     * Submit a pread-style read and return immediately: missing pages
     * are claimed and their fetch RPCs go to the daemon split-phase,
     * so the block can compute while the DMA lands. The data is
     * materialized into @p dst when the token is waited; @p dst must
     * stay valid until then. gwait returns bytes read or -(int)Status.
     */
    IoToken gread_async(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                        uint64_t len, void *dst);

    /**
     * Submit a pwrite-style write. Partially-overwritten uncached
     * pages start their read-modify-write fetch split-phase at submit;
     * the bytes of @p src are copied into the cache (and become
     * visible to gfsync and other blocks) when the token is waited.
     * @p src must stay valid until then.
     */
    IoToken gwrite_async(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                         uint64_t len, const void *src);

    /** Vectored forms: every extent of @p iov feeds one request whose
     *  missing-page runs coalesce straight into batched ReadPages /
     *  WritePages RPCs. gwait returns total bytes or -(int)Status. */
    IoToken greadv_async(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                         unsigned iovcnt);
    IoToken gwritev_async(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                          unsigned iovcnt);

    /** Submit a full-file sync: the first rounds of WritePages batches
     *  go to the daemon split-phase; the residual drain, the
     *  durability barrier and the (deduplicated) host fsync run when
     *  the token is waited. gwait returns 0 or -(int)Status. */
    IoToken gfsync_async(gpu::BlockCtx &ctx, int fd);

    /**
     * Collect one token: completes the operation (waits out its RPCs,
     * materializes read data, publishes write data, pays the clock
     * charges) and retires it. @return the operation's result — bytes
     * for reads/writes, 0 for syncs — or -(int)Status; a stale,
     * reused, or foreign token returns -(int)Status::Inval.
     */
    int64_t gwait(gpu::BlockCtx &ctx, IoToken token);

    /** Collect every outstanding token of the calling block — all of
     *  them for @p fd < 0, else those on @p fd. @return first error. */
    Status gwait_all(gpu::BlockCtx &ctx, int fd = -1);

    /** Vectored synchronous wrappers (submit+wait). @return total
     *  bytes, or -(int)Status. */
    int64_t greadv(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                   unsigned iovcnt);
    int64_t gwritev(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                    unsigned iovcnt);

    /** Synchronously write back all dirty pages of @p fd that are not
     *  mapped or concurrently accessed. */
    Status
    gfsync(gpu::BlockCtx &ctx, int fd)
    {
        return gfsyncRange(ctx, fd, 0, UINT64_MAX);
    }

    /** Range variant (§3.2: applications may "synchronize either an
     *  entire file or a specific offset range"). Pages intersecting
     *  [offset, offset+len) are written back. */
    Status gfsyncRange(gpu::BlockCtx &ctx, int fd, uint64_t offset,
                       uint64_t len);

    /**
     * Map a file region into GPU memory. May map only a prefix: the
     * returned pointer covers *mapped_len <= len bytes, never crossing
     * a buffer-cache page. @return pointer or nullptr on error.
     */
    void *gmmap(gpu::BlockCtx &ctx, int fd, uint64_t offset, uint64_t len,
                uint64_t *mapped_len, Status *st = nullptr);

    /** Unmap a pointer obtained from gmmap. */
    Status gmunmap(gpu::BlockCtx &ctx, void *ptr);

    /** Write back the (dirty part of the) page backing @p ptr. The
     *  application must coordinate with updates by other blocks. */
    Status gmsync(gpu::BlockCtx &ctx, void *ptr);

    /**
     * Durability barrier on @p fd (whole file): returns only once every
     * prior write of this file is durable — on a G_GDURABLE file with
     * journaling on, once the journal COMMIT RECORD covering them is on
     * stable media (a crash after gmsync returns can never lose or tear
     * the acknowledged bytes; recovery replays them). Without the
     * journal it degrades to gfsync + host fsync. Note the overload:
     * gmsync(ctx, ptr) is Table 1's per-mapping sync; this is the
     * fd-typed barrier (pass an int, not a pointer).
     */
    Status
    gmsync(gpu::BlockCtx &ctx, int fd)
    {
        return gstatus_of(gwait(ctx, gmsync_async(ctx, fd)));
    }

    /** Async form of the durability barrier: submit the write-back
     *  rounds now, redeem the commit-record barrier at gwait. */
    IoToken gmsync_async(gpu::BlockCtx &ctx, int fd);

    /** Remove a file; local buffer space is reclaimed immediately. */
    Status gunlink(gpu::BlockCtx &ctx, const std::string &path);

    /** File metadata; size is the first-gopen size (+local writes). */
    Status gfstat(gpu::BlockCtx &ctx, int fd, GStat *out);

    /** Truncate and reclaim affected cached pages. */
    Status gftruncate(gpu::BlockCtx &ctx, int fd, uint64_t new_size);

    // ---- background write-back (async flusher) ----

    /**
     * One drain pass of the async write-back daemon (§3.3), called
     * periodically from the host-side flusher thread GpufsSystem owns:
     * write back every entry's dirty pages through the batched
     * BufferCache::flushDirty, release host fds of closed files whose
     * last dirty page just went home, and eagerly destroy closed-file
     * caches eviction has fully drained (instead of waiting for the
     * next gopen slow path). Runs under tableMtx -> pagingMtx, the
     * same lock discipline as the API calls it races with.
     *
     * @param start_time  the flusher's virtual clock (persisted across
     *                    passes by the caller)
     * @return the clock after the pass (max write-back completion)
     */
    Time backgroundFlushPass(Time start_time);

    // ---- introspection ----
    const GpuFsParams &params() const { return params_; }
    StatSet &stats() { return stats_; }

    /** The adaptive read-ahead stream table of @p fd's file (tests
     *  and benches inspect the MRU window, throttle state, per-stream
     *  trackers and aggregate feedback counters), or null for a bad
     *  fd. The table object is stable for the entry's lifetime; reads
     *  are racy-by-design telemetry. */
    const ReadAheadStreams *readAheadTracker(int fd);

    gpu::GpuDevice &device() { return dev; }
    BufferCache &bufferCache() { return bc_; }
    FrameArena &arena() { return bc_.arena(); }

    /** Open + closed entries currently holding a host fd (tests). */
    unsigned hostFdsHeld() const;

  private:
    gpu::GpuDevice &dev;
    rpc::RpcQueue &queue;
    GpuFsParams params_;
    StatSet stats_;
    BufferCache bc_;

    mutable std::mutex tableMtx;
    FileTable table_;
    uint64_t closeCounter = 0;

    /**
     * The in-flight request table. Slots are allocated at submit and
     * retired at wait under asyncMtx; between the two, a slot is owned
     * exclusively by the submitting block's thread, so the operation
     * itself (fetch completion, segment resolution) runs without the
     * lock. The table grows on demand — params_.maxInflightIo caps a
     * single BLOCK's outstanding ops (excess submissions fail with
     * Status::Busy), not the table.
     */
    mutable std::mutex asyncMtx;
    std::vector<std::unique_ptr<AsyncIoOp>> asyncOps_;
    /** Active ops across all blocks (fast-path skip for harvesting). */
    std::atomic<unsigned> asyncActive_{0};

    // Counters (registered once; fast paths use references).
    Counter &cntOpens;
    Counter &cntOpenRpcs;
    Counter &cntCloses;
    Counter &cntInvalidations;
    Counter &cntBytesRead;
    Counter &cntBytesWritten;
    Counter &cntFlusherPages;
    Counter &cntFlusherAdoptedPages;
    Counter &cntFlusherDrains;
    Counter &cntDrainedCollected;
    Counter &cntAsyncReads;
    Counter &cntAsyncWrites;
    Counter &cntAsyncSyncs;
    Counter &cntAsyncPeak;
    Counter &cntFsyncsDeduped;

    /**
     * Take the table lock, asserting the paging lock is not already
     * held by this thread — the tableMtx -> pagingMtx order is
     * enforced here rather than documented (a reclaim or flush path
     * re-entering the API layer would deadlock against a gopen).
     */
    std::unique_lock<std::mutex>
    lockTable() const
    {
        gpufs_assert(!bc_.pagingLockHeldByCaller(),
                     "lock-order inversion: pagingMtx held before "
                     "tableMtx");
        return std::unique_lock<std::mutex>(tableMtx);
    }

    /** Validate fd and return its entry (nullptr + status otherwise). */
    OpenFile *
    entryOf(int fd, Status *st)
    {
        OpenFile *e = table_.openEntry(fd);
        if (!e && st)
            *st = Status::BadFd;
        return e;
    }

    /** Synchronous RPC from this block (submit, wait, advance clock). */
    rpc::RpcResponse rpcCall(gpu::BlockCtx &ctx, rpc::RpcRequest &req);

    /** Close @p host_fd on the host (gopen/gclose bookkeeping). */
    void
    closeHostFd(gpu::BlockCtx &ctx, int host_fd)
    {
        rpc::RpcRequest req;
        req.op = rpc::RpcOp::Close;
        req.hostFd = host_fd;
        rpcCall(ctx, req);
    }

    /** Destroy an entry's cache and release its fd (table lock held). */
    void destroyEntryLocked(gpu::BlockCtx &ctx, OpenFile &entry);

    /** Free slot, recycling the oldest closed entry if needed. */
    int allocEntryLocked(gpu::BlockCtx &ctx);

    // ---- async request table internals ----

    /** Allocate a request-table slot for @p ctx's block. Never fails:
     *  when the block is over params_.maxInflightIo the slot carries
     *  immediate = Status::Busy. @return the token; *out is the slot. */
    IoToken allocOp(gpu::BlockCtx &ctx, AsyncIoOp **out);

    /** Validate and claim the slot of @p token for resolution; nullptr
     *  for stale/reused/foreign tokens. */
    AsyncIoOp *claimOp(gpu::BlockCtx &ctx, IoToken token);

    /** Retire a resolved slot: bump the generation (invalidating the
     *  token), clear per-op state, free the slot. */
    void releaseOp(AsyncIoOp &op);

    /**
     * Collect the in-flight RPCs (fetches and flushes) of EVERY active
     * op of @p block_id, releasing their claimed fpage locks. Runs at
     * the top of gwait and of every structural call (gopen, gclose,
     * gmmap, gmsync, gftruncate, gunlink): a block's own pending claim
     * must never sit under a code path that takes fpage locks, or the
     * block would spin on itself. Results land in each op (flush
     * status/completion; fetched pages become Ready for resolution).
     */
    void harvestBlock(unsigned block_id);

    /** Collect one op's in-flight RPCs (see harvestBlock). */
    void completePending(AsyncIoOp &op);

    /** Map extents to page-granular segments; returns total bytes. */
    static uint64_t buildSegs(AsyncIoOp &op, const GIoVec *iov,
                              unsigned iovcnt, uint64_t page_size,
                              bool clamp_to, uint64_t fsize);

    /** Submission back ends (shared by the sync wrappers, the async
     *  entry points, and the vectored calls). @p coalesce selects
     *  multi-page ReadPages demand batches (vectored/async) over the
     *  per-page demand pattern the sync wrappers preserve. */
    IoToken submitRead(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                       unsigned iovcnt, bool coalesce);
    IoToken submitWrite(gpu::BlockCtx &ctx, int fd, const GIoVec *iov,
                        unsigned iovcnt);
    IoToken submitFsync(gpu::BlockCtx &ctx, int fd, uint64_t first_page,
                        uint64_t last_page);

    /** Wait-side resolution of one claimed op. */
    int64_t resolveOp(gpu::BlockCtx &ctx, AsyncIoOp &op);
    int64_t resolveRead(gpu::BlockCtx &ctx, AsyncIoOp &op);
    int64_t resolveWrite(gpu::BlockCtx &ctx, AsyncIoOp &op);
    int64_t resolveFsync(gpu::BlockCtx &ctx, AsyncIoOp &op);
};

} // namespace core
} // namespace gpufs

#endif // GPUFS_GPUFS_GPUFS_HH
