#include "gpuutil/gstring.hh"

namespace gpufs {
namespace gpuutil {

size_t
gstrlen(const char *s, size_t max)
{
    size_t n = 0;
    while (n < max && s[n] != '\0')
        ++n;
    return n;
}

int
gstrcmp(const char *a, const char *b)
{
    while (*a && *a == *b) {
        ++a;
        ++b;
    }
    return static_cast<unsigned char>(*a) - static_cast<unsigned char>(*b);
}

int
gstrncmp(const char *a, const char *b, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        unsigned char ca = a[i];
        unsigned char cb = b[i];
        if (ca != cb)
            return ca - cb;
        if (ca == '\0')
            return 0;
    }
    return 0;
}

size_t
gstrlcpy(char *dst, const char *src, size_t n)
{
    size_t src_len = gstrlen(src);
    if (n > 0) {
        size_t copy = src_len < n - 1 ? src_len : n - 1;
        for (size_t i = 0; i < copy; ++i)
            dst[i] = src[i];
        dst[copy] = '\0';
    }
    return src_len;
}

size_t
gstrlcat(char *dst, const char *src, size_t n)
{
    size_t dst_len = gstrlen(dst, n);
    if (dst_len == n)
        return n + gstrlen(src);
    return dst_len + gstrlcpy(dst + dst_len, src, n - dst_len);
}

const char *
gmemchr(const char *s, char c, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (s[i] == c)
            return s + i;
    }
    return nullptr;
}

static bool
isDelim(char c, const char *delims)
{
    for (const char *d = delims; *d; ++d) {
        if (*d == c)
            return true;
    }
    return false;
}

char *
gstrtok_r(char *s, const char *delims, char **save)
{
    if (!s)
        s = *save;
    if (!s)
        return nullptr;
    while (*s && isDelim(*s, delims))
        ++s;
    if (*s == '\0') {
        *save = nullptr;
        return nullptr;
    }
    char *tok = s;
    while (*s && !isDelim(*s, delims))
        ++s;
    if (*s) {
        *s = '\0';
        *save = s + 1;
    } else {
        *save = nullptr;
    }
    return tok;
}

bool
gisWordDelim(char c)
{
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
    return !alnum;
}

uint64_t
gwordCount(const char *text, size_t len, const char *word, size_t word_len)
{
    if (word_len == 0 || word_len > len)
        return 0;
    uint64_t count = 0;
    for (size_t i = 0; i + word_len <= len; ++i) {
        if (text[i] != word[0])
            continue;
        bool left_ok = (i == 0) || gisWordDelim(text[i - 1]);
        if (!left_ok)
            continue;
        size_t j = 1;
        while (j < word_len && text[i + j] == word[j])
            ++j;
        if (j != word_len)
            continue;
        bool right_ok =
            (i + word_len == len) || gisWordDelim(text[i + word_len]);
        if (right_ok)
            ++count;
    }
    return count;
}

namespace {

/** Emit one char into a bounded buffer, tracking virtual length. */
struct Emitter {
    char *dst;
    size_t cap;
    size_t len = 0;

    void
    put(char c)
    {
        if (len + 1 < cap)
            dst[len] = c;
        ++len;
    }

    void
    finish()
    {
        if (cap > 0)
            dst[len < cap ? len : cap - 1] = '\0';
    }
};

void
emitUnsigned(Emitter &out, unsigned long long v, unsigned base, bool upper)
{
    char tmp[32];
    unsigned n = 0;
    do {
        unsigned d = static_cast<unsigned>(v % base);
        tmp[n++] = d < 10 ? static_cast<char>('0' + d)
                          : static_cast<char>((upper ? 'A' : 'a') + d - 10);
        v /= base;
    } while (v != 0);
    while (n > 0)
        out.put(tmp[--n]);
}

} // namespace

size_t
gvsnprintf(char *dst, size_t n, const char *fmt, va_list ap)
{
    Emitter out{dst, n};
    for (const char *p = fmt; *p; ++p) {
        if (*p != '%') {
            out.put(*p);
            continue;
        }
        ++p;
        bool ll = false;
        while (*p == 'l') {     // accept %ld / %lld / %llu etc.
            ll = true;
            ++p;
        }
        switch (*p) {
          case '%':
            out.put('%');
            break;
          case 'c':
            out.put(static_cast<char>(va_arg(ap, int)));
            break;
          case 's': {
            const char *s = va_arg(ap, const char *);
            if (!s)
                s = "(null)";
            while (*s)
                out.put(*s++);
            break;
          }
          case 'd': {
            long long v = ll ? va_arg(ap, long long) : va_arg(ap, int);
            if (v < 0) {
                out.put('-');
                emitUnsigned(out, static_cast<unsigned long long>(-v), 10,
                             false);
            } else {
                emitUnsigned(out, static_cast<unsigned long long>(v), 10,
                             false);
            }
            break;
          }
          case 'u': {
            unsigned long long v = ll ? va_arg(ap, unsigned long long)
                                      : va_arg(ap, unsigned);
            emitUnsigned(out, v, 10, false);
            break;
          }
          case 'x': {
            unsigned long long v = ll ? va_arg(ap, unsigned long long)
                                      : va_arg(ap, unsigned);
            emitUnsigned(out, v, 16, false);
            break;
          }
          case '\0':
            out.finish();
            return out.len;
          default:
            // Unknown verb: emit literally so bugs are visible.
            out.put('%');
            out.put(*p);
            break;
        }
    }
    out.finish();
    return out.len;
}

size_t
gsnprintf(char *dst, size_t n, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    size_t len = gvsnprintf(dst, n, fmt, ap);
    va_end(ap);
    return len;
}

} // namespace gpuutil
} // namespace gpufs
