/**
 * @file
 * GPU-side string functions (§5.2.2).
 *
 * "Various text parsing and formatted output tasks required us to
 * implement limited GPU versions of the sprintf, strtok, strlen,
 * strcat functions not normally available to GPU code." These are the
 * device functions the grep workload links against. They are
 * deliberately libc-free and allocation-free, as GPU device code must
 * be, and operate only on caller-provided buffers.
 */

#ifndef GPUFS_GPUUTIL_GSTRING_HH
#define GPUFS_GPUUTIL_GSTRING_HH

#include <cstdarg>
#include <cstddef>
#include <cstdint>

namespace gpufs {
namespace gpuutil {

/** Length of a NUL-terminated string, at most @p max. */
size_t gstrlen(const char *s, size_t max = SIZE_MAX);

/** Three-way comparison, strcmp semantics. */
int gstrcmp(const char *a, const char *b);

/** Three-way comparison of at most @p n characters. */
int gstrncmp(const char *a, const char *b, size_t n);

/** Copy at most @p n - 1 chars and always NUL-terminate (n > 0).
 *  @return the source length (strlcpy semantics). */
size_t gstrlcpy(char *dst, const char *src, size_t n);

/** Append @p src to @p dst within a buffer of @p n total bytes
 *  (strlcat semantics). @return the length it tried to create. */
size_t gstrlcat(char *dst, const char *src, size_t n);

/** Find the first occurrence of @p c in the first @p n bytes. */
const char *gmemchr(const char *s, char c, size_t n);

/**
 * Re-entrant tokenizer, strtok_r semantics: destructive, NUL-writes
 * over delimiters, per-caller state in @p save.
 */
char *gstrtok_r(char *s, const char *delims, char **save);

/** True if @p c separates words in the grep -w sense. */
bool gisWordDelim(char c);

/**
 * Count occurrences of @p word as a whole word ("grep -w") in
 * text[0..len). @p word_len must be gstrlen(word).
 */
uint64_t gwordCount(const char *text, size_t len, const char *word,
                    size_t word_len);

/**
 * Limited vsnprintf: supports %s %d %u %llu %x %c %%. Always
 * NUL-terminates (n > 0). @return chars that would have been written
 * (snprintf semantics).
 */
size_t gvsnprintf(char *dst, size_t n, const char *fmt, va_list ap);

/** printf-style wrapper over gvsnprintf. */
size_t gsnprintf(char *dst, size_t n, const char *fmt, ...);

} // namespace gpuutil
} // namespace gpufs

#endif // GPUFS_GPUUTIL_GSTRING_HH
