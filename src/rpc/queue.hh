/**
 * @file
 * The per-GPU RPC request queue.
 *
 * In the paper this is a FIFO of slots in write-shared (zero-copy
 * mapped) CPU memory: GPU threadblocks fill slots and set a ready flag
 * with a memory fence; the CPU daemon polls for ready slots, services
 * them, and flips the flag back (no PCIe atomics exist, so the protocol
 * is pure message passing with one-directional flag handoff — each
 * field has exactly one writer at a time).
 *
 * The simulation keeps that slot protocol bit-for-bit, replacing the
 * busy-poll with C++20 atomic wait/notify so host CPUs aren't burned
 * spinning; semantically the daemon still "polls" — nothing blocks the
 * GPU side except its own slot's completion flag.
 */

#ifndef GPUFS_RPC_QUEUE_HH
#define GPUFS_RPC_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <thread>

#include "base/logging.hh"
#include "rpc/msg.hh"

namespace gpufs {
namespace rpc {

/** Slot handshake states. Written by one side at a time. */
enum SlotState : uint32_t {
    kSlotFree = 0,       ///< owned by GPU allocators
    kSlotFilling = 1,    ///< a GPU block is writing the request
    kSlotReady = 2,      ///< request visible to the CPU daemon
    kSlotBusy = 3,       ///< daemon is servicing it
    kSlotDone = 4,       ///< response visible to the GPU block
};

/** Number of request slots per GPU queue. */
constexpr unsigned kQueueSlots = 64;

struct alignas(64) RpcSlot {
    std::atomic<uint32_t> state{kSlotFree};
    RpcRequest req;
    RpcResponse resp;
};

/**
 * One GPU's request queue plus the doorbell the daemon sleeps on.
 * The doorbell is shared across queues (owned by the daemon) so a
 * single thread can watch every GPU, like the paper's one-CPU design.
 */
class RpcQueue
{
  public:
    explicit RpcQueue(std::atomic<uint64_t> &doorbell_counter)
        : doorbell(doorbell_counter) {}

    RpcQueue(const RpcQueue &) = delete;
    RpcQueue &operator=(const RpcQueue &) = delete;

    /**
     * Synchronous call from a GPU block: allocate a slot, publish the
     * request, wait for completion. Returns the response by value.
     */
    RpcResponse
    call(const RpcRequest &req)
    {
        RpcSlot &slot = allocate();
        slot.req = req;
        // Publish: the state store is the fence making req visible.
        slot.state.store(kSlotReady, std::memory_order_release);
        doorbell.fetch_add(1, std::memory_order_release);
        doorbell.notify_one();

        // GPU side spins on its own slot (bounded spin, then park).
        uint32_t s;
        int spins = 0;
        while ((s = slot.state.load(std::memory_order_acquire))
               != kSlotDone) {
            if (++spins > 1024)
                slot.state.wait(s, std::memory_order_acquire);
        }
        RpcResponse resp = slot.resp;
        slot.state.store(kSlotFree, std::memory_order_release);
        slot.state.notify_all();
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        return resp;
    }

    /** High-water mark of concurrently in-flight slots. */
    unsigned
    maxInFlightSlots() const
    {
        return maxInFlight_.load(std::memory_order_relaxed);
    }

    /** Times a submitter swept every slot and found none free. */
    uint64_t
    fullQueueStalls() const
    {
        return fullStalls_.load(std::memory_order_relaxed);
    }

    /**
     * Daemon side: scan for a ready slot and claim it.
     * @return the claimed slot, or nullptr if none ready.
     */
    RpcSlot *
    poll()
    {
        for (unsigned i = 0; i < kQueueSlots; ++i) {
            uint32_t expect = kSlotReady;
            if (slots[i].state.compare_exchange_strong(
                    expect, kSlotBusy, std::memory_order_acq_rel)) {
                return &slots[i];
            }
        }
        return nullptr;
    }

    /** Daemon side: publish the response and release the slot. */
    static void
    complete(RpcSlot &slot, const RpcResponse &resp)
    {
        slot.resp = resp;
        slot.state.store(kSlotDone, std::memory_order_release);
        slot.state.notify_all();
    }

  private:
    RpcSlot &
    allocate()
    {
        // Ticket-spread probing keeps concurrent blocks off each
        // other's cache lines; waits when all slots are in flight.
        unsigned start = ticket.fetch_add(1, std::memory_order_relaxed);
        for (;;) {
            for (unsigned i = 0; i < kQueueSlots; ++i) {
                RpcSlot &slot = slots[(start + i) % kQueueSlots];
                uint32_t expect = kSlotFree;
                if (slot.state.compare_exchange_strong(
                        expect, kSlotFilling, std::memory_order_acq_rel)) {
                    // Slot-pressure accounting (ROADMAP "RPC slot
                    // scaling") at the claim itself, so the high-water
                    // mark matches real occupancy (a queue that ever
                    // stalled full must have seen kQueueSlots here).
                    unsigned depth = inFlight_.fetch_add(
                        1, std::memory_order_relaxed) + 1;
                    unsigned seen =
                        maxInFlight_.load(std::memory_order_relaxed);
                    while (seen < depth &&
                           !maxInFlight_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
                    }
                    return slot;
                }
            }
            fullStalls_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
        }
    }

    RpcSlot slots[kQueueSlots];
    std::atomic<unsigned> ticket{0};
    std::atomic<uint64_t> &doorbell;

    std::atomic<unsigned> inFlight_{0};
    std::atomic<unsigned> maxInFlight_{0};
    std::atomic<uint64_t> fullStalls_{0};
};

} // namespace rpc
} // namespace gpufs

#endif // GPUFS_RPC_QUEUE_HH
