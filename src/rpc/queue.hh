/**
 * @file
 * The per-GPU RPC request queue.
 *
 * In the paper this is a FIFO of slots in write-shared (zero-copy
 * mapped) CPU memory: GPU threadblocks fill slots and set a ready flag
 * with a memory fence; the CPU daemon polls for ready slots, services
 * them, and flips the flag back (no PCIe atomics exist, so the protocol
 * is pure message passing with one-directional flag handoff — each
 * field has exactly one writer at a time).
 *
 * The simulation keeps that slot protocol bit-for-bit, replacing the
 * busy-poll with C++20 atomic wait/notify so host CPUs aren't burned
 * spinning; semantically the daemon still "polls" — nothing blocks the
 * GPU side except its own slot's completion flag.
 */

#ifndef GPUFS_RPC_QUEUE_HH
#define GPUFS_RPC_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <thread>

#include "base/logging.hh"
#include "rpc/msg.hh"

namespace gpufs {
namespace rpc {

/** Slot handshake states. Written by one side at a time. */
enum SlotState : uint32_t {
    kSlotFree = 0,       ///< owned by GPU allocators
    kSlotFilling = 1,    ///< a GPU block is writing the request
    kSlotReady = 2,      ///< request visible to the CPU daemon
    kSlotBusy = 3,       ///< daemon is servicing it
    kSlotDone = 4,       ///< response visible to the GPU block
};

/** Number of request slots per GPU queue. */
constexpr unsigned kQueueSlots = 64;

struct alignas(64) RpcSlot {
    std::atomic<uint32_t> state{kSlotFree};
    RpcRequest req;
    RpcResponse resp;
};

/**
 * One GPU's request queue plus the doorbell the daemon sleeps on.
 * The doorbell is shared across queues (owned by the daemon) so a
 * single thread can watch every GPU, like the paper's one-CPU design.
 */
class RpcQueue
{
  public:
    explicit RpcQueue(std::atomic<uint64_t> &doorbell_counter)
        : doorbell(doorbell_counter) {}

    RpcQueue(const RpcQueue &) = delete;
    RpcQueue &operator=(const RpcQueue &) = delete;

    /**
     * Split-phase submit: allocate a slot, publish the request, and
     * return WITHOUT waiting. The caller owns the returned slot until
     * it passes it to collect() — a block may hold several outstanding
     * slots and collect them in any order (non-blocking I/O core); the
     * daemon completes slots as it services them, so delivery order is
     * independent of submission order.
     */
    RpcSlot *
    submit(const RpcRequest &req)
    {
        RpcSlot &slot = allocate();
        slot.req = req;
        // Publish: the state store is the fence making req visible.
        slot.state.store(kSlotReady, std::memory_order_release);
        ringDoorbell();
        return &slot;
    }

    /**
     * Non-blocking submit: one sweep over the slot array; nullptr when
     * every slot is in flight. Split-phase submitters MUST use this —
     * they hold uncollected slots, and blocking in allocate() while
     * holding the very resource other spinners wait for is a deadlock
     * cycle (allocate() is only safe for callers that hold no slots,
     * which the synchronous call() path guarantees).
     */
    RpcSlot *
    trySubmit(const RpcRequest &req)
    {
        RpcSlot *slot = tryAllocate();
        if (!slot)
            return nullptr;
        slot->req = req;
        slot->state.store(kSlotReady, std::memory_order_release);
        ringDoorbell();
        return slot;
    }

    /** Non-blocking completion probe for a submitted slot. */
    bool
    ready(const RpcSlot &slot) const
    {
        return slot.state.load(std::memory_order_acquire) == kSlotDone;
    }

    /**
     * Two-step submission, step 1: claim a slot and leave it in
     * kSlotFilling — invisible to the daemon — until publish(). Tests
     * use the pair to stage a slot the aggregation linger can census
     * (occupiedHint) before its request is visible; nullptr when every
     * slot is in flight.
     */
    RpcSlot *beginFill() { return tryAllocate(); }

    /** Two-step submission, step 2: publish a beginFill() slot. The
     *  slot then behaves exactly like a trySubmit() one (collect it). */
    void
    publish(RpcSlot *slot, const RpcRequest &req)
    {
        slot->req = req;
        slot->state.store(kSlotReady, std::memory_order_release);
        ringDoorbell();
    }

    /** Slots a GPU block currently owns on the submission side —
     *  Filling (being written) or Ready (published, unclaimed). The
     *  daemon's aggregation linger reads this as "more of the burst is
     *  still arriving"; racy by nature, advisory only. */
    unsigned
    occupiedHint() const
    {
        unsigned n = 0;
        for (unsigned i = 0; i < kQueueSlots; ++i) {
            uint32_t s = slots[i].state.load(std::memory_order_acquire);
            if (s == kSlotFilling || s == kSlotReady)
                ++n;
        }
        return n;
    }

    /**
     * Collect a submitted slot: wait for the daemon's completion,
     * free the slot, return the response by value.
     */
    RpcResponse
    collect(RpcSlot &slot)
    {
        // GPU side spins on its own slot (bounded spin, then park).
        uint32_t s;
        int spins = 0;
        while ((s = slot.state.load(std::memory_order_acquire))
               != kSlotDone) {
            if (++spins > 1024)
                slot.state.wait(s, std::memory_order_acquire);
        }
        RpcResponse resp = slot.resp;
        slot.state.store(kSlotFree, std::memory_order_release);
        slot.state.notify_all();
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        return resp;
    }

    /**
     * Synchronous call from a GPU block: submit and immediately wait.
     */
    RpcResponse
    call(const RpcRequest &req)
    {
        return collect(*submit(req));
    }

    /** High-water mark of concurrently in-flight slots. */
    unsigned
    maxInFlightSlots() const
    {
        return maxInFlight_.load(std::memory_order_relaxed);
    }

    /** Times a submitter swept every slot and found none free. */
    uint64_t
    fullQueueStalls() const
    {
        return fullStalls_.load(std::memory_order_relaxed);
    }

    /** Total slots successfully claimed (submission count). Together
     *  with fullQueueStalls this is the doorbell-coalescing decision
     *  signal: stalls above ~1% of submissions mean the slot array —
     *  not the daemon — is what submitters are waiting on. */
    uint64_t
    submissions() const
    {
        return submitted_.load(std::memory_order_relaxed);
    }

    /** Doorbell rings elided because the daemon already had ready,
     *  unclaimed slots to wake for (burst coalescing): bursts wake the
     *  daemon once and arrive as one pollAll sweep, which is what
     *  gives cross-slot aggregation something to aggregate. */
    uint64_t
    doorbellRingsSuppressed() const
    {
        return ringsSuppressed_.load(std::memory_order_relaxed);
    }

    /**
     * Daemon side: scan for a ready slot and claim it.
     * @return the claimed slot, or nullptr if none ready.
     */
    RpcSlot *
    poll()
    {
        for (unsigned i = 0; i < kQueueSlots; ++i) {
            uint32_t expect = kSlotReady;
            if (slots[i].state.compare_exchange_strong(
                    expect, kSlotBusy, std::memory_order_acq_rel)) {
                readyPending_.fetch_sub(1, std::memory_order_acq_rel);
                return &slots[i];
            }
        }
        return nullptr;
    }

    /**
     * Daemon side: claim EVERY currently-ready slot in one sweep.
     * With split-phase submission a single block can have many slots
     * outstanding, and slot-array order bears no relation to the
     * virtual times the requests were issued at — the daemon sorts a
     * sweep's claims by issueTime before servicing so its serialized
     * CPU timeline reserves in causal order. @return slots claimed.
     */
    unsigned
    pollAll(RpcSlot **out, unsigned max_out)
    {
        unsigned n = 0;
        for (unsigned i = 0; i < kQueueSlots && n < max_out; ++i) {
            uint32_t expect = kSlotReady;
            if (slots[i].state.compare_exchange_strong(
                    expect, kSlotBusy, std::memory_order_acq_rel)) {
                out[n++] = &slots[i];
            }
        }
        if (n > 0) {
            readyPending_.fetch_sub(static_cast<int64_t>(n),
                                    std::memory_order_acq_rel);
        }
        return n;
    }

    /** Daemon side: publish the response and release the slot. */
    static void
    complete(RpcSlot &slot, const RpcResponse &resp)
    {
        slot.resp = resp;
        slot.state.store(kSlotDone, std::memory_order_release);
        slot.state.notify_all();
    }

  private:
    /**
     * Doorbell coalescing: ring only on the quiet->busy edge. The
     * ready-but-unclaimed census readyPending_ goes up here (AFTER the
     * slot's kSlotReady store) and down at each daemon claim; a
     * submitter observing prior pending slots knows a ring for them is
     * still in flight — the daemon cannot have parked without first
     * claiming them in its final sweep (it re-sweeps until quiet, and
     * the claim CAS + this RMW chain give it the latest count) — so
     * its own ring would be redundant and is elided. The counter can
     * transiently read negative (a claim's decrement landing between a
     * submitter's state store and its increment), which only makes
     * that submitter ring conservatively. Suppression bursts therefore
     * wake the daemon once per burst, and the whole burst arrives as
     * ONE pollAll sweep — the daemon-side aggregation's feedstock.
     */
    void
    ringDoorbell()
    {
        if (readyPending_.fetch_add(1, std::memory_order_acq_rel) <= 0) {
            doorbell.fetch_add(1, std::memory_order_release);
            doorbell.notify_one();
        } else {
            ringsSuppressed_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** One claim sweep; nullptr when no slot is free. */
    RpcSlot *
    tryAllocate()
    {
        // Ticket-spread probing keeps concurrent blocks off each
        // other's cache lines.
        unsigned start = ticket.fetch_add(1, std::memory_order_relaxed);
        for (unsigned i = 0; i < kQueueSlots; ++i) {
            RpcSlot &slot = slots[(start + i) % kQueueSlots];
            uint32_t expect = kSlotFree;
            if (slot.state.compare_exchange_strong(
                    expect, kSlotFilling, std::memory_order_acq_rel)) {
                // Slot-pressure accounting (ROADMAP "RPC slot
                // scaling") at the claim itself, so the high-water
                // mark matches real occupancy (a queue that ever
                // stalled full must have seen kQueueSlots here).
                submitted_.fetch_add(1, std::memory_order_relaxed);
                unsigned depth = inFlight_.fetch_add(
                    1, std::memory_order_relaxed) + 1;
                unsigned seen =
                    maxInFlight_.load(std::memory_order_relaxed);
                while (seen < depth &&
                       !maxInFlight_.compare_exchange_weak(
                           seen, depth, std::memory_order_relaxed)) {
                }
                return &slot;
            }
        }
        return nullptr;
    }

    /** Blocking claim: waits for a free slot. Safe ONLY for callers
     *  holding no uncollected slots (see trySubmit). */
    RpcSlot &
    allocate()
    {
        for (;;) {
            RpcSlot *slot = tryAllocate();
            if (slot)
                return *slot;
            fullStalls_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
        }
    }

    RpcSlot slots[kQueueSlots];
    std::atomic<unsigned> ticket{0};
    std::atomic<uint64_t> &doorbell;

    std::atomic<unsigned> inFlight_{0};
    std::atomic<unsigned> maxInFlight_{0};
    std::atomic<uint64_t> fullStalls_{0};
    std::atomic<uint64_t> submitted_{0};

    /** Ready-but-unclaimed census (signed: see ringDoorbell). */
    std::atomic<int64_t> readyPending_{0};
    std::atomic<uint64_t> ringsSuppressed_{0};
};

} // namespace rpc
} // namespace gpufs

#endif // GPUFS_RPC_QUEUE_HH
