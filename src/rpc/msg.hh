/**
 * @file
 * RPC message set for the GPU-as-client protocol (§4.3).
 *
 * The GPU sends commands; bulk data never travels through the queue —
 * for reads and write-backs the request carries a raw pointer into the
 * GPU buffer cache and the "DMA engine" (the daemon) copies directly
 * to/from that page, exactly as the paper's CPU-initiated DMA does with
 * GPU-supplied source/destination pointers.
 */

#ifndef GPUFS_RPC_MSG_HH
#define GPUFS_RPC_MSG_HH

#include <cstdint>

#include "base/status.hh"
#include "base/units.hh"

namespace gpufs {
namespace rpc {

enum class RpcOp : uint32_t {
    Nop = 0,
    Open,        ///< open host file; returns fd, ino, size, version
    Close,       ///< close host fd
    ReadPage,    ///< host file -> GPU buffer-cache page (H2D DMA)
    ReadPages,   ///< batched: one contiguous extent -> many pages
    WriteBack,   ///< GPU page -> host file (D2H DMA), optional zero-diff
    WritePages,  ///< batched: many page extents -> one gathered pwritev
    /** Sharded multi-GPU: like ReadPages, but the daemon first tries
     *  to serve each page from the OWNER GPU's resident frames over
     *  the peer P2P DMA channel, reading from the host only for pages
     *  the owner does not hold (request names the owner in peerGpu). */
    PeerReadPages,
    /** Sharded multi-GPU write twin: the gathered extents always land
     *  on the host as one pwritev (durability unchanged), and extents
     *  whose page is resident in the owner's cache are additionally
     *  mirrored into the owner's frames over the P2P channel so the
     *  owner keeps serving current bytes to later peer reads. */
    PeerWritePages,
    Fsync,       ///< flush host dirty pages of fd to disk
    Truncate,
    Unlink,
    Stat,
};

/** Maximum path length carried in a fixed-size request slot. */
constexpr size_t kMaxPath = 240;

/**
 * Maximum pages one ReadPages (or extents one WritePages) request
 * carries. The request slot stays fixed size (the paper's queue is an
 * array of fixed slots in shared memory), so the batch is a bounded
 * pointer array; the GPU splits longer read-ahead runs and dirty-page
 * batches into multiple requests.
 */
constexpr unsigned kMaxBatchPages = 16;

struct RpcRequest {
    RpcOp op = RpcOp::Nop;
    unsigned gpuId = 0;
    Time issueTime = 0;         ///< requester's virtual clock at submit
    /** Serving tier: tenant the originating gopen carried. The daemon's
     *  weighted scheduler keys on it, per-tenant served counters charge
     *  it, and owner-warming adoptions bill the faulting tenant's frame
     *  quota on the owner GPU. 0 (the default tenant) preserves the
     *  pre-multi-tenant FIFO behavior end to end. */
    uint8_t tenant = 0;

    char path[kMaxPath] = {};   ///< Open/Unlink/Stat
    uint32_t flags = 0;         ///< Open: host-visible open flags
    bool wantsWrite = false;    ///< Open: GPU intends to write
    /** Open: this writer's updates merge (O_GWRONCE or diff-and-merge),
     *  so it may coexist with other mergeable writers. */
    bool mergeableWriter = false;
    bool nosync = false;        ///< Open: O_NOSYNC temp file

    // ---- Peer ops (sharded multi-GPU) ----
    /** Owner GPU whose resident frames service PeerRead/WritePages. */
    uint32_t peerGpu = 0;
    /** Inode identifying the file in the owner's table (host fds are
     *  per-GPU, inodes are machine-wide). */
    uint64_t ino = 0;
    /** Requester's cached file version: the owner's copy is used only
     *  when its version matches (close-to-open consistency holds
     *  across the peer path exactly as across the host path). For
     *  PeerWritePages this is the version BEFORE the flush's first
     *  partition, so mirrors keep applying when a sibling partition
     *  already bumped the host. */
    uint64_t version = 0;
    /** PeerWritePages: this RPC is the ONLY partition of its flush
     *  batch, so a fully-mirrored owner may have the post-write
     *  version published (sibling partitions changing other pages of
     *  the file would make that publish validate stale copies). */
    bool peerPublish = false;

    /** ReadPages/PeerReadPages: this batch is read-ahead, not demand —
     *  the daemon attributes the fetched pages to its ra_pages_fetched
     *  counter so host-side reports can tell prefetch traffic from
     *  demand traffic without reaching into per-GPU StatSets. */
    bool speculative = false;

    /** Fsync: the file was opened O_GDURABLE and the caller only needs
     *  the journal commit record durable (gmsync/gfsync barrier) — the
     *  daemon answers from WriteJournal::lastCommitDone instead of
     *  fsyncing the data file, when journaling is enabled. */
    bool durableBarrier = false;

    int hostFd = -1;            ///< Close/ReadPage(s)/WriteBack/Fsync/Truncate
    uint64_t offset = 0;        ///< ReadPage(s)/WriteBack/Truncate(new size)
    uint64_t len = 0;           ///< ReadPage/WriteBack; Read/WritePages: total
    uint8_t *data = nullptr;    ///< GPU page pointer for bulk ops
    bool diffAgainstZeros = false;  ///< WriteBack: O_GWRONCE semantics

    // ---- Batched ops ----
    // ReadPages: one contiguous file extent starting at `offset`,
    // scattered into pageCount GPU buffer-cache frames of pageLen
    // bytes each (batch[i] receives extent byte i*pageLen onward).
    // WritePages: pageCount gathered extents; extent i is batchLen[i]
    // bytes read from GPU pointer batch[i] landing at file offset
    // batchOff[i]. Extents need not be contiguous — the daemon services
    // the whole batch as ONE HostFs::pwritev (one syscall charge, one
    // version bump) behind ONE D2H DMA reservation of `len` total
    // bytes. diffAgainstZeros applies to every extent in the batch.
    uint32_t pageCount = 0;
    uint64_t pageLen = 0;
    uint8_t *batch[kMaxBatchPages] = {};
    uint64_t batchOff[kMaxBatchPages] = {};
    uint32_t batchLen[kMaxBatchPages] = {};
};

struct RpcResponse {
    Status status = Status::Ok;
    int hostFd = -1;
    uint64_t ino = 0;
    uint64_t size = 0;
    uint64_t version = 0;
    uint64_t bytes = 0;         ///< bytes actually moved
    /** PeerReadPages: pages served from the owner's resident frames;
     *  PeerWritePages: extents mirrored into the owner's frames. The
     *  remainder fell back to the normal host path. */
    uint32_t peerPages = 0;
    Time done = 0;              ///< virtual completion time
};

} // namespace rpc
} // namespace gpufs

#endif // GPUFS_RPC_MSG_HH
