#include "rpc/daemon.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "gpufs/victim.hh"

namespace gpufs {
namespace rpc {

CpuDaemon::CpuDaemon(hostfs::HostFs &host_fs,
                     consistency::ConsistencyMgr &mgr)
    : fs(host_fs), consistency(mgr), stats_("cpu_daemon"),
      requestsServed(stats_.counter("requests_served")),
      bytesToGpu(stats_.counter("bytes_to_gpu")),
      bytesFromGpu(stats_.counter("bytes_from_gpu")),
      bytesPeer(stats_.counter("bytes_peer_to_peer")),
      peerReadRpcs(stats_.counter("peer_read_rpcs")),
      peerPagesForwarded(stats_.counter("peer_pages_forwarded")),
      peerPagesHost(stats_.counter("peer_pages_host_fallback")),
      peerWriteRpcs(stats_.counter("peer_write_rpcs")),
      peerExtentsMirrored(stats_.counter("peer_extents_mirrored")),
      raPagesFetched(stats_.counter("ra_pages_fetched")),
      coalescedRpcs(stats_.counter("coalesced_rpcs")),
      hostReadCalls(stats_.counter("host_read_calls")),
      ioRetries(stats_.counter("io_retries")),
      ioRetryGiveups(stats_.counter("io_retry_giveups")),
      journalCommits(stats_.counter("journal_commits")),
      journalCommitBarriers(stats_.counter("journal_commit_barriers")),
      journalTxnsReplayed(stats_.counter("journal_txns_replayed")),
      journalTornRecords(stats_.counter("journal_torn_records")),
      journalCheckpoints(stats_.counter("journal_checkpoints")),
      journalGroupSyncs(stats_.counter("journal_group_syncs")),
      peerPagesAdopted(stats_.counter("peer_pages_adopted"))
{
    for (unsigned t = 0; t < core::kMaxTenants; ++t) {
        tenantRpcs[t] =
            &stats_.counter("tenant" + std::to_string(t) + "_rpcs");
    }
    backend_ = storage::makeStorageBackend(storage::BackendKind::Buffered,
                                           fs, stats_);
}

void
CpuDaemon::setTenantWeights(const unsigned *weights, unsigned n)
{
    gpufs_assert(!running.load(), "setTenantWeights after start");
    drr_ = false;
    for (unsigned t = 0; t < core::kMaxTenants; ++t) {
        tenantWeight_[t] = t < n ? weights[t] : 0;
        if (tenantWeight_[t] != 0)
            drr_ = true;
    }
}

void
CpuDaemon::setSweepLinger(Time deadline)
{
    gpufs_assert(!running.load(), "setSweepLinger after start");
    linger_ = deadline;
}

void
CpuDaemon::setStorageBackend(storage::BackendKind kind)
{
    gpufs_assert(!running.load(), "setStorageBackend after start");
    backend_ = storage::makeStorageBackend(kind, fs, stats_);
}

void
CpuDaemon::setVictimCache(core::VictimCache *v)
{
    gpufs_assert(!running.load(), "setVictimCache after start");
    victim_ = v;
}

namespace {

/** Bounded retry with exponential backoff for transient host-I/O
 *  faults (injected EIO, short writes): re-issue with the virtual
 *  clock pushed back 40/80/160us before giving up and letting the
 *  error IoResult complete the RPC. Never retries once the host has
 *  crashed — a dead backing store is not transient. */
constexpr unsigned kMaxIoRetries = 3;
constexpr Time kIoRetryBackoff = 20000;  // 20us, doubling per attempt

/** Aggregation linger's wall-clock safety bound: ~200ms of 50us naps
 *  waiting for a census-visible straggler to publish. Generous — a
 *  mid-fill block publishes in microseconds — but finite, so a block
 *  that claimed a slot and stalled can never wedge parked requests. */
constexpr unsigned kLingerMaxSpins = 4000;

template <typename Fn>
hostfs::IoResult
retryTransient(hostfs::HostFs &fs, Counter &retries, Counter &giveups,
               Fn &&fn)
{
    hostfs::IoResult r = fn(Time(0));
    for (unsigned attempt = 1; r.status == Status::IoError &&
         attempt <= kMaxIoRetries && !fs.crashed(); ++attempt) {
        retries.inc();
        r = fn(kIoRetryBackoff << attempt);
    }
    if (r.status == Status::IoError)
        giveups.inc();
    return r;
}

// Defined below, next to the write-back handlers that share it.
void appendZeroDiffRuns(std::vector<hostfs::WriteRun> &runs, uint64_t off,
                        const uint8_t *data, uint64_t len);

} // namespace

void
CpuDaemon::enableJournal()
{
    gpufs_assert(!running.load(), "enableJournal after start");
    if (!journal_)
        journal_ = std::make_unique<hostfs::WriteJournal>(fs);
}

bool
CpuDaemon::durableFd(int fd, uint64_t *ino_out)
{
    std::lock_guard<std::mutex> lock(claimMtx);
    auto it = fdClaims.find(fd);
    if (it == fdClaims.end())
        return false;
    if (ino_out)
        *ino_out = it->second.ino;
    return it->second.durable;
}

Status
CpuDaemon::maybeJournal(int fd, const hostfs::WriteRun *runs, unsigned n,
                        Time &t, sim::Resource *io, bool *journaled)
{
    if (!journal_)
        return Status::Ok;
    uint64_t ino = 0;
    if (!durableFd(fd, &ino))
        return Status::Ok;
    if (slotPrejournaled_) {
        // Group commit fast path: the sweep preflight already appended
        // this txn and made it durable with the sweep's ONE groupSync,
        // so the WAL rule (commit durable before the in-place write)
        // holds without a per-RPC fsync here.
        slotPrejournaled_ = false;
        journalCommits.inc();
        journalUnapplied_.fetch_add(1, std::memory_order_relaxed);
        if (journaled)
            *journaled = true;
        t = std::max(t, slotPrejournalTime_);
        // Crash point "commit durable, in-place write never ran":
        // exactly the window recovery's replay exists for.
        if (fs.maybeCrash(sim::CrashPoint::AfterJournalCommit))
            return Status::IoError;
        return Status::Ok;
    }
    // Fallback (preflight append failed or was skipped): per-RPC
    // append + fsync. The sync cannot be deferred to the sweep's end —
    // a crash reverts un-fsynced journal records, so an in-place write
    // issued before the sync would be unrecoverable if torn.
    const Time base = t;
    hostfs::IoResult j = retryTransient(
        fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
            return journal_->append(ino, runs, n, base + backoff, io);
        });
    if (!ok(j.status))
        return j.status;
    hostfs::IoResult s = retryTransient(
        fs, ioRetries, ioRetryGiveups,
        [&](Time backoff) { return journal_->groupSync(j.done + backoff); });
    if (!ok(s.status))
        return s.status;
    journalGroupSyncs.inc();
    journalCommits.inc();
    journalUnapplied_.fetch_add(1, std::memory_order_relaxed);
    if (journaled)
        *journaled = true;
    t = s.done;
    // Crash point "commit durable, in-place write never ran": exactly
    // the window recovery's replay exists for.
    if (fs.maybeCrash(sim::CrashPoint::AfterJournalCommit))
        return Status::IoError;
    return Status::Ok;
}

Status
CpuDaemon::flushJournalSync()
{
    // Never after a crash: the appended records then belong to
    // recovery's replay, and fsyncing a dead store is not transient.
    if (!journal_ || !journal_->syncPending() || fs.crashed())
        return Status::Ok;
    hostfs::IoResult s = retryTransient(
        fs, ioRetries, ioRetryGiveups,
        [&](Time backoff) { return journal_->groupSync(backoff); });
    if (!ok(s.status))
        return s.status;
    journalGroupSyncs.inc();
    return Status::Ok;
}

void
CpuDaemon::prejournalSweep(unsigned port_idx, RpcSlot **all,
                           unsigned total)
{
    if (!journal_ || fs.crashed())
        return;
    auto &sim = ports[port_idx]->dev->simContext();
    bool appended = false;
    for (unsigned s = 0; s < total; ++s) {
        const RpcRequest &req = all[s]->req;
        // Reconstruct exactly the runs the handler will journal (same
        // validation guards, same zero-diff split) — the staging bytes
        // are already host-visible when the slot is claimed; only the
        // D2H DMA's virtual-time charge happens later in the handler.
        std::vector<hostfs::WriteRun> runs;
        switch (req.op) {
        case RpcOp::WritePages:
            if (req.pageCount == 0 || req.pageCount > kMaxBatchPages)
                continue;
            for (unsigned i = 0; i < req.pageCount; ++i) {
                if (req.batchLen[i] == 0)
                    continue;
                if (req.diffAgainstZeros) {
                    appendZeroDiffRuns(runs, req.batchOff[i],
                                       req.batch[i], req.batchLen[i]);
                } else {
                    runs.push_back({req.batchOff[i], req.batchLen[i],
                                    req.batch[i]});
                }
            }
            break;
        case RpcOp::PeerWritePages:
            if (req.pageCount == 0 || req.pageCount > kMaxBatchPages ||
                req.pageLen == 0)
                continue;
            for (unsigned i = 0; i < req.pageCount; ++i) {
                if (req.batchLen[i] == 0)
                    continue;
                runs.push_back({req.batchOff[i], req.batchLen[i],
                                req.batch[i]});
            }
            break;
        case RpcOp::WriteBack:
            if (req.diffAgainstZeros)
                appendZeroDiffRuns(runs, req.offset, req.data, req.len);
            else if (req.len > 0)
                runs.push_back({req.offset, req.len, req.data});
            break;
        default:
            continue;
        }
        uint64_t ino = 0;
        if (runs.empty() || !durableFd(req.hostFd, &ino))
            continue;
        hostfs::IoResult j = retryTransient(
            fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                return journal_->append(ino, runs.data(),
                                        static_cast<unsigned>(runs.size()),
                                        req.issueTime + backoff,
                                        &sim.cpuIo);
            });
        if (!ok(j.status))
            continue; // handler's maybeJournal falls back per-RPC
        prejournalDone_[all[s]] = j.done;
        appended = true;
    }
    if (!appended)
        return;
    hostfs::IoResult gs = retryTransient(
        fs, ioRetries, ioRetryGiveups,
        [&](Time backoff) { return journal_->groupSync(backoff); });
    if (!ok(gs.status) || fs.crashed()) {
        // The group fsync failed (or a crash fired mid-preflight): the
        // appends are NOT durable, so the handlers must not treat them
        // as committed — drop the records and let maybeJournal's
        // per-RPC fallback re-establish the WAL ordering (or surface
        // the error).
        prejournalDone_.clear();
        return;
    }
    journalGroupSyncs.inc();
    // Propagate the sync-durable time into every preflighted slot so
    // resp.done never claims completion before its commit was durable.
    for (auto &e : prejournalDone_)
        e.second = std::max(e.second, gs.done);
}

CpuDaemon::~CpuDaemon()
{
    stop();
}

RpcQueue &
CpuDaemon::attachGpu(gpu::GpuDevice &dev)
{
    gpufs_assert(!running.load(), "attachGpu after start");
    auto port = std::make_unique<GpuPort>();
    port->dev = &dev;
    port->queue = std::make_unique<RpcQueue>(doorbell);
    ports.push_back(std::move(port));
    return *ports.back()->queue;
}

void
CpuDaemon::setPeerSource(unsigned gpu_id, PeerPageSource *src)
{
    if (gpu_id < ports.size())
        ports[gpu_id]->peerSource.store(src, std::memory_order_release);
}

void
CpuDaemon::start()
{
    gpufs_assert(!running.load(), "daemon already running");
    if (journal_) {
        // Crash recovery: replay committed-but-possibly-unapplied
        // write-back txns, discard the torn tail, truncate the journal.
        hostfs::RecoveryStats rs = journal_->recover(0);
        journalTxnsReplayed.inc(rs.txnsReplayed);
        journalTornRecords.inc(rs.tornRecords);
    }
    running.store(true);
    worker = std::thread([this] { loop(); });
}

void
CpuDaemon::stop()
{
    if (!running.exchange(false))
        return;
    doorbell.fetch_add(1);
    doorbell.notify_one();
    if (worker.joinable())
        worker.join();
    // Clean-shutdown checkpoint: every committed txn has been applied
    // in place, so the journal's history is dead weight — flush the
    // covered files and truncate it so the next start() skips replay.
    // Never after a crash (recovery needs the records) and never with
    // a committed-but-unapplied txn outstanding (truncating it would
    // lose the bytes replay exists to restore).
    if (journal_ && !fs.crashed() &&
        journalUnapplied_.load(std::memory_order_acquire) == 0 &&
        journal_->tailOffset() > 0) {
        journal_->checkpoint(0);
        journalCheckpoints.inc();
    }
    // Publish each queue's slot-pressure high-water marks into the
    // StatSet so post-run reports see them next to the service counts.
    for (unsigned i = 0; i < ports.size(); ++i) {
        const std::string prefix = "gpu" + std::to_string(i);
        uint64_t stalls = ports[i]->queue->fullQueueStalls();
        uint64_t subs = ports[i]->queue->submissions();
        stats_.counter(prefix + "_max_inflight_slots")
            .maxWith(ports[i]->queue->maxInFlightSlots());
        stats_.counter(prefix + "_full_queue_stalls").maxWith(stalls);
        stats_.counter(prefix + "_submissions").maxWith(subs);
        stats_.counter(prefix + "_doorbell_rings_suppressed")
            .maxWith(ports[i]->queue->doorbellRingsSuppressed());
        // Doorbell-coalescing decision signal (ROADMAP "RPC slot
        // scaling"): submitters stalling on a full slot array more
        // than ~1% of the time means kQueueSlots, not the daemon, is
        // the bottleneck. Judge THIS report interval's delta — the
        // queue counters are cumulative across start/stop cycles, and
        // re-judging history would re-warn forever on one bad early
        // interval — and warn only on the rising edge of a crossing.
        uint64_t d_stalls = stalls - ports[i]->lastStalls;
        uint64_t d_subs = subs - ports[i]->lastSubs;
        ports[i]->lastStalls = stalls;
        ports[i]->lastSubs = subs;
        bool stalled = d_stalls > 0 && d_stalls * 100 > d_subs;
        if (stalled && !ports[i]->stallWarned) {
            gpufs_warn("gpu%u RPC queue: %llu full-queue stalls over "
                       "%llu submissions this interval (>1%%) — "
                       "consider more slots",
                       i, static_cast<unsigned long long>(d_stalls),
                       static_cast<unsigned long long>(d_subs));
        }
        ports[i]->stallWarned = stalled;
    }
}

void
CpuDaemon::loop()
{
    uint64_t seen = doorbell.load(std::memory_order_acquire);
    while (running.load(std::memory_order_acquire)) {
        bool any = false;
        // Event loop: sweep every GPU's queue, claim everything that
        // is ready, and service the sweep's claims in issue-time order
        // — with split-phase submission one block may have several
        // slots outstanding, and servicing them in slot-array order
        // would reserve the serialized CPU timeline acausally. Each
        // slot still completes individually the moment it is serviced
        // (out-of-order delivery relative to submission).
        for (unsigned i = 0; i < ports.size(); ++i) {
            RpcSlot *batch[kQueueSlots];
            unsigned n;
            while ((n = ports[i]->queue->pollAll(batch, kQueueSlots))
                   > 0) {
                serviceSweep(i, batch, n);
                any = true;
            }
            // Aggregation linger: a sweep parked an under-filled
            // ReadPages group because the occupancy census showed more
            // of the burst still arriving. Hold here while that
            // evidence persists (bounded spin — a block mid-fill
            // publishes in microseconds), merge the stragglers when
            // they land, and flush the parked slots solo once the
            // census empties or the bound expires.
            unsigned spins = 0;
            while (!ports[i]->parked.empty()) {
                any = true;
                if ((n = ports[i]->queue->pollAll(batch, kQueueSlots))
                    > 0) {
                    serviceSweep(i, batch, n);
                    continue;
                }
                if (ports[i]->queue->occupiedHint() == 0 ||
                    ++spins > kLingerMaxSpins ||
                    !running.load(std::memory_order_acquire)) {
                    serviceSweep(i, nullptr, 0);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        }
        if (!any) {
            // Nothing ready: park on the doorbell (simulated poll).
            uint64_t cur = doorbell.load(std::memory_order_acquire);
            if (cur == seen)
                doorbell.wait(cur, std::memory_order_acquire);
            seen = doorbell.load(std::memory_order_acquire);
        }
    }
    // Drain: flush anything still parked (belt and braces — the
    // linger spin flushes on the running edge), then fail requests
    // that raced with shutdown so no GPU block waits forever.
    for (unsigned i = 0; i < ports.size(); ++i) {
        if (!ports[i]->parked.empty())
            serviceSweep(i, nullptr, 0);
    }
    for (auto &port : ports) {
        RpcSlot *slot;
        while ((slot = port->queue->poll()) != nullptr) {
            RpcResponse resp;
            resp.status = Status::IoError;
            resp.done = slot->req.issueTime;
            RpcQueue::complete(*slot, resp);
        }
    }
}

void
CpuDaemon::serviceSweep(unsigned port_idx, RpcSlot **batch, unsigned n)
{
    GpuPort &port = *ports[port_idx];
    // Merge slots the aggregation linger parked last sweep ahead of
    // this sweep's claims; a merged slot is never parked twice.
    RpcSlot *all[2 * kQueueSlots];
    const bool had_parked = !port.parked.empty();
    unsigned total = 0;
    for (RpcSlot *s : port.parked)
        all[total++] = s;
    port.parked.clear();
    for (unsigned i = 0; i < n; ++i)
        all[total++] = batch[i];
    if (total == 0)
        return;
    std::sort(all, all + total,
              [](const RpcSlot *a, const RpcSlot *b) {
                  return a->req.issueTime < b->req.issueTime;
              });
    // Serving tier: with weights configured and several tenants in the
    // sweep, re-emit in weighted deficit-round-robin order so a scan
    // tenant's deep batches reserve the serialized CPU timeline AFTER
    // the point tenants' slots instead of ahead of them.
    drrOrder(port, all, total);
    // Group commit: append every write-op slot's journal txn and make
    // them durable with ONE fsync before any handler's in-place write
    // runs (see prejournalSweep for the WAL ordering argument).
    prejournalSweep(port_idx, all, total);
    // Cross-block RPC aggregation: the burst a coalesced doorbell
    // delivered as one sweep usually carries many blocks' ReadPages
    // on the SAME file (a shared scan) — gather each same-file set
    // into one host read instead of k. Groups are serviced at their
    // first member's place in the emission order; everything else
    // keeps the plain per-slot path.
    bool taken[2 * kQueueSlots] = {};
    for (unsigned s = 0; s < total; ++s) {
        if (taken[s])
            continue;
        RpcSlot *group[2 * kQueueSlots];
        unsigned k = 0;
        const RpcRequest &req = all[s]->req;
        // Requests the victim tier fully covers stay OUT of the
        // gathered storage read: served individually they skip the
        // host read entirely (one H2D from host RAM), which is the
        // whole point of the tier. victimCoversReq is a count-free
        // peek, so members that do ride a group keep exact hit/miss
        // accounting.
        if (req.op == RpcOp::ReadPages && req.pageCount > 0 &&
            req.pageCount <= kMaxBatchPages && !victimCoversReq(req)) {
            group[k++] = all[s];
            for (unsigned t = s + 1; t < total; ++t) {
                if (taken[t])
                    continue;
                const RpcRequest &r2 = all[t]->req;
                if (r2.op == RpcOp::ReadPages &&
                    r2.hostFd == req.hostFd &&
                    r2.pageCount > 0 && r2.pageCount <= kMaxBatchPages &&
                    !victimCoversReq(r2)) {
                    group[k++] = all[t];
                    taken[t] = true;
                }
            }
        }
        if (k >= 2) {
            handleReadPagesGroup(port_idx, group, k);
            requestsServed.inc(k);
            for (unsigned m = 0; m < k; ++m) {
                tenantRpcs[group[m]->req.tenant % core::kMaxTenants]
                    ->inc();
            }
        } else if (k == 1 && linger_ != 0 && !had_parked &&
                   port.queue->occupiedHint() > 0) {
            // Under-filled group with the burst visibly still arriving
            // (slots Filling/Ready in the census): park it for one
            // extra sweep instead of issuing a lone host read — the
            // loop's linger spin merges it with the stragglers, or
            // flushes it solo at the (virtual-deadline-sized) bound.
            port.parked.push_back(all[s]);
        } else {
            auto pj = prejournalDone_.find(all[s]);
            if (pj != prejournalDone_.end()) {
                slotPrejournaled_ = true;
                slotPrejournalTime_ = pj->second;
                prejournalDone_.erase(pj);
            }
            RpcResponse resp = handle(port_idx, req);
            slotPrejournaled_ = false;
            RpcQueue::complete(*all[s], resp);
            requestsServed.inc();
            tenantRpcs[req.tenant % core::kMaxTenants]->inc();
        }
    }
    // Belt and braces: a per-RPC fallback append syncs inline, so
    // nothing should be pending here — but never leave a sweep with
    // un-synced journal records (a later in-place write would outrun
    // them).
    flushJournalSync();
}

void
CpuDaemon::drrOrder(GpuPort &port, RpcSlot **batch, unsigned n)
{
    if (!drr_ || n < 2)
        return;
    // Stable partition into per-tenant sublists, so each tenant's own
    // requests keep their issue-time order.
    std::vector<RpcSlot *> per[core::kMaxTenants];
    unsigned present = 0;
    for (unsigned i = 0; i < n; ++i) {
        uint8_t t = batch[i]->req.tenant % core::kMaxTenants;
        if (per[t].empty())
            ++present;
        per[t].push_back(batch[i]);
    }
    if (present < 2)
        return;
    // DRR emission: each round credits every backlogged tenant its
    // weight and emits requests while the deficit covers their page
    // cost — a 16-page scan batch needs 16 credits, a point lookup 1,
    // so light tenants drain ahead of a heavy tenant's backlog in
    // proportion to weight. Rounds repeat until the sweep drains
    // (every request IS serviced — DRR shapes order, never drops).
    unsigned head[core::kMaxTenants] = {};
    unsigned emitted = 0;
    while (emitted < n) {
        for (unsigned t = 0; t < core::kMaxTenants; ++t) {
            if (head[t] >= per[t].size())
                continue;
            port.drrDeficit[t] +=
                tenantWeight_[t] != 0 ? tenantWeight_[t] : 1;
            while (head[t] < per[t].size()) {
                const RpcRequest &r = per[t][head[t]]->req;
                uint64_t cost = r.pageCount != 0 ? r.pageCount : 1;
                if (port.drrDeficit[t] < cost)
                    break;
                port.drrDeficit[t] -= cost;
                batch[emitted++] = per[t][head[t]++];
            }
        }
    }
    // Classic DRR empty-queue rule: a drained tenant banks no credit
    // (every tenant drains within the sweep, so deficits stay bounded
    // by one request's cost).
    for (unsigned t = 0; t < core::kMaxTenants; ++t) {
        if (!per[t].empty())
            port.drrDeficit[t] = 0;
    }
}

void
CpuDaemon::handleReadPagesGroup(unsigned port_idx, RpcSlot **group,
                                unsigned k)
{
    gpu::GpuDevice &dev = *ports[port_idx]->dev;
    auto &sim = dev.simContext();
    const auto &p = sim.params;

    // One daemon action for the whole group: the sweep claimed every
    // member together, so the shared CPU-overhead reservation starts
    // once the LAST member's request has crossed the queue — k
    // requests, ONE rpcCpuOverhead instead of k.
    Time ready = 0;
    for (unsigned m = 0; m < k; ++m)
        ready = std::max(ready, group[m]->req.issueTime);
    ready += p.rpcSubmitLat;
    Time t0 = sim.cpuIo.reserve(ready, p.rpcCpuOverhead).end;

    std::vector<hostfs::ReadRun> runs(k);
    for (unsigned m = 0; m < k; ++m) {
        const RpcRequest &req = group[m]->req;
        runs[m] = {req.offset, req.batch, req.pageCount, req.pageLen};
    }
    hostfs::IoResult r = retryTransient(
        fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
            return backend_->readRuns(group[0]->req.hostFd, runs.data(), k,
                                      t0 + backoff, dev.id());
        });
    if (!ok(r.status)) {
        // Gathered read refused (stale fd raced a close, or a host
        // fault outlived the retry budget): fall back to serving each
        // member alone so per-slot status stays exact — a member that
        // still fails completes with its error IoResult and the
        // requesting GPU restores the frames it claimed.
        for (unsigned m = 0; m < k; ++m) {
            RpcResponse resp = handle(port_idx, group[m]->req);
            RpcQueue::complete(*group[m], resp);
        }
        return;
    }
    hostReadCalls.inc();
    coalescedRpcs.inc(k - 1);
    for (unsigned m = 0; m < k; ++m) {
        if (group[m]->req.speculative)
            raPagesFetched.inc(group[m]->req.pageCount);
    }

    // The gathered bytes ride ONE H2D DMA reservation (one setup cost);
    // every member's completion fans back out with its own byte count.
    Time done = chargeH2dDma(dev, r.bytes, r.done);
    for (unsigned m = 0; m < k; ++m) {
        RpcResponse resp;
        resp.status = Status::Ok;
        resp.bytes = runs[m].bytes;
        resp.done = done;
        RpcQueue::complete(*group[m], resp);
    }
}

RpcResponse
CpuDaemon::handle(unsigned port_idx, const RpcRequest &req)
{
    gpu::GpuDevice &dev = *ports[port_idx]->dev;
    auto &sim = dev.simContext();
    const auto &p = sim.params;

    // Every request pays queue-submit latency plus the daemon's
    // per-request handling on the (single) host CPU it is pinned to.
    Time ready = req.issueTime + p.rpcSubmitLat;
    Time t0 = sim.cpuIo.reserve(ready, p.rpcCpuOverhead).end;

    RpcResponse resp;
    switch (req.op) {
      case RpcOp::Open:
        resp = handleOpen(dev, req);
        resp.done = t0;
        break;
      case RpcOp::Close:
        resp = handleClose(dev, req);
        resp.done = t0;
        break;
      case RpcOp::ReadPage: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handleReadPage(dev, timed);
        break;
      }
      case RpcOp::ReadPages: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handleReadPages(dev, timed);
        break;
      }
      case RpcOp::WriteBack: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handleWriteBack(dev, timed);
        break;
      }
      case RpcOp::WritePages: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handleWritePages(dev, timed);
        break;
      }
      case RpcOp::PeerReadPages: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handlePeerReadPages(dev, timed);
        break;
      }
      case RpcOp::PeerWritePages: {
        RpcRequest timed = req;
        timed.issueTime = t0;
        resp = handlePeerWritePages(dev, timed);
        break;
      }
      case RpcOp::Fsync: {
        uint64_t ino = 0;
        if (req.durableBarrier && journal_ && durableFd(req.hostFd, &ino)) {
            // gmsync barrier on a journaled file: the commit record IS
            // the durability point — force the sweep's group commit
            // out first (same-sweep appends must be covered), then
            // answer from the commit record. No data-file fsync.
            journalCommitBarriers.inc();
            Status js = flushJournalSync();
            if (!ok(js)) {
                resp.status = js;
                resp.done = t0;
                break;
            }
            resp.status = Status::Ok;
            resp.done = std::max(t0, journal_->lastCommitDone(ino));
        } else {
            hostfs::IoResult r = retryTransient(
                fs, ioRetries, ioRetryGiveups,
                [&](Time backoff) {
                    return backend_->sync(req.hostFd, t0 + backoff,
                                          dev.id());
                });
            resp.status = r.status;
            resp.done = r.done;
        }
        break;
      }
      case RpcOp::Truncate: {
        resp.status = fs.ftruncate(req.hostFd, req.offset);
        if (ok(resp.status)) {
            hostfs::FileInfo info;
            if (ok(fs.fstat(req.hostFd, &info))) {
                resp.size = info.size;
                resp.version = info.version;
            }
        }
        resp.done = t0;
        break;
      }
      case RpcOp::Unlink: {
        hostfs::FileInfo info;
        if (ok(fs.stat(req.path, &info))) {
            consistency.dropFile(info.ino);
            if (victim_)
                victim_->dropFile(info.ino);
        }
        resp.status = fs.unlink(req.path);
        resp.done = t0;
        break;
      }
      case RpcOp::Stat: {
        hostfs::FileInfo info;
        resp.status = fs.stat(req.path, &info);
        if (ok(resp.status)) {
            resp.ino = info.ino;
            resp.size = info.size;
            resp.version = info.version;
        }
        resp.done = t0;
        break;
      }
      case RpcOp::Nop:
        resp.done = t0;
        break;
    }
    return resp;
}

RpcResponse
CpuDaemon::handleOpen(gpu::GpuDevice &dev, const RpcRequest &req)
{
    RpcResponse resp;
    Status st;
    int fd = fs.open(req.path, req.flags, &st);
    if (fd < 0) {
        resp.status = st;
        return resp;
    }
    hostfs::FileInfo info;
    fs.fstat(fd, &info);

    Status adm = consistency.acquireOpen(dev.id(), info.ino, req.wantsWrite,
                                         req.mergeableWriter);
    if (!ok(adm)) {
        fs.close(fd);
        resp.status = adm;
        return resp;
    }
    {
        std::lock_guard<std::mutex> lock(claimMtx);
        fdClaims[fd] = {info.ino, req.wantsWrite,
                        (req.flags & hostfs::O_GDURABLE_F) != 0};
    }
    resp.status = Status::Ok;
    resp.hostFd = fd;
    resp.ino = info.ino;
    resp.size = info.size;
    resp.version = info.version;
    return resp;
}

RpcResponse
CpuDaemon::handleClose(gpu::GpuDevice &dev, const RpcRequest &req)
{
    RpcResponse resp;
    FdClaim claim{0, false, false};
    bool have_claim = false;
    {
        std::lock_guard<std::mutex> lock(claimMtx);
        auto it = fdClaims.find(req.hostFd);
        if (it != fdClaims.end()) {
            claim = it->second;
            have_claim = true;
            fdClaims.erase(it);
        }
    }
    if (have_claim)
        consistency.releaseOpen(dev.id(), claim.ino, claim.write);
    resp.status = fs.close(req.hostFd);
    return resp;
}

Time
CpuDaemon::chargeH2dDma(gpu::GpuDevice &dev, uint64_t bytes, Time ready)
{
    // Staging -> GPU: one DMA reservation on this GPU's H2D channel.
    // Functionally the host read already placed the bytes (one copy in
    // simulation).
    auto &sim = dev.simContext();
    const auto &p = sim.params;
    bytesToGpu.inc(bytes);
    // Zero-copy backends DMA straight into the frame arena — the read
    // charge already covered the wire, so no second PCIe hop here.
    if (bytes == 0 || !p.chargeDma || backend_->directToGpu())
        return ready;
    Time dur = p.dmaSetup + transferTime(bytes, p.pcieBwH2DMBps);
    sim::Resource &channel =
        p.serializeDmaWithIo ? sim.cpuIo : dev.pcieH2D();
    return channel.reserve(ready, dur).end;
}

Time
CpuDaemon::chargeVictimH2d(gpu::GpuDevice &dev, uint64_t bytes, Time ready)
{
    // Victim-tier hit: host RAM -> GPU. No directToGpu() shortcut —
    // gds DMAs STORAGE reads straight to the device, but these bytes
    // sit in the pinned host pool and cross PCIe with any backend.
    auto &sim = dev.simContext();
    const auto &p = sim.params;
    bytesToGpu.inc(bytes);
    if (bytes == 0 || !p.chargeDma)
        return ready;
    Time dur = p.dmaSetup + transferTime(bytes, p.pcieBwH2DMBps);
    sim::Resource &channel =
        p.serializeDmaWithIo ? sim.cpuIo : dev.pcieH2D();
    return channel.reserve(ready, dur).end;
}

bool
CpuDaemon::victimCoversReq(const RpcRequest &req)
{
    if (!victim_ || req.pageLen == 0 || req.pageCount == 0 ||
        req.offset % req.pageLen != 0) {
        return false;
    }
    hostfs::FileInfo info;
    if (!ok(fs.fstat(req.hostFd, &info)))
        return false;
    uint64_t expect[kMaxBatchPages];
    for (unsigned i = 0; i < req.pageCount; ++i) {
        uint64_t off = req.offset + uint64_t(i) * req.pageLen;
        expect[i] = off < info.size
            ? std::min<uint64_t>(req.pageLen, info.size - off) : 0;
    }
    return victim_->coversRun(info.ino, req.offset / req.pageLen,
                              req.pageCount, info.version, expect);
}

void
CpuDaemon::victimInvalidate(int host_fd, const hostfs::WriteRun *runs,
                            unsigned n)
{
    if (!victim_ || n == 0)
        return;
    hostfs::FileInfo info;
    if (!ok(fs.fstat(host_fd, &info)))
        return;
    for (unsigned i = 0; i < n; ++i)
        victim_->invalidateRange(info.ino, runs[i].offset, runs[i].len);
}

RpcResponse
CpuDaemon::handleReadPage(gpu::GpuDevice &dev, const RpcRequest &req)
{
    RpcResponse resp;

    // Victim-tier probe before the storage backend: a demotion-staged
    // page at the host's current version is served from host RAM with
    // one H2D DMA — no host read call at all. Probing only aligned
    // whole-page reads inside the file keeps the gate simple; anything
    // else takes the normal path.
    if (victim_ && req.len > 0 && req.offset % req.len == 0) {
        hostfs::FileInfo info;
        if (ok(fs.fstat(req.hostFd, &info)) && req.offset < info.size) {
            uint64_t expect =
                std::min<uint64_t>(req.len, info.size - req.offset);
            Time vready = req.issueTime;
            if (victim_->probe(info.ino, req.offset / req.len,
                               info.version, req.data, expect,
                               &vready)) {
                resp.status = Status::Ok;
                resp.bytes = expect;
                resp.done = chargeVictimH2d(dev, expect, vready);
                return resp;
            }
        }
    }

    // Host file -> staging: the daemon's pread, serialized on cpuIo.
    hostfs::IoResult r = retryTransient(
        fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
            return backend_->read(req.hostFd, req.data, req.len, req.offset,
                                  req.issueTime + backoff, dev.id());
        });
    hostReadCalls.inc();
    resp.status = r.status;
    resp.bytes = r.bytes;
    resp.done = chargeH2dDma(dev, r.bytes, r.done);
    return resp;
}

RpcResponse
CpuDaemon::handleReadPages(gpu::GpuDevice &dev, const RpcRequest &req)
{
    RpcResponse resp;
    if (req.pageCount == 0 || req.pageCount > kMaxBatchPages) {
        resp.status = Status::Inval;
        resp.done = req.issueTime;
        return resp;
    }

    // Victim-tier probe: serve whatever pages the tier holds at the
    // host's current version from host RAM, and read only the
    // remaining contiguous miss-runs from storage. Zero hits falls
    // through to the legacy single-vectored-read path unchanged.
    if (victim_ && req.pageLen > 0 && req.offset % req.pageLen == 0) {
        hostfs::FileInfo info;
        if (ok(fs.fstat(req.hostFd, &info))) {
            const uint64_t plen = req.pageLen;
            const uint64_t first = req.offset / plen;
            bool hit[kMaxBatchPages] = {};
            uint64_t expect[kMaxBatchPages];
            uint64_t hit_bytes = 0;
            Time vready = req.issueTime;
            unsigned hits = 0;
            for (unsigned i = 0; i < req.pageCount; ++i) {
                uint64_t off = req.offset + uint64_t(i) * plen;
                expect[i] = off < info.size
                    ? std::min<uint64_t>(plen, info.size - off) : 0;
                if (expect[i] == 0)
                    continue;
                if (victim_->probe(info.ino, first + i, info.version,
                                   req.batch[i], expect[i], &vready)) {
                    hit[i] = true;
                    hit_bytes += expect[i];
                    ++hits;
                }
            }
            if (hits > 0) {
                if (req.speculative)
                    raPagesFetched.inc(req.pageCount);
                Time done = req.issueTime;
                uint64_t total = hit_bytes;
                unsigned i = 0;
                while (i < req.pageCount) {
                    if (hit[i] || expect[i] == 0) {
                        ++i;
                        continue;
                    }
                    unsigned run = i;
                    while (run < req.pageCount && !hit[run] &&
                           expect[run] != 0) {
                        ++run;
                    }
                    hostfs::IoResult r = retryTransient(
                        fs, ioRetries, ioRetryGiveups,
                        [&](Time backoff) {
                            return backend_->readPages(
                                req.hostFd, &req.batch[i], run - i, plen,
                                req.offset + uint64_t(i) * plen,
                                req.issueTime + backoff, dev.id());
                        });
                    hostReadCalls.inc();
                    if (!ok(r.status)) {
                        resp.status = r.status;
                        resp.done = done;
                        return resp;
                    }
                    total += r.bytes;
                    done = std::max(done,
                                    chargeH2dDma(dev, r.bytes, r.done));
                    i = run;
                }
                done = std::max(done,
                                chargeVictimH2d(dev, hit_bytes, vready));
                resp.status = Status::Ok;
                resp.bytes = total;
                resp.done = done;
                return resp;
            }
        }
    }

    // Host file -> staging: ONE vectored pread for the whole extent,
    // serialized on cpuIo — the per-request CPU overhead was already
    // charged once per batch by handle(), which is the point of
    // batching (amortizing GPU->CPU request costs). The batch then
    // rides ONE DMA reservation (a single setup cost).
    if (req.speculative)
        raPagesFetched.inc(req.pageCount);
    hostfs::IoResult r = retryTransient(
        fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
            return backend_->readPages(req.hostFd, req.batch, req.pageCount,
                                       req.pageLen, req.offset,
                                       req.issueTime + backoff, dev.id());
        });
    hostReadCalls.inc();
    resp.status = r.status;
    resp.bytes = r.bytes;
    resp.done = chargeH2dDma(dev, r.bytes, r.done);
    return resp;
}

PeerPageSource *
CpuDaemon::peerSourceOf(const RpcRequest &req)
{
    if (req.peerGpu >= ports.size())
        return nullptr;
    return ports[req.peerGpu]->peerSource.load(std::memory_order_acquire);
}

Time
CpuDaemon::chargeP2pDma(gpu::GpuDevice &dev, unsigned src, unsigned dst,
                        uint64_t bytes, Time ready)
{
    auto &sim = dev.simContext();
    const auto &p = sim.params;
    bytesPeer.inc(bytes);
    if (bytes == 0 || !p.chargeDma)
        return ready;
    Time dur = p.p2pDmaSetup + transferTime(bytes, p.pcieP2PBwMBps);
    // One reservation per request on the pair's own channel: peer
    // transfers of different GPU pairs overlap instead of serializing
    // on the daemon's cpuIo path or the host PCIe links.
    return sim.p2p(src, dst).reserve(ready, dur).end;
}

RpcResponse
CpuDaemon::handlePeerReadPages(gpu::GpuDevice &dev, const RpcRequest &req)
{
    RpcResponse resp;
    if (req.pageCount == 0 || req.pageCount > kMaxBatchPages ||
        req.pageLen == 0) {
        resp.status = Status::Inval;
        resp.done = req.issueTime;
        return resp;
    }
    peerReadRpcs.inc();
    if (req.speculative)
        raPagesFetched.inc(req.pageCount);
    PeerPageSource *src = peerSourceOf(req);
    const uint64_t plen = req.pageLen;
    const Time t0 = req.issueTime;

    // First pass: serve what the owner holds. The copy itself is
    // functional (the provider pins the owner frame for its duration);
    // the virtual cost is one P2P DMA reservation covering the served
    // bytes, ready no earlier than the latest source frame's own
    // DMA-completion time.
    bool served[kMaxBatchPages] = {};
    uint32_t valid[kMaxBatchPages] = {};
    uint64_t p2p_bytes = 0;
    Time p2p_ready = t0;
    unsigned forwarded = 0;
    for (unsigned i = 0; i < req.pageCount; ++i) {
        uint64_t idx = req.offset / plen + i;
        if (src && src->peerCopyPage(req.ino, idx, req.version,
                                     req.batch[i], &valid[i],
                                     &p2p_ready)) {
            served[i] = true;
            p2p_bytes += plen;
            ++forwarded;
        }
    }

    // Victim-tier pass: pages the owner declined may still sit staged
    // in host RAM from an earlier demotion — serve those with one H2D
    // charge instead of joining the storage fallback below. Gated on
    // the host's CURRENT version like every probe.
    uint64_t vc_bytes = 0;
    Time vc_ready = t0;
    if (victim_ && req.offset % plen == 0) {
        hostfs::FileInfo vinfo;
        if (ok(fs.fstat(req.hostFd, &vinfo))) {
            for (unsigned j = 0; j < req.pageCount; ++j) {
                if (served[j])
                    continue;
                uint64_t off = req.offset + uint64_t(j) * plen;
                if (off >= vinfo.size)
                    continue;
                uint64_t expect =
                    std::min<uint64_t>(plen, vinfo.size - off);
                if (victim_->probe(vinfo.ino, off / plen, vinfo.version,
                                   req.batch[j], expect, &vc_ready)) {
                    served[j] = true;
                    valid[j] = static_cast<uint32_t>(expect);
                    vc_bytes += expect;
                }
            }
        }
    }

    // Second pass: host fallback for the runs the owner could not
    // serve — each contiguous run is one vectored pread on the
    // daemon's serialized I/O path, exactly the ReadPages charge.
    Time host_done = t0;
    uint64_t host_bytes = 0;
    unsigned i = 0;
    while (i < req.pageCount) {
        if (served[i]) {
            ++i;
            continue;
        }
        unsigned run = i;
        while (run < req.pageCount && !served[run])
            ++run;
        hostfs::IoResult r = retryTransient(
            fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                return backend_->readPages(
                    req.hostFd, &req.batch[i], run - i, plen,
                    req.offset + uint64_t(i) * plen, t0 + backoff,
                    dev.id());
            });
        if (!ok(r.status)) {
            resp.status = r.status;
            resp.done = host_done;
            return resp;
        }
        for (unsigned j = i; j < run; ++j) {
            uint64_t base = uint64_t(j - i) * plen;
            valid[j] = static_cast<uint32_t>(
                r.bytes > base ? std::min<uint64_t>(plen, r.bytes - base)
                               : 0);
        }
        // Owner warming: the fallback read these bytes BECAUSE the
        // owner was cold — adopt them into the owner's cache in the
        // same RPC (best effort: try-locks, free frames above the
        // claim reserve, the faulting tenant under its quota), so a
        // repeat miss on the page forwards peer-to-peer instead of
        // paying the storage round trip again.
        if (src) {
            for (unsigned j = i; j < run; ++j) {
                if (valid[j] == 0)
                    continue;
                if (src->peerAdoptPage(req.ino, req.offset / plen + j,
                                       req.version, req.batch[j],
                                       valid[j], r.done, req.tenant)) {
                    peerPagesAdopted.inc();
                }
            }
        }
        host_bytes += r.bytes;
        host_done = std::max(host_done, r.done);
        i = run;
    }
    peerPagesForwarded.inc(forwarded);
    peerPagesHost.inc(req.pageCount - forwarded);

    Time done = t0;
    if (host_bytes > 0)
        done = std::max(done, chargeH2dDma(dev, host_bytes, host_done));
    if (vc_bytes > 0)
        done = std::max(done, chargeVictimH2d(dev, vc_bytes, vc_ready));
    if (p2p_bytes > 0) {
        done = std::max(done, chargeP2pDma(dev, req.peerGpu, req.gpuId,
                                           p2p_bytes, p2p_ready));
    }

    // Valid bytes are contiguous from the batch start (short pages
    // only at EOF — the provider declines anything else), so a single
    // total preserves the ReadPages response contract.
    uint64_t total_valid = 0;
    for (unsigned j = 0; j < req.pageCount; ++j)
        total_valid += valid[j];
    resp.status = Status::Ok;
    resp.bytes = total_valid;
    resp.peerPages = forwarded;
    resp.done = done;
    return resp;
}

RpcResponse
CpuDaemon::handlePeerWritePages(gpu::GpuDevice &dev, const RpcRequest &req)
{
    auto &sim = dev.simContext();
    RpcResponse resp;
    if (req.pageCount == 0 || req.pageCount > kMaxBatchPages ||
        req.pageLen == 0) {
        resp.status = Status::Inval;
        resp.done = req.issueTime;
        return resp;
    }
    peerWriteRpcs.inc();
    PeerPageSource *src = peerSourceOf(req);
    const uint64_t plen = req.pageLen;

    // Host write-through FIRST: the whole batch rides ONE D2H DMA and
    // lands as ONE gathered pwritev — identical durability and version
    // semantics to plain WritePages (the PR-2 machinery above this op
    // is untouched). Mirroring happens only after the bytes are
    // durable: a failed host write must not leave the owner's cache
    // holding never-durable bytes at a still-matching version.
    uint64_t total = 0;
    for (unsigned i = 0; i < req.pageCount; ++i)
        total += req.batchLen[i];
    Time t = chargeD2hDma(dev, total, req.issueTime);

    std::vector<hostfs::WriteRun> runs;
    runs.reserve(req.pageCount);
    for (unsigned i = 0; i < req.pageCount; ++i) {
        if (req.batchLen[i] == 0)
            continue;
        runs.push_back({req.batchOff[i], req.batchLen[i], req.batch[i]});
    }
    resp.status = Status::Ok;
    resp.done = t;
    uint64_t new_version = 0;
    if (!runs.empty()) {
        bool journaled = false;
        Status js = maybeJournal(req.hostFd, runs.data(),
                                 static_cast<unsigned>(runs.size()), t,
                                 &sim.cpuIo, &journaled);
        if (!ok(js)) {
            resp.status = js;
            resp.done = t;
            return resp;
        }
        hostfs::IoResult w = retryTransient(
            fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                return backend_->writev(req.hostFd, runs.data(),
                                        static_cast<unsigned>(runs.size()),
                                        t + backoff, dev.id());
            });
        if (!ok(w.status)) {
            resp.status = w.status;
            return resp;
        }
        journalApplied(journaled);
        victimInvalidate(req.hostFd, runs.data(),
                         static_cast<unsigned>(runs.size()));
        resp.bytes = w.bytes;
        resp.version = w.version;
        resp.done = w.done;
        new_version = w.version;
    }

    // Mirror the now-durable extents into the owner's resident pages
    // (the requester's takeDirtyBatch holds the source fpage locks, so
    // the bytes are stable): the owner's copy then matches the
    // post-write host content, and later peer reads keep serving
    // current data instead of failing their version gate. The mirror
    // bytes ride the pair's P2P channel.
    unsigned mirrored = 0;
    unsigned nonzero = 0;
    uint64_t p2p_bytes = 0;
    for (unsigned i = 0; i < req.pageCount; ++i) {
        if (req.batchLen[i] == 0)
            continue;
        ++nonzero;
        uint64_t idx = req.batchOff[i] / plen;
        uint32_t in_page = static_cast<uint32_t>(req.batchOff[i] % plen);
        if (src && src->peerMirrorExtent(req.ino, idx, req.version,
                                         in_page, req.batch[i],
                                         req.batchLen[i])) {
            ++mirrored;
            p2p_bytes += req.batchLen[i];
        }
    }
    if (p2p_bytes > 0) {
        resp.done = std::max(resp.done,
                             chargeP2pDma(dev, req.gpuId, req.peerGpu,
                                          p2p_bytes, req.issueTime));
    }
    // A fully-mirrored batch leaves the owner's cache equal to the
    // post-write host content, so the owner's version advances with
    // the write instead of going stale — but only when the requester
    // marked this RPC as its write's ONLY partition (peerPublish):
    // when sibling partitions changed other pages of the same file in
    // the same flush, the owner may cache those pages too and a
    // publish would wrongly validate them.
    if (src && req.peerPublish && new_version != 0 &&
        mirrored == nonzero && nonzero > 0) {
        src->peerPublishVersion(req.ino, req.version, new_version);
    }
    peerExtentsMirrored.inc(mirrored);
    bytesFromGpu.inc(total);
    resp.peerPages = mirrored;
    return resp;
}

Time
CpuDaemon::chargeD2hDma(gpu::GpuDevice &dev, uint64_t bytes, Time ready)
{
    auto &sim = dev.simContext();
    const auto &p = sim.params;
    if (bytes == 0 || !p.chargeDma || backend_->directToGpu())
        return ready;
    Time dur = p.dmaSetup + transferTime(bytes, p.pcieBwD2HMBps);
    sim::Resource &channel =
        p.serializeDmaWithIo ? sim.cpuIo : dev.pcieD2H();
    return channel.reserve(ready, dur).end;
}

namespace {

/**
 * O_GWRONCE: the pristine copy is implicitly all zeros, so the
 * locally-modified bytes are exactly the non-zero ones. Append maximal
 * non-zero runs of [data, data+len) (landing at file offset @p off) so
 * concurrent writers to other regions of the same page are not
 * reverted (§3.1).
 */
void
appendZeroDiffRuns(std::vector<hostfs::WriteRun> &runs, uint64_t off,
                   const uint8_t *data, uint64_t len)
{
    uint64_t i = 0;
    while (i < len) {
        while (i < len && data[i] == 0)
            ++i;
        uint64_t run = i;
        while (run < len && data[run] != 0)
            ++run;
        if (run > i)
            runs.push_back({off + i, run - i, data + i});
        i = run;
    }
}

} // namespace

RpcResponse
CpuDaemon::handleWriteBack(gpu::GpuDevice &dev, const RpcRequest &req)
{
    auto &sim = dev.simContext();
    RpcResponse resp;

    // GPU page -> staging: DMA on the D2H channel.
    Time t = chargeD2hDma(dev, req.len, req.issueTime);

    uint64_t written = 0;
    uint64_t version = 0;
    if (req.diffAgainstZeros) {
        // The non-zero runs land as ONE gathered pwritev: a single
        // syscall charge on the daemon's I/O path and a single version
        // bump — never per-run overhead or per-run version churn.
        std::vector<hostfs::WriteRun> runs;
        appendZeroDiffRuns(runs, req.offset, req.data, req.len);
        if (!runs.empty()) {
            bool journaled = false;
            Status js = maybeJournal(req.hostFd, runs.data(),
                                     static_cast<unsigned>(runs.size()), t,
                                     &sim.cpuIo, &journaled);
            if (!ok(js)) {
                resp.status = js;
                resp.done = t;
                return resp;
            }
            hostfs::IoResult w = retryTransient(
                fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                    return backend_->writev(
                        req.hostFd, runs.data(),
                        static_cast<unsigned>(runs.size()), t + backoff,
                        dev.id());
                });
            if (!ok(w.status)) {
                resp.status = w.status;
                resp.done = t;
                return resp;
            }
            journalApplied(journaled);
            victimInvalidate(req.hostFd, runs.data(),
                             static_cast<unsigned>(runs.size()));
            written = w.bytes;
            version = w.version;
            t = w.done;
        }
    } else {
        hostfs::WriteRun run{req.offset, req.len, req.data};
        bool journaled = false;
        Status js = maybeJournal(req.hostFd, &run, 1, t, &sim.cpuIo,
                                 &journaled);
        if (!ok(js)) {
            resp.status = js;
            resp.done = t;
            return resp;
        }
        hostfs::IoResult w = retryTransient(
            fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                return backend_->write(req.hostFd, req.data, req.len,
                                       req.offset, t + backoff, dev.id());
            });
        if (!ok(w.status)) {
            resp.status = w.status;
            resp.done = w.done;
            return resp;
        }
        journalApplied(journaled);
        victimInvalidate(req.hostFd, &run, 1);
        written = w.bytes;
        version = w.version;
        t = w.done;
    }
    bytesFromGpu.inc(req.len);
    resp.status = Status::Ok;
    resp.bytes = written;
    resp.done = t;
    // Report the post-write version so the writing GPU can keep its
    // cached version current (its own writes are not "remote" changes).
    resp.version = version;
    return resp;
}

RpcResponse
CpuDaemon::handleWritePages(gpu::GpuDevice &dev, const RpcRequest &req)
{
    auto &sim = dev.simContext();
    RpcResponse resp;
    if (req.pageCount == 0 || req.pageCount > kMaxBatchPages) {
        resp.status = Status::Inval;
        resp.done = req.issueTime;
        return resp;
    }

    // GPU pages -> staging: the whole batch rides ONE D2H DMA
    // reservation (a single setup cost) — the per-request CPU overhead
    // was already charged once per batch by handle(), which is the
    // point of batching (amortizing GPU->CPU request costs).
    uint64_t total = 0;
    for (unsigned i = 0; i < req.pageCount; ++i)
        total += req.batchLen[i];
    Time t = chargeD2hDma(dev, total, req.issueTime);

    // Every extent lands through ONE gathered pwritev: one syscall
    // charge on the daemon's serialized I/O path, one version bump —
    // the write twin of ReadPages' single vectored preadPages.
    std::vector<hostfs::WriteRun> runs;
    runs.reserve(req.pageCount);
    for (unsigned i = 0; i < req.pageCount; ++i) {
        if (req.batchLen[i] == 0)
            continue;
        if (req.diffAgainstZeros) {
            appendZeroDiffRuns(runs, req.batchOff[i], req.batch[i],
                               req.batchLen[i]);
        } else {
            runs.push_back({req.batchOff[i], req.batchLen[i],
                            req.batch[i]});
        }
    }
    resp.status = Status::Ok;
    resp.done = t;
    if (!runs.empty()) {
        bool journaled = false;
        Status js = maybeJournal(req.hostFd, runs.data(),
                                 static_cast<unsigned>(runs.size()), t,
                                 &sim.cpuIo, &journaled);
        if (!ok(js)) {
            resp.status = js;
            resp.done = t;
            return resp;
        }
        hostfs::IoResult w = retryTransient(
            fs, ioRetries, ioRetryGiveups, [&](Time backoff) {
                return backend_->writev(req.hostFd, runs.data(),
                                        static_cast<unsigned>(runs.size()),
                                        t + backoff, dev.id());
            });
        if (!ok(w.status)) {
            resp.status = w.status;
            return resp;
        }
        journalApplied(journaled);
        victimInvalidate(req.hostFd, runs.data(),
                         static_cast<unsigned>(runs.size()));
        resp.bytes = w.bytes;
        resp.version = w.version;
        resp.done = w.done;
    }
    bytesFromGpu.inc(total);
    return resp;
}

} // namespace rpc
} // namespace gpufs
