/**
 * @file
 * PeerPageSource: the daemon's window into one GPU's buffer cache for
 * servicing PeerReadPages / PeerWritePages (sharded multi-GPU cache).
 *
 * The interface lives in the rpc layer so CpuDaemon does not depend on
 * the GPU-side cache types; GpuFs implements it and GpufsSystem wires
 * one source per attached GPU. Every method runs on the DAEMON thread
 * against the OWNER GPU's state while that GPU's blocks keep running,
 * so implementations must obey two hard rules:
 *
 *  - NEVER block: a GPU block may hold its table lock across a
 *    synchronous RPC the daemon is about to service — any blocking
 *    acquisition here is a deadlock cycle. Implementations use
 *    try-locks and report "not served" on contention; the daemon then
 *    falls back to the host path, which is always correct.
 *  - Version-gate every access: serve (or mirror into) the owner's
 *    copy only when the owner's cached file version matches the
 *    requester's, so the peer path is exactly as consistent as the
 *    host path under close-to-open semantics.
 */

#ifndef GPUFS_RPC_PEER_HH
#define GPUFS_RPC_PEER_HH

#include <cstdint>

#include "base/units.hh"

namespace gpufs {
namespace rpc {

class PeerPageSource
{
  public:
    virtual ~PeerPageSource() = default;

    /**
     * Copy page @p page_idx of file @p ino out of this GPU's resident
     * frames into @p dst (a frame of the REQUESTING GPU, claimed and
     * lock-held by its split-phase fetch). Served only when the page
     * is Ready, clean, identity-verified, and the owner's file version
     * equals @p version; the frame is pinned for the duration of the
     * copy so owner-side eviction cannot recycle it mid-transfer.
     *
     * @param valid_out  bytes of real file content in the page
     * @param ready_out  maxed with the owner frame's DMA-ready time so
     *                   the peer transfer cannot begin, in virtual
     *                   time, before the content existed
     * @return true iff the page was served.
     */
    virtual bool peerCopyPage(uint64_t ino, uint64_t page_idx,
                              uint64_t version, uint8_t *dst,
                              uint32_t *valid_out, Time *ready_out) = 0;

    /**
     * Mirror a written extent (@p len bytes at @p in_page within page
     * @p page_idx) into this GPU's resident copy, keeping it current
     * while the same extent lands on the host through the enclosing
     * PeerWritePages' gathered pwritev. Mirrors only resident pages of
     * a cache whose file version equals @p version (the requester's
     * pre-write version — anything else and the mirrored page's
     * provenance would be unclear). @return true iff mirrored.
     */
    virtual bool peerMirrorExtent(uint64_t ino, uint64_t page_idx,
                                  uint64_t version, uint32_t in_page,
                                  const uint8_t *src, uint32_t len) = 0;

    /**
     * Advance this GPU's cached version of @p ino from @p old_version
     * to @p new_version. Called after a PeerWritePages whose extents
     * were ALL mirrored: the owner's copy then matches the post-write
     * host content byte for byte, so bumping the version keeps the
     * owner serving peer reads instead of failing their version gate
     * (and keeps its own reopen from discarding a current cache).
     */
    virtual void peerPublishVersion(uint64_t ino, uint64_t old_version,
                                    uint64_t new_version) = 0;

    /**
     * Owner warming: adopt @p valid bytes of page @p page_idx into
     * this GPU's cache after a PeerReadPages HOST FALLBACK read them
     * on the owner's behalf — the owner was cold, and without this the
     * next peer miss on the page pays the storage round trip again.
     * Same hard rules as above (try-locks only, version gate against
     * @p version); additionally best-effort on space: the adoption
     * must not evict or exceed @p tenant's frame quota, so decline is
     * common and harmless. @p ready is the fallback read's completion
     * time, carried so a later serve of the adopted copy cannot begin
     * before the bytes existed. Default declines (sources without an
     * adopting cache).
     */
    virtual bool
    peerAdoptPage(uint64_t ino, uint64_t page_idx, uint64_t version,
                  const uint8_t *data, uint32_t valid, Time ready,
                  uint8_t tenant)
    {
        (void)ino; (void)page_idx; (void)version; (void)data;
        (void)valid; (void)ready; (void)tenant;
        return false;
    }
};

} // namespace rpc
} // namespace gpufs

#endif // GPUFS_RPC_PEER_HH
