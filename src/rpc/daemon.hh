/**
 * @file
 * The CPU-side GPUfs daemon (§4.3).
 *
 * A single user-level thread in the host application services every
 * GPU's request queue: "a single-threaded, event-based design on the
 * host to restrict the GPU-related CPU load to one CPU, simplify
 * synchronization, and to avoid overwhelming the disk subsystem".
 * File accesses are therefore ordered (the cpuIo resource serializes
 * them in virtual time), while DMA runs on the per-GPU PCIe timelines
 * so disk reads of one request overlap the DMA of another — the
 * "multiple asynchronous CPU-GPU channels" of the paper.
 */

#ifndef GPUFS_RPC_DAEMON_HH
#define GPUFS_RPC_DAEMON_HH

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/stats.hh"
#include "consistency/consistency.hh"
#include "gpu/device.hh"
#include "gpufs/params.hh"
#include "hostfs/hostfs.hh"
#include "hostfs/journal.hh"
#include "rpc/peer.hh"
#include "rpc/queue.hh"
#include "storage/backend.hh"

namespace gpufs {
namespace core {
class VictimCache;
}
namespace rpc {

class CpuDaemon
{
  public:
    /**
     * @param host_fs  the host file system requests operate on
     * @param mgr      consistency layer notified on GPU opens/closes
     */
    CpuDaemon(hostfs::HostFs &host_fs, consistency::ConsistencyMgr &mgr);
    ~CpuDaemon();

    CpuDaemon(const CpuDaemon &) = delete;
    CpuDaemon &operator=(const CpuDaemon &) = delete;

    /**
     * Register a GPU and create its request queue. Must be called
     * before start(). @return the queue the GPU submits to.
     */
    RpcQueue &attachGpu(gpu::GpuDevice &dev);

    /** Start the daemon thread. Runs journal recovery first when the
     *  journal is enabled (replay committed txns, discard torn tail),
     *  so a stop()/start() cycle is a full crash-recovery restart. */
    void start();
    /** Stop and join the daemon thread. Idempotent. */
    void stop();

    /**
     * Create the write-ahead journal (GpuFsParams::journalWriteback).
     * Must be called before the first start(). Write-backs to fds
     * opened with O_GDURABLE_F then commit to the journal before the
     * in-place write, and their fsync barrier is answered from the
     * commit record.
     */
    void enableJournal();

    /** The journal, or nullptr when journaling is off (tests). */
    hostfs::WriteJournal *journal() { return journal_.get(); }

    /**
     * Select the storage backend every miss read and write-back routes
     * through (GpuFsParams::storageBackend; Buffered when never
     * called). Must be called before start().
     */
    void setStorageBackend(storage::BackendKind kind);

    /** The active storage backend (never null). */
    storage::StorageBackend &storageBackend() { return *backend_; }

    /**
     * Install (or clear, with nullptr) the machine-wide host-RAM
     * victim tier. Must be called before start(). Miss reads
     * (ReadPage, ReadPages, the aggregation sweep, the peer-read host
     * fallback) then probe the tier before the storage backend, gated
     * on the host's CURRENT file version from fstat — write-through
     * mirrors and journal replay bump the version, so stale bytes are
     * dropped, never served. A victim hit is a plain H2D DMA charge
     * even under a direct-to-GPU backend: the bytes sit in host RAM,
     * not on the device.
     */
    void setVictimCache(core::VictimCache *v);

    core::VictimCache *victimCache() { return victim_; }

    /**
     * Install (or clear, with nullptr) the peer-cache view of GPU
     * @p gpu_id used to service PeerReadPages / PeerWritePages.
     * Callable while the daemon runs — the owner publishes the source
     * after the GpuFs exists and clears it before teardown, and the
     * handler tolerates a null source by falling back to the host
     * path.
     */
    void setPeerSource(unsigned gpu_id, PeerPageSource *src);

    /**
     * Serving tier: weighted deficit-round-robin slot scheduling.
     * @p weights[t] is tenant t's share; any nonzero entry switches a
     * sweep with more than one tenant present from plain issue-time
     * order to DRR emission (cost = pages requested), so a scan
     * tenant's deep batches cannot starve point-lookup tenants —
     * their slots are serviced (and reserve the serialized cpuIo
     * timeline) ahead of the scan's backlog in proportion to weight.
     * Single-tenant sweeps keep the exact issue-time order. Must be
     * called before start().
     */
    void setTenantWeights(const unsigned *weights, unsigned n);

    /**
     * Serving tier: let an under-filled ReadPages aggregation group
     * (a lone same-file request in a sweep that the occupancy census
     * says is part of a still-arriving burst) linger parked for up to
     * one extra sweep instead of issuing its own host read, bounded by
     * @p deadline of virtual time (0 = off, the default — exact-count
     * aggregation tests rely on one-sweep semantics). Must be called
     * before start().
     */
    void setSweepLinger(Time deadline);

    StatSet &stats() { return stats_; }
    hostfs::HostFs &hostFs() { return fs; }
    consistency::ConsistencyMgr &consistencyMgr() { return consistency; }

  private:
    struct GpuPort {
        gpu::GpuDevice *dev;
        std::unique_ptr<RpcQueue> queue;
        /** Peer-cache view for sharded multi-GPU forwarding; null
         *  until the owning GpuFs registers (host fallback applies). */
        std::atomic<PeerPageSource *> peerSource{nullptr};
        /** Slot-pressure snapshot at the last stats report, so the
         *  >1%-stall check runs on the interval's DELTA rather than
         *  re-judging the whole cumulative history every pass. */
        uint64_t lastStalls = 0;
        uint64_t lastSubs = 0;
        /** Latched while the stall rate sits above threshold: warn on
         *  the crossing, not on every report that follows it. */
        bool stallWarned = false;
        /** Weighted DRR: per-tenant deficit counters. Reset when a
         *  tenant's backlog drains (classic DRR empty-queue rule), so
         *  idle tenants never bank unbounded credit. Daemon thread
         *  only. */
        uint64_t drrDeficit[core::kMaxTenants] = {};
        /** Aggregation linger: slots parked (claimed, unserviced) at
         *  the end of a sweep, merged into the next one. Daemon
         *  thread only. */
        std::vector<RpcSlot *> parked;
    };

    hostfs::HostFs &fs;
    consistency::ConsistencyMgr &consistency;
    /** unique_ptr: GpuPort carries an atomic (non-movable) and handler
     *  threads hold references across attachGpu calls. */
    std::vector<std::unique_ptr<GpuPort>> ports;
    std::atomic<uint64_t> doorbell{0};
    std::atomic<bool> running{false};
    std::thread worker;

    StatSet stats_;
    Counter &requestsServed;
    Counter &bytesToGpu;
    Counter &bytesFromGpu;
    /** Bytes moved GPU-to-GPU over the P2P channels (peer forwards). */
    Counter &bytesPeer;
    Counter &peerReadRpcs;
    Counter &peerPagesForwarded;
    Counter &peerPagesHost;
    Counter &peerWriteRpcs;
    Counter &peerExtentsMirrored;
    /** Pages served to read-ahead (speculative) batches, as opposed to
     *  demand fetches — the host-side view of prefetch traffic. */
    Counter &raPagesFetched;
    /** Cross-slot aggregation: ReadPages requests that rode a
     *  same-sweep same-file group instead of their own host read
     *  (k-grouped sweeps add k-1), and the host read calls actually
     *  issued for ReadPage/ReadPages service — aggregation shows as
     *  host_read_calls falling below the served request count. */
    Counter &coalescedRpcs;
    Counter &hostReadCalls;
    /** Transient host-I/O faults absorbed by bounded retry+backoff,
     *  and operations that exhausted the retry budget (the RPC then
     *  completes with an error IoResult — graceful degradation). */
    Counter &ioRetries;
    Counter &ioRetryGiveups;
    /** Journal activity: committed write-back txns, fsyncs answered
     *  from the commit record (gmsync barrier), and recovery work. */
    Counter &journalCommits;
    Counter &journalCommitBarriers;
    Counter &journalTxnsReplayed;
    Counter &journalTornRecords;
    /** Clean-shutdown journal truncations (stop() with every committed
     *  txn applied in place). */
    Counter &journalCheckpoints;
    /** Group commit: journal fsyncs actually issued (one per sweep
     *  with journaled write-backs), vs journal_commits = txns — the
     *  gap is the batching win. */
    Counter &journalGroupSyncs;
    /** Owner warming: pages a PeerReadPages host fallback adopted into
     *  the cold owner's cache (satellite of the sharded serving tier:
     *  the next peer miss on those pages forwards instead of paying
     *  another storage round trip). */
    Counter &peerPagesAdopted;
    /** Per-tenant RPCs serviced (serving-tier fairness reports). */
    Counter *tenantRpcs[core::kMaxTenants];

    /** Write-ahead journal (null unless enableJournal() was called). */
    std::unique_ptr<hostfs::WriteJournal> journal_;

    /** Committed-but-not-yet-applied journal txns: incremented at
     *  commit, decremented when the in-place write lands. stop() only
     *  checkpoints at zero — a pending txn is exactly what recovery's
     *  replay exists for, and truncating it would lose the bytes. */
    std::atomic<uint64_t> journalUnapplied_{0};

    /** Storage backend the read/write-back handlers route through
     *  (BufferedBackend until setStorageBackend, never null). */
    std::unique_ptr<storage::StorageBackend> backend_;

    /** Host-RAM victim tier (null = off); owned by GpufsSystem. */
    core::VictimCache *victim_ = nullptr;

    /** Serving tier: DRR weights (all-zero = scheduling off) and the
     *  aggregation-linger bound (0 = off). */
    unsigned tenantWeight_[core::kMaxTenants] = {};
    bool drr_ = false;
    Time linger_ = 0;

    void loop();
    RpcResponse handle(unsigned port_idx, const RpcRequest &req);

    /**
     * Service one pollAll sweep of @p port_idx in issue-time order,
     * coalescing different slots' concurrent ReadPages on the same
     * host file into one gathered host read (cross-block RPC
     * aggregation); everything else routes through handle() exactly
     * as before. Completes every slot and counts requestsServed.
     */
    void serviceSweep(unsigned port_idx, RpcSlot **batch, unsigned n);

    /**
     * Service @p k same-file ReadPages slots from one sweep as a
     * group: one CPU-overhead reservation, one gathered
     * HostFs::preadRuns, one H2D DMA of the total bytes — completions
     * fan back to each slot with its own byte count. Falls back to
     * per-slot handle() when the gathered read fails.
     */
    void handleReadPagesGroup(unsigned port_idx, RpcSlot **group,
                              unsigned k);

    /** Charge one H2D DMA for @p bytes ready at @p ready; counts the
     *  bytes. Shared by the single-page and batched read paths so the
     *  two charge identically. */
    Time chargeH2dDma(gpu::GpuDevice &dev, uint64_t bytes, Time ready);

    /** Charge the H2D DMA of a victim-tier hit. Unlike chargeH2dDma
     *  this never takes the direct-to-GPU shortcut: a gds backend DMAs
     *  storage reads straight to the device, but victim bytes live in
     *  host RAM and must cross PCIe regardless of backend. */
    Time chargeVictimH2d(gpu::GpuDevice &dev, uint64_t bytes, Time ready);

    /** True when the victim tier would serve EVERY page of @p req (a
     *  ReadPages request) at the host's current version — such
     *  requests are excluded from sweep aggregation and served
     *  individually so they skip the gathered storage read. */
    bool victimCoversReq(const RpcRequest &req);

    /** Write-path hygiene: drop victim entries the runs overwrite (the
     *  version gate is the correctness backstop; this frees the slots
     *  early). */
    void victimInvalidate(int host_fd, const hostfs::WriteRun *runs,
                          unsigned n);

    RpcResponse handleOpen(gpu::GpuDevice &dev, const RpcRequest &req);
    RpcResponse handleClose(gpu::GpuDevice &dev, const RpcRequest &req);
    RpcResponse handleReadPage(gpu::GpuDevice &dev, const RpcRequest &req);
    RpcResponse handleReadPages(gpu::GpuDevice &dev, const RpcRequest &req);
    RpcResponse handleWriteBack(gpu::GpuDevice &dev, const RpcRequest &req);
    RpcResponse handleWritePages(gpu::GpuDevice &dev, const RpcRequest &req);

    // ---- sharded multi-GPU peer forwarding ----

    /** The owner GPU's cache view for @p req.peerGpu, or nullptr
     *  (host fallback) when out of range or not registered. */
    PeerPageSource *peerSourceOf(const RpcRequest &req);

    /** Charge one P2P DMA of @p bytes from GPU @p src to GPU @p dst on
     *  their pair channel, ready at @p ready. */
    Time chargeP2pDma(gpu::GpuDevice &dev, unsigned src, unsigned dst,
                      uint64_t bytes, Time ready);

    RpcResponse handlePeerReadPages(gpu::GpuDevice &dev,
                                    const RpcRequest &req);
    RpcResponse handlePeerWritePages(gpu::GpuDevice &dev,
                                     const RpcRequest &req);

    /** Charge one D2H DMA for @p bytes ready at @p ready. Shared by the
     *  single-extent and batched write-back paths so the two charge
     *  identically (one setup cost per request either way). */
    Time chargeD2hDma(gpu::GpuDevice &dev, uint64_t bytes, Time ready);

    /** Track (fd -> ino, write, durable) for consistency release and
     *  the journal's per-file gate. */
    struct FdClaim { uint64_t ino; bool write; bool durable; };
    std::mutex claimMtx;
    std::unordered_map<int, FdClaim> fdClaims;

    /** True when @p fd was opened O_GDURABLE_F; its ino out-param
     *  feeds the journal. */
    bool durableFd(int fd, uint64_t *ino_out = nullptr);

    /**
     * Journal-first ordering for the write-back handlers: when the
     * journal is on and @p fd is durable, ensure the txn's records are
     * commit-durable and advance @p t to the commit-durable time
     * before the caller's in-place write. Normally the sweep preflight
     * (prejournalSweep) already appended and group-synced the txn and
     * this only consumes the record; otherwise it falls back to a
     * per-RPC append + fsync. No-op (Ok) when the journal is off or
     * @p fd is not durable.
     */
    Status maybeJournal(int fd, const hostfs::WriteRun *runs, unsigned n,
                        Time &t, sim::Resource *io,
                        bool *journaled = nullptr);

    /**
     * Group commit: issue the ONE journal fsync covering every txn
     * maybeJournal appended since the last sync. Called at the end of
     * each service sweep, and forced by a durable-fsync barrier before
     * it reads lastCommitDone (the barrier must cover same-sweep
     * appends). No-op when nothing is pending or the host crashed
     * (pending appends then belong to recovery).
     */
    Status flushJournalSync();

    /**
     * Group-commit preflight: before a sweep's handlers run, append
     * every write-op slot's journal txn (pwrites only), then ONE
     * groupSync makes them all durable — satisfying the WAL rule (a
     * crash reverts un-fsynced writes, so the commit record must be
     * durable before any handler's in-place write) at one fsync per
     * sweep instead of one per WritePages RPC. Successful appends are
     * recorded in prejournalDone_; the handler's maybeJournal consumes
     * the entry and skips its own append. Slots whose preflight append
     * failed fall back to maybeJournal's per-RPC append+sync.
     */
    void prejournalSweep(unsigned port_idx, RpcSlot **all,
                         unsigned total);

    /** Preflight-appended slots of the current sweep -> commit-durable
     *  time. Daemon thread only. */
    std::unordered_map<RpcSlot *, Time> prejournalDone_;
    /** Set by serviceSweep just before a handler whose slot was
     *  preflight-journaled; maybeJournal consumes and clears it. */
    bool slotPrejournaled_ = false;
    Time slotPrejournalTime_ = 0;

    /**
     * Weighted DRR emission order for a sweep with >1 tenant present:
     * reorders @p batch in place — per-tenant sublists stay issue-time
     * sorted, rounds add weight to each deficit and emit requests
     * while the deficit covers their page cost. No-op unless weights
     * were set.
     */
    void drrOrder(GpuPort &port, RpcSlot **batch, unsigned n);

    /** The in-place write a committed txn was covering has landed. */
    void
    journalApplied(bool journaled)
    {
        if (journaled)
            journalUnapplied_.fetch_sub(1, std::memory_order_relaxed);
    }
};

} // namespace rpc
} // namespace gpufs

#endif // GPUFS_RPC_DAEMON_HH
