#include "sim/resource.hh"

#include "base/logging.hh"

namespace gpufs {
namespace sim {

Grant
Resource::reserve(Time ready, Time dur)
{
    std::lock_guard<std::mutex> lock(mtx);
    busyTime_ += dur;
    if (dur == 0)
        return {ready, ready};

    // Find the earliest gap of length >= dur starting at or after
    // ready. Intervals are disjoint and coalesced, so walking from the
    // last interval that begins at or before `t` suffices.
    Time t = ready;
    auto it = busy.upper_bound(t);
    if (it != busy.begin()) {
        auto prev = std::prev(it);
        if (prev->second > t)
            t = prev->second;     // ready lands inside a busy interval
    }
    while (it != busy.end() && it->first < t + dur) {
        t = it->second;           // gap too small; skip past interval
        ++it;
    }

    // Insert [t, t+dur) and coalesce with neighbours.
    Time start = t;
    Time end = t + dur;
    if (it != busy.end() && it->first == end) {
        end = it->second;
        it = busy.erase(it);
    }
    if (it != busy.begin()) {
        auto prev = std::prev(it);
        if (prev->second == start) {
            start = prev->first;
            busy.erase(prev);
        }
    }
    busy.emplace(start, end);

    // Bound memory: merge the oldest fragments once the map grows
    // large (treating old gaps as busy only delays stragglers that
    // are already far in the past).
    if (busy.size() > 8192) {
        auto first = busy.begin();
        auto second = std::next(first);
        Time merged_end = std::max(first->second, second->second);
        Time merged_start = first->first;
        busy.erase(first, std::next(second));
        busy.emplace(merged_start, merged_end);
    }
    return {t, t + dur};
}

Time
Resource::horizon() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return busy.empty() ? 0 : busy.rbegin()->second;
}

MultiResource::MultiResource(std::string resource_name, unsigned num_servers)
    : name_(std::move(resource_name))
{
    if (num_servers == 0)
        gpufs_fatal("MultiResource '%s' needs at least one server",
                    name_.c_str());
    freeAt.assign(num_servers, 0);
}

unsigned
MultiResource::pickEarliestLocked() const
{
    unsigned best = 0;
    for (unsigned i = 1; i < freeAt.size(); ++i) {
        if (freeAt[i] < freeAt[best])
            best = i;
    }
    return best;
}

Grant
MultiResource::reserve(Time ready, Time dur)
{
    std::lock_guard<std::mutex> lock(mtx);
    unsigned s = pickEarliestLocked();
    Time start = std::max(ready, freeAt[s]);
    freeAt[s] = start + dur;
    return {start, freeAt[s]};
}

Grant
MultiResource::acquire(Time ready)
{
    std::lock_guard<std::mutex> lock(mtx);
    unsigned s = pickEarliestLocked();
    Time start = std::max(ready, freeAt[s]);
    // Mark the server busy "forever" until release() publishes the real
    // end; encode the server index in the grant via the start time pair.
    freeAt[s] = UINT64_MAX;
    return {start, static_cast<Time>(s)};   // .end carries the server id
}

void
MultiResource::release(const Grant &grant, Time end)
{
    std::lock_guard<std::mutex> lock(mtx);
    unsigned s = static_cast<unsigned>(grant.end);
    gpufs_assert(s < freeAt.size(), "bad server id %u", s);
    gpufs_assert(freeAt[s] == UINT64_MAX, "release of non-acquired server");
    freeAt[s] = end;
}

Time
MultiResource::horizon() const
{
    std::lock_guard<std::mutex> lock(mtx);
    Time h = 0;
    for (Time t : freeAt) {
        if (t != UINT64_MAX)
            h = std::max(h, t);
    }
    return h;
}

void
MultiResource::reset()
{
    std::lock_guard<std::mutex> lock(mtx);
    for (Time &t : freeAt)
        t = 0;
}

} // namespace sim
} // namespace gpufs
