/**
 * @file
 * Cost-model parameters calibrated to the paper's evaluation testbed
 * (§5): a SuperMicro server with two 4-core Xeon L5630 CPUs and four
 * NVIDIA TESLA C2075 GPUs on PCIe 2.0, a 7200 RPM WDC WD5003 disk, and
 * `hdparm -t -T` reporting 6,600 MB/s cached and 132 MB/s disk reads.
 *
 * Calibration notes (see EXPERIMENTS.md for the full derivation):
 *  - pcieBwMBps = 5731: the "maximum PCI bandwidth" line of Figure 4.
 *  - hostCacheReadMBps = 3300: effective pread()-to-pinned-buffer
 *    bandwidth. Chosen so that the serial whole-file baseline
 *    (pread then one big DMA) reproduces Figure 4's 2,100 MB/s:
 *    1 / (1/3300 + 1/5731) = 2,094 MB/s. The gap from hdparm's raw
 *    6,600 MB/s is the extra copy into the pinned staging buffer.
 *  - pageMapOverhead = 190 us: GPU-side buffer-cache cost per page map.
 *    Figure 5's right-hand column (total time with CPU file I/O and DMA
 *    excluded) is ~190 us × maps-per-block across the whole sweep
 *    (e.g. 512 maps × 190 us = 97 ms at 128 KB, paper reports 97.2 ms).
 *  - mpCount = 14: the C2075 has 14 multiprocessors; the paper launches
 *    28 threadblocks as "twice the number of active multiprocessors",
 *    hence blocksPerMp = 2.
 */

#ifndef GPUFS_SIM_HW_PARAMS_HH
#define GPUFS_SIM_HW_PARAMS_HH

#include <cstdint>

#include "base/units.hh"

namespace gpufs {
namespace sim {

struct HwParams {
    // ---- Peripheral interconnect (per GPU, full duplex) ----
    /** Effective PCIe 2.0 x16 bandwidth, host-to-device (MB/s). */
    double pcieBwH2DMBps = 5731.0;
    /** Effective PCIe bandwidth, device-to-host (MB/s). */
    double pcieBwD2HMBps = 5731.0;
    /** Fixed setup cost of one DMA transaction. */
    Time dmaSetup = 8 * kMicrosecond;

    // ---- Peer-to-peer DMA (GPU <-> GPU over PCIe) ----
    /**
     * Effective GPU-to-GPU PCIe P2P bandwidth (MB/s). Fermi-era
     * peer-to-peer copies between devices under one PCIe 2.0 switch
     * measure ~6 GB/s — slightly above the host-path effective rate
     * because the transfer is a single hop that skips the host staging
     * copy. Each ordered GPU pair gets its own timeline
     * (SimContext::p2p), so peer fetches of different pairs overlap
     * instead of serializing on the daemon's cpuIo path — the whole
     * point of servicing a shared working set from peer caches.
     */
    double pcieP2PBwMBps = 6000.0;
    /** Fixed setup cost of one P2P DMA transaction. */
    Time p2pDmaSetup = 8 * kMicrosecond;

    // ---- Host memory / file I/O ----
    /** Effective pread() bandwidth from a warm host page cache (MB/s). */
    double hostCacheReadMBps = 3300.0;
    /** Effective write bandwidth into the host page cache (MB/s). */
    double hostCacheWriteMBps = 3300.0;
    /** Per-syscall overhead of pread/pwrite on the host. */
    Time preadOverhead = 5 * kMicrosecond;
    /** Host page cache capacity (the paper's box "barely fits" 11 GB). */
    uint64_t hostCacheBytes = 9 * GiB;
    /** Granularity at which host page-cache residency is tracked. */
    uint64_t hostCacheGranule = 64 * KiB;

    // ---- Disk (WDC WD5003, 7200 RPM) ----
    /** Sequential disk read bandwidth (hdparm -t). */
    double diskReadMBps = 132.0;
    /** Disk write bandwidth. */
    double diskWriteMBps = 110.0;
    /** Per-request disk access latency (seek+rotate amortized). */
    Time diskAccessLat = 100 * kMicrosecond;

    // ---- O_DIRECT storage path (storage::DirectBackend) ----
    /** Sector alignment O_DIRECT imposes: transfers round both ends of
     *  an extent out to this boundary, so small unaligned reads move
     *  more bytes than requested (the cost the host page cache's
     *  read-modify-write normally hides). */
    uint64_t directAlignBytes = 4 * KiB;
    /** Device bandwidth seen by O_DIRECT reads/writes. Defaults match
     *  the buffered path's spindle (same WDC disk, no cache in front),
     *  so backend crossovers isolate the *path*, not the device. */
    double directReadMBps = 132.0;
    double directWriteMBps = 110.0;
    /** Per-request device access latency on the direct path. */
    Time directAccessLat = 100 * kMicrosecond;

    // ---- GPUDirect-style storage DMA (storage::GdsBackend) ----
    /** Setup cost of one storage->GPU DMA (driver ioctl + doorbell). */
    Time gdsDmaSetup = 10 * kMicrosecond;
    /** Storage-DMA engine bandwidth into GPU memory (one PCIe hop;
     *  the device read streams through it, no host bounce buffer). */
    double gdsDmaBwMBps = 5731.0;
    /** GPUDirect registration constraint: storage DMAs target BAR
     *  windows mapped at this granularity, so every frame's byte
     *  offset in the raw data array must sit on this boundary.
     *  BufferCache counts violations in `gds_unaligned_frames`. */
    uint64_t gdsAlignBytes = 4 * KiB;

    // ---- NVMe-oF remote flash tier (storage::RemoteFlashBackend) ----
    /** Network round-trip time initiator <-> target. */
    Time nvmfRtt = 30 * kMicrosecond;
    /** Fabric link bandwidth (~25 GbE effective). */
    double nvmfLinkMBps = 2900.0;
    /** Submission-queue depth: commands outstanding on the fabric at
     *  once; excess commands wait for a free slot. */
    unsigned nvmfQueueDepth = 32;
    /** Remote all-flash array: per-command access latency + media
     *  bandwidth (GNStor-style disaggregated tier — much faster media
     *  than the local spindle, but every byte pays the fabric). */
    Time remoteFlashAccessLat = 90 * kMicrosecond;
    double remoteFlashReadMBps = 2200.0;
    double remoteFlashWriteMBps = 1400.0;

    /**
     * Memory-pressure penalty on disk reads: pinned (unevictable)
     * memory forces the OS into direct reclaim on every page brought
     * in, multiplying effective disk read time by
     * (1 + penalty * pinned_fraction). Calibrated so the Figure 8
     * "CUDA naive" configuration (pinned buffers ~60% of memory) goes
     * ~4x slower than GPUfs in the disk-bound regime, as §5.1.4
     * reports ("the pinned memory allocated for large transfer
     * buffers ... competes with the CPU buffer cache, slowing it down
     * significantly").
     */
    double pinnedReclaimPenalty = 5.0;

    // ---- GPU ----
    /** Multiprocessors per GPU (TESLA C2075). */
    unsigned mpCount = 14;
    /** Resident threadblocks per multiprocessor. */
    unsigned blocksPerMp = 2;
    /** GPU local memory bandwidth (GDDR5, MB/s). */
    double gpuMemBwMBps = 144000.0;
    /** Fixed kernel launch latency. */
    Time kernelLaunchLat = 10 * kMicrosecond;

    // ---- GPUfs software costs (GPU side) ----
    /** Buffer-cache cost per page map/fetch on the calling block. */
    Time pageMapOverhead = 190 * kMicrosecond;
    /** Cost of a buffer-cache hit lookup (no RPC): the lock-free
     *  traversal plus pin/unpin, a few hundred ns of atomics. */
    Time cacheHitOverhead = 300;   // ns

    // ---- RPC (GPU -> CPU daemon) ----
    /** Queue submit + daemon poll detection latency. */
    Time rpcSubmitLat = 3 * kMicrosecond;
    /** CPU daemon per-request handling overhead. */
    Time rpcCpuOverhead = 5 * kMicrosecond;

    // ---- Figure 5 toggles: exclude components from the charge model ----
    /** When false, DMA transfers are charged zero time. */
    bool chargeDma = true;
    /** When false, host file I/O (page cache + disk) is charged zero. */
    bool chargeHostIo = true;

    /**
     * Ablation (bench/ablate_rpc_channels): when true, DMA time is
     * charged on the daemon's serialized CPU path instead of the
     * independent PCIe channels — removing the overlap of host file
     * I/O with DMA that the paper's asynchronous channels buy (§4.3).
     */
    bool serializeDmaWithIo = false;

    /** Resident blocks per GPU ("wave" width). */
    unsigned waveSlots() const { return mpCount * blocksPerMp; }
};

} // namespace sim
} // namespace gpufs

#endif // GPUFS_SIM_HW_PARAMS_HH
