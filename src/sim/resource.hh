/**
 * @file
 * Virtual-time resource timelines.
 *
 * The reproduction replaces the paper's physical devices (PCIe bus, SATA
 * disk, host page-cache reads, GPU multiprocessor slots) with reservation
 * timelines. A requester that becomes ready at virtual time @c ready and
 * needs the device for @c dur reserves an interval; the resource serializes
 * overlapping requests, so pipelining and contention effects emerge from
 * the reservation discipline rather than being hard-coded per benchmark.
 *
 * Requests are served in arrival (lock acquisition) order, which mirrors
 * the FIFO queues of the paper's RPC daemon and DMA engine.
 */

#ifndef GPUFS_SIM_RESOURCE_HH
#define GPUFS_SIM_RESOURCE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/units.hh"

namespace gpufs {
namespace sim {

/** The [start, end) interval granted to one reservation. */
struct Grant {
    Time start;
    Time end;
};

/**
 * A single-server device: one request at a time.
 * Models e.g. one direction of the PCIe link, the disk head, or the
 * single-threaded CPU file-I/O path of the GPUfs host daemon.
 *
 * Reservations are *gap filling*: a request ready at virtual time t
 * takes the earliest idle interval at or after t, even if requests
 * with later ready times were registered first. This matters because
 * the simulator's real threads race: block A's reservation may reach
 * the resource after block B's although A is earlier in virtual time,
 * and strict arrival-order FIFO would let real scheduling noise
 * inflate virtual results. Memory stays bounded by coalescing
 * adjacent busy intervals (a saturated device collapses to one).
 */
class Resource
{
  public:
    explicit Resource(std::string resource_name)
        : name_(std::move(resource_name)), busyTime_(0) {}

    /**
     * Reserve the device for @p dur starting no earlier than @p ready.
     * @return the granted interval.
     */
    Grant reserve(Time ready, Time dur);

    /** Latest time at which the device is known busy. */
    Time horizon() const;

    /** Total busy (service) time accumulated. */
    Time
    busyTime() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return busyTime_;
    }

    /** Forget all reservations (between benchmark phases). */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mtx);
        busy.clear();
        busyTime_ = 0;
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mtx;
    // Non-overlapping busy intervals: start -> end, coalesced.
    std::map<Time, Time> busy;
    Time busyTime_;
};

/**
 * A k-server device: up to @c servers() concurrent requests.
 * Models GPU multiprocessor residency (an MP holds a bounded number of
 * threadblocks at once), the 8 cores of the CPU baseline, or a multi-
 * channel DMA engine.
 */
class MultiResource
{
  public:
    MultiResource(std::string resource_name, unsigned num_servers);

    /** Reserve any one server for @p dur starting no earlier than @p ready. */
    Grant reserve(Time ready, Time dur);

    /**
     * Two-phase reservation for requests whose duration is unknown up
     * front (a threadblock's runtime is known only after it executes).
     * acquire() picks the earliest-free server and returns the start
     * time; release() publishes the actual end time.
     */
    Grant acquire(Time ready);
    void release(const Grant &grant, Time end);

    unsigned servers() const { return static_cast<unsigned>(freeAt.size()); }

    /** Latest end time over all servers. */
    Time horizon() const;

    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mtx;
    std::vector<Time> freeAt;

    unsigned pickEarliestLocked() const;
};

} // namespace sim
} // namespace gpufs

#endif // GPUFS_SIM_RESOURCE_HH
