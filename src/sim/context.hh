/**
 * @file
 * SimContext: the shared virtual-time state of one simulated machine —
 * the cost-model parameters plus the host-side resources every device
 * contends for (the single-threaded daemon's file-I/O path and the
 * disk). Per-GPU resources (PCIe links, MP slots) live in GpuDevice.
 */

#ifndef GPUFS_SIM_CONTEXT_HH
#define GPUFS_SIM_CONTEXT_HH

#include "sim/hw_params.hh"
#include "sim/resource.hh"

namespace gpufs {
namespace sim {

class SimContext
{
  public:
    explicit SimContext(const HwParams &hw_params = HwParams{})
        : params(hw_params), cpuIo("cpu_io"), disk("disk") {}

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /** Cost-model parameters. Mutable so benchmarks can toggle charges. */
    HwParams params;

    /**
     * The host daemon's file-I/O path. The paper's daemon is single
     * threaded and "orders file accesses" (§4.3), so this is a single-
     * server resource shared by all GPUs.
     */
    Resource cpuIo;

    /** The disk behind the host page cache. */
    Resource disk;

    /** Clear all reservations (between benchmark phases). */
    void
    reset()
    {
        cpuIo.reset();
        disk.reset();
    }
};

} // namespace sim
} // namespace gpufs

#endif // GPUFS_SIM_CONTEXT_HH
