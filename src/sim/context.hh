/**
 * @file
 * SimContext: the shared virtual-time state of one simulated machine —
 * the cost-model parameters plus the host-side resources every device
 * contends for (the single-threaded daemon's file-I/O path and the
 * disk). Per-GPU resources (PCIe links, MP slots) live in GpuDevice.
 */

#ifndef GPUFS_SIM_CONTEXT_HH
#define GPUFS_SIM_CONTEXT_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/fault.hh"
#include "sim/hw_params.hh"
#include "sim/resource.hh"

namespace gpufs {
namespace sim {

class SimContext
{
  public:
    explicit SimContext(const HwParams &hw_params = HwParams{})
        : params(hw_params), cpuIo("cpu_io"), disk("disk") {}

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /** Cost-model parameters. Mutable so benchmarks can toggle charges. */
    HwParams params;

    /**
     * The host daemon's file-I/O path. The paper's daemon is single
     * threaded and "orders file accesses" (§4.3), so this is a single-
     * server resource shared by all GPUs.
     */
    Resource cpuIo;

    /** The disk behind the host page cache. */
    Resource disk;

    /**
     * Fault-injection plan (crash points, power loss, transient EIO).
     * Idle by default; HostFs consults it behind a single relaxed
     * atomic load so fault-free runs stay byte-identical.
     */
    FaultPlan faults;

    /**
     * The P2P DMA channel from GPU @p src to GPU @p dst (multi-GPU
     * cache sharding): one timeline per ordered pair, created lazily
     * so single-GPU systems pay nothing. Peer page forwards reserve
     * here instead of on cpuIo + the PCIe host links, which is what
     * lets transfers of different GPU pairs overlap.
     */
    Resource &
    p2p(unsigned src, unsigned dst)
    {
        std::lock_guard<std::mutex> lock(p2pMtx_);
        uint64_t key = (uint64_t(src) << 32) | dst;
        auto &slot = p2p_[key];
        if (!slot) {
            slot = std::make_unique<Resource>(
                "p2p_" + std::to_string(src) + "_" + std::to_string(dst));
        }
        return *slot;
    }

    /**
     * The GPUDirect storage-DMA engine of GPU @p gpu (one per device,
     * like the PCIe links): storage reads stream through it straight
     * into the frame arena, so different GPUs' zero-copy fetches
     * overlap. Created lazily — buffered-backend runs pay nothing.
     */
    Resource &
    storageDma(unsigned gpu)
    {
        std::lock_guard<std::mutex> lock(p2pMtx_);
        auto &slot = storageDma_[gpu];
        if (!slot) {
            slot = std::make_unique<Resource>(
                "storage_dma_" + std::to_string(gpu));
        }
        return *slot;
    }

    /**
     * The host-staging DMA channel of GPU @p gpu (victim-cache tier):
     * demotions of evicted frames into pinned host memory reserve
     * their D2H copy here, off the GPU's main PCIe links, so staging
     * traffic never delays demand fetches or write-backs. Created
     * lazily — systems without a victim tier pay nothing.
     */
    Resource &
    hostStage(unsigned gpu)
    {
        std::lock_guard<std::mutex> lock(p2pMtx_);
        auto &slot = hostStage_[gpu];
        if (!slot) {
            slot = std::make_unique<Resource>(
                "host_stage_" + std::to_string(gpu));
        }
        return *slot;
    }

    /** The NVMe-oF fabric link (remote flash tier): every command's
     *  data/ack bytes serialize here. */
    Resource nvmfLink{"nvmf_link"};

    /** The remote all-flash array's media timeline. */
    Resource remoteFlash{"remote_flash"};

    /**
     * NVMe-oF submission-queue slots: at most params.nvmfQueueDepth
     * commands outstanding on the fabric. Lazily sized on first use so
     * benchmarks can set the depth after construction.
     */
    MultiResource &
    nvmfSlots()
    {
        std::lock_guard<std::mutex> lock(p2pMtx_);
        if (!nvmfSlots_) {
            nvmfSlots_ = std::make_unique<MultiResource>(
                "nvmf_slots", params.nvmfQueueDepth ? params.nvmfQueueDepth
                                                    : 1);
        }
        return *nvmfSlots_;
    }

    /** Clear all reservations (between benchmark phases). */
    void
    reset()
    {
        cpuIo.reset();
        disk.reset();
        nvmfLink.reset();
        remoteFlash.reset();
        std::lock_guard<std::mutex> lock(p2pMtx_);
        for (auto &kv : p2p_)
            kv.second->reset();
        for (auto &kv : storageDma_)
            kv.second->reset();
        for (auto &kv : hostStage_)
            kv.second->reset();
        if (nvmfSlots_)
            nvmfSlots_->reset();
    }

  private:
    /** Lazily-created per-ordered-pair P2P channels (guarded). */
    mutable std::mutex p2pMtx_;
    std::map<uint64_t, std::unique_ptr<Resource>> p2p_;
    /** Lazily-created per-GPU storage-DMA engines (same guard). */
    std::map<unsigned, std::unique_ptr<Resource>> storageDma_;
    /** Lazily-created per-GPU host-staging DMA channels (same guard). */
    std::map<unsigned, std::unique_ptr<Resource>> hostStage_;
    std::unique_ptr<MultiResource> nvmfSlots_;
};

} // namespace sim
} // namespace gpufs

#endif // GPUFS_SIM_CONTEXT_HH
