/**
 * @file
 * Fault-injection plan for the simulated host: named crash points,
 * simulated power loss, and transient I/O faults.
 *
 * A FaultPlan lives on the SimContext and is consulted by HostFs (and
 * the daemon's journal) at well-known points in the I/O paths. With
 * nothing armed, `active()` is a single relaxed atomic load — the
 * fault-free paths stay byte-identical in both behavior and timing.
 *
 * Crash semantics: a crash point that fires marks the host "crashed".
 * Every subsequent HostFs data operation fails with Status::IoError
 * until `reboot()` — mirroring a daemon whose backing store went away
 * mid-flight. Power loss (applied by HostFs::powerLoss) additionally
 * reverts all writes that were never covered by an fsync, so recovery
 * tests observe genuinely torn state.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace gpufs::sim {

/** Named crash points, in the order they appear on the write path. */
enum class CrashPoint : uint8_t {
    MidPwritev,        ///< after k of n runs of a gathered pwritev landed
    AfterWriteback,    ///< in-place write-back complete, fsync never ran
    MidJournalAppend,  ///< extent records appended, commit record absent
    AfterJournalCommit ///< commit durable, in-place write-back never ran
};

constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::MidPwritev,
    CrashPoint::AfterWriteback,
    CrashPoint::MidJournalAppend,
    CrashPoint::AfterJournalCommit,
};

const char *crashPointName(CrashPoint cp);

/** Which host I/O operation a transient fault applies to. */
enum class FaultOp : uint8_t { HostRead, HostWrite, HostFsync };

/**
 * Thread-safe fault plan. Armed from test/bench code; consumed from
 * the daemon thread inside HostFs.
 */
class FaultPlan {
  public:
    // ---- crash points ----

    /** Arm a crash at `cp`; the first `countdown` hits are skipped
     *  (so "crash on the k-th write-back" is expressible). Re-arming
     *  replaces any previous plan for the same point. */
    void armCrash(CrashPoint cp, uint64_t countdown = 0);

    /** Called by HostFs at the named point. Returns true exactly once
     *  when the armed countdown reaches zero; sets crashed(). */
    bool hitCrashPoint(CrashPoint cp);

    /** True if any crash point is armed (cheap gate for pre-image
     *  capture: HostFs only logs volatile writes while this holds). */
    bool crashArmed() const;

    /** True once a crash point fired and until reboot(). */
    bool crashed() const { return crashed_.load(std::memory_order_acquire); }

    /** Clear the crashed flag and disarm all crash points. Transient
     *  fault counters survive a reboot; call reset() to clear all. */
    void reboot();

    // ---- transient faults ----

    /** Make the next `count` host ops of kind `op` fail with EIO. */
    void injectIoError(FaultOp op, uint64_t count);

    /** Consume one injected EIO for `op`; true when the op must fail. */
    bool takeFault(FaultOp op);

    /** Make the next `count` pwritev calls land only a prefix of their
     *  runs (short write), returning IoError with partial bytes. */
    void injectShortWrite(uint64_t count);

    /** Consume one injected short write. */
    bool takeShortWrite();

    // ---- lifecycle ----

    /** Anything armed at all? Single relaxed load; false on the hot
     *  path keeps fault-free runs byte-identical. */
    bool active() const { return active_.load(std::memory_order_relaxed); }

    /** Disarm everything, clear crashed. */
    void reset();

  private:
    void refreshActiveLocked();

    mutable std::mutex mtx_;
    std::atomic<bool> active_{false};
    std::atomic<bool> crashed_{false};
    static constexpr size_t kPoints =
        sizeof(kAllCrashPoints) / sizeof(kAllCrashPoints[0]);
    bool armed_[kPoints] = {};
    uint64_t countdown_[kPoints] = {};
    uint64_t eio_[3] = {};  ///< indexed by FaultOp
    uint64_t shortWrites_ = 0;
};

} // namespace gpufs::sim
