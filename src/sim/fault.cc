#include "sim/fault.hh"

namespace gpufs::sim {

const char *
crashPointName(CrashPoint cp)
{
    switch (cp) {
    case CrashPoint::MidPwritev: return "mid_pwritev";
    case CrashPoint::AfterWriteback: return "after_writeback";
    case CrashPoint::MidJournalAppend: return "mid_journal_append";
    case CrashPoint::AfterJournalCommit: return "after_journal_commit";
    }
    return "?";
}

void
FaultPlan::refreshActiveLocked()
{
    bool any = crashed_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kPoints; ++i)
        any = any || armed_[i];
    for (uint64_t n : eio_)
        any = any || n > 0;
    any = any || shortWrites_ > 0;
    active_.store(any, std::memory_order_relaxed);
}

void
FaultPlan::armCrash(CrashPoint cp, uint64_t countdown)
{
    std::lock_guard<std::mutex> lk(mtx_);
    armed_[size_t(cp)] = true;
    countdown_[size_t(cp)] = countdown;
    refreshActiveLocked();
}

bool
FaultPlan::hitCrashPoint(CrashPoint cp)
{
    if (!active())
        return false;
    std::lock_guard<std::mutex> lk(mtx_);
    if (!armed_[size_t(cp)])
        return false;
    if (countdown_[size_t(cp)] > 0) {
        --countdown_[size_t(cp)];
        return false;
    }
    armed_[size_t(cp)] = false;
    crashed_.store(true, std::memory_order_release);
    refreshActiveLocked();
    return true;
}

bool
FaultPlan::crashArmed() const
{
    if (!active())
        return false;
    std::lock_guard<std::mutex> lk(mtx_);
    for (size_t i = 0; i < kPoints; ++i)
        if (armed_[i])
            return true;
    return false;
}

void
FaultPlan::reboot()
{
    std::lock_guard<std::mutex> lk(mtx_);
    crashed_.store(false, std::memory_order_release);
    for (size_t i = 0; i < kPoints; ++i) {
        armed_[i] = false;
        countdown_[i] = 0;
    }
    refreshActiveLocked();
}

void
FaultPlan::injectIoError(FaultOp op, uint64_t count)
{
    std::lock_guard<std::mutex> lk(mtx_);
    eio_[size_t(op)] = count;
    refreshActiveLocked();
}

bool
FaultPlan::takeFault(FaultOp op)
{
    if (!active())
        return false;
    std::lock_guard<std::mutex> lk(mtx_);
    if (eio_[size_t(op)] == 0)
        return false;
    --eio_[size_t(op)];
    refreshActiveLocked();
    return true;
}

void
FaultPlan::injectShortWrite(uint64_t count)
{
    std::lock_guard<std::mutex> lk(mtx_);
    shortWrites_ = count;
    refreshActiveLocked();
}

bool
FaultPlan::takeShortWrite()
{
    if (!active())
        return false;
    std::lock_guard<std::mutex> lk(mtx_);
    if (shortWrites_ == 0)
        return false;
    --shortWrites_;
    refreshActiveLocked();
    return true;
}

void
FaultPlan::reset()
{
    std::lock_guard<std::mutex> lk(mtx_);
    crashed_.store(false, std::memory_order_release);
    for (size_t i = 0; i < kPoints; ++i) {
        armed_[i] = false;
        countdown_[i] = 0;
    }
    for (uint64_t &n : eio_)
        n = 0;
    shortWrites_ = 0;
    refreshActiveLocked();
}

} // namespace gpufs::sim
