/**
 * @file
 * A minimal CUDA-like host transfer API over the same cost model.
 *
 * The paper's baselines are classic GPU-as-coprocessor programs: the
 * CPU preads file chunks into pinned staging buffers and enqueues
 * (a)synchronous DMA; kernels run between transfers. CudaApp models one
 * such host program: a single host-thread virtual clock, streams with
 * in-order completion, pinned-memory accounting that squeezes the host
 * page cache (the Figure 8 effect), and DMA on the same per-GPU PCIe
 * timelines GPUfs uses — so GPUfs-vs-CUDA comparisons share one clock
 * and one set of device speeds.
 */

#ifndef GPUFS_CUDA_CUDASIM_HH
#define GPUFS_CUDA_CUDASIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/units.hh"
#include "gpu/device.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace cudasim {

/** An in-order CUDA stream: operations complete at readyAt. */
struct Stream {
    Time readyAt = 0;
};

class CudaApp
{
  public:
    CudaApp(gpu::GpuDevice &device, hostfs::HostFs &host_fs)
        : dev(device), fs(host_fs) {}

    ~CudaApp();

    CudaApp(const CudaApp &) = delete;
    CudaApp &operator=(const CudaApp &) = delete;

    /** The host program's virtual clock. */
    Time now() const { return clock; }
    void advance(Time dur) { clock += dur; }
    void waitUntil(Time t) { clock = std::max(clock, t); }

    // ---- pinned host memory (cudaHostAlloc) ----
    /**
     * Account @p bytes of pinned staging memory. Pinned pages are
     * unevictable and shrink the effective host page cache — §5.1.4:
     * "pinned memory allocated for large transfer buffers ... competes
     * with the CPU buffer cache, slowing it down significantly".
     * @return an id for hostFreePinned.
     */
    int hostAllocPinned(uint64_t bytes);
    void hostFreePinned(int id);

    // ---- host file I/O (the CPU side of the pipeline) ----
    int open(const std::string &path, uint32_t flags);
    void close(int fd);
    /** pread into a staging buffer; advances the host clock. Pass
     *  dst = nullptr to model the I/O without materializing bytes. */
    uint64_t pread(int fd, uint8_t *dst, uint64_t len, uint64_t offset);
    /** pwrite from a staging buffer; advances the host clock. */
    uint64_t pwrite(int fd, const uint8_t *src, uint64_t len,
                    uint64_t offset);

    // ---- DMA ----
    /** Synchronous cudaMemcpy H2D: blocks the host clock. */
    void memcpyH2D(uint64_t bytes);
    /** Asynchronous cudaMemcpyAsync H2D on @p stream. */
    void memcpyH2DAsync(Stream &stream, uint64_t bytes);
    /** Asynchronous D2H on @p stream. */
    void memcpyD2HAsync(Stream &stream, uint64_t bytes);

    // ---- kernels (baseline kernels bypass GPUfs) ----
    /**
     * Enqueue a kernel of modelled duration @p dur on @p stream. The
     * baseline kernels of §5 are bandwidth-bound loops; callers model
     * their duration from the calibrated rates in the bench configs.
     */
    void kernelAsync(Stream &stream, Time dur);

    /** cudaStreamSynchronize. */
    void streamSync(const Stream &stream) { waitUntil(stream.readyAt); }

    gpu::GpuDevice &device() { return dev; }
    hostfs::HostFs &hostFs() { return fs; }

  private:
    gpu::GpuDevice &dev;
    hostfs::HostFs &fs;
    Time clock = 0;
    /** Whole-device compute timeline: one baseline kernel at a time
     *  (grids large enough to fill the GPU, as in the paper). */
    sim::Resource gpuCompute{"cuda.compute"};
    std::vector<std::pair<int, uint64_t>> pinned;
    int nextPinnedId = 1;
};

} // namespace cudasim
} // namespace gpufs

#endif // GPUFS_CUDA_CUDASIM_HH
