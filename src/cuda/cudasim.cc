#include "cuda/cudasim.hh"

#include "base/logging.hh"

namespace gpufs {
namespace cudasim {

CudaApp::~CudaApp()
{
    for (auto &kv : pinned)
        fs.cache().releasePinned(kv.second);
}

int
CudaApp::hostAllocPinned(uint64_t bytes)
{
    if (!fs.cache().reservePinned(bytes))
        gpufs_fatal("pinned allocation of %llu bytes exceeds host memory",
                    static_cast<unsigned long long>(bytes));
    int id = nextPinnedId++;
    pinned.emplace_back(id, bytes);
    // cudaHostAlloc of large buffers is expensive (page pinning).
    clock += transferTime(bytes, 20000.0);   // ~20 GB/s fault-in rate
    return id;
}

void
CudaApp::hostFreePinned(int id)
{
    for (auto it = pinned.begin(); it != pinned.end(); ++it) {
        if (it->first == id) {
            fs.cache().releasePinned(it->second);
            pinned.erase(it);
            return;
        }
    }
    gpufs_panic("hostFreePinned of unknown id %d", id);
}

int
CudaApp::open(const std::string &path, uint32_t flags)
{
    Status st;
    int fd = fs.open(path, flags, &st);
    if (fd < 0)
        gpufs_fatal("CudaApp::open(%s) failed: %s", path.c_str(),
                    statusName(st));
    return fd;
}

void
CudaApp::close(int fd)
{
    fs.close(fd);
}

uint64_t
CudaApp::pread(int fd, uint8_t *dst, uint64_t len, uint64_t offset)
{
    static thread_local std::vector<uint8_t> scratch;
    uint8_t *buf = dst;
    if (!buf) {
        // Timing-only read: stage into scratch so content generation
        // costs stay off the books but cache/disk charges apply.
        if (scratch.size() < len)
            scratch.resize(len);
        buf = scratch.data();
    }
    hostfs::IoResult r = fs.pread(fd, buf, len, offset, clock, nullptr);
    if (!ok(r.status))
        gpufs_fatal("CudaApp::pread failed: %s", statusName(r.status));
    clock = r.done;
    return r.bytes;
}

uint64_t
CudaApp::pwrite(int fd, const uint8_t *src, uint64_t len, uint64_t offset)
{
    hostfs::IoResult r = fs.pwrite(fd, src, len, offset, clock, nullptr);
    if (!ok(r.status))
        gpufs_fatal("CudaApp::pwrite failed: %s", statusName(r.status));
    clock = r.done;
    return r.bytes;
}

void
CudaApp::memcpyH2D(uint64_t bytes)
{
    const auto &p = dev.simContext().params;
    sim::Grant g = dev.pcieH2D().reserve(
        clock, p.dmaSetup + transferTime(bytes, p.pcieBwH2DMBps));
    clock = g.end;
}

void
CudaApp::memcpyH2DAsync(Stream &stream, uint64_t bytes)
{
    const auto &p = dev.simContext().params;
    Time ready = std::max(clock, stream.readyAt);
    sim::Grant g = dev.pcieH2D().reserve(
        ready, p.dmaSetup + transferTime(bytes, p.pcieBwH2DMBps));
    stream.readyAt = g.end;
    clock += 2 * kMicrosecond;     // submission cost on the host
}

void
CudaApp::memcpyD2HAsync(Stream &stream, uint64_t bytes)
{
    const auto &p = dev.simContext().params;
    Time ready = std::max(clock, stream.readyAt);
    sim::Grant g = dev.pcieD2H().reserve(
        ready, p.dmaSetup + transferTime(bytes, p.pcieBwD2HMBps));
    stream.readyAt = g.end;
    clock += 2 * kMicrosecond;
}

void
CudaApp::kernelAsync(Stream &stream, Time dur)
{
    const auto &p = dev.simContext().params;
    Time ready = std::max(clock, stream.readyAt) + p.kernelLaunchLat;
    sim::Grant g = gpuCompute.reserve(ready, dur);
    stream.readyAt = g.end;
    clock += 2 * kMicrosecond;
}

} // namespace cudasim
} // namespace gpufs
