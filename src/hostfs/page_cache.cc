#include "hostfs/page_cache.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/rng.hh"

namespace gpufs {
namespace hostfs {

HostPageCache::HostPageCache(sim::SimContext &sim_ctx)
    : sim(sim_ctx), pinnedBytes(0), stats_("host_page_cache"),
      hitBytes(stats_.counter("hit_bytes")),
      missBytes(stats_.counter("miss_bytes")),
      evictions(stats_.counter("evictions"))
{
}

uint64_t
HostPageCache::effectiveCapacity() const
{
    std::lock_guard<std::mutex> lock(mtx);
    uint64_t cap = sim.params.hostCacheBytes;
    return cap > pinnedBytes ? cap - pinnedBytes : 0;
}

uint64_t
HostPageCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.size() * sim.params.hostCacheGranule;
}

bool
HostPageCache::reservePinned(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (pinnedBytes + bytes > sim.params.hostCacheBytes)
        return false;
    pinnedBytes += bytes;
    return true;
}

void
HostPageCache::releasePinned(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mtx);
    gpufs_assert(bytes <= pinnedBytes, "unbalanced pinned release");
    pinnedBytes -= bytes;
}

uint64_t
HostPageCache::touchLocked(const Key &key, bool dirty, bool &was_resident)
{
    uint64_t dirty_evicted = 0;
    auto it = entries.find(key);
    if (it != entries.end()) {
        was_resident = true;
        lru.splice(lru.begin(), lru, it->second.lruPos);
        it->second.dirty = it->second.dirty || dirty;
        return 0;
    }
    was_resident = false;
    lru.push_front(key);
    entries.emplace(key, Entry{lru.begin(), dirty});

    uint64_t cap = sim.params.hostCacheBytes;
    cap = cap > pinnedBytes ? cap - pinnedBytes : 0;
    uint64_t max_entries = std::max<uint64_t>(1, cap / granuleSize());
    while (entries.size() > max_entries) {
        const Key victim = lru.back();
        auto vit = entries.find(victim);
        gpufs_assert(vit != entries.end(), "LRU/map out of sync");
        if (vit->second.dirty)
            dirty_evicted += granuleSize();
        entries.erase(vit);
        lru.pop_back();
        evictions.inc();
    }
    return dirty_evicted;
}

Time
HostPageCache::chargeRead(uint64_t ino, uint64_t offset, uint64_t len,
                          Time ready, sim::Resource *io_path)
{
    if (len == 0)
        return ready;
    const auto &p = sim.params;
    uint64_t g = granuleSize();
    uint64_t first = offset / g;
    uint64_t last = (offset + len - 1) / g;

    uint64_t miss_bytes = 0;
    uint64_t miss_extents = 0;
    uint64_t writeback_bytes = 0;
    bool in_miss_run = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (uint64_t gi = first; gi <= last; ++gi) {
            bool resident;
            writeback_bytes += touchLocked({ino, gi}, false, resident);
            if (!resident) {
                miss_bytes += g;
                if (!in_miss_run)
                    ++miss_extents;
                in_miss_run = true;
            } else {
                in_miss_run = false;
            }
        }
    }
    hitBytes.inc(len > miss_bytes ? len - miss_bytes : 0);
    missBytes.inc(std::min(miss_bytes, len));

    if (!p.chargeHostIo)
        return ready;

    Time t = ready;
    if (miss_bytes > 0 || writeback_bytes > 0) {
        Time disk_dur = miss_extents * p.diskAccessLat
            + transferTime(miss_bytes, p.diskReadMBps)
            + transferTime(writeback_bytes, p.diskWriteMBps);
        // Pinned memory squeezes the page cache into direct reclaim
        // (§5.1.4): scale disk time by the pressure factor.
        double pinned_frac;
        {
            std::lock_guard<std::mutex> lock(mtx);
            pinned_frac = p.hostCacheBytes
                ? double(pinnedBytes) / double(p.hostCacheBytes) : 0.0;
        }
        disk_dur = Time(double(disk_dur) *
                        (1.0 + p.pinnedReclaimPenalty * pinned_frac));
        t = sim.disk.reserve(t, disk_dur).end;
    }
    Time copy_dur = p.preadOverhead + transferTime(len, p.hostCacheReadMBps);
    if (io_path)
        t = io_path->reserve(t, copy_dur).end;
    else
        t += copy_dur;
    return t;
}

Time
HostPageCache::chargeWrite(uint64_t ino, uint64_t offset, uint64_t len,
                           Time ready, sim::Resource *io_path)
{
    if (len == 0)
        return ready;
    const auto &p = sim.params;
    uint64_t g = granuleSize();
    uint64_t first = offset / g;
    uint64_t last = (offset + len - 1) / g;

    uint64_t writeback_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (uint64_t gi = first; gi <= last; ++gi) {
            bool resident;
            writeback_bytes += touchLocked({ino, gi}, true, resident);
        }
    }
    if (!p.chargeHostIo)
        return ready;

    Time t = ready;
    if (writeback_bytes > 0) {
        t = sim.disk.reserve(
            t, transferTime(writeback_bytes, p.diskWriteMBps)).end;
    }
    Time copy_dur = p.preadOverhead + transferTime(len, p.hostCacheWriteMBps);
    if (io_path)
        t = io_path->reserve(t, copy_dur).end;
    else
        t += copy_dur;
    return t;
}

Time
HostPageCache::chargeWritev(uint64_t ino, const IoSpan *runs, unsigned n,
                            Time ready, sim::Resource *io_path)
{
    const auto &p = sim.params;
    uint64_t g = granuleSize();
    uint64_t total = 0;
    uint64_t writeback_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (unsigned r = 0; r < n; ++r) {
            if (runs[r].len == 0)
                continue;
            total += runs[r].len;
            uint64_t first = runs[r].offset / g;
            uint64_t last = (runs[r].offset + runs[r].len - 1) / g;
            for (uint64_t gi = first; gi <= last; ++gi) {
                bool resident;
                writeback_bytes += touchLocked({ino, gi}, true, resident);
            }
        }
    }
    if (total == 0 || !p.chargeHostIo)
        return ready;

    Time t = ready;
    if (writeback_bytes > 0) {
        t = sim.disk.reserve(
            t, transferTime(writeback_bytes, p.diskWriteMBps)).end;
    }
    // One gathered syscall for every run.
    Time copy_dur = p.preadOverhead + transferTime(total,
                                                   p.hostCacheWriteMBps);
    if (io_path)
        t = io_path->reserve(t, copy_dur).end;
    else
        t += copy_dur;
    return t;
}

Time
HostPageCache::chargeReadv(uint64_t ino, const IoSpan *spans, unsigned n,
                           Time ready, sim::Resource *io_path)
{
    const auto &p = sim.params;
    uint64_t g = granuleSize();
    uint64_t total = 0;
    uint64_t miss_bytes = 0;
    uint64_t miss_extents = 0;
    uint64_t writeback_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (unsigned r = 0; r < n; ++r) {
            if (spans[r].len == 0)
                continue;
            total += spans[r].len;
            uint64_t first = spans[r].offset / g;
            uint64_t last = (spans[r].offset + spans[r].len - 1) / g;
            // Miss runs don't fuse across spans: the spans belong to
            // different requesting blocks and need not be adjacent on
            // disk, so each span seeks on its own.
            bool in_miss_run = false;
            for (uint64_t gi = first; gi <= last; ++gi) {
                bool resident;
                writeback_bytes += touchLocked({ino, gi}, false, resident);
                if (!resident) {
                    miss_bytes += g;
                    if (!in_miss_run)
                        ++miss_extents;
                    in_miss_run = true;
                } else {
                    in_miss_run = false;
                }
            }
        }
    }
    hitBytes.inc(total > miss_bytes ? total - miss_bytes : 0);
    missBytes.inc(std::min(miss_bytes, total));

    if (total == 0 || !p.chargeHostIo)
        return ready;

    Time t = ready;
    if (miss_bytes > 0 || writeback_bytes > 0) {
        Time disk_dur = miss_extents * p.diskAccessLat
            + transferTime(miss_bytes, p.diskReadMBps)
            + transferTime(writeback_bytes, p.diskWriteMBps);
        double pinned_frac;
        {
            std::lock_guard<std::mutex> lock(mtx);
            pinned_frac = p.hostCacheBytes
                ? double(pinnedBytes) / double(p.hostCacheBytes) : 0.0;
        }
        disk_dur = Time(double(disk_dur) *
                        (1.0 + p.pinnedReclaimPenalty * pinned_frac));
        t = sim.disk.reserve(t, disk_dur).end;
    }
    // One gathered syscall for every span.
    Time copy_dur = p.preadOverhead + transferTime(total,
                                                   p.hostCacheReadMBps);
    if (io_path)
        t = io_path->reserve(t, copy_dur).end;
    else
        t += copy_dur;
    return t;
}

Time
HostPageCache::chargeSync(uint64_t ino, Time ready)
{
    uint64_t dirty_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (auto &kv : entries) {
            if (kv.first.ino == ino && kv.second.dirty) {
                kv.second.dirty = false;
                dirty_bytes += granuleSize();
            }
        }
    }
    if (dirty_bytes == 0 || !sim.params.chargeHostIo)
        return ready;
    return sim.disk.reserve(
        ready, sim.params.diskAccessLat
            + transferTime(dirty_bytes, sim.params.diskWriteMBps)).end;
}

void
HostPageCache::dropFile(uint64_t ino)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto it = entries.begin(); it != entries.end();) {
        if (it->first.ino == ino) {
            lru.erase(it->second.lruPos);
            it = entries.erase(it);
        } else {
            ++it;
        }
    }
}

void
HostPageCache::dropAll()
{
    std::lock_guard<std::mutex> lock(mtx);
    entries.clear();
    lru.clear();
}

void
HostPageCache::prefault(uint64_t ino, uint64_t offset, uint64_t len)
{
    if (len == 0)
        return;
    uint64_t g = granuleSize();
    uint64_t first = offset / g;
    uint64_t last = (offset + len - 1) / g;
    std::lock_guard<std::mutex> lock(mtx);
    for (uint64_t gi = first; gi <= last; ++gi) {
        bool resident;
        touchLocked({ino, gi}, false, resident);
    }
}

} // namespace hostfs
} // namespace gpufs
