/**
 * @file
 * Simulated CPU (host OS) page cache.
 *
 * Content always comes from the ContentProvider (the provider *is* the
 * disk image), so the cache tracks only *residency* and *dirtiness* of
 * fixed-size granules plus an LRU order, and charges virtual time:
 * resident granules are read at host-cache bandwidth, missing granules
 * first pay a disk reservation. This reproduces the effects the paper's
 * evaluation depends on — warm-vs-cold runs, `hdparm` cached vs disk
 * rates, pinned CUDA buffers squeezing cache capacity (Figure 8), and
 * explicit cache flushes before cold experiments (§5.2.1).
 */

#ifndef GPUFS_HOSTFS_PAGE_CACHE_HH
#define GPUFS_HOSTFS_PAGE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "sim/context.hh"

namespace gpufs {
namespace hostfs {

/** One extent of a vectored I/O charge (offset/len only; the data
 *  movement itself is functional and untimed). */
struct IoSpan {
    uint64_t offset;
    uint64_t len;
};

/**
 * LRU residency map over (inode, granule) pairs with a byte capacity.
 * Thread safe.
 */
class HostPageCache
{
  public:
    explicit HostPageCache(sim::SimContext &sim_ctx);

    /**
     * Charge a read of [offset, offset+len) of inode @p ino, ready at
     * virtual time @p ready. Missing granules reserve the disk; all
     * bytes then pay host-cache read bandwidth on @p io_path if
     * non-null (the serialized daemon path) or inline otherwise.
     * @return virtual completion time.
     */
    Time chargeRead(uint64_t ino, uint64_t offset, uint64_t len, Time ready,
                    sim::Resource *io_path);

    /**
     * Charge a write of [offset, offset+len): bytes land in the cache
     * (become resident + dirty) at cache-write bandwidth.
     */
    Time chargeWrite(uint64_t ino, uint64_t offset, uint64_t len, Time ready,
                     sim::Resource *io_path);

    /**
     * Vectored chargeWrite: touch every run's granules (resident +
     * dirty) but charge ONE syscall overhead plus the runs' total
     * bytes — the cost of a single gathered pwritev, which is how the
     * daemon lands multi-run write-backs.
     */
    Time chargeWritev(uint64_t ino, const IoSpan *runs, unsigned n,
                      Time ready, sim::Resource *io_path);

    /**
     * Vectored chargeRead: miss/disk accounting runs per span exactly
     * as n chargeRead calls would, but the copy out of the cache pays
     * ONE syscall overhead plus the spans' total bytes — a single
     * gathered preadv, which is how the daemon serves a cross-slot
     * aggregated ReadPages group.
     */
    Time chargeReadv(uint64_t ino, const IoSpan *spans, unsigned n,
                     Time ready, sim::Resource *io_path);

    /** Write back dirty granules of @p ino to disk. ~fsync. */
    Time chargeSync(uint64_t ino, Time ready);

    /** Drop every granule of @p ino (unlink / invalidate). */
    void dropFile(uint64_t ino);

    /** Drop everything (the pre-benchmark `echo 3 > drop_caches`). */
    void dropAll();

    /** Mark [offset, offset+len) resident without timing (warmup). */
    void prefault(uint64_t ino, uint64_t offset, uint64_t len);

    /**
     * Reserve @p bytes as pinned (cudaHostAlloc-style). Pinned memory
     * competes with the page cache (§5.1.4), shrinking its effective
     * capacity. @return false if more than the total would be pinned.
     */
    bool reservePinned(uint64_t bytes);
    void releasePinned(uint64_t bytes);

    /** Bytes of cache capacity currently usable. */
    uint64_t effectiveCapacity() const;

    /** Resident bytes right now. */
    uint64_t residentBytes() const;

    StatSet &stats() { return stats_; }

  private:
    struct Key {
        uint64_t ino;
        uint64_t granule;
        bool operator==(const Key &o) const
        {
            return ino == o.ino && granule == o.granule;
        }
    };
    struct KeyHash {
        size_t operator()(const Key &k) const
        {
            return static_cast<size_t>(hashCombine(k.ino, k.granule));
        }
    };
    struct Entry {
        std::list<Key>::iterator lruPos;
        bool dirty;
    };

    sim::SimContext &sim;
    mutable std::mutex mtx;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> lru;              // front = most recent
    uint64_t pinnedBytes;
    StatSet stats_;
    Counter &hitBytes;
    Counter &missBytes;
    Counter &evictions;

    uint64_t granuleSize() const { return sim.params.hostCacheGranule; }

    /** Insert/refresh a granule; evict LRU victims past capacity.
     *  @return disk-writeback bytes evicted dirty (charged by caller). */
    uint64_t touchLocked(const Key &key, bool dirty, bool &was_resident);
};

} // namespace hostfs
} // namespace gpufs

#endif // GPUFS_HOSTFS_PAGE_CACHE_HH
