#include "hostfs/content.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gpufs {
namespace hostfs {

void
InMemoryContent::readAt(uint64_t offset, uint64_t len, uint8_t *dst)
{
    std::lock_guard<std::mutex> lock(mtx);
    uint64_t have = bytes.size() > offset ? bytes.size() - offset : 0;
    uint64_t n = std::min(len, have);
    if (n > 0)
        std::memcpy(dst, bytes.data() + offset, n);
    if (n < len)
        std::memset(dst + n, 0, len - n);
}

bool
InMemoryContent::writeAt(uint64_t offset, uint64_t len, const uint8_t *src)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (offset + len > bytes.size())
        bytes.resize(offset + len, 0);
    std::memcpy(bytes.data() + offset, src, len);
    return true;
}

void
InMemoryContent::truncate(uint64_t new_size)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (new_size < bytes.size())
        bytes.resize(new_size);
}

void
SyntheticContent::readAt(uint64_t offset, uint64_t len, uint8_t *dst)
{
    generate(offset, len, dst);
    if (!allowOverlay)
        return;
    // Patch in any overlay chunks intersecting [offset, offset+len).
    std::lock_guard<std::mutex> lock(mtx);
    if (overlay.empty())
        return;
    uint64_t first = offset / kOverlayChunk * kOverlayChunk;
    for (uint64_t base = first; base < offset + len; base += kOverlayChunk) {
        std::vector<uint8_t> *chunk = findChunkLocked(base);
        if (!chunk)
            continue;
        uint64_t lo = std::max(base, offset);
        uint64_t hi = std::min(base + kOverlayChunk, offset + len);
        std::memcpy(dst + (lo - offset), chunk->data() + (lo - base),
                    hi - lo);
    }
}

std::vector<uint8_t> *
SyntheticContent::findChunkLocked(uint64_t chunk_base)
{
    for (auto &kv : overlay) {
        if (kv.first == chunk_base)
            return &kv.second;
    }
    return nullptr;
}

bool
SyntheticContent::writeAt(uint64_t offset, uint64_t len, const uint8_t *src)
{
    if (!allowOverlay)
        return false;
    std::lock_guard<std::mutex> lock(mtx);
    uint64_t pos = offset;
    while (pos < offset + len) {
        uint64_t base = pos / kOverlayChunk * kOverlayChunk;
        std::vector<uint8_t> *chunk = findChunkLocked(base);
        if (!chunk) {
            // New overlay chunk starts as the synthetic content so that
            // partial writes keep surrounding bytes intact.
            overlay.emplace_back(base, std::vector<uint8_t>(kOverlayChunk));
            chunk = &overlay.back().second;
            generate(base, kOverlayChunk, chunk->data());
        }
        uint64_t hi = std::min(base + kOverlayChunk, offset + len);
        std::memcpy(chunk->data() + (pos - base), src + (pos - offset),
                    hi - pos);
        pos = hi;
    }
    return true;
}

uint8_t
SyntheticContent::patternByte(uint64_t seed, uint64_t offset)
{
    // One hash per 8-byte lane; byte extracted by position.
    uint64_t lane = offset / 8;
    uint64_t word = hashCombine(seed, lane);
    return static_cast<uint8_t>(word >> ((offset % 8) * 8));
}

std::unique_ptr<SyntheticContent>
SyntheticContent::pattern(uint64_t seed)
{
    auto gen = [seed](uint64_t offset, uint64_t len, uint8_t *dst) {
        uint64_t pos = offset;
        uint64_t end = offset + len;
        // Head: unaligned bytes.
        while (pos < end && pos % 8 != 0) {
            dst[pos - offset] = patternByte(seed, pos);
            ++pos;
        }
        // Body: whole 8-byte lanes.
        while (pos + 8 <= end) {
            uint64_t word = hashCombine(seed, pos / 8);
            std::memcpy(dst + (pos - offset), &word, 8);
            pos += 8;
        }
        // Tail.
        while (pos < end) {
            dst[pos - offset] = patternByte(seed, pos);
            ++pos;
        }
    };
    return std::make_unique<SyntheticContent>(std::move(gen), true);
}

} // namespace hostfs
} // namespace gpufs
