#include "hostfs/journal.hh"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <set>
#include <vector>

#include "base/logging.hh"

namespace gpufs {
namespace hostfs {

uint64_t
journalChecksum(const uint8_t *data, uint64_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

/** Commit checksum: over the header's own fields up to the checksum. */
uint64_t
headerChecksum(const JRecHeader &h)
{
    return journalChecksum(reinterpret_cast<const uint8_t *>(&h),
                           offsetof(JRecHeader, checksum));
}

} // namespace

WriteJournal::WriteJournal(HostFs &fs) : fs_(fs)
{
    Status st;
    jfd_ = fs_.open(kPath, O_RDWR_F | O_CREAT_F, &st);
    gpufs_assert(jfd_ >= 0, "journal open failed");
    FileInfo fi;
    fs_.fstat(jfd_, &fi);
    jino_ = fi.ino;
}

WriteJournal::~WriteJournal()
{
    if (jfd_ >= 0)
        fs_.close(jfd_);
}

IoResult
WriteJournal::logWrite(uint64_t ino, const WriteRun *runs, unsigned n,
                       Time ready, sim::Resource *io_path)
{
    IoResult a = append(ino, runs, n, ready, io_path);
    if (!ok(a.status))
        return a;
    IoResult s = groupSync(a.done);
    if (!ok(s.status))
        return {s.status, 0, s.done};
    return {Status::Ok, a.bytes, s.done};
}

IoResult
WriteJournal::append(uint64_t ino, const WriteRun *runs, unsigned n,
                     Time ready, sim::Resource *io_path)
{
    std::lock_guard<std::mutex> lk(mtx_);
    const uint64_t txn = nextTxn_;

    std::vector<uint8_t> buf;
    uint64_t payload_total = 0;
    for (unsigned r = 0; r < n; ++r) {
        JRecHeader h{};
        h.magic = kJournalMagic;
        h.type = kJRecExtent;
        h.txn = txn;
        h.ino = ino;
        h.offset = runs[r].offset;
        h.len = runs[r].len;
        h.checksum = journalChecksum(runs[r].data, runs[r].len);
        const uint8_t *hp = reinterpret_cast<const uint8_t *>(&h);
        buf.insert(buf.end(), hp, hp + sizeof h);
        buf.insert(buf.end(), runs[r].data, runs[r].data + runs[r].len);
        payload_total += runs[r].len;
    }

    IoResult w =
        fs_.pwrite(jfd_, buf.data(), buf.size(), tail_, ready, io_path);
    if (!ok(w.status))
        return {w.status, 0, w.done};

    // Torn-tail crash point: the extent records happened to reach
    // stable media, the commit never did — recovery must discard them.
    IoSpan span{tail_, buf.size()};
    if (fs_.maybeCrash(sim::CrashPoint::MidJournalAppend, jino_, &span, 1))
        return {Status::IoError, 0, w.done};

    JRecHeader c{};
    c.magic = kJournalMagic;
    c.type = kJRecCommit;
    c.txn = txn;
    c.ino = ino;
    c.offset = n;
    c.len = 0;
    c.checksum = headerChecksum(c);
    IoResult wc = fs_.pwrite(jfd_, reinterpret_cast<const uint8_t *>(&c),
                             sizeof c, tail_ + buf.size(), w.done, io_path);
    if (!ok(wc.status))
        return {wc.status, 0, wc.done};

    tail_ += buf.size() + sizeof c;
    nextTxn_ = txn + 1;
    Time &p = pendingCommit_[ino];
    p = std::max(p, wc.done);
    pendingReady_ = std::max(pendingReady_, wc.done);
    return {Status::Ok, payload_total, wc.done};
}

IoResult
WriteJournal::groupSync(Time ready)
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (pendingCommit_.empty())
        return {Status::Ok, 0, ready};
    IoResult s = fs_.fsync(jfd_, std::max(ready, pendingReady_));
    if (!ok(s.status))
        return {s.status, 0, s.done};
    for (const auto &kv : pendingCommit_) {
        Time &last = lastCommit_[kv.first];
        last = std::max(last, s.done);
    }
    pendingCommit_.clear();
    pendingReady_ = 0;
    return {Status::Ok, 0, s.done};
}

bool
WriteJournal::syncPending() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return !pendingCommit_.empty();
}

RecoveryStats
WriteJournal::recover(Time ready)
{
    std::lock_guard<std::mutex> lk(mtx_);
    RecoveryStats st;
    st.done = ready;

    FileInfo fi;
    if (!ok(fs_.fstat(jfd_, &fi)) || fi.size == 0) {
        tail_ = 0;
        lastCommit_.clear();
        pendingCommit_.clear();
        pendingReady_ = 0;
        return st;
    }
    std::vector<uint8_t> img(fi.size);
    IoResult rd = fs_.pread(jfd_, img.data(), fi.size, 0, ready, nullptr);
    if (!ok(rd.status))
        return st;
    st.done = rd.done;

    struct Extent {
        uint64_t ino;
        uint64_t offset;
        uint64_t len;
        uint64_t at;    ///< payload position in img
    };
    std::vector<Extent> committed;
    std::vector<Extent> pending;
    uint64_t pos = 0;
    uint64_t max_txn = 0;
    uint64_t commits = 0;
    while (pos + sizeof(JRecHeader) <= img.size()) {
        JRecHeader h;
        std::memcpy(&h, img.data() + pos, sizeof h);
        if (h.magic != kJournalMagic)
            break;
        if (h.type == kJRecExtent) {
            if (pos + sizeof h + h.len > img.size())
                break;
            const uint8_t *payload = img.data() + pos + sizeof h;
            if (journalChecksum(payload, h.len) != h.checksum)
                break;
            pending.push_back({h.ino, h.offset, h.len,
                               pos + sizeof(JRecHeader)});
            pos += sizeof h + h.len;
        } else if (h.type == kJRecCommit) {
            if (headerChecksum(h) != h.checksum)
                break;
            if (h.offset != pending.size())
                break;  // commit doesn't match its extents: torn
            committed.insert(committed.end(), pending.begin(),
                             pending.end());
            pending.clear();
            max_txn = std::max(max_txn, h.txn);
            commits++;
            pos += sizeof h;
        } else {
            break;
        }
    }

    st.tornRecords = pending.size();
    st.tornBytes = img.size() - pos + [&] {
        uint64_t b = 0;
        for (const Extent &e : pending)
            b += sizeof(JRecHeader) + e.len;
        return b;
    }();
    // Committed extents replay in append order, so the newest
    // committed value of every byte wins; replay is idempotent.
    std::set<uint64_t> inos;
    for (const Extent &e : committed) {
        if (ok(fs_.replayExtent(e.ino, e.offset, img.data() + e.at,
                                e.len))) {
            st.bytesReplayed += e.len;
            inos.insert(e.ino);
        }
    }
    st.txnsReplayed = commits;
    Time t = st.done;
    for (uint64_t ino : inos)
        t = std::max(t, fs_.fsyncIno(ino, t));
    st.done = t;

    fs_.ftruncate(jfd_, 0);
    tail_ = 0;
    nextTxn_ = max_txn + 1;
    lastCommit_.clear();
    pendingCommit_.clear();
    pendingReady_ = 0;
    return st;
}

Time
WriteJournal::checkpoint(Time ready)
{
    std::lock_guard<std::mutex> lk(mtx_);
    // Durability order matters: flush the covered files BEFORE
    // discarding the records that could re-create their bytes. (The
    // reverse order would open a window where neither the journal nor
    // the data file holds the committed bytes durably.)
    Time t = ready;
    for (const auto &kv : lastCommit_)
        t = std::max(t, fs_.fsyncIno(kv.first, t));
    // Unsynced appends (a crash raced the sweep's groupSync) get the
    // same treatment: their bytes are applied in place, so flush the
    // file and let the records die with the truncate.
    for (const auto &kv : pendingCommit_)
        t = std::max(t, fs_.fsyncIno(kv.first, t));
    fs_.ftruncate(jfd_, 0);
    tail_ = 0;
    lastCommit_.clear();
    pendingCommit_.clear();
    pendingReady_ = 0;
    return t;
}

Time
WriteJournal::lastCommitDone(uint64_t ino) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = lastCommit_.find(ino);
    return it == lastCommit_.end() ? 0 : it->second;
}

uint64_t
WriteJournal::tailOffset() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return tail_;
}

} // namespace hostfs
} // namespace gpufs
