/**
 * @file
 * Write-ahead journal for the GPUfs daemon's write-back path.
 *
 * Journal-first ordering: for a durable file (O_GDURABLE_F), the
 * daemon appends checksummed extent records plus a commit record to
 * the journal file and fsyncs it BEFORE the in-place write-back. A
 * write-back RPC that completed therefore has its commit record on
 * stable media, and gmsync/gfsync on a durable file only needs the
 * commit-durable time — no data-file fsync.
 *
 * Record format (exposed so recovery tests can craft torn tails):
 *
 *   [JRecHeader type=extent, payload follows] * n   one per write run
 *   [JRecHeader type=commit, offset=n]              terminates the txn
 *
 * Extent checksums cover the payload (FNV-1a 64); the commit checksum
 * covers its own header fields. Recovery replays committed
 * transactions in order and discards everything from the first
 * invalid record on — a torn tail is an uncommitted transaction and
 * simply never happened.
 */

#ifndef GPUFS_HOSTFS_JOURNAL_HH
#define GPUFS_HOSTFS_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "hostfs/hostfs.hh"

namespace gpufs {
namespace hostfs {

constexpr uint32_t kJournalMagic = 0x474A524E;  // "GJRN"

enum JRecType : uint32_t {
    kJRecExtent = 1,
    kJRecCommit = 2,
};

/** On-journal record header; extent payload bytes follow directly. */
struct JRecHeader {
    uint32_t magic;     ///< kJournalMagic
    uint32_t type;      ///< JRecType
    uint64_t txn;       ///< transaction id (monotonic)
    uint64_t ino;       ///< target inode (commit: same as extents)
    uint64_t offset;    ///< extent: file offset; commit: extent count
    uint64_t len;       ///< extent: payload bytes; commit: 0
    uint64_t checksum;  ///< extent: FNV-1a64(payload); commit: header
};

/** FNV-1a 64 (the journal's checksum). */
uint64_t journalChecksum(const uint8_t *data, uint64_t len);

/** What a recovery pass found and did. */
struct RecoveryStats {
    uint64_t txnsReplayed = 0;   ///< committed txns re-applied
    uint64_t bytesReplayed = 0;  ///< extent payload bytes re-applied
    uint64_t tornRecords = 0;    ///< valid extents with no commit
    uint64_t tornBytes = 0;      ///< journal bytes discarded as tail
    Time done = 0;               ///< virtual time recovery finished
};

/**
 * The daemon's write-ahead journal. One instance per daemon; all
 * mutating calls come from the daemon service thread (internally
 * locked anyway so tests can poke at it while the daemon is idle).
 */
class WriteJournal
{
  public:
    static constexpr const char *kPath = "/.gpufs-journal";

    explicit WriteJournal(HostFs &fs);
    ~WriteJournal();

    WriteJournal(const WriteJournal &) = delete;
    WriteJournal &operator=(const WriteJournal &) = delete;

    /**
     * Append one transaction (extent records for @p runs + commit),
     * fsync the journal, and return with .done = the commit-durable
     * time. On error or an injected crash nothing is committed and
     * the caller must fail its write-back. Composition of append() +
     * groupSync() — the per-txn-fsync path kept for callers outside
     * the daemon's sweep loop.
     */
    IoResult logWrite(uint64_t ino, const WriteRun *runs, unsigned n,
                      Time ready, sim::Resource *io_path);

    /**
     * Group commit, step 1: append one transaction's extent + commit
     * records (pwrites only — NO journal fsync). Returns .bytes = the
     * payload total and .done = the commit-record write's completion.
     * The records are on media (the crash model persists pwrites
     * unless a crash point tears them explicitly), but the txn has no
     * commit-DURABLE time until the next groupSync() — lastCommitDone
     * does not see it before then.
     */
    IoResult append(uint64_t ino, const WriteRun *runs, unsigned n,
                    Time ready, sim::Resource *io_path);

    /**
     * Group commit, step 2: ONE journal fsync covering every append()
     * since the last sync; each covered ino's lastCommitDone advances
     * to the fsync's completion time. No-op ({Ok, 0, ready}) when
     * nothing is pending. The daemon calls this once per service
     * sweep, so N same-sweep write-backs share one barrier.
     */
    IoResult groupSync(Time ready);

    /** True when append()ed txns await their groupSync(). */
    bool syncPending() const;

    /**
     * Replay committed-but-possibly-unapplied transactions in commit
     * order, fsync every touched file, discard the torn tail, and
     * truncate the journal. Run at daemon start (idempotent: replay
     * re-applies physical extents).
     */
    RecoveryStats recover(Time ready);

    /**
     * Checkpoint on clean shutdown: every committed transaction has
     * been applied in place, so the journal's history is dead weight —
     * fsync each file it covers (the commit record was the durability
     * point; the in-place writes may still sit volatile in the host
     * page cache), then truncate to empty. The caller (CpuDaemon::
     * stop) guarantees no committed-but-unapplied txns remain.
     * @return the virtual time the truncate is durable.
     */
    Time checkpoint(Time ready);

    /** Commit-durable time of the last committed txn touching @p ino
     *  (0 if none since recovery) — the gmsync barrier's answer. */
    Time lastCommitDone(uint64_t ino) const;

    /** Current append position (tests craft torn tails here). */
    uint64_t tailOffset() const;

    int fd() const { return jfd_; }

  private:
    HostFs &fs_;
    int jfd_ = -1;
    uint64_t jino_ = 0;
    mutable std::mutex mtx_;
    uint64_t tail_ = 0;
    uint64_t nextTxn_ = 1;
    std::unordered_map<uint64_t, Time> lastCommit_;
    /** Appends awaiting their group fsync: per-ino commit-record write
     *  completion, and the max across them (the fsync's ready time). */
    std::unordered_map<uint64_t, Time> pendingCommit_;
    Time pendingReady_ = 0;
};

} // namespace hostfs
} // namespace gpufs

#endif // GPUFS_HOSTFS_JOURNAL_HH
