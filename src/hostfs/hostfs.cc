#include "hostfs/hostfs.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gpufs {
namespace hostfs {

HostFs::HostFs(sim::SimContext &sim_ctx)
    : sim(sim_ctx), pageCache(sim_ctx), nextIno(1), nextFd(3)
{
}

HostFs::~HostFs() = default;

Status
HostFs::addFile(const std::string &path,
                std::unique_ptr<ContentProvider> content, uint64_t size)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (names.count(path))
        return Status::Exists;
    auto node = std::make_shared<Inode>();
    node->ino = nextIno++;
    node->size = size;
    node->version = 1;
    node->content = std::move(content);
    node->nlink = 1;
    node->openRefs = 0;
    names.emplace(path, std::move(node));
    return Status::Ok;
}

int
HostFs::open(const std::string &path, uint32_t flags, Status *st)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = names.find(path);
    std::shared_ptr<Inode> node;
    if (it == names.end()) {
        if (!(flags & O_CREAT_F)) {
            if (st)
                *st = Status::NoEnt;
            return -1;
        }
        node = std::make_shared<Inode>();
        node->ino = nextIno++;
        node->size = 0;
        node->version = 1;
        node->content = std::make_unique<InMemoryContent>();
        node->nlink = 1;
        node->openRefs = 0;
        names.emplace(path, node);
    } else {
        node = it->second;
    }
    if ((flags & O_ACCMODE_F) != O_RDONLY_F && !node->content->writable()) {
        if (st)
            *st = Status::ReadOnlyFile;
        return -1;
    }
    if (flags & O_TRUNC_F) {
        node->size = 0;
        node->version++;
        pageCache.dropFile(node->ino);
    }
    node->openRefs++;
    int fd = nextFd++;
    fds.emplace(fd, OpenFile{node, flags});
    if (st)
        *st = Status::Ok;
    return fd;
}

std::shared_ptr<HostFs::Inode>
HostFs::lookupFd(int fd, uint32_t *flags_out)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = fds.find(fd);
    if (it == fds.end())
        return nullptr;
    if (flags_out)
        *flags_out = it->second.flags;
    return it->second.inode;
}

Status
HostFs::close(int fd)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = fds.find(fd);
    if (it == fds.end())
        return Status::BadFd;
    it->second.inode->openRefs--;
    fds.erase(it);
    return Status::Ok;
}

IoResult
HostFs::pread(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
              Time ready, sim::Resource *io_path)
{
    return preadImpl(fd, dst, len, offset, ready, io_path, true);
}

IoResult
HostFs::preadUncached(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
                      Time ready)
{
    return preadImpl(fd, dst, len, offset, ready, nullptr, false);
}

IoResult
HostFs::preadImpl(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
                  Time ready, sim::Resource *io_path, bool charge)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return {Status::BadFd, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostRead))
        return {Status::IoError, 0, ready};
    uint64_t size;
    uint64_t ino;
    {
        std::lock_guard<std::mutex> lock(mtx);
        size = node->size;
        ino = node->ino;
    }
    if (offset >= size)
        return {Status::Ok, 0, ready};
    uint64_t n = std::min(len, size - offset);
    node->content->readAt(offset, n, dst);
    Time done =
        charge ? pageCache.chargeRead(ino, offset, n, ready, io_path)
               : ready;
    return {Status::Ok, n, done};
}

IoResult
HostFs::preadPages(int fd, uint8_t *const *dsts, unsigned n_pages,
                   uint64_t page_len, uint64_t offset, Time ready,
                   sim::Resource *io_path)
{
    return preadPagesImpl(fd, dsts, n_pages, page_len, offset, ready,
                          io_path, true);
}

IoResult
HostFs::preadPagesUncached(int fd, uint8_t *const *dsts, unsigned n_pages,
                           uint64_t page_len, uint64_t offset, Time ready)
{
    return preadPagesImpl(fd, dsts, n_pages, page_len, offset, ready,
                          nullptr, false);
}

IoResult
HostFs::preadPagesImpl(int fd, uint8_t *const *dsts, unsigned n_pages,
                       uint64_t page_len, uint64_t offset, Time ready,
                       sim::Resource *io_path, bool charge)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return {Status::BadFd, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostRead))
        return {Status::IoError, 0, ready};
    uint64_t size;
    uint64_t ino;
    {
        std::lock_guard<std::mutex> lock(mtx);
        size = node->size;
        ino = node->ino;
    }
    if (offset >= size)
        return {Status::Ok, 0, ready};
    uint64_t n = std::min(uint64_t(n_pages) * page_len, size - offset);
    for (unsigned i = 0; i < n_pages; ++i) {
        uint64_t base = uint64_t(i) * page_len;
        if (base >= n)
            break;
        node->content->readAt(offset + base, std::min(page_len, n - base),
                              dsts[i]);
    }
    // One contiguous extent, one preadv charge.
    Time done =
        charge ? pageCache.chargeRead(ino, offset, n, ready, io_path)
               : ready;
    return {Status::Ok, n, done};
}

IoResult
HostFs::preadRuns(int fd, ReadRun *runs, unsigned n, Time ready,
                  sim::Resource *io_path)
{
    return preadRunsImpl(fd, runs, n, ready, io_path, true);
}

IoResult
HostFs::preadRunsUncached(int fd, ReadRun *runs, unsigned n, Time ready)
{
    return preadRunsImpl(fd, runs, n, ready, nullptr, false);
}

IoResult
HostFs::preadRunsImpl(int fd, ReadRun *runs, unsigned n, Time ready,
                      sim::Resource *io_path, bool charge)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return {Status::BadFd, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostRead))
        return {Status::IoError, 0, ready};
    uint64_t size;
    uint64_t ino;
    {
        std::lock_guard<std::mutex> lock(mtx);
        size = node->size;
        ino = node->ino;
    }
    uint64_t total = 0;
    std::vector<IoSpan> spans(n);
    for (unsigned r = 0; r < n; ++r) {
        ReadRun &run = runs[r];
        run.bytes = 0;
        if (run.offset < size) {
            uint64_t want = uint64_t(run.nPages) * run.pageLen;
            run.bytes = std::min(want, size - run.offset);
            for (unsigned i = 0; i < run.nPages; ++i) {
                uint64_t base = uint64_t(i) * run.pageLen;
                if (base >= run.bytes)
                    break;
                node->content->readAt(run.offset + base,
                                      std::min(run.pageLen,
                                               run.bytes - base),
                                      run.dsts[i]);
            }
        }
        total += run.bytes;
        spans[r] = {run.offset, run.bytes};
    }
    if (total == 0)
        return {Status::Ok, 0, ready};
    // All runs, one gathered preadv charge.
    Time done =
        charge ? pageCache.chargeReadv(ino, spans.data(), n, ready, io_path)
               : ready;
    return {Status::Ok, total, done};
}

IoResult
HostFs::pwritev(int fd, const WriteRun *runs, unsigned n, Time ready,
                sim::Resource *io_path)
{
    return pwritevImpl(fd, runs, n, ready, io_path, true);
}

IoResult
HostFs::pwritevUncached(int fd, const WriteRun *runs, unsigned n,
                        Time ready)
{
    return pwritevImpl(fd, runs, n, ready, nullptr, false);
}

IoResult
HostFs::pwritevImpl(int fd, const WriteRun *runs, unsigned n, Time ready,
                    sim::Resource *io_path, bool charge)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return {Status::BadFd, 0, ready};
    if ((flags & O_ACCMODE_F) == O_RDONLY_F)
        return {Status::ReadOnlyFile, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostWrite))
        return {Status::IoError, 0, ready};
    if (n && sim.faults.takeShortWrite()) {
        // Transient short write: only a prefix lands (the first run,
        // or half of a single run). The caller sees IoError with the
        // partial byte count and retries the whole vector.
        uint64_t len0 = n > 1 ? runs[0].len : runs[0].len / 2;
        if (len0) {
            capturePreImage(node, runs[0].offset, len0);
            node->content->writeAt(runs[0].offset, len0, runs[0].data);
            std::lock_guard<std::mutex> lock(mtx);
            node->size = std::max(node->size, runs[0].offset + len0);
            node->version++;
        }
        return {Status::IoError, len0, ready};
    }
    uint64_t total = 0;
    uint64_t max_end = 0;
    std::vector<IoSpan> spans(n);
    for (unsigned r = 0; r < n; ++r) {
        if (sim.faults.hitCrashPoint(sim::CrashPoint::MidPwritev))
            return tornWrite(node, runs, r, ready);
        if (runs[r].len) {
            capturePreImage(node, runs[r].offset, runs[r].len);
            if (!node->content->writeAt(runs[r].offset, runs[r].len,
                                        runs[r].data)) {
                return {Status::ReadOnlyFile, total, ready};
            }
        }
        total += runs[r].len;
        max_end = std::max(max_end, runs[r].offset + runs[r].len);
        spans[r] = {runs[r].offset, runs[r].len};
    }
    if (total == 0)
        return {Status::Ok, 0, ready};
    uint64_t ino;
    uint64_t ver;
    {
        std::lock_guard<std::mutex> lock(mtx);
        node->size = std::max(node->size, max_end);
        node->version++;    // one gathered write, one version step
        ino = node->ino;
        ver = node->version;
    }
    if (sim.faults.hitCrashPoint(sim::CrashPoint::AfterWriteback)) {
        // Write-back landed in the (volatile) page cache; power died
        // before any fsync. The whole call's pre-images revert.
        powerLoss();
        return {Status::IoError, total, ready};
    }
    Time done =
        charge ? pageCache.chargeWritev(ino, spans.data(), n, ready,
                                        io_path)
               : ready;
    return {Status::Ok, total, done, ver};
}

/** Crash point "mid-pwritev after k of n runs": runs [0, r) of this
 *  call made it to stable media, run r itself tears in half, and every
 *  write not covered by an fsync — including this call's later runs —
 *  is lost. The torn state the journal exists to make unobservable. */
IoResult
HostFs::tornWrite(const std::shared_ptr<Inode> &node, const WriteRun *runs,
                  unsigned r, Time ready)
{
    std::vector<IoSpan> durable(r);
    uint64_t landed = 0;
    uint64_t end = 0;
    for (unsigned i = 0; i < r; ++i) {
        durable[i] = {runs[i].offset, runs[i].len};
        landed += runs[i].len;
        end = std::max(end, runs[i].offset + runs[i].len);
    }
    if (r)
        markDurable(node->ino, durable.data(), r);
    powerLoss();
    uint64_t half = runs[r].len / 2;
    if (half) {
        node->content->writeAt(runs[r].offset, half, runs[r].data);
        end = std::max(end, runs[r].offset + half);
    }
    if (end) {
        std::lock_guard<std::mutex> lock(mtx);
        node->size = std::max(node->size, end);
        node->version++;
    }
    return {Status::IoError, landed + half, ready};
}

IoResult
HostFs::pwrite(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
               Time ready, sim::Resource *io_path)
{
    return pwriteImpl(fd, src, len, offset, ready, io_path, true);
}

IoResult
HostFs::pwriteUncached(int fd, const uint8_t *src, uint64_t len,
                       uint64_t offset, Time ready)
{
    return pwriteImpl(fd, src, len, offset, ready, nullptr, false);
}

IoResult
HostFs::pwriteImpl(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
                   Time ready, sim::Resource *io_path, bool charge)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return {Status::BadFd, 0, ready};
    if ((flags & O_ACCMODE_F) == O_RDONLY_F)
        return {Status::ReadOnlyFile, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostWrite))
        return {Status::IoError, 0, ready};
    // No crash points here: pwrite is also the journal-append path,
    // whose own torn states are modeled by MidJournalAppend.
    capturePreImage(node, offset, len);
    if (!node->content->writeAt(offset, len, src))
        return {Status::ReadOnlyFile, 0, ready};
    uint64_t ino;
    uint64_t ver;
    {
        std::lock_guard<std::mutex> lock(mtx);
        node->size = std::max(node->size, offset + len);
        node->version++;
        ino = node->ino;
        ver = node->version;
    }
    Time done =
        charge ? pageCache.chargeWrite(ino, offset, len, ready, io_path)
               : ready;
    return {Status::Ok, len, done, ver};
}

IoResult
HostFs::fsync(int fd, Time ready)
{
    return fsyncImpl(fd, ready, true);
}

IoResult
HostFs::fsyncUncached(int fd, Time ready)
{
    return fsyncImpl(fd, ready, false);
}

IoResult
HostFs::fsyncImpl(int fd, Time ready, bool charge)
{
    auto node = lookupFd(fd, nullptr);
    if (!node)
        return {Status::BadFd, 0, ready};
    if (sim.faults.crashed() || sim.faults.takeFault(sim::FaultOp::HostFsync))
        return {Status::IoError, 0, ready};
    uint64_t ino;
    {
        std::lock_guard<std::mutex> lock(mtx);
        ino = node->ino;
    }
    if (sim.faults.active())
        markDurable(ino, nullptr, 0);   // everything on this ino is durable
    return {Status::Ok, 0, charge ? pageCache.chargeSync(ino, ready) : ready};
}

Status
HostFs::ftruncate(int fd, uint64_t new_size)
{
    uint32_t flags;
    auto node = lookupFd(fd, &flags);
    if (!node)
        return Status::BadFd;
    if ((flags & O_ACCMODE_F) == O_RDONLY_F)
        return Status::ReadOnlyFile;
    std::lock_guard<std::mutex> lock(mtx);
    if (auto *mem = dynamic_cast<InMemoryContent *>(node->content.get()))
        mem->truncate(new_size);
    node->size = new_size;
    node->version++;
    pageCache.dropFile(node->ino);
    return Status::Ok;
}

Status
HostFs::unlink(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = names.find(path);
    if (it == names.end())
        return Status::NoEnt;
    it->second->nlink = 0;
    it->second->version++;
    pageCache.dropFile(it->second->ino);
    names.erase(it);
    return Status::Ok;
}

Status
HostFs::stat(const std::string &path, FileInfo *out)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = names.find(path);
    if (it == names.end())
        return Status::NoEnt;
    if (out)
        *out = {it->second->ino, it->second->size, it->second->version};
    return Status::Ok;
}

Status
HostFs::fstat(int fd, FileInfo *out)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = fds.find(fd);
    if (it == fds.end())
        return Status::BadFd;
    const auto &node = it->second.inode;
    if (out)
        *out = {node->ino, node->size, node->version};
    return Status::Ok;
}

size_t
HostFs::openCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return fds.size();
}

// ---- fault injection / crash simulation ----

std::shared_ptr<HostFs::Inode>
HostFs::lookupIno(uint64_t ino)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto &kv : names)
        if (kv.second->ino == ino)
            return kv.second;
    return nullptr;
}

void
HostFs::capturePreImage(const std::shared_ptr<Inode> &node, uint64_t offset,
                        uint64_t len)
{
    if (!sim.faults.crashArmed() || len == 0)
        return;
    VolatileWrite v;
    v.node = node;
    v.offset = offset;
    v.oldData.assign(len, 0);
    {
        std::lock_guard<std::mutex> lock(mtx);
        v.ino = node->ino;
        v.prevSize = node->size;
        v.prevVersion = node->version;
    }
    // Bytes past the old EOF restore as zeros (InMemoryContent grows
    // zero-filled), so a reverted extending write leaves no residue.
    uint64_t readable =
        v.prevSize > offset ? std::min(len, v.prevSize - offset) : 0;
    if (readable)
        node->content->readAt(offset, readable, v.oldData.data());
    std::lock_guard<std::mutex> lk(vlogMtx);
    vlog.push_back(std::move(v));
}

void
HostFs::markDurable(uint64_t ino, const IoSpan *spans, unsigned n)
{
    std::lock_guard<std::mutex> lk(vlogMtx);
    auto covered = [&](const VolatileWrite &v) {
        if (v.ino != ino)
            return false;
        if (!spans)
            return true;    // fsync: everything on this inode
        for (unsigned i = 0; i < n; ++i) {
            // Any overlap promotes the whole record: one captured
            // write run is the flush unit (slight over-durability on
            // partial overlap, never under-durability).
            uint64_t a0 = v.offset, a1 = v.offset + v.oldData.size();
            uint64_t b0 = spans[i].offset, b1 = b0 + spans[i].len;
            if (a0 < b1 && b0 < a1)
                return true;
        }
        return false;
    };
    vlog.erase(std::remove_if(vlog.begin(), vlog.end(), covered), vlog.end());
}

bool
HostFs::maybeCrash(sim::CrashPoint cp, uint64_t ino,
                   const IoSpan *durable_spans, unsigned n)
{
    if (!sim.faults.hitCrashPoint(cp))
        return false;
    if (n)
        markDurable(ino, durable_spans, n);
    powerLoss();
    return true;
}

void
HostFs::powerLoss()
{
    std::vector<VolatileWrite> lost;
    {
        std::lock_guard<std::mutex> lk(vlogMtx);
        lost.swap(vlog);
    }
    // Revert newest first so overlapping writes unwind to the oldest
    // durable state; sizes and versions roll back with the earliest
    // record per inode (applied last).
    for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
        it->node->content->writeAt(it->offset, it->oldData.size(),
                                   it->oldData.data());
        std::lock_guard<std::mutex> lock(mtx);
        it->node->size = it->prevSize;
        it->node->version = it->prevVersion;
    }
    pageCache.dropAll();
}

// ---- recovery (journal replay after a crash) ----

Status
HostFs::replayExtent(uint64_t ino, uint64_t offset, const uint8_t *data,
                     uint64_t len)
{
    auto node = lookupIno(ino);
    if (!node)
        return Status::NoEnt;
    if (len && !node->content->writeAt(offset, len, data))
        return Status::ReadOnlyFile;
    std::lock_guard<std::mutex> lock(mtx);
    node->size = std::max(node->size, offset + len);
    node->version++;
    return Status::Ok;
}

Time
HostFs::fsyncIno(uint64_t ino, Time ready)
{
    if (sim.faults.active())
        markDurable(ino, nullptr, 0);
    return pageCache.chargeSync(ino, ready);
}

} // namespace hostfs
} // namespace gpufs
