/**
 * @file
 * File content providers for the simulated host file system.
 *
 * The paper's benchmarks use multi-gigabyte inputs (a 1.8 GB sequential
 * file, a 1 GB random-read file, an 11 GB matrix). Materializing those
 * in RAM would be wasteful and would couple the benchmarks to the test
 * machine's memory size, so the host FS separates the *namespace* from
 * the *bytes*: a ContentProvider produces the bytes of any extent on
 * demand. Procedural (synthetic) providers derive content from a seed
 * and the offset, so a read at offset 10 GB costs the same as one at
 * offset 0 and no storage is needed.
 */

#ifndef GPUFS_HOSTFS_CONTENT_HH
#define GPUFS_HOSTFS_CONTENT_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "base/rng.hh"

namespace gpufs {
namespace hostfs {

/**
 * Interface producing / accepting the bytes of a host file.
 * All methods are thread safe; the host daemon and CPU-baseline
 * workloads may touch the same file concurrently.
 */
class ContentProvider
{
  public:
    virtual ~ContentProvider() = default;

    /** Copy @p len bytes starting at @p offset into @p dst.
     *  Reads past logical EOF produce zeros (the caller clamps sizes). */
    virtual void readAt(uint64_t offset, uint64_t len, uint8_t *dst) = 0;

    /** Store @p len bytes at @p offset. @return false if read-only. */
    virtual bool writeAt(uint64_t offset, uint64_t len, const uint8_t *src)
        = 0;

    /** True if writeAt() is supported. */
    virtual bool writable() const = 0;
};

/** Heap-backed content, growable; used for all writable files. */
class InMemoryContent : public ContentProvider
{
  public:
    InMemoryContent() = default;
    explicit InMemoryContent(std::vector<uint8_t> initial)
        : bytes(std::move(initial)) {}

    void readAt(uint64_t offset, uint64_t len, uint8_t *dst) override;
    bool writeAt(uint64_t offset, uint64_t len, const uint8_t *src) override;
    bool writable() const override { return true; }

    /** Drop bytes beyond @p new_size (ftruncate shrink path). */
    void truncate(uint64_t new_size);

  private:
    std::mutex mtx;
    std::vector<uint8_t> bytes;
};

/**
 * Procedural content: bytes are a pure function of (seed, offset).
 * Optionally supports sparse overlay writes, so a mostly-synthetic file
 * (e.g. an image database with planted query images) can be patched.
 */
class SyntheticContent : public ContentProvider
{
  public:
    /** Generator filling dst[0..len) with the bytes at [offset, offset+len). */
    using Generator =
        std::function<void(uint64_t offset, uint64_t len, uint8_t *dst)>;

    SyntheticContent(Generator gen, bool allow_overlay_writes = false)
        : generate(std::move(gen)), allowOverlay(allow_overlay_writes) {}

    void readAt(uint64_t offset, uint64_t len, uint8_t *dst) override;
    bool writeAt(uint64_t offset, uint64_t len, const uint8_t *src) override;
    bool writable() const override { return allowOverlay; }

    /** A provider whose every byte is hash(seed, offset-block): fast to
     *  generate, verifiable at any offset. */
    static std::unique_ptr<SyntheticContent> pattern(uint64_t seed);

    /** Compute the pattern byte a pattern(seed) provider yields at
     *  @p offset (for verification in tests). */
    static uint8_t patternByte(uint64_t seed, uint64_t offset);

  private:
    Generator generate;
    bool allowOverlay;
    std::mutex mtx;
    // Sparse overlay: 64 KiB chunks that have been written.
    static constexpr uint64_t kOverlayChunk = 64 * 1024;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> overlay;

    std::vector<uint8_t> *findChunkLocked(uint64_t chunk_base);
};

} // namespace hostfs
} // namespace gpufs

#endif // GPUFS_HOSTFS_CONTENT_HH
