/**
 * @file
 * The simulated host file system.
 *
 * Provides the POSIX-shaped surface the GPUfs host daemon and the CPU
 * baseline workloads call: open/pread/pwrite/fsync/ftruncate/unlink/
 * stat. The namespace maps paths to inodes; each inode owns a
 * ContentProvider (the "disk image") and a version number used by the
 * consistency layer (§4.4) to detect stale GPU caches. Timing flows
 * through HostPageCache.
 */

#ifndef GPUFS_HOSTFS_HOSTFS_HH
#define GPUFS_HOSTFS_HOSTFS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.hh"
#include "base/units.hh"
#include "hostfs/content.hh"
#include "hostfs/page_cache.hh"
#include "sim/context.hh"

namespace gpufs {
namespace hostfs {

/** Open flags (subset of POSIX plus the host-visible view of GPUfs). */
enum OpenFlags : uint32_t {
    O_RDONLY_F = 0x0,
    O_WRONLY_F = 0x1,
    O_RDWR_F   = 0x2,
    O_CREAT_F  = 0x40,
    O_TRUNC_F  = 0x200,
    O_ACCMODE_F = 0x3,
    /** GPUfs durability flag: write-backs to this file go through the
     *  daemon's write-ahead journal (when enabled), and fsync/gmsync
     *  completion is tied to the journal commit record. Per-file, per
     *  the cuda-durable-allocator design, rather than a global mode. */
    O_GDURABLE_F = 0x10000,
};

/** Result of stat(). */
struct FileInfo {
    uint64_t ino;
    uint64_t size;
    uint64_t version;   ///< bumped on every mutation; consistency token
};

/** Result of a timed I/O call. */
struct IoResult {
    Status status;
    uint64_t bytes;
    Time done;          ///< virtual completion time
    /** Post-write inode version (write paths only; 0 otherwise). Lets
     *  the daemon report the version its own write produced without a
     *  second fstat round through the namespace lock. */
    uint64_t version = 0;
};

/** One run of a gathered write (pwritev). */
struct WriteRun {
    uint64_t offset;
    uint64_t len;
    const uint8_t *data;
};

/** One run of a gathered scatter-read (preadRuns): a contiguous file
 *  extent at @p offset landing in @p nPages page buffers, one
 *  originating RPC slot's worth. @p bytes returns the EOF-clamped
 *  byte count actually read for that run. */
struct ReadRun {
    uint64_t offset;
    uint8_t *const *dsts;
    unsigned nPages;
    uint64_t pageLen;
    uint64_t bytes = 0;
};

/**
 * The host file system. All methods are thread safe. Methods that move
 * data take the caller's virtual ready time and return a completion
 * time; @p io_path, when non-null, is the serialized CPU resource the
 * copy runs on (the GPUfs daemon passes SimContext::cpuIo; CPU baseline
 * threads pass nullptr and pay the cost inline).
 */
class HostFs
{
  public:
    explicit HostFs(sim::SimContext &sim_ctx);
    ~HostFs();

    HostFs(const HostFs &) = delete;
    HostFs &operator=(const HostFs &) = delete;

    /** Create a file backed by an explicit provider (workload setup). */
    Status addFile(const std::string &path,
                   std::unique_ptr<ContentProvider> content, uint64_t size);

    /** Open; returns fd >= 0 or negative on error (status out-param). */
    int open(const std::string &path, uint32_t flags, Status *st = nullptr);
    Status close(int fd);

    IoResult pread(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
                   Time ready = 0, sim::Resource *io_path = nullptr);
    IoResult pwrite(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
                    Time ready = 0, sim::Resource *io_path = nullptr);

    /**
     * Vectored scatter-read: one contiguous file extent starting at
     * @p offset lands in @p n_pages buffers of @p page_len bytes each
     * (dsts[i] receives [offset + i*page_len, ...)), charged as ONE
     * preadv syscall — the daemon's batched ReadPages path. Bytes
     * clamp at EOF; tails of partial pages are left untouched.
     */
    IoResult preadPages(int fd, uint8_t *const *dsts, unsigned n_pages,
                        uint64_t page_len, uint64_t offset, Time ready = 0,
                        sim::Resource *io_path = nullptr);

    /**
     * Gathered scatter-read: every run's extent lands in its page
     * buffers, charged as ONE preadv syscall over all runs (per-run
     * miss/disk accounting, one copy overhead) — the daemon's
     * cross-slot aggregated ReadPages path. Per-run byte counts (EOF
     * clamped; runs entirely past EOF read 0 bytes) return in
     * runs[i].bytes; IoResult.bytes is their sum.
     */
    IoResult preadRuns(int fd, ReadRun *runs, unsigned n, Time ready = 0,
                       sim::Resource *io_path = nullptr);

    /**
     * Gathered write: all runs land atomically as ONE pwritev — a
     * single syscall charge and a single version bump, which is how
     * the daemon writes back multi-run (zero-diff) page extents.
     */
    IoResult pwritev(int fd, const WriteRun *runs, unsigned n,
                     Time ready = 0, sim::Resource *io_path = nullptr);

    /** fsync: flush dirty page-cache granules to disk. */
    IoResult fsync(int fd, Time ready = 0);

    // ---- uncached variants (storage backends) ----
    //
    // Functionally identical to their charged twins — same fault
    // checks, crash points, pre-image capture, short-write injection,
    // EOF clamping and version bumps — but they skip HostPageCache
    // entirely: no residency/dirty tracking and NO virtual-time charge
    // (.done == the passed ready). The O_DIRECT / GPUDirect / remote
    // backends call these and put their own device, DMA-engine, and
    // fabric reservations on top (src/storage/*).

    IoResult preadUncached(int fd, uint8_t *dst, uint64_t len,
                           uint64_t offset, Time ready = 0);
    IoResult preadPagesUncached(int fd, uint8_t *const *dsts,
                                unsigned n_pages, uint64_t page_len,
                                uint64_t offset, Time ready = 0);
    IoResult preadRunsUncached(int fd, ReadRun *runs, unsigned n,
                               Time ready = 0);
    IoResult pwriteUncached(int fd, const uint8_t *src, uint64_t len,
                            uint64_t offset, Time ready = 0);
    IoResult pwritevUncached(int fd, const WriteRun *runs, unsigned n,
                             Time ready = 0);

    /** Uncached fsync: the backend's device-flush semantics — marks
     *  the inode's outstanding writes durable (fault injection) but
     *  charges nothing; there are no dirty page-cache granules to
     *  flush because the uncached writes never touched the cache. */
    IoResult fsyncUncached(int fd, Time ready = 0);

    Status ftruncate(int fd, uint64_t new_size);
    Status unlink(const std::string &path);
    Status stat(const std::string &path, FileInfo *out);
    Status fstat(int fd, FileInfo *out);

    /** Flush the simulated OS page cache (cold-run experiments). */
    void dropCaches() { pageCache.dropAll(); }

    // ---- fault injection / crash simulation ----

    /** True once an armed crash point fired and until faults.reboot();
     *  every data operation fails with Status::IoError while set. */
    bool crashed() const { return sim.faults.crashed(); }

    /**
     * Consult the fault plan at a named crash point. When the armed
     * point fires: the given spans of @p ino (bytes the OS happened to
     * flush before dying — e.g. journal extent records for a torn-tail
     * scenario) are promoted durable, then powerLoss() applies. Returns
     * true when the crash fired; the caller must fail its operation.
     */
    bool maybeCrash(sim::CrashPoint cp, uint64_t ino = 0,
                    const IoSpan *durable_spans = nullptr, unsigned n = 0);

    /**
     * Simulated power loss: every write that was never covered by an
     * fsync is reverted to its pre-image (newest first), file sizes and
     * versions roll back with them, and the host page cache drops.
     * Pre-images are only captured while a crash point is armed, so
     * fault-free runs pay nothing.
     */
    void powerLoss();

    // ---- recovery (journal replay after a crash) ----

    /** Re-apply one committed journal extent to the file data. Bumps
     *  the inode version once per call. NoEnt if no inode has @p ino. */
    Status replayExtent(uint64_t ino, uint64_t offset, const uint8_t *data,
                        uint64_t len);

    /** fsync by inode number (recovery flushes replayed files without
     *  an fd). Also marks the ino's outstanding writes durable. */
    Time fsyncIno(uint64_t ino, Time ready);

    HostPageCache &cache() { return pageCache; }
    sim::SimContext &simContext() { return sim; }

    /** Number of currently open descriptors (leak checks in tests). */
    size_t openCount() const;

  private:
    struct Inode {
        uint64_t ino;
        uint64_t size;
        uint64_t version;
        std::unique_ptr<ContentProvider> content;
        uint32_t nlink;     ///< 0 after unlink; freed when opens drain
        uint32_t openRefs;
    };
    struct OpenFile {
        std::shared_ptr<Inode> inode;
        uint32_t flags;
    };

    /** Pre-image of one not-yet-durable write, captured only while a
     *  crash point is armed; reverted (newest first) on power loss,
     *  dropped when an fsync covers the inode. */
    struct VolatileWrite {
        std::shared_ptr<Inode> node;
        uint64_t ino;
        uint64_t offset;
        std::vector<uint8_t> oldData;
        uint64_t prevSize;
        uint64_t prevVersion;
    };

    sim::SimContext &sim;
    HostPageCache pageCache;
    mutable std::mutex mtx;
    std::unordered_map<std::string, std::shared_ptr<Inode>> names;
    std::unordered_map<int, OpenFile> fds;
    uint64_t nextIno;
    int nextFd;

    /** Volatile-write log (fault injection only). Own mutex: capture
     *  happens outside `mtx` on the write paths. */
    std::mutex vlogMtx;
    std::vector<VolatileWrite> vlog;

    std::shared_ptr<Inode> lookupFd(int fd, uint32_t *flags_out);
    std::shared_ptr<Inode> lookupIno(uint64_t ino);

    /** Shared bodies of the charged/uncached pairs: @p charge false
     *  skips the HostPageCache charge (done stays @p ready). */
    IoResult preadImpl(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
                       Time ready, sim::Resource *io_path, bool charge);
    IoResult preadPagesImpl(int fd, uint8_t *const *dsts, unsigned n_pages,
                            uint64_t page_len, uint64_t offset, Time ready,
                            sim::Resource *io_path, bool charge);
    IoResult preadRunsImpl(int fd, ReadRun *runs, unsigned n, Time ready,
                           sim::Resource *io_path, bool charge);
    IoResult pwriteImpl(int fd, const uint8_t *src, uint64_t len,
                        uint64_t offset, Time ready, sim::Resource *io_path,
                        bool charge);
    IoResult pwritevImpl(int fd, const WriteRun *runs, unsigned n,
                         Time ready, sim::Resource *io_path, bool charge);
    IoResult fsyncImpl(int fd, Time ready, bool charge);
    void capturePreImage(const std::shared_ptr<Inode> &node, uint64_t offset,
                         uint64_t len);
    void markDurable(uint64_t ino, const IoSpan *spans, unsigned n);
    IoResult tornWrite(const std::shared_ptr<Inode> &node,
                       const WriteRun *runs, unsigned r, Time ready);
};

} // namespace hostfs
} // namespace gpufs

#endif // GPUFS_HOSTFS_HOSTFS_HH
