/**
 * @file
 * Text-search workload (§5.2.2): "grep -w" over a dictionary.
 *
 * The paper searches 58,000 modern English words (reformatted to
 * 32-byte-aligned records) through two datasets: the complete works of
 * Shakespeare (one 6 MB file) and the Linux 3.3.1 source tree (~33,000
 * files, 524 MB). Neither dataset ships with this repository, so
 * seeded generators reproduce the *distributions* that drive the
 * experiment: the dictionary record format, the many-small-files size
 * profile of a source tree, and a token stream in which a controlled
 * fraction of tokens are dictionary words.
 */

#ifndef GPUFS_WORKLOADS_TEXTCORPUS_HH
#define GPUFS_WORKLOADS_TEXTCORPUS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/units.hh"
#include "consistency/wrapfs.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace workloads {

/** Paper: every dictionary word is padded to a 32-byte boundary. */
constexpr uint32_t kDictRecord = 32;

/** A generated dictionary of unique lowercase words. */
class Dictionary
{
  public:
    /** Generate @p count unique words from @p seed (3..14 chars). */
    Dictionary(uint64_t seed, uint32_t count);

    uint32_t size() const { return uint32_t(words_.size()); }
    const std::string &word(uint32_t i) const { return words_[i]; }
    const std::vector<std::string> &words() const { return words_; }

    /** Index of @p token, or -1 if not a dictionary word. */
    int32_t lookup(const std::string &token) const;
    int32_t lookup(const char *s, size_t len) const;

    /** The 32-byte-aligned on-disk dictionary image. */
    std::vector<uint8_t> fileImage() const;

    /** Install the dictionary file at @p path. */
    void install(hostfs::HostFs &fs, const std::string &path) const;

  private:
    std::vector<std::string> words_;
    std::unordered_map<std::string, uint32_t> index;
};

/** One generated corpus: file paths plus a file listing them. */
struct Corpus {
    std::vector<std::string> paths;
    std::string listPath;       ///< newline-separated list-of-files file
    uint64_t totalBytes = 0;
};

/**
 * Generate a source-tree-like corpus: @p num_files files whose sizes
 * follow a heavy-tailed distribution around total/num_files, whose
 * tokens are drawn from @p dict with probability @p dict_fraction (the
 * rest are identifier-like non-words). Installed as in-memory files.
 */
Corpus makeTree(hostfs::HostFs &fs, const Dictionary &dict, uint64_t seed,
                const std::string &dir, unsigned num_files,
                uint64_t total_bytes, double dict_fraction = 0.6);

/** Generate a single large text file (the Shakespeare stand-in). */
Corpus makeSingleFile(hostfs::HostFs &fs, const Dictionary &dict,
                      uint64_t seed, const std::string &path,
                      uint64_t bytes, double dict_fraction = 0.8);

/**
 * Reference scan: exact whole-word counts of every dictionary word in
 * text[0..len). One pass (tokenize + hash), used both for functional
 * verification and as the kernels' fast functional engine — the
 * *charge* model still prices the paper's brute-force thread-per-word
 * scan (see rates.hh).
 */
void countWords(const Dictionary &dict, const char *text, size_t len,
                std::vector<uint64_t> &counts);

/**
 * Segmented variant for parallel scans: counts only tokens whose first
 * character lies in [start_lo, start_hi) of text[0..len). Segments
 * overlap by a word-length of slack, and each token is attributed to
 * the segment containing its start, so per-segment counts sum exactly
 * to the whole-file counts.
 */
void countWordsRange(const Dictionary &dict, const char *text, size_t len,
                     size_t start_lo, size_t start_hi,
                     std::vector<uint64_t> &counts);

/**
 * CPU baseline ("grep -w" on 8 cores): prefetches file contents into
 * memory, then counts. @return per-word total counts.
 * @param virt_elapsed out: modelled 8-core wall time.
 */
std::vector<uint64_t>
cpuGrep(consistency::WrapFs &fs, const Dictionary &dict,
        const Corpus &corpus, Time *virt_elapsed);

} // namespace workloads
} // namespace gpufs

#endif // GPUFS_WORKLOADS_TEXTCORPUS_HH
