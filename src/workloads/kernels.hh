/**
 * @file
 * The GPU-side applications of §5, written against the GpuFs API.
 *
 * Like the paper's workloads, each of these is "implemented entirely in
 * the GPU kernel without CPU-side application code": the host driver
 * only launches the kernel. Examples and benchmarks share these
 * implementations.
 */

#ifndef GPUFS_WORKLOADS_KERNELS_HH
#define GPUFS_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpufs/gpufs.hh"
#include "workloads/imagedb.hh"
#include "workloads/matrix.hh"
#include "workloads/textcorpus.hh"

namespace gpufs {
namespace workloads {

/** Install the query-image input file (the paper's 31.5 MB input). */
void addQueryFile(hostfs::HostFs &fs, const std::string &path,
                  uint64_t query_seed, uint32_t num_queries, uint32_t dim);

// ---- image search (§5.2.1) ----

struct ImageSearchGpuResult {
    std::vector<MatchResult> results;   ///< per-query first match
    Time elapsed;                       ///< virtual kernel time
};

/**
 * Run the approximate-image-matching kernel on one GPU. Queries
 * {q_begin, q_begin + q_stride, ...} < q_end are statically split
 * across threadblocks; each block greads database images into its
 * scratchpad and matches them against its unmatched queries, scanning
 * databases in priority order. Multi-GPU drivers pass q_begin = gpu,
 * q_stride = num_gpus: interleaved assignment keeps every GPU's share
 * within one of each other (a contiguous split gives the last GPU a
 * short tail, and the "slowest GPU" span then misreads scaling).
 */
ImageSearchGpuResult
gpuImageSearch(core::GpuFs &fs, gpu::GpuDevice &dev,
               const std::vector<ImageDbSpec> &dbs,
               const std::string &query_path, uint32_t q_begin,
               uint32_t q_end, double threshold, unsigned num_blocks = 28,
               unsigned threads = 512, uint32_t q_stride = 1);

// ---- grep (§5.2.2) ----

struct GrepGpuResult {
    std::vector<uint64_t> counts;   ///< per-dictionary-word totals
    Time elapsed;
    uint64_t outputBytes;           ///< formatted output written
};

/**
 * The "grep -w" kernel: blocks claim files from the list file, read
 * them through GPUfs, count dictionary words (each thread owns a slice
 * of the dictionary), and print "word file count" records into an
 * O_GWRONCE output file via the gpuutil string routines.
 * @param dict functional word set (the kernel reads the on-disk
 *             dictionary through GPUfs and cross-checks its size).
 */
GrepGpuResult
gpuGrep(core::GpuFs &fs, gpu::GpuDevice &dev, const Dictionary &dict,
        const std::string &dict_path, const std::string &list_path,
        const std::string &out_path, unsigned num_blocks = 28,
        unsigned threads = 512, uint64_t segment_bytes = 256 * KiB);

// ---- matrix-vector product (§5.1.4) ----

struct MatvecGpuResult {
    Time elapsed;
    double checksum;    ///< sum of output elements (verification)
    uint32_t rows;
};

/**
 * y = A·x entirely from the GPU: gmmap over the matrix, gwrite +
 * gfsync for the output, gftruncate to reset it first — the paper's
 * no-CPU-code implementation.
 */
MatvecGpuResult
gpuMatvec(core::GpuFs &fs, gpu::GpuDevice &dev, const MatrixSpec &spec,
          const std::string &out_path, unsigned num_blocks = 28,
          unsigned threads = 512);

} // namespace workloads
} // namespace gpufs

#endif // GPUFS_WORKLOADS_KERNELS_HH
