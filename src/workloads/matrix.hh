/**
 * @file
 * Matrix-vector product workload (§5.1.4, Figure 8).
 *
 * Single-precision y = A·x with a fixed 128K-element vector and a
 * matrix swept from a few hundred MB to 11 GB — deliberately past both
 * the GPU's memory and the host's page cache. Matrices are procedural
 * (seeded), so the 11 GB input needs no RAM; reference results are
 * computable row by row for verification.
 */

#ifndef GPUFS_WORKLOADS_MATRIX_HH
#define GPUFS_WORKLOADS_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hostfs/hostfs.hh"

namespace gpufs {
namespace workloads {

/** Paper: "we fix the input vector length to 128K elements". */
constexpr uint32_t kMatvecCols = 128 * 1024;

struct MatrixSpec {
    std::string matrixPath;
    std::string vectorPath;
    uint64_t seed;
    uint32_t rows;
    uint32_t cols = kMatvecCols;

    uint64_t rowBytes() const { return uint64_t(cols) * sizeof(float); }
    uint64_t matrixBytes() const { return uint64_t(rows) * rowBytes(); }
};

/** Element (r, c) of the matrix. */
float matrixElement(uint64_t seed, uint32_t r, uint32_t c);

/** Element c of the input vector. */
float vectorElement(uint64_t seed, uint32_t c);

/** Install matrix + vector files in @p fs. */
void addMatrixFiles(hostfs::HostFs &fs, const MatrixSpec &spec);

/** Reference dot product of row @p r with the vector. */
double referenceRow(const MatrixSpec &spec, uint32_t r);

/** Spec with @p mb megabytes of matrix (rounded to whole rows). */
MatrixSpec makeMatrix(uint64_t seed, double mb, const std::string &dir);

} // namespace workloads
} // namespace gpufs

#endif // GPUFS_WORKLOADS_MATRIX_HH
