#include "workloads/imagedb.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "workloads/rates.hh"

namespace gpufs {
namespace workloads {

namespace {

float
unitFloat(uint64_t h)
{
    // 24 mantissa-safe bits -> [0, 1).
    return static_cast<float>(h >> 40) * (1.0f / 16777216.0f);
}

} // namespace

float
queryElement(uint64_t query_seed, uint32_t q, uint32_t e)
{
    return unitFloat(hashCombine(hashCombine(query_seed, 0x9e3779b9u + q), e));
}

std::vector<float>
queryImage(uint64_t query_seed, uint32_t q, uint32_t dim)
{
    std::vector<float> img(dim);
    for (uint32_t e = 0; e < dim; ++e)
        img[e] = queryElement(query_seed, q, e);
    return img;
}

float
dbElement(uint64_t db_seed, uint32_t i, uint32_t e)
{
    return unitFloat(hashCombine(hashCombine(db_seed, i), e));
}

void
addImageDb(hostfs::HostFs &fs, const ImageDbSpec &spec, uint64_t query_seed)
{
    // Copy what the generator closure needs (the spec may be a
    // temporary); the planted map is shared, immutable after setup.
    auto planted = std::make_shared<std::map<uint32_t, uint32_t>>(
        spec.planted);
    uint64_t db_seed = spec.seed;
    uint32_t dim = spec.dim;
    uint64_t image_bytes = spec.imageBytes();

    auto gen = [=](uint64_t offset, uint64_t len, uint8_t *dst) {
        uint64_t pos = offset;
        const uint64_t end = offset + len;
        while (pos < end) {
            uint32_t img = static_cast<uint32_t>(pos / image_bytes);
            uint64_t in_img = pos % image_bytes;
            uint32_t elem = static_cast<uint32_t>(in_img / sizeof(float));
            uint32_t in_elem = static_cast<uint32_t>(in_img % sizeof(float));

            auto it = planted->find(img);
            float v = (it != planted->end())
                ? queryElement(query_seed, it->second, elem)
                : dbElement(db_seed, img, elem);
            uint8_t bytes[sizeof(float)];
            std::memcpy(bytes, &v, sizeof(float));

            uint64_t n = std::min<uint64_t>(sizeof(float) - in_elem,
                                            end - pos);
            std::memcpy(dst + (pos - offset), bytes + in_elem, n);
            pos += n;
        }
    };
    Status st = fs.addFile(spec.path,
                           std::make_unique<hostfs::SyntheticContent>(gen),
                           spec.fileBytes());
    if (!ok(st))
        gpufs_fatal("addImageDb(%s): %s", spec.path.c_str(), statusName(st));
}

double
distanceSq(const float *a, const float *b, uint32_t dim, double threshold,
           uint32_t *elems_examined)
{
    double sum = 0.0;
    uint32_t e = 0;
    while (e < dim) {
        // Check the threshold every 16 elements: cheap and close to
        // what a warp-synchronous early-exit loop does.
        uint32_t stop = std::min(dim, e + 16);
        for (; e < stop; ++e) {
            double d = double(a[e]) - double(b[e]);
            sum += d * d;
        }
        if (sum > threshold)
            break;
    }
    if (elems_examined)
        *elems_examined = e;
    return sum;
}

std::vector<ImageDbSpec>
makePaperDbs(uint64_t seed, uint32_t num_queries, bool plant_queries,
             double scale)
{
    // Paper: "3 database files, of sizes 383, 357 and 400 MB,
    // containing about 25,000 images each".
    const double mb[3] = {383.0, 357.0, 400.0};
    std::vector<ImageDbSpec> dbs(3);
    SplitMix64 rng(hash64(seed));
    for (int d = 0; d < 3; ++d) {
        dbs[d].path = "/data/imagedb" + std::to_string(d) + ".bin";
        dbs[d].seed = hashCombine(seed, 1000 + d);
        dbs[d].dim = 4096;
        uint64_t bytes = static_cast<uint64_t>(mb[d] * scale * 1e6);
        dbs[d].numImages =
            static_cast<uint32_t>(bytes / dbs[d].imageBytes());
    }
    if (plant_queries) {
        // "Images from the input are injected at random locations in
        // the databases": every query lands in one random (db, slot).
        for (uint32_t q = 0; q < num_queries; ++q) {
            for (;;) {
                int d = static_cast<int>(rng.nextBelow(3));
                uint32_t slot = static_cast<uint32_t>(
                    rng.nextBelow(dbs[d].numImages));
                if (dbs[d].planted.count(slot))
                    continue;   // slot taken; pick another
                dbs[d].planted.emplace(slot, q);
                break;
            }
        }
    }
    return dbs;
}

std::vector<MatchResult>
cpuImageSearch(consistency::WrapFs &fs, const std::vector<ImageDbSpec> &dbs,
               uint64_t query_seed, uint32_t num_queries, double threshold,
               Time *virt_elapsed)
{
    std::vector<MatchResult> results(num_queries);
    if (num_queries == 0) {
        if (virt_elapsed)
            *virt_elapsed = 0;
        return results;
    }
    const uint32_t dim = dbs.empty() ? 4096 : dbs[0].dim;

    // Pre-materialize the query set (the paper's 31.5 MB input file).
    std::vector<std::vector<float>> queries;
    queries.reserve(num_queries);
    for (uint32_t q = 0; q < num_queries; ++q)
        queries.push_back(queryImage(query_seed, q, dim));

    // The OpenMP version: one pass over each database in priority
    // order; all 8 cores scan each loaded chunk against their static
    // share of still-unmatched queries. I/O is sequential (one
    // reader); compute is the per-core maximum.
    Time io_time = 0;
    std::vector<Time> core_compute(kCpuCores, 0);
    std::vector<uint8_t> chunk;
    const uint64_t chunk_images = 256;

    for (size_t d = 0; d < dbs.size(); ++d) {
        const ImageDbSpec &spec = dbs[d];
        Status st;
        int fd = fs.open(spec.path, hostfs::O_RDONLY_F, &st);
        if (fd < 0)
            gpufs_fatal("cpuImageSearch: open(%s): %s", spec.path.c_str(),
                        statusName(st));
        const uint64_t image_bytes = spec.imageBytes();
        chunk.resize(chunk_images * image_bytes);
        for (uint64_t base = 0; base < spec.numImages;
             base += chunk_images) {
            uint64_t n_img =
                std::min<uint64_t>(chunk_images, spec.numImages - base);
            hostfs::IoResult r =
                fs.pread(fd, chunk.data(), n_img * image_bytes,
                         base * image_bytes, io_time);
            io_time = r.done;
            for (uint32_t q = 0; q < num_queries; ++q) {
                if (results[q].found())
                    continue;
                unsigned core = q % kCpuCores;
                const float *qv = queries[q].data();
                for (uint64_t i = 0; i < n_img; ++i) {
                    const auto *img = reinterpret_cast<const float *>(
                        chunk.data() + i * image_bytes);
                    core_compute[core] += kImagePairCostCpuCore;
                    double dist = distanceSq(img, qv, dim, threshold,
                                             nullptr);
                    if (dist <= threshold) {
                        results[q].db = static_cast<int>(d);
                        results[q].image = static_cast<uint32_t>(base + i);
                        break;
                    }
                }
            }
        }
        fs.close(fd);
    }
    if (virt_elapsed) {
        Time compute =
            *std::max_element(core_compute.begin(), core_compute.end());
        // I/O overlaps compute in the OpenMP pipeline; the run ends
        // when the slower of the two finishes.
        *virt_elapsed = std::max(io_time, compute);
    }
    return results;
}

} // namespace workloads
} // namespace gpufs
