#include "workloads/textcorpus.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.hh"
#include "base/rng.hh"
#include "gpuutil/gstring.hh"
#include "workloads/rates.hh"

namespace gpufs {
namespace workloads {

namespace {

/** Deterministic lowercase word: base letters from the rng, plus an
 *  index-derived suffix guaranteeing uniqueness. */
std::string
makeWord(SplitMix64 &rng, uint32_t index)
{
    unsigned base_len = 2 + unsigned(rng.nextBelow(8));   // 2..9 chars
    std::string w;
    w.reserve(base_len + 4);
    for (unsigned i = 0; i < base_len; ++i)
        w.push_back(char('a' + rng.nextBelow(26)));
    // Unique suffix: index in base 26. Total length <= 14 < 32-byte
    // record with room for the NUL padding.
    uint32_t v = index;
    do {
        w.push_back(char('a' + v % 26));
        v /= 26;
    } while (v != 0);
    return w;
}

} // namespace

Dictionary::Dictionary(uint64_t seed, uint32_t count)
{
    SplitMix64 rng(hash64(seed));
    words_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        std::string w = makeWord(rng, i);
        gpufs_assert(w.size() < kDictRecord, "dictionary word too long");
        index.emplace(w, i);
        words_.push_back(std::move(w));
    }
    gpufs_assert(index.size() == count, "dictionary words not unique");
}

int32_t
Dictionary::lookup(const std::string &token) const
{
    auto it = index.find(token);
    return it == index.end() ? -1 : int32_t(it->second);
}

int32_t
Dictionary::lookup(const char *s, size_t len) const
{
    return lookup(std::string(s, len));
}

std::vector<uint8_t>
Dictionary::fileImage() const
{
    std::vector<uint8_t> img(size_t(words_.size()) * kDictRecord, 0);
    for (size_t i = 0; i < words_.size(); ++i) {
        std::memcpy(img.data() + i * kDictRecord, words_[i].data(),
                    words_[i].size());
    }
    return img;
}

void
Dictionary::install(hostfs::HostFs &fs, const std::string &path) const
{
    auto img = fileImage();
    uint64_t bytes = img.size();
    Status st = fs.addFile(
        path, std::make_unique<hostfs::InMemoryContent>(std::move(img)),
        bytes);
    if (!ok(st))
        gpufs_fatal("Dictionary::install(%s): %s", path.c_str(),
                    statusName(st));
}

namespace {

/** Append one token stream of ~target bytes to @p out. */
void
fillText(std::string &out, const Dictionary &dict, SplitMix64 &rng,
         uint64_t target, double dict_fraction)
{
    while (out.size() < target) {
        if (rng.nextDouble() < dict_fraction) {
            out += dict.word(uint32_t(rng.nextBelow(dict.size())));
        } else {
            // Identifier-like non-word (underscore keeps it out of the
            // dictionary by construction).
            unsigned len = 2 + unsigned(rng.nextBelow(10));
            out.push_back('_');
            for (unsigned i = 0; i < len; ++i)
                out.push_back(char('a' + rng.nextBelow(26)));
        }
        out.push_back(rng.nextBelow(12) == 0 ? '\n' : ' ');
    }
}

void
installText(hostfs::HostFs &fs, const std::string &path, std::string text)
{
    uint64_t bytes = text.size();
    std::vector<uint8_t> raw(text.begin(), text.end());
    Status st = fs.addFile(
        path, std::make_unique<hostfs::InMemoryContent>(std::move(raw)),
        bytes);
    if (!ok(st))
        gpufs_fatal("installText(%s): %s", path.c_str(), statusName(st));
}

} // namespace

Corpus
makeTree(hostfs::HostFs &fs, const Dictionary &dict, uint64_t seed,
         const std::string &dir, unsigned num_files, uint64_t total_bytes,
         double dict_fraction)
{
    Corpus corpus;
    SplitMix64 rng(hash64(seed ^ 0xC0DE));
    // Heavy-tailed sizes (log-normal-ish): source trees are mostly
    // small files with a long tail; the paper's tree averages ~16 KB.
    double mean = double(total_bytes) / num_files;
    std::string list;
    std::string text;
    for (unsigned f = 0; f < num_files; ++f) {
        double z = (rng.nextDouble() + rng.nextDouble() +
                    rng.nextDouble() - 1.5) * 1.6;      // ~N(0, 1)
        uint64_t target = std::max<uint64_t>(
            256, uint64_t(mean * std::exp(z) * 0.8));
        std::string path = dir + "/f" + std::to_string(f / 256) + "/s" +
            std::to_string(f) + ".c";
        text.clear();
        fillText(text, dict, rng, target, dict_fraction);
        corpus.totalBytes += text.size();
        // Manifest line: "path size" (find -printf style) — the GPU
        // kernel uses the sizes to enumerate work segments up front.
        list += path + " " + std::to_string(text.size()) + "\n";
        installText(fs, path, text);
        corpus.paths.push_back(std::move(path));
    }
    corpus.listPath = dir + "/files.list";
    installText(fs, corpus.listPath, list);
    return corpus;
}

Corpus
makeSingleFile(hostfs::HostFs &fs, const Dictionary &dict, uint64_t seed,
               const std::string &path, uint64_t bytes,
               double dict_fraction)
{
    Corpus corpus;
    SplitMix64 rng(hash64(seed ^ 0xBA2D));
    std::string text;
    text.reserve(bytes + 64);
    fillText(text, dict, rng, bytes, dict_fraction);
    corpus.totalBytes = text.size();
    installText(fs, path, text);
    corpus.paths.push_back(path);
    corpus.listPath = path + ".list";
    installText(fs, corpus.listPath,
                path + " " + std::to_string(corpus.totalBytes) + "\n");
    return corpus;
}

void
countWords(const Dictionary &dict, const char *text, size_t len,
           std::vector<uint64_t> &counts)
{
    countWordsRange(dict, text, len, 0, len, counts);
}

void
countWordsRange(const Dictionary &dict, const char *text, size_t len,
                size_t start_lo, size_t start_hi,
                std::vector<uint64_t> &counts)
{
    counts.assign(dict.size(), 0);
    size_t i = 0;
    while (i < len && i < start_hi) {
        while (i < len && gpuutil::gisWordDelim(text[i]))
            ++i;
        size_t start = i;
        while (i < len && !gpuutil::gisWordDelim(text[i]))
            ++i;
        if (i > start && start >= start_lo && start < start_hi) {
            int32_t idx = dict.lookup(text + start, i - start);
            if (idx >= 0)
                ++counts[size_t(idx)];
        }
    }
}

std::vector<uint64_t>
cpuGrep(consistency::WrapFs &fs, const Dictionary &dict,
        const Corpus &corpus, Time *virt_elapsed)
{
    std::vector<uint64_t> totals(dict.size(), 0);
    std::vector<uint64_t> counts;

    // Phase 1 (paper): "prefetch the contents of the input files into
    // a large memory buffer first".
    Time io_time = 0;
    std::vector<std::string> contents;
    contents.reserve(corpus.paths.size());
    std::vector<uint8_t> buf;
    for (const auto &path : corpus.paths) {
        Status st;
        int fd = fs.open(path, hostfs::O_RDONLY_F, &st);
        if (fd < 0)
            gpufs_fatal("cpuGrep: open(%s): %s", path.c_str(),
                        statusName(st));
        hostfs::FileInfo info;
        fs.hostFs().fstat(fd, &info);
        buf.resize(info.size);
        hostfs::IoResult r = fs.pread(fd, buf.data(), info.size, 0, io_time);
        io_time = r.done;
        fs.close(fd);
        contents.emplace_back(reinterpret_cast<char *>(buf.data()),
                              info.size);
    }

    // Phase 2: match. Real counting is a single tokenize pass; the
    // charge prices the thread-per-word scan of the paper's CPU code
    // (8 cores, words statically split).
    Time compute_per_core = 0;
    for (const auto &text : contents) {
        countWords(dict, text.data(), text.size(), counts);
        for (size_t w = 0; w < totals.size(); ++w)
            totals[w] += counts[w];
        double byte_words = double(text.size()) * double(dict.size());
        compute_per_core += Time(byte_words * kGrepByteWordCostCpuCoreNs /
                                 double(kCpuCores));
    }
    if (virt_elapsed)
        *virt_elapsed = io_time + compute_per_core;
    return totals;
}

} // namespace workloads
} // namespace gpufs
