#include "workloads/matrix.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/rng.hh"

namespace gpufs {
namespace workloads {

namespace {

float
smallFloat(uint64_t h)
{
    // [-0.5, 0.5): keeps dot products numerically tame at 128K columns.
    return static_cast<float>(h >> 40) * (1.0f / 16777216.0f) - 0.5f;
}

/** Generator for a row-major float matrix derived from @p seed. */
hostfs::SyntheticContent::Generator
matrixGen(uint64_t seed, uint32_t cols)
{
    return [seed, cols](uint64_t offset, uint64_t len, uint8_t *dst) {
        uint64_t row_bytes = uint64_t(cols) * sizeof(float);
        uint64_t pos = offset;
        const uint64_t end = offset + len;
        while (pos < end) {
            uint32_t r = uint32_t(pos / row_bytes);
            uint64_t in_row = pos % row_bytes;
            uint32_t c = uint32_t(in_row / sizeof(float));
            uint32_t in_elem = uint32_t(in_row % sizeof(float));
            float v = smallFloat(hashCombine(hashCombine(seed, r), c));
            uint8_t bytes[sizeof(float)];
            std::memcpy(bytes, &v, sizeof(float));
            uint64_t n =
                std::min<uint64_t>(sizeof(float) - in_elem, end - pos);
            std::memcpy(dst + (pos - offset), bytes + in_elem, n);
            pos += n;
        }
    };
}

} // namespace

float
matrixElement(uint64_t seed, uint32_t r, uint32_t c)
{
    return smallFloat(hashCombine(hashCombine(seed, r), c));
}

float
vectorElement(uint64_t seed, uint32_t c)
{
    return smallFloat(hashCombine(seed ^ 0x5EC7u, c));
}

void
addMatrixFiles(hostfs::HostFs &fs, const MatrixSpec &spec)
{
    Status st = fs.addFile(
        spec.matrixPath,
        std::make_unique<hostfs::SyntheticContent>(
            matrixGen(spec.seed, spec.cols)),
        spec.matrixBytes());
    if (!ok(st))
        gpufs_fatal("addMatrixFiles(%s): %s", spec.matrixPath.c_str(),
                    statusName(st));

    uint64_t vseed = spec.seed;
    uint32_t cols = spec.cols;
    auto vgen = [vseed, cols](uint64_t offset, uint64_t len, uint8_t *dst) {
        uint64_t pos = offset;
        const uint64_t end = offset + len;
        while (pos < end) {
            uint32_t c = uint32_t(pos / sizeof(float));
            uint32_t in_elem = uint32_t(pos % sizeof(float));
            float v = c < cols ? vectorElement(vseed, c) : 0.0f;
            uint8_t bytes[sizeof(float)];
            std::memcpy(bytes, &v, sizeof(float));
            uint64_t n =
                std::min<uint64_t>(sizeof(float) - in_elem, end - pos);
            std::memcpy(dst + (pos - offset), bytes + in_elem, n);
            pos += n;
        }
    };
    st = fs.addFile(spec.vectorPath,
                    std::make_unique<hostfs::SyntheticContent>(vgen),
                    uint64_t(spec.cols) * sizeof(float));
    if (!ok(st))
        gpufs_fatal("addMatrixFiles(%s): %s", spec.vectorPath.c_str(),
                    statusName(st));
}

double
referenceRow(const MatrixSpec &spec, uint32_t r)
{
    double sum = 0.0;
    for (uint32_t c = 0; c < spec.cols; ++c) {
        sum += double(matrixElement(spec.seed, r, c)) *
            double(vectorElement(spec.seed, c));
    }
    return sum;
}

MatrixSpec
makeMatrix(uint64_t seed, double mb, const std::string &dir)
{
    MatrixSpec spec;
    spec.seed = seed;
    spec.matrixPath = dir + "/matrix.bin";
    spec.vectorPath = dir + "/vector.bin";
    spec.rows = uint32_t(uint64_t(mb * 1e6) / spec.rowBytes());
    if (spec.rows == 0)
        spec.rows = 1;
    return spec;
}

} // namespace workloads
} // namespace gpufs
