#include "workloads/kernels.hh"

#include <atomic>
#include <cstring>
#include <mutex>

#include "base/logging.hh"
#include "gpu/launch.hh"
#include "gpuutil/gstring.hh"
#include "workloads/rates.hh"

namespace gpufs {
namespace workloads {

using core::GpuFs;
using core::G_RDONLY;
using core::G_GWRONCE;
using gpu::BlockCtx;

void
addQueryFile(hostfs::HostFs &fs, const std::string &path,
             uint64_t query_seed, uint32_t num_queries, uint32_t dim)
{
    uint64_t image_bytes = uint64_t(dim) * sizeof(float);
    auto gen = [=](uint64_t offset, uint64_t len, uint8_t *dst) {
        uint64_t pos = offset;
        const uint64_t end = offset + len;
        while (pos < end) {
            uint32_t q = uint32_t(pos / image_bytes);
            uint64_t in_img = pos % image_bytes;
            uint32_t e = uint32_t(in_img / sizeof(float));
            uint32_t in_e = uint32_t(in_img % sizeof(float));
            float v = queryElement(query_seed, q, e);
            uint8_t bytes[sizeof(float)];
            std::memcpy(bytes, &v, sizeof(float));
            uint64_t n = std::min<uint64_t>(sizeof(float) - in_e, end - pos);
            std::memcpy(dst + (pos - offset), bytes + in_e, n);
            pos += n;
        }
    };
    Status st = fs.addFile(path,
                           std::make_unique<hostfs::SyntheticContent>(gen),
                           uint64_t(num_queries) * image_bytes);
    if (!ok(st))
        gpufs_fatal("addQueryFile(%s): %s", path.c_str(), statusName(st));
}

ImageSearchGpuResult
gpuImageSearch(GpuFs &fs, gpu::GpuDevice &dev,
               const std::vector<ImageDbSpec> &dbs,
               const std::string &query_path, uint32_t q_begin,
               uint32_t q_end, double threshold, unsigned num_blocks,
               unsigned threads, uint32_t q_stride)
{
    gpufs_assert(q_stride >= 1, "bad query stride");
    // This GPU owns the strided set {q_begin, q_begin+q_stride, ...}.
    // An empty range is legal: interleaved multi-GPU drivers pass
    // q_begin = gpu, and a GPU index can exceed a tiny query count.
    const uint32_t num_q = q_begin >= q_end
        ? 0 : (q_end - q_begin + q_stride - 1) / q_stride;
    ImageSearchGpuResult out;
    out.results.assign(num_q, MatchResult{});
    if (num_q == 0) {
        out.elapsed = 0;
        return out;
    }
    const uint32_t dim = dbs.empty() ? 4096 : dbs[0].dim;
    const uint64_t image_bytes = uint64_t(dim) * sizeof(float);

    gpu::KernelStats ks = gpu::launch(dev, num_blocks, threads,
                                      [&](BlockCtx &ctx) {
        // Static split: query q is owned by block (q % numBlocks).
        std::vector<uint32_t> mine;
        for (uint32_t q = ctx.blockId(); q < num_q; q += ctx.numBlocks())
            mine.push_back(q);
        if (mine.empty())
            return;

        auto *img = reinterpret_cast<float *>(ctx.sharedMem());
        gpufs_assert(ctx.sharedMemBytes() >= image_bytes,
                     "scratchpad smaller than one image");

        // A block cannot hold its whole query share in fast local
        // memory (72 queries x 16 KB at paper scale), so it processes
        // queries in batches, re-reading the databases per batch from
        // the GPUfs buffer cache. Blocks end up at different phases
        // of different databases — exactly the desynchronized access
        // pattern the paper observes ("file access patterns among
        // different threadblocks quickly desynchronize", §5.2.1).
        constexpr size_t kQueryBatch = 16;
        std::vector<float> qdata(kQueryBatch * dim);
        std::vector<bool> matched(kQueryBatch);

        int qfd = fs.gopen(ctx, query_path, G_RDONLY);
        if (qfd < 0)
            gpufs_fatal("query gopen failed: %d", qfd);

        for (size_t b0 = 0; b0 < mine.size(); b0 += kQueryBatch) {
            size_t bn = std::min(kQueryBatch, mine.size() - b0);
            for (size_t i = 0; i < bn; ++i) {
                int64_t n = fs.gread(
                    ctx, qfd,
                    (uint64_t(q_begin) + uint64_t(mine[b0 + i]) * q_stride)
                        * image_bytes,
                    image_bytes, qdata.data() + i * dim);
                gpufs_assert(n == int64_t(image_bytes),
                             "query gread short");
                matched[i] = false;
            }
            size_t unmatched = bn;

            // Databases in priority order; stop when the batch is done.
            for (size_t d = 0; d < dbs.size() && unmatched > 0; ++d) {
                int fd = fs.gopen(ctx, dbs[d].path, G_RDONLY);
                if (fd < 0)
                    gpufs_fatal("db gopen failed: %d", fd);
                core::GStat st;
                fs.gfstat(ctx, fd, &st);
                uint32_t n_images = uint32_t(st.size / image_bytes);
                // Staggered start offsets keep concurrent blocks off
                // the same page; results are unaffected for planted /
                // no-match inputs (a query's match is unique).
                uint32_t start = uint32_t(
                    (uint64_t(ctx.blockId()) * n_images) /
                    ctx.numBlocks());
                for (uint32_t k = 0; k < n_images && unmatched > 0;
                     ++k) {
                    uint32_t i = start + k < n_images
                        ? start + k : start + k - n_images;
                    int64_t n = fs.gread(ctx, fd,
                                         uint64_t(i) * image_bytes,
                                         image_bytes, img);
                    gpufs_assert(n == int64_t(image_bytes),
                                 "db gread short");
                    // One comparison per still-unmatched query; the
                    // charge prices the paper's measured rate.
                    ctx.charge(kImagePairCostGpuBlock * unmatched);
                    for (size_t j = 0; j < bn; ++j) {
                        if (matched[j])
                            continue;
                        double dist = distanceSq(
                            img, qdata.data() + j * dim, dim, threshold,
                            nullptr);
                        if (dist <= threshold) {
                            out.results[mine[b0 + j]].db = int(d);
                            out.results[mine[b0 + j]].image = i;
                            matched[j] = true;
                            --unmatched;
                        }
                    }
                }
                fs.gclose(ctx, fd);
            }
        }
        fs.gclose(ctx, qfd);
    });
    out.elapsed = ks.elapsed();
    return out;
}

/** Right-hand slack covering a token that straddles a boundary. */
constexpr uint64_t kGrepSlack = 2 * kDictRecord;

GrepGpuResult
gpuGrep(GpuFs &fs, gpu::GpuDevice &dev, const Dictionary &dict,
        const std::string &dict_path, const std::string &list_path,
        const std::string &out_path, unsigned num_blocks, unsigned threads,
        uint64_t segment_bytes)
{
    // Work granule: large files are scanned in segments so one huge
    // file still spreads across all blocks.
    const uint64_t kGrepSegment = segment_bytes;
    GrepGpuResult out;
    out.counts.assign(dict.size(), 0);
    std::mutex merge_mtx;
    std::atomic<uint64_t> out_offset{0};    // GPU-global output cursor

    gpu::KernelStats ks = gpu::launch(dev, num_blocks, threads,
                                      [&](BlockCtx &ctx) {
        // Parse the manifest ("path size" lines), read through GPUfs
        // and tokenized with the GPU string routines.
        int lfd = fs.gopen(ctx, list_path, G_RDONLY);
        if (lfd < 0)
            gpufs_fatal("list gopen failed: %d", lfd);
        core::GStat lst;
        fs.gfstat(ctx, lfd, &lst);
        std::vector<char> list(lst.size + 1, 0);
        fs.gread(ctx, lfd, 0, lst.size, list.data());
        fs.gclose(ctx, lfd);

        struct FileEntry { const char *path; uint64_t size; };
        struct WorkItem { uint32_t file; uint32_t seg; };
        std::vector<FileEntry> files;
        std::vector<WorkItem> items;
        char *save = nullptr;
        for (char *tok = gpuutil::gstrtok_r(list.data(), " \n", &save); tok;
             tok = gpuutil::gstrtok_r(nullptr, " \n", &save)) {
            char *size_tok = gpuutil::gstrtok_r(nullptr, " \n", &save);
            gpufs_assert(size_tok, "manifest missing size field");
            uint64_t size = 0;
            for (const char *p = size_tok; *p; ++p)
                size = size * 10 + uint64_t(*p - '0');
            uint32_t fidx = uint32_t(files.size());
            files.push_back({tok, size});
            uint32_t segs =
                uint32_t((size + kGrepSegment - 1) / kGrepSegment);
            for (uint32_t s = 0; s < std::max(segs, 1u); ++s)
                items.push_back({fidx, s});
        }

        // Sanity-check the on-disk dictionary against the functional
        // word set (the kernel's threads each own a dictionary slice).
        int dfd = fs.gopen(ctx, dict_path, G_RDONLY);
        if (dfd < 0)
            gpufs_fatal("dict gopen failed: %d", dfd);
        core::GStat dst;
        fs.gfstat(ctx, dfd, &dst);
        gpufs_assert(dst.size == uint64_t(dict.size()) * kDictRecord,
                     "dictionary file size mismatch");
        char rec[kDictRecord];
        uint32_t probe = ctx.blockId() % dict.size();
        fs.gread(ctx, dfd, uint64_t(probe) * kDictRecord, kDictRecord, rec);
        gpufs_assert(dict.word(probe) == rec, "dictionary record mismatch");
        fs.gclose(ctx, dfd);

        int ofd = fs.gopen(ctx, out_path, G_GWRONCE);
        if (ofd < 0)
            gpufs_fatal("output gopen failed: %d", ofd);

        std::vector<uint64_t> local(dict.size(), 0);
        std::vector<uint64_t> seg_counts;
        std::vector<char> text;
        std::string outbuf;
        outbuf.reserve(64 * KiB);
        char line[2 * kDictRecord + 64];

        auto flush = [&]() {
            if (outbuf.empty())
                return;
            uint64_t off = out_offset.fetch_add(outbuf.size());
            fs.gwrite(ctx, ofd, off, outbuf.size(), outbuf.data());
            outbuf.clear();
        };

        int fd = -1;
        uint32_t fd_file = UINT32_MAX;
        // Static interleaved partitioning. (The paper's kernel claims
        // files dynamically; with a virtual clock, dynamic claiming
        // would hand extra *modelled* work to whichever host thread
        // happens to run fastest, so the simulation partitions
        // statically — equivalent under uniform item sizes.)
        for (uint32_t i = ctx.blockId(); i < items.size();
             i += ctx.numBlocks()) {
            const WorkItem &item = items[i];
            const FileEntry &fe = files[item.file];
            if (fd_file != item.file) {
                if (fd >= 0)
                    fs.gclose(ctx, fd);
                fd = fs.gopen(ctx, fe.path, G_RDONLY);
                if (fd < 0)
                    gpufs_fatal("corpus gopen(%s) failed: %d", fe.path, fd);
                fd_file = item.file;
            }
            // Read the segment with one byte of left context (token-
            // continuation detection) and a word of right slack; count
            // only tokens starting inside the segment, so per-segment
            // counts sum exactly to the file totals.
            uint64_t seg_off = uint64_t(item.seg) * kGrepSegment;
            uint64_t seg_len = std::min(kGrepSegment, fe.size - seg_off);
            uint64_t read_off = seg_off == 0 ? 0 : seg_off - 1;
            uint64_t read_end =
                std::min(fe.size, seg_off + seg_len + kGrepSlack);
            text.resize(read_end - read_off);
            int64_t got = fs.gread(ctx, fd, read_off, text.size(),
                                   text.data());
            gpufs_assert(got == int64_t(text.size()), "corpus gread short");
            size_t lo = seg_off == 0 ? 0 : 1;
            countWordsRange(dict, text.data(), text.size(), lo,
                            lo + seg_len, seg_counts);

            // Charge the brute-force thread-per-word scan the paper's
            // kernel performs (each thread owns a dictionary slice).
            double byte_words = double(seg_len) * double(dict.size());
            ctx.charge(Time(byte_words * kGrepByteWordCostGpuThreadNs /
                            double(ctx.threadsPerBlock())));

            // Per-(word, segment) partial counts; consumers sum lines.
            for (uint32_t w = 0; w < dict.size(); ++w) {
                if (seg_counts[w] == 0)
                    continue;
                local[w] += seg_counts[w];
                size_t n = gpuutil::gsnprintf(
                    line, sizeof(line), "%s %s %llu\n",
                    dict.word(w).c_str(), fe.path,
                    static_cast<unsigned long long>(seg_counts[w]));
                outbuf.append(line, std::min(n, sizeof(line) - 1));
                if (outbuf.size() > 48 * KiB)
                    flush();
            }
        }
        if (fd >= 0)
            fs.gclose(ctx, fd);
        flush();
        fs.gfsync(ctx, ofd);
        fs.gclose(ctx, ofd);

        std::lock_guard<std::mutex> lock(merge_mtx);
        for (uint32_t w = 0; w < dict.size(); ++w)
            out.counts[w] += local[w];
    });
    out.elapsed = ks.elapsed();
    out.outputBytes = out_offset.load();
    return out;
}

MatvecGpuResult
gpuMatvec(GpuFs &fs, gpu::GpuDevice &dev, const MatrixSpec &spec,
          const std::string &out_path, unsigned num_blocks, unsigned threads)
{
    MatvecGpuResult res;
    res.rows = spec.rows;
    const uint64_t row_bytes = spec.rowBytes();
    std::atomic<uint64_t> checksum_bits{0};   // double accumulated via CAS
    auto add_checksum = [&](double v) {
        uint64_t cur = checksum_bits.load();
        for (;;) {
            double d;
            std::memcpy(&d, &cur, sizeof(d));
            d += v;
            uint64_t nv;
            std::memcpy(&nv, &d, sizeof(nv));
            if (checksum_bits.compare_exchange_weak(cur, nv))
                break;
        }
    };

    // Setup kernel: truncate the output from the GPU (§5.1.4: the
    // GPUfs version uses gftruncate; no CUDA host-side API calls).
    gpu::launch(dev, 1, threads, [&](BlockCtx &ctx) {
        int ofd = fs.gopen(ctx, out_path,
                           core::G_RDWR | core::G_CREAT);
        gpufs_assert(ofd >= 0, "output gopen failed");
        fs.gftruncate(ctx, ofd, 0);
        fs.gclose(ctx, ofd);
    });

    gpu::KernelStats ks = gpu::launch(dev, num_blocks, threads,
                                      [&](BlockCtx &ctx) {
        int mfd = fs.gopen(ctx, spec.matrixPath, G_RDONLY);
        int vfd = fs.gopen(ctx, spec.vectorPath, G_RDONLY);
        int ofd = fs.gopen(ctx, out_path, G_GWRONCE);
        gpufs_assert(mfd >= 0 && vfd >= 0 && ofd >= 0, "gopen failed");

        // Vector loaded once per block into block-local memory.
        std::vector<float> vec(spec.cols);
        int64_t n = fs.gread(ctx, vfd, 0, row_bytes, vec.data());
        gpufs_assert(n == int64_t(row_bytes), "vector gread short");

        const uint32_t batch = 8;
        std::vector<float> ybatch(batch);
        double local_sum = 0.0;
        // Static interleaved row batches (see gpuGrep on why the
        // simulation avoids real-time dynamic claiming).
        uint32_t n_batches = (spec.rows + batch - 1) / batch;
        for (uint32_t b = ctx.blockId(); b < n_batches;
             b += ctx.numBlocks()) {
            uint32_t r0 = b * batch;
            uint32_t r1 = std::min(spec.rows, r0 + batch);
            for (uint32_t r = r0; r < r1; ++r) {
                // gmmap the row piecewise: zero-copy access into the
                // buffer cache (the paper's kernel uses gmmap).
                double sum = 0.0;
                uint64_t off = uint64_t(r) * row_bytes;
                uint64_t left = row_bytes;
                uint32_t col = 0;
                while (left > 0) {
                    uint64_t mapped = 0;
                    void *p = fs.gmmap(ctx, mfd, off, left, &mapped);
                    gpufs_assert(p && mapped % sizeof(float) == 0,
                                 "gmmap failed");
                    const auto *vals = static_cast<const float *>(p);
                    uint32_t cnt = uint32_t(mapped / sizeof(float));
                    for (uint32_t c = 0; c < cnt; ++c)
                        sum += double(vals[c]) * double(vec[col + c]);
                    fs.gmunmap(ctx, p);
                    ctx.chargeGpuMem(mapped);
                    off += mapped;
                    left -= mapped;
                    col += cnt;
                }
                // 2 flops per element at the calibrated GPU rate.
                ctx.charge(Time(2.0 * spec.cols /
                                (kMatvecGpuGFlops * 1e9) * 1e9));
                ybatch[r - r0] = float(sum);
                local_sum += sum;
            }
            fs.gwrite(ctx, ofd, uint64_t(r0) * sizeof(float),
                      (r1 - r0) * sizeof(float), ybatch.data());
        }
        add_checksum(local_sum);
        fs.gfsync(ctx, ofd);
        fs.gclose(ctx, ofd);
        fs.gclose(ctx, vfd);
        fs.gclose(ctx, mfd);
    });
    res.elapsed = ks.elapsed();
    uint64_t bits = checksum_bits.load();
    std::memcpy(&res.checksum, &bits, sizeof(res.checksum));
    return res;
}

} // namespace workloads
} // namespace gpufs
