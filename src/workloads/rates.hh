/**
 * @file
 * Calibrated compute rates for the application workloads (§5.2).
 *
 * The simulator reproduces *system* behaviour (caching, RPC, paging,
 * transfer overlap) structurally, but the raw arithmetic speed of a
 * TESLA C2075 threadblock or a Xeon L5630 core is a hardware fact we
 * cannot re-derive on a different machine; those enter as per-workload
 * charge rates, calibrated once from the paper's own numbers and
 * documented here. EXPERIMENTS.md carries the full derivations.
 */

#ifndef GPUFS_WORKLOADS_RATES_HH
#define GPUFS_WORKLOADS_RATES_HH

#include "base/units.hh"

namespace gpufs {
namespace workloads {

/**
 * Image matching (§5.2.1). The kernel compares query images to database
 * images (4K-element float vectors, Euclidean distance with early
 * exit). We charge a fixed cost per query-image pair examined.
 *
 * GPU: the no-match run scans all pairs: 2,016 queries x 72,960 db
 * images = 147.1M pairs in 53 s on one GPU with 28 resident blocks
 * => 53 s * 28 / 147.1M = ~10.1 us per pair per block *including* the
 * buffer-cache access and data-movement costs folded into every pair.
 * Our kernel charges those system costs explicitly (gread hits, page
 * maps, PCIe), so the pure-compute residual per pair is lower; 5.5 us
 * reproduces the paper's CPU:GPU ratio of ~2.2x once system charges
 * are added back by the simulator.
 * CPU: 119 s on 8 cores => 119 * 8 / 147.1M = ~6.5 us per pair per core
 * (a Xeon core is faster than one GPU threadblock's slice; the GPU wins
 * on block parallelism, matching the paper's 18 vs 9 GFLOP/s).
 */
constexpr Time kImagePairCostGpuBlock = 5500;    // ns per pair per block
constexpr Time kImagePairCostCpuCore = 6500;     // ns per pair per core

/**
 * Exact string match, "grep -w" (§5.2.2). Every GPU thread scans file
 * text for its share of the 58,000-word dictionary; the charge is per
 * (text byte x dictionary word) per thread.
 *
 * GPU: Linux source = 524 MB, 53 min on 28 blocks x 512 threads
 * => 3,180 s * 28 * 512 / (524e6 * 58,000) = ~1,500 ns
 * (Shakespeare cross-checks: 6 MB in 40 s => ~1,650 ns). A single GPU
 * thread is ~250x slower than a Xeon core on this byte-at-a-time,
 * branchy scan; the GPU wins only through its 14,336-thread residency,
 * netting the paper's ~7x.
 * CPU: 6.07 h on 8 cores => 21,852 s * 8 / (524e6 * 58,000) = ~5.8 ns
 * (Shakespeare: 292 s => ~6.7 ns; we use 6.0 ns).
 */
constexpr double kGrepByteWordCostGpuThreadNs = 1500.0;
constexpr double kGrepByteWordCostCpuCoreNs = 6.0;

/**
 * Matrix-vector product (§5.1.4): 2 flops per element, entirely
 * PCIe-bound on the paper's hardware. Effective in-kernel rate for a
 * C2075 streaming from GDDR5 (bandwidth-limited: 144 GB/s / 4 B per
 * element ~= 36 Gelem/s => ~72 GFLOP/s effective).
 */
constexpr double kMatvecGpuGFlops = 72.0;

/** Number of CPU cores in the paper's baselines ("CPUx8"). */
constexpr unsigned kCpuCores = 8;

} // namespace workloads
} // namespace gpufs

#endif // GPUFS_WORKLOADS_RATES_HH
