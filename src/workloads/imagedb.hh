/**
 * @file
 * Image-database workload (§5.2.1): approximate image matching.
 *
 * "The input is a set of query images and several image databases
 * containing many small images. The goal is to find which databases
 * contain images matching the query images ... the databases must be
 * scanned in a predefined order and only the first match output."
 * Images are 4K-element float vectors; the paper's inputs are randomly
 * generated with query images injected at random database locations.
 *
 * Databases are procedural (seeded) so multi-GB inputs cost no RAM:
 * element e of database image i is a hash of (seed, i, e), except
 * planted images, which reproduce a query image exactly.
 */

#ifndef GPUFS_WORKLOADS_IMAGEDB_HH
#define GPUFS_WORKLOADS_IMAGEDB_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "consistency/wrapfs.hh"
#include "hostfs/content.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace workloads {

/** Geometry of one image database file. */
struct ImageDbSpec {
    std::string path;
    uint64_t seed;
    uint32_t numImages;
    uint32_t dim = 4096;            ///< elements per image (paper: 4K)
    /** db image index -> query index planted there. */
    std::map<uint32_t, uint32_t> planted;

    uint64_t imageBytes() const { return uint64_t(dim) * sizeof(float); }
    uint64_t fileBytes() const { return uint64_t(numImages) * imageBytes(); }
};

/** Deterministic value of element @p e of query image @p q. */
float queryElement(uint64_t query_seed, uint32_t q, uint32_t e);

/** Materialize a full query image. */
std::vector<float> queryImage(uint64_t query_seed, uint32_t q, uint32_t dim);

/** Deterministic value of element @p e of db image @p i (pre-planting). */
float dbElement(uint64_t db_seed, uint32_t i, uint32_t e);

/** Install @p spec as a synthetic file in @p fs. */
void addImageDb(hostfs::HostFs &fs, const ImageDbSpec &spec,
                uint64_t query_seed);

/**
 * Squared Euclidean distance with early exit at @p threshold: returns
 * as soon as the partial sum exceeds it (the result is then >=
 * threshold, sufficient for match/no-match). *elems_examined reports
 * how far the scan got (feeds the compute charge model).
 */
double distanceSq(const float *a, const float *b, uint32_t dim,
                  double threshold, uint32_t *elems_examined);

/** A query's first match: database index + image index, or none. */
struct MatchResult {
    int db = -1;
    uint32_t image = 0;
    bool found() const { return db >= 0; }
};

/**
 * CPU baseline (the paper's OpenMP version): 8 cores statically
 * partition the query set; databases are read once per sweep through
 * the host FS and scanned in priority order.
 * @param virt_elapsed out: modelled wall time of the 8-core run.
 */
std::vector<MatchResult>
cpuImageSearch(consistency::WrapFs &fs,
               const std::vector<ImageDbSpec> &dbs, uint64_t query_seed,
               uint32_t num_queries, double threshold,
               Time *virt_elapsed);

/**
 * Build the paper's three databases (383, 357, 400 MB) scaled by
 * @p scale (1 = full size), optionally planting every query at a
 * random location (exact-match input).
 */
std::vector<ImageDbSpec>
makePaperDbs(uint64_t seed, uint32_t num_queries, bool plant_queries,
             double scale = 1.0);

} // namespace workloads
} // namespace gpufs

#endif // GPUFS_WORKLOADS_IMAGEDB_HH
