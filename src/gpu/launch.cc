#include "gpu/launch.hh"

#include <atomic>
#include <thread>

#include "base/logging.hh"

namespace gpufs {
namespace gpu {

BlockCtx::BlockCtx(GpuDevice &device, unsigned block_id, unsigned num_blocks,
                   unsigned threads, Time start_time, uint64_t shared_bytes)
    : dev(device), blockId_(block_id), numBlocks_(num_blocks),
      threads_(threads), clock(start_time), shared(shared_bytes),
      rng_(hashCombine(device.id(), block_id))
{
}

void
BlockCtx::chargeGpuMem(uint64_t bytes)
{
    clock += transferTime(bytes, dev.simContext().params.gpuMemBwMBps);
}

void
BlockCtx::threadFence()
{
    // Functional: make this block's stores visible to DMA (the host
    // daemon thread). Timing: a __threadfence is tens of cycles; charge
    // a token amount so fences are visible in fine-grained traces.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    clock += 100;   // 100 ns
}

KernelStats
launch(GpuDevice &dev, unsigned num_blocks, unsigned threads_per_block,
       const KernelFn &body, Time ready, uint64_t shared_bytes)
{
    gpufs_assert(num_blocks > 0, "empty grid");
    auto &params = dev.simContext().params;
    const Time launch_time =
        std::max(ready, dev.lastIdle()) + params.kernelLaunchLat;

    // One worker per MP slot: the real concurrency seen by GPUfs's data
    // structures equals the modelled block residency.
    unsigned workers = std::min(num_blocks, params.waveSlots());

    std::atomic<unsigned> next_block{0};
    std::atomic<Time> kernel_end{launch_time};
    std::atomic<unsigned> blocks_run{0};

    auto worker = [&]() {
        for (;;) {
            unsigned b = next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= num_blocks)
                break;
            sim::Grant slot = dev.mpSlots().acquire(launch_time);
            BlockCtx ctx(dev, b, num_blocks, threads_per_block, slot.start,
                         shared_bytes);
            body(ctx);
            dev.mpSlots().release(slot, ctx.now());
            Time cur = kernel_end.load();
            while (cur < ctx.now() &&
                   !kernel_end.compare_exchange_weak(cur, ctx.now())) {
            }
            blocks_run.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 1; i < workers; ++i)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();

    dev.advanceIdle(kernel_end.load());
    return {launch_time, kernel_end.load(), blocks_run.load()};
}

} // namespace gpu
} // namespace gpufs
