/**
 * @file
 * The simulated discrete GPU.
 *
 * A GpuDevice models one PCIe-attached TESLA C2075: its multiprocessor
 * ("MP") slots, its full-duplex PCIe link, and a device-memory budget.
 * Functional GPU memory is plain host heap (the simulator runs on the
 * CPU); the budget accounting preserves the paper's "6 GB of GDDR5"
 * constraint so experiments that size the buffer cache against device
 * memory behave faithfully.
 */

#ifndef GPUFS_GPU_DEVICE_HH
#define GPUFS_GPU_DEVICE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "base/logging.hh"
#include "base/units.hh"
#include "sim/context.hh"
#include "sim/resource.hh"

namespace gpufs {
namespace gpu {

class GpuDevice
{
  public:
    /**
     * @param sim_ctx shared machine context (host resources, params)
     * @param device_id index of this GPU in the system
     * @param mem_bytes device memory capacity (C2075: 6 GB)
     */
    GpuDevice(sim::SimContext &sim_ctx, unsigned device_id,
              uint64_t mem_bytes = 6 * GiB);

    GpuDevice(const GpuDevice &) = delete;
    GpuDevice &operator=(const GpuDevice &) = delete;

    unsigned id() const { return id_; }
    sim::SimContext &simContext() { return sim; }

    /** Host-to-device PCIe direction (DMA timeline). */
    sim::Resource &pcieH2D() { return pcieH2D_; }
    /** Device-to-host PCIe direction. */
    sim::Resource &pcieD2H() { return pcieD2H_; }
    /** Multiprocessor residency slots (mpCount * blocksPerMp servers). */
    sim::MultiResource &mpSlots() { return mpSlots_; }

    /** Account a device-memory allocation. Fatal if over capacity:
     *  a real cudaMalloc beyond GDDR5 capacity fails at once. */
    void allocDeviceMem(uint64_t bytes);
    void freeDeviceMem(uint64_t bytes);
    uint64_t deviceMemUsed() const { return memUsed.load(); }
    uint64_t deviceMemCapacity() const { return memCapacity; }

    /** Virtual time at which the device last became idle. */
    Time lastIdle() const { return lastIdle_.load(); }
    void advanceIdle(Time t) { lastIdleMax(t); }

    /** Reset virtual-time state between benchmark phases. */
    void resetTime();

  private:
    sim::SimContext &sim;
    unsigned id_;
    uint64_t memCapacity;
    std::atomic<uint64_t> memUsed;
    sim::Resource pcieH2D_;
    sim::Resource pcieD2H_;
    sim::MultiResource mpSlots_;
    std::atomic<Time> lastIdle_;

    void lastIdleMax(Time t);
};

} // namespace gpu
} // namespace gpufs

#endif // GPUFS_GPU_DEVICE_HH
