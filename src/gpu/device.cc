#include "gpu/device.hh"

namespace gpufs {
namespace gpu {

GpuDevice::GpuDevice(sim::SimContext &sim_ctx, unsigned device_id,
                     uint64_t mem_bytes)
    : sim(sim_ctx), id_(device_id), memCapacity(mem_bytes), memUsed(0),
      pcieH2D_("gpu" + std::to_string(device_id) + ".pcie_h2d"),
      pcieD2H_("gpu" + std::to_string(device_id) + ".pcie_d2h"),
      mpSlots_("gpu" + std::to_string(device_id) + ".mp_slots",
               sim_ctx.params.waveSlots()),
      lastIdle_(0)
{
}

void
GpuDevice::allocDeviceMem(uint64_t bytes)
{
    uint64_t used = memUsed.fetch_add(bytes) + bytes;
    if (used > memCapacity) {
        gpufs_fatal("GPU %u out of device memory: %llu of %llu bytes", id_,
                    static_cast<unsigned long long>(used),
                    static_cast<unsigned long long>(memCapacity));
    }
}

void
GpuDevice::freeDeviceMem(uint64_t bytes)
{
    uint64_t prev = memUsed.fetch_sub(bytes);
    gpufs_assert(prev >= bytes, "device memory free underflow");
}

void
GpuDevice::lastIdleMax(Time t)
{
    Time cur = lastIdle_.load();
    while (cur < t && !lastIdle_.compare_exchange_weak(cur, t)) {
    }
}

void
GpuDevice::resetTime()
{
    pcieH2D_.reset();
    pcieD2H_.reset();
    mpSlots_.reset();
    lastIdle_.store(0);
}

} // namespace gpu
} // namespace gpufs
