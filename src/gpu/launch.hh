/**
 * @file
 * Kernel launch: the threadblock execution model.
 *
 * A "kernel" is a grid of threadblocks pulled from a single hardware
 * queue by the multiprocessors (§2). Two properties of that model shape
 * GPUfs and are reproduced exactly:
 *
 *  - blocks are dispatched in nondeterministic order, driven only by
 *    utilization (here: OS worker threads race on an atomic ticket);
 *  - blocks run to completion without preemption (a worker never
 *    switches blocks mid-body).
 *
 * Each block carries a *virtual clock*: it starts when an MP slot frees
 * (wave scheduling via MultiResource::acquire) and advances as the body
 * charges compute and waits on RPC completions. The kernel's virtual
 * span is [launch, max over blocks of block end].
 */

#ifndef GPUFS_GPU_LAUNCH_HH
#define GPUFS_GPU_LAUNCH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "gpu/device.hh"

namespace gpufs {
namespace gpu {

/**
 * Per-threadblock execution context handed to the kernel body.
 * GPUfs API calls take a BlockCtx because the prototype invokes the
 * API at threadblock granularity (§4): one logical call per block.
 */
class BlockCtx
{
  public:
    BlockCtx(GpuDevice &device, unsigned block_id, unsigned num_blocks,
             unsigned threads, Time start_time, uint64_t shared_bytes);

    GpuDevice &device() { return dev; }
    unsigned blockId() const { return blockId_; }
    unsigned numBlocks() const { return numBlocks_; }
    unsigned threadsPerBlock() const { return threads_; }

    /** The block's virtual clock. */
    Time now() const { return clock; }
    /** Advance the clock by a compute/overhead charge. */
    void charge(Time dur) { clock += dur; }
    /** Jump the clock forward to an external completion time. */
    void waitUntil(Time t) { clock = std::max(clock, t); }

    /** Charge moving @p bytes through GPU local memory (GDDR5 rate). */
    void chargeGpuMem(uint64_t bytes);

    /**
     * Per-block scratchpad ("shared memory" in CUDA terms), sized at
     * launch. The paper's greads land in this on-die buffer.
     */
    uint8_t *sharedMem() { return shared.data(); }
    uint64_t sharedMemBytes() const { return shared.size(); }

    /** Threadblock-wide memory fence (gwrite issues one, §4.1). */
    void threadFence();

    /** Deterministic per-block RNG for workload kernels. */
    SplitMix64 &rng() { return rng_; }

  private:
    GpuDevice &dev;
    unsigned blockId_;
    unsigned numBlocks_;
    unsigned threads_;
    Time clock;
    std::vector<uint8_t> shared;
    SplitMix64 rng_;
};

/** Virtual-time result of one kernel launch. */
struct KernelStats {
    Time start;           ///< launch time (after launch latency)
    Time end;             ///< max block completion
    Time elapsed() const { return end - start; }
    unsigned blocksRun;
};

/** Kernel body: runs once per threadblock. */
using KernelFn = std::function<void(BlockCtx &)>;

/**
 * Launch a kernel of @p num_blocks threadblocks of @p threads_per_block
 * threads on @p dev, starting no earlier than @p ready (virtual time).
 * Blocks execute on real worker threads (at most one per MP slot, so
 * functional concurrency matches modelled residency). Blocking call.
 */
KernelStats launch(GpuDevice &dev, unsigned num_blocks,
                   unsigned threads_per_block, const KernelFn &body,
                   Time ready = 0, uint64_t shared_bytes = 48 * KiB);

} // namespace gpu
} // namespace gpufs

#endif // GPUFS_GPU_LAUNCH_HH
