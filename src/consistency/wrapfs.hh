/**
 * @file
 * WrapFs: the stackable pass-through layer CPU programs go through.
 *
 * The paper runs unmodified CPU programs over a WRAPFS mount that
 * interposes on open/close/write to keep the GPUfs consistency protocol
 * informed (§4.4). Here the interposition is a thin wrapper class:
 * CPU-side workload code opens files through WrapFs, which forwards to
 * HostFs and notifies ConsistencyMgr, exactly as the kernel module
 * would. (The daemon performs the same notifications for GPU opens.)
 */

#ifndef GPUFS_CONSISTENCY_WRAPFS_HH
#define GPUFS_CONSISTENCY_WRAPFS_HH

#include <mutex>
#include <string>
#include <unordered_map>

#include "consistency/consistency.hh"
#include "hostfs/hostfs.hh"

namespace gpufs {
namespace consistency {

class WrapFs
{
  public:
    WrapFs(hostfs::HostFs &host_fs, ConsistencyMgr &mgr)
        : fs(host_fs), consistency(mgr) {}

    /** Interposed open: admission-checked against GPU writers. */
    int open(const std::string &path, uint32_t flags,
             Status *st = nullptr);

    /** Interposed close: releases the consistency claim. */
    Status close(int fd);

    /** Pass-throughs (no interposition needed for data plane). */
    hostfs::IoResult
    pread(int fd, uint8_t *dst, uint64_t len, uint64_t offset,
          Time ready = 0)
    {
        return fs.pread(fd, dst, len, offset, ready, nullptr);
    }

    hostfs::IoResult
    pwrite(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
           Time ready = 0)
    {
        return fs.pwrite(fd, src, len, offset, ready, nullptr);
    }

    hostfs::HostFs &hostFs() { return fs; }

  private:
    hostfs::HostFs &fs;
    ConsistencyMgr &consistency;
    std::mutex mtx;
    struct Claim { uint64_t ino; bool write; };
    std::unordered_map<int, Claim> claims;
};

} // namespace consistency
} // namespace gpufs

#endif // GPUFS_CONSISTENCY_WRAPFS_HH
