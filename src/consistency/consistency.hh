/**
 * @file
 * Host-side file consistency layer (the paper's modified-WRAPFS kernel
 * module, §4.4).
 *
 * Implements the locality-optimized weak consistency model of §3.1:
 *  - any number of concurrent readers, each working on its own locally
 *    cached copy;
 *  - at most one writer at a time (the prototype "does not yet implement
 *    the diff-and-merge protocol ... and thus currently supports only
 *    one writer at a time") — except O_GWRONCE writers, whose disjoint
 *    write-once updates merge by diff-against-zeros and may coexist;
 *  - invalidation is lazy: nothing is pushed to a GPU holding a stale
 *    cached copy; the staleness is detected when that GPU reopens the
 *    file and compares version numbers.
 */

#ifndef GPUFS_CONSISTENCY_CONSISTENCY_HH
#define GPUFS_CONSISTENCY_CONSISTENCY_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "base/stats.hh"
#include "base/status.hh"

namespace gpufs {
namespace consistency {

/** Device id used for host (CPU) processes interposed via WrapFs. */
constexpr unsigned kCpuDevice = 0xFFFFFFFFu;

class ConsistencyMgr
{
  public:
    ConsistencyMgr() : stats_("consistency"),
                       staleInvalidations(stats_.counter("stale_invalidations")),
                       writeConflicts(stats_.counter("write_conflicts")) {}

    /**
     * Admission check when device @p device opens inode @p ino.
     * @param write    true for any write-capable open
     * @param mergeable true when this writer merges (O_GWRONCE diff-against-zeros, or the diff-and-merge protocol)
     * @return Busy on a write-sharing conflict the prototype cannot
     *         merge; Ok otherwise.
     */
    Status acquireOpen(unsigned device, uint64_t ino, bool write,
                       bool mergeable);

    /** Balance a successful acquireOpen. */
    void releaseOpen(unsigned device, uint64_t ino, bool write);

    /**
     * Lazy invalidation check: should a device that cached @p ino at
     * @p cached_version drop that cache, given the current @p version?
     */
    bool
    mustInvalidate(uint64_t cached_version, uint64_t version)
    {
        if (cached_version == version)
            return false;
        staleInvalidations.inc();
        return true;
    }

    /** Forget all state for @p ino (unlink). */
    void dropFile(uint64_t ino);

    /** Number of devices currently holding @p ino open for write. */
    unsigned writerCount(uint64_t ino) const;

    StatSet &stats() { return stats_; }

  private:
    struct FileState {
        // Writers currently admitted, and whether they are all GWRONCE
        // (only mergeable writers may coexist).
        std::unordered_map<unsigned, unsigned> writers;  // device -> count
        bool writersMergeable = true;
        std::unordered_map<unsigned, unsigned> readers;
    };

    mutable std::mutex mtx;
    std::unordered_map<uint64_t, FileState> files;
    StatSet stats_;
    Counter &staleInvalidations;
    Counter &writeConflicts;
};

} // namespace consistency
} // namespace gpufs

#endif // GPUFS_CONSISTENCY_CONSISTENCY_HH
