#include "consistency/consistency.hh"

#include "base/logging.hh"

namespace gpufs {
namespace consistency {

Status
ConsistencyMgr::acquireOpen(unsigned device, uint64_t ino, bool write,
                            bool mergeable)
{
    std::lock_guard<std::mutex> lock(mtx);
    FileState &fs = files[ino];
    if (write) {
        bool other_writer = false;
        for (const auto &kv : fs.writers) {
            if (kv.first != device && kv.second > 0)
                other_writer = true;
        }
        if (other_writer && !(mergeable && fs.writersMergeable)) {
            writeConflicts.inc();
            return Status::Busy;
        }
        fs.writers[device]++;
        fs.writersMergeable = fs.writersMergeable && mergeable;
    } else {
        fs.readers[device]++;
    }
    return Status::Ok;
}

void
ConsistencyMgr::releaseOpen(unsigned device, uint64_t ino, bool write)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = files.find(ino);
    if (it == files.end())
        return;
    FileState &fs = it->second;
    auto &map = write ? fs.writers : fs.readers;
    auto dit = map.find(device);
    gpufs_assert(dit != map.end() && dit->second > 0,
                 "unbalanced consistency release");
    if (--dit->second == 0)
        map.erase(dit);
    if (fs.writers.empty()) {
        fs.writersMergeable = true;   // reset merge class for next writers
        if (fs.readers.empty())
            files.erase(it);
    }
}

void
ConsistencyMgr::dropFile(uint64_t ino)
{
    std::lock_guard<std::mutex> lock(mtx);
    files.erase(ino);
}

unsigned
ConsistencyMgr::writerCount(uint64_t ino) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = files.find(ino);
    if (it == files.end())
        return 0;
    unsigned n = 0;
    for (const auto &kv : it->second.writers)
        n += kv.second > 0 ? 1 : 0;
    return n;
}

} // namespace consistency
} // namespace gpufs
