#include "consistency/wrapfs.hh"

namespace gpufs {
namespace consistency {

int
WrapFs::open(const std::string &path, uint32_t flags, Status *st)
{
    Status local;
    int fd = fs.open(path, flags, &local);
    if (fd < 0) {
        if (st)
            *st = local;
        return fd;
    }
    hostfs::FileInfo info;
    fs.fstat(fd, &info);
    bool write = (flags & hostfs::O_ACCMODE_F) != hostfs::O_RDONLY_F;
    Status adm = consistency.acquireOpen(kCpuDevice, info.ino, write, false);
    if (!ok(adm)) {
        fs.close(fd);
        if (st)
            *st = adm;
        return -1;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        claims[fd] = {info.ino, write};
    }
    if (st)
        *st = Status::Ok;
    return fd;
}

Status
WrapFs::close(int fd)
{
    Claim claim;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = claims.find(fd);
        if (it == claims.end())
            return Status::BadFd;
        claim = it->second;
        claims.erase(it);
    }
    consistency.releaseOpen(kCpuDevice, claim.ino, claim.write);
    return fs.close(fd);
}

} // namespace consistency
} // namespace gpufs
