/**
 * @file
 * Storage-backend selector (kept dependency-free so GpuFsParams can
 * carry it without dragging the hostfs/sim headers into every GPU-side
 * translation unit).
 */

#ifndef GPUFS_STORAGE_KIND_HH
#define GPUFS_STORAGE_KIND_HH

#include <cstdint>

namespace gpufs {
namespace storage {

/**
 * How the daemon's miss/write-back path reaches storage.
 *
 *  - Buffered:    host pread/pwrite through the OS page cache, then a
 *                 bounce-buffer DMA — the paper's only shape, and the
 *                 byte-identical default.
 *  - Direct:      O_DIRECT — skips the host page cache, pays sector
 *                 alignment and true device latency/bandwidth on every
 *                 access; the honest baseline once working sets exceed
 *                 host RAM.
 *  - Gds:         GPUDirect-style zero-copy — storage DMAs straight
 *                 into the frame arena on a per-GPU DMA engine; no
 *                 host bounce, no separate H2D hop.
 *  - RemoteFlash: NVMe-oF remote all-flash tier — every command pays
 *                 fabric RTT + link bandwidth under a bounded queue
 *                 depth, but the media is flash, not the local spindle.
 */
enum class BackendKind : uint8_t {
    Buffered,
    Direct,
    Gds,
    RemoteFlash,
};

/** Stable lowercase name ("buffered", "direct", "gds", "remote"). */
const char *backendName(BackendKind kind);

/** Parse a backendName() string (also accepts "remoteflash").
 *  @return false when @p s names no backend. */
bool parseBackendKind(const char *s, BackendKind *out);

} // namespace storage
} // namespace gpufs

#endif // GPUFS_STORAGE_KIND_HH
