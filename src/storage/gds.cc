/**
 * @file
 * GdsBackend: GPUDirect-style zero-copy storage access.
 *
 * Modeled on the gds-nvidia-fs pattern (SNIPPETS.md): the driver pins
 * GPU memory and the storage device DMAs into it directly, so there is
 * no host bounce buffer and no separate H2D hop — directToGpu() makes
 * the daemon skip its PCIe charge entirely. The transfer is a
 * STREAMING pipeline: the device read (O_DIRECT alignment and rates,
 * same media as DirectBackend) and the per-GPU storage-DMA engine run
 * concurrently from the submit point, and the access completes when
 * the slower of the two finishes — versus Direct's store-and-forward
 * (device read, THEN a full H2D pass over the same bytes). That one
 * eliminated pass is the whole win.
 */

#include "storage/backend.hh"

#include <algorithm>

namespace gpufs {
namespace storage {

namespace {

class GdsBackend : public StorageBackend
{
  public:
    GdsBackend(hostfs::HostFs &host_fs, StatSet &stats)
        : StorageBackend(host_fs, stats),
          dmas_(stats.counter("gds_dmas"))
    {
    }

    BackendKind kind() const override { return BackendKind::Gds; }
    bool directToGpu() const override { return true; }

    hostfs::IoResult
    read(int fd, uint8_t *dst, uint64_t len, uint64_t offset, Time ready,
         unsigned gpu) override
    {
        auto r = fs.preadUncached(fd, dst, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        r.done = chargeStreamed(offset, r.bytes, 1, ready, gpu,
                                /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readPages(int fd, uint8_t *const *dsts, unsigned n_pages,
              uint64_t page_len, uint64_t offset, Time ready,
              unsigned gpu) override
    {
        auto r = fs.preadPagesUncached(fd, dsts, n_pages, page_len, offset,
                                       ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        r.done = chargeStreamed(offset, r.bytes, 1, ready, gpu,
                                /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readRuns(int fd, hostfs::ReadRun *runs, unsigned n, Time ready,
             unsigned gpu) override
    {
        auto r = fs.preadRunsUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        uint64_t aligned = 0;
        unsigned extents = 0;
        const uint64_t align = fs.simContext().params.directAlignBytes;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].bytes == 0)
                continue;
            aligned += alignedSpan(runs[i].offset, runs[i].bytes, align);
            ++extents;
        }
        r.done = chargeAlignedStreamed(aligned, r.bytes, extents, ready,
                                       gpu, /*write=*/false);
        return r;
    }

    hostfs::IoResult
    write(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
          Time ready, unsigned gpu) override
    {
        auto r = fs.pwriteUncached(fd, src, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        r.done = chargeStreamed(offset, r.bytes, 1, ready, gpu,
                                /*write=*/true);
        return r;
    }

    hostfs::IoResult
    writev(int fd, const hostfs::WriteRun *runs, unsigned n, Time ready,
           unsigned gpu) override
    {
        auto r = fs.pwritevUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        uint64_t aligned = 0;
        unsigned extents = 0;
        const uint64_t align = fs.simContext().params.directAlignBytes;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].len == 0)
                continue;
            aligned += alignedSpan(runs[i].offset, runs[i].len, align);
            ++extents;
        }
        r.done = chargeAlignedStreamed(aligned, r.bytes, extents, ready,
                                       gpu, /*write=*/true);
        return r;
    }

    hostfs::IoResult
    sync(int fd, Time ready, unsigned) override
    {
        countSync();
        auto r = fs.fsyncUncached(fd, ready);
        if (!ok(r.status))
            return r;
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (!p.chargeHostIo)
            return r;
        Time t = sim.cpuIo.reserve(ready, p.preadOverhead).end;
        r.done = sim.disk.reserve(t, p.directAccessLat).end;
        return r;
    }

  private:
    Time
    chargeStreamed(uint64_t offset, uint64_t bytes, unsigned extents,
                   Time ready, unsigned gpu, bool write)
    {
        uint64_t aligned = alignedSpan(
            offset, bytes, fs.simContext().params.directAlignBytes);
        return chargeAlignedStreamed(aligned, bytes, extents, ready, gpu,
                                     write);
    }

    /** Submit ioctl on cpuIo, then device and DMA engine CONCURRENTLY
     *  (the read streams through the engine as sectors arrive): done
     *  when the slower reservation ends. */
    Time
    chargeAlignedStreamed(uint64_t aligned, uint64_t bytes,
                          unsigned extents, Time ready, unsigned gpu,
                          bool write)
    {
        dmas_.inc();
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (aligned == 0 || !p.chargeHostIo)
            return ready;
        Time t = sim.cpuIo.reserve(ready, p.preadOverhead).end;
        Time dev_dur = Time(extents) * p.directAccessLat
            + transferTime(aligned,
                           write ? p.directWriteMBps : p.directReadMBps);
        Time dev_end = sim.disk.reserve(t, dev_dur).end;
        Time dma_dur =
            p.gdsDmaSetup + transferTime(bytes, p.gdsDmaBwMBps);
        Time dma_end = sim.storageDma(gpu).reserve(t, dma_dur).end;
        return std::max(dev_end, dma_end);
    }

    Counter &dmas_;
};

} // namespace

std::unique_ptr<StorageBackend>
makeGdsBackend(hostfs::HostFs &fs, StatSet &stats)
{
    return std::make_unique<GdsBackend>(fs, stats);
}

} // namespace storage
} // namespace gpufs
