#include "storage/backend.hh"

#include <cstring>

#include "base/logging.hh"

namespace gpufs {
namespace storage {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Buffered:
        return "buffered";
      case BackendKind::Direct:
        return "direct";
      case BackendKind::Gds:
        return "gds";
      case BackendKind::RemoteFlash:
        return "remote";
    }
    return "?";
}

bool
parseBackendKind(const char *s, BackendKind *out)
{
    if (std::strcmp(s, "buffered") == 0)
        *out = BackendKind::Buffered;
    else if (std::strcmp(s, "direct") == 0)
        *out = BackendKind::Direct;
    else if (std::strcmp(s, "gds") == 0)
        *out = BackendKind::Gds;
    else if (std::strcmp(s, "remote") == 0 ||
             std::strcmp(s, "remoteflash") == 0)
        *out = BackendKind::RemoteFlash;
    else
        return false;
    return true;
}

StorageBackend::StorageBackend(hostfs::HostFs &host_fs, StatSet &stats)
    : fs(host_fs),
      reads_(stats.counter("storage_reads")),
      readBytes_(stats.counter("storage_read_bytes")),
      writes_(stats.counter("storage_writes")),
      writeBytes_(stats.counter("storage_write_bytes")),
      syncs_(stats.counter("storage_syncs"))
{
}

StorageBackend::~StorageBackend() = default;

void
StorageBackend::countRead(uint64_t bytes)
{
    reads_.inc();
    readBytes_.inc(bytes);
}

void
StorageBackend::countWrite(uint64_t bytes)
{
    writes_.inc();
    writeBytes_.inc(bytes);
}

void
StorageBackend::countSync()
{
    syncs_.inc();
}

namespace {

/**
 * The paper's only shape, unchanged: every call delegates to the
 * charged HostFs method on the daemon's serialized cpuIo path, so a
 * Buffered run is byte-identical to the pre-backend daemon (the
 * benchsmoke identity gate in bench/ablate_backend holds it to exact
 * virtual-span equality).
 */
class BufferedBackend : public StorageBackend
{
  public:
    using StorageBackend::StorageBackend;

    BackendKind kind() const override { return BackendKind::Buffered; }

    hostfs::IoResult
    read(int fd, uint8_t *dst, uint64_t len, uint64_t offset, Time ready,
         unsigned) override
    {
        auto r = fs.pread(fd, dst, len, offset, ready,
                          &fs.simContext().cpuIo);
        if (ok(r.status))
            countRead(r.bytes);
        return r;
    }

    hostfs::IoResult
    readPages(int fd, uint8_t *const *dsts, unsigned n_pages,
              uint64_t page_len, uint64_t offset, Time ready,
              unsigned) override
    {
        auto r = fs.preadPages(fd, dsts, n_pages, page_len, offset, ready,
                               &fs.simContext().cpuIo);
        if (ok(r.status))
            countRead(r.bytes);
        return r;
    }

    hostfs::IoResult
    readRuns(int fd, hostfs::ReadRun *runs, unsigned n, Time ready,
             unsigned) override
    {
        auto r = fs.preadRuns(fd, runs, n, ready, &fs.simContext().cpuIo);
        if (ok(r.status))
            countRead(r.bytes);
        return r;
    }

    hostfs::IoResult
    write(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
          Time ready, unsigned) override
    {
        auto r = fs.pwrite(fd, src, len, offset, ready,
                           &fs.simContext().cpuIo);
        if (ok(r.status))
            countWrite(r.bytes);
        return r;
    }

    hostfs::IoResult
    writev(int fd, const hostfs::WriteRun *runs, unsigned n, Time ready,
           unsigned) override
    {
        auto r = fs.pwritev(fd, runs, n, ready, &fs.simContext().cpuIo);
        if (ok(r.status))
            countWrite(r.bytes);
        return r;
    }

    hostfs::IoResult
    sync(int fd, Time ready, unsigned) override
    {
        countSync();
        return fs.fsync(fd, ready);
    }
};

} // namespace

std::unique_ptr<StorageBackend>
makeBufferedBackend(hostfs::HostFs &fs, StatSet &stats)
{
    return std::make_unique<BufferedBackend>(fs, stats);
}

std::unique_ptr<StorageBackend>
makeStorageBackend(BackendKind kind, hostfs::HostFs &fs, StatSet &stats)
{
    switch (kind) {
      case BackendKind::Buffered:
        return makeBufferedBackend(fs, stats);
      case BackendKind::Direct:
        return makeDirectBackend(fs, stats);
      case BackendKind::Gds:
        return makeGdsBackend(fs, stats);
      case BackendKind::RemoteFlash:
        return makeRemoteFlashBackend(fs, stats);
    }
    gpufs_assert(false, "unknown storage backend kind");
    return nullptr;
}

} // namespace storage
} // namespace gpufs
