/**
 * @file
 * StorageBackend: the seam between the daemon's miss/write-back path
 * and storage.
 *
 * The paper's host daemon knows exactly one miss shape — a buffered
 * pread through the OS page cache followed by a bounce-buffer H2D DMA
 * (§4.3). This interface makes that shape pluggable: the daemon calls
 * read/readPages/readRuns/write/writev/sync on the selected backend
 * instead of HostFs directly, and each backend pairs the (shared)
 * functional HostFs data movement with its own virtual-time charge
 * model:
 *
 *  - BufferedBackend    host page cache + disk (byte-identical default)
 *  - DirectBackend      O_DIRECT: aligned extents, device-rate I/O,
 *                       no cache in either direction
 *  - GdsBackend         GPUDirect-style zero-copy: the device read
 *                       streams through a per-GPU storage-DMA engine
 *                       straight into the frame arena (directToGpu():
 *                       the daemon skips its PCIe bounce hop)
 *  - RemoteFlashBackend NVMe-oF: flash-rate media behind fabric RTT,
 *                       link bandwidth, and a bounded queue depth
 *
 * Fault injection, crash points, EOF clamping and version bumps live
 * in HostFs (the *Uncached entry points), so every backend degrades
 * and recovers identically — tests/storage_test.cc sweeps the matrix.
 */

#ifndef GPUFS_STORAGE_BACKEND_HH
#define GPUFS_STORAGE_BACKEND_HH

#include <memory>

#include "base/stats.hh"
#include "hostfs/hostfs.hh"
#include "storage/kind.hh"

namespace gpufs {
namespace storage {

/** Bytes the device must actually move for [offset, offset+len) under
 *  @p align-byte sector constraints (O_DIRECT rounds both ends out). */
inline uint64_t
alignedSpan(uint64_t offset, uint64_t len, uint64_t align)
{
    if (len == 0)
        return 0;
    if (align <= 1)
        return len;
    uint64_t lo = offset / align * align;
    uint64_t hi = (offset + len + align - 1) / align * align;
    return hi - lo;
}

class StorageBackend
{
  public:
    /** Registers the shared storage_* counters in @p stats (the
     *  daemon's StatSet; re-registration fetches the same counters). */
    StorageBackend(hostfs::HostFs &host_fs, StatSet &stats);
    virtual ~StorageBackend();

    StorageBackend(const StorageBackend &) = delete;
    StorageBackend &operator=(const StorageBackend &) = delete;

    virtual BackendKind kind() const = 0;
    const char *name() const { return backendName(kind()); }

    /**
     * True when reads land in GPU memory without a host bounce buffer
     * (and write-backs leave it without one): the daemon must skip its
     * H2D/D2H PCIe charge — the backend's own timeline carries the
     * transfer.
     */
    virtual bool directToGpu() const { return false; }

    /** @p gpu is the requesting GPU's id — backends with per-GPU
     *  timelines (GDS) reserve that GPU's engine; others ignore it.
     *  All calls mirror the HostFs methods they replace. */
    virtual hostfs::IoResult read(int fd, uint8_t *dst, uint64_t len,
                                  uint64_t offset, Time ready,
                                  unsigned gpu) = 0;
    virtual hostfs::IoResult readPages(int fd, uint8_t *const *dsts,
                                       unsigned n_pages, uint64_t page_len,
                                       uint64_t offset, Time ready,
                                       unsigned gpu) = 0;
    virtual hostfs::IoResult readRuns(int fd, hostfs::ReadRun *runs,
                                      unsigned n, Time ready,
                                      unsigned gpu) = 0;
    virtual hostfs::IoResult write(int fd, const uint8_t *src, uint64_t len,
                                   uint64_t offset, Time ready,
                                   unsigned gpu) = 0;
    virtual hostfs::IoResult writev(int fd, const hostfs::WriteRun *runs,
                                    unsigned n, Time ready,
                                    unsigned gpu) = 0;
    virtual hostfs::IoResult sync(int fd, Time ready, unsigned gpu) = 0;

  protected:
    hostfs::HostFs &fs;

    /** Count one read/write call of @p bytes on the shared counters. */
    void countRead(uint64_t bytes);
    void countWrite(uint64_t bytes);
    void countSync();

  private:
    Counter &reads_;
    Counter &readBytes_;
    Counter &writes_;
    Counter &writeBytes_;
    Counter &syncs_;
};

/** Construct the backend for @p kind, counters registered in @p stats. */
std::unique_ptr<StorageBackend> makeStorageBackend(BackendKind kind,
                                                   hostfs::HostFs &fs,
                                                   StatSet &stats);

// Per-kind factories (backend.cc dispatches; also used directly by
// unit tests that want a bare backend without a daemon).
std::unique_ptr<StorageBackend> makeBufferedBackend(hostfs::HostFs &fs,
                                                    StatSet &stats);
std::unique_ptr<StorageBackend> makeDirectBackend(hostfs::HostFs &fs,
                                                  StatSet &stats);
std::unique_ptr<StorageBackend> makeGdsBackend(hostfs::HostFs &fs,
                                               StatSet &stats);
std::unique_ptr<StorageBackend> makeRemoteFlashBackend(hostfs::HostFs &fs,
                                                       StatSet &stats);

} // namespace storage
} // namespace gpufs

#endif // GPUFS_STORAGE_BACKEND_HH
