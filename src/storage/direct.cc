/**
 * @file
 * DirectBackend: O_DIRECT semantics on the local device.
 *
 * No host page cache in either direction — every access goes to the
 * device at directReadMBps/directWriteMBps after directAccessLat,
 * rounding each extent out to directAlignBytes sectors (the aligned-
 * I/O constraint: a 16 KB read at an odd offset moves full sectors,
 * and the bytes the cache's 64 KB granules would have over-read on
 * the buffered path are NOT fetched — which is exactly why O_DIRECT
 * wins cold random workloads). The submitting syscall still serializes
 * on the daemon's single cpuIo path, but only for its fixed overhead:
 * the data never makes a second pass through a host copy.
 */

#include "storage/backend.hh"

namespace gpufs {
namespace storage {

namespace {

class DirectBackend : public StorageBackend
{
  public:
    DirectBackend(hostfs::HostFs &host_fs, StatSet &stats)
        : StorageBackend(host_fs, stats),
          unalignedBytes_(stats.counter("direct_unaligned_bytes"))
    {
    }

    BackendKind kind() const override { return BackendKind::Direct; }

    hostfs::IoResult
    read(int fd, uint8_t *dst, uint64_t len, uint64_t offset, Time ready,
         unsigned) override
    {
        auto r = fs.preadUncached(fd, dst, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        r.done = chargeDevice(offset, r.bytes, 1, ready, /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readPages(int fd, uint8_t *const *dsts, unsigned n_pages,
              uint64_t page_len, uint64_t offset, Time ready,
              unsigned) override
    {
        auto r = fs.preadPagesUncached(fd, dsts, n_pages, page_len, offset,
                                       ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        r.done = chargeDevice(offset, r.bytes, 1, ready, /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readRuns(int fd, hostfs::ReadRun *runs, unsigned n, Time ready,
             unsigned) override
    {
        auto r = fs.preadRunsUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        // One gathered submission, one device reservation covering
        // every run: each extent seeks (accessLat) then streams its
        // aligned bytes.
        uint64_t aligned = 0;
        unsigned extents = 0;
        const uint64_t align = fs.simContext().params.directAlignBytes;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].bytes == 0)
                continue;
            aligned += alignedSpan(runs[i].offset, runs[i].bytes, align);
            ++extents;
        }
        r.done = chargeAligned(aligned, r.bytes, extents, ready,
                               /*write=*/false);
        return r;
    }

    hostfs::IoResult
    write(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
          Time ready, unsigned) override
    {
        auto r = fs.pwriteUncached(fd, src, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        r.done = chargeDevice(offset, r.bytes, 1, ready, /*write=*/true);
        return r;
    }

    hostfs::IoResult
    writev(int fd, const hostfs::WriteRun *runs, unsigned n, Time ready,
           unsigned) override
    {
        auto r = fs.pwritevUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        uint64_t aligned = 0;
        unsigned extents = 0;
        const uint64_t align = fs.simContext().params.directAlignBytes;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].len == 0)
                continue;
            aligned += alignedSpan(runs[i].offset, runs[i].len, align);
            ++extents;
        }
        r.done = chargeAligned(aligned, r.bytes, extents, ready,
                               /*write=*/true);
        return r;
    }

    hostfs::IoResult
    sync(int fd, Time ready, unsigned) override
    {
        countSync();
        auto r = fs.fsyncUncached(fd, ready);
        if (!ok(r.status))
            return r;
        // Device flush barrier: nothing is cached host-side, so the
        // cost is one command's access latency.
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (!p.chargeHostIo)
            return r;
        Time t = sim.cpuIo.reserve(ready, p.preadOverhead).end;
        r.done = sim.disk.reserve(t, p.directAccessLat).end;
        return r;
    }

  private:
    /** Single-extent convenience: align [offset, offset+bytes). */
    Time
    chargeDevice(uint64_t offset, uint64_t bytes, unsigned extents,
                 Time ready, bool write)
    {
        uint64_t aligned = alignedSpan(
            offset, bytes, fs.simContext().params.directAlignBytes);
        return chargeAligned(aligned, bytes, extents, ready, write);
    }

    /** Submit syscall on cpuIo, then one device reservation:
     *  extents * accessLat + aligned bytes at device rate. */
    Time
    chargeAligned(uint64_t aligned, uint64_t bytes, unsigned extents,
                  Time ready, bool write)
    {
        if (aligned > bytes)
            unalignedBytes_.inc(aligned - bytes);
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (aligned == 0 || !p.chargeHostIo)
            return ready;
        Time t = sim.cpuIo.reserve(ready, p.preadOverhead).end;
        Time dur = Time(extents) * p.directAccessLat
            + transferTime(aligned,
                           write ? p.directWriteMBps : p.directReadMBps);
        return sim.disk.reserve(t, dur).end;
    }

    /** Sector-rounding overhead: device bytes moved beyond the bytes
     *  requested (0 on aligned workloads). */
    Counter &unalignedBytes_;
};

} // namespace

std::unique_ptr<StorageBackend>
makeDirectBackend(hostfs::HostFs &fs, StatSet &stats)
{
    return std::make_unique<DirectBackend>(fs, stats);
}

} // namespace storage
} // namespace gpufs
