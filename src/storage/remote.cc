/**
 * @file
 * RemoteFlashBackend: an NVMe-oF remote flash tier (GNStor-style
 * disaggregated storage).
 *
 * Every extent is one NVMe command: the initiator submits it (cpuIo
 * syscall overhead), waits for one of nvmfQueueDepth fabric slots,
 * pays half an RTT to reach the target, the flash media serves the
 * aligned extent (remoteFlashAccessLat + media bandwidth), the
 * data/ack serializes over the fabric link (nvmfLinkMBps), and the
 * completion pays the return half-RTT. Reads land in a host staging
 * buffer, so the normal H2D DMA still applies (directToGpu() false).
 * The tier wins cold working sets — flash media vs the local spindle —
 * and loses small warm accesses, where RTT dwarfs the buffered cache
 * hit; bench/ablate_backend sweeps the RTT crossover.
 */

#include "storage/backend.hh"

#include <algorithm>

namespace gpufs {
namespace storage {

namespace {

class RemoteFlashBackend : public StorageBackend
{
  public:
    RemoteFlashBackend(hostfs::HostFs &host_fs, StatSet &stats)
        : StorageBackend(host_fs, stats),
          commands_(stats.counter("nvmf_commands"))
    {
    }

    BackendKind kind() const override { return BackendKind::RemoteFlash; }

    hostfs::IoResult
    read(int fd, uint8_t *dst, uint64_t len, uint64_t offset, Time ready,
         unsigned) override
    {
        auto r = fs.preadUncached(fd, dst, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        Time t = submit(ready);
        r.done = command(offset, r.bytes, t, /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readPages(int fd, uint8_t *const *dsts, unsigned n_pages,
              uint64_t page_len, uint64_t offset, Time ready,
              unsigned) override
    {
        auto r = fs.preadPagesUncached(fd, dsts, n_pages, page_len, offset,
                                       ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        Time t = submit(ready);
        r.done = command(offset, r.bytes, t, /*write=*/false);
        return r;
    }

    hostfs::IoResult
    readRuns(int fd, hostfs::ReadRun *runs, unsigned n, Time ready,
             unsigned) override
    {
        auto r = fs.preadRunsUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countRead(r.bytes);
        // One submission batch, one command per extent: all commands
        // enter the fabric together (bounded by the queue depth) and
        // the gathered read completes with the last of them.
        Time t = submit(ready);
        Time done = t;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].bytes == 0)
                continue;
            done = std::max(done, command(runs[i].offset, runs[i].bytes, t,
                                          /*write=*/false));
        }
        r.done = done;
        return r;
    }

    hostfs::IoResult
    write(int fd, const uint8_t *src, uint64_t len, uint64_t offset,
          Time ready, unsigned) override
    {
        auto r = fs.pwriteUncached(fd, src, len, offset, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        Time t = submit(ready);
        r.done = command(offset, r.bytes, t, /*write=*/true);
        return r;
    }

    hostfs::IoResult
    writev(int fd, const hostfs::WriteRun *runs, unsigned n, Time ready,
           unsigned) override
    {
        auto r = fs.pwritevUncached(fd, runs, n, ready);
        if (!ok(r.status) || r.bytes == 0)
            return r;
        countWrite(r.bytes);
        Time t = submit(ready);
        Time done = t;
        for (unsigned i = 0; i < n; ++i) {
            if (runs[i].len == 0)
                continue;
            done = std::max(done, command(runs[i].offset, runs[i].len, t,
                                          /*write=*/true));
        }
        r.done = done;
        return r;
    }

    hostfs::IoResult
    sync(int fd, Time ready, unsigned) override
    {
        countSync();
        auto r = fs.fsyncUncached(fd, ready);
        if (!ok(r.status))
            return r;
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (!p.chargeHostIo)
            return r;
        // NVMe flush: a zero-data command — full RTT plus one media
        // access on the target.
        Time t = submit(ready);
        auto slot = sim.nvmfSlots().acquire(t);
        Time at = slot.start + p.nvmfRtt / 2;
        at = sim.remoteFlash.reserve(at, p.remoteFlashAccessLat).end;
        at += p.nvmfRtt / 2;
        sim.nvmfSlots().release(slot, at);
        r.done = at;
        return r;
    }

  private:
    /** Initiator-side submission syscall (skipped when host I/O is
     *  uncharged, mirroring the buffered path's toggle). */
    Time
    submit(Time ready)
    {
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (!p.chargeHostIo)
            return ready;
        return sim.cpuIo.reserve(ready, p.preadOverhead).end;
    }

    /**
     * One NVMe command for [offset, offset+bytes): queue-depth slot,
     * half-RTT out, media access of the aligned extent, data over the
     * fabric link, half-RTT back.
     */
    Time
    command(uint64_t offset, uint64_t bytes, Time ready, bool write)
    {
        commands_.inc();
        auto &sim = fs.simContext();
        const auto &p = sim.params;
        if (!p.chargeHostIo)
            return ready;
        uint64_t aligned = alignedSpan(offset, bytes, p.directAlignBytes);
        auto slot = sim.nvmfSlots().acquire(ready);
        Time t = slot.start + p.nvmfRtt / 2;
        Time media = p.remoteFlashAccessLat
            + transferTime(aligned, write ? p.remoteFlashWriteMBps
                                          : p.remoteFlashReadMBps);
        t = sim.remoteFlash.reserve(t, media).end;
        t = sim.nvmfLink.reserve(t, transferTime(bytes, p.nvmfLinkMBps)).end;
        t += p.nvmfRtt / 2;
        sim.nvmfSlots().release(slot, t);
        return t;
    }

    Counter &commands_;
};

} // namespace

std::unique_ptr<StorageBackend>
makeRemoteFlashBackend(hostfs::HostFs &fs, StatSet &stats)
{
    return std::make_unique<RemoteFlashBackend>(fs, stats);
}

} // namespace storage
} // namespace gpufs
