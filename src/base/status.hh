/**
 * @file
 * Error codes shared by the host file system, the RPC layer and the
 * GPU-side GPUfs API. Mirrors the POSIX errno values the paper's
 * prototype would surface through its host daemon.
 */

#ifndef GPUFS_BASE_STATUS_HH
#define GPUFS_BASE_STATUS_HH

#include <cstdint>

namespace gpufs {

enum class Status : int32_t {
    Ok = 0,
    NoEnt,          ///< file does not exist (ENOENT)
    Exists,         ///< O_EXCL create of an existing file (EEXIST)
    Busy,           ///< another device holds the file for writing (EBUSY)
    Inval,          ///< invalid argument (EINVAL)
    BadFd,          ///< unknown / closed file descriptor (EBADF)
    ReadOnlyFile,   ///< write attempted on an O_RDONLY open (EACCES)
    NoSpace,        ///< buffer cache exhausted and nothing reclaimable
    IoError,        ///< simulated device error (fault injection)
    NotSupported,   ///< operation outside the prototype's supported set
    TooManyFiles,   ///< open file table exhausted (ENFILE)
};

/** Human-readable name for a status code. */
const char *statusName(Status s);

/** True iff the status signals success. */
inline bool ok(Status s) { return s == Status::Ok; }

} // namespace gpufs

#endif // GPUFS_BASE_STATUS_HH
