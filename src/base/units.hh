/**
 * @file
 * Size and virtual-time units used throughout the simulator.
 */

#ifndef GPUFS_BASE_UNITS_HH
#define GPUFS_BASE_UNITS_HH

#include <cstdint>

namespace gpufs {

/** Virtual time, in nanoseconds. */
using Time = uint64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

/** Convert a virtual time to (double) seconds, for reporting. */
inline double toSeconds(Time t) { return static_cast<double>(t) / 1e9; }

/** Convert a virtual time to milliseconds, for reporting. */
inline double toMillis(Time t) { return static_cast<double>(t) / 1e6; }

/**
 * Duration of moving @p bytes at @p mb_per_s megabytes per second
 * (decimal MB, matching how the paper quotes device bandwidths).
 */
inline Time
transferTime(uint64_t bytes, double mb_per_s)
{
    if (mb_per_s <= 0.0)
        return 0;
    double seconds = static_cast<double>(bytes) / (mb_per_s * 1e6);
    return static_cast<Time>(seconds * 1e9);
}

/** Throughput in MB/s given bytes moved and elapsed virtual time. */
inline double
throughputMBps(uint64_t bytes, Time elapsed)
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bytes) / 1e6 / toSeconds(elapsed);
}

} // namespace gpufs

#endif // GPUFS_BASE_UNITS_HH
