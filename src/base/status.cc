#include "base/status.hh"

namespace gpufs {

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "Ok";
      case Status::NoEnt: return "NoEnt";
      case Status::Exists: return "Exists";
      case Status::Busy: return "Busy";
      case Status::Inval: return "Inval";
      case Status::BadFd: return "BadFd";
      case Status::ReadOnlyFile: return "ReadOnlyFile";
      case Status::NoSpace: return "NoSpace";
      case Status::IoError: return "IoError";
      case Status::NotSupported: return "NotSupported";
      case Status::TooManyFiles: return "TooManyFiles";
    }
    return "Unknown";
}

} // namespace gpufs
