#include "base/stats.hh"

namespace gpufs {

Counter &
StatSet::counter(const std::string &counter_name)
{
    return counters[counter_name];
}

std::map<std::string, uint64_t>
StatSet::snapshot() const
{
    std::map<std::string, uint64_t> out;
    for (const auto &kv : counters)
        out[kv.first] = kv.second.get();
    return out;
}

void
StatSet::resetAll()
{
    for (auto &kv : counters)
        kv.second.reset();
}

} // namespace gpufs
