/**
 * @file
 * Lightweight statistics counters.
 *
 * The paper's evaluation reports internal counters (lock-free vs locked
 * buffer-cache accesses, pages reclaimed — Table 2; unique pages
 * accessed — Figure 6). StatSet gives each subsystem a named bundle of
 * relaxed atomic counters that benchmarks snapshot and print.
 */

#ifndef GPUFS_BASE_STATS_HH
#define GPUFS_BASE_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpufs {

/** One relaxed atomic counter. Cheap enough for fast paths. */
class Counter
{
  public:
    Counter() : value(0) {}

    void inc(uint64_t n = 1) { value.fetch_add(n, std::memory_order_relaxed); }
    void set(uint64_t n) { value.store(n, std::memory_order_relaxed); }
    uint64_t get() const { return value.load(std::memory_order_relaxed); }
    void reset() { value.store(0, std::memory_order_relaxed); }

    /** Monotonically raise the counter to at least @p n. */
    void
    maxWith(uint64_t n)
    {
        uint64_t cur = value.load(std::memory_order_relaxed);
        while (cur < n &&
               !value.compare_exchange_weak(cur, n,
                                            std::memory_order_relaxed)) {
        }
    }

  private:
    std::atomic<uint64_t> value;
};

/**
 * A named bundle of counters. Counters are registered once at
 * construction of the owning subsystem; lookup on the fast path is by
 * pointer, not by name.
 */
class StatSet
{
  public:
    explicit StatSet(std::string set_name) : name_(std::move(set_name)) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Register (or fetch) a counter by name. Not for fast paths. */
    Counter &counter(const std::string &counter_name);

    /** Snapshot all counters as name → value. */
    std::map<std::string, uint64_t> snapshot() const;

    /** Reset every counter to zero. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // std::map keeps counter addresses stable across inserts, which the
    // fast paths rely on after registration.
    std::map<std::string, Counter> counters;
};

} // namespace gpufs

#endif // GPUFS_BASE_STATS_HH
