/**
 * @file
 * Status-message and error-exit helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant of the library was violated (a bug in
 *            GPUfs itself); aborts so a core dump / debugger can be used.
 * fatal()  — the caller asked for something impossible (bad configuration,
 *            invalid arguments); exits with status 1.
 * warn()/inform() — status messages that never stop execution.
 */

#ifndef GPUFS_BASE_LOGGING_HH
#define GPUFS_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gpufs {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string vformat(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

#define gpufs_panic(...) \
    ::gpufs::detail::panicImpl(__FILE__, __LINE__, \
                               ::gpufs::detail::vformat(__VA_ARGS__))

#define gpufs_fatal(...) \
    ::gpufs::detail::fatalImpl(__FILE__, __LINE__, \
                               ::gpufs::detail::vformat(__VA_ARGS__))

#define gpufs_warn(...) \
    ::gpufs::detail::warnImpl(::gpufs::detail::vformat(__VA_ARGS__))

#define gpufs_inform(...) \
    ::gpufs::detail::informImpl(::gpufs::detail::vformat(__VA_ARGS__))

/**
 * Check an invariant that must hold regardless of user input.
 * Unlike assert(), stays active in release builds: GPUfs's lock-free
 * structures are exactly the kind of code whose invariant violations
 * must never be silently ignored.
 */
#define gpufs_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::gpufs::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: " #cond " ") + \
                ::gpufs::detail::vformat("" __VA_ARGS__)); \
        } \
    } while (0)

} // namespace gpufs

#endif // GPUFS_BASE_LOGGING_HH
