/**
 * @file
 * Deterministic random number generation. Every workload generator in
 * this repository derives all content from explicit seeds so experiments
 * are reproducible run to run; nothing uses std::random_device.
 */

#ifndef GPUFS_BASE_RNG_HH
#define GPUFS_BASE_RNG_HH

#include <cstdint>

namespace gpufs {

/**
 * SplitMix64: tiny, fast, high-quality 64-bit mixer. Used both as a
 * sequential generator and, via hash64(), as a stateless hash so that
 * synthetic file content can be computed at any offset without
 * generating everything before it.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t nextBelow(uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state;
};

/** Stateless mix of a single 64-bit value (one SplitMix64 step). */
inline uint64_t
hash64(uint64_t x)
{
    uint64_t z = x + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Combine two 64-bit values into one hash (order sensitive). */
inline uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return hash64(a ^ (hash64(b) + 0x9e3779b97f4a7c15ull + (a << 6)));
}

} // namespace gpufs

#endif // GPUFS_BASE_RNG_HH
