/**
 * @file
 * Double-buffered streaming with the non-blocking I/O core.
 *
 * The classic pipeline: while the GPU processes chunk i, the host
 * daemon is already fetching chunk i+1 — but expressed entirely from
 * GPU code with the async Table-1 extension, no CPU-side staging:
 *
 *     tok[i+1] = gread_async(chunk i+1)   // submit, returns at once
 *     gwait(tok[i])                       // usually already complete
 *     process(chunk i)
 *
 * With the synchronous gread the same block would serialize
 * fetch->process->fetch->process; here its own compute hides its own
 * I/O (see bench/fig_async_overlap.cc for the measured speedup, and
 * ARCHITECTURE.md "The non-blocking I/O core" for token rules).
 *
 * Run: ./example_double_buffer
 */

#include <cstdio>
#include <vector>

#include "gpufs/system.hh"

using namespace gpufs;

namespace {

constexpr uint64_t kChunk = 256 * KiB;
constexpr unsigned kChunks = 32;

/** Checksum standing in for real per-chunk compute. */
uint64_t
process(const uint8_t *data, uint64_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (uint64_t i = 0; i < n; ++i)
        h = (h ^ data[i]) * 1099511628211ull;
    return h;
}

} // namespace

int
main()
{
    core::GpuFsParams p;
    p.pageSize = kChunk;
    p.cacheBytes = (kChunks + 8) * kChunk;
    core::GpufsSystem sys(/*num_gpus=*/1, p);

    // Input: a deterministic pattern file on the host FS.
    {
        std::vector<uint8_t> bytes(kChunks * kChunk);
        for (uint64_t i = 0; i < bytes.size(); ++i)
            bytes[i] = uint8_t(i * 31 + 5);
        sys.hostFs().addFile(
            "/input.bin",
            std::make_unique<hostfs::InMemoryContent>(std::move(bytes)),
            kChunks * kChunk);
    }

    uint64_t sum = 0;
    Time elapsed = 0;
    gpu::launch(sys.device(0), /*num_blocks=*/1, /*threads=*/512,
                [&](gpu::BlockCtx &ctx) {
        core::GpuFs &fs = sys.fs();
        int fd = fs.gopen(ctx, "/input.bin", core::G_RDONLY);
        gpufs_assert(fd >= 0, "gopen failed");

        Time t0 = ctx.now();
        std::vector<uint8_t> bufs[2] = {std::vector<uint8_t>(kChunk),
                                        std::vector<uint8_t>(kChunk)};
        // Prime the pipeline, then: submit next, wait current, process.
        core::IoToken cur = fs.gread_async(ctx, fd, 0, kChunk,
                                           bufs[0].data());
        for (unsigned i = 0; i < kChunks; ++i) {
            core::IoToken next;
            if (i + 1 < kChunks) {
                next = fs.gread_async(ctx, fd, uint64_t(i + 1) * kChunk,
                                      kChunk, bufs[(i + 1) % 2].data());
            }
            int64_t n = fs.gwait(ctx, cur);
            gpufs_assert(core::gok(n),
                         "gwait: %s", statusName(core::gstatus_of(n)));
            sum = sum * 31 + process(bufs[i % 2].data(), uint64_t(n));
            ctx.charge(2000 * kMicrosecond);    // modelled compute
            cur = next;
        }
        elapsed = ctx.now() - t0;
        fs.gclose(ctx, fd);
    });

    std::printf("double-buffered scan: %u chunks x %llu KB, checksum "
                "%016llx\n",
                kChunks, static_cast<unsigned long long>(kChunk / KiB),
                static_cast<unsigned long long>(sum));
    std::printf("virtual time: %.2f ms (fetches hidden behind compute; "
                "compare the synchronous loop in "
                "bench/fig_async_overlap.cc)\n", elapsed / 1e6);
    return 0;
}
