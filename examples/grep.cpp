/**
 * @file
 * GPU "grep -w" (the paper's §5.2.2 application).
 *
 * The GPU kernel reads a dictionary file, a list-of-files file, and
 * every corpus file through GPUfs; formats its results with the
 * GPU-side string routines (gsnprintf & co.); and writes them to an
 * O_GWRONCE output file that the CPU then reads back — a complete
 * text-processing pipeline with no CPU-side application logic.
 *
 * Run: ./grep_example
 */

#include <algorithm>
#include <cstdio>

#include "gpufs/system.hh"
#include "workloads/kernels.hh"

using namespace gpufs;
using namespace gpufs::workloads;

int
main()
{
    constexpr uint32_t kWords = 2000;
    constexpr unsigned kFiles = 200;
    constexpr uint64_t kBytes = 4 * MiB;

    core::GpuFsParams params;
    params.pageSize = 64 * KiB;
    params.cacheBytes = 256 * MiB;
    core::GpufsSystem sys(1, params);

    Dictionary dict(/*seed=*/5, kWords);
    dict.install(sys.hostFs(), "/dict.bin");
    Corpus corpus = makeTree(sys.hostFs(), dict, /*seed=*/6, "/src",
                             kFiles, kBytes);
    std::printf("corpus: %u files, %.1f MB; dictionary: %u words\n",
                kFiles, double(corpus.totalBytes) / 1e6, kWords);

    // GPU search.
    GrepGpuResult gpu = gpuGrep(sys.fs(), sys.device(0), dict,
                                "/dict.bin", corpus.listPath,
                                "/out/matches.txt");

    // CPU baseline cross-check.
    Time cpu_time = 0;
    auto cpu_counts = cpuGrep(sys.wrapFs(), dict, corpus, &cpu_time);
    bool agree = gpu.counts == cpu_counts;

    // Show the most frequent words.
    std::vector<uint32_t> order(kWords);
    for (uint32_t i = 0; i < kWords; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return gpu.counts[a] > gpu.counts[b];
    });
    std::printf("top words:\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  %-16s %llu\n", dict.word(order[i]).c_str(),
                    static_cast<unsigned long long>(
                        gpu.counts[order[i]]));
    }

    // Read the first lines of the GPU-formatted output back via the
    // host file system.
    int fd = sys.hostFs().open("/out/matches.txt", hostfs::O_RDONLY_F);
    std::vector<char> head(200, 0);
    sys.hostFs().pread(fd, reinterpret_cast<uint8_t *>(head.data()),
                       head.size() - 1, 0);
    sys.hostFs().close(fd);
    std::printf("output head:\n%.*s...\n", 120, head.data());
    std::printf("modelled time: GPU %.1f ms, CPUx8 %.1f ms; GPU wrote "
                "%llu output bytes\n",
                toMillis(gpu.elapsed), toMillis(cpu_time),
                static_cast<unsigned long long>(gpu.outputBytes));
    std::printf("%s\n", agree ? "grep OK (GPU == CPU counts)"
                              : "grep FAILED (counts disagree)");
    return agree ? 0 : 1;
}
