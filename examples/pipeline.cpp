/**
 * @file
 * A multi-stage GPU processing pipeline composed through files.
 *
 * The paper argues the file system is "a communication substrate for
 * composing different programs" and that "multiple kernels launched by
 * the same process can share data via the buffer cache" (§3.3). This
 * example runs three independently-written kernels chained only
 * through file names:
 *
 *   stage 1: tokenize a text file into fixed-size records
 *   stage 2: filter records by a predicate
 *   stage 3: aggregate into a histogram
 *
 * Stage N+1 reopens stage N's output; the closed-file table hands its
 * cached pages straight back (no PCIe re-transfer), which the example
 * verifies from the cache counters.
 *
 * Run: ./pipeline_example
 */

#include <cstdio>
#include <cstring>

#include "gpufs/system.hh"
#include "gpuutil/gstring.hh"
#include "workloads/textcorpus.hh"

using namespace gpufs;
using core::GpuFs;
using core::GStat;

namespace {

constexpr uint32_t kRecord = 32;     // fixed-size token record

/** Stage 1: tokenize /pipeline/input.txt -> /pipeline/tokens.bin. */
void
stageTokenize(core::GpufsSystem &sys)
{
    std::atomic<uint64_t> out_cursor{0};
    gpu::launch(sys.device(0), 8, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int in = fs.gopen(ctx, "/pipeline/input.txt", core::G_RDONLY);
        int out = fs.gopen(ctx, "/pipeline/tokens.bin", core::G_GWRONCE);
        gpufs_assert(in >= 0 && out >= 0, "stage1 gopen failed");
        GStat st;
        fs.gfstat(ctx, in, &st);

        // Blocks split the file; each tokenizes its slice (starting
        // after the first delimiter, ending past the last boundary —
        // every token is owned by exactly one block).
        uint64_t span = (st.size + ctx.numBlocks() - 1) / ctx.numBlocks();
        uint64_t lo = ctx.blockId() * span;
        uint64_t hi = std::min<uint64_t>(st.size, lo + span);
        if (lo >= st.size) {
            fs.gclose(ctx, out);
            fs.gclose(ctx, in);
            return;
        }
        uint64_t read_lo = lo == 0 ? 0 : lo - 1;
        std::vector<char> text(hi - read_lo + kRecord, 0);
        uint64_t got = uint64_t(
            fs.gread(ctx, in, read_lo,
                     std::min<uint64_t>(text.size() - 1, st.size - read_lo),
                     text.data()));

        std::string recs;
        size_t i = lo - read_lo;
        if (lo != 0) {
            // Skip a token continuing from the previous slice.
            while (i < got && !gpuutil::gisWordDelim(text[i]))
                ++i;
        }
        while (i < got) {
            while (i < got && gpuutil::gisWordDelim(text[i]))
                ++i;
            size_t start = i;
            if (start + read_lo >= hi)
                break;      // token starts in the next block's slice
            while (i < got && !gpuutil::gisWordDelim(text[i]))
                ++i;
            size_t len = std::min<size_t>(i - start, kRecord - 1);
            if (len == 0)
                continue;
            char rec[kRecord] = {};
            std::memcpy(rec, text.data() + start, len);
            recs.append(rec, kRecord);
        }
        if (!recs.empty()) {
            uint64_t off = out_cursor.fetch_add(recs.size());
            fs.gwrite(ctx, out, off, recs.size(), recs.data());
        }
        fs.gfsync(ctx, out);
        fs.gclose(ctx, out);
        fs.gclose(ctx, in);
    });
}

/** Stage 2: keep records whose token length >= 6 chars. */
void
stageFilter(core::GpufsSystem &sys)
{
    std::atomic<uint64_t> out_cursor{0};
    gpu::launch(sys.device(0), 8, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int in = fs.gopen(ctx, "/pipeline/tokens.bin", core::G_RDONLY);
        int out = fs.gopen(ctx, "/pipeline/long.bin", core::G_GWRONCE);
        gpufs_assert(in >= 0 && out >= 0, "stage2 gopen failed");
        GStat st;
        fs.gfstat(ctx, in, &st);
        uint64_t n_recs = st.size / kRecord;
        std::string keep;
        char rec[kRecord];
        for (uint64_t r = ctx.blockId(); r < n_recs;
             r += ctx.numBlocks()) {
            fs.gread(ctx, in, r * kRecord, kRecord, rec);
            if (gpuutil::gstrlen(rec, kRecord) >= 6)
                keep.append(rec, kRecord);
        }
        if (!keep.empty()) {
            uint64_t off = out_cursor.fetch_add(keep.size());
            fs.gwrite(ctx, out, off, keep.size(), keep.data());
        }
        fs.gfsync(ctx, out);
        fs.gclose(ctx, out);
        fs.gclose(ctx, in);
    });
}

/** Stage 3: histogram of first letters -> /pipeline/histogram.txt. */
void
stageHistogram(core::GpufsSystem &sys, uint64_t *total_out)
{
    std::atomic<uint64_t> hist[26] = {};
    gpu::launch(sys.device(0), 8, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int in = fs.gopen(ctx, "/pipeline/long.bin", core::G_RDONLY);
        gpufs_assert(in >= 0, "stage3 gopen failed");
        GStat st;
        fs.gfstat(ctx, in, &st);
        uint64_t n_recs = st.size / kRecord;
        char rec[kRecord];
        for (uint64_t r = ctx.blockId(); r < n_recs;
             r += ctx.numBlocks()) {
            fs.gread(ctx, in, r * kRecord, kRecord, rec);
            char c = rec[0];
            if (c >= 'a' && c <= 'z')
                hist[c - 'a'].fetch_add(1);
        }
        fs.gclose(ctx, in);
    });

    // A final single-block kernel formats the histogram with the GPU
    // string routines and writes it out.
    gpu::launch(sys.device(0), 1, 32, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int out = fs.gopen(ctx, "/pipeline/histogram.txt",
                           core::G_GWRONCE);
        gpufs_assert(out >= 0, "histogram gopen failed");
        std::string text;
        char line[64];
        for (int i = 0; i < 26; ++i) {
            size_t n = gpuutil::gsnprintf(
                line, sizeof(line), "%c %llu\n", char('a' + i),
                static_cast<unsigned long long>(hist[i].load()));
            text.append(line, n);
        }
        fs.gwrite(ctx, out, 0, text.size(), text.data());
        fs.gfsync(ctx, out);
        fs.gclose(ctx, out);
    });
    uint64_t total = 0;
    for (auto &h : hist)
        total += h.load();
    *total_out = total;
}

} // namespace

int
main()
{
    core::GpufsSystem sys(1);

    // Input: a generated text (reusing the corpus generator).
    workloads::Dictionary dict(/*seed=*/3, 400);
    workloads::makeSingleFile(sys.hostFs(), dict, /*seed=*/4,
                              "/pipeline/input.txt", 256 * 1024, 0.9);

    stageTokenize(sys);
    uint64_t misses_after_1 =
        sys.fs().stats().counter("cache_misses").get();
    stageFilter(sys);
    uint64_t total = 0;
    stageHistogram(sys, &total);

    // Show the result from the host side.
    int fd = sys.hostFs().open("/pipeline/histogram.txt",
                               hostfs::O_RDONLY_F);
    hostfs::FileInfo info;
    sys.hostFs().fstat(fd, &info);
    std::vector<char> hist_text(info.size + 1, 0);
    sys.hostFs().pread(fd, reinterpret_cast<uint8_t *>(hist_text.data()),
                       info.size, 0);
    sys.hostFs().close(fd);
    std::printf("first-letter histogram of long tokens:\n%s",
                hist_text.data());
    std::printf("total long tokens: %llu\n",
                static_cast<unsigned long long>(total));

    // The composition claim: later stages re-read earlier outputs from
    // the GPU buffer cache (closed-file table), not over PCIe.
    uint64_t misses_total = sys.fs().stats().counter("cache_misses").get();
    std::printf("cache misses: stage1 %llu, stages2+3 added %llu "
                "(outputs re-read from the closed-file cache)\n",
                static_cast<unsigned long long>(misses_after_1),
                static_cast<unsigned long long>(misses_total -
                                                misses_after_1));
    bool ok = total > 0;
    std::printf("%s\n", ok ? "pipeline OK" : "pipeline FAILED");
    return ok ? 0 : 1;
}
