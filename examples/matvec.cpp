/**
 * @file
 * Out-of-core matrix-vector product (the paper's §5.1.4 benchmark as
 * an application).
 *
 * The matrix may exceed GPU memory: the kernel gmmaps row segments out
 * of the buffer cache, which pages them in and out transparently —
 * "GPUfs easily enables access to datasets larger than the GPU's
 * physical memory" with no chunking logic in application code. Results
 * are verified against a CPU reference row by row.
 *
 * Run: ./matvec_example
 */

#include <cmath>
#include <cstdio>

#include "gpufs/system.hh"
#include "workloads/kernels.hh"

using namespace gpufs;
using namespace gpufs::workloads;

int
main()
{
    // A 384 MB matrix against a 96 MB GPU buffer cache: the kernel
    // touches 4x more data than fits, exercising paging end to end.
    // (The cache must at least hold one pinned page per resident
    // block — 28 x 2 MB — plus slack for the paging policy to work
    // with; GPUfs returns NoSpace if every frame is pinned.)
    MatrixSpec spec = makeMatrix(/*seed=*/31, 384.0, "/data");

    core::GpuFsParams params;
    params.pageSize = 2 * MiB;      // the paper's matvec page size
    params.cacheBytes = 96 * MiB;
    core::GpufsSystem sys(1, params);
    addMatrixFiles(sys.hostFs(), spec);

    std::printf("matrix: %u rows x %u cols (%.1f MB), cache %.0f MB\n",
                spec.rows, spec.cols, double(spec.matrixBytes()) / 1e6,
                double(params.cacheBytes) / 1e6);

    MatvecGpuResult r = gpuMatvec(sys.fs(), sys.device(0), spec, "/y.bin");

    // Verify a sample of output rows against the CPU reference.
    int fd = sys.hostFs().open("/y.bin", hostfs::O_RDONLY_F);
    unsigned checked = 0, wrong = 0;
    for (uint32_t row = 0; row < spec.rows; row += spec.rows / 16 + 1) {
        float y = 0;
        sys.hostFs().pread(fd, reinterpret_cast<uint8_t *>(&y),
                           sizeof(y), uint64_t(row) * sizeof(float));
        double ref = referenceRow(spec, row);
        ++checked;
        if (std::abs(y - ref) > 1e-3 * (1.0 + std::abs(ref)))
            ++wrong;
    }
    sys.hostFs().close(fd);

    std::printf("modelled GPU time: %.1f ms (%.0f MB/s); checksum %.4f\n",
                toMillis(r.elapsed),
                throughputMBps(spec.matrixBytes(), r.elapsed),
                r.checksum);
    std::printf("pages reclaimed under pressure: %llu\n",
                static_cast<unsigned long long>(
                    sys.fs().stats().counter("pages_reclaimed").get()));
    std::printf("verified %u sampled rows, %u mismatches\n", checked,
                wrong);
    bool ok = wrong == 0 && checked > 0;
    std::printf("%s\n", ok ? "matvec OK" : "matvec FAILED");
    return ok ? 0 : 1;
}
