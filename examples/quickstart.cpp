/**
 * @file
 * Quickstart: the smallest useful GPUfs program.
 *
 * A GPU kernel — with no CPU-side application code beyond the launch —
 * opens a host file, reads it, transforms it, and writes the result to
 * a new file which it synchronizes back to the host. This is the
 * paper's headline programming model: "self-contained GPU programs"
 * whose CPU code is "a single line — the GPU kernel invocation".
 *
 * Run: ./quickstart
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "gpufs/system.hh"

using namespace gpufs;

int
main()
{
    // One simulated machine: host FS + consistency daemon + 1 GPU.
    core::GpufsSystem sys(/*num_gpus=*/1);

    // Put an input file on the host file system (a CPU program, the
    // shell, or another GPU could have written it).
    const char message[] = "hello from the host file system";
    std::vector<uint8_t> bytes(message, message + sizeof(message) - 1);
    sys.hostFs().addFile(
        "/input.txt",
        std::make_unique<hostfs::InMemoryContent>(bytes), bytes.size());

    // The GPU kernel: every threadblock may call the GPUfs API; here
    // one block uppercases the file into /output.txt.
    gpu::launch(sys.device(0), /*num_blocks=*/1, /*threads=*/256,
                [&](gpu::BlockCtx &ctx) {
        core::GpuFs &fs = sys.fs();

        int in = fs.gopen(ctx, "/input.txt", core::G_RDONLY);
        int out = fs.gopen(ctx, "/output.txt",
                           core::G_GWRONCE);   // write-once output
        gpufs_assert(in >= 0 && out >= 0, "gopen failed");

        core::GStat st;
        fs.gfstat(ctx, in, &st);
        std::vector<char> buf(st.size);
        // Count-returning calls encode failure as -(int)Status —
        // decode with gok()/gstatus_of() (see gpufs.hh). For the
        // async flavor of this loop, see examples/double_buffer.cpp.
        int64_t rd = fs.gread(ctx, in, 0, st.size, buf.data());
        gpufs_assert(core::gok(rd),
                     "gread: %s", statusName(core::gstatus_of(rd)));
        for (char &c : buf)
            c = (c >= 'a' && c <= 'z') ? char(c - 'a' + 'A') : c;
        int64_t wr = fs.gwrite(ctx, out, 0, buf.size(), buf.data());
        gpufs_assert(core::gok(wr),
                     "gwrite: %s", statusName(core::gstatus_of(wr)));

        fs.gfsync(ctx, out);    // close does NOT sync (§3.2); gfsync does
        fs.gclose(ctx, out);
        fs.gclose(ctx, in);
    });

    // Back on the host: the CPU sees the GPU's output through the
    // ordinary file system.
    int fd = sys.hostFs().open("/output.txt", hostfs::O_RDONLY_F);
    hostfs::FileInfo info;
    sys.hostFs().fstat(fd, &info);
    std::vector<char> result(info.size + 1, 0);
    sys.hostFs().pread(fd, reinterpret_cast<uint8_t *>(result.data()),
                       info.size, 0);
    sys.hostFs().close(fd);

    std::printf("input : %s\n", message);
    std::printf("output: %s\n", result.data());
    bool ok = std::strcmp(result.data(),
                          "HELLO FROM THE HOST FILE SYSTEM") == 0;
    std::printf("%s\n", ok ? "quickstart OK" : "quickstart FAILED");
    return ok ? 0 : 1;
}
