/**
 * @file
 * Approximate image matching (the paper's §5.2.1 application).
 *
 * Query images are matched against prioritized databases; the GPU
 * kernel decides at runtime which database pages to fault in, so only
 * the data actually needed crosses the PCIe bus. The same search runs
 * on the 8-core CPU baseline and the results are cross-checked.
 *
 * Run: ./image_search
 */

#include <cstdio>

#include "gpufs/system.hh"
#include "workloads/kernels.hh"

using namespace gpufs;
using namespace gpufs::workloads;

int
main()
{
    constexpr uint32_t kQueries = 64;
    constexpr double kScale = 0.02;     // ~23 MB of databases
    constexpr double kThreshold = 1e-6;

    core::GpuFsParams params;
    params.pageSize = 64 * KiB;
    params.cacheBytes = 256 * MiB;
    core::GpufsSystem sys(1, params);

    // Three databases with every query planted at a random location.
    auto dbs = makePaperDbs(/*seed=*/123, kQueries,
                            /*plant_queries=*/true, kScale);
    for (const auto &db : dbs)
        addImageDb(sys.hostFs(), db, /*query_seed=*/42);
    addQueryFile(sys.hostFs(), "/queries.bin", 42, kQueries, dbs[0].dim);

    std::printf("databases: ");
    for (const auto &db : dbs)
        std::printf("%s (%u images)  ", db.path.c_str(), db.numImages);
    std::printf("\n");

    // GPU search — implemented entirely in the GPU kernel.
    ImageSearchGpuResult gpu = gpuImageSearch(
        sys.fs(), sys.device(0), dbs, "/queries.bin", 0, kQueries,
        kThreshold);

    // CPU baseline for cross-checking.
    Time cpu_time = 0;
    auto cpu = cpuImageSearch(sys.wrapFs(), dbs, 42, kQueries, kThreshold,
                              &cpu_time);

    unsigned found = 0, agree = 0;
    for (uint32_t q = 0; q < kQueries; ++q) {
        if (gpu.results[q].found())
            ++found;
        if (gpu.results[q].db == cpu[q].db &&
            (!cpu[q].found() || gpu.results[q].image == cpu[q].image)) {
            ++agree;
        }
    }
    for (uint32_t q = 0; q < std::min<uint32_t>(5, kQueries); ++q) {
        std::printf("query %2u -> db%d image %u\n", q, gpu.results[q].db,
                    gpu.results[q].image);
    }
    std::printf("matched %u/%u queries; GPU and CPU agree on %u/%u\n",
                found, kQueries, agree, kQueries);
    std::printf("modelled time: GPU %.1f ms, CPUx8 %.1f ms\n",
                toMillis(gpu.elapsed), toMillis(cpu_time));
    std::printf("buffer cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(
                    sys.fs().stats().counter("cache_hits").get()),
                static_cast<unsigned long long>(
                    sys.fs().stats().counter("cache_misses").get()));
    bool ok = found == kQueries && agree == kQueries;
    std::printf("%s\n", ok ? "image_search OK" : "image_search FAILED");
    return ok ? 0 : 1;
}
