/** @file Unit tests for the simulated host file system. */

#include <gtest/gtest.h>

#include <cstring>

#include "hostfs/content.hh"
#include "hostfs/hostfs.hh"
#include "sim/context.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace hostfs {
namespace {

class HostFsTest : public ::testing::Test
{
  protected:
    sim::SimContext sim;
    HostFs fs{sim};
};

TEST_F(HostFsTest, OpenMissingFileFails)
{
    Status st;
    EXPECT_LT(fs.open("/nope", O_RDONLY_F, &st), 0);
    EXPECT_EQ(Status::NoEnt, st);
}

TEST_F(HostFsTest, CreateWriteReadBack)
{
    int fd = fs.open("/f", O_CREAT_F | O_RDWR_F);
    ASSERT_GE(fd, 0);
    const char data[] = "hello gpufs";
    auto r = fs.pwrite(fd, reinterpret_cast<const uint8_t *>(data),
                       sizeof(data), 0);
    EXPECT_EQ(Status::Ok, r.status);
    EXPECT_EQ(sizeof(data), r.bytes);

    uint8_t buf[64] = {};
    r = fs.pread(fd, buf, sizeof(buf), 0);
    EXPECT_EQ(sizeof(data), r.bytes);   // clamped at EOF
    EXPECT_STREQ(data, reinterpret_cast<char *>(buf));
    EXPECT_EQ(Status::Ok, fs.close(fd));
}

TEST_F(HostFsTest, PreadAtOffset)
{
    test::addRamp(fs, "/r", 1000);
    int fd = fs.open("/r", O_RDONLY_F);
    uint8_t buf[10];
    auto r = fs.pread(fd, buf, 10, 500);
    EXPECT_EQ(10u, r.bytes);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(test::rampByte(500 + i), buf[i]);
    fs.close(fd);
}

TEST_F(HostFsTest, PreadPastEofReturnsZeroBytes)
{
    test::addRamp(fs, "/r", 100);
    int fd = fs.open("/r", O_RDONLY_F);
    uint8_t buf[10];
    EXPECT_EQ(0u, fs.pread(fd, buf, 10, 200).bytes);
    fs.close(fd);
}

TEST_F(HostFsTest, WriteToReadOnlyFdFails)
{
    test::addRamp(fs, "/r", 10);
    int fd = fs.open("/r", O_RDONLY_F);
    uint8_t b = 1;
    EXPECT_EQ(Status::ReadOnlyFile, fs.pwrite(fd, &b, 1, 0).status);
    fs.close(fd);
}

TEST_F(HostFsTest, VersionBumpsOnWriteTruncateUnlink)
{
    test::addRamp(fs, "/v", 10);
    FileInfo a, b;
    fs.stat("/v", &a);
    int fd = fs.open("/v", O_RDWR_F);
    uint8_t x = 9;
    fs.pwrite(fd, &x, 1, 0);
    fs.stat("/v", &b);
    EXPECT_GT(b.version, a.version);
    fs.ftruncate(fd, 5);
    FileInfo c;
    fs.stat("/v", &c);
    EXPECT_GT(c.version, b.version);
    EXPECT_EQ(5u, c.size);
    fs.close(fd);
}

TEST_F(HostFsTest, OpenTruncResetsSizeAndBumpsVersion)
{
    test::addRamp(fs, "/t", 100);
    FileInfo before;
    fs.stat("/t", &before);
    int fd = fs.open("/t", O_RDWR_F | O_TRUNC_F);
    FileInfo after;
    fs.fstat(fd, &after);
    EXPECT_EQ(0u, after.size);
    EXPECT_GT(after.version, before.version);
    fs.close(fd);
}

TEST_F(HostFsTest, UnlinkedFileStaysReadableViaOpenFd)
{
    test::addRamp(fs, "/u", 10);
    int fd = fs.open("/u", O_RDONLY_F);
    EXPECT_EQ(Status::Ok, fs.unlink("/u"));
    EXPECT_EQ(Status::NoEnt, fs.stat("/u", nullptr));
    uint8_t buf[10];
    EXPECT_EQ(10u, fs.pread(fd, buf, 10, 0).bytes);   // POSIX semantics
    fs.close(fd);
}

TEST_F(HostFsTest, WriteExtendsSize)
{
    int fd = fs.open("/grow", O_CREAT_F | O_WRONLY_F);
    uint8_t b = 0xAB;
    fs.pwrite(fd, &b, 1, 999);
    FileInfo info;
    fs.fstat(fd, &info);
    EXPECT_EQ(1000u, info.size);
    fs.close(fd);
}

TEST_F(HostFsTest, OpenCountTracksLeaks)
{
    test::addRamp(fs, "/x", 4);
    EXPECT_EQ(0u, fs.openCount());
    int fd = fs.open("/x", O_RDONLY_F);
    EXPECT_EQ(1u, fs.openCount());
    fs.close(fd);
    EXPECT_EQ(0u, fs.openCount());
}

TEST_F(HostFsTest, BadFdRejectedEverywhere)
{
    uint8_t b;
    EXPECT_EQ(Status::BadFd, fs.pread(77, &b, 1, 0).status);
    EXPECT_EQ(Status::BadFd, fs.pwrite(77, &b, 1, 0).status);
    EXPECT_EQ(Status::BadFd, fs.close(77));
    EXPECT_EQ(Status::BadFd, fs.ftruncate(77, 0));
    EXPECT_EQ(Status::BadFd, fs.fsync(77).status);
}

// ---- content providers ----

TEST(Content, InMemoryZeroFillsPastEnd)
{
    InMemoryContent c(std::vector<uint8_t>{1, 2, 3});
    uint8_t buf[6] = {9, 9, 9, 9, 9, 9};
    c.readAt(0, 6, buf);
    EXPECT_EQ(1, buf[0]);
    EXPECT_EQ(3, buf[2]);
    EXPECT_EQ(0, buf[3]);
    EXPECT_EQ(0, buf[5]);
}

TEST(Content, PatternIsOffsetStable)
{
    auto p = SyntheticContent::pattern(77);
    // Reading [100, 200) must agree with reading [0, 4096) sliced.
    uint8_t big[4096], small[100];
    p->readAt(0, sizeof(big), big);
    p->readAt(100, sizeof(small), small);
    EXPECT_EQ(0, std::memcmp(big + 100, small, sizeof(small)));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(SyntheticContent::patternByte(77, i), big[i]);
}

TEST(Content, PatternDiffersBySeed)
{
    auto a = SyntheticContent::pattern(1);
    auto b = SyntheticContent::pattern(2);
    uint8_t ba[256], bb[256];
    a->readAt(0, 256, ba);
    b->readAt(0, 256, bb);
    EXPECT_NE(0, std::memcmp(ba, bb, 256));
}

TEST(Content, OverlayWritePatchesSyntheticContent)
{
    auto p = SyntheticContent::pattern(5);
    uint8_t patch[16];
    std::memset(patch, 0xEE, sizeof(patch));
    EXPECT_TRUE(p->writeAt(1000, sizeof(patch), patch));
    uint8_t buf[32];
    p->readAt(992, sizeof(buf), buf);
    // 8 pattern bytes, 16 patched, 8 pattern bytes.
    EXPECT_EQ(SyntheticContent::patternByte(5, 992), buf[0]);
    EXPECT_EQ(0xEE, buf[8]);
    EXPECT_EQ(0xEE, buf[23]);
    EXPECT_EQ(SyntheticContent::patternByte(5, 1016), buf[24]);
}

TEST(Content, OverlayStraddlesChunkBoundary)
{
    auto p = SyntheticContent::pattern(6);
    std::vector<uint8_t> patch(128 * 1024, 0x5A);
    EXPECT_TRUE(p->writeAt(60 * 1024, patch.size(), patch.data()));
    uint8_t b;
    p->readAt(60 * 1024, 1, &b);
    EXPECT_EQ(0x5A, b);
    p->readAt(60 * 1024 + patch.size() - 1, 1, &b);
    EXPECT_EQ(0x5A, b);
    p->readAt(60 * 1024 + patch.size(), 1, &b);
    EXPECT_EQ(SyntheticContent::patternByte(6, 60 * 1024 + patch.size()), b);
}

// ---- page cache timing ----

class PageCacheTest : public ::testing::Test
{
  protected:
    sim::SimContext sim;
    HostFs fs{sim};
};

TEST_F(PageCacheTest, ColdReadPaysDiskWarmReadDoesNot)
{
    test::addRamp(fs, "/c", 1 * MiB);
    int fd = fs.open("/c", O_RDONLY_F);
    std::vector<uint8_t> buf(1 * MiB);
    Time cold = fs.pread(fd, buf.data(), buf.size(), 0, 0).done;
    Time warm_start = cold;
    Time warm = fs.pread(fd, buf.data(), buf.size(), 0, warm_start).done
        - warm_start;
    EXPECT_GT(cold, warm * 5);   // disk ~25x slower than cache here
    fs.close(fd);
}

TEST_F(PageCacheTest, DropCachesMakesReadsColdAgain)
{
    test::addRamp(fs, "/c", 256 * KiB);
    int fd = fs.open("/c", O_RDONLY_F);
    std::vector<uint8_t> buf(256 * KiB);
    fs.pread(fd, buf.data(), buf.size(), 0, 0);
    uint64_t miss1 = fs.cache().stats().counter("miss_bytes").get();
    fs.dropCaches();
    fs.pread(fd, buf.data(), buf.size(), 0, 0);
    uint64_t miss2 = fs.cache().stats().counter("miss_bytes").get();
    EXPECT_GT(miss2, miss1);
    fs.close(fd);
}

TEST_F(PageCacheTest, PinnedMemoryShrinksCapacity)
{
    uint64_t cap = fs.cache().effectiveCapacity();
    ASSERT_TRUE(fs.cache().reservePinned(1 * GiB));
    EXPECT_EQ(cap - 1 * GiB, fs.cache().effectiveCapacity());
    fs.cache().releasePinned(1 * GiB);
    EXPECT_EQ(cap, fs.cache().effectiveCapacity());
}

TEST_F(PageCacheTest, PinnedBeyondTotalRejected)
{
    EXPECT_FALSE(fs.cache().reservePinned(1ull << 60));
}

TEST_F(PageCacheTest, EvictionUnderCapacityPressure)
{
    sim.params.hostCacheBytes = 1 * MiB;   // tiny cache
    test::addRamp(fs, "/big", 4 * MiB);
    int fd = fs.open("/big", O_RDONLY_F);
    std::vector<uint8_t> buf(4 * MiB);
    fs.pread(fd, buf.data(), buf.size(), 0, 0);
    EXPECT_GT(fs.cache().stats().counter("evictions").get(), 0u);
    EXPECT_LE(fs.cache().residentBytes(), 1 * MiB + sim.params.hostCacheGranule);
    fs.close(fd);
}

TEST_F(PageCacheTest, FsyncChargesDiskForDirtyData)
{
    int fd = fs.open("/w", O_CREAT_F | O_WRONLY_F);
    std::vector<uint8_t> buf(1 * MiB, 0x11);
    Time t = fs.pwrite(fd, buf.data(), buf.size(), 0, 0).done;
    Time synced = fs.fsync(fd, t).done;
    EXPECT_GT(synced - t, transferTime(1 * MiB, sim.params.diskWriteMBps) / 2);
    // Second fsync: nothing dirty, ~free.
    EXPECT_EQ(synced, fs.fsync(fd, synced).done);
    fs.close(fd);
}

TEST_F(PageCacheTest, ChargeHostIoToggleZeroesCosts)
{
    sim.params.chargeHostIo = false;
    test::addRamp(fs, "/z", 1 * MiB);
    int fd = fs.open("/z", O_RDONLY_F);
    std::vector<uint8_t> buf(1 * MiB);
    EXPECT_EQ(Time(0), fs.pread(fd, buf.data(), buf.size(), 0, 0).done);
    fs.close(fd);
}

TEST_F(PageCacheTest, PrefaultMakesFirstReadWarm)
{
    test::addRamp(fs, "/p", 512 * KiB);
    FileInfo info;
    fs.stat("/p", &info);
    fs.cache().prefault(info.ino, 0, 512 * KiB);
    int fd = fs.open("/p", O_RDONLY_F);
    std::vector<uint8_t> buf(512 * KiB);
    fs.pread(fd, buf.data(), buf.size(), 0, 0);
    EXPECT_EQ(0u, fs.cache().stats().counter("miss_bytes").get());
    fs.close(fd);
}

} // namespace
} // namespace hostfs
} // namespace gpufs
