/** @file Unit tests for the consistency layer and WrapFs. */

#include <gtest/gtest.h>

#include "consistency/consistency.hh"
#include "consistency/wrapfs.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace consistency {
namespace {

TEST(Consistency, MultipleReadersAdmitted)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, false, false));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, false, false));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(kCpuDevice, 1, false, false));
    mgr.releaseOpen(0, 1, false);
    mgr.releaseOpen(1, 1, false);
    mgr.releaseOpen(kCpuDevice, 1, false);
}

TEST(Consistency, SecondWriterRejected)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, false));
    EXPECT_EQ(Status::Busy, mgr.acquireOpen(1, 1, true, false));
    EXPECT_EQ(1u, mgr.writerCount(1));
    mgr.releaseOpen(0, 1, true);
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, true, false));
    mgr.releaseOpen(1, 1, true);
}

TEST(Consistency, SameDeviceMayReopenForWrite)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, false));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, false));
    mgr.releaseOpen(0, 1, true);
    EXPECT_EQ(1u, mgr.writerCount(1));
    mgr.releaseOpen(0, 1, true);
    EXPECT_EQ(0u, mgr.writerCount(1));
}

TEST(Consistency, GwronceWritersMayCoexist)
{
    // Write-once writers merge by diff-against-zeros, so several
    // devices may produce disjoint parts of one file (§3.1).
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, true));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, true, true));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(2, 1, true, true));
    EXPECT_EQ(3u, mgr.writerCount(1));
    // ... but a non-mergeable writer cannot join them.
    EXPECT_EQ(Status::Busy, mgr.acquireOpen(3, 1, true, false));
    mgr.releaseOpen(0, 1, true);
    mgr.releaseOpen(1, 1, true);
    mgr.releaseOpen(2, 1, true);
}

TEST(Consistency, NonMergeableWriterBlocksGwronce)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, false));
    EXPECT_EQ(Status::Busy, mgr.acquireOpen(1, 1, true, true));
    mgr.releaseOpen(0, 1, true);
}

TEST(Consistency, WriterClassResetsAfterDrain)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, true, false));
    mgr.releaseOpen(0, 1, true);
    // Previous non-mergeable writer is gone; GWRONCE group may form.
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, true, true));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(2, 1, true, true));
    mgr.releaseOpen(1, 1, true);
    mgr.releaseOpen(2, 1, true);
}

TEST(Consistency, ReadersDoNotBlockWriter)
{
    ConsistencyMgr mgr;
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(0, 1, false, false));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, true, false));
    mgr.releaseOpen(0, 1, false);
    mgr.releaseOpen(1, 1, true);
}

TEST(Consistency, MustInvalidateOnVersionChange)
{
    ConsistencyMgr mgr;
    EXPECT_FALSE(mgr.mustInvalidate(5, 5));
    EXPECT_TRUE(mgr.mustInvalidate(4, 5));
    EXPECT_EQ(1u, mgr.stats().counter("stale_invalidations").get());
}

TEST(Consistency, DropFileForgetsState)
{
    ConsistencyMgr mgr;
    mgr.acquireOpen(0, 1, true, false);
    mgr.dropFile(1);
    EXPECT_EQ(0u, mgr.writerCount(1));
    EXPECT_EQ(Status::Ok, mgr.acquireOpen(1, 1, true, false));
    mgr.releaseOpen(1, 1, true);
}

class WrapFsTest : public ::testing::Test
{
  protected:
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    ConsistencyMgr mgr;
    WrapFs wrap{fs, mgr};
};

TEST_F(WrapFsTest, CpuOpenRegistersClaim)
{
    test::addRamp(fs, "/f", 100);
    hostfs::FileInfo info;
    fs.stat("/f", &info);
    int fd = wrap.open("/f", hostfs::O_RDWR_F);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(1u, mgr.writerCount(info.ino));
    EXPECT_EQ(Status::Ok, wrap.close(fd));
    EXPECT_EQ(0u, mgr.writerCount(info.ino));
}

TEST_F(WrapFsTest, CpuWriterBlockedByGpuWriter)
{
    test::addRamp(fs, "/f", 100);
    hostfs::FileInfo info;
    fs.stat("/f", &info);
    ASSERT_EQ(Status::Ok, mgr.acquireOpen(0, info.ino, true, false));
    Status st;
    EXPECT_LT(wrap.open("/f", hostfs::O_RDWR_F, &st), 0);
    EXPECT_EQ(Status::Busy, st);
    EXPECT_EQ(0u, fs.openCount());   // no fd leaked on rejection
    mgr.releaseOpen(0, info.ino, true);
}

TEST_F(WrapFsTest, ReadersPassThrough)
{
    test::addRamp(fs, "/f", 100);
    int fd = wrap.open("/f", hostfs::O_RDONLY_F);
    ASSERT_GE(fd, 0);
    uint8_t b;
    EXPECT_EQ(1u, wrap.pread(fd, &b, 1, 50).bytes);
    EXPECT_EQ(test::rampByte(50), b);
    wrap.close(fd);
}

} // namespace
} // namespace consistency
} // namespace gpufs
