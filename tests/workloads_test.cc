/** @file Unit tests for the workload generators and CPU baselines. */

#include <gtest/gtest.h>

#include <cstring>

#include "consistency/wrapfs.hh"
#include "gpuutil/gstring.hh"
#include "hostfs/hostfs.hh"
#include "sim/context.hh"
#include "workloads/imagedb.hh"
#include "workloads/matrix.hh"
#include "workloads/textcorpus.hh"

namespace gpufs {
namespace workloads {
namespace {

class WorkloadsTest : public ::testing::Test
{
  protected:
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    consistency::ConsistencyMgr mgr;
    consistency::WrapFs wrap{fs, mgr};
};

// ---- image databases ----

TEST_F(WorkloadsTest, ImageDbBytesMatchElements)
{
    ImageDbSpec spec;
    spec.path = "/db";
    spec.seed = 11;
    spec.numImages = 10;
    spec.dim = 64;
    addImageDb(fs, spec, /*query_seed=*/5);

    int fd = fs.open("/db", hostfs::O_RDONLY_F);
    std::vector<float> img(spec.dim);
    fs.pread(fd, reinterpret_cast<uint8_t *>(img.data()), spec.imageBytes(),
             3 * spec.imageBytes(), 0);
    for (uint32_t e = 0; e < spec.dim; ++e)
        EXPECT_FLOAT_EQ(dbElement(spec.seed, 3, e), img[e]);
    fs.close(fd);
}

TEST_F(WorkloadsTest, PlantedImageReproducesQuery)
{
    ImageDbSpec spec;
    spec.path = "/db";
    spec.seed = 11;
    spec.numImages = 10;
    spec.dim = 64;
    spec.planted[7] = 2;    // query 2 planted at image 7
    addImageDb(fs, spec, 5);

    int fd = fs.open("/db", hostfs::O_RDONLY_F);
    std::vector<float> img(spec.dim);
    fs.pread(fd, reinterpret_cast<uint8_t *>(img.data()), spec.imageBytes(),
             7 * spec.imageBytes(), 0);
    auto q = queryImage(5, 2, spec.dim);
    EXPECT_EQ(0, std::memcmp(q.data(), img.data(), spec.imageBytes()));
    fs.close(fd);
}

TEST_F(WorkloadsTest, DistanceZeroForIdenticalVectors)
{
    auto q = queryImage(5, 0, 256);
    uint32_t examined = 0;
    double d = distanceSq(q.data(), q.data(), 256, 1e-6, &examined);
    EXPECT_DOUBLE_EQ(0.0, d);
    EXPECT_EQ(256u, examined);   // no early exit on a match
}

TEST_F(WorkloadsTest, DistanceEarlyExitsOnMismatch)
{
    auto a = queryImage(5, 0, 4096);
    auto b = queryImage(5, 1, 4096);
    uint32_t examined = 0;
    double d = distanceSq(a.data(), b.data(), 4096, 0.5, &examined);
    EXPECT_GT(d, 0.5);
    EXPECT_LT(examined, 4096u);   // random vectors diverge fast
}

TEST_F(WorkloadsTest, MakePaperDbsGeometry)
{
    auto dbs = makePaperDbs(1, 100, false, 0.01);
    ASSERT_EQ(3u, dbs.size());
    for (const auto &db : dbs) {
        EXPECT_GT(db.numImages, 0u);
        EXPECT_TRUE(db.planted.empty());
    }
    auto planted = makePaperDbs(1, 100, true, 0.01);
    size_t total = 0;
    for (const auto &db : planted)
        total += db.planted.size();
    EXPECT_EQ(100u, total);
}

TEST_F(WorkloadsTest, CpuImageSearchFindsPlantedMatches)
{
    const uint32_t kQueries = 8;
    auto dbs = makePaperDbs(3, kQueries, true, 0.002);
    for (auto &db : dbs)
        addImageDb(fs, db, /*query_seed=*/42);
    Time elapsed = 0;
    auto results = cpuImageSearch(wrap, dbs, 42, kQueries, 1e-6, &elapsed);
    ASSERT_EQ(kQueries, results.size());
    for (uint32_t q = 0; q < kQueries; ++q) {
        ASSERT_TRUE(results[q].found()) << "query " << q;
        // The reported hit must actually be the planted location.
        const auto &db = dbs[results[q].db];
        auto it = db.planted.find(results[q].image);
        ASSERT_NE(db.planted.end(), it);
        EXPECT_EQ(q, it->second);
    }
    EXPECT_GT(elapsed, 0u);
}

TEST_F(WorkloadsTest, CpuImageSearchNoMatchScansEverything)
{
    auto dbs = makePaperDbs(3, 4, false, 0.002);
    for (auto &db : dbs)
        addImageDb(fs, db, 42);
    Time no_match_time = 0;
    auto results = cpuImageSearch(wrap, dbs, 42, 4, 1e-6, &no_match_time);
    for (const auto &r : results)
        EXPECT_FALSE(r.found());
}

// ---- text corpus ----

TEST_F(WorkloadsTest, DictionaryUniqueAndAligned)
{
    Dictionary dict(9, 5000);
    EXPECT_EQ(5000u, dict.size());
    auto img = dict.fileImage();
    EXPECT_EQ(5000u * kDictRecord, img.size());
    // Record 123 round-trips.
    std::string w(reinterpret_cast<char *>(img.data() + 123 * kDictRecord));
    EXPECT_EQ(dict.word(123), w);
    EXPECT_EQ(123, dict.lookup(w));
    EXPECT_EQ(-1, dict.lookup("NOTAWORD"));
}

TEST_F(WorkloadsTest, DictionaryDeterministic)
{
    Dictionary a(7, 100), b(7, 100);
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(a.word(i), b.word(i));
}

TEST_F(WorkloadsTest, TreeCorpusShape)
{
    Dictionary dict(9, 500);
    Corpus c = makeTree(fs, dict, 1, "/src", 50, 512 * 1024);
    EXPECT_EQ(50u, c.paths.size());
    EXPECT_GT(c.totalBytes, 256u * 1024);
    // The list file enumerates every path.
    hostfs::FileInfo info;
    ASSERT_EQ(Status::Ok, fs.stat(c.listPath, &info));
    std::vector<uint8_t> list(info.size);
    int fd = fs.open(c.listPath, hostfs::O_RDONLY_F);
    fs.pread(fd, list.data(), info.size, 0);
    fs.close(fd);
    std::string text(list.begin(), list.end());
    for (const auto &p : c.paths) {
        // Manifest lines are "path size".
        EXPECT_NE(std::string::npos, text.find(p + " "));
    }
}

TEST_F(WorkloadsTest, CountWordsMatchesManualScan)
{
    Dictionary dict(9, 50);
    std::string text = dict.word(3) + " " + dict.word(3) + "\n_x " +
        dict.word(7) + ".";
    std::vector<uint64_t> counts;
    countWords(dict, text.data(), text.size(), counts);
    EXPECT_EQ(2u, counts[3]);
    EXPECT_EQ(1u, counts[7]);
    EXPECT_EQ(0u, counts[0]);
}

TEST_F(WorkloadsTest, CpuGrepCountsDictionaryTokens)
{
    Dictionary dict(9, 200);
    Corpus c = makeSingleFile(fs, dict, 2, "/text", 64 * 1024, 0.9);
    Time elapsed = 0;
    auto totals = cpuGrep(wrap, dict, c, &elapsed);
    uint64_t sum = 0;
    for (uint64_t n : totals)
        sum += n;
    EXPECT_GT(sum, 1000u);   // ~90% of tokens are dictionary words
    EXPECT_GT(elapsed, 0u);

    // Cross-check one word against gwordCount on the raw text.
    hostfs::FileInfo info;
    fs.stat("/text", &info);
    std::vector<uint8_t> raw(info.size);
    int fd = fs.open("/text", hostfs::O_RDONLY_F);
    fs.pread(fd, raw.data(), info.size, 0);
    fs.close(fd);
    const auto &w = dict.word(5);
    EXPECT_EQ(gpuutil::gwordCount(reinterpret_cast<char *>(raw.data()),
                                  raw.size(), w.c_str(), w.size()),
              totals[5]);
}

// ---- matrices ----

TEST_F(WorkloadsTest, MatrixFilesRoundTrip)
{
    MatrixSpec spec = makeMatrix(5, 0.01, "/mat");   // tiny
    spec.cols = 256;                                  // shrink for test
    spec.rows = 8;
    addMatrixFiles(fs, spec);
    int fd = fs.open(spec.matrixPath, hostfs::O_RDONLY_F);
    std::vector<float> row(spec.cols);
    fs.pread(fd, reinterpret_cast<uint8_t *>(row.data()), spec.rowBytes(),
             2 * spec.rowBytes(), 0);
    for (uint32_t c = 0; c < spec.cols; c += 17)
        EXPECT_FLOAT_EQ(matrixElement(spec.seed, 2, c), row[c]);
    fs.close(fd);

    fd = fs.open(spec.vectorPath, hostfs::O_RDONLY_F);
    std::vector<float> vec(spec.cols);
    fs.pread(fd, reinterpret_cast<uint8_t *>(vec.data()),
             spec.cols * sizeof(float), 0, 0);
    double dot = 0;
    for (uint32_t c = 0; c < spec.cols; ++c)
        dot += double(row[c]) * double(vec[c]);
    EXPECT_NEAR(referenceRow(spec, 2), dot, 1e-9);
    fs.close(fd);
}

TEST_F(WorkloadsTest, MakeMatrixRoundsToWholeRows)
{
    MatrixSpec spec = makeMatrix(1, 280.0, "/m");
    EXPECT_EQ(kMatvecCols, spec.cols);
    EXPECT_EQ(spec.rows * spec.rowBytes(), spec.matrixBytes());
    EXPECT_NEAR(280e6, double(spec.matrixBytes()), double(spec.rowBytes()));
}

} // namespace
} // namespace workloads
} // namespace gpufs
