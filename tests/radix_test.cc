/** @file Unit tests for the lock-free buffer-cache radix tree. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "gpufs/frame.hh"
#include "gpufs/radix.hh"

namespace gpufs {
namespace core {
namespace {

class RadixTest : public ::testing::Test
{
  protected:
    RadixTest()
        : arena(64 * 64 * KiB, 64 * KiB),       // 64 frames of 64 KiB
          counters{stats.counter("lockfree"), stats.counter("locked"),
                   stats.counter("reclaimed"), stats.counter("ra_hit"),
                   stats.counter("ra_wasted")},
          cache(arena, counters, false)
    {
    }

    /** Fill-and-pin a page with a recognizable byte. */
    uint32_t
    fill(FileCache &c, uint64_t idx, uint8_t value)
    {
        FPage *p = c.getPage(idx);
        uint32_t frame = kNoFrame;
        if (!c.tryPinReady(*p, idx, &frame)) {
            bool did_init = false;
            Status st = c.initAndPin(*p, idx, &frame, &did_init,
                                     [&](uint8_t *data, uint32_t *valid) {
                                         std::memset(data, value,
                                                     arena.pageSize());
                                         *valid = uint32_t(arena.pageSize());
                                         return Status::Ok;
                                     });
            EXPECT_EQ(Status::Ok, st);
        }
        return frame;
    }

    StatSet stats{"radix_test"};
    FrameArena arena;
    CacheCounters counters;
    FileCache cache;
};

TEST_F(RadixTest, GetPageIsStable)
{
    FPage *a = cache.getPage(12345);
    FPage *b = cache.getPage(12345);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, cache.getPage(12346));
}

TEST_F(RadixTest, LookupsAreLockFreeWithoutContention)
{
    for (int i = 0; i < 100; ++i)
        cache.getPage(i * 1000);
    EXPECT_GT(stats.counter("lockfree").get(), 0u);
    EXPECT_EQ(0u, stats.counter("locked").get());
}

TEST_F(RadixTest, ForceLockedModeCountsLockedAccesses)
{
    FileCache locked(arena, counters, true);
    locked.getPage(1);
    locked.getPage(2);
    EXPECT_GE(stats.counter("locked").get(), 2u);
}

TEST_F(RadixTest, PinMissOnEmptyPage)
{
    FPage *p = cache.getPage(7);
    uint32_t frame;
    EXPECT_FALSE(cache.tryPinReady(*p, 7, &frame));
    EXPECT_EQ(0, p->refs.load());     // pin rolled back
}

TEST_F(RadixTest, InitThenHit)
{
    uint32_t f1 = fill(cache, 7, 0xAB);
    EXPECT_NE(kNoFrame, f1);
    EXPECT_EQ(0xAB, arena.data(f1)[0]);
    cache.unpin(*cache.getPage(7));

    FPage *p = cache.getPage(7);
    uint32_t f2;
    ASSERT_TRUE(cache.tryPinReady(*p, 7, &f2));
    EXPECT_EQ(f1, f2);
    cache.unpin(*p);
}

TEST_F(RadixTest, SecondInitAndPinJustPins)
{
    fill(cache, 3, 0x11);
    FPage *p = cache.getPage(3);
    uint32_t frame;
    bool did_init = true;
    Status st = cache.initAndPin(*p, 3, &frame, &did_init,
                                 [&](uint8_t *, uint32_t *) {
                                     ADD_FAILURE() << "fetch re-ran";
                                     return Status::IoError;
                                 });
    EXPECT_EQ(Status::Ok, st);
    EXPECT_FALSE(did_init);
    EXPECT_EQ(2, p->refs.load());
    cache.unpin(*p);
    cache.unpin(*p);
}

TEST_F(RadixTest, FetchFailureRollsBack)
{
    FPage *p = cache.getPage(9);
    uint32_t frame;
    bool did_init = false;
    uint32_t free_before = arena.freeCount();
    Status st = cache.initAndPin(*p, 9, &frame, &did_init,
                                 [&](uint8_t *, uint32_t *) {
                                     return Status::IoError;
                                 });
    EXPECT_EQ(Status::IoError, st);
    EXPECT_EQ(kPageEmpty, p->state.load());
    EXPECT_EQ(0, p->refs.load());
    EXPECT_EQ(free_before, arena.freeCount());
}

TEST_F(RadixTest, IdentityCheckRejectsRecycledFrame)
{
    uint32_t f = fill(cache, 4, 0x22);
    cache.unpin(*cache.getPage(4));
    // Simulate reclamation + reuse by another file: rewrite identity.
    arena.frame(f).fileUid.store(cache.uid() + 999);
    FPage *p = cache.getPage(4);
    uint32_t out;
    EXPECT_FALSE(cache.tryPinReady(*p, 4, &out));
    EXPECT_EQ(0, p->refs.load());
    arena.frame(f).fileUid.store(cache.uid());   // restore for teardown
}

TEST_F(RadixTest, ReclaimFreesUnpinnedPages)
{
    for (uint64_t i = 0; i < 8; ++i) {
        fill(cache, i, uint8_t(i));
        cache.unpin(*cache.getPage(i));
    }
    uint32_t free_before = arena.freeCount();
    unsigned freed = cache.reclaim(4, false,
                                   [](uint64_t, uint8_t *, uint32_t,
                                      uint32_t) {});
    EXPECT_EQ(4u, freed);
    EXPECT_EQ(free_before + 4, arena.freeCount());
    EXPECT_EQ(4u, stats.counter("reclaimed").get());
}

TEST_F(RadixTest, ReclaimSkipsPinnedPages)
{
    fill(cache, 0, 1);     // stays pinned
    fill(cache, 1, 2);
    cache.unpin(*cache.getPage(1));
    unsigned freed = cache.reclaim(10, false,
                                   [](uint64_t, uint8_t *, uint32_t,
                                      uint32_t) {});
    EXPECT_EQ(1u, freed);
    cache.unpin(*cache.getPage(0));
}

TEST_F(RadixTest, ReclaimFifoTakesOldestNodesFirst)
{
    // Pages 0..63 share leaf 0 (oldest); 64..127 leaf 1 (newest).
    for (uint64_t i = 0; i < 2; ++i) {
        fill(cache, i * 64, uint8_t(i));
        cache.unpin(*cache.getPage(i * 64));
    }
    std::vector<uint64_t> evicted;
    cache.reclaim(1, false,
                  [&](uint64_t idx, uint8_t *, uint32_t, uint32_t) {
                      evicted.push_back(idx);
                  });
    // The writeback callback only fires for dirty pages; verify order
    // via which page became Empty instead.
    FPage *oldest = cache.getPage(0);
    EXPECT_EQ(kPageEmpty, oldest->state.load());
    FPage *newest = cache.getPage(64);
    EXPECT_EQ(kPageReady, newest->state.load());
}

TEST_F(RadixTest, DirtyPagesNeedAllowDirty)
{
    uint32_t f = fill(cache, 5, 0x33);
    cache.noteDirty(arena.frame(f), 0, 100);
    cache.unpin(*cache.getPage(5));
    EXPECT_EQ(1u, cache.dirtyCount());

    EXPECT_EQ(0u, cache.reclaim(1, false,
                                [](uint64_t, uint8_t *, uint32_t,
                                   uint32_t) {}));
    bool wrote = false;
    EXPECT_EQ(1u, cache.reclaim(1, true,
                                [&](uint64_t idx, uint8_t *data, uint32_t lo,
                                    uint32_t hi) {
                                    wrote = true;
                                    EXPECT_EQ(5u, idx);
                                    EXPECT_EQ(0u, lo);
                                    EXPECT_EQ(100u, hi);
                                    EXPECT_EQ(0x33, data[0]);
                                }));
    EXPECT_TRUE(wrote);
    EXPECT_EQ(0u, cache.dirtyCount());
}

TEST_F(RadixTest, NoteDirtyGrowsExtentAndCountsOnce)
{
    uint32_t f = fill(cache, 6, 0);
    PFrame &pf = arena.frame(f);
    cache.noteDirty(pf, 100, 200);
    cache.noteDirty(pf, 50, 120);
    cache.noteDirty(pf, 180, 300);
    uint64_t e = pf.dirtyExtent.load();
    EXPECT_EQ(50u, PFrame::extentLo(e));
    EXPECT_EQ(300u, PFrame::extentHi(e));
    EXPECT_EQ(1u, cache.dirtyCount());
    cache.unpin(*cache.getPage(6));
}

TEST_F(RadixTest, ForEachDirtyVisitsAndClears)
{
    for (uint64_t i = 0; i < 3; ++i) {
        uint32_t f = fill(cache, i, uint8_t(i));
        cache.noteDirty(arena.frame(f), 0, 10);
        cache.unpin(*cache.getPage(i));
    }
    unsigned visited = cache.forEachDirty(
        [](uint64_t, uint8_t *, uint32_t, uint32_t) {});
    EXPECT_EQ(3u, visited);
    EXPECT_EQ(0u, cache.dirtyCount());
    EXPECT_EQ(0u, cache.forEachDirty(
        [](uint64_t, uint8_t *, uint32_t, uint32_t) {}));
}

TEST_F(RadixTest, ForEachDirtySkipsPinnedPages)
{
    uint32_t f = fill(cache, 0, 1);   // pinned
    cache.noteDirty(arena.frame(f), 0, 8);
    EXPECT_EQ(0u, cache.forEachDirty(
        [](uint64_t, uint8_t *, uint32_t, uint32_t) {}));
    cache.unpin(*cache.getPage(0));
}

TEST_F(RadixTest, DropAllReportsPinnedPages)
{
    fill(cache, 0, 1);
    EXPECT_FALSE(cache.dropAll());
    cache.unpin(*cache.getPage(0));
    EXPECT_TRUE(cache.dropAll());
    EXPECT_EQ(arena.numFrames(), arena.freeCount());
}

TEST_F(RadixTest, ResidentPagesCount)
{
    EXPECT_EQ(0u, cache.residentPages());
    for (uint64_t i = 0; i < 5; ++i) {
        fill(cache, i * 64, 1);
        cache.unpin(*cache.getPage(i * 64));
    }
    EXPECT_EQ(5u, cache.residentPages());
}

TEST_F(RadixTest, EvictFrameTargetsSnapshotAndVerifiesIdentity)
{
    for (uint64_t i = 0; i < 4; ++i) {
        fill(cache, i, uint8_t(i));
        cache.unpin(*cache.getPage(i));
    }
    auto noop = [](uint64_t, uint8_t *, uint32_t, uint32_t) {};
    // Evict exactly the frame backing page 3 (the global-LRU policy's
    // snapshot-then-evict protocol).
    uint32_t f3 = cache.getPage(3)->frame.load();
    EXPECT_EQ(1u, cache.evictFrame(f3, false, noop));
    EXPECT_EQ(kPageEmpty, cache.getPage(3)->state.load());
    EXPECT_EQ(kPageReady, cache.getPage(0)->state.load());
    // A stale snapshot entry (frame already freed) is a no-op.
    EXPECT_EQ(0u, cache.evictFrame(f3, false, noop));
    // A pinned page refuses eviction through its frame.
    uint32_t f0;
    FPage *p0 = cache.getPage(0);
    ASSERT_TRUE(cache.tryPinReady(*p0, 0, &f0));
    EXPECT_EQ(0u, cache.evictFrame(f0, false, noop));
    cache.unpin(*p0);
}

TEST_F(RadixTest, UidsAreUniqueAcrossCaches)
{
    FileCache a(arena, counters, false), b(arena, counters, false);
    EXPECT_NE(a.uid(), b.uid());
    EXPECT_NE(a.uid(), cache.uid());
}

// ---- concurrency stress ----

TEST_F(RadixTest, ConcurrentInitOfSamePageRunsFetchOnce)
{
    std::atomic<int> fetches{0};
    constexpr int kThreads = 16;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            FPage *p = cache.getPage(42);
            uint32_t frame;
            if (cache.tryPinReady(*p, 42, &frame)) {
                cache.unpin(*p);
                return;
            }
            bool did_init = false;
            Status st = cache.initAndPin(
                *p, 42, &frame, &did_init,
                [&](uint8_t *data, uint32_t *valid) {
                    fetches.fetch_add(1);
                    std::memset(data, 7, arena.pageSize());
                    *valid = uint32_t(arena.pageSize());
                    return Status::Ok;
                });
            EXPECT_EQ(Status::Ok, st);
            cache.unpin(*p);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(1, fetches.load());
    EXPECT_EQ(0, cache.getPage(42)->refs.load());
}

TEST_F(RadixTest, ConcurrentLookupInsertEvictIsSafe)
{
    // Hammer a working set larger than the arena from many threads
    // while two threads continuously reclaim: exercises the
    // pin-vs-evict Dekker protocol and seqlock traversal together.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> errors{0};
    constexpr uint64_t kPages = 256;      // 4x the 64-frame arena

    auto reader = [&](unsigned seed) {
        SplitMix64 rng(seed);
        while (!stop.load(std::memory_order_relaxed)) {
            uint64_t idx = rng.nextBelow(kPages);
            FPage *p = cache.getPage(idx);
            uint32_t frame;
            if (cache.tryPinReady(*p, idx, &frame)) {
                // Verify identity under pin.
                if (arena.data(frame)[0] != uint8_t(idx))
                    errors.fetch_add(1);
                cache.unpin(*p);
                continue;
            }
            bool did_init = false;
            Status st = cache.initAndPin(
                *p, idx, &frame, &did_init,
                [&](uint8_t *data, uint32_t *valid) {
                    std::memset(data, uint8_t(idx), arena.pageSize());
                    *valid = uint32_t(arena.pageSize());
                    return Status::Ok;
                });
            if (st == Status::NoSpace) {
                cache.reclaim(8, false,
                              [](uint64_t, uint8_t *, uint32_t, uint32_t) {});
                continue;
            }
            if (st != Status::Ok) {
                errors.fetch_add(1);
                continue;
            }
            if (arena.data(frame)[0] != uint8_t(idx))
                errors.fetch_add(1);
            cache.unpin(*p);
        }
    };
    auto evictor = [&] {
        while (!stop.load(std::memory_order_relaxed)) {
            cache.reclaim(4, false,
                          [](uint64_t, uint8_t *, uint32_t, uint32_t) {});
        }
    };

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 12; ++t)
        threads.emplace_back(reader, t + 1);
    threads.emplace_back(evictor);
    threads.emplace_back(evictor);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop.store(true);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(0u, errors.load());
    // All pins released.
    for (uint64_t i = 0; i < kPages; ++i)
        EXPECT_EQ(0, cache.getPage(i)->refs.load()) << "page " << i;
}

} // namespace
} // namespace core
} // namespace gpufs
