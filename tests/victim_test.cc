/**
 * @file
 * Host-RAM victim cache: demotion on eviction, version-gated probes on
 * the miss path, dirty-page ordering (demote only after write-back),
 * read-ahead conservation when wasted pages demote, capacity eviction,
 * the gds frame-alignment counter, and a threaded demote/rehit race
 * (the TSan case).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "gpu/launch.hh"
#include "gpufs/system.hh"
#include "gpufs/victim.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

constexpr uint64_t kPage = 16 * KiB;

std::unique_ptr<GpufsSystem>
victimSystem(uint64_t cache_pages, uint64_t victim_pages,
             unsigned num_gpus = 1,
             ShardPolicy shard = ShardPolicy::Private)
{
    GpuFsParams p;
    p.pageSize = kPage;
    p.cacheBytes = cache_pages * kPage;
    p.readAheadPages = 0;
    p.readAheadPolicy = ReadAheadPolicy::Static;
    p.victimCachePages = victim_pages;
    p.shardPolicy = shard;
    return std::make_unique<GpufsSystem>(num_gpus, p);
}

uint64_t
daemonCounter(GpufsSystem &sys, const char *name)
{
    return sys.daemon().stats().counter(name).get();
}

// ---------------------------------------------------------------------
// Demote, then re-miss: the bytes come back from the tier, identical.
// ---------------------------------------------------------------------

TEST(VictimTest, DemoteThenRehitServesIdenticalBytes)
{
    constexpr uint64_t kPages = 16;
    auto sys = victimSystem(/*cache_pages=*/8, /*victim_pages=*/32);
    test::addRamp(sys->hostFs(), "/v", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/v", G_RDONLY);
    ASSERT_GE(fd, 0);

    // Pass 1 populates the arena and overflows it: evicted clean pages
    // demote into the tier instead of vanishing.
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage,
                                  buf.data()));
    }
    sys->fs().bufferCache().reclaimFrames(ctx, 1024);
    EXPECT_GT(daemonCounter(*sys, "vc_inserts"), 0u);

    // Pass 2 re-misses everything; the daemon serves from the tier and
    // the host FS is never reopened for reads it can avoid.
    uint64_t host_reads = daemonCounter(*sys, "host_read_calls");
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage,
                                  buf.data()));
        for (size_t i = 0; i < buf.size(); i += 509)
            ASSERT_EQ(test::rampByte(pg * kPage + i), buf[i]) << pg;
    }
    EXPECT_GT(daemonCounter(*sys, "vc_hits"), 0u);
    // Tier hits replaced host reads: pass 2 added none for tier-served
    // pages. (Some pages may still be arena-resident; the bound is
    // that hits + leftover misses cover the second pass.)
    EXPECT_LE(daemonCounter(*sys, "host_read_calls") - host_reads,
              kPages - daemonCounter(*sys, "vc_hits") +
                  daemonCounter(*sys, "vc_misses"));
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Version gating: a host-side mutation after demotion makes the entry
// stale — it is dropped, never served.
// ---------------------------------------------------------------------

TEST(VictimTest, WriteThroughMirrorStalesDemotedPages)
{
    // 2-GPU sharded file: the non-owner's gfsync rides PeerWritePages
    // (host write-through + owner mirror), which bumps the host file
    // version. Demoted pages carrying the old version must miss stale.
    constexpr uint64_t kPages = 16;
    auto sys = victimSystem(/*cache_pages=*/8, /*victim_pages=*/64,
                            /*num_gpus=*/2, ShardPolicy::FileAffinity);
    test::addRamp(sys->hostFs(), "/w", kPages * kPage);
    hostfs::FileInfo info;
    ASSERT_EQ(Status::Ok, sys->hostFs().stat("/w", &info));
    unsigned o = sys->shardMap().ownerOf(info.ino, 0);
    unsigned w = 1 - o;
    auto ctx_o = test::makeBlock(sys->device(o));
    auto ctx_w = test::makeBlock(sys->device(w));

    // Owner reads the whole file and demotes it (version v0 tags).
    int ofd = sys->fs(o).gopen(ctx_o, "/w", G_RDONLY);
    ASSERT_GE(ofd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs(o).gread(ctx_o, ofd, pg * kPage, kPage,
                                   buf.data()));
    }
    sys->fs(o).bufferCache().reclaimFrames(ctx_o, 1024);
    ASSERT_GT(daemonCounter(*sys, "vc_inserts"), 0u);
    ASSERT_EQ(Status::Ok, sys->fs(o).gclose(ctx_o, ofd));

    // Non-owner writes page 9 and fsyncs: write-through bumps the host
    // version. Pages OUTSIDE the written range were not explicitly
    // invalidated — the version gate alone must reject them.
    int wfd = sys->fs(w).gopen(ctx_w, "/w", G_RDWR);
    ASSERT_GE(wfd, 0);
    std::vector<uint8_t> patch(200, 0xAB);
    ASSERT_EQ(int64_t(patch.size()),
              sys->fs(w).gwrite(ctx_w, wfd, 9 * kPage + 64,
                                patch.size(), patch.data()));
    ASSERT_EQ(Status::Ok, sys->fs(w).gfsync(ctx_w, wfd));
    ASSERT_EQ(Status::Ok, sys->fs(w).gclose(ctx_w, wfd));

    // Owner re-reads everything cold: every probe is version-stale,
    // every byte comes from the host — including the new 0xAB run.
    int refd = sys->fs(o).gopen(ctx_o, "/w", G_RDONLY);
    ASSERT_GE(refd, 0);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs(o).gread(ctx_o, refd, pg * kPage, kPage,
                                   buf.data()));
        for (size_t i = 0; i < buf.size(); i += 101) {
            uint64_t off = pg * kPage + i;
            uint8_t want = (off >= 9 * kPage + 64 &&
                            off < 9 * kPage + 64 + patch.size())
                ? 0xAB
                : test::rampByte(off);
            ASSERT_EQ(want, buf[i]) << off;
        }
    }
    EXPECT_GT(daemonCounter(*sys, "vc_version_stale"), 0u);
    sys->fs(o).gclose(ctx_o, refd);
}

// ---------------------------------------------------------------------
// Dirty pages demote only AFTER write-back: the tier never holds bytes
// the host hasn't seen, and a rehit returns the post-write content.
// ---------------------------------------------------------------------

TEST(VictimTest, DirtyPageDemotesAfterWritebackAndRehitsNewBytes)
{
    constexpr uint64_t kPages = 12;
    auto sys = victimSystem(/*cache_pages=*/8, /*victim_pages=*/32);
    test::addRamp(sys->hostFs(), "/d", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/d", G_RDWR);
    ASSERT_GE(fd, 0);

    // Dirty a few pages with PARTIAL writes (the read-modify-write
    // fetch initializes the frame, so the post-write frame is fully
    // valid), then force eviction WITHOUT an explicit gfsync: reclaim
    // must write back first, then demote the now-clean bytes with the
    // post-write-back version tag. (Write-allocate pages that were
    // never fetched deliberately do NOT demote: their validBytes is
    // zero — the same conservative rule the peer-serve path applies.)
    constexpr uint64_t kPatchLen = 200, kPatchOff = 64;
    std::vector<uint8_t> patch(kPatchLen, 0x5A);
    for (uint64_t pg = 0; pg < 4; ++pg) {
        ASSERT_EQ(int64_t(kPatchLen),
                  sys->fs().gwrite(ctx, fd, pg * kPage + kPatchOff,
                                   kPatchLen, patch.data()));
    }
    sys->fs().bufferCache().reclaimFrames(ctx, 1024);
    EXPECT_GT(daemonCounter(*sys, "vc_inserts"), 0u);

    // The host is already durable-coherent (write-back happened), so
    // the demoted entries carry the CURRENT version: re-reads may
    // legally serve from the tier — and must return the patched bytes.
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < 4; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage,
                                  buf.data()));
        for (size_t i = 0; i < buf.size(); i += 97) {
            uint8_t want = (i >= kPatchOff && i < kPatchOff + kPatchLen)
                ? 0x5A
                : test::rampByte(pg * kPage + i);
            ASSERT_EQ(want, buf[i]) << pg * kPage + i;
        }
    }
    // Never-written pages still read as ramp.
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 5 * kPage, kPage, buf.data()));
    for (size_t i = 0; i < buf.size(); i += 97)
        ASSERT_EQ(test::rampByte(5 * kPage + i), buf[i]);
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Read-ahead conservation with demotion: wasted speculative pages are
// retired AND demoted; the ra_ ledger still balances exactly.
// ---------------------------------------------------------------------

TEST(VictimTest, WastedReadAheadPagesDemoteAndLedgerBalances)
{
    constexpr uint64_t kPages = 64;
    GpuFsParams p;
    p.pageSize = kPage;
    p.cacheBytes = 32 * kPage;
    p.victimCachePages = 128;
    // Defaults: adaptive read-ahead (speculative pages exist).
    GpufsSystem sys(1, p);
    test::addRamp(sys.hostFs(), "/ra", kPages * kPage);
    auto ctx = test::makeBlock(sys.device(0));
    int fd = sys.fs().gopen(ctx, "/ra", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    // Ramp deep, abandon mid-window: a speculative tail is left
    // unpromoted.
    for (uint64_t pg = 0; pg <= 20; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys.fs().gread(ctx, fd, pg * kPage, kPage,
                                 buf.data()));
    }
    uint64_t issued = sys.fs().stats().counter("ra_issued").get();
    uint64_t hit = sys.fs().stats().counter("ra_hit").get();
    ASSERT_GT(issued, hit);

    sys.fs().bufferCache().reclaimFrames(ctx, 4096);
    // Conservation is untouched by the demotion side effect...
    EXPECT_EQ(issued, sys.fs().stats().counter("ra_hit").get() +
                          sys.fs().stats().counter("ra_wasted").get());
    EXPECT_EQ(issued - hit,
              sys.fs().stats().counter("ra_wasted").get());
    // ...and the wasted pages actually landed in the tier: a re-read
    // of the abandoned tail hits.
    uint64_t hits0 = sys.daemon().stats().counter("vc_hits").get();
    ASSERT_EQ(int64_t(kPage),
              sys.fs().gread(ctx, fd, 21 * kPage, kPage, buf.data()));
    for (size_t i = 0; i < buf.size(); i += 509)
        ASSERT_EQ(test::rampByte(21 * kPage + i), buf[i]);
    EXPECT_GT(sys.daemon().stats().counter("vc_hits").get(), hits0);
    sys.fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Capacity: the tier LRU-evicts and never exceeds its page budget.
// ---------------------------------------------------------------------

TEST(VictimTest, TierCapacityEvictsLruAndBoundsResidency)
{
    constexpr uint64_t kPages = 32;
    constexpr uint64_t kTier = 4;
    auto sys = victimSystem(/*cache_pages=*/8, kTier);
    test::addRamp(sys->hostFs(), "/cap", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/cap", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage,
                                  buf.data()));
    }
    sys->fs().bufferCache().reclaimFrames(ctx, 1024);
    VictimCache *vc = sys->victimCache();
    ASSERT_NE(nullptr, vc);
    EXPECT_LE(vc->residentPages(), kTier);
    EXPECT_EQ(kTier, vc->capacityPages());
    EXPECT_GT(daemonCounter(*sys, "vc_evictions"), 0u);
    EXPECT_EQ(daemonCounter(*sys, "vc_inserts") -
                  daemonCounter(*sys, "vc_evictions"),
              vc->residentPages());
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Direct VictimCache unit coverage: probe gating and invalidation.
// ---------------------------------------------------------------------

TEST(VictimTest, ProbeGatesOnVersionAndValidLength)
{
    StatSet stats("vc_unit");
    VictimCache vc(/*capacity_pages=*/2, /*page_size=*/256, stats);
    std::vector<uint8_t> page(256, 0x11);
    vc.insert(/*ino=*/5, /*page_idx=*/0, /*version=*/7, page.data(),
              /*valid=*/256, /*ready=*/1000);

    std::vector<uint8_t> out(256, 0);
    Time ready = 50;
    // Version mismatch: dropped, counted stale, never served.
    EXPECT_FALSE(vc.probe(5, 0, /*cur_version=*/8, out.data(), 256,
                          &ready));
    EXPECT_EQ(1u, stats.counter("vc_version_stale").get());
    EXPECT_EQ(0u, vc.residentPages());

    // Short entry: an EOF-tail demotion can't serve a full-page probe.
    vc.insert(5, 1, 7, page.data(), /*valid=*/128, 2000);
    EXPECT_FALSE(vc.probe(5, 1, 7, out.data(), 256, &ready));
    // ...but covers a probe that expects only the tail's length, and
    // the ready time is raised to the staging-completion time.
    EXPECT_TRUE(vc.probe(5, 1, 7, out.data(), 128, &ready));
    EXPECT_EQ(Time{2000}, ready);
    EXPECT_EQ(0x11, out[127]);

    // Range invalidation drops overlapping pages only.
    vc.insert(5, 2, 7, page.data(), 256, 0);
    vc.invalidateRange(5, 2 * 256, 256);
    EXPECT_FALSE(vc.probe(5, 2, 7, out.data(), 256, &ready));
    EXPECT_TRUE(vc.probe(5, 1, 7, out.data(), 128, &ready));
    // coversRun: all pages must hit.
    uint64_t expect[2] = {128, 128};
    EXPECT_TRUE(vc.coversRun(5, 1, 1, 7, expect));
    EXPECT_FALSE(vc.coversRun(5, 1, 2, 7, expect));
    vc.dropFile(5);
    EXPECT_EQ(0u, vc.residentPages());
}

// ---------------------------------------------------------------------
// gds frame-arena alignment (HwParams::gdsAlignBytes).
// ---------------------------------------------------------------------

TEST(VictimTest, GdsFrameAlignmentCleanOnDefaultShape)
{
    // 64K pages against the default 4K BAR-window alignment: every
    // frame offset is a multiple, the violation counter must be zero.
    GpuFsParams p;
    p.pageSize = 64 * KiB;
    p.cacheBytes = 64 * 64 * KiB;
    GpufsSystem sys(1, p);
    EXPECT_EQ(0u, sys.fs().stats().counter("gds_unaligned_frames").get());
}

TEST(VictimTest, GdsFrameAlignmentCountsViolations)
{
    // Force misalignment: a 128K BAR window over 64K frames leaves
    // every odd frame offset unaligned — exactly half the arena.
    GpuFsParams p;
    p.pageSize = 64 * KiB;
    p.cacheBytes = 64 * 64 * KiB;
    sim::HwParams hw;
    hw.gdsAlignBytes = 128 * KiB;
    GpufsSystem sys(1, p, hw);
    EXPECT_EQ(32u,
              sys.fs().stats().counter("gds_unaligned_frames").get());
}

// ---------------------------------------------------------------------
// Threaded demote/rehit race (the TSan case): concurrent blocks rescan
// a hot region through an undersized arena; evictions demote while
// other blocks' misses probe the same keys.
// ---------------------------------------------------------------------

TEST(VictimTest, ConcurrentDemoteAndRehitKeepsBytesIdentical)
{
    constexpr uint64_t kPages = 64;
    constexpr unsigned kBlocks = 8, kRounds = 3;
    GpuFsParams p;
    p.pageSize = kPage;
    p.cacheBytes = (kPages / 4) * kPage;
    p.readAheadPages = 0;
    p.readAheadPolicy = ReadAheadPolicy::Static;
    p.victimCachePages = 2 * kPages;
    GpufsSystem sys(1, p);
    test::addRamp(sys.hostFs(), "/race", kPages * kPage);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys.device(0), kBlocks, 512, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int fd = fs.gopen(ctx, "/race", G_RDONLY);
        gpufs_assert(fd >= 0, "gopen failed");
        std::vector<uint8_t> buf(kPage);
        for (unsigned round = 0; round < kRounds; ++round) {
            for (uint64_t pg = 0; pg < kPages; ++pg) {
                // Stagger blocks so demotes and probes collide.
                uint64_t idx = (pg + ctx.blockId() * 7) % kPages;
                if (fs.gread(ctx, fd, idx * kPage, kPage,
                             buf.data()) != int64_t(kPage)) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                for (size_t i = 0; i < buf.size(); i += 1021) {
                    if (buf[i] != test::rampByte(idx * kPage + i))
                        errors.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
        fs.gclose(ctx, fd);
    });
    EXPECT_EQ(0u, errors.load());
    EXPECT_GT(daemonCounter(sys, "vc_hits"), 0u);
}

} // namespace
} // namespace core
} // namespace gpufs
