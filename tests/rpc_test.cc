/** @file Unit tests for the GPU-CPU RPC layer. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "consistency/consistency.hh"
#include "gpu/device.hh"
#include "hostfs/hostfs.hh"
#include "rpc/daemon.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace rpc {
namespace {

class RpcTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        queue = &daemon.attachGpu(dev);
        daemon.start();
    }

    void TearDown() override { daemon.stop(); }

    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    consistency::ConsistencyMgr mgr;
    gpu::GpuDevice dev{sim, 0};
    rpc::CpuDaemon daemon{fs, mgr};
    RpcQueue *queue = nullptr;

    RpcResponse
    openFile(const std::string &path, uint32_t flags, bool write = false)
    {
        RpcRequest req;
        req.op = RpcOp::Open;
        std::strncpy(req.path, path.c_str(), kMaxPath - 1);
        req.flags = flags;
        req.wantsWrite = write;
        return queue->call(req);
    }
};

TEST_F(RpcTest, NopRoundtrip)
{
    RpcRequest req;
    req.op = RpcOp::Nop;
    req.issueTime = 1000;
    RpcResponse resp = queue->call(req);
    EXPECT_EQ(Status::Ok, resp.status);
    // Completion covers submit latency + daemon handling.
    EXPECT_GE(resp.done,
              1000 + sim.params.rpcSubmitLat + sim.params.rpcCpuOverhead);
}

TEST_F(RpcTest, OpenReturnsMetadata)
{
    test::addRamp(fs, "/f", 12345);
    RpcResponse resp = openFile("/f", hostfs::O_RDONLY_F);
    EXPECT_EQ(Status::Ok, resp.status);
    EXPECT_GE(resp.hostFd, 0);
    EXPECT_EQ(12345u, resp.size);
    EXPECT_GT(resp.ino, 0u);

    RpcRequest creq;
    creq.op = RpcOp::Close;
    creq.hostFd = resp.hostFd;
    EXPECT_EQ(Status::Ok, queue->call(creq).status);
    EXPECT_EQ(0u, fs.openCount());
}

TEST_F(RpcTest, OpenMissingFails)
{
    RpcResponse resp = openFile("/missing", hostfs::O_RDONLY_F);
    EXPECT_EQ(Status::NoEnt, resp.status);
}

TEST_F(RpcTest, ReadPageMovesBytesAndChargesPcie)
{
    test::addRamp(fs, "/f", 256 * KiB);
    RpcResponse open = openFile("/f", hostfs::O_RDONLY_F);

    std::vector<uint8_t> page(64 * KiB);
    RpcRequest req;
    req.op = RpcOp::ReadPage;
    req.hostFd = open.hostFd;
    req.offset = 64 * KiB;
    req.len = page.size();
    req.data = page.data();
    req.issueTime = 0;
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(page.size(), resp.bytes);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(test::rampByte(64 * KiB + i), page[i]);
    // PCIe DMA must appear in the completion time.
    EXPECT_GE(resp.done,
              transferTime(page.size(), sim.params.pcieBwH2DMBps));
    EXPECT_EQ(page.size(),
              daemon.stats().counter("bytes_to_gpu").get());
}

TEST_F(RpcTest, ReadPageClampsAtEof)
{
    test::addRamp(fs, "/small", 1000);
    RpcResponse open = openFile("/small", hostfs::O_RDONLY_F);
    std::vector<uint8_t> page(4096);
    RpcRequest req;
    req.op = RpcOp::ReadPage;
    req.hostFd = open.hostFd;
    req.offset = 0;
    req.len = page.size();
    req.data = page.data();
    RpcResponse resp = queue->call(req);
    EXPECT_EQ(1000u, resp.bytes);
}

TEST_F(RpcTest, ReadPagesScattersOneExtentIntoManyBuffers)
{
    test::addRamp(fs, "/b", 256 * KiB);
    hostfs::FileInfo binfo;
    ASSERT_EQ(Status::Ok, fs.stat("/b", &binfo));
    fs.cache().prefault(binfo.ino, 0, 256 * KiB);   // warm: no disk term
    RpcResponse open = openFile("/b", hostfs::O_RDONLY_F);

    constexpr uint64_t kPage = 16 * KiB;
    constexpr unsigned kPages = 4;
    std::vector<std::vector<uint8_t>> pages(
        kPages, std::vector<uint8_t>(kPage, 0));
    RpcRequest req;
    req.op = RpcOp::ReadPages;
    req.hostFd = open.hostFd;
    req.offset = 2 * kPage;
    req.len = kPages * kPage;
    req.pageLen = kPage;
    req.pageCount = kPages;
    for (unsigned i = 0; i < kPages; ++i)
        req.batch[i] = pages[i].data();
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(kPages * kPage, resp.bytes);
    for (unsigned i = 0; i < kPages; ++i) {
        for (uint64_t off = 0; off < kPage; off += 997) {
            ASSERT_EQ(test::rampByte(2 * kPage + i * kPage + off),
                      pages[i][off]) << "page " << i;
        }
    }
    // One DMA for the whole batch: a single dmaSetup, not one per page.
    Time one_dma = sim.params.dmaSetup
        + transferTime(kPages * kPage, sim.params.pcieBwH2DMBps);
    Time per_page_dma = kPages * sim.params.dmaSetup
        + transferTime(kPages * kPage, sim.params.pcieBwH2DMBps);
    EXPECT_GE(resp.done, one_dma);
    EXPECT_LT(resp.done,
              per_page_dma + sim.params.rpcSubmitLat
                  + 2 * sim.params.rpcCpuOverhead
                  + sim.params.preadOverhead
                  + transferTime(kPages * kPage,
                                 sim.params.hostCacheReadMBps));
    EXPECT_EQ(kPages * kPage,
              daemon.stats().counter("bytes_to_gpu").get());
}

TEST_F(RpcTest, ReadPagesClampsAtEofAndRejectsOversizedBatch)
{
    test::addRamp(fs, "/short", 20 * KiB);
    RpcResponse open = openFile("/short", hostfs::O_RDONLY_F);
    constexpr uint64_t kPage = 16 * KiB;
    std::vector<uint8_t> a(kPage, 0xEE), b(kPage, 0xEE);
    RpcRequest req;
    req.op = RpcOp::ReadPages;
    req.hostFd = open.hostFd;
    req.offset = 0;
    req.len = 2 * kPage;
    req.pageLen = kPage;
    req.pageCount = 2;
    req.batch[0] = a.data();
    req.batch[1] = b.data();
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(20 * KiB, resp.bytes);    // clamped at EOF
    EXPECT_EQ(test::rampByte(kPage), b[0]);
    EXPECT_EQ(0xEE, b[4 * KiB]);        // past EOF: untouched

    req.pageCount = kMaxBatchPages + 1;
    EXPECT_EQ(Status::Inval, queue->call(req).status);
}

TEST_F(RpcTest, WriteBackFullExtent)
{
    test::addRamp(fs, "/w", 4096);
    RpcResponse open = openFile("/w", hostfs::O_RDWR_F, true);
    std::vector<uint8_t> page(4096, 0xCD);
    RpcRequest req;
    req.op = RpcOp::WriteBack;
    req.hostFd = open.hostFd;
    req.offset = 0;
    req.len = page.size();
    req.data = page.data();
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(4096u, resp.bytes);

    int fd = fs.open("/w", hostfs::O_RDONLY_F);
    uint8_t b;
    fs.pread(fd, &b, 1, 100);
    EXPECT_EQ(0xCD, b);
    fs.close(fd);
}

TEST_F(RpcTest, DiffAgainstZerosPreservesOtherWritersBytes)
{
    // Host file already contains 0xAA everywhere (another writer's
    // data); our page is zero except a small run. Only the run may
    // land (O_GWRONCE merge, §3.1).
    test::addBytes(fs, "/m", std::vector<uint8_t>(4096, 0xAA));
    RpcResponse open = openFile("/m", hostfs::O_RDWR_F, true);
    std::vector<uint8_t> page(4096, 0);
    for (int i = 100; i < 200; ++i)
        page[i] = 0x55;
    RpcRequest req;
    req.op = RpcOp::WriteBack;
    req.hostFd = open.hostFd;
    req.offset = 0;
    req.len = page.size();
    req.data = page.data();
    req.diffAgainstZeros = true;
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(100u, resp.bytes);    // only the non-zero run moved

    int fd = fs.open("/m", hostfs::O_RDONLY_F);
    std::vector<uint8_t> check(4096);
    fs.pread(fd, check.data(), check.size(), 0);
    EXPECT_EQ(0xAA, check[99]);
    EXPECT_EQ(0x55, check[100]);
    EXPECT_EQ(0x55, check[199]);
    EXPECT_EQ(0xAA, check[200]);
    fs.close(fd);
}

TEST_F(RpcTest, GwronceWriteBackIsOneGatheredWrite)
{
    // Two non-zero runs in one O_GWRONCE page must land as a single
    // gathered pwritev: one version bump and one syscall charge — not
    // per-run version churn or per-run pwrite overhead.
    test::addBytes(fs, "/g", std::vector<uint8_t>(4096, 0));
    RpcResponse open = openFile("/g", hostfs::O_RDWR_F, true);
    hostfs::FileInfo before;
    ASSERT_EQ(Status::Ok, fs.stat("/g", &before));

    std::vector<uint8_t> page(4096, 0);
    for (int i = 100; i < 200; ++i)
        page[i] = 0x11;
    for (int i = 1000; i < 1100; ++i)
        page[i] = 0x22;
    RpcRequest req;
    req.op = RpcOp::WriteBack;
    req.hostFd = open.hostFd;
    req.offset = 0;
    req.len = page.size();
    req.data = page.data();
    req.diffAgainstZeros = true;
    req.issueTime = 0;
    RpcResponse resp = queue->call(req);
    ASSERT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(200u, resp.bytes);

    // Regression: exactly ONE version step for the gathered write.
    hostfs::FileInfo after;
    ASSERT_EQ(Status::Ok, fs.stat("/g", &after));
    EXPECT_EQ(before.version + 1, after.version);

    // Regression: completion charges exactly one pwrite syscall
    // overhead for both runs (open's cpuIo slot precedes ours).
    Time t0 = sim.params.rpcSubmitLat + 2 * sim.params.rpcCpuOverhead;
    Time dma = sim.params.dmaSetup
        + transferTime(page.size(), sim.params.pcieBwD2HMBps);
    Time copy = sim.params.preadOverhead
        + transferTime(200, sim.params.hostCacheWriteMBps);
    EXPECT_EQ(t0 + dma + copy, resp.done);

    // Both runs landed; the zero gap between them stayed untouched.
    int fd = fs.open("/g", hostfs::O_RDONLY_F);
    std::vector<uint8_t> check(4096);
    fs.pread(fd, check.data(), check.size(), 0);
    EXPECT_EQ(0x11, check[150]);
    EXPECT_EQ(0x22, check[1050]);
    EXPECT_EQ(0x00, check[500]);
    fs.close(fd);
}

TEST_F(RpcTest, StatAndUnlink)
{
    test::addRamp(fs, "/s", 777);
    RpcRequest req;
    req.op = RpcOp::Stat;
    std::strncpy(req.path, "/s", kMaxPath - 1);
    RpcResponse resp = queue->call(req);
    EXPECT_EQ(Status::Ok, resp.status);
    EXPECT_EQ(777u, resp.size);

    req.op = RpcOp::Unlink;
    EXPECT_EQ(Status::Ok, queue->call(req).status);
    req.op = RpcOp::Stat;
    EXPECT_EQ(Status::NoEnt, queue->call(req).status);
}

TEST_F(RpcTest, ConsistencyClaimsFollowOpenClose)
{
    test::addRamp(fs, "/c", 10);
    RpcResponse a = openFile("/c", hostfs::O_RDWR_F, true);
    ASSERT_EQ(Status::Ok, a.status);
    EXPECT_EQ(1u, mgr.writerCount(a.ino));
    RpcRequest creq;
    creq.op = RpcOp::Close;
    creq.hostFd = a.hostFd;
    queue->call(creq);
    EXPECT_EQ(0u, mgr.writerCount(a.ino));
}

TEST_F(RpcTest, ManyConcurrentCallersAllServed)
{
    test::addRamp(fs, "/p", 1 * MiB);
    RpcResponse open = openFile("/p", hostfs::O_RDONLY_F);
    constexpr int kThreads = 16, kCalls = 200;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<uint8_t> buf(4096);
            for (int i = 0; i < kCalls; ++i) {
                RpcRequest req;
                req.op = RpcOp::ReadPage;
                req.hostFd = open.hostFd;
                req.offset = ((t * kCalls + i) * 4096ull) % (1 * MiB);
                req.len = buf.size();
                req.data = buf.data();
                RpcResponse resp = queue->call(req);
                if (resp.status != Status::Ok || resp.bytes != buf.size())
                    failures.fetch_add(1);
                if (buf[0] != test::rampByte(req.offset))
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(0, failures.load());
    EXPECT_GE(daemon.stats().counter("requests_served").get(),
              uint64_t(kThreads) * kCalls);
}

TEST_F(RpcTest, PipelinedRequestsOverlapDiskAndDma)
{
    // Two reads issued at t=0: the second's host I/O should overlap
    // the first's DMA, so total < strict serial sum.
    test::addRamp(fs, "/o", 8 * MiB);
    fs.cache().prefault(1, 0, 8 * MiB);   // warm (ino 1: first file)
    RpcResponse open = openFile("/o", hostfs::O_RDONLY_F);
    std::vector<uint8_t> a(4 * MiB), b(4 * MiB);

    RpcResponse ra, rb;
    std::thread t1([&] {
        RpcRequest req;
        req.op = RpcOp::ReadPage;
        req.hostFd = open.hostFd;
        req.offset = 0;
        req.len = a.size();
        req.data = a.data();
        req.issueTime = 0;
        ra = queue->call(req);
    });
    std::thread t2([&] {
        RpcRequest req;
        req.op = RpcOp::ReadPage;
        req.hostFd = open.hostFd;
        req.offset = 4 * MiB;
        req.len = b.size();
        req.data = b.data();
        req.issueTime = 0;
        rb = queue->call(req);
    });
    t1.join();
    t2.join();
    Time io = transferTime(4 * MiB, sim.params.hostCacheReadMBps);
    Time dma = transferTime(4 * MiB, sim.params.pcieBwH2DMBps);
    Time serial_sum = 2 * (io + dma);
    EXPECT_LT(std::max(ra.done, rb.done), serial_sum);
}

TEST(DoorbellCoalescing, BurstRingsOnceThenQuietEdgeRingsAgain)
{
    // Standalone queue, no daemon: the test IS the daemon side, so the
    // ring/suppress edges are deterministic.
    std::atomic<uint64_t> doorbell{0};
    RpcQueue q(doorbell);
    RpcRequest req;
    req.op = RpcOp::Nop;

    RpcSlot *held[8];
    for (int i = 0; i < 8; ++i) {
        held[i] = q.trySubmit(req);
        ASSERT_NE(nullptr, held[i]);
    }
    // One quiet->busy edge: the burst rang once, seven rings elided.
    EXPECT_EQ(1u, doorbell.load());
    EXPECT_EQ(7u, q.doorbellRingsSuppressed());

    // The whole burst arrives as ONE sweep (aggregation's feedstock).
    RpcSlot *batch[kQueueSlots];
    unsigned n = q.pollAll(batch, kQueueSlots);
    EXPECT_EQ(8u, n);
    RpcResponse resp;
    resp.status = Status::Ok;
    for (unsigned i = 0; i < n; ++i)
        RpcQueue::complete(*batch[i], resp);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(Status::Ok, q.collect(*held[i]).status);

    // Quiet again: the next submit is a new busy edge and must ring —
    // suppression never strands a request behind a parked daemon.
    RpcSlot *s = q.trySubmit(req);
    ASSERT_NE(nullptr, s);
    EXPECT_EQ(2u, doorbell.load());
    EXPECT_EQ(7u, q.doorbellRingsSuppressed());
    ASSERT_EQ(1u, q.pollAll(batch, kQueueSlots));
    RpcQueue::complete(*batch[0], resp);
    EXPECT_EQ(Status::Ok, q.collect(*s).status);
}

TEST(RpcAggregation, CrossSlotReadPagesShareOneHostRead)
{
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    consistency::ConsistencyMgr mgr;
    gpu::GpuDevice dev{sim, 0};
    CpuDaemon daemon{fs, mgr};
    RpcQueue &q = daemon.attachGpu(dev);

    constexpr uint64_t kPage = 16 * KiB;
    test::addRamp(fs, "/agg", 16 * kPage);
    int host_fd = fs.open("/agg", hostfs::O_RDONLY_F);
    ASSERT_GE(host_fd, 0);

    // Four concurrent prefetch batches from different slots on the
    // same file, submitted split-phase BEFORE the daemon starts: they
    // all land in its first pollAll sweep — the aggregation window.
    // The last batch straddles EOF to pin per-member byte fan-out.
    constexpr unsigned kReqs = 4, kPagesEach = 2;
    const uint64_t offsets[kReqs] = {0, 4 * kPage, 8 * kPage, 15 * kPage};
    std::vector<std::vector<uint8_t>> pages(
        kReqs * kPagesEach, std::vector<uint8_t>(kPage, 0xEE));
    RpcSlot *held[kReqs];
    for (unsigned r = 0; r < kReqs; ++r) {
        RpcRequest req;
        req.op = RpcOp::ReadPages;
        req.hostFd = host_fd;
        req.offset = offsets[r];
        req.len = kPagesEach * kPage;
        req.pageLen = kPage;
        req.pageCount = kPagesEach;
        req.issueTime = 10 * r;
        for (unsigned i = 0; i < kPagesEach; ++i)
            req.batch[i] = pages[r * kPagesEach + i].data();
        held[r] = q.trySubmit(req);
        ASSERT_NE(nullptr, held[r]);
    }
    daemon.start();
    for (unsigned r = 0; r < kReqs; ++r) {
        RpcResponse resp = q.collect(*held[r]);
        ASSERT_EQ(Status::Ok, resp.status);
        // Per-member completion: full batches get all their bytes, the
        // EOF straddler exactly the one resident page.
        uint64_t expect = r == 3 ? kPage : kPagesEach * kPage;
        EXPECT_EQ(expect, resp.bytes) << "req " << r;
    }
    for (unsigned r = 0; r < kReqs; ++r) {
        for (unsigned i = 0; i < kPagesEach; ++i) {
            if (offsets[r] + i * kPage >= 16 * kPage) {
                EXPECT_EQ(0xEE, pages[r * kPagesEach + i][0]);  // past EOF
                continue;
            }
            for (uint64_t off = 0; off < kPage; off += 1021) {
                ASSERT_EQ(test::rampByte(offsets[r] + i * kPage + off),
                          pages[r * kPagesEach + i][off])
                    << "req " << r << " page " << i;
            }
        }
    }

    // The four RPCs rode ONE gathered host read: three coalesced away.
    EXPECT_EQ(uint64_t(kReqs) - 1,
              daemon.stats().counter("coalesced_rpcs").get());
    EXPECT_EQ(1u, daemon.stats().counter("host_read_calls").get());
    EXPECT_EQ(uint64_t(kReqs),
              daemon.stats().counter("requests_served").get());
    daemon.stop();
    fs.close(host_fd);
}

// With the sweep linger armed, an under-filled gather group waits one
// extra sweep for a straggler the occupancy census can already see,
// instead of paying a lone host read — the staggered-burst shape one
// block's split-phase prefetch produces when its second slot is still
// being filled as the daemon claims the first.
TEST(RpcAggregation, SweepLingerMergesStaggeredBurstIntoOneHostRead)
{
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    consistency::ConsistencyMgr mgr;
    gpu::GpuDevice dev{sim, 0};
    CpuDaemon daemon{fs, mgr};
    RpcQueue &q = daemon.attachGpu(dev);

    constexpr uint64_t kPage = 16 * KiB;
    test::addRamp(fs, "/stagger", 8 * kPage);
    int host_fd = fs.open("/stagger", hostfs::O_RDONLY_F);
    ASSERT_GE(host_fd, 0);

    // Straggler slot B is allocated (Filling: visible to the census,
    // invisible to pollAll) BEFORE the daemon starts; slot A is fully
    // published. Without linger the first sweep reads for A alone and
    // B costs a SECOND host read.
    RpcSlot *b = q.beginFill();
    ASSERT_NE(nullptr, b);

    std::vector<uint8_t> pa(kPage, 0xEE), pb(kPage, 0xEE);
    RpcRequest ra;
    ra.op = RpcOp::ReadPages;
    ra.hostFd = host_fd;
    ra.offset = 0;
    ra.len = kPage;
    ra.pageLen = kPage;
    ra.pageCount = 1;
    ra.issueTime = 10;
    ra.batch[0] = pa.data();
    RpcSlot *a = q.trySubmit(ra);
    ASSERT_NE(nullptr, a);

    daemon.setSweepLinger(1000000);     // 1ms virtual deadline
    daemon.start();

    // Give the daemon real time to claim A and park it against the
    // Filling census entry, then land the straggler. (If the publish
    // wins the race instead, both slots meet in one sweep — the same
    // single gathered read either way.)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RpcRequest rb = ra;
    rb.offset = 4 * kPage;
    rb.issueTime = 20;
    rb.batch[0] = pb.data();
    q.publish(b, rb);

    RpcResponse resp_a = q.collect(*a);
    RpcResponse resp_b = q.collect(*b);
    ASSERT_EQ(Status::Ok, resp_a.status);
    ASSERT_EQ(Status::Ok, resp_b.status);
    EXPECT_EQ(kPage, resp_a.bytes);
    EXPECT_EQ(kPage, resp_b.bytes);
    for (uint64_t off = 0; off < kPage; off += 1021) {
        ASSERT_EQ(test::rampByte(off), pa[off]) << off;
        ASSERT_EQ(test::rampByte(4 * kPage + off), pb[off]) << off;
    }

    // The parked slot merged with the straggler: ONE gathered host
    // read for the two RPCs (one coalesced away) instead of two.
    EXPECT_EQ(1u, daemon.stats().counter("host_read_calls").get());
    EXPECT_EQ(1u, daemon.stats().counter("coalesced_rpcs").get());
    EXPECT_EQ(2u, daemon.stats().counter("requests_served").get());
    daemon.stop();
    fs.close(host_fd);
}

} // namespace
} // namespace rpc
} // namespace gpufs
