/**
 * @file
 * Adaptive per-file read-ahead: the tracker state machine (ramp,
 * collapse, stride, throttle, ghost re-grow), the prefetch-feedback
 * accounting invariants, shard-group clipping, and the adaptive-vs-
 * static RPC-count pins that show "adaptive never hurts".
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpufs/readahead.hh"
#include "gpufs/system.hh"
#include "rpc/daemon.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

constexpr unsigned kMaxWin = 32;    // GpuFsParams::maxReadAheadPages

// ---------------------------------------------------------------------
// Tracker state machine (pure unit tests).
// ---------------------------------------------------------------------

TEST(ReadAheadTrackerTest, SequentialRampReachesMaxWindow)
{
    ReadAheadTracker t;
    // Two misses establish the stride; the window opens on the run's
    // confirmation and doubles per subsequent miss up to the cap.
    EXPECT_EQ(0u, t.onMiss(0, 0, kMaxWin).window);
    EXPECT_EQ(0u, t.onMiss(1, 1, kMaxWin).window);
    EXPECT_EQ(2u, t.onMiss(2, 2, kMaxWin).window);
    EXPECT_EQ(4u, t.onMiss(3, 3, kMaxWin).window);
    EXPECT_EQ(8u, t.onMiss(4, 4, kMaxWin).window);
    EXPECT_EQ(16u, t.onMiss(5, 5, kMaxWin).window);
    EXPECT_EQ(32u, t.onMiss(6, 6, kMaxWin).window);
    EXPECT_EQ(32u, t.onMiss(7, 7, kMaxWin).window);     // capped
    EXPECT_EQ(1, t.onMiss(8, 8, kMaxWin).stride);
}

TEST(ReadAheadTrackerTest, RandomAccessCollapsesWindowImmediately)
{
    ReadAheadTracker t;
    for (uint64_t i = 0; i <= 6; ++i)
        t.onMiss(i, i, kMaxWin);
    EXPECT_EQ(32u, t.window());
    // One jump beyond the stride-recognition range kills the window.
    EXPECT_EQ(0u, t.onMiss(1000, 1000, kMaxWin).window);
    EXPECT_EQ(0u, t.window());
    // And further random misses keep it closed.
    EXPECT_EQ(0u, t.onMiss(37, 37, kMaxWin).window);
    EXPECT_EQ(0u, t.onMiss(512, 512, kMaxWin).window);
}

TEST(ReadAheadTrackerTest, PatternBreakWithinStrideRangeReRamps)
{
    ReadAheadTracker t;
    for (uint64_t i = 0; i <= 4; ++i)
        t.onMiss(i, i, kMaxWin);
    EXPECT_EQ(8u, t.window());
    // A nearby jump reads as a NEW candidate stride: the old window
    // dies, the ramp restarts once the new stride confirms.
    EXPECT_EQ(0u, t.onMiss(8, 8, kMaxWin).window);      // delta 4
    EXPECT_EQ(2u, t.onMiss(12, 12, kMaxWin).window);    // 4 confirmed
    EXPECT_EQ(4, t.onMiss(16, 16, kMaxWin).stride);
}

TEST(ReadAheadTrackerTest, StrideTwoDetectedAndWindowCapped)
{
    ReadAheadTracker t;
    t.onMiss(0, 0, kMaxWin);
    t.onMiss(2, 2, kMaxWin);                            // candidate
    ReadAheadTracker::Decision d = t.onMiss(4, 4, kMaxWin);
    EXPECT_EQ(2u, d.window);
    EXPECT_EQ(2, d.stride);
    // Strided prefetch is one page per RPC: the window stays capped
    // below the contiguous ramp's ceiling.
    for (uint64_t i = 6; i <= 30; i += 2)
        d = t.onMiss(i, i, kMaxWin);
    EXPECT_EQ(ReadAheadTracker::kStridedWindowCap, d.window);

    // Backward scans are strides too.
    ReadAheadTracker back;
    back.onMiss(100, 100, kMaxWin);
    back.onMiss(99, 99, kMaxWin);
    d = back.onMiss(98, 98, kMaxWin);
    EXPECT_EQ(2u, d.window);
    EXPECT_EQ(-1, d.stride);
}

TEST(ReadAheadTrackerTest, WasteStreakThrottlesAndGhostHitRegrows)
{
    ReadAheadTracker t;
    for (uint64_t i = 0; i <= 4; ++i)
        t.onMiss(i, i, kMaxWin);
    t.notePublished(8);
    EXPECT_EQ(8u, t.window());
    // Eight prefetched pages die cold with no promotion: throttle.
    for (uint64_t idx = 5; idx < 5 + ReadAheadTracker::kThrottleStreak;
         ++idx) {
        t.noteWasted(idx);
    }
    EXPECT_TRUE(t.throttled());
    EXPECT_EQ(0u, t.window());
    // Throttled files keep tracking but grant no window...
    EXPECT_EQ(0u, t.onMiss(100, 100, kMaxWin).window);
    EXPECT_EQ(0u, t.onMiss(101, 101, kMaxWin).window);
    EXPECT_EQ(0u, t.onMiss(102, 102, kMaxWin).window);
    // ...until a miss lands on a recently-wasted page: proof the
    // prefetch was right and only died early. The throttle lifts and
    // the ramp restarts.
    ReadAheadTracker::Decision d = t.onMiss(7, 7, kMaxWin);
    EXPECT_TRUE(d.ghost);
    EXPECT_GE(d.window, ReadAheadTracker::kInitWindow);
    EXPECT_FALSE(t.throttled());
    EXPECT_EQ(1u, t.ghostHits());
}

TEST(ReadAheadTrackerTest, LongFreshRunAlsoLiftsThrottle)
{
    ReadAheadTracker t;
    for (uint64_t i = 0; i <= 3; ++i)
        t.onMiss(i, i, kMaxWin);
    for (unsigned k = 0; k < ReadAheadTracker::kThrottleStreak; ++k)
        t.noteWasted(1000 + k);
    ASSERT_TRUE(t.throttled());
    // A long sequential run far from the ghosts (a phase change) earns
    // the window back without a ghost hit.
    uint64_t idx = 5000;
    ReadAheadTracker::Decision d;
    for (unsigned k = 0; k <= ReadAheadTracker::kRethrottleRun; ++k)
        d = t.onMiss(idx + k, idx + k, kMaxWin);
    EXPECT_FALSE(t.throttled());
    EXPECT_GT(d.window, 0u);
}

TEST(ReadAheadTrackerTest, AdvanceKeepsContinuityAcrossPrefetchedSpan)
{
    ReadAheadTracker t;
    t.onMiss(0, 0, kMaxWin);
    t.onMiss(1, 1, kMaxWin);
    EXPECT_EQ(2u, t.onMiss(2, 2, kMaxWin).window);
    // The decision point prefetched pages 3..4 and advanced; the next
    // miss at 5 must read as a continuation, not a +3 jump.
    t.advance(4);
    EXPECT_EQ(4u, t.onMiss(5, 5, kMaxWin).window);
}

TEST(ReadAheadTrackerTest, PromotionResetsWasteStreak)
{
    ReadAheadTracker t;
    t.notePublished(ReadAheadTracker::kThrottleStreak + 2);
    for (unsigned k = 0; k + 1 < ReadAheadTracker::kThrottleStreak; ++k)
        t.noteWasted(k);
    EXPECT_FALSE(t.throttled());
    t.noteHit();    // one promotion interrupts the cold streak
    t.noteWasted(99);
    EXPECT_FALSE(t.throttled());
    EXPECT_EQ(1u, t.hits());
    EXPECT_EQ(ReadAheadTracker::kThrottleStreak, t.wasted());
}

// ---------------------------------------------------------------------
// End-to-end: the default (adaptive) policy through the full stack.
// ---------------------------------------------------------------------

std::unique_ptr<GpufsSystem>
adaptiveSystem(uint64_t cache_bytes = 16 * MiB)
{
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = cache_bytes;
    // Defaults: readAheadPages = 0, readAheadPolicy = Adaptive.
    return std::make_unique<GpufsSystem>(1, p);
}

uint64_t
counterOf(GpuFs &fs, const char *name)
{
    return fs.stats().counter(name).get();
}

TEST(ReadAheadE2eTest, SequentialScanRampsAndNeverWastes)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 64;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/seq", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/seq", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
        for (size_t i = 0; i < buf.size(); i += 1021)
            ASSERT_EQ(test::rampByte(pg * kPage + i), buf[i]);
    }
    // Every page fetched exactly once, far fewer RPCs than pages.
    EXPECT_EQ(kPages, counterOf(sys->fs(), "cache_misses"));
    uint64_t rpcs = counterOf(sys->fs(), "read_rpcs") +
        counterOf(sys->fs(), "batch_read_rpcs");
    EXPECT_LE(rpcs * 2, kPages);
    // The window ramped to the ceiling and nothing was wasted: every
    // speculative page was promoted by the scan behind it.
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    EXPECT_EQ(32u, t->window());
    EXPECT_GT(counterOf(sys->fs(), "ra_issued"), 0u);
    EXPECT_EQ(counterOf(sys->fs(), "ra_issued"),
              counterOf(sys->fs(), "ra_hit"));
    EXPECT_EQ(0u, counterOf(sys->fs(), "ra_wasted"));
    sys->fs().gclose(ctx, fd);
}

TEST(ReadAheadE2eTest, RandomAccessCollapsesToZeroWithinFewMisses)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 256;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/rand", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/rand", G_RDONLY);
    ASSERT_GE(fd, 0);
    // Far-apart single-page reads: the pattern never confirms, so the
    // window stays shut and not one speculative page is issued.
    const uint64_t order[] = {200, 17, 140, 3, 77, 251, 33, 180, 99, 60};
    std::vector<uint8_t> buf(kPage);
    unsigned unique = 0;
    for (uint64_t pg : order) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
        ++unique;
    }
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    EXPECT_EQ(0u, t->window());
    EXPECT_EQ(0u, counterOf(sys->fs(), "ra_issued"));
    // Fetch exactly what was touched — the fig6 regression criterion.
    EXPECT_EQ(unique, counterOf(sys->fs(), "cache_misses"));
    sys->fs().gclose(ctx, fd);
}

TEST(ReadAheadE2eTest, StrideTwoScanFetchesOnlyTouchedPages)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 64;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/stride", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/stride", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; pg += 2) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
        for (size_t i = 0; i < buf.size(); i += 997)
            ASSERT_EQ(test::rampByte(pg * kPage + i), buf[i]);
    }
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    EXPECT_EQ(2, t->stride());
    EXPECT_GT(t->window(), 0u);
    EXPECT_GT(counterOf(sys->fs(), "ra_issued"), 0u);
    // The defining property: the gap pages were NEVER fetched — a
    // contiguous window here would transfer twice the data.
    EXPECT_EQ(kPages / 2, counterOf(sys->fs(), "cache_misses"));
    EXPECT_EQ(0u, counterOf(sys->fs(), "ra_wasted"));
    sys->fs().gclose(ctx, fd);
}

TEST(ReadAheadE2eTest, GhostHitRegrowsThrottledWindow)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 64;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/ghost", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/ghost", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    // Scan pages 0..10: the ramp reaches window 8 at the miss on page
    // 10, which prefetches 11..18 — we stop reading there, so exactly
    // those 8 speculative pages sit unpromoted.
    for (uint64_t pg = 0; pg <= 10; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
    }
    ASSERT_EQ(ReadAheadTracker::kThrottleStreak,
              counterOf(sys->fs(), "ra_issued") -
                  counterOf(sys->fs(), "ra_hit"));

    // Evict everything: the 8 never-pinned speculative frames die cold
    // — enough of a streak to throttle the file.
    sys->fs().bufferCache().reclaimFrames(ctx, 1024);
    EXPECT_EQ(uint64_t(ReadAheadTracker::kThrottleStreak),
              counterOf(sys->fs(), "ra_wasted"));
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    EXPECT_TRUE(t->throttled());
    EXPECT_EQ(0u, t->window());

    // Resume the scan: the first miss lands on page 11 — a ghost. The
    // throttle lifts, the window re-grows, prefetch resumes.
    uint64_t issued_before = counterOf(sys->fs(), "ra_issued");
    for (uint64_t pg = 11; pg < kPages; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
        for (size_t i = 0; i < buf.size(); i += 1021)
            ASSERT_EQ(test::rampByte(pg * kPage + i), buf[i]);
    }
    EXPECT_GE(counterOf(sys->fs(), "ra_ghost_hits"), 1u);
    EXPECT_FALSE(t->throttled());
    EXPECT_GT(t->window(), 0u);
    EXPECT_GT(counterOf(sys->fs(), "ra_issued"), issued_before);
    sys->fs().gclose(ctx, fd);
}

TEST(ReadAheadE2eTest, WastedCounterMatchesEvictedUnusedExactly)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 96;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/acct", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/acct", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    // Ramp deep into the file, then abandon the scan mid-window so a
    // tail of speculative pages is left unread.
    for (uint64_t pg = 0; pg <= 40; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
    }
    uint64_t issued = counterOf(sys->fs(), "ra_issued");
    uint64_t hit = counterOf(sys->fs(), "ra_hit");
    ASSERT_GT(issued, hit);     // unread speculative tail exists

    // Evict the whole cache: every published speculative page must now
    // be accounted — promoted earlier, or wasted by this eviction.
    sys->fs().bufferCache().reclaimFrames(ctx, 4096);
    EXPECT_EQ(issued, counterOf(sys->fs(), "ra_hit") +
                          counterOf(sys->fs(), "ra_wasted"));
    EXPECT_EQ(issued - hit, counterOf(sys->fs(), "ra_wasted"));
    // The per-file tracker agrees with the StatSet.
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    EXPECT_EQ(t->issued(), t->hits() + t->wasted());
    EXPECT_EQ(0, t->specResident());
    sys->fs().gclose(ctx, fd);
}

TEST(ReadAheadE2eTest, VectoredSequentialReadsRampToo)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 64;
    auto sys = adaptiveSystem();
    test::addRamp(sys->hostFs(), "/vec", kPages * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/vec", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(4 * kPage);
    for (uint64_t pg = 0; pg < kPages; pg += 4) {
        GIoVec iov{pg * kPage, buf.size(), buf.data()};
        ASSERT_EQ(int64_t(buf.size()), sys->fs().greadv(ctx, fd, &iov, 1));
        for (size_t i = 0; i < buf.size(); i += 2039)
            ASSERT_EQ(test::rampByte(pg * kPage + i), buf[i]);
    }
    // Demand runs feed the tracker as one miss each, so the 4-page
    // chunks read as a sequential stream and the window opens.
    EXPECT_GT(counterOf(sys->fs(), "ra_issued"), 0u);
    EXPECT_EQ(kPages, counterOf(sys->fs(), "cache_misses"));
    EXPECT_EQ(0u, counterOf(sys->fs(), "ra_wasted"));
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// The never-hurts pins: adaptive vs static RPC counts.
// ---------------------------------------------------------------------

struct ScanCounts {
    uint64_t readRpcs;
    uint64_t batchRpcs;
    uint64_t total() const { return readRpcs + batchRpcs; }
};

ScanCounts
scan256(unsigned static_ra, ReadAheadPolicy policy)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPages = 256;
    GpuFsParams p;
    p.pageSize = kPage;
    p.cacheBytes = (kPages + 64) * kPage;
    p.readAheadPages = static_ra;
    p.readAheadPolicy = policy;
    GpufsSystem sys(1, p);
    test::addRamp(sys.hostFs(), "/s256", kPages * kPage);
    auto ctx = test::makeBlock(sys.device(0));
    int fd = sys.fs().gopen(ctx, "/s256", G_RDONLY);
    EXPECT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t pg = 0; pg < kPages; ++pg) {
        EXPECT_EQ(int64_t(kPage),
                  sys.fs().gread(ctx, fd, pg * kPage, kPage, buf.data()));
    }
    EXPECT_EQ(kPages, sys.fs().stats().counter("cache_misses").get());
    ScanCounts c;
    c.readRpcs = sys.fs().stats().counter("read_rpcs").get();
    c.batchRpcs = sys.fs().stats().counter("batch_read_rpcs").get();
    sys.fs().gclose(ctx, fd);
    return c;
}

TEST(ReadAheadE2eTest, AdaptiveMatchesTunedStaticOn256PageScan)
{
    // Adaptive's exact shape on a cold 256-page sequential scan:
    // demand misses at 0,1,2 then at each window edge (5, 10, 19, 36,
    // then every 33 pages) — 13 ReadPage RPCs; windows 2,4,8,16 are
    // one ReadPages batch each, the seven 32-page windows two batches
    // each (kMaxBatchPages=16): 18 batches. 31 RPCs total.
    ScanCounts adaptive = scan256(0, ReadAheadPolicy::Adaptive);
    EXPECT_EQ(13u, adaptive.readRpcs);
    EXPECT_EQ(18u, adaptive.batchRpcs);

    // The hand-tuned static window (16, the best of fig4's sweep)
    // costs 16 demand + 15 batch = the same 31 RPCs — and pays them
    // on RANDOM workloads too, which adaptive does not.
    ScanCounts tuned = scan256(16, ReadAheadPolicy::Static);
    EXPECT_EQ(31u, tuned.total());
    EXPECT_LE(adaptive.total(), tuned.total());

    // Unassisted demand paging for perspective: one RPC per page.
    ScanCounts off = scan256(0, ReadAheadPolicy::Static);
    EXPECT_EQ(256u, off.readRpcs);
    EXPECT_EQ(0u, off.batchRpcs);
}

// ---------------------------------------------------------------------
// The per-(file, stream) table: interleaved block streams must ramp
// independently where a single per-file tracker read them as random.
// ---------------------------------------------------------------------

TEST(ReadAheadStreamsTest, TwoInterleavedStreamsRampIndependently)
{
    ReadAheadStreams rs;
    // Blocks 7 and 12 scan disjoint regions, misses interleaved
    // round-robin — the access pattern a per-file tracker sees as
    // alternating +/-10000 jumps and never opens a window for.
    ReadAheadStreams::Decision a, b;
    for (uint64_t i = 0; i <= 6; ++i) {
        a = rs.onMiss(7, i, i, kMaxWin);
        b = rs.onMiss(12, 10000 + i, 10000 + i, kMaxWin);
    }
    EXPECT_EQ(32u, a.window);
    EXPECT_EQ(32u, b.window);
    EXPECT_NE(a.stream, b.stream);
    EXPECT_EQ(2u, rs.streamsActive());
    EXPECT_EQ(0u, rs.streamRecycles());
    // Per-key introspection agrees.
    ASSERT_NE(nullptr, rs.stream(7));
    ASSERT_NE(nullptr, rs.stream(12));
    EXPECT_EQ(32u, rs.stream(7)->window());
    EXPECT_EQ(32u, rs.stream(12)->window());
    EXPECT_EQ(nullptr, rs.stream(99));
}

TEST(ReadAheadStreamsTest, EightWayRoundRobinAllReachFullWindow)
{
    ReadAheadStreams rs;
    constexpr unsigned kStreams = 8;
    ReadAheadStreams::Decision d[kStreams];
    for (uint64_t i = 0; i <= 6; ++i) {
        for (unsigned s = 0; s < kStreams; ++s)
            d[s] = rs.onMiss(s, s * 100000 + i, s * 100000 + i, kMaxWin);
    }
    for (unsigned s = 0; s < kStreams; ++s)
        EXPECT_EQ(32u, d[s].window) << "stream " << s;
    EXPECT_EQ(kStreams, rs.streamsActive());
    EXPECT_EQ(0u, rs.streamRecycles());
}

TEST(ReadAheadStreamsTest, TableOverflowRecyclesLruSlot)
{
    ReadAheadStreams rs;
    // Fill every slot; key k's last use is ordered by k.
    for (uint64_t k = 0; k < ReadAheadStreams::kStreamSlots; ++k)
        rs.onMiss(k, k * 1000, k * 1000, kMaxWin);
    EXPECT_EQ(ReadAheadStreams::kStreamSlots, rs.streamsActive());

    // A brand-new key must evict key 0 — the LRU — and report it.
    ReadAheadStreams::Decision d =
        rs.onMiss(500, 777, 777, kMaxWin);
    EXPECT_TRUE(d.recycled);
    EXPECT_EQ(1u, rs.streamRecycles());
    EXPECT_EQ(ReadAheadStreams::kStreamSlots, rs.streamsActive());
    EXPECT_EQ(nullptr, rs.stream(0));
    ASSERT_NE(nullptr, rs.stream(500));
    // The recycled slot starts from scratch: no inherited ramp.
    EXPECT_EQ(0u, rs.stream(500)->window());

    // Key 0 coming back claims another victim (key 1 now) and also
    // restarts cold — stale state never leaks across tenants.
    d = rs.onMiss(0, 3, 3, kMaxWin);
    EXPECT_TRUE(d.recycled);
    EXPECT_EQ(0u, d.window);
    EXPECT_EQ(nullptr, rs.stream(1));
}

TEST(ReadAheadStreamsTest, ThrottleIsolatedToOneStream)
{
    ReadAheadStreams rs;
    // Both streams ramp, then every speculative page attributed to
    // stream A dies cold while B keeps promoting.
    ReadAheadStreams::Decision a, b;
    for (uint64_t i = 0; i <= 4; ++i) {
        a = rs.onMiss(1, i, i, kMaxWin);
        b = rs.onMiss(2, 50000 + i, 50000 + i, kMaxWin);
    }
    rs.notePublished(a.stream, 8);
    rs.notePublished(b.stream, 8);
    for (unsigned k = 0; k < ReadAheadTracker::kThrottleStreak; ++k)
        rs.noteWasted(a.stream, 5 + k);
    for (unsigned k = 0; k < 8; ++k)
        rs.noteHit(b.stream);

    EXPECT_TRUE(rs.stream(1)->throttled());
    EXPECT_FALSE(rs.stream(2)->throttled());
    // A's window is gone; B's next miss still gets a full window.
    EXPECT_EQ(0u, rs.onMiss(1, 100, 100, kMaxWin).window);
    EXPECT_EQ(16u, rs.onMiss(2, 50005, 50005, kMaxWin).window);

    // Aggregates stay conservation-exact across both streams:
    // 16 issued = 8 hits + 8 wasted, nothing resident.
    EXPECT_EQ(16u, rs.issued());
    EXPECT_EQ(8u, rs.hits());
    EXPECT_EQ(8u, rs.wasted());
    EXPECT_EQ(0, rs.specResident());
}

TEST(ReadAheadStreamsTest, StaleStreamFeedbackKeepsAggregatesExact)
{
    ReadAheadStreams rs;
    ReadAheadStreams::Decision d = rs.onMiss(3, 0, 0, kMaxWin);
    rs.notePublished(d.stream, 4);
    // Evict key 3 by overflowing the table; frames tagged with its
    // slot are still in flight.
    for (uint64_t k = 100; k < 100 + ReadAheadStreams::kStreamSlots;
         ++k) {
        rs.onMiss(k, k, k, kMaxWin);
    }
    EXPECT_EQ(nullptr, rs.stream(3));
    // Their feedback routes to the slot's NEW tenant (bounded
    // heuristic error) but the aggregates never drift.
    rs.noteHit(d.stream);
    rs.noteWasted(d.stream, 1);
    rs.noteWasted(d.stream, 2);
    rs.noteWasted(d.stream, 3);
    EXPECT_EQ(4u, rs.issued());
    EXPECT_EQ(1u, rs.hits());
    EXPECT_EQ(3u, rs.wasted());
    EXPECT_EQ(0, rs.specResident());
    // kNoStream feedback (static policy / fully stale tags) is
    // aggregate-only and equally exact.
    rs.notePublished(ReadAheadStreams::kNoStream, 2);
    rs.noteHit(ReadAheadStreams::kNoStream);
    rs.noteWasted(ReadAheadStreams::kNoStream, 9);
    EXPECT_EQ(6u, rs.issued());
    EXPECT_EQ(2u, rs.hits());
    EXPECT_EQ(4u, rs.wasted());
    EXPECT_EQ(0, rs.specResident());
}

// ---------------------------------------------------------------------
// End-to-end: two blocks interleaving region scans of ONE file both
// ramp — the cross-block scaling property the stream table exists for.
// ---------------------------------------------------------------------

TEST(ReadAheadE2eTest, TwoBlockSharedFileScanRampsBothStreams)
{
    constexpr uint64_t kPage = 16 * KiB;
    constexpr uint64_t kPagesPerBlock = 64;
    auto sys = adaptiveSystem(4 * 16 * MiB);
    test::addRamp(sys->hostFs(), "/shared",
                  2 * kPagesPerBlock * kPage);
    auto ctx0 = test::makeBlock(sys->device(0), 0);
    auto ctx1 = test::makeBlock(sys->device(0), 1);
    int fd = sys->fs().gopen(ctx0, "/shared", G_RDONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(fd, sys->fs().gopen(ctx1, "/shared", G_RDONLY));
    std::vector<uint8_t> buf(kPage);
    // Strictly alternating page reads from disjoint halves — the
    // interleaving that collapses a single per-file tracker.
    for (uint64_t pg = 0; pg < kPagesPerBlock; ++pg) {
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx0, fd, pg * kPage, kPage,
                                  buf.data()));
        ASSERT_EQ(int64_t(kPage),
                  sys->fs().gread(ctx1, fd,
                                  (kPagesPerBlock + pg) * kPage, kPage,
                                  buf.data()));
    }
    const ReadAheadStreams *t = sys->fs().readAheadTracker(fd);
    ASSERT_NE(nullptr, t);
    // Both block streams ramped to the ceiling...
    ASSERT_NE(nullptr, t->stream(0));
    ASSERT_NE(nullptr, t->stream(1));
    EXPECT_EQ(32u, t->stream(0)->window());
    EXPECT_EQ(32u, t->stream(1)->window());
    EXPECT_EQ(2u, t->streamsActive());
    // ...and prefetch was perfect: every page fetched once, every
    // speculative page promoted by the scan behind it.
    EXPECT_EQ(2 * kPagesPerBlock,
              counterOf(sys->fs(), "cache_misses"));
    EXPECT_GT(counterOf(sys->fs(), "ra_issued"), 0u);
    EXPECT_EQ(counterOf(sys->fs(), "ra_issued"),
              counterOf(sys->fs(), "ra_hit"));
    EXPECT_EQ(0u, counterOf(sys->fs(), "ra_wasted"));
    EXPECT_EQ(2u,
              sys->fs().stats().counter("ra_streams_active").get());
    sys->fs().gclose(ctx0, fd);
    sys->fs().gclose(ctx1, fd);
}

// ---------------------------------------------------------------------
// Sharded files: the window is clipped at shard-group boundaries so
// one prefetch RPC never spans two owners (PR 4's demand-batch rule).
// ---------------------------------------------------------------------

TEST(ReadAheadShardTest, WindowClipsAtShardGroupBoundaries)
{
    // Standalone wiring (tests that need odd topologies wire
    // components manually): one BufferCache with a 2-GPU HashPageGroup
    // map installed, groups of 4 pages — a ramped 32-page window MUST
    // split into per-group batches.
    sim::SimContext sim;
    hostfs::HostFs hostFs(sim);
    consistency::ConsistencyMgr mgr;
    gpu::GpuDevice dev(sim, 0);
    rpc::CpuDaemon daemon(hostFs, mgr);
    rpc::RpcQueue &queue = daemon.attachGpu(dev);
    daemon.start();
    {
        constexpr uint64_t kPage = 16 * KiB;
        constexpr unsigned kGroup = 4;
        GpuFsParams p;
        p.pageSize = kPage;
        p.cacheBytes = 256 * kPage;
        p.shardPolicy = ShardPolicy::HashPageGroup;
        p.shardPagesPerGroup = kGroup;
        StatSet stats("ra_shard_test");
        BufferCache bc(dev, queue, p, stats);
        ShardMap map(ShardPolicy::HashPageGroup, 2, kGroup);
        bc.setShardMap(&map);

        test::addRamp(hostFs, "/f", 128 * kPage);
        rpc::RpcRequest oreq;
        oreq.op = rpc::RpcOp::Open;
        std::strncpy(oreq.path, "/f", rpc::kMaxPath - 1);
        oreq.flags = hostfs::O_RDONLY_F;
        rpc::RpcResponse oresp = queue.call(oreq);
        ASSERT_EQ(Status::Ok, oresp.status);

        CacheFile cf;
        cf.hostFd = oresp.hostFd;
        cf.ino = oresp.ino;
        cf.size.store(oresp.size);
        bc.attach(cf);
        bc.setupFile(cf);

        // Prime the tracker to a full 32-page window (stream key 0 =
        // the block id submitReadAhead will resolve); submitReadAhead
        // itself records the miss at 40 (the next in the run).
        for (uint64_t i = 33; i <= 39; ++i)
            cf.ra.onMiss(0, i, i, 32);
        ASSERT_EQ(32u, cf.ra.window());

        auto ctx = test::makeBlock(dev);
        PendingFetch pending[16];
        unsigned n = bc.submitReadAhead(ctx, cf, 40, 40, pending, 16);
        ASSERT_GT(n, 0u);
        unsigned pages = 0;
        for (unsigned i = 0; i < n; ++i) {
            // Every batch stays inside one ownership group.
            uint64_t first = pending[i].startIdx;
            uint64_t last = pending[i].startIdx + pending[i].n - 1;
            EXPECT_EQ(first / kGroup, last / kGroup)
                << "batch " << i << " spans groups [" << first << ","
                << last << "]";
            EXPECT_LE(pending[i].n, kGroup);
            pages += pending[i].n;
        }
        // The whole window was still covered, just in clipped batches:
        // pages 41..72 = a 3-page group tail, 7 whole groups, and a
        // 1-page group head.
        EXPECT_EQ(32u, pages);
        EXPECT_EQ(9u, n);
        for (unsigned i = 0; i < n; ++i)
            EXPECT_EQ(Status::Ok, bc.completeFetch(cf, pending[i]));

        bc.destroyFile(cf);
        rpc::RpcRequest creq;
        creq.op = rpc::RpcOp::Close;
        creq.hostFd = oresp.hostFd;
        queue.call(creq);
    }
    daemon.stop();
}

} // namespace
} // namespace core
} // namespace gpufs
