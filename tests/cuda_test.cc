/** @file Unit tests for the CUDA-like baseline host API. */

#include <gtest/gtest.h>

#include "cuda/cudasim.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace cudasim {
namespace {

class CudaTest : public ::testing::Test
{
  protected:
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    gpu::GpuDevice dev{sim, 0};
    CudaApp app{dev, fs};
};

TEST_F(CudaTest, SyncMemcpyBlocksHostClock)
{
    Time before = app.now();
    app.memcpyH2D(64 * MiB);
    Time dur = app.now() - before;
    EXPECT_GE(dur, transferTime(64 * MiB, sim.params.pcieBwH2DMBps));
}

TEST_F(CudaTest, AsyncMemcpyReturnsImmediately)
{
    Stream s;
    Time before = app.now();
    app.memcpyH2DAsync(s, 64 * MiB);
    // Submission is cheap; completion is on the stream.
    EXPECT_LT(app.now() - before, Time(100 * kMicrosecond));
    EXPECT_GE(s.readyAt, transferTime(64 * MiB, sim.params.pcieBwH2DMBps));
    app.streamSync(s);
    EXPECT_GE(app.now(), s.readyAt);
}

TEST_F(CudaTest, StreamOperationsAreOrdered)
{
    Stream s;
    app.memcpyH2DAsync(s, 16 * MiB);
    Time after_copy = s.readyAt;
    app.kernelAsync(s, 5 * kMillisecond);
    EXPECT_GE(s.readyAt, after_copy + 5 * kMillisecond);
}

TEST_F(CudaTest, IndependentStreamsOverlapDma)
{
    // Same direction: serialized on the single H2D link.
    Stream a, b;
    app.memcpyH2DAsync(a, 32 * MiB);
    app.memcpyH2DAsync(b, 32 * MiB);
    Time one = transferTime(32 * MiB, sim.params.pcieBwH2DMBps);
    EXPECT_GE(std::max(a.readyAt, b.readyAt), 2 * one);

    // Opposite directions: full duplex.
    Stream c, d;
    Time base = std::max(a.readyAt, b.readyAt);
    app.waitUntil(base);
    app.memcpyH2DAsync(c, 32 * MiB);
    app.memcpyD2HAsync(d, 32 * MiB);
    EXPECT_LT(std::max(c.readyAt, d.readyAt), base + 2 * one);
}

TEST_F(CudaTest, KernelsSerializeOnComputeResource)
{
    Stream a, b;
    app.kernelAsync(a, 10 * kMillisecond);
    app.kernelAsync(b, 10 * kMillisecond);
    // One whole-device kernel at a time (grids fill the GPU).
    EXPECT_GE(std::max(a.readyAt, b.readyAt), Time(20 * kMillisecond));
}

TEST_F(CudaTest, PreadAdvancesClockAndReturnsData)
{
    test::addRamp(fs, "/f", 1 * MiB);
    int fd = app.open("/f", hostfs::O_RDONLY_F);
    std::vector<uint8_t> buf(64 * KiB);
    Time before = app.now();
    EXPECT_EQ(buf.size(), app.pread(fd, buf.data(), buf.size(), 4096));
    EXPECT_GT(app.now(), before);
    EXPECT_EQ(test::rampByte(4096), buf[0]);
    app.close(fd);
}

TEST_F(CudaTest, PinnedMemorySqueezesHostCache)
{
    uint64_t cap = fs.cache().effectiveCapacity();
    int id = app.hostAllocPinned(2 * GiB);
    EXPECT_EQ(cap - 2 * GiB, fs.cache().effectiveCapacity());
    app.hostFreePinned(id);
    EXPECT_EQ(cap, fs.cache().effectiveCapacity());
}

TEST_F(CudaTest, PinnedPressureSlowsDiskReads)
{
    // The Figure 8 mechanism: cold reads under heavy pinning pay the
    // direct-reclaim penalty.
    test::addRamp(fs, "/cold", 8 * MiB);
    std::vector<uint8_t> buf(8 * MiB);
    int fd = app.open("/cold", hostfs::O_RDONLY_F);
    Time t0 = app.now();
    app.pread(fd, buf.data(), buf.size(), 0);
    Time unpressured = app.now() - t0;

    fs.dropCaches();
    int id = app.hostAllocPinned(sim.params.hostCacheBytes / 2);
    t0 = app.now();
    app.pread(fd, buf.data(), buf.size(), 0);
    Time pressured = app.now() - t0;
    app.hostFreePinned(id);
    app.close(fd);
    // Penalty factor = 1 + 5 * 0.5 = 3.5 on the disk component.
    EXPECT_GT(pressured, unpressured * 2);
}

TEST_F(CudaTest, PipelineBeatsSerialTransfer)
{
    // The double-buffering pattern every CUDA baseline uses: chunked
    // pread+DMA must beat pread-everything-then-DMA.
    test::addRamp(fs, "/pipe", 64 * MiB);
    fs.cache().prefault(1, 0, 64 * MiB);

    // Serial.
    CudaApp serial(dev, fs);
    int fd = serial.open("/pipe", hostfs::O_RDONLY_F);
    serial.pread(fd, nullptr, 64 * MiB, 0);
    serial.memcpyH2D(64 * MiB);
    Time serial_time = serial.now();
    serial.close(fd);

    dev.resetTime();
    CudaApp pipe(dev, fs);
    fd = pipe.open("/pipe", hostfs::O_RDONLY_F);
    Stream s;
    for (uint64_t off = 0; off < 64 * MiB; off += 4 * MiB) {
        pipe.pread(fd, nullptr, 4 * MiB, off);
        pipe.memcpyH2DAsync(s, 4 * MiB);
    }
    pipe.streamSync(s);
    EXPECT_LT(pipe.now(), serial_time);
    pipe.close(fd);
}

} // namespace
} // namespace cudasim
} // namespace gpufs
