/**
 * @file
 * Shared fixtures for the GPUfs test suite.
 */

#ifndef GPUFS_TESTS_TESTUTIL_HH
#define GPUFS_TESTS_TESTUTIL_HH

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpufs/system.hh"
#include "hostfs/content.hh"

namespace gpufs {
namespace test {

/** Make a BlockCtx suitable for direct API calls in tests. */
inline gpu::BlockCtx
makeBlock(gpu::GpuDevice &dev, unsigned block_id = 0)
{
    return gpu::BlockCtx(dev, block_id, 1, 512, /*start_time=*/0,
                         /*shared_bytes=*/48 * KiB);
}

/** Install an in-memory file with the given bytes. */
inline void
addBytes(hostfs::HostFs &fs, const std::string &path,
         std::vector<uint8_t> bytes)
{
    uint64_t n = bytes.size();
    ASSERT_EQ(Status::Ok,
              fs.addFile(path,
                         std::make_unique<hostfs::InMemoryContent>(
                             std::move(bytes)),
                         n));
}

/** Install an in-memory file with a ramp pattern of @p n bytes. */
inline void
addRamp(hostfs::HostFs &fs, const std::string &path, uint64_t n)
{
    std::vector<uint8_t> bytes(n);
    for (uint64_t i = 0; i < n; ++i)
        bytes[i] = uint8_t(i * 131 + 7);
    addBytes(fs, path, std::move(bytes));
}

/** The ramp value addRamp puts at offset @p i. */
inline uint8_t
rampByte(uint64_t i)
{
    return uint8_t(i * 131 + 7);
}

} // namespace test
} // namespace gpufs

#endif // GPUFS_TESTS_TESTUTIL_HH
