/** @file Unit tests for src/base. */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/status.hh"
#include "base/units.hh"

namespace gpufs {
namespace {

TEST(Logging, VformatFormatsLikePrintf)
{
    EXPECT_EQ("x=5 s=abc", detail::vformat("x=%d s=%s", 5, "abc"));
    EXPECT_EQ("", detail::vformat("%s", ""));
}

TEST(Logging, AssertPassesOnTrue)
{
    gpufs_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Status, EveryCodeHasAName)
{
    for (int i = 0; i <= int(Status::TooManyFiles); ++i)
        EXPECT_STRNE("Unknown", statusName(Status(i)));
}

TEST(Status, OkPredicate)
{
    EXPECT_TRUE(ok(Status::Ok));
    EXPECT_FALSE(ok(Status::NoEnt));
}

TEST(Units, TransferTimeMatchesBandwidth)
{
    // 1 MB at 1000 MB/s = 1 ms.
    EXPECT_EQ(Time(1 * kMillisecond), transferTime(1'000'000, 1000.0));
    // Zero bandwidth -> charge nothing (used by the Fig. 5 toggles).
    EXPECT_EQ(Time(0), transferTime(12345, 0.0));
}

TEST(Units, ThroughputInverseOfTransferTime)
{
    uint64_t bytes = 512 * MiB;
    Time t = transferTime(bytes, 5731.0);
    EXPECT_NEAR(5731.0, throughputMBps(bytes, t), 1.0);
}

TEST(Units, ConversionHelpers)
{
    EXPECT_DOUBLE_EQ(1.5, toSeconds(1'500'000'000ull));
    EXPECT_DOUBLE_EQ(2.0, toMillis(2'000'000ull));
}

TEST(Rng, SplitMixIsDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(0, same);
}

TEST(Rng, NextBelowInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    SplitMix64 rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, Hash64AvoidsTrivialCollisions)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 10000; ++i)
        seen.insert(hash64(i));
    EXPECT_EQ(10000u, seen.size());
}

TEST(Rng, HashCombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(0u, c.get());
    c.inc();
    c.inc(41);
    EXPECT_EQ(42u, c.get());
    c.reset();
    EXPECT_EQ(0u, c.get());
}

TEST(Stats, CounterMaxWith)
{
    Counter c;
    c.maxWith(10);
    c.maxWith(5);
    EXPECT_EQ(10u, c.get());
    c.maxWith(20);
    EXPECT_EQ(20u, c.get());
}

TEST(Stats, CounterIsThreadSafe)
{
    Counter c;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(80000u, c.get());
}

TEST(Stats, StatSetSnapshotAndReset)
{
    StatSet s("test");
    s.counter("a").inc(3);
    s.counter("b").inc(4);
    auto snap = s.snapshot();
    EXPECT_EQ(3u, snap.at("a"));
    EXPECT_EQ(4u, snap.at("b"));
    s.resetAll();
    EXPECT_EQ(0u, s.counter("a").get());
}

TEST(Stats, CounterAddressesStable)
{
    StatSet s("test");
    Counter *a = &s.counter("a");
    for (int i = 0; i < 100; ++i)
        s.counter("c" + std::to_string(i));
    EXPECT_EQ(a, &s.counter("a"));
}

} // namespace
} // namespace gpufs
