/** @file Multi-GPU / cross-device integration tests: the consistency
 *  model of §3.1 and §4.4 end to end. */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "gpufs/system.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

class MultiGpuTest : public ::testing::Test
{
  protected:
    MultiGpuTest()
    {
        GpuFsParams p;
        p.pageSize = 64 * KiB;
        p.cacheBytes = 16 * MiB;
        sys = std::make_unique<GpufsSystem>(4, p);
    }

    gpu::BlockCtx
    block(unsigned gpu_id)
    {
        return test::makeBlock(sys->device(gpu_id));
    }

    std::unique_ptr<GpufsSystem> sys;
};

TEST_F(MultiGpuTest, WriteOnOneGpuVisibleOnAnotherAfterSyncAndReopen)
{
    // The §3.1 model: local modifications propagate on explicit sync,
    // and become visible to other GPUs when they (re)open the file.
    auto ctx0 = block(0);
    auto ctx1 = block(1);

    int w = sys->fs(0).gopen(ctx0, "/shared", G_RDWR | G_CREAT);
    const char msg[] = "written by gpu0";
    sys->fs(0).gwrite(ctx0, w, 0, sizeof(msg), msg);
    sys->fs(0).gfsync(ctx0, w);
    sys->fs(0).gclose(ctx0, w);

    int r = sys->fs(1).gopen(ctx1, "/shared", G_RDONLY);
    ASSERT_GE(r, 0);
    char back[sizeof(msg)] = {};
    ASSERT_EQ(int64_t(sizeof(msg)),
              sys->fs(1).gread(ctx1, r, 0, sizeof(msg), back));
    EXPECT_STREQ(msg, back);
    sys->fs(1).gclose(ctx1, r);
}

TEST_F(MultiGpuTest, StaleReaderSeesOldDataUntilReopen)
{
    // Weak consistency: a GPU holding the file open keeps reading its
    // local copy even after another device rewrites the file.
    test::addRamp(sys->hostFs(), "/f", 64 * KiB);
    auto ctx0 = block(0);
    int r = sys->fs(0).gopen(ctx0, "/f", G_RDONLY);
    uint8_t before;
    sys->fs(0).gread(ctx0, r, 0, 1, &before);

    // CPU rewrites byte 0 (host-side, bumps the version).
    int hfd = sys->hostFs().open("/f", hostfs::O_RDWR_F);
    uint8_t nv = uint8_t(~before);
    sys->hostFs().pwrite(hfd, &nv, 1, 0);
    sys->hostFs().close(hfd);

    // Still-open reader: cached (stale) data — by design.
    uint8_t during;
    sys->fs(0).gread(ctx0, r, 0, 1, &during);
    EXPECT_EQ(before, during);
    sys->fs(0).gclose(ctx0, r);

    // Reopen: lazy invalidation kicks in.
    r = sys->fs(0).gopen(ctx0, "/f", G_RDONLY);
    uint8_t after;
    sys->fs(0).gread(ctx0, r, 0, 1, &after);
    EXPECT_EQ(nv, after);
    sys->fs(0).gclose(ctx0, r);
}

TEST_F(MultiGpuTest, SecondGpuWriterRejectedWithBusy)
{
    auto ctx0 = block(0);
    auto ctx1 = block(1);
    int w0 = sys->fs(0).gopen(ctx0, "/excl", G_RDWR | G_CREAT);
    ASSERT_GE(w0, 0);
    int w1 = sys->fs(1).gopen(ctx1, "/excl", G_RDWR);
    EXPECT_EQ(-int(Status::Busy), w1);
    sys->fs(0).gclose(ctx0, w0);
    // After gpu0 closes (clean file -> claim released), gpu1 may write.
    w1 = sys->fs(1).gopen(ctx1, "/excl", G_RDWR);
    EXPECT_GE(w1, 0);
    sys->fs(1).gclose(ctx1, w1);
}

TEST_F(MultiGpuTest, CpuWriterBlockedByGpuWriter)
{
    auto ctx0 = block(0);
    int w = sys->fs(0).gopen(ctx0, "/excl2", G_RDWR | G_CREAT);
    ASSERT_GE(w, 0);
    Status st;
    EXPECT_LT(sys->wrapFs().open("/excl2", hostfs::O_RDWR_F, &st), 0);
    EXPECT_EQ(Status::Busy, st);
    // Readers are fine (workspace consistency allows concurrency).
    int rfd = sys->wrapFs().open("/excl2", hostfs::O_RDONLY_F, &st);
    EXPECT_GE(rfd, 0);
    sys->wrapFs().close(rfd);
    sys->fs(0).gclose(ctx0, w);
}

TEST_F(MultiGpuTest, GwronceWritersMergeDisjointRegions)
{
    // The headline O_GWRONCE use case: a parallel task on several
    // GPUs produces one output file, each device writing its assigned
    // range; diff-against-zeros merges them on the host (§3.1).
    constexpr unsigned kGpus = 4;
    constexpr uint64_t kChunk = 200 * KiB;   // straddles page boundaries

    std::vector<std::thread> writers;
    for (unsigned g = 0; g < kGpus; ++g) {
        writers.emplace_back([&, g] {
            auto ctx = block(g);
            int fd = sys->fs(g).gopen(ctx, "/merged", G_GWRONCE);
            ASSERT_GE(fd, 0);
            std::vector<uint8_t> data(kChunk, uint8_t(g + 1));
            sys->fs(g).gwrite(ctx, fd, g * kChunk, data.size(),
                              data.data());
            EXPECT_EQ(Status::Ok, sys->fs(g).gfsync(ctx, fd));
            sys->fs(g).gclose(ctx, fd);
        });
    }
    for (auto &t : writers)
        t.join();

    int fd = sys->hostFs().open("/merged", hostfs::O_RDONLY_F);
    hostfs::FileInfo info;
    sys->hostFs().fstat(fd, &info);
    EXPECT_EQ(kGpus * kChunk, info.size);
    std::vector<uint8_t> all(info.size);
    sys->hostFs().pread(fd, all.data(), all.size(), 0);
    sys->hostFs().close(fd);
    for (unsigned g = 0; g < kGpus; ++g) {
        for (uint64_t i = 0; i < kChunk; i += 4096)
            ASSERT_EQ(g + 1, all[g * kChunk + i]) << "gpu " << g;
    }
}

TEST_F(MultiGpuTest, NosyncFilesAreDevicePrivate)
{
    auto ctx0 = block(0);
    auto ctx1 = block(1);
    int t0 = sys->fs(0).gopen(ctx0, "/tmp/scratch", G_RDWR | G_NOSYNC);
    int t1 = sys->fs(1).gopen(ctx1, "/tmp/scratch1", G_RDWR | G_NOSYNC);
    ASSERT_GE(t0, 0);
    ASSERT_GE(t1, 0);
    uint8_t a = 0xA0, b = 0xB0;
    sys->fs(0).gwrite(ctx0, t0, 0, 1, &a);
    sys->fs(1).gwrite(ctx1, t1, 0, 1, &b);
    sys->fs(0).gfsync(ctx0, t0);    // no-ops
    sys->fs(1).gfsync(ctx1, t1);
    hostfs::FileInfo info;
    sys->hostFs().stat("/tmp/scratch", &info);
    EXPECT_EQ(0u, info.size);       // nothing reached the host
    sys->fs(0).gclose(ctx0, t0);
    sys->fs(1).gclose(ctx1, t1);
}

TEST_F(MultiGpuTest, ConcurrentReadersShareHostFileSafely)
{
    test::addRamp(sys->hostFs(), "/ro", 2 * MiB);
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> readers;
    for (unsigned g = 0; g < 4; ++g) {
        readers.emplace_back([&, g] {
            gpu::launch(sys->device(g), 8, 128, [&](gpu::BlockCtx &ctx) {
                GpuFs &fs = sys->fs(g);
                int fd = fs.gopen(ctx, "/ro", G_RDONLY);
                if (fd < 0) {
                    errors.fetch_add(1);
                    return;
                }
                std::vector<uint8_t> buf(32 * KiB);
                for (int i = 0; i < 8; ++i) {
                    uint64_t off = ctx.rng().nextBelow(2 * MiB - buf.size());
                    if (fs.gread(ctx, fd, off, buf.size(), buf.data()) !=
                        int64_t(buf.size())) {
                        errors.fetch_add(1);
                        continue;
                    }
                    for (size_t k = 0; k < buf.size(); k += 1024) {
                        if (buf[k] != test::rampByte(off + k))
                            errors.fetch_add(1);
                    }
                }
                fs.gclose(ctx, fd);
            });
        });
    }
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(0u, errors.load());
    EXPECT_EQ(0u, sys->hostFs().openCount());
}

TEST_F(MultiGpuTest, UnlinkInvalidatesOtherGpusClosedCache)
{
    test::addRamp(sys->hostFs(), "/gone", 64 * KiB);
    auto ctx0 = block(0);
    auto ctx1 = block(1);
    // GPU1 caches the file, closes it.
    int r = sys->fs(1).gopen(ctx1, "/gone", G_RDONLY);
    uint8_t b;
    sys->fs(1).gread(ctx1, r, 0, 1, &b);
    sys->fs(1).gclose(ctx1, r);
    // GPU0 unlinks it; recreate with different content.
    EXPECT_EQ(Status::Ok, sys->fs(0).gunlink(ctx0, "/gone"));
    test::addBytes(sys->hostFs(), "/gone",
                   std::vector<uint8_t>(1024, 0xEE));
    // GPU1 reopens: must see the new file, not its stale cache.
    r = sys->fs(1).gopen(ctx1, "/gone", G_RDONLY);
    ASSERT_GE(r, 0);
    uint8_t nb;
    sys->fs(1).gread(ctx1, r, 0, 1, &nb);
    EXPECT_EQ(0xEE, nb);
    sys->fs(1).gclose(ctx1, r);
}

TEST_F(MultiGpuTest, PerGpuCachesAreIndependent)
{
    test::addRamp(sys->hostFs(), "/indep", 256 * KiB);
    auto ctx0 = block(0);
    auto ctx1 = block(1);
    std::vector<uint8_t> buf(256 * KiB);

    int f0 = sys->fs(0).gopen(ctx0, "/indep", G_RDONLY);
    sys->fs(0).gread(ctx0, f0, 0, buf.size(), buf.data());
    uint64_t misses0 = sys->fs(0).stats().counter("cache_misses").get();
    EXPECT_GT(misses0, 0u);

    // GPU1's cache is cold regardless of GPU0's: it fetches its own
    // replica (the buffer cache is distributed, §3.3).
    int f1 = sys->fs(1).gopen(ctx1, "/indep", G_RDONLY);
    sys->fs(1).gread(ctx1, f1, 0, buf.size(), buf.data());
    EXPECT_GT(sys->fs(1).stats().counter("cache_misses").get(), 0u);
    sys->fs(0).gclose(ctx0, f0);
    sys->fs(1).gclose(ctx1, f1);
}

TEST_F(MultiGpuTest, RangeSyncPushesOnlyRequestedPages)
{
    auto ctx = block(0);
    int fd = sys->fs(0).gopen(ctx, "/range", G_RDWR | G_CREAT);
    std::vector<uint8_t> data(64 * KiB, 0x11);
    // Two dirty pages: page 0 and page 2.
    sys->fs(0).gwrite(ctx, fd, 0, data.size(), data.data());
    sys->fs(0).gwrite(ctx, fd, 2 * 64 * KiB, data.size(), data.data());

    // Sync only the first page's range.
    EXPECT_EQ(Status::Ok,
              sys->fs(0).gfsyncRange(ctx, fd, 0, 64 * KiB));
    hostfs::FileInfo info;
    sys->hostFs().stat("/range", &info);
    EXPECT_EQ(64 * KiB, info.size);     // page 2 not written yet

    EXPECT_EQ(Status::Ok, sys->fs(0).gfsync(ctx, fd));
    sys->hostFs().stat("/range", &info);
    EXPECT_EQ(3 * 64 * KiB, info.size);
    sys->fs(0).gclose(ctx, fd);
}

} // namespace
} // namespace core
} // namespace gpufs
