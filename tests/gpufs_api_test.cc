/** @file End-to-end tests of the GpuFs API against the host daemon. */

#include <gtest/gtest.h>

#include <cstring>

#include "gpufs/system.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

class GpuFsApiTest : public ::testing::Test
{
  protected:
    GpuFsApiTest()
    {
        GpuFsParams p;
        p.pageSize = 64 * KiB;
        p.cacheBytes = 8 * MiB;    // 128 frames
        sys = std::make_unique<GpufsSystem>(1, p);
    }

    gpu::BlockCtx
    block()
    {
        return test::makeBlock(sys->device(0));
    }

    std::unique_ptr<GpufsSystem> sys;
};

TEST_F(GpuFsApiTest, OpenReadCloseRoundtrip)
{
    test::addRamp(sys->hostFs(), "/f", 1 * MiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    ASSERT_GE(fd, 0);

    std::vector<uint8_t> buf(100 * KiB);
    int64_t n = sys->fs().gread(ctx, fd, 12345, buf.size(), buf.data());
    ASSERT_EQ(int64_t(buf.size()), n);
    for (size_t i = 0; i < buf.size(); i += 997)
        EXPECT_EQ(test::rampByte(12345 + i), buf[i]);
    EXPECT_EQ(Status::Ok, sys->fs().gclose(ctx, fd));
}

TEST_F(GpuFsApiTest, OpenMissingFileFails)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/nope", G_RDONLY);
    EXPECT_EQ(-int(Status::NoEnt), fd);
}

TEST_F(GpuFsApiTest, SharedDescriptorRefCounts)
{
    // Second gopen of an open file must not RPC (§4.1).
    test::addRamp(sys->hostFs(), "/f", 4 * KiB);
    auto ctx = block();
    int fd1 = sys->fs().gopen(ctx, "/f", G_RDONLY);
    uint64_t rpcs = sys->fs().stats().counter("open_rpcs").get();
    int fd2 = sys->fs().gopen(ctx, "/f", G_RDONLY);
    EXPECT_EQ(fd1, fd2);
    EXPECT_EQ(rpcs, sys->fs().stats().counter("open_rpcs").get());
    sys->fs().gclose(ctx, fd1);
    // Still open via fd2's reference.
    uint8_t b;
    EXPECT_EQ(1, sys->fs().gread(ctx, fd2, 0, 1, &b));
    sys->fs().gclose(ctx, fd2);
}

TEST_F(GpuFsApiTest, ReadsHitTheBufferCacheOnReuse)
{
    test::addRamp(sys->hostFs(), "/f", 256 * KiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    std::vector<uint8_t> buf(256 * KiB);
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    uint64_t misses = sys->fs().stats().counter("cache_misses").get();
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    EXPECT_EQ(misses, sys->fs().stats().counter("cache_misses").get());
    EXPECT_GT(sys->fs().stats().counter("cache_hits").get(), 0u);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, ClosedFileCacheIsReusedOnReopen)
{
    // "gopen checks the closed file table first, and moves the file
    // cache back to the open file table" (§4.1).
    test::addRamp(sys->hostFs(), "/f", 128 * KiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    std::vector<uint8_t> buf(128 * KiB);
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    sys->fs().gclose(ctx, fd);

    uint64_t misses = sys->fs().stats().counter("cache_misses").get();
    fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    EXPECT_EQ(misses, sys->fs().stats().counter("cache_misses").get());
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, StaleClosedCacheInvalidatedOnReopen)
{
    // CPU writes the file between GPU close and reopen: the version
    // check must drop the stale cache (lazy invalidation, §4.4).
    test::addRamp(sys->hostFs(), "/f", 64 * KiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    uint8_t before;
    sys->fs().gread(ctx, fd, 0, 1, &before);
    sys->fs().gclose(ctx, fd);

    // Host-side mutation.
    int hfd = sys->hostFs().open("/f", hostfs::O_RDWR_F);
    uint8_t nv = uint8_t(~before);
    sys->hostFs().pwrite(hfd, &nv, 1, 0);
    sys->hostFs().close(hfd);

    fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    uint8_t after;
    sys->fs().gread(ctx, fd, 0, 1, &after);
    EXPECT_EQ(nv, after);
    EXPECT_EQ(1u, sys->fs().stats().counter("cache_invalidations").get());
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, WriteReadBackThroughCache)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/new", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);
    const char msg[] = "written on the gpu";
    ASSERT_EQ(int64_t(sizeof(msg)),
              sys->fs().gwrite(ctx, fd, 70000, sizeof(msg), msg));
    char back[sizeof(msg)] = {};
    ASSERT_EQ(int64_t(sizeof(msg)),
              sys->fs().gread(ctx, fd, 70000, sizeof(msg), back));
    EXPECT_STREQ(msg, back);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, CloseDoesNotSyncGfsyncDoes)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/out", G_RDWR | G_CREAT);
    uint8_t v = 0x77;
    sys->fs().gwrite(ctx, fd, 0, 1, &v);

    // Host must NOT see the data yet (close/sync decoupling, §3.2).
    hostfs::FileInfo info;
    sys->hostFs().stat("/out", &info);
    EXPECT_EQ(0u, info.size);

    EXPECT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    sys->hostFs().stat("/out", &info);
    EXPECT_EQ(1u, info.size);
    int hfd = sys->hostFs().open("/out", hostfs::O_RDONLY_F);
    uint8_t b = 0;
    sys->hostFs().pread(hfd, &b, 1, 0);
    EXPECT_EQ(0x77, b);
    sys->hostFs().close(hfd);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, GwronceSkipsFetchAndMergesDisjointWrites)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/once", G_GWRONCE);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> chunk(1000, 0x42);
    sys->fs().gwrite(ctx, fd, 5000, chunk.size(), chunk.data());
    // No host read may have happened (O_GWRONCE never fetches).
    EXPECT_EQ(0u, sys->daemon().stats().counter("bytes_to_gpu").get());
    EXPECT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    sys->fs().gclose(ctx, fd);

    int hfd = sys->hostFs().open("/once", hostfs::O_RDONLY_F);
    uint8_t b = 0;
    sys->hostFs().pread(hfd, &b, 1, 5500);
    EXPECT_EQ(0x42, b);
    sys->hostFs().close(hfd);
}

TEST_F(GpuFsApiTest, GwronceIsWriteOnly)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/once2", G_GWRONCE);
    uint8_t b;
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gread(ctx, fd, 0, 1, &b));
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, NosyncNeverReachesHost)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/tmp1", G_RDWR | G_NOSYNC);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> data(10 * KiB, 0x5A);
    sys->fs().gwrite(ctx, fd, 0, data.size(), data.data());
    EXPECT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));   // no-op
    hostfs::FileInfo info;
    sys->hostFs().stat("/tmp1", &info);
    EXPECT_EQ(0u, info.size);
    // But the GPU reads its own data back.
    std::vector<uint8_t> back(data.size());
    EXPECT_EQ(int64_t(back.size()),
              sys->fs().gread(ctx, fd, 0, back.size(), back.data()));
    EXPECT_EQ(data, back);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, ReadOnlyWriteRejected)
{
    test::addRamp(sys->hostFs(), "/ro", 100);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/ro", G_RDONLY);
    uint8_t b = 0;
    EXPECT_EQ(-int64_t(Status::ReadOnlyFile),
              sys->fs().gwrite(ctx, fd, 0, 1, &b));
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, GfstatReportsOpenTimeSize)
{
    test::addRamp(sys->hostFs(), "/s", 5555);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/s", G_RDONLY);
    GStat st;
    ASSERT_EQ(Status::Ok, sys->fs().gfstat(ctx, fd, &st));
    EXPECT_EQ(5555u, st.size);
    EXPECT_GT(st.ino, 0u);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, GftruncateShrinksAndReclaims)
{
    test::addRamp(sys->hostFs(), "/t", 256 * KiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/t", G_RDWR);
    std::vector<uint8_t> buf(256 * KiB);
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    ASSERT_EQ(Status::Ok, sys->fs().gftruncate(ctx, fd, 100));
    GStat st;
    sys->fs().gfstat(ctx, fd, &st);
    EXPECT_EQ(100u, st.size);
    hostfs::FileInfo info;
    sys->hostFs().stat("/t", &info);
    EXPECT_EQ(100u, info.size);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, GunlinkRemovesFile)
{
    test::addRamp(sys->hostFs(), "/u", 1 * KiB);
    auto ctx = block();
    EXPECT_EQ(Status::Ok, sys->fs().gunlink(ctx, "/u"));
    EXPECT_EQ(Status::NoEnt, sys->hostFs().stat("/u", nullptr));
    EXPECT_EQ(-int(Status::NoEnt), sys->fs().gopen(ctx, "/u", G_RDONLY));
}

TEST_F(GpuFsApiTest, GmmapReturnsPrefixWithinPage)
{
    test::addRamp(sys->hostFs(), "/m", 256 * KiB);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/m", G_RDONLY);
    uint64_t mapped = 0;
    // Request 100 KiB at 60 KiB: only 4 KiB fit in the 64 KiB page.
    void *p = sys->fs().gmmap(ctx, fd, 60 * KiB, 100 * KiB, &mapped);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(4 * KiB, mapped);
    EXPECT_EQ(test::rampByte(60 * KiB), *static_cast<uint8_t *>(p));
    EXPECT_EQ(Status::Ok, sys->fs().gmunmap(ctx, p));
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, MappedPagesSurviveEvictionPressure)
{
    // Map a page, then stream enough data to evict everything else;
    // the mapped page must stay valid (pins block eviction).
    test::addRamp(sys->hostFs(), "/pin", 64 * KiB);
    test::addRamp(sys->hostFs(), "/stream", 16 * MiB);  // 2x cache
    auto ctx = block();
    int pinfd = sys->fs().gopen(ctx, "/pin", G_RDONLY);
    uint64_t mapped = 0;
    void *p = sys->fs().gmmap(ctx, pinfd, 0, 64 * KiB, &mapped);
    ASSERT_NE(nullptr, p);
    uint8_t expect = *static_cast<uint8_t *>(p);

    int sfd = sys->fs().gopen(ctx, "/stream", G_RDONLY);
    std::vector<uint8_t> buf(64 * KiB);
    for (uint64_t off = 0; off < 16 * MiB; off += buf.size())
        ASSERT_GT(sys->fs().gread(ctx, sfd, off, buf.size(), buf.data()), 0);
    EXPECT_GT(sys->fs().stats().counter("pages_reclaimed").get(), 0u);
    EXPECT_EQ(expect, *static_cast<uint8_t *>(p));

    sys->fs().gmunmap(ctx, p);
    sys->fs().gclose(ctx, pinfd);
    sys->fs().gclose(ctx, sfd);
}

TEST_F(GpuFsApiTest, GmsyncWritesBackOnePage)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/ms", G_RDWR | G_CREAT);
    uint64_t mapped = 0;
    void *p = sys->fs().gmmap(ctx, fd, 0, 64 * KiB, &mapped);
    ASSERT_NE(nullptr, p);
    std::memset(p, 0x3C, 512);
    // gmmap'd writes need explicit dirty marking via gwrite... no:
    // writes through the mapping are only pushed by gmsync if the page
    // is dirty. Use gwrite for the dirty bookkeeping, then gmsync.
    sys->fs().gmunmap(ctx, p);
    std::vector<uint8_t> data(512, 0x3C);
    sys->fs().gwrite(ctx, fd, 0, data.size(), data.data());
    p = sys->fs().gmmap(ctx, fd, 0, 64 * KiB, &mapped);
    EXPECT_EQ(Status::Ok, sys->fs().gmsync(ctx, p));
    hostfs::FileInfo info;
    sys->hostFs().stat("/ms", &info);
    EXPECT_EQ(512u, info.size);
    sys->fs().gmunmap(ctx, p);
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, EvictionWritesDirtyPagesBack)
{
    // Fill the entire cache with dirty data from one file, then read a
    // second file: last-resort reclaim must write dirty pages home
    // (the paging policy reaches writable files only after closed and
    // read-only files, §4.2 — here there is nothing else to take).
    auto ctx = block();
    int wfd = sys->fs().gopen(ctx, "/dirty", G_RDWR | G_CREAT);
    std::vector<uint8_t> data(64 * KiB, 0x99);
    for (uint64_t off = 0; off < 8 * MiB; off += data.size())
        sys->fs().gwrite(ctx, wfd, off, data.size(), data.data());

    test::addRamp(sys->hostFs(), "/stream", 2 * MiB);
    int sfd = sys->fs().gopen(ctx, "/stream", G_RDONLY);
    std::vector<uint8_t> buf(64 * KiB);
    for (uint64_t off = 0; off < 2 * MiB; off += buf.size())
        sys->fs().gread(ctx, sfd, off, buf.size(), buf.data());

    // Some dirty pages were evicted; their data must be on the host.
    hostfs::FileInfo info;
    sys->hostFs().stat("/dirty", &info);
    EXPECT_GT(info.size, 0u);
    // And everything still readable through GPUfs (refetches).
    std::vector<uint8_t> back(64 * KiB);
    ASSERT_EQ(int64_t(back.size()),
              sys->fs().gread(ctx, wfd, 0, back.size(), back.data()));
    EXPECT_EQ(0x99, back[0]);
    EXPECT_EQ(0x99, back[back.size() - 1]);
    sys->fs().gclose(ctx, wfd);
    sys->fs().gclose(ctx, sfd);
}

TEST_F(GpuFsApiTest, DirtyCloseKeepsHostFdUntilClean)
{
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/d", G_RDWR | G_CREAT);
    uint8_t v = 1;
    sys->fs().gwrite(ctx, fd, 0, 1, &v);
    sys->fs().gclose(ctx, fd);
    // Dirty close: host fd retained (footnote-2 handling).
    EXPECT_EQ(1u, sys->hostFs().openCount());

    // Reopen, sync, close: now clean, fd released.
    fd = sys->fs().gopen(ctx, "/d", G_RDWR);
    sys->fs().gfsync(ctx, fd);
    sys->fs().gclose(ctx, fd);
    EXPECT_EQ(0u, sys->hostFs().openCount());
}

TEST_F(GpuFsApiTest, ReadPastEofReturnsZero)
{
    test::addRamp(sys->hostFs(), "/eof", 100);
    auto ctx = block();
    int fd = sys->fs().gopen(ctx, "/eof", G_RDONLY);
    uint8_t b;
    EXPECT_EQ(0, sys->fs().gread(ctx, fd, 200, 1, &b));
    // Partially past EOF: clamped.
    std::vector<uint8_t> buf(100);
    EXPECT_EQ(50, sys->fs().gread(ctx, fd, 50, 100, buf.data()));
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, BadFdRejected)
{
    auto ctx = block();
    uint8_t b;
    EXPECT_EQ(-int64_t(Status::BadFd),
              sys->fs().gread(ctx, 99, 0, 1, &b));
    EXPECT_EQ(Status::BadFd, sys->fs().gclose(ctx, 99));
    EXPECT_EQ(Status::BadFd, sys->fs().gfsync(ctx, -1));
}

TEST_F(GpuFsApiTest, VirtualTimeAdvancesWithIo)
{
    test::addRamp(sys->hostFs(), "/t", 1 * MiB);
    auto ctx = block();
    Time t0 = ctx.now();
    int fd = sys->fs().gopen(ctx, "/t", G_RDONLY);
    std::vector<uint8_t> buf(1 * MiB);
    sys->fs().gread(ctx, fd, 0, buf.size(), buf.data());
    // At minimum the PCIe transfer of 1 MiB must have been charged.
    EXPECT_GE(ctx.now() - t0,
              transferTime(1 * MiB, sys->sim().params.pcieBwH2DMBps));
    sys->fs().gclose(ctx, fd);
}

TEST_F(GpuFsApiTest, ConcurrentBlocksReadCorrectly)
{
    test::addRamp(sys->hostFs(), "/par", 4 * MiB);
    std::atomic<uint64_t> errors{0};
    gpu::launch(sys->device(0), 56, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys->fs();
        int fd = fs.gopen(ctx, "/par", G_RDONLY);
        if (fd < 0) {
            errors.fetch_add(1);
            return;
        }
        std::vector<uint8_t> buf(32 * KiB);
        uint64_t span = 4 * MiB / ctx.numBlocks();
        uint64_t base = ctx.blockId() * span;
        for (uint64_t off = base; off + buf.size() <= base + span;
             off += buf.size()) {
            if (fs.gread(ctx, fd, off, buf.size(), buf.data()) !=
                int64_t(buf.size())) {
                errors.fetch_add(1);
                continue;
            }
            for (size_t i = 0; i < buf.size(); i += 4096) {
                if (buf[i] != test::rampByte(off + i))
                    errors.fetch_add(1);
            }
        }
        fs.gclose(ctx, fd);
    });
    EXPECT_EQ(0u, errors.load());
    EXPECT_EQ(0u, sys->hostFs().openCount());   // all refs drained
}

} // namespace
} // namespace core
} // namespace gpufs
