/** @file Concurrency stress and failure-injection tests. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "gpufs/system.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

/** A provider that fails reads after a fuse burns (fault injection). */
class FailingContent : public hostfs::ContentProvider
{
  public:
    explicit FailingContent(uint64_t fail_after_reads)
        : fuse(fail_after_reads) {}

    void
    readAt(uint64_t offset, uint64_t len, uint8_t *dst) override
    {
        if (fuse.fetch_sub(1, std::memory_order_relaxed) <= 0) {
            // Simulated media error: poison instead of data. HostFs has
            // no error channel from providers, so the fault-injection
            // test drives the error through a zero-length file instead;
            // this poison path catches silent misuse.
            std::memset(dst, 0xDE, len);
            return;
        }
        for (uint64_t i = 0; i < len; ++i)
            dst[i] = uint8_t((offset + i) * 131 + 7);
    }

    bool writeAt(uint64_t, uint64_t, const uint8_t *) override
    {
        return false;
    }
    bool writable() const override { return false; }

  private:
    std::atomic<int64_t> fuse;
};

class StressTest : public ::testing::Test
{
  protected:
    StressTest()
    {
        GpuFsParams p;
        p.pageSize = 16 * KiB;
        p.cacheBytes = 1 * MiB;     // tiny: constant paging
        p.maxOpenFiles = 32;
        sys = std::make_unique<GpufsSystem>(1, p);
    }

    std::unique_ptr<GpufsSystem> sys;
};

TEST_F(StressTest, MixedOpsUnderPagingKeepDataIntact)
{
    // 16 files x 256 KiB vs a 1 MiB cache; 56 blocks read, write and
    // re-open concurrently. Every read is verified against the
    // deterministic content; every written byte is verified after.
    // (56 concurrently-open per-block output files need a larger file
    // table than the fixture's churn-test default.)
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    // 128 frames: heavy paging against the 4 MiB working set, but
    // enough headroom that 56 transient pins can't exhaust the arena.
    p.cacheBytes = 2 * MiB;
    p.maxOpenFiles = 128;
    sys = std::make_unique<GpufsSystem>(1, p);
    constexpr unsigned kFiles = 16;
    constexpr uint64_t kFileSize = 256 * KiB;
    for (unsigned f = 0; f < kFiles; ++f)
        test::addRamp(sys->hostFs(), "/in" + std::to_string(f), kFileSize);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys->device(0), 56, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys->fs();
        std::vector<uint8_t> buf(24 * KiB);
        std::string out_path = "/out" + std::to_string(ctx.blockId());
        int ofd = fs.gopen(ctx, out_path, G_RDWR | G_CREAT);
        if (ofd < 0) {
            errors.fetch_add(1);
            return;
        }
        for (int iter = 0; iter < 30; ++iter) {
            unsigned f = unsigned(ctx.rng().nextBelow(kFiles));
            int fd = fs.gopen(ctx, "/in" + std::to_string(f), G_RDONLY);
            if (fd < 0) {
                errors.fetch_add(1);
                continue;
            }
            uint64_t off = ctx.rng().nextBelow(kFileSize - buf.size());
            int64_t n = fs.gread(ctx, fd, off, buf.size(), buf.data());
            if (n != int64_t(buf.size())) {
                errors.fetch_add(1);
            } else {
                for (size_t i = 0; i < buf.size(); i += 997) {
                    if (buf[i] != test::rampByte(off + i))
                        errors.fetch_add(1);
                }
            }
            // Write a stamped record into this block's own file.
            uint8_t stamp = uint8_t(ctx.blockId() ^ iter);
            std::memset(buf.data(), stamp, 512);
            if (fs.gwrite(ctx, ofd, uint64_t(iter) * 512, 512,
                          buf.data()) != 512) {
                errors.fetch_add(1);
            }
            fs.gclose(ctx, fd);
        }
        if (!ok(fs.gfsync(ctx, ofd)))
            errors.fetch_add(1);
        fs.gclose(ctx, ofd);
    });
    ASSERT_EQ(0u, errors.load());
    EXPECT_GT(sys->fs().stats().counter("pages_reclaimed").get(), 0u);

    // Verify every block's output file on the host.
    for (unsigned b = 0; b < 56; ++b) {
        int fd = sys->hostFs().open("/out" + std::to_string(b),
                                    hostfs::O_RDONLY_F);
        ASSERT_GE(fd, 0) << b;
        uint8_t byte = 0;
        for (int iter = 0; iter < 30; ++iter) {
            sys->hostFs().pread(fd, &byte, 1, uint64_t(iter) * 512);
            EXPECT_EQ(uint8_t(b ^ iter), byte) << "block " << b;
        }
        sys->hostFs().close(fd);
    }
    EXPECT_EQ(0u, sys->hostFs().openCount());
}

TEST_F(StressTest, OpenTableChurnRecyclesClosedEntries)
{
    // More distinct files than table slots: closed entries must be
    // recycled (oldest first) without losing open files.
    constexpr unsigned kFiles = 100;     // > maxOpenFiles (32)
    for (unsigned f = 0; f < kFiles; ++f)
        test::addRamp(sys->hostFs(), "/c" + std::to_string(f), 4 * KiB);

    auto ctx = test::makeBlock(sys->device(0));
    for (int round = 0; round < 3; ++round) {
        for (unsigned f = 0; f < kFiles; ++f) {
            int fd = sys->fs().gopen(ctx, "/c" + std::to_string(f),
                                     G_RDONLY);
            ASSERT_GE(fd, 0) << f;
            uint8_t b;
            ASSERT_EQ(1, sys->fs().gread(ctx, fd, f % 4096, 1, &b));
            EXPECT_EQ(test::rampByte(f % 4096), b);
            ASSERT_EQ(Status::Ok, sys->fs().gclose(ctx, fd));
        }
    }
    EXPECT_EQ(0u, sys->hostFs().openCount());
}

TEST_F(StressTest, TooManyConcurrentOpenFilesReported)
{
    for (unsigned f = 0; f < 40; ++f)
        test::addRamp(sys->hostFs(), "/t" + std::to_string(f), 64);
    auto ctx = test::makeBlock(sys->device(0));
    std::vector<int> fds;
    int failed_at = -1;
    for (unsigned f = 0; f < 40; ++f) {
        int fd = sys->fs().gopen(ctx, "/t" + std::to_string(f), G_RDONLY);
        if (fd < 0) {
            EXPECT_EQ(-int(Status::TooManyFiles), fd);
            failed_at = int(f);
            break;
        }
        fds.push_back(fd);
    }
    // 40 > 32 slots: must hit the limit, but not before filling it.
    EXPECT_GE(failed_at, 32);
    for (int fd : fds)
        sys->fs().gclose(ctx, fd);
}

TEST_F(StressTest, ZeroByteFileBehaves)
{
    test::addBytes(sys->hostFs(), "/empty", {});
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/empty", G_RDONLY);
    ASSERT_GE(fd, 0);
    uint8_t b;
    EXPECT_EQ(0, sys->fs().gread(ctx, fd, 0, 1, &b));
    GStat st;
    sys->fs().gfstat(ctx, fd, &st);
    EXPECT_EQ(0u, st.size);
    uint64_t mapped = 1;
    EXPECT_EQ(nullptr, sys->fs().gmmap(ctx, fd, 0, 16, &mapped));
    sys->fs().gclose(ctx, fd);
}

TEST_F(StressTest, RepeatedOpenCloseOfSameFileIsIdempotent)
{
    test::addRamp(sys->hostFs(), "/rep", 8 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    uint64_t rpcs_before = sys->fs().stats().counter("open_rpcs").get();
    for (int i = 0; i < 50; ++i) {
        int fd = sys->fs().gopen(ctx, "/rep", G_RDONLY);
        ASSERT_GE(fd, 0);
        sys->fs().gclose(ctx, fd);
    }
    // Cache retained across closes: only the first open needs the CPU
    // (plus one per reopen validation; far fewer than 50 full opens
    // would imply if caches were dropped).
    uint64_t rpcs = sys->fs().stats().counter("open_rpcs").get()
        - rpcs_before;
    EXPECT_LE(rpcs, 50u);
    EXPECT_EQ(0u, sys->fs().stats().counter("cache_invalidations").get());
}

TEST_F(StressTest, PoisonedProviderDataIsContained)
{
    // Fault injection: after the fuse burns, the provider returns
    // poison. GPUfs must still deliver *something* without corrupting
    // unrelated files' cached pages.
    sys->hostFs().addFile("/flaky", std::make_unique<FailingContent>(4),
                          256 * KiB);
    test::addRamp(sys->hostFs(), "/good", 64 * KiB);
    auto ctx = test::makeBlock(sys->device(0));

    int good = sys->fs().gopen(ctx, "/good", G_RDONLY);
    uint8_t gb;
    sys->fs().gread(ctx, good, 100, 1, &gb);
    EXPECT_EQ(test::rampByte(100), gb);

    int flaky = sys->fs().gopen(ctx, "/flaky", G_RDONLY);
    std::vector<uint8_t> buf(256 * KiB);
    sys->fs().gread(ctx, flaky, 0, buf.size(), buf.data());

    // The good file's cached page is untouched by the poison.
    sys->fs().gread(ctx, good, 100, 1, &gb);
    EXPECT_EQ(test::rampByte(100), gb);
    sys->fs().gclose(ctx, flaky);
    sys->fs().gclose(ctx, good);
}

TEST_F(StressTest, AsyncMixedOpsUnderPagingKeepDataIntact)
{
    // The async twin of MixedOpsUnderPagingKeepDataIntact, with the
    // write-back flusher racing the split-phase submissions: blocks
    // keep several read/write tokens in flight, wait them out of
    // order, interleave sync wrappers (which harvest pending claims),
    // and close files with tokens outstanding. TSan runs this in CI.
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = 2 * MiB;         // heavy paging
    p.maxOpenFiles = 128;
    p.asyncWriteback = true;        // flusher races the async ops
    p.flusherIntervalUs = 50;
    sys = std::make_unique<GpufsSystem>(1, p);
    constexpr unsigned kFiles = 8;
    constexpr uint64_t kFileSize = 256 * KiB;
    for (unsigned f = 0; f < kFiles; ++f)
        test::addRamp(sys->hostFs(), "/ain" + std::to_string(f),
                      kFileSize);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys->device(0), 56, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys->fs();
        std::string out_path = "/aout" + std::to_string(ctx.blockId());
        int ofd = fs.gopen(ctx, out_path, G_RDWR | G_CREAT);
        if (ofd < 0) {
            errors.fetch_add(1);
            return;
        }
        constexpr uint64_t kChunk = 24 * KiB;
        std::vector<uint8_t> rbuf[2] = {std::vector<uint8_t>(kChunk),
                                        std::vector<uint8_t>(kChunk)};
        std::vector<uint8_t> wbuf(512);
        for (int iter = 0; iter < 20; ++iter) {
            unsigned f = unsigned(ctx.rng().nextBelow(kFiles));
            int fd = fs.gopen(ctx, "/ain" + std::to_string(f),
                              G_RDONLY);
            if (fd < 0) {
                errors.fetch_add(1);
                continue;
            }
            // Two overlapping-in-time reads, waited in reverse order.
            uint64_t o0 = ctx.rng().nextBelow(kFileSize - kChunk);
            uint64_t o1 = ctx.rng().nextBelow(kFileSize - kChunk);
            IoToken t0 = fs.gread_async(ctx, fd, o0, kChunk,
                                        rbuf[0].data());
            IoToken t1 = fs.gread_async(ctx, fd, o1, kChunk,
                                        rbuf[1].data());
            // A write token into this block's own file rides along.
            uint8_t stamp = uint8_t(ctx.blockId() ^ iter);
            std::memset(wbuf.data(), stamp, wbuf.size());
            IoToken tw = fs.gwrite_async(ctx, ofd,
                                         uint64_t(iter) * wbuf.size(),
                                         wbuf.size(), wbuf.data());
            if (fs.gwait(ctx, t1) != int64_t(kChunk)) {
                errors.fetch_add(1);
            } else {
                for (size_t i = 0; i < kChunk; i += 997) {
                    if (rbuf[1][i] != test::rampByte(o1 + i))
                        errors.fetch_add(1);
                }
            }
            if (fs.gwait(ctx, t0) != int64_t(kChunk)) {
                errors.fetch_add(1);
            } else {
                for (size_t i = 0; i < kChunk; i += 997) {
                    if (rbuf[0][i] != test::rampByte(o0 + i))
                        errors.fetch_add(1);
                }
            }
            if (fs.gwait(ctx, tw) != int64_t(wbuf.size()))
                errors.fetch_add(1);
            // Every third iteration closes with a token outstanding
            // (wait-after-close) and syncs through the async path.
            if (iter % 3 == 0) {
                IoToken late = fs.gread_async(ctx, fd, 0, 1 * KiB,
                                              rbuf[0].data());
                fs.gclose(ctx, fd);
                if (fs.gwait(ctx, late) != int64_t(1 * KiB))
                    errors.fetch_add(1);
                if (!ok(gstatus_of(
                        fs.gwait(ctx, fs.gfsync_async(ctx, ofd)))))
                    errors.fetch_add(1);
            } else {
                fs.gclose(ctx, fd);
            }
        }
        if (!ok(fs.gwait_all(ctx)))
            errors.fetch_add(1);
        if (!ok(fs.gfsync(ctx, ofd)))
            errors.fetch_add(1);
        fs.gclose(ctx, ofd);
    });
    ASSERT_EQ(0u, errors.load());

    // Verify every block's output file on the host.
    for (unsigned b = 0; b < 56; ++b) {
        int fd = sys->hostFs().open("/aout" + std::to_string(b),
                                    hostfs::O_RDONLY_F);
        ASSERT_GE(fd, 0) << b;
        uint8_t byte = 0;
        for (int iter = 0; iter < 20; ++iter) {
            sys->hostFs().pread(fd, &byte, 1, uint64_t(iter) * 512);
            EXPECT_EQ(uint8_t(b ^ iter), byte) << "block " << b;
        }
        sys->hostFs().close(fd);
    }
}

TEST_F(StressTest, AdaptiveReadAheadThreadedMixedPhases)
{
    // Adaptive read-ahead (the default policy) under real threading:
    // 32 blocks alternate sequential sweeps over a private file
    // (clean per-file streams: trackers ramp, prefetch flows) with
    // random reads of a shared file (interleaved misses: the shared
    // tracker collapses), under a cache small enough that speculative
    // frames die cold and the throttle/ghost machinery runs. The
    // tracker and speculative-tag state is hammered from app blocks,
    // split-phase collection, and eviction concurrently — the TSan CI
    // job runs this plus readahead_test.
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = 3 * MiB;         // 192 frames vs ~9 MiB working set
    p.maxOpenFiles = 64;
    sys = std::make_unique<GpufsSystem>(1, p);
    constexpr unsigned kBlocks = 32;
    constexpr uint64_t kFileSize = 256 * KiB;   // 16 pages each
    for (unsigned b = 0; b < kBlocks; ++b) {
        test::addRamp(sys->hostFs(), "/seq" + std::to_string(b),
                      kFileSize);
    }
    test::addRamp(sys->hostFs(), "/shared", 1 * MiB);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys->device(0), kBlocks, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys->fs();
        std::vector<uint8_t> buf(16 * KiB);
        std::string mine = "/seq" + std::to_string(ctx.blockId());
        for (int round = 0; round < 6; ++round) {
            // Sequential phase: full sweep of the private file.
            int fd = fs.gopen(ctx, mine, G_RDONLY);
            if (fd < 0) {
                errors.fetch_add(1);
                continue;
            }
            for (uint64_t off = 0; off < kFileSize; off += buf.size()) {
                if (fs.gread(ctx, fd, off, buf.size(), buf.data()) !=
                    int64_t(buf.size())) {
                    errors.fetch_add(1);
                    continue;
                }
                for (size_t i = 0; i < buf.size(); i += 997) {
                    if (buf[i] != test::rampByte(off + i))
                        errors.fetch_add(1);
                }
            }
            fs.gclose(ctx, fd);
            // Random phase: shared file, interleaved across blocks.
            int sfd = fs.gopen(ctx, "/shared", G_RDONLY);
            if (sfd < 0) {
                errors.fetch_add(1);
                continue;
            }
            for (int i = 0; i < 8; ++i) {
                uint64_t off =
                    ctx.rng().nextBelow(1 * MiB - buf.size());
                int64_t n = fs.gread(ctx, sfd, off, buf.size(),
                                     buf.data());
                if (n != int64_t(buf.size())) {
                    errors.fetch_add(1);
                } else {
                    for (size_t i2 = 0; i2 < buf.size(); i2 += 1021) {
                        if (buf[i2] != test::rampByte(off + i2))
                            errors.fetch_add(1);
                    }
                }
            }
            fs.gclose(ctx, sfd);
        }
    });
    ASSERT_EQ(0u, errors.load());
    // Feedback accounting survived the races: nothing over-counted.
    uint64_t issued = sys->fs().stats().counter("ra_issued").get();
    uint64_t hit = sys->fs().stats().counter("ra_hit").get();
    uint64_t wasted = sys->fs().stats().counter("ra_wasted").get();
    EXPECT_LE(wasted, issued);
    EXPECT_LE(hit, issued);
    EXPECT_GT(issued, 0u);      // the private sweeps did prefetch
    EXPECT_GT(sys->fs().stats().counter("pages_reclaimed").get(), 0u);
}

TEST_F(StressTest, SharedFileRegionScansRampPerStreamConcurrently)
{
    // The cross-block scaling workload under real threading: a full
    // wave of blocks scans disjoint regions of ONE file with adaptive
    // read-ahead. Every miss races the per-(file, stream) table's slot
    // resolution, every completion races the speculative-tag feedback
    // routing, and the tight cache keeps eviction (waste attribution)
    // in the mix. TSan runs this in CI; the assertions check that the
    // table actually kept concurrent streams apart and that the
    // aggregate accounting never leaked a page.
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = 3 * MiB;         // 192 frames vs 12 MiB of file
    sys = std::make_unique<GpufsSystem>(1, p);
    constexpr unsigned kBlocks = 48;        // > kStreamSlots: recycles
    constexpr uint64_t kRegionPages = 16;
    constexpr uint64_t kRegion = kRegionPages * 16 * KiB;
    test::addRamp(sys->hostFs(), "/wide", kBlocks * kRegion);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys->device(0), kBlocks, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys->fs();
        std::vector<uint8_t> buf(16 * KiB);
        int fd = fs.gopen(ctx, "/wide", G_RDONLY);
        if (fd < 0) {
            errors.fetch_add(1);
            return;
        }
        for (int round = 0; round < 3; ++round) {
            const uint64_t base = ctx.blockId() * kRegion;
            for (uint64_t off = base; off < base + kRegion;
                 off += buf.size()) {
                if (fs.gread(ctx, fd, off, buf.size(), buf.data()) !=
                    int64_t(buf.size())) {
                    errors.fetch_add(1);
                    continue;
                }
                for (size_t i = 0; i < buf.size(); i += 997) {
                    if (buf[i] != test::rampByte(off + i))
                        errors.fetch_add(1);
                }
            }
        }
        fs.gclose(ctx, fd);
    });
    ASSERT_EQ(0u, errors.load());
    uint64_t issued = sys->fs().stats().counter("ra_issued").get();
    uint64_t hit = sys->fs().stats().counter("ra_hit").get();
    uint64_t wasted = sys->fs().stats().counter("ra_wasted").get();
    EXPECT_LE(wasted, issued);
    EXPECT_LE(hit, issued);
    EXPECT_GT(issued, 0u);      // the region scans did prefetch
    // The table resolved many concurrent streams, not one smeared one.
    EXPECT_GT(sys->fs().stats().counter("ra_streams_active").get(), 1u);
}

TEST_F(StressTest, ReadAheadPrefetchesSequentialPages)
{
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = 8 * MiB;
    p.readAheadPages = 4;
    GpufsSystem ra_sys(1, p);
    test::addRamp(ra_sys.hostFs(), "/seq", 1 * MiB);

    auto ctx = test::makeBlock(ra_sys.device(0));
    int fd = ra_sys.fs().gopen(ctx, "/seq", G_RDONLY);
    std::vector<uint8_t> buf(16 * KiB);
    // Read the first page only: read-ahead should have pulled more.
    ra_sys.fs().gread(ctx, fd, 0, buf.size(), buf.data());
    uint64_t resident_after_one =
        ra_sys.fs().stats().counter("cache_misses").get();
    EXPECT_GE(resident_after_one, 5u);   // 1 demand + 4 prefetched

    // Sequential scan: correctness unchanged, and the whole file ends
    // up cached.
    for (uint64_t off = 0; off < 1 * MiB; off += buf.size()) {
        ASSERT_EQ(int64_t(buf.size()),
                  ra_sys.fs().gread(ctx, fd, off, buf.size(), buf.data()));
        for (size_t i = 0; i < buf.size(); i += 1021)
            ASSERT_EQ(test::rampByte(off + i), buf[i]);
    }
    ra_sys.fs().gclose(ctx, fd);
}

TEST_F(StressTest, ReadAheadReducesVirtualTimeOfSequentialScan)
{
    // The extension's payoff: per-access map overhead amortizes.
    auto run = [&](unsigned ra_pages) {
        GpuFsParams p;
        p.pageSize = 64 * KiB;
        p.cacheBytes = 32 * MiB;
        p.readAheadPages = ra_pages;
        // The ra_pages=0 baseline must stay read-ahead-free (adaptive,
        // the default, would prefetch this sequential scan itself).
        p.readAheadPolicy = ReadAheadPolicy::Static;
        GpufsSystem s(1, p);
        test::addRamp(s.hostFs(), "/seq", 16 * MiB);
        // Warm the host page cache: the read-ahead win is the per-map
        // overhead, which a cold (disk-bound) run would drown out.
        hostfs::FileInfo info;
        s.hostFs().stat("/seq", &info);
        s.hostFs().cache().prefault(info.ino, 0, info.size);
        Time elapsed = 0;
        gpu::KernelStats ks = gpu::launch(
            s.device(0), 4, 256, [&](gpu::BlockCtx &ctx) {
                int fd = s.fs().gopen(ctx, "/seq", G_RDONLY);
                std::vector<uint8_t> buf(64 * KiB);
                uint64_t span = 16 * MiB / ctx.numBlocks();
                uint64_t base = ctx.blockId() * span;
                for (uint64_t off = base; off < base + span;
                     off += buf.size()) {
                    s.fs().gread(ctx, fd, off, buf.size(), buf.data());
                }
                s.fs().gclose(ctx, fd);
            });
        elapsed = ks.elapsed();
        return elapsed;
    };
    Time without = run(0);
    Time with = run(8);
    EXPECT_LT(with, without);
}

} // namespace
} // namespace core
} // namespace gpufs
