/** @file Correctness tests of the GPU application kernels (§5.2). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <sstream>

#include "gpufs/system.hh"
#include "tests/testutil.hh"
#include "workloads/kernels.hh"

namespace gpufs {
namespace workloads {
namespace {

class KernelsTest : public ::testing::Test
{
  protected:
    KernelsTest()
    {
        core::GpuFsParams p;
        p.pageSize = 64 * KiB;
        p.cacheBytes = 512 * MiB;
        sys = std::make_unique<core::GpufsSystem>(1, p);
    }

    std::unique_ptr<core::GpufsSystem> sys;
};

// ---- image search ----

TEST_F(KernelsTest, ImageSearchFindsEveryPlantedQuery)
{
    const uint32_t kQueries = 48;
    auto dbs = makePaperDbs(1, kQueries, /*plant=*/true, 0.01);
    for (const auto &db : dbs)
        addImageDb(sys->hostFs(), db, 42);
    addQueryFile(sys->hostFs(), "/q.bin", 42, kQueries, dbs[0].dim);

    auto r = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin", 0,
                            kQueries, 1e-6);
    ASSERT_EQ(kQueries, r.results.size());
    for (uint32_t q = 0; q < kQueries; ++q) {
        ASSERT_TRUE(r.results[q].found()) << "query " << q;
        const auto &db = dbs[r.results[q].db];
        auto it = db.planted.find(r.results[q].image);
        ASSERT_NE(db.planted.end(), it) << "query " << q;
        EXPECT_EQ(q, it->second);
    }
    EXPECT_GT(r.elapsed, 0u);
}

TEST_F(KernelsTest, ImageSearchNoMatchFindsNothing)
{
    const uint32_t kQueries = 16;
    auto dbs = makePaperDbs(2, kQueries, /*plant=*/false, 0.005);
    for (const auto &db : dbs)
        addImageDb(sys->hostFs(), db, 42);
    addQueryFile(sys->hostFs(), "/q.bin", 42, kQueries, dbs[0].dim);

    auto r = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin", 0,
                            kQueries, 1e-6);
    for (const auto &m : r.results)
        EXPECT_FALSE(m.found());
}

TEST_F(KernelsTest, ImageSearchAgreesWithCpuBaseline)
{
    const uint32_t kQueries = 24;
    auto dbs = makePaperDbs(3, kQueries, /*plant=*/true, 0.005);
    for (const auto &db : dbs)
        addImageDb(sys->hostFs(), db, 42);
    addQueryFile(sys->hostFs(), "/q.bin", 42, kQueries, dbs[0].dim);

    auto gpu = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin", 0,
                              kQueries, 1e-6);
    Time cpu_time = 0;
    auto cpu = cpuImageSearch(sys->wrapFs(), dbs, 42, kQueries, 1e-6,
                              &cpu_time);
    for (uint32_t q = 0; q < kQueries; ++q) {
        EXPECT_EQ(cpu[q].db, gpu.results[q].db) << "query " << q;
        EXPECT_EQ(cpu[q].image, gpu.results[q].image) << "query " << q;
    }
}

TEST_F(KernelsTest, ImageSearchQueryRangeSplit)
{
    // Splitting the query list (as the multi-GPU run does) must yield
    // the same per-query results.
    const uint32_t kQueries = 20;
    auto dbs = makePaperDbs(4, kQueries, /*plant=*/true, 0.004);
    for (const auto &db : dbs)
        addImageDb(sys->hostFs(), db, 42);
    addQueryFile(sys->hostFs(), "/q.bin", 42, kQueries, dbs[0].dim);

    auto whole = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin",
                                0, kQueries, 1e-6);
    auto lo = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin", 0,
                             kQueries / 2, 1e-6);
    auto hi = gpuImageSearch(sys->fs(), sys->device(0), dbs, "/q.bin",
                             kQueries / 2, kQueries, 1e-6);
    for (uint32_t q = 0; q < kQueries / 2; ++q) {
        EXPECT_EQ(whole.results[q].db, lo.results[q].db);
        EXPECT_EQ(whole.results[q].image, lo.results[q].image);
    }
    for (uint32_t q = kQueries / 2; q < kQueries; ++q) {
        EXPECT_EQ(whole.results[q].db,
                  hi.results[q - kQueries / 2].db);
        EXPECT_EQ(whole.results[q].image,
                  hi.results[q - kQueries / 2].image);
    }
}

// ---- grep ----

TEST_F(KernelsTest, GrepCountsMatchCpuAndRawScan)
{
    Dictionary dict(7, 500);
    dict.install(sys->hostFs(), "/dict.bin");
    Corpus corpus = makeTree(sys->hostFs(), dict, 8, "/src", 40,
                             512 * 1024);

    auto gpu = gpuGrep(sys->fs(), sys->device(0), dict, "/dict.bin",
                       corpus.listPath, "/out.txt");
    Time cpu_time = 0;
    auto cpu = cpuGrep(sys->wrapFs(), dict, corpus, &cpu_time);
    EXPECT_EQ(cpu, gpu.counts);
    uint64_t total = 0;
    for (uint64_t c : gpu.counts)
        total += c;
    EXPECT_GT(total, 0u);
}

TEST_F(KernelsTest, GrepSegmentationInvariantToSegmentSize)
{
    // The same corpus counted with tiny and huge segments must agree:
    // boundary tokens are attributed exactly once.
    Dictionary dict(9, 300);
    dict.install(sys->hostFs(), "/dict.bin");
    Corpus corpus = makeSingleFile(sys->hostFs(), dict, 4, "/big.txt",
                                   300 * 1024);

    auto tiny = gpuGrep(sys->fs(), sys->device(0), dict, "/dict.bin",
                        corpus.listPath, "/out1.txt", 28, 512, 4 * KiB);
    auto huge = gpuGrep(sys->fs(), sys->device(0), dict, "/dict.bin",
                        corpus.listPath, "/out2.txt", 28, 512, 1 * MiB);
    EXPECT_EQ(tiny.counts, huge.counts);
}

TEST_F(KernelsTest, GrepOutputLinesSumToCounts)
{
    // Parse the GPU-formatted output file and check the per-word sums
    // equal the in-memory totals (the output is the real deliverable).
    Dictionary dict(11, 200);
    dict.install(sys->hostFs(), "/dict.bin");
    Corpus corpus = makeTree(sys->hostFs(), dict, 10, "/src", 12,
                             128 * 1024);
    auto gpu = gpuGrep(sys->fs(), sys->device(0), dict, "/dict.bin",
                       corpus.listPath, "/out.txt");

    hostfs::FileInfo info;
    ASSERT_EQ(Status::Ok, sys->hostFs().stat("/out.txt", &info));
    ASSERT_EQ(gpu.outputBytes, info.size);
    std::vector<char> raw(info.size);
    int fd = sys->hostFs().open("/out.txt", hostfs::O_RDONLY_F);
    sys->hostFs().pread(fd, reinterpret_cast<uint8_t *>(raw.data()),
                        info.size, 0);
    sys->hostFs().close(fd);

    std::map<std::string, uint64_t> sums;
    std::istringstream in(std::string(raw.begin(), raw.end()));
    std::string word, path;
    uint64_t count;
    while (in >> word >> path >> count) {
        sums[word] += count;
        EXPECT_EQ('/', path[0]);    // second field is a path
    }
    for (uint32_t w = 0; w < dict.size(); ++w) {
        uint64_t expect = gpu.counts[w];
        auto it = sums.find(dict.word(w));
        uint64_t got = it == sums.end() ? 0 : it->second;
        EXPECT_EQ(expect, got) << dict.word(w);
    }
}

TEST_F(KernelsTest, GrepEmptyCorpus)
{
    Dictionary dict(13, 100);
    dict.install(sys->hostFs(), "/dict.bin");
    // Manifest with a single zero-byte file.
    test::addBytes(sys->hostFs(), "/empty.txt", {});
    std::string manifest = "/empty.txt 0\n";
    test::addBytes(sys->hostFs(), "/files.list",
                   std::vector<uint8_t>(manifest.begin(), manifest.end()));
    auto gpu = gpuGrep(sys->fs(), sys->device(0), dict, "/dict.bin",
                       "/files.list", "/out.txt");
    for (uint64_t c : gpu.counts)
        EXPECT_EQ(0u, c);
    EXPECT_EQ(0u, gpu.outputBytes);
}

// ---- matvec ----

TEST_F(KernelsTest, MatvecMatchesReferenceRowByRow)
{
    MatrixSpec spec = makeMatrix(21, 16.0, "/m");   // 32 rows
    addMatrixFiles(sys->hostFs(), spec);
    auto r = gpuMatvec(sys->fs(), sys->device(0), spec, "/y.bin");
    EXPECT_EQ(spec.rows, r.rows);

    int fd = sys->hostFs().open("/y.bin", hostfs::O_RDONLY_F);
    hostfs::FileInfo info;
    sys->hostFs().fstat(fd, &info);
    EXPECT_EQ(uint64_t(spec.rows) * sizeof(float), info.size);
    double sum = 0;
    for (uint32_t row = 0; row < spec.rows; ++row) {
        float y = 0;
        sys->hostFs().pread(fd, reinterpret_cast<uint8_t *>(&y),
                            sizeof(y), uint64_t(row) * sizeof(float));
        double ref = referenceRow(spec, row);
        EXPECT_NEAR(ref, y, 1e-3 * (1.0 + std::abs(ref))) << "row " << row;
        sum += y;
    }
    sys->hostFs().close(fd);
    EXPECT_NEAR(sum, r.checksum, 1e-2 * (1.0 + std::abs(sum)));
}

TEST_F(KernelsTest, MatvecCorrectUnderCachePressure)
{
    // Matrix 4x larger than the buffer cache: results must survive
    // paging (pages evicted and refetched mid-computation). With a
    // 32-frame cache the kernel runs 8 blocks (each block transiently
    // pins up to 2 pages; the cache must never be fully pinned).
    core::GpuFsParams p;
    p.pageSize = 2 * MiB;
    p.cacheBytes = 64 * MiB;
    core::GpufsSystem small(1, p);
    MatrixSpec spec = makeMatrix(22, 256.0, "/m");
    addMatrixFiles(small.hostFs(), spec);

    auto r = gpuMatvec(small.fs(), small.device(0), spec, "/y.bin",
                       /*num_blocks=*/8);
    EXPECT_GT(small.fs().stats().counter("pages_reclaimed").get(), 0u);

    int fd = small.hostFs().open("/y.bin", hostfs::O_RDONLY_F);
    for (uint32_t row = 0; row < spec.rows; row += 37) {
        float y = 0;
        small.hostFs().pread(fd, reinterpret_cast<uint8_t *>(&y),
                             sizeof(y), uint64_t(row) * sizeof(float));
        double ref = referenceRow(spec, row);
        EXPECT_NEAR(ref, y, 1e-3 * (1.0 + std::abs(ref))) << "row " << row;
    }
    small.hostFs().close(fd);
    EXPECT_GT(r.elapsed, 0u);
}

TEST_F(KernelsTest, MatvecRerunOverwritesOutput)
{
    // gftruncate at kernel start must reset stale output.
    MatrixSpec spec = makeMatrix(23, 8.0, "/m");
    addMatrixFiles(sys->hostFs(), spec);
    gpuMatvec(sys->fs(), sys->device(0), spec, "/y.bin");
    auto r2 = gpuMatvec(sys->fs(), sys->device(0), spec, "/y.bin");
    hostfs::FileInfo info;
    sys->hostFs().stat("/y.bin", &info);
    EXPECT_EQ(uint64_t(spec.rows) * sizeof(float), info.size);
    EXPECT_FALSE(std::isnan(r2.checksum));
}

} // namespace
} // namespace workloads
} // namespace gpufs
