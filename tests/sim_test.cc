/** @file Unit tests for the virtual-time resource model. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/context.hh"
#include "sim/hw_params.hh"
#include "sim/resource.hh"

namespace gpufs {
namespace sim {
namespace {

TEST(Resource, SerializesOverlappingRequests)
{
    Resource r("r");
    Grant a = r.reserve(0, 100);
    Grant b = r.reserve(0, 100);
    EXPECT_EQ(0u, a.start);
    EXPECT_EQ(100u, a.end);
    EXPECT_EQ(100u, b.start);    // queued behind a
    EXPECT_EQ(200u, b.end);
}

TEST(Resource, GapsAreBackfilledByVirtualTime)
{
    // Real threads race, so reservations may register out of virtual-
    // time order; the timeline must serve them by ready time, not by
    // arrival order.
    Resource r("r");
    r.reserve(0, 10);
    Grant late = r.reserve(1000, 10);
    EXPECT_EQ(1000u, late.start);    // device idle 10..1000
    Grant backfill = r.reserve(0, 10);
    EXPECT_EQ(10u, backfill.start);  // slots into the idle gap
    Grant tight = r.reserve(0, 2000);
    EXPECT_EQ(1010u, tight.start);   // too big for any gap: appends
}

TEST(Resource, ReadyInsideBusyIntervalPushesToEnd)
{
    Resource r("r");
    r.reserve(100, 100);     // busy [100, 200)
    Grant g = r.reserve(150, 10);
    EXPECT_EQ(200u, g.start);
}

TEST(Resource, ExactFitGapIsUsed)
{
    Resource r("r");
    r.reserve(0, 10);        // [0,10)
    r.reserve(20, 10);       // [20,30)
    Grant g = r.reserve(0, 10);
    EXPECT_EQ(10u, g.start); // exact 10-wide gap
    Grant g2 = r.reserve(0, 1);
    EXPECT_EQ(30u, g2.start);   // everything coalesced: appends
}

TEST(Resource, BusyTimeAccumulates)
{
    Resource r("r");
    r.reserve(0, 70);
    r.reserve(500, 30);
    EXPECT_EQ(100u, r.busyTime());
}

TEST(Resource, ResetClearsTimeline)
{
    Resource r("r");
    r.reserve(0, 100);
    r.reset();
    EXPECT_EQ(0u, r.horizon());
    EXPECT_EQ(0u, r.reserve(0, 5).start);
}

TEST(Resource, ConcurrentReservationsNeverOverlap)
{
    Resource r("r");
    constexpr int kThreads = 8, kPer = 500;
    std::vector<std::vector<Grant>> grants(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPer; ++i)
                grants[t].push_back(r.reserve(0, 7));
        });
    }
    for (auto &t : threads)
        t.join();
    // All grants must tile [0, kThreads*kPer*7) exactly.
    std::vector<Grant> all;
    for (auto &v : grants)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end(),
              [](const Grant &a, const Grant &b) { return a.start < b.start; });
    Time expect = 0;
    for (const Grant &g : all) {
        EXPECT_EQ(expect, g.start);
        EXPECT_EQ(expect + 7, g.end);
        expect = g.end;
    }
}

TEST(MultiResource, ParallelUpToServerCount)
{
    MultiResource m("m", 3);
    EXPECT_EQ(0u, m.reserve(0, 100).start);
    EXPECT_EQ(0u, m.reserve(0, 100).start);
    EXPECT_EQ(0u, m.reserve(0, 100).start);
    EXPECT_EQ(100u, m.reserve(0, 100).start);   // 4th waits
}

TEST(MultiResource, PicksEarliestServer)
{
    MultiResource m("m", 2);
    m.reserve(0, 10);    // server A busy to 10
    m.reserve(0, 50);    // server B busy to 50
    EXPECT_EQ(10u, m.reserve(0, 5).start);
}

TEST(MultiResource, AcquireReleaseRoundtrip)
{
    MultiResource m("m", 2);
    Grant g1 = m.acquire(0);
    Grant g2 = m.acquire(0);
    EXPECT_EQ(0u, g1.start);
    EXPECT_EQ(0u, g2.start);
    m.release(g1, 30);
    m.release(g2, 40);
    // Next block starts when the earliest slot freed.
    Grant g3 = m.acquire(0);
    EXPECT_EQ(30u, g3.start);
    m.release(g3, 60);
    EXPECT_EQ(60u, m.horizon());
}

TEST(MultiResource, HorizonIgnoresHeldSlots)
{
    MultiResource m("m", 2);
    Grant g = m.acquire(0);
    EXPECT_EQ(0u, m.horizon());   // held slot doesn't count
    m.release(g, 25);
    EXPECT_EQ(25u, m.horizon());
}

TEST(MultiResource, WaveSchedulingMatchesBlockModel)
{
    // 28 slots, 56 equal blocks -> exactly two waves.
    MultiResource m("m", 28);
    std::vector<Grant> grants;
    for (int b = 0; b < 56; ++b)
        grants.push_back(m.reserve(0, 1000));
    int wave0 = 0, wave1 = 0;
    for (const Grant &g : grants) {
        if (g.start == 0)
            ++wave0;
        else if (g.start == 1000)
            ++wave1;
    }
    EXPECT_EQ(28, wave0);
    EXPECT_EQ(28, wave1);
}

TEST(HwParams, WaveSlotsIsMpTimesResidency)
{
    HwParams p;
    EXPECT_EQ(p.mpCount * p.blocksPerMp, p.waveSlots());
    // Paper: 28 blocks = "twice the number of active multiprocessors".
    EXPECT_EQ(28u, p.waveSlots());
}

TEST(SimContext, ResetClearsSharedResources)
{
    SimContext ctx;
    ctx.cpuIo.reserve(0, 100);
    ctx.disk.reserve(0, 100);
    ctx.reset();
    EXPECT_EQ(0u, ctx.cpuIo.horizon());
    EXPECT_EQ(0u, ctx.disk.horizon());
}

} // namespace
} // namespace sim
} // namespace gpufs
