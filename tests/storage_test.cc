/**
 * @file
 * Storage-backend matrix tests: the same functional contract — read
 * correctness, write durability, EOF clamping, transient-fault retry —
 * must hold on EVERY backend, because the backends differ only in
 * their virtual-time charge model, never in bytes. Plus per-backend
 * counter checks (each backend's signature counter moves) and the
 * name/parse round-trip the --backend= flag depends on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gpufs/system.hh"
#include "sim/fault.hh"
#include "storage/backend.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

constexpr storage::BackendKind kAllKinds[] = {
    storage::BackendKind::Buffered,
    storage::BackendKind::Direct,
    storage::BackendKind::Gds,
    storage::BackendKind::RemoteFlash,
};

class StorageBackendTest
    : public ::testing::TestWithParam<storage::BackendKind>
{
  protected:
    static constexpr uint64_t kPage = 16 * KiB;
    // Deliberately NOT a multiple of the 4K sector: the tail page's
    // EOF clamp produces an unaligned extent on every run, so the
    // direct path's sector-rounding accounting always has work.
    static constexpr uint64_t kFileSize = 3 * kPage + 10000;

    void
    SetUp() override
    {
        GpuFsParams p;
        p.pageSize = kPage;
        p.cacheBytes = 16 * MiB;
        // Demand paging only: injected read faults must be consumed by
        // the reads the test issues, not by speculation.
        p.readAheadPolicy = ReadAheadPolicy::Static;
        p.storageBackend = GetParam();
        sys = std::make_unique<GpufsSystem>(1, p);
    }

    uint64_t
    daemonStat(const char *name)
    {
        return sys->daemon().stats().counter(name).get();
    }

    std::unique_ptr<GpufsSystem> sys;
};

TEST_P(StorageBackendTest, SelectedBackendIsActive)
{
    EXPECT_EQ(GetParam(), sys->daemon().storageBackend().kind());
}

TEST_P(StorageBackendTest, ReadsDeliverCorrectBytes)
{
    test::addRamp(sys->hostFs(), "/ramp", kFileSize);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/ramp", G_RDONLY);
    ASSERT_GE(fd, 0);

    std::vector<uint8_t> buf(kPage);
    for (uint64_t off = 0; off < kFileSize; off += kPage) {
        uint64_t want = std::min(kPage, kFileSize - off);
        ASSERT_EQ(int64_t(want),
                  sys->fs().gread(ctx, fd, off, kPage, buf.data()))
            << "offset " << off;
        for (uint64_t i = 0; i < want; ++i)
            ASSERT_EQ(test::rampByte(off + i), buf[i])
                << "offset " << off + i;
    }
    sys->fs().gclose(ctx, fd);

    // Every miss went through the backend, and it saw every byte.
    EXPECT_GT(daemonStat("storage_reads"), 0u);
    EXPECT_GE(daemonStat("storage_read_bytes"), kFileSize);
}

TEST_P(StorageBackendTest, WritesLandDurablyAndReadBack)
{
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/out", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);

    std::vector<uint8_t> page(kPage);
    for (uint64_t i = 0; i < kPage; ++i)
        page[i] = test::rampByte(i);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gwrite(ctx, fd, 0, kPage, page.data()));
    ASSERT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));

    EXPECT_GT(daemonStat("storage_writes"), 0u);
    EXPECT_GE(daemonStat("storage_write_bytes"), kPage);

    // Host-visible content matches, regardless of which timeline the
    // bytes were charged on.
    int hfd = sys->hostFs().open("/out", hostfs::O_RDONLY_F);
    ASSERT_GE(hfd, 0);
    std::vector<uint8_t> img(kPage);
    auto r = sys->hostFs().pread(hfd, img.data(), kPage, 0);
    ASSERT_EQ(Status::Ok, r.status);
    ASSERT_EQ(kPage, r.bytes);
    sys->hostFs().close(hfd);
    for (uint64_t i = 0; i < kPage; ++i)
        ASSERT_EQ(test::rampByte(i), img[i]) << i;

    // And it reads back through the GPU path too.
    std::vector<uint8_t> back(kPage);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 0, kPage, back.data()));
    EXPECT_EQ(0, std::memcmp(page.data(), back.data(), kPage));
    sys->fs().gclose(ctx, fd);
}

TEST_P(StorageBackendTest, ReadsClampAtEof)
{
    test::addRamp(sys->hostFs(), "/eof", 100);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/eof", G_RDONLY);
    ASSERT_GE(fd, 0);
    uint8_t b;
    EXPECT_EQ(0, sys->fs().gread(ctx, fd, 200, 1, &b));
    std::vector<uint8_t> buf(100);
    EXPECT_EQ(50, sys->fs().gread(ctx, fd, 50, 100, buf.data()));
    for (uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(test::rampByte(50 + i), buf[i]) << i;
    sys->fs().gclose(ctx, fd);
}

TEST_P(StorageBackendTest, TransientEioAbsorbedThenGiveupSurfaces)
{
    test::addRamp(sys->hostFs(), "/flaky", 8 * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/flaky", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);

    // Two injected EIOs: absorbed by the daemon's bounded retry — the
    // application sees a clean read on every backend (the fault sits
    // in the shared host-I/O impl, below the charge models).
    sys->sim().faults.injectIoError(sim::FaultOp::HostRead, 2);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 0, kPage, buf.data()));
    for (uint64_t i = 0; i < kPage; ++i)
        ASSERT_EQ(test::rampByte(i), buf[i]) << i;
    EXPECT_GE(daemonStat("io_retries"), 2u);
    EXPECT_EQ(0u, daemonStat("io_retry_giveups"));

    // A fault outliving the retry budget surfaces as a GStatus error
    // (fresh page so the GPU cache can't answer from residency).
    sys->sim().faults.injectIoError(sim::FaultOp::HostRead, 100);
    int64_t rc = sys->fs().gread(ctx, fd, 4 * kPage, kPage, buf.data());
    ASSERT_LT(rc, 0);
    EXPECT_EQ(Status::IoError, gstatus_of(rc));
    EXPECT_GE(daemonStat("io_retry_giveups"), 1u);

    // Clearing the fault heals the path on this backend too.
    sys->sim().faults.reset();
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 4 * kPage, kPage, buf.data()));
    sys->fs().gclose(ctx, fd);
}

TEST_P(StorageBackendTest, SignatureCountersMove)
{
    test::addRamp(sys->hostFs(), "/sig", kFileSize);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/sig", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);
    for (uint64_t off = 0; off < kFileSize; off += kPage)
        ASSERT_GT(sys->fs().gread(ctx, fd, off, kPage, buf.data()), 0);
    sys->fs().gclose(ctx, fd);

    switch (GetParam()) {
      case storage::BackendKind::Buffered:
        // The default path keeps charging the host page cache.
        EXPECT_GT(sys->hostFs().cache().stats().counter("miss_bytes")
                      .get(), 0u);
        break;
      case storage::BackendKind::Direct:
        // The tail extent (EOF clamp at a non-sector size) rounded out.
        EXPECT_GT(daemonStat("direct_unaligned_bytes"), 0u);
        break;
      case storage::BackendKind::Gds:
        EXPECT_GT(daemonStat("gds_dmas"), 0u);
        break;
      case storage::BackendKind::RemoteFlash:
        EXPECT_GT(daemonStat("nvmf_commands"), 0u);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StorageBackendTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<storage::BackendKind> &info) {
        return std::string(storage::backendName(info.param));
    });

TEST(StorageBackendNames, ParseRoundTripsAndRejectsGarbage)
{
    for (storage::BackendKind k : kAllKinds) {
        storage::BackendKind parsed;
        ASSERT_TRUE(storage::parseBackendKind(storage::backendName(k),
                                              &parsed))
            << storage::backendName(k);
        EXPECT_EQ(k, parsed);
    }
    storage::BackendKind parsed;
    EXPECT_TRUE(storage::parseBackendKind("remoteflash", &parsed));
    EXPECT_EQ(storage::BackendKind::RemoteFlash, parsed);
    EXPECT_FALSE(storage::parseBackendKind("tape", &parsed));
    EXPECT_FALSE(storage::parseBackendKind("", &parsed));
}

} // namespace
} // namespace core
} // namespace gpufs
