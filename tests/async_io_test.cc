/** @file Tests for the non-blocking I/O core: submit/wait ordering,
 *  token lifecycle, vectored I/O, wait-after-close, overlap. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpufs/system.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

std::unique_ptr<GpufsSystem>
makeSystem(uint64_t page_size = 16 * KiB, uint64_t cache_bytes = 16 * MiB,
           unsigned max_inflight = 64, unsigned read_ahead = 0)
{
    GpuFsParams p;
    p.pageSize = page_size;
    p.cacheBytes = cache_bytes;
    p.maxInflightIo = max_inflight;
    p.readAheadPages = read_ahead;
    return std::make_unique<GpufsSystem>(1, p);
}

TEST(AsyncIoTest, SubmitWaitOutOfOrderDeliversCorrectData)
{
    auto sys = makeSystem();
    test::addRamp(sys->hostFs(), "/f", 1 * MiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    ASSERT_GE(fd, 0);

    constexpr unsigned kN = 4;
    constexpr uint64_t kChunk = 96 * KiB;   // 6 pages each
    std::vector<std::vector<uint8_t>> bufs(kN,
                                           std::vector<uint8_t>(kChunk));
    IoToken toks[kN];
    for (unsigned i = 0; i < kN; ++i) {
        toks[i] = sys->fs().gread_async(ctx, fd, i * kChunk, kChunk,
                                        bufs[i].data());
        ASSERT_TRUE(toks[i].valid());
    }
    // Completions are delivered out of order: wait newest first.
    for (int i = kN - 1; i >= 0; --i) {
        ASSERT_EQ(int64_t(kChunk), sys->fs().gwait(ctx, toks[i]));
        for (uint64_t b = 0; b < kChunk; b += 509)
            ASSERT_EQ(test::rampByte(i * kChunk + b), bufs[i][b])
                << "chunk " << i << " offset " << b;
    }
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, TokenCannotBeRedeemedTwice)
{
    auto sys = makeSystem();
    test::addRamp(sys->hostFs(), "/f", 64 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    std::vector<uint8_t> buf(4 * KiB);
    IoToken tok = sys->fs().gread_async(ctx, fd, 0, buf.size(),
                                        buf.data());
    ASSERT_EQ(int64_t(buf.size()), sys->fs().gwait(ctx, tok));
    // Second redemption of the same token: reuse error.
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, tok));
    // Fabricated and default tokens are rejected too.
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, IoToken{}));
    EXPECT_EQ(-int64_t(Status::Inval),
              sys->fs().gwait(ctx, IoToken{1234, 99}));
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, SubmissionErrorsSurfaceAtWait)
{
    auto sys = makeSystem();
    test::addRamp(sys->hostFs(), "/f", 4 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    uint8_t b = 0;

    // The wrappers return exactly what the pre-async API did, so the
    // error rides the token rather than invalidating it.
    IoToken bad_fd = sys->fs().gread_async(ctx, 77, 0, 1, &b);
    ASSERT_TRUE(bad_fd.valid());
    EXPECT_EQ(-int64_t(Status::BadFd), sys->fs().gwait(ctx, bad_fd));
    EXPECT_EQ(Status::BadFd, gstatus_of(-int64_t(Status::BadFd)));
    EXPECT_FALSE(gok(-int64_t(Status::BadFd)));

    int wfd = sys->fs().gopen(ctx, "/w", G_GWRONCE);
    ASSERT_GE(wfd, 0);
    IoToken wr_read = sys->fs().gread_async(ctx, wfd, 0, 1, &b);
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, wr_read));

    int rfd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    ASSERT_GE(rfd, 0);
    IoToken ro_write = sys->fs().gwrite_async(ctx, rfd, 0, 1, &b);
    EXPECT_EQ(-int64_t(Status::ReadOnlyFile),
              sys->fs().gwait(ctx, ro_write));

    sys->fs().gclose(ctx, wfd);
    sys->fs().gclose(ctx, rfd);
}

TEST(AsyncIoTest, InflightCapFailsWithBusy)
{
    auto sys = makeSystem(16 * KiB, 16 * MiB, /*max_inflight=*/2);
    test::addRamp(sys->hostFs(), "/f", 256 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    std::vector<uint8_t> bufs[3] = {std::vector<uint8_t>(16 * KiB),
                                    std::vector<uint8_t>(16 * KiB),
                                    std::vector<uint8_t>(16 * KiB)};
    IoToken t0 = sys->fs().gread_async(ctx, fd, 0, 16 * KiB,
                                       bufs[0].data());
    IoToken t1 = sys->fs().gread_async(ctx, fd, 16 * KiB, 16 * KiB,
                                       bufs[1].data());
    IoToken t2 = sys->fs().gread_async(ctx, fd, 32 * KiB, 16 * KiB,
                                       bufs[2].data());
    EXPECT_EQ(-int64_t(Status::Busy), sys->fs().gwait(ctx, t2));
    EXPECT_EQ(int64_t(16 * KiB), sys->fs().gwait(ctx, t0));
    EXPECT_EQ(int64_t(16 * KiB), sys->fs().gwait(ctx, t1));
    // Below the cap again: a fresh submission succeeds.
    IoToken t3 = sys->fs().gread_async(ctx, fd, 32 * KiB, 16 * KiB,
                                       bufs[2].data());
    EXPECT_EQ(int64_t(16 * KiB), sys->fs().gwait(ctx, t3));
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, OverlappingRangeWritesBothLandWaitOrderWins)
{
    auto sys = makeSystem();
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/out", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> a(128, 0xAA), b(128, 0xBB);
    IoToken ta = sys->fs().gwrite_async(ctx, fd, 0, a.size(), a.data());
    IoToken tb = sys->fs().gwrite_async(ctx, fd, 64, b.size(), b.data());
    // Data is published at wait: the later-waited token wins the
    // overlapping bytes deterministically.
    ASSERT_EQ(int64_t(a.size()), sys->fs().gwait(ctx, ta));
    ASSERT_EQ(int64_t(b.size()), sys->fs().gwait(ctx, tb));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    sys->fs().gclose(ctx, fd);

    int hfd = sys->hostFs().open("/out", hostfs::O_RDONLY_F);
    ASSERT_GE(hfd, 0);
    std::vector<uint8_t> back(192);
    sys->hostFs().pread(hfd, back.data(), back.size(), 0);
    sys->hostFs().close(hfd);
    for (unsigned i = 0; i < 64; ++i)
        ASSERT_EQ(0xAA, back[i]) << i;
    for (unsigned i = 64; i < 192; ++i)
        ASSERT_EQ(0xBB, back[i]) << i;
}

TEST(AsyncIoTest, WaitAfterCloseStillDelivers)
{
    auto sys = makeSystem();
    test::addRamp(sys->hostFs(), "/f", 128 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/f", G_RDONLY);
    std::vector<uint8_t> buf(64 * KiB);
    IoToken tok = sys->fs().gread_async(ctx, fd, 0, buf.size(),
                                        buf.data());
    ASSERT_EQ(Status::Ok, sys->fs().gclose(ctx, fd));
    ASSERT_EQ(int64_t(buf.size()), sys->fs().gwait(ctx, tok));
    for (uint64_t i = 0; i < buf.size(); i += 1021)
        ASSERT_EQ(test::rampByte(i), buf[i]);
}

TEST(AsyncIoTest, GwaitAllDrainsEverything)
{
    auto sys = makeSystem();
    test::addRamp(sys->hostFs(), "/a", 256 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    int afd = sys->fs().gopen(ctx, "/a", G_RDONLY);
    int bfd = sys->fs().gopen(ctx, "/b", G_RDWR | G_CREAT);
    ASSERT_GE(afd, 0);
    ASSERT_GE(bfd, 0);
    std::vector<uint8_t> r0(32 * KiB), r1(32 * KiB), w(8 * KiB, 0x5A);
    IoToken t0 = sys->fs().gread_async(ctx, afd, 0, r0.size(), r0.data());
    IoToken t1 = sys->fs().gread_async(ctx, afd, 64 * KiB, r1.size(),
                                       r1.data());
    IoToken t2 = sys->fs().gwrite_async(ctx, bfd, 0, w.size(), w.data());
    IoToken t3 = sys->fs().gfsync_async(ctx, bfd);

    // Scoped drain first: only bfd's tokens retire.
    EXPECT_EQ(Status::Ok, sys->fs().gwait_all(ctx, bfd));
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, t2));
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, t3));

    EXPECT_EQ(Status::Ok, sys->fs().gwait_all(ctx));
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, t0));
    EXPECT_EQ(-int64_t(Status::Inval), sys->fs().gwait(ctx, t1));
    for (uint64_t i = 0; i < r0.size(); i += 733) {
        ASSERT_EQ(test::rampByte(i), r0[i]);
        ASSERT_EQ(test::rampByte(64 * KiB + i), r1[i]);
    }
    // The fsync token ran after the write token (id order), so the
    // write is durable on the host.
    int hfd = sys->hostFs().open("/b", hostfs::O_RDONLY_F);
    ASSERT_GE(hfd, 0);
    uint8_t back = 0;
    sys->hostFs().pread(hfd, &back, 1, 100);
    sys->hostFs().close(hfd);
    EXPECT_EQ(0x5A, back);
    sys->fs().gclose(ctx, afd);
    sys->fs().gclose(ctx, bfd);
}

TEST(AsyncIoTest, VectoredReadWriteRoundTrip)
{
    auto sys = makeSystem(16 * KiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/v", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);

    // Three disjoint extents, one crossing a page boundary.
    std::vector<uint8_t> w0(8 * KiB, 0x11), w1(20 * KiB, 0x22),
        w2(300, 0x33);
    GIoVec wv[3] = {{0, w0.size(), w0.data()},
                    {30 * KiB, w1.size(), w1.data()},
                    {100 * KiB, w2.size(), w2.data()}};
    int64_t wr = sys->fs().gwritev(ctx, fd, wv, 3);
    ASSERT_EQ(int64_t(w0.size() + w1.size() + w2.size()), wr);
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));

    GStat st;
    ASSERT_EQ(Status::Ok, sys->fs().gfstat(ctx, fd, &st));
    EXPECT_EQ(100 * KiB + w2.size(), st.size);

    std::vector<uint8_t> r0(w0.size()), r1(w1.size()), r2(w2.size());
    GIoVec rv[3] = {{0, r0.size(), r0.data()},
                    {30 * KiB, r1.size(), r1.data()},
                    {100 * KiB, r2.size(), r2.data()}};
    int64_t rd = sys->fs().greadv(ctx, fd, rv, 3);
    ASSERT_EQ(wr, rd);
    EXPECT_EQ(w0, r0);
    EXPECT_EQ(w1, r1);
    EXPECT_EQ(w2, r2);
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, VectoredColdReadCoalescesIntoBatchRpcs)
{
    auto sys = makeSystem(16 * KiB);
    test::addRamp(sys->hostFs(), "/c", 1 * MiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/c", G_RDONLY);
    ASSERT_GE(fd, 0);
    // 24 cold pages in one vectored call: the multi-extent request
    // feeds batched ReadPages RPCs, not one ReadPage per page.
    std::vector<uint8_t> buf(24 * 16 * KiB);
    GIoVec v{0, buf.size(), buf.data()};
    ASSERT_EQ(int64_t(buf.size()), sys->fs().greadv(ctx, fd, &v, 1));
    EXPECT_GE(sys->fs().stats().counter("batch_read_rpcs").get(), 2u);
    EXPECT_EQ(0u, sys->fs().stats().counter("read_rpcs").get());
    for (uint64_t i = 0; i < buf.size(); i += 4093)
        ASSERT_EQ(test::rampByte(i), buf[i]);
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, DoubleBufferOverlapsComputeWithFetch)
{
    // The tentpole property: a block overlapping its OWN compute with
    // its OWN I/O finishes in less virtual time than the same work
    // done with the synchronous wrappers. The interesting regime is
    // the disk-bound streaming scan (a cold file): fetch latency far
    // exceeds the per-page map overhead that already hides warm-cache
    // fetches, and double-buffering hides it behind compute.
    constexpr uint64_t kChunk = 256 * KiB;
    constexpr unsigned kChunks = 24;
    constexpr Time kComputePerChunk = 2000 * kMicrosecond;  // ~disk time

    auto run = [&](bool async) -> Time {
        GpuFsParams p;
        p.pageSize = kChunk;    // one page per chunk
        p.cacheBytes = (kChunks + 4) * kChunk;
        // Isolate the async core's overlap: adaptive read-ahead (the
        // default) would hide the sync loop's fetches too and erase
        // the contrast this test pins (readahead_test covers that).
        p.readAheadPolicy = ReadAheadPolicy::Static;
        GpufsSystem sys(1, p);
        test::addRamp(sys.hostFs(), "/stream", kChunks * kChunk);
        auto ctx = test::makeBlock(sys.device(0));
        int fd = sys.fs().gopen(ctx, "/stream", G_RDONLY);
        std::vector<uint8_t> bufs[2] = {std::vector<uint8_t>(kChunk),
                                        std::vector<uint8_t>(kChunk)};
        Time t0 = ctx.now();
        if (!async) {
            for (unsigned i = 0; i < kChunks; ++i) {
                EXPECT_EQ(int64_t(kChunk),
                          sys.fs().gread(ctx, fd, i * kChunk, kChunk,
                                         bufs[0].data()));
                ctx.charge(kComputePerChunk);
            }
        } else {
            IoToken cur = sys.fs().gread_async(ctx, fd, 0, kChunk,
                                               bufs[0].data());
            for (unsigned i = 0; i < kChunks; ++i) {
                IoToken next;
                if (i + 1 < kChunks) {
                    next = sys.fs().gread_async(
                        ctx, fd, (i + 1) * kChunk, kChunk,
                        bufs[(i + 1) % 2].data());
                }
                EXPECT_EQ(int64_t(kChunk), sys.fs().gwait(ctx, cur));
                ctx.charge(kComputePerChunk);
                cur = next;
            }
        }
        sys.fs().gclose(ctx, fd);
        return ctx.now() - t0;
    };

    Time sync_t = run(false);
    Time async_t = run(true);
    EXPECT_LT(async_t, sync_t);
    // The next chunk's fetch hides behind this chunk's compute: the
    // overlap reclaims a substantial part of the I/O time (the
    // fig_async_overlap bench banks on >= 1.3x), not round-off.
    EXPECT_LT(async_t * 13, sync_t * 10);
}

TEST(AsyncIoTest, QueueFullSubmissionDegradesGracefully)
{
    // Enough vectored submissions to overrun the 64-slot RPC queue
    // (8 ops x up to 16 ReadPages batches each): past the last free
    // slot, split-phase submission must degrade to wait-time sync
    // resolution — never block on a slot while holding others (the
    // allocate() deadlock cycle).
    auto sys = makeSystem(16 * KiB, 64 * MiB);
    constexpr unsigned kOps = 8;
    constexpr uint64_t kSpan = 256 * 16 * KiB;  // 256 pages, 16 batches
    test::addRamp(sys->hostFs(), "/big", kOps * kSpan);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/big", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<std::vector<uint8_t>> bufs(kOps,
                                           std::vector<uint8_t>(kSpan));
    IoToken toks[kOps];
    for (unsigned i = 0; i < kOps; ++i) {
        toks[i] = sys->fs().gread_async(ctx, fd, i * kSpan, kSpan,
                                        bufs[i].data());
    }
    for (unsigned i = 0; i < kOps; ++i)
        ASSERT_EQ(int64_t(kSpan), sys->fs().gwait(ctx, toks[i]));
    for (unsigned i = 0; i < kOps; ++i) {
        for (uint64_t b = 0; b < kSpan; b += 8191)
            ASSERT_EQ(test::rampByte(i * kSpan + b), bufs[i][b])
                << "op " << i << " offset " << b;
    }
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, FsyncDedupSkipsRedundantHostFsyncs)
{
    auto sys = makeSystem();
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/d", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> w(4 * KiB, 0x77);
    ASSERT_EQ(int64_t(w.size()),
              sys->fs().gwrite(ctx, fd, 0, w.size(), w.data()));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    uint64_t deduped = sys->fs().stats().counter("fsyncs_deduped").get();
    // Nothing reached the host since: the second sync coalesces away.
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    EXPECT_EQ(deduped + 1,
              sys->fs().stats().counter("fsyncs_deduped").get());
    // A fresh write re-arms the host fsync.
    ASSERT_EQ(int64_t(w.size()),
              sys->fs().gwrite(ctx, fd, 8 * KiB, w.size(), w.data()));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    EXPECT_EQ(deduped + 1,
              sys->fs().stats().counter("fsyncs_deduped").get());
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, FlusherAdoptsResidualFsyncRange)
{
    // gfsync_async submits only 4 WritePages batches split-phase
    // (64 pages); the rest of a huge dirty set used to drain
    // synchronously at gwait. With adoption, the outstanding token
    // raises the file's fsyncPending and the background flusher lifts
    // its per-pass cap (4 batches = 64 pages) for that file — one pass
    // drains the WHOLE residual, so gwait finds (almost) nothing left.
    auto sys = makeSystem(16 * KiB, 64 * MiB);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/big", G_RDWR | G_CREAT);
    ASSERT_GE(fd, 0);
    constexpr unsigned kPages = 200;
    std::vector<uint8_t> page(16 * KiB, 0x42);
    for (unsigned i = 0; i < kPages; ++i) {
        ASSERT_EQ(int64_t(page.size()),
                  sys->fs().gwrite(ctx, fd, uint64_t(i) * page.size(),
                                   page.size(), page.data()));
    }
    IoToken tok = sys->fs().gfsync_async(ctx, fd);
    ASSERT_TRUE(tok.valid());
    // One manual flusher pass while the token is outstanding: the
    // adopted drain must exceed the normal 64-page per-pass cap and
    // cover the entire residual (200 dirty minus up to 64 in the
    // submit-time split-phase batches).
    sys->fs().backgroundFlushPass(ctx.now());
    uint64_t adopted =
        sys->fs().stats().counter("flusher_adopted_pages").get();
    EXPECT_GE(adopted, uint64_t(kPages) - 4 * rpc::kMaxBatchPages);
    EXPECT_GT(adopted, uint64_t(4 * rpc::kMaxBatchPages));
    EXPECT_EQ(int64_t(0), sys->fs().gwait(ctx, tok));
    // Token retired: the adoption mark is gone and a later pass is
    // back under the normal cap (nothing dirty to drain anyway).
    sys->fs().backgroundFlushPass(ctx.now());
    EXPECT_EQ(adopted,
              sys->fs().stats().counter("flusher_adopted_pages").get());
    sys->fs().gclose(ctx, fd);
}

TEST(AsyncIoTest, ConcurrentBlocksDoubleBufferKeepDataIntact)
{
    // Many blocks double-buffering disjoint ranges of one file while
    // paging pressure forces eviction between submit and wait.
    GpuFsParams p;
    p.pageSize = 16 * KiB;
    p.cacheBytes = 2 * MiB;     // < file: constant paging
    GpufsSystem sys(1, p);
    constexpr uint64_t kSize = 8 * MiB;
    test::addRamp(sys.hostFs(), "/par", kSize);

    std::atomic<uint64_t> errors{0};
    gpu::launch(sys.device(0), 28, 256, [&](gpu::BlockCtx &ctx) {
        GpuFs &fs = sys.fs();
        int fd = fs.gopen(ctx, "/par", G_RDONLY);
        if (fd < 0) {
            errors.fetch_add(1);
            return;
        }
        const uint64_t chunk = 32 * KiB;
        const uint64_t span = kSize / ctx.numBlocks();
        const uint64_t base = ctx.blockId() * span;
        std::vector<uint8_t> bufs[2] = {std::vector<uint8_t>(chunk),
                                        std::vector<uint8_t>(chunk)};
        IoToken cur = fs.gread_async(ctx, fd, base, chunk,
                                     bufs[0].data());
        for (uint64_t off = base; off + chunk <= base + span;
             off += chunk) {
            IoToken next;
            unsigned cur_i = unsigned((off - base) / chunk) % 2;
            if (off + 2 * chunk <= base + span) {
                next = fs.gread_async(ctx, fd, off + chunk, chunk,
                                      bufs[(cur_i + 1) % 2].data());
            }
            if (fs.gwait(ctx, cur) != int64_t(chunk)) {
                errors.fetch_add(1);
            } else {
                for (uint64_t i = 0; i < chunk; i += 1021) {
                    if (bufs[cur_i][i] != test::rampByte(off + i))
                        errors.fetch_add(1);
                }
            }
            cur = next;
        }
        if (cur.valid())
            fs.gwait(ctx, cur);
        fs.gclose(ctx, fd);
    });
    EXPECT_EQ(0u, errors.load());
    EXPECT_EQ(0u, sys.hostFs().openCount());
}

} // namespace
} // namespace core
} // namespace gpufs
