/**
 * @file
 * Crash-consistency tests: the fault-injection harness, the daemon's
 * write-ahead journal, and kill-the-daemon recovery.
 *
 * The central property (ISSUE 7): with journaling on, a multi-page
 * update is never torn across a crash at ANY registered crash point,
 * and every byte acknowledged by a gmsync durability barrier survives
 * daemon restart + journal replay. Without the journal the same crash
 * demonstrably tears the update — which is the hazard the journal
 * exists to close.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gpufs/system.hh"
#include "hostfs/journal.hh"
#include "sim/fault.hh"
#include "tests/testutil.hh"

namespace gpufs {
namespace core {
namespace {

class RecoveryTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kPage = 16 * KiB;
    static constexpr unsigned kPages = 8;   // per update phase

    GpuFsParams
    baseParams(bool journal)
    {
        GpuFsParams p;
        p.pageSize = kPage;
        p.cacheBytes = 16 * MiB;
        // Pin read-ahead off so injected read faults are consumed by
        // the demand fetches the test issues, not by speculation.
        p.readAheadPolicy = ReadAheadPolicy::Static;
        p.journalWriteback = journal;
        return p;
    }

    uint64_t
    fsStat(const char *name)
    {
        return sys->fs().stats().counter(name).get();
    }

    uint64_t
    daemonStat(const char *name)
    {
        return sys->daemon().stats().counter(name).get();
    }

    /** Write kPages whole pages of @p stamp at page @p first_page. */
    void
    writePhase(gpu::BlockCtx &ctx, int fd, unsigned first_page,
               uint8_t stamp)
    {
        std::vector<uint8_t> buf(kPage, stamp);
        for (unsigned pg = 0; pg < kPages; ++pg) {
            ASSERT_EQ(int64_t(kPage),
                      sys->fs().gwrite(ctx, fd,
                                       uint64_t(first_page + pg) * kPage,
                                       kPage, buf.data()));
        }
    }

    /** Every byte of host pages [first, first+n) equals @p want. */
    void
    expectHostPages(const char *path, unsigned first, unsigned n,
                    uint8_t want, const char *what)
    {
        int hfd = sys->hostFs().open(path, hostfs::O_RDONLY_F);
        ASSERT_GE(hfd, 0) << what;
        std::vector<uint8_t> page(kPage);
        for (unsigned pg = first; pg < first + n; ++pg) {
            auto r = sys->hostFs().pread(hfd, page.data(), kPage,
                                         uint64_t(pg) * kPage);
            ASSERT_EQ(Status::Ok, r.status) << what << " page " << pg;
            for (uint64_t i = 0; i < kPage; ++i) {
                ASSERT_EQ(want, page[i])
                    << what << " page " << pg << " byte " << i;
            }
        }
        sys->hostFs().close(hfd);
    }

    std::unique_ptr<GpufsSystem> sys;
};

// ---------------------------------------------------------------------
// The tentpole property: crash-point sweep with the journal on
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, CrashPointSweepNeverTearsAndKeepsAcknowledgedBytes)
{
    for (sim::CrashPoint cp : sim::kAllCrashPoints) {
        SCOPED_TRACE(sim::crashPointName(cp));
        sys = std::make_unique<GpufsSystem>(1, baseParams(true));
        auto ctx = test::makeBlock(sys->device(0));

        int fd = sys->fs().gopen(ctx, "/dur",
                                 G_RDWR | G_CREAT | G_GDURABLE);
        ASSERT_GE(fd, 0);

        // Phase U1: acknowledged by the gmsync durability barrier —
        // these bytes must survive ANY later crash.
        writePhase(ctx, fd, 0, 0xA5);
        ASSERT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));

        // Phase U2: a multi-page update interrupted by the armed crash.
        // The sync's status is unspecified (the crash races the flush);
        // what matters is the post-recovery state.
        sys->sim().faults.armCrash(cp);
        writePhase(ctx, fd, kPages, 0x5C);
        (void)sys->fs().gfsync(ctx, fd);
        ASSERT_TRUE(sys->sim().faults.crashed())
            << "crash point never fired";

        // Kill-the-daemon recovery: stop, clear the crash latch (the
        // "reboot"), start — which replays the journal.
        sys->restartDaemon();
        ASSERT_FALSE(sys->sim().faults.crashed());

        // Acknowledged bytes survive, bit for bit.
        expectHostPages("/dur", 0, kPages, 0xA5, "U1 after recovery");

        // The interrupted update is atomic: all-new or all-old, never
        // a mix — the file either grew to cover U2 entirely (every
        // byte the new stamp) or recovery discarded the torn txn and
        // the file still ends at U1.
        hostfs::FileInfo info;
        ASSERT_EQ(Status::Ok, sys->hostFs().stat("/dur", &info));
        if (info.size > uint64_t(kPages) * kPage) {
            ASSERT_EQ(uint64_t(2 * kPages) * kPage, info.size)
                << "partial size = torn update";
            expectHostPages("/dur", kPages, kPages, 0x5C,
                            "U2 all-new after recovery");
        } else {
            ASSERT_EQ(uint64_t(kPages) * kPage, info.size);
        }

        // Recovery did real work somewhere in the sweep: a committed
        // txn replayed, or a torn tail discarded.
        EXPECT_GE(daemonStat("journal_txns_replayed") +
                      daemonStat("journal_torn_records"),
                  1u);

        // The recovered system still takes durable writes end-to-end.
        writePhase(ctx, fd, kPages, 0x5C);
        EXPECT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));
        expectHostPages("/dur", kPages, kPages, 0x5C, "post-recovery");
        sys->fs().gclose(ctx, fd);
        sys.reset();
    }
}

// ---------------------------------------------------------------------
// Control: without the journal the same crash DOES tear the update
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, MidPwritevWithoutJournalTearsTheUpdate)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(false));
    test::addRamp(sys->hostFs(), "/plain", uint64_t(kPages) * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/plain", G_RDWR);
    ASSERT_GE(fd, 0);

    sys->sim().faults.armCrash(sim::CrashPoint::MidPwritev);
    writePhase(ctx, fd, 0, 0x5C);
    EXPECT_NE(Status::Ok, sys->fs().gfsync(ctx, fd));
    ASSERT_TRUE(sys->sim().faults.crashed());
    sys->sim().faults.reboot();

    // The host file now holds a MIX of old and new bytes — the torn
    // multi-page update journaling prevents.
    int hfd = sys->hostFs().open("/plain", hostfs::O_RDONLY_F);
    ASSERT_GE(hfd, 0);
    std::vector<uint8_t> img(uint64_t(kPages) * kPage);
    auto r = sys->hostFs().pread(hfd, img.data(), img.size(), 0);
    ASSERT_EQ(Status::Ok, r.status);
    sys->hostFs().close(hfd);
    uint64_t new_bytes = 0, old_bytes = 0;
    for (uint64_t i = 0; i < img.size(); ++i) {
        if (img[i] == 0x5C && test::rampByte(i) != 0x5C)
            ++new_bytes;
        else if (img[i] == test::rampByte(i))
            ++old_bytes;
    }
    EXPECT_GT(new_bytes, 0u) << "crash landed nothing: not a tear";
    EXPECT_GT(old_bytes, 0u) << "crash landed everything: not a tear";
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Journal replay: torn tails (bad checksum / missing commit) discard
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, TornJournalTailIsDiscardedOnReplay)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(true));
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/dur", G_RDWR | G_CREAT | G_GDURABLE);
    ASSERT_GE(fd, 0);
    writePhase(ctx, fd, 0, 0xA5);
    ASSERT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));

    // Craft a torn tail directly in the journal file: one extent
    // record with a VALID checksum but no commit record (the daemon
    // died mid-append), followed by a record whose checksum lies.
    hostfs::WriteJournal *j = sys->daemon().journal();
    ASSERT_NE(nullptr, j);
    uint64_t tail = j->tailOffset();
    ASSERT_GT(tail, 0u);

    std::vector<uint8_t> payload(64, 0xEE);
    hostfs::JRecHeader h{};
    h.magic = hostfs::kJournalMagic;
    h.type = hostfs::kJRecExtent;
    h.txn = 999;
    h.ino = 1;
    h.offset = 0;
    h.len = payload.size();
    h.checksum = hostfs::journalChecksum(payload.data(), payload.size());
    std::vector<uint8_t> tail_bytes;
    auto append = [&](const void *p, size_t n) {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        tail_bytes.insert(tail_bytes.end(), b, b + n);
    };
    append(&h, sizeof h);
    append(payload.data(), payload.size());
    h.checksum ^= 0xDEAD;       // second record: corrupted payload sum
    append(&h, sizeof h);
    append(payload.data(), payload.size());

    int jfd = sys->hostFs().open(hostfs::WriteJournal::kPath,
                                 hostfs::O_RDWR_F);
    ASSERT_GE(jfd, 0);
    ASSERT_EQ(Status::Ok,
              sys->hostFs()
                  .pwrite(jfd, tail_bytes.data(), tail_bytes.size(), tail)
                  .status);
    sys->hostFs().close(jfd);

    // The daemon "died" mid-append: mark the host crashed so stop()
    // behaves like a dead daemon (no clean-shutdown checkpoint — that
    // would truncate the very records recovery must chew through).
    sys->sim().faults.armCrash(sim::CrashPoint::MidJournalAppend);
    sys->sim().faults.hitCrashPoint(sim::CrashPoint::MidJournalAppend);

    sys->restartDaemon();

    // The committed txn replayed; the torn tail was discarded (the
    // valid-but-uncommitted extent counts as torn) and the journal
    // truncated for a fresh epoch.
    EXPECT_GE(daemonStat("journal_txns_replayed"), 1u);
    EXPECT_GE(daemonStat("journal_torn_records"), 1u);
    EXPECT_EQ(0u, j->tailOffset());
    hostfs::FileInfo jinfo;
    ASSERT_EQ(Status::Ok,
              sys->hostFs().stat(hostfs::WriteJournal::kPath, &jinfo));
    EXPECT_EQ(0u, jinfo.size);

    // Acknowledged data untouched by the garbage records.
    expectHostPages("/dur", 0, kPages, 0xA5, "after torn-tail replay");
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Graceful degradation: transient faults retry, permanent ones surface
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, TransientReadFaultsRetryThenSurfaceAsStatus)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(false));
    constexpr uint64_t kFile = 16 * kPage;
    test::addRamp(sys->hostFs(), "/r", kFile);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/r", G_RDONLY);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage);

    // Two injected EIOs: absorbed by the daemon's bounded retry, the
    // application sees a clean read.
    sys->sim().faults.injectIoError(sim::FaultOp::HostRead, 2);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 0, kPage, buf.data()));
    for (uint64_t i = 0; i < kPage; ++i)
        ASSERT_EQ(test::rampByte(i), buf[i]) << i;
    EXPECT_GE(daemonStat("io_retries"), 2u);
    EXPECT_EQ(0u, daemonStat("io_retry_giveups"));

    // A fault outliving the retry budget completes the RPC with an
    // error IoResult that surfaces as a GStatus — no gpufs_assert, no
    // wedged slot. (Fresh page so the cache can't satisfy it.)
    sys->sim().faults.injectIoError(sim::FaultOp::HostRead, 100);
    int64_t rc = sys->fs().gread(ctx, fd, 4 * kPage, kPage, buf.data());
    ASSERT_LT(rc, 0);
    EXPECT_EQ(Status::IoError, gstatus_of(rc));
    EXPECT_GE(daemonStat("io_retry_giveups"), 1u);

    // Clearing the fault heals the path: the same read now succeeds,
    // so the failed fetch restored the frames it had claimed.
    sys->sim().faults.reset();
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gread(ctx, fd, 4 * kPage, kPage, buf.data()));
    for (uint64_t i = 0; i < kPage; ++i)
        ASSERT_EQ(test::rampByte(4 * kPage + i), buf[i]) << i;
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// G_GDURABLE fsyncs never dedup; plain files still do
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, GdurableFsyncNeverDedupsAndRidesCommitRecord)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(true));
    auto ctx = test::makeBlock(sys->device(0));

    int fd = sys->fs().gopen(ctx, "/dur", G_RDWR | G_CREAT | G_GDURABLE);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(kPage, 0x11);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gwrite(ctx, fd, 0, kPage, buf.data()));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    // Back-to-back barrier with nothing newly dirty: previously this
    // would dedup on needsFsync — with data only in the host page
    // cache, that skipped the durability point. Durable files must
    // issue the barrier every time (answered from the commit record,
    // so no extra disk work).
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    EXPECT_EQ(0u, fsStat("fsyncs_deduped"));
    EXPECT_EQ(2u, daemonStat("journal_commit_barriers"));
    EXPECT_GE(daemonStat("journal_commits"), 1u);
    sys->fs().gclose(ctx, fd);

    // Control in the same system: a non-durable file's second gfsync
    // still dedups (the coalescing the fast path exists for).
    int pfd = sys->fs().gopen(ctx, "/plain", G_RDWR | G_CREAT);
    ASSERT_GE(pfd, 0);
    ASSERT_EQ(int64_t(kPage),
              sys->fs().gwrite(ctx, pfd, 0, kPage, buf.data()));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, pfd));
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, pfd));
    EXPECT_GE(fsStat("fsyncs_deduped"), 1u);
    sys->fs().gclose(ctx, pfd);
}

// ---------------------------------------------------------------------
// Short writes surface as transient faults too
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, InjectedShortWriteIsRetriedToCompletion)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(false));
    test::addRamp(sys->hostFs(), "/s", uint64_t(kPages) * kPage);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/s", G_RDWR);
    ASSERT_GE(fd, 0);

    writePhase(ctx, fd, 0, 0x77);
    sys->sim().faults.injectShortWrite(1);
    ASSERT_EQ(Status::Ok, sys->fs().gfsync(ctx, fd));
    EXPECT_GE(daemonStat("io_retries"), 1u);
    sys->sim().faults.reset();
    expectHostPages("/s", 0, kPages, 0x77, "after short-write retry");
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Journal replay is backend-independent (the journal appends through
// the buffered host path; the in-place write rode DirectBackend)
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, JournalReplayProtectsDirectBackendWritebacks)
{
    GpuFsParams p = baseParams(true);
    p.storageBackend = storage::BackendKind::Direct;
    sys = std::make_unique<GpufsSystem>(1, p);
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/dur", G_RDWR | G_CREAT | G_GDURABLE);
    ASSERT_GE(fd, 0);

    writePhase(ctx, fd, 0, 0xA5);
    ASSERT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));

    // Crash in the window the journal exists for: commit durable, the
    // O_DIRECT in-place write never ran.
    sys->sim().faults.armCrash(sim::CrashPoint::AfterJournalCommit);
    writePhase(ctx, fd, kPages, 0x5C);
    (void)sys->fs().gfsync(ctx, fd);
    ASSERT_TRUE(sys->sim().faults.crashed()) << "crash never fired";

    sys->restartDaemon();
    EXPECT_GE(daemonStat("journal_txns_replayed"), 1u);

    // Acknowledged bytes survive; the interrupted update is atomic.
    expectHostPages("/dur", 0, kPages, 0xA5, "U1 after direct recovery");
    hostfs::FileInfo info;
    ASSERT_EQ(Status::Ok, sys->hostFs().stat("/dur", &info));
    if (info.size > uint64_t(kPages) * kPage) {
        ASSERT_EQ(uint64_t(2 * kPages) * kPage, info.size);
        expectHostPages("/dur", kPages, kPages, 0x5C,
                        "U2 all-new after direct recovery");
    }

    // The recovered Direct-backend system still takes durable writes.
    writePhase(ctx, fd, kPages, 0x5C);
    EXPECT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));
    expectHostPages("/dur", kPages, kPages, 0x5C, "post-recovery");
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Clean shutdown checkpoints the journal (stop with nothing pending)
// ---------------------------------------------------------------------

TEST_F(RecoveryTest, CleanStopCheckpointsJournalAndRestartSkipsReplay)
{
    sys = std::make_unique<GpufsSystem>(1, baseParams(true));
    auto ctx = test::makeBlock(sys->device(0));
    int fd = sys->fs().gopen(ctx, "/dur", G_RDWR | G_CREAT | G_GDURABLE);
    ASSERT_GE(fd, 0);
    writePhase(ctx, fd, 0, 0xA5);
    ASSERT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));

    hostfs::WriteJournal *j = sys->daemon().journal();
    ASSERT_NE(nullptr, j);
    ASSERT_GT(j->tailOffset(), 0u);
    ASSERT_EQ(0u, daemonStat("journal_checkpoints"));

    // Clean stop: every committed txn was applied in place, so stop()
    // truncates the journal after flushing the files it covered.
    sys->daemon().stop();
    EXPECT_EQ(1u, daemonStat("journal_checkpoints"));
    EXPECT_EQ(0u, j->tailOffset());
    hostfs::FileInfo jinfo;
    ASSERT_EQ(Status::Ok,
              sys->hostFs().stat(hostfs::WriteJournal::kPath, &jinfo));
    EXPECT_EQ(0u, jinfo.size);
    expectHostPages("/dur", 0, kPages, 0xA5, "after checkpoint");

    // The next start finds an empty journal: no replay work at all.
    sys->restartDaemon();
    EXPECT_EQ(0u, daemonStat("journal_txns_replayed"));
    EXPECT_EQ(0u, daemonStat("journal_torn_records"));

    // And the restarted daemon keeps journaling as before.
    writePhase(ctx, fd, kPages, 0x5C);
    EXPECT_EQ(Status::Ok, sys->fs().gmsync(ctx, fd));
    expectHostPages("/dur", kPages, kPages, 0x5C, "post-checkpoint write");
    sys->fs().gclose(ctx, fd);
}

// ---------------------------------------------------------------------
// Group commit: one journal fsync per sweep, not one per WritePages
// ---------------------------------------------------------------------

// Four durable WritePages claimed by ONE service sweep share ONE
// journal fsync (the preflight appends all four txns, then group-syncs
// before any in-place write — the WAL ordering the crash-point sweep
// above depends on), and the gmsync barrier count stays below the
// WritePages count: commits are per-txn, durability points per-sweep.
TEST(JournalGroupCommit, SweepOfWritePagesSharesOneJournalFsync)
{
    sim::SimContext sim;
    hostfs::HostFs fs{sim};
    consistency::ConsistencyMgr mgr;
    gpu::GpuDevice dev{sim, 0};
    rpc::CpuDaemon daemon{fs, mgr};
    daemon.enableJournal();
    rpc::RpcQueue &q = daemon.attachGpu(dev);
    daemon.start();

    rpc::RpcRequest o;
    o.op = rpc::RpcOp::Open;
    std::strncpy(o.path, "/gc", sizeof o.path - 1);
    o.flags = hostfs::O_RDWR_F | hostfs::O_CREAT_F | hostfs::O_GDURABLE_F;
    o.wantsWrite = true;
    rpc::RpcSlot *os = q.trySubmit(o);
    ASSERT_NE(nullptr, os);
    rpc::RpcResponse orsp = q.collect(*os);
    ASSERT_EQ(Status::Ok, orsp.status);
    const int fd = orsp.hostFd;

    // Park the daemon so all four WritePages land in one sweep.
    daemon.stop();

    constexpr uint64_t kPg = 16 * KiB;
    constexpr unsigned kWrites = 4;
    std::vector<std::vector<uint8_t>> bufs(
        kWrites, std::vector<uint8_t>(kPg, 0xAB));
    rpc::RpcSlot *held[kWrites];
    for (unsigned r = 0; r < kWrites; ++r) {
        rpc::RpcRequest w;
        w.op = rpc::RpcOp::WritePages;
        w.hostFd = fd;
        w.pageCount = 1;
        w.pageLen = kPg;
        w.len = kPg;
        w.issueTime = 10 * r;
        w.batch[0] = bufs[r].data();
        w.batchOff[0] = uint64_t(r) * kPg;
        w.batchLen[0] = uint32_t(kPg);
        held[r] = q.trySubmit(w);
        ASSERT_NE(nullptr, held[r]);
    }
    daemon.start();
    for (unsigned r = 0; r < kWrites; ++r) {
        rpc::RpcResponse resp = q.collect(*held[r]);
        ASSERT_EQ(Status::Ok, resp.status) << "write " << r;
        EXPECT_EQ(kPg, resp.bytes) << "write " << r;
    }

    // The gmsync durability barrier, answered from the commit record.
    rpc::RpcRequest fr;
    fr.op = rpc::RpcOp::Fsync;
    fr.hostFd = fd;
    fr.durableBarrier = true;
    rpc::RpcSlot *fsl = q.trySubmit(fr);
    ASSERT_NE(nullptr, fsl);
    ASSERT_EQ(Status::Ok, q.collect(*fsl).status);

    auto stat = [&](const char *n) {
        return daemon.stats().counter(n).get();
    };
    EXPECT_EQ(uint64_t(kWrites), stat("journal_commits"));
    EXPECT_EQ(1u, stat("journal_group_syncs"));
    EXPECT_EQ(1u, stat("journal_commit_barriers"));
    EXPECT_LT(stat("journal_commit_barriers"), uint64_t(kWrites));

    // And the bytes all landed in place.
    std::vector<uint8_t> page(kPg);
    for (unsigned r = 0; r < kWrites; ++r) {
        auto rr = fs.pread(fd, page.data(), kPg, uint64_t(r) * kPg);
        ASSERT_EQ(Status::Ok, rr.status);
        for (uint64_t i = 0; i < kPg; ++i)
            ASSERT_EQ(0xAB, page[i]) << "page " << r << " byte " << i;
    }
    daemon.stop();
    fs.close(fd);
}

} // namespace
} // namespace core
} // namespace gpufs
