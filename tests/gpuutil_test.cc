/** @file Unit tests for the GPU-side string library. */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "gpuutil/gstring.hh"

namespace gpufs {
namespace gpuutil {
namespace {

TEST(GString, StrlenMatchesLibc)
{
    EXPECT_EQ(0u, gstrlen(""));
    EXPECT_EQ(5u, gstrlen("hello"));
    EXPECT_EQ(3u, gstrlen("hello", 3));   // bounded
}

TEST(GString, StrcmpOrdering)
{
    EXPECT_EQ(0, gstrcmp("abc", "abc"));
    EXPECT_LT(gstrcmp("abc", "abd"), 0);
    EXPECT_GT(gstrcmp("abd", "abc"), 0);
    EXPECT_LT(gstrcmp("ab", "abc"), 0);
    EXPECT_GT(gstrcmp("abc", "ab"), 0);
}

TEST(GString, StrncmpStopsAtN)
{
    EXPECT_EQ(0, gstrncmp("abcX", "abcY", 3));
    EXPECT_NE(0, gstrncmp("abcX", "abcY", 4));
    EXPECT_EQ(0, gstrncmp("abc", "abc", 10));   // NUL stops comparison
}

TEST(GString, StrlcpyTruncatesAndTerminates)
{
    char buf[4];
    EXPECT_EQ(5u, gstrlcpy(buf, "hello", sizeof(buf)));
    EXPECT_STREQ("hel", buf);
    EXPECT_EQ(2u, gstrlcpy(buf, "ab", sizeof(buf)));
    EXPECT_STREQ("ab", buf);
}

TEST(GString, StrlcatAppendsWithinBound)
{
    char buf[8] = "ab";
    EXPECT_EQ(4u, gstrlcat(buf, "cd", sizeof(buf)));
    EXPECT_STREQ("abcd", buf);
    EXPECT_EQ(9u, gstrlcat(buf, "efghi", sizeof(buf)));
    EXPECT_STREQ("abcdefg", buf);   // truncated at 7 + NUL
}

TEST(GString, MemchrFindsAndMisses)
{
    const char *s = "abcdef";
    EXPECT_EQ(s + 2, gmemchr(s, 'c', 6));
    EXPECT_EQ(nullptr, gmemchr(s, 'z', 6));
    EXPECT_EQ(nullptr, gmemchr(s, 'f', 5));   // bounded
}

TEST(GString, StrtokSplitsLikeLibc)
{
    char buf[] = "  one two\nthree  ";
    char *save = nullptr;
    EXPECT_STREQ("one", gstrtok_r(buf, " \n", &save));
    EXPECT_STREQ("two", gstrtok_r(nullptr, " \n", &save));
    EXPECT_STREQ("three", gstrtok_r(nullptr, " \n", &save));
    EXPECT_EQ(nullptr, gstrtok_r(nullptr, " \n", &save));
}

TEST(GString, StrtokEmptyString)
{
    char buf[] = "   ";
    char *save = nullptr;
    EXPECT_EQ(nullptr, gstrtok_r(buf, " ", &save));
}

TEST(GString, WordDelimClassification)
{
    EXPECT_FALSE(gisWordDelim('a'));
    EXPECT_FALSE(gisWordDelim('Z'));
    EXPECT_FALSE(gisWordDelim('0'));
    EXPECT_FALSE(gisWordDelim('_'));
    EXPECT_TRUE(gisWordDelim(' '));
    EXPECT_TRUE(gisWordDelim('.'));
    EXPECT_TRUE(gisWordDelim('\n'));
}

TEST(GString, WordCountWholeWordsOnly)
{
    const char *text = "cat catalog cat concat cat.";
    EXPECT_EQ(3u, gwordCount(text, std::strlen(text), "cat", 3));
    EXPECT_EQ(1u, gwordCount(text, std::strlen(text), "catalog", 7));
    EXPECT_EQ(0u, gwordCount(text, std::strlen(text), "dog", 3));
}

TEST(GString, WordCountAtBoundaries)
{
    const char *text = "cat x cat";
    EXPECT_EQ(2u, gwordCount(text, std::strlen(text), "cat", 3));
    EXPECT_EQ(0u, gwordCount(text, 2, "cat", 3));   // word longer than text
}

TEST(GString, WordCountUnderscoreIsWordChar)
{
    const char *text = "_cat cat_ cat";
    EXPECT_EQ(1u, gwordCount(text, std::strlen(text), "cat", 3));
}

TEST(GString, SnprintfBasicVerbs)
{
    char buf[128];
    gsnprintf(buf, sizeof(buf), "%s=%d 0x%x %c %u%%", "x", -42, 255u, 'Q',
              7u);
    EXPECT_STREQ("x=-42 0xff Q 7%", buf);
}

TEST(GString, SnprintfLongLong)
{
    char buf[64];
    gsnprintf(buf, sizeof(buf), "%llu", 12345678901234567ull);
    EXPECT_STREQ("12345678901234567", buf);
    gsnprintf(buf, sizeof(buf), "%lld", -9876543210ll);
    EXPECT_STREQ("-9876543210", buf);
}

TEST(GString, SnprintfTruncationReportsFullLength)
{
    char buf[6];
    size_t n = gsnprintf(buf, sizeof(buf), "%s", "hello world");
    EXPECT_EQ(11u, n);
    EXPECT_STREQ("hello", buf);
}

TEST(GString, SnprintfNullStringAndUnknownVerb)
{
    char buf[32];
    gsnprintf(buf, sizeof(buf), "%s %q", static_cast<const char *>(nullptr));
    EXPECT_STREQ("(null) %q", buf);
}

TEST(GString, SnprintfZero)
{
    char buf[8];
    gsnprintf(buf, sizeof(buf), "%d", 0);
    EXPECT_STREQ("0", buf);
}

} // namespace
} // namespace gpuutil
} // namespace gpufs
